// Package streammill is the public facade of this repository: a data stream
// management system (DSMS) in the style of Stream Mill, reproducing the
// timestamp-management architecture of
//
//	Bai, Thakkar, Wang, Zaniolo.
//	"Optimizing Timestamp Management in Data Stream Management Systems."
//	ICDE 2007.
//
// The library provides:
//
//   - a typed tuple/schema model with external, internal and latent
//     timestamps (paper §5);
//   - an operator library — selection, projection, map, n-way union,
//     symmetric window join, windowed aggregates — with punctuation
//     propagation and the paper's TSM registers and relaxed `more`
//     condition (§4.1);
//   - the depth-first query-graph execution model with Forward / Encore /
//     Backtrack next-operator selection (§3) and on-demand Enabling
//     Time-Stamp generation at source nodes (§4–5);
//   - a small continuous-query language (CREATE STREAM / SELECT ... UNION /
//     JOIN ... WINDOW / GROUP BY);
//   - a deterministic discrete-event simulator used by the experiment
//     harness (cmd/etsbench) to regenerate every figure in the paper; and
//   - a concurrent goroutine-per-operator runtime for real-time use, in
//     which ETS demand propagates upstream as explicit signals.
//
// # Quick start
//
//	e := streammill.NewEngine()
//	e.MustExecute(`CREATE STREAM fast (v int)`, nil)
//	e.MustExecute(`CREATE STREAM slow (v int)`, nil)
//	q := e.MustExecute(`SELECT * FROM fast UNION slow`, func(t *streammill.Tuple, now streammill.Time) {
//		fmt.Println(t)
//	})
//	_ = q
//
// See examples/ for runnable programs and DESIGN.md for the system
// inventory and experiment index.
package streammill

import (
	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/tuple"
	"repro/internal/window"
)

// Core data-model types.
type (
	// Time is a point on the engine's virtual clock, in microseconds.
	Time = tuple.Time
	// Tuple is one stream element (data or punctuation).
	Tuple = tuple.Tuple
	// Value is one typed attribute value.
	Value = tuple.Value
	// Schema describes a stream's attributes and timestamp kind.
	Schema = tuple.Schema
	// Field is one schema attribute.
	Field = tuple.Field
	// TSKind is a timestamp kind (External, Internal, Latent).
	TSKind = tuple.TSKind
)

// Engine types.
type (
	// Engine is the DSMS facade: declare streams, submit CQL, run.
	Engine = core.Engine
	// Query is a handle on one registered continuous query.
	Query = core.Query
	// Source is a stream's entry point into the system.
	Source = ops.Source
	// Graph is a continuous-query operator graph.
	Graph = graph.Graph
	// ExecEngine is the single-threaded DFS execution engine.
	ExecEngine = exec.Engine
	// Scheduler apportions execution steps across scheduling units
	// (graph components) by weighted deficit round robin.
	Scheduler = exec.Scheduler
	// NodeStat is one operator's execution statistics.
	NodeStat = exec.NodeStat
	// Runtime is the concurrent goroutine-per-operator engine.
	Runtime = runtime.Engine
	// RuntimeOptions configures a Runtime.
	RuntimeOptions = runtime.Options
	// AdaptiveOptions configures the self-tuning controller attached to a
	// Runtime via RuntimeOptions.Adaptive.
	AdaptiveOptions = runtime.AdaptiveOptions
	// AdaptiveController closes the metrics loop over a running Runtime,
	// retuning batch sizes, shard tables, and join probe orders at
	// punctuation boundaries.
	AdaptiveController = adapt.Controller
	// Sim drives an ExecEngine over virtual time.
	Sim = sim.Sim
	// Stream feeds a Sim with generated arrivals.
	Stream = sim.Stream
	// WindowSpec describes a join/aggregate window extent.
	WindowSpec = window.Spec
)

// Timestamp kinds (paper §5).
const (
	// External timestamps are assigned by the producing application.
	External = tuple.External
	// Internal timestamps are assigned on entry using the system clock.
	Internal = tuple.Internal
	// Latent streams carry no timestamps; operators stamp on the fly.
	Latent = tuple.Latent
)

// ETS policies.
const (
	// NoETS never generates enabling timestamps (scenario A).
	NoETS = core.NoETS
	// OnDemandETS generates ETS for idle-waiting operators (scenario C).
	OnDemandETS = core.OnDemandETS
)

// Time units.
const (
	Microsecond = tuple.Microsecond
	Millisecond = tuple.Millisecond
	Second      = tuple.Second
	Minute      = tuple.Minute
)

// NewEngine returns an empty DSMS engine.
func NewEngine() *Engine { return core.NewEngine() }

// NewSchema builds a schema with internal timestamps; use Schema.WithTS to
// change the kind.
func NewSchema(name string, fields ...Field) *Schema { return tuple.NewSchema(name, fields...) }

// NewData returns a data tuple.
func NewData(ts Time, vals ...Value) *Tuple { return tuple.NewData(ts, vals...) }

// Int, Float, Str, Boolean and TimeValue construct attribute values.
func Int(v int64) Value      { return tuple.Int(v) }
func Float(v float64) Value  { return tuple.Float(v) }
func Str(v string) Value     { return tuple.String_(v) }
func Boolean(v bool) Value   { return tuple.Bool(v) }
func TimeValue(v Time) Value { return tuple.TimeVal(v) }

// NewRuntime builds a concurrent runtime over an engine's graph. Call after
// all queries are registered.
func NewRuntime(e *Engine, opts RuntimeOptions) (*Runtime, error) {
	return runtime.New(e.Graph(), opts)
}

// AttachAdaptive builds the self-tuning controller from the runtime's own
// RuntimeOptions.Adaptive (nil means all defaults). Call Start after the
// runtime is started, Stop before tearing it down.
func AttachAdaptive(rt *Runtime) *AdaptiveController { return adapt.Attach(rt) }

// NewSim builds a discrete-event simulation over a built exec engine.
func NewSim(ex *ExecEngine, horizon Time) *Sim { return sim.New(ex, horizon) }

// NewScheduler builds a weighted fair scheduler over an exec engine's
// scheduling units; weights maps component index → relative share (nil =
// uniform).
func NewScheduler(ex *ExecEngine, weights map[int]int) (*Scheduler, error) {
	return exec.NewScheduler(ex, weights)
}

// TimeWindow and RowWindow build window extents.
func TimeWindow(span Time) WindowSpec { return window.TimeWindow(span) }
func RowWindow(rows int) WindowSpec   { return window.RowWindow(rows) }
