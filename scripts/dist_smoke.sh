#!/bin/sh
# Distributed-execution smoke test, fully under the race detector.
#
# Three stages:
#   1. The distquery example: a coordinator plus two workers in one process,
#      a sharded union cut across them, a feed that goes silent mid-stream.
#      The worker watchdogs must force skew-bounded ETS into the quiet
#      network links (the coordinator runs without a watchdog, so nobody
#      else can), the sink watermark must keep advancing during the stall,
#      and the final drain must account for every sent tuple.
#   2. A scaled-down etsbench -dist run: the same sharded join in-process
#      and cut across loopback workers must produce identical result counts
#      (non-zero exit on mismatch).
#   3. Real processes: two `streamd -worker` instances and one
#      `streamd -coordinator`, fed over the wire by the netmon example.
#      Results must reach the coordinator's CSV output and SIGINT must
#      drain all three processes to a clean exit.
set -eu

workdir=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "dist-smoke: distquery stalled-link drill (-race)"
go run -race ./examples/distquery >"$workdir/distquery.out" 2>&1 || {
    echo "dist-smoke: distquery failed" >&2
    cat "$workdir/distquery.out" >&2
    exit 1
}
grep -q 'forced ETS on workers: [1-9]' "$workdir/distquery.out" || {
    echo "dist-smoke: no worker forced ETS into the stalled link" >&2
    cat "$workdir/distquery.out" >&2
    exit 1
}
grep -q 'distquery: OK' "$workdir/distquery.out" || {
    echo "dist-smoke: distquery assertions failed" >&2
    cat "$workdir/distquery.out" >&2
    exit 1
}

echo "dist-smoke: etsbench -dist (scaled down, -race) + exact-output check"
go run -race ./cmd/etsbench -dist -dist-tuples 8000 \
    -dist-out "$workdir/BENCH_dist.json" >"$workdir/dist.out" 2>&1 || {
    echo "dist-smoke: etsbench -dist failed" >&2
    cat "$workdir/dist.out" >&2
    exit 1
}
grep -q '"results_match": true' "$workdir/BENCH_dist.json" || {
    echo "dist-smoke: distributed output diverged from in-process" >&2
    cat "$workdir/BENCH_dist.json" >&2
    exit 1
}

echo "dist-smoke: streamd coordinator + 2 workers over loopback (-race)"
go build -race -o "$workdir/streamd" ./cmd/streamd
go build -race -o "$workdir/netmon" ./examples/netmon

"$workdir/streamd" -worker 127.0.0.1:0 >"$workdir/w1.out" 2>&1 &
w1=$!
pids="$w1"
"$workdir/streamd" -worker 127.0.0.1:0 >"$workdir/w2.out" 2>&1 &
w2=$!
pids="$pids $w2"

addr_of() { # extract the bound address a worker logged
    sed -n 's/.*worker listening on \(.*\)/\1/p' "$1"
}
i=0
while [ -z "$(addr_of "$workdir/w1.out")" ] || [ -z "$(addr_of "$workdir/w2.out")" ]; do
    i=$((i + 1))
    [ $i -gt 100 ] && { echo "dist-smoke: workers never came up" >&2; exit 1; }
    sleep 0.1
done
a1=$(addr_of "$workdir/w1.out")
a2=$(addr_of "$workdir/w2.out")

"$workdir/streamd" -coordinator "$a1,$a2" -listen 127.0.0.1:0 \
    -ddl 'CREATE STREAM backbone (flow int, bytes int) TIMESTAMP EXTERNAL SKEW 100ms;
          CREATE STREAM mgmt (flow int, code int) TIMESTAMP EXTERNAL SKEW 100ms' \
    -q 'SELECT backbone.flow, bytes, code FROM backbone JOIN mgmt ON backbone.flow = mgmt.flow WINDOW 2s' \
    >"$workdir/coord.csv" 2>"$workdir/coord.err" &
co=$!
pids="$pids $co"
i=0
while ! grep -q 'deployed plan' "$workdir/coord.err"; do
    i=$((i + 1))
    [ $i -gt 100 ] && {
        echo "dist-smoke: coordinator never deployed" >&2
        cat "$workdir/coord.err" >&2
        exit 1
    }
    sleep 0.1
done
ingest=$(sed -n 's/.*ingest listening on \(.*\)/\1/p' "$workdir/coord.err")

"$workdir/netmon" -addr "$ingest" -seconds 10 >"$workdir/feed.out" 2>&1 || {
    echo "dist-smoke: netmon feed failed" >&2
    cat "$workdir/feed.out" >&2
    exit 1
}

kill -INT "$co"
wait "$co" || {
    echo "dist-smoke: coordinator exited non-zero" >&2
    cat "$workdir/coord.err" >&2
    exit 1
}
kill -INT "$w1" "$w2"
wait "$w1" || { echo "dist-smoke: worker 1 exited non-zero" >&2; cat "$workdir/w1.out" >&2; exit 1; }
wait "$w2" || { echo "dist-smoke: worker 2 exited non-zero" >&2; cat "$workdir/w2.out" >&2; exit 1; }
pids=""

grep -q 'deployed plan 1: [1-9][0-9]* nodes over 3 of 3 executors' "$workdir/coord.err" || {
    echo "dist-smoke: plan did not span all three executors" >&2
    cat "$workdir/coord.err" >&2
    exit 1
}
grep -q 'coordinator drained, [1-9]' "$workdir/coord.err" || {
    echo "dist-smoke: coordinator drained without results" >&2
    cat "$workdir/coord.err" >&2
    exit 1
}
results=$(($(wc -l <"$workdir/coord.csv") - 1))
[ "$results" -ge 1 ] || {
    echo "dist-smoke: no CSV results reached the coordinator" >&2
    exit 1
}
for w in 1 2; do
    grep -q 'worker stopped' "$workdir/w$w.out" || {
        echo "dist-smoke: worker $w did not drain cleanly" >&2
        cat "$workdir/w$w.out" >&2
        exit 1
    }
done
echo "dist-smoke: streamd cluster drained with $results results"
echo "dist-smoke: OK"
