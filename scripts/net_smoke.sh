#!/bin/sh
# Networked-ingestion smoke test: a full loopback round trip under the race
# detector. The netmon example runs two wire-protocol clients (busy backbone,
# quiet mgmt with local punctuation) against a session server feeding the
# concurrent runtime; then a scaled-down etsbench -net run measures the
# remote-vs-in-process latency ratio and performs the kill-the-client
# watchdog check (non-zero exit if the engine stalls or never forces ETS).
set -eu

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT INT TERM

echo "net-smoke: netmon loopback round trip (-race)"
go run -race ./examples/netmon >"$workdir/netmon.out" 2>&1 || {
    echo "net-smoke: netmon failed" >&2
    cat "$workdir/netmon.out" >&2
    exit 1
}
grep -q 'correlation matches: [1-9]' "$workdir/netmon.out" || {
    echo "net-smoke: netmon produced no join results" >&2
    cat "$workdir/netmon.out" >&2
    exit 1
}
grep -q 'tuples over the wire: [1-9]' "$workdir/netmon.out" || {
    echo "net-smoke: no tuples crossed the wire" >&2
    cat "$workdir/netmon.out" >&2
    exit 1
}

echo "net-smoke: etsbench -net (scaled down, -race) + kill-the-client check"
go run -race ./cmd/etsbench -net -net-tuples 20000 \
    -net-out "$workdir/BENCH_net.json" >"$workdir/net.out" 2>&1 || {
    echo "net-smoke: etsbench -net failed" >&2
    cat "$workdir/net.out" >&2
    exit 1
}
grep -q '"net_vs_inproc_p50_x"' "$workdir/BENCH_net.json" || {
    echo "net-smoke: report missing latency ratio" >&2
    cat "$workdir/BENCH_net.json" >&2
    exit 1
}
grep -q '"deadlock_free": true' "$workdir/BENCH_net.json" || {
    echo "net-smoke: kill-the-client left the engine wedged" >&2
    cat "$workdir/BENCH_net.json" >&2
    exit 1
}
echo "net-smoke: OK"
