#!/bin/sh
# Observability smoke test, two phases.
#
# Phase 1 (replay): run streamd with the live metrics endpoint over a
# two-stream union workload, scrape the endpoint once, and check that the
# required metric families are exported. Exercises the registry, the HTTP
# handler, on-demand ETS accounting, and the sink latency reservoir.
#
# Phase 2 (network): run streamd as a wire-protocol server with span
# collection, drive the traced netmon workload through it, and check that
# /spans reconstructs at least one complete source→sink punctuation
# timeline, that the health/readiness probes and the pprof gate answer,
# that streamtop renders the node table and trace pane, and that -span-log
# dumps the ring as JSONL at shutdown.
set -eu

workdir=$(mktemp -d)
pid=""
pid2=""
trap 'kill "$pid" "$pid2" 2>/dev/null || true; rm -rf "$workdir"' EXIT INT TERM

go build -o "$workdir/streamd" ./cmd/streamd
go build -o "$workdir/wlgen" ./cmd/wlgen

"$workdir/wlgen" -rate 200 -dur 2s -seed 1 >"$workdir/fast.csv"
"$workdir/wlgen" -rate 5 -dur 2s -seed 2 >"$workdir/slow.csv"

"$workdir/streamd" \
    -ddl 'CREATE STREAM fast (v int); CREATE STREAM slow (v int)' \
    -q 'SELECT * FROM fast UNION slow' \
    -in "fast=$workdir/fast.csv" -in "slow=$workdir/slow.csv" \
    -metrics 127.0.0.1:0 -trace -linger 30s \
    >"$workdir/out.csv" 2>"$workdir/stderr.log" &
pid=$!

# streamd prints the bound address ("metrics listening on http://HOST:PORT/metrics").
url=""
for _ in $(seq 1 100); do
    url=$(sed -n 's#.*metrics listening on \(http://[^ ]*\)#\1#p' "$workdir/stderr.log" | head -1)
    [ -n "$url" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "obs-smoke: streamd exited early" >&2; cat "$workdir/stderr.log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$url" ] || { echo "obs-smoke: no metrics address printed" >&2; cat "$workdir/stderr.log" >&2; exit 1; }
base=${url%/metrics}

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

# The replay may still be running; poll until the results counter is live.
scrape="$workdir/scrape.txt"
for _ in $(seq 1 100); do
    fetch "$base/metrics" >"$scrape" || true
    if grep -q '^sm_results_total [1-9]' "$scrape"; then
        break
    fi
    sleep 0.1
done

status=0
for name in \
    sm_results_total \
    sm_output_latency_us \
    sm_sim_steps_total \
    sm_sim_ets_injected_total \
    sm_sim_queue_peak \
    sm_sim_node_steps_total \
    sm_sim_node_buffered; do
    if ! grep -q "^$name" "$scrape"; then
        echo "obs-smoke: MISSING metric $name" >&2
        status=1
    fi
done
grep -q '^# TYPE sm_results_total counter' "$scrape" || {
    echo "obs-smoke: missing Prometheus TYPE line" >&2
    status=1
}

# /vars must be JSON with the same families; /trace must answer.
fetch "$base/vars" >"$workdir/vars.json"
grep -q '"sm_results_total"' "$workdir/vars.json" || {
    echo "obs-smoke: /vars missing sm_results_total" >&2
    status=1
}
fetch "$base/trace" >"$workdir/trace.json"
grep -q '"total"' "$workdir/trace.json" || {
    echo "obs-smoke: /trace missing total" >&2
    status=1
}

if [ "$status" -ne 0 ]; then
    echo "---- scrape ----" >&2
    cat "$scrape" >&2
    exit "$status"
fi
echo "obs-smoke: phase 1 OK ($(grep -c '^sm_' "$scrape") metric lines)"
kill "$pid" 2>/dev/null || true
pid=""

# ---- Phase 2: network mode with punctuation tracing ----
go build -o "$workdir/netmon" ./examples/netmon
go build -o "$workdir/streamtop" ./cmd/streamtop

"$workdir/streamd" \
    -ddl 'CREATE STREAM backbone (flow int, bytes int) TIMESTAMP EXTERNAL; CREATE STREAM mgmt (flow int, code int) TIMESTAMP EXTERNAL' \
    -q 'SELECT backbone.flow, bytes, code FROM backbone JOIN mgmt ON backbone.flow = mgmt.flow WINDOW 2s' \
    -listen 127.0.0.1:0 -metrics 127.0.0.1:0 -pprof \
    -span-log "$workdir/spans.jsonl" \
    >"$workdir/net-out.csv" 2>"$workdir/net-stderr.log" &
pid2=$!

ingest=""
murl=""
for _ in $(seq 1 100); do
    ingest=$(sed -n 's/.*ingest listening on \([^ ]*\)$/\1/p' "$workdir/net-stderr.log" | head -1)
    murl=$(sed -n 's#.*metrics listening on \(http://[^ ]*\)#\1#p' "$workdir/net-stderr.log" | head -1)
    [ -n "$ingest" ] && [ -n "$murl" ] && break
    kill -0 "$pid2" 2>/dev/null || { echo "obs-smoke: networked streamd exited early" >&2; cat "$workdir/net-stderr.log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$ingest" ] && [ -n "$murl" ] || { echo "obs-smoke: networked streamd printed no addresses" >&2; cat "$workdir/net-stderr.log" >&2; exit 1; }
base2=${murl%/metrics}

"$workdir/netmon" -addr "$ingest" -seconds 5 >"$workdir/netmon.log" 2>&1 || {
    echo "obs-smoke: netmon feed failed" >&2
    cat "$workdir/netmon.log" >&2
    exit 1
}

# The traced punctuation must reconstruct into a complete timeline.
spans="$workdir/spans.json"
ok=""
for _ in $(seq 1 100); do
    fetch "$base2/spans?complete=1&n=8" >"$spans" || true
    if grep -q '"complete": true' "$spans"; then
        ok=1
        break
    fi
    sleep 0.1
done
[ -n "$ok" ] || { echo "obs-smoke: no complete timeline in /spans" >&2; cat "$spans" >&2; exit 1; }
grep -q '"origin"' "$spans" || { echo "obs-smoke: timeline missing origin" >&2; exit 1; }
grep -q '"sink": true' "$spans" || { echo "obs-smoke: timeline missing sink hop" >&2; exit 1; }

fetch "$base2/healthz" | grep -q ok || { echo "obs-smoke: /healthz not ok" >&2; exit 1; }
fetch "$base2/readyz" | grep -q ok || { echo "obs-smoke: /readyz not ok" >&2; exit 1; }
fetch "$base2/debug/pprof/cmdline" >/dev/null || { echo "obs-smoke: pprof gate closed despite -pprof" >&2; exit 1; }

"$workdir/streamtop" -addr "${base2#http://}" -once >"$workdir/top.txt" || {
    echo "obs-smoke: streamtop failed" >&2
    exit 1
}
grep -q 'WATERMARK' "$workdir/top.txt" || { echo "obs-smoke: streamtop node table missing" >&2; cat "$workdir/top.txt" >&2; exit 1; }
grep -q 'slowest punctuation traces' "$workdir/top.txt" || { echo "obs-smoke: streamtop trace pane missing" >&2; cat "$workdir/top.txt" >&2; exit 1; }

kill -INT "$pid2"
for _ in $(seq 1 100); do
    kill -0 "$pid2" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$pid2" 2>/dev/null && { echo "obs-smoke: streamd did not drain on SIGINT" >&2; exit 1; }
pid2=""
[ -s "$workdir/spans.jsonl" ] || { echo "obs-smoke: -span-log wrote nothing" >&2; exit 1; }
grep -q '"phase":"net_recv"' "$workdir/spans.jsonl" || { echo "obs-smoke: span log missing network hop" >&2; exit 1; }

echo "obs-smoke: phase 2 OK ($(wc -l <"$workdir/spans.jsonl") span events logged)"
