#!/bin/sh
# Observability smoke test: run streamd with the live metrics endpoint over a
# two-stream union workload, scrape the endpoint once, and check that the
# required metric families are exported. Exercises the registry, the HTTP
# handler, on-demand ETS accounting, and the sink latency reservoir.
set -eu

workdir=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT INT TERM

go build -o "$workdir/streamd" ./cmd/streamd
go build -o "$workdir/wlgen" ./cmd/wlgen

"$workdir/wlgen" -rate 200 -dur 2s -seed 1 >"$workdir/fast.csv"
"$workdir/wlgen" -rate 5 -dur 2s -seed 2 >"$workdir/slow.csv"

"$workdir/streamd" \
    -ddl 'CREATE STREAM fast (v int); CREATE STREAM slow (v int)' \
    -q 'SELECT * FROM fast UNION slow' \
    -in "fast=$workdir/fast.csv" -in "slow=$workdir/slow.csv" \
    -metrics 127.0.0.1:0 -trace -linger 30s \
    >"$workdir/out.csv" 2>"$workdir/stderr.log" &
pid=$!

# streamd prints the bound address ("metrics listening on http://HOST:PORT/metrics").
url=""
for _ in $(seq 1 100); do
    url=$(sed -n 's#.*metrics listening on \(http://[^ ]*\)#\1#p' "$workdir/stderr.log" | head -1)
    [ -n "$url" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "obs-smoke: streamd exited early" >&2; cat "$workdir/stderr.log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$url" ] || { echo "obs-smoke: no metrics address printed" >&2; cat "$workdir/stderr.log" >&2; exit 1; }
base=${url%/metrics}

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

# The replay may still be running; poll until the results counter is live.
scrape="$workdir/scrape.txt"
for _ in $(seq 1 100); do
    fetch "$base/metrics" >"$scrape" || true
    if grep -q '^sm_results_total [1-9]' "$scrape"; then
        break
    fi
    sleep 0.1
done

status=0
for name in \
    sm_results_total \
    sm_output_latency_us \
    sm_sim_steps_total \
    sm_sim_ets_injected_total \
    sm_sim_queue_peak \
    sm_sim_node_steps_total \
    sm_sim_node_buffered; do
    if ! grep -q "^$name" "$scrape"; then
        echo "obs-smoke: MISSING metric $name" >&2
        status=1
    fi
done
grep -q '^# TYPE sm_results_total counter' "$scrape" || {
    echo "obs-smoke: missing Prometheus TYPE line" >&2
    status=1
}

# /vars must be JSON with the same families; /trace must answer.
fetch "$base/vars" >"$workdir/vars.json"
grep -q '"sm_results_total"' "$workdir/vars.json" || {
    echo "obs-smoke: /vars missing sm_results_total" >&2
    status=1
}
fetch "$base/trace" >"$workdir/trace.json"
grep -q '"total"' "$workdir/trace.json" || {
    echo "obs-smoke: /trace missing total" >&2
    status=1
}

if [ "$status" -ne 0 ]; then
    echo "---- scrape ----" >&2
    cat "$scrape" >&2
    exit "$status"
fi
echo "obs-smoke: OK ($(grep -c '^sm_' "$scrape") metric lines)"
