package streammill_test

import (
	"fmt"

	streammill "repro"
)

// Example shows the end-to-end flow: declare streams, register a continuous
// query, build the engine with on-demand ETS, and push tuples through. The
// tuple on `fast` is delivered immediately even though `slow` is silent —
// the engine backtracks to slow's source and generates an Enabling
// Time-Stamp on demand.
func Example() {
	e := streammill.NewEngine()
	e.MustExecute(`CREATE STREAM fast (v int)`, nil)
	e.MustExecute(`CREATE STREAM slow (v int)`, nil)
	e.MustExecute(`SELECT * FROM fast UNION slow WHERE v % 2 = 0`,
		func(t *streammill.Tuple, now streammill.Time) {
			fmt.Printf("v=%v latency=%v\n", t.Vals[0], now-t.Ts)
		})

	clock := streammill.Time(0)
	ex, err := e.Build(streammill.OnDemandETS, func() streammill.Time { return clock })
	if err != nil {
		panic(err)
	}
	fast, _ := e.Source("fast")
	clock = 20 * streammill.Millisecond
	fast.Ingest(streammill.NewData(0, streammill.Int(2)), clock)
	ex.Run(1000)
	// Output:
	// v=2 latency=0µs
}

// Example_explain shows plan inspection: EXPLAIN describes the physical
// operator graph — note the WHERE filter pushed below the join.
func Example_explain() {
	e := streammill.NewEngine()
	e.MustExecute(`CREATE STREAM a (k int, v float)`, nil)
	e.MustExecute(`CREATE STREAM b (k int, w float)`, nil)
	out, err := e.Explain(`EXPLAIN SELECT a.k, v, w FROM a JOIN b ON a.k = b.k WINDOW 2s WHERE v > 1.0`)
	if err != nil {
		panic(err)
	}
	fmt.Print(out)
	// Output:
	//  0: a
	//  1: b
	//  2: where↓       ← 0
	//  3: join         ← 2 1
	//  4: project      ← 3
	//  5: output       ← 4
	// out: a_b_proj(k int, v float, w float) ts=internal
}
