// Command streamtop is a live terminal dashboard for a running streamd:
// it polls the /vars and /spans observability endpoints and renders a
// per-node view of the timestamp plane — throughput, queue depth,
// watermark and its lag behind the engine clock, idle-waiting share, the
// input each stalled operator is blocked on — plus the slowest recent
// punctuation traces with their per-hop latency breakdown.
//
// Usage:
//
//	streamtop -addr 127.0.0.1:9151            # refresh every 2s
//	streamtop -addr 127.0.0.1:9151 -once      # one snapshot (CI / scripts)
//
// streamtop needs only the HTTP endpoints: point it at whatever address
// streamd's -metrics flag bound. Without span collection (replay mode)
// the trace pane is omitted.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

type options struct {
	addr     string
	interval time.Duration
	once     bool
	nodes    int
	traces   int
}

func main() {
	var opts options
	flag.StringVar(&opts.addr, "addr", "127.0.0.1:9151", "streamd metrics address (host:port or URL)")
	flag.DurationVar(&opts.interval, "interval", 2*time.Second, "refresh interval")
	flag.BoolVar(&opts.once, "once", false, "print one snapshot and exit (no screen clearing)")
	flag.IntVar(&opts.nodes, "nodes", 24, "max node rows shown")
	flag.IntVar(&opts.traces, "traces", 3, "slowest traces shown")
	flag.Parse()
	if !strings.Contains(opts.addr, "://") {
		opts.addr = "http://" + opts.addr
	}
	if err := top(opts); err != nil {
		fmt.Fprintln(os.Stderr, "streamtop:", err)
		os.Exit(1)
	}
}

// spansDoc mirrors the /spans response body.
type spansDoc struct {
	Total     uint64         `json:"total"`
	Dropped   uint64         `json:"dropped"`
	Traces    uint64         `json:"traces"`
	Timelines []obs.Timeline `json:"timelines"`
}

// row is one node's aggregated view across its sm_node_* and sm_arc_*
// series.
type row struct {
	node      string
	tuplesIn  float64
	tuplesOut float64
	depth     int64
	watermark float64
	hasWm     bool
	lagP99    float64
	hasLag    bool
	idleUs    float64
	idle      bool
	blockedOn int64
	rate      float64 // tuples in per second, from the previous poll
	hasRate   bool
}

func top(opts options) error {
	client := &http.Client{Timeout: 5 * time.Second}
	prevIn := map[string]float64{}
	var prevAt time.Time
	for {
		vars, err := fetchVars(client, opts.addr)
		if err != nil {
			return err
		}
		spans, spanErr := fetchSpans(client, opts.addr, opts.traces)
		now := time.Now()
		rows, totals := collect(vars)
		if !prevAt.IsZero() {
			dt := now.Sub(prevAt).Seconds()
			for _, r := range rows {
				if in, ok := prevIn[r.node]; ok && dt > 0 {
					r.rate, r.hasRate = (r.tuplesIn-in)/dt, true
				}
			}
		}
		for _, r := range rows {
			prevIn[r.node] = r.tuplesIn
		}
		prevAt = now

		var b strings.Builder
		if !opts.once {
			b.WriteString("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		render(&b, opts, rows, totals, spans, spanErr)
		os.Stdout.WriteString(b.String())
		if opts.once {
			return nil
		}
		time.Sleep(opts.interval)
	}
}

func fetchVars(c *http.Client, addr string) (map[string]any, error) {
	resp, err := c.Get(addr + "/vars")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/vars: %s", resp.Status)
	}
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		return nil, fmt.Errorf("/vars: %w", err)
	}
	return vars, nil
}

// fetchSpans returns nil with no error when span collection is disabled
// server-side (404): the trace pane is simply omitted.
func fetchSpans(c *http.Client, addr string, n int) (*spansDoc, error) {
	resp, err := c.Get(fmt.Sprintf("%s/spans?sort=slow&complete=1&n=%d", addr, n))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/spans: %s", resp.Status)
	}
	var doc spansDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("/spans: %w", err)
	}
	return &doc, nil
}

// totals are the engine-wide headline numbers.
type totals struct {
	uptimeUs float64
	sent     float64
	results  float64
	ets      float64
	dead     float64
}

func collect(vars map[string]any) ([]*row, totals) {
	byNode := map[string]*row{}
	get := func(node string) *row {
		r := byNode[node]
		if r == nil {
			r = &row{node: node, blockedOn: -1}
			byNode[node] = r
		}
		return r
	}
	var t totals
	for name, v := range vars {
		family, labels := metrics.SplitName(name)
		switch family {
		case "sm_engine_uptime_us":
			t.uptimeUs = num(v)
		case "sm_engine_tuples_sent_total":
			t.sent = num(v)
		case "sm_results_total":
			t.results = num(v)
		case "sm_engine_ets_generated_total":
			t.ets = num(v)
		case "sm_engine_dead_sources":
			t.dead = num(v)
		}
		node := metrics.LabelValue(labels, "node")
		if node == "" {
			continue
		}
		switch family {
		case "sm_node_tuples_in_total":
			get(node).tuplesIn = num(v)
		case "sm_node_tuples_out_total":
			get(node).tuplesOut = num(v)
		case "sm_node_queue_depth":
			get(node).depth = int64(num(v))
		case "sm_node_watermark_us":
			r := get(node)
			r.watermark, r.hasWm = num(v), true
		case "sm_node_idle_us_total":
			get(node).idleUs = num(v)
		case "sm_node_idle":
			get(node).idle = num(v) != 0
		case "sm_node_blocking_input":
			get(node).blockedOn = int64(num(v))
		case "sm_arc_wm_lag_us":
			// Reservoir export: take the worst p99 across input ports.
			if m, ok := v.(map[string]any); ok && num(m["count"]) > 0 {
				r := get(node)
				if p := num(m["p99"]); !r.hasLag || p > r.lagP99 {
					r.lagP99, r.hasLag = p, true
				}
			}
		}
	}
	rows := make([]*row, 0, len(byNode))
	for _, r := range byNode {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].node < rows[j].node })
	return rows, t
}

func num(v any) float64 {
	f, _ := v.(float64)
	return f
}

func render(b *strings.Builder, opts options, rows []*row, t totals, spans *spansDoc, spanErr error) {
	fmt.Fprintf(b, "streamtop — %s — up %s   tuples %s   results %s   ets %s",
		time.Now().Format("15:04:05"), durUs(t.uptimeUs),
		count(t.sent), count(t.results), count(t.ets))
	if t.dead > 0 {
		fmt.Fprintf(b, "   DEAD SOURCES %d", int64(t.dead))
	}
	b.WriteString("\n\n")

	fmt.Fprintf(b, "%-18s %10s %10s %7s %14s %12s %6s %s\n",
		"NODE", "IN", "IN/s", "QDEPTH", "WATERMARK", "LAG p99", "IDLE%", "STALLED ON")
	shown := rows
	if len(shown) > opts.nodes {
		shown = shown[:opts.nodes]
	}
	for _, r := range shown {
		rate := "-"
		if r.hasRate {
			rate = fmt.Sprintf("%.0f", r.rate)
		}
		wm := "-"
		if r.hasWm && r.watermark > -1e17 { // MinTime sentinel stays "-"
			wm = durUs(r.watermark)
		}
		lag := "-"
		if r.hasLag {
			lag = durUs(r.lagP99)
		}
		idle := "-"
		if t.uptimeUs > 0 {
			idle = fmt.Sprintf("%.0f", 100*r.idleUs/t.uptimeUs)
		}
		stalled := ""
		if r.idle && r.blockedOn >= 0 {
			stalled = fmt.Sprintf("input %d", r.blockedOn)
		}
		fmt.Fprintf(b, "%-18s %10s %10s %7d %14s %12s %6s %s\n",
			clip(r.node, 18), count(r.tuplesIn), rate, r.depth, wm, lag, idle, stalled)
	}
	if len(rows) > opts.nodes {
		fmt.Fprintf(b, "… %d more nodes\n", len(rows)-opts.nodes)
	}

	switch {
	case spanErr != nil:
		fmt.Fprintf(b, "\nspans: %v\n", spanErr)
	case spans == nil:
		b.WriteString("\nspans: collection disabled\n")
	default:
		fmt.Fprintf(b, "\nslowest punctuation traces (%d traced, %d events, %d dropped)\n",
			spans.Traces, spans.Total, spans.Dropped)
		if len(spans.Timelines) == 0 {
			b.WriteString("  none complete yet\n")
		}
		for _, tl := range spans.Timelines {
			sink := ""
			if n := len(tl.Hops); n > 0 {
				sink = tl.Hops[n-1].Node
			}
			fmt.Fprintf(b, "  %#x ts=%d %s→%s total %s", tl.Trace, tl.Ts,
				tl.Origin, sink, durUs(float64(tl.TotalUs)))
			if tl.NetUs >= 0 && tl.NetRecvAt != 0 {
				fmt.Fprintf(b, " (net %s)", durUs(float64(tl.NetUs)))
			}
			b.WriteString("\n")
			for _, h := range tl.Hops {
				fmt.Fprintf(b, "    %-16s wait %-10s proc %s\n",
					clip(h.Node, 16), maybeUs(h.WaitUs), maybeUs(h.ProcUs))
			}
		}
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func count(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func durUs(us float64) string {
	d := time.Duration(us) * time.Microsecond
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return fmt.Sprintf("%.0fµs", us)
	}
}

func maybeUs(us int64) string {
	if us < 0 {
		return "?"
	}
	return durUs(float64(us))
}
