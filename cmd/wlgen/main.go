// Command wlgen generates workload traces as CSV files: one row per tuple
// with a microsecond timestamp column followed by an integer payload. The
// arrival process is Poisson (the paper's model), constant-rate, or bursty
// on-off.
//
// Usage:
//
//	wlgen -rate 50 -dur 60s -seed 1 > fast.csv
//	wlgen -rate 0.05 -dur 60s -seed 2 > slow.csv
//	wlgen -bursty -rate 500 -on 1s -off 9s -dur 60s > bursty.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/sim"
	"repro/internal/tuple"
	"repro/internal/wrappers"
)

func main() {
	rate := flag.Float64("rate", 50, "average arrival rate (tuples/second)")
	dur := flag.Duration("dur", time.Minute, "trace duration")
	seed := flag.Int64("seed", 1, "random seed")
	constant := flag.Bool("constant", false, "constant-rate arrivals instead of Poisson")
	bursty := flag.Bool("bursty", false, "bursty on-off arrivals (rate applies within bursts)")
	on := flag.Duration("on", time.Second, "burst duration (with -bursty)")
	off := flag.Duration("off", 9*time.Second, "inter-burst silence (with -bursty)")
	flag.Parse()

	var proc sim.Process
	switch {
	case *bursty:
		proc = sim.NewBursty(*rate, tuple.FromDuration(*on), tuple.FromDuration(*off), *seed)
	case *constant:
		proc = sim.NewConstant(tuple.Time(float64(tuple.Second) / *rate))
	default:
		proc = sim.NewPoisson(*rate, *seed)
	}

	sch := tuple.NewSchema("wl", tuple.Field{Name: "v", Kind: tuple.IntKind})
	w := wrappers.NewCSVWriter(os.Stdout, sch, wrappers.CSVOptions{TsColumn: 0, Header: true})
	horizon := tuple.FromDuration(*dur)
	ts := tuple.Time(0)
	n := int64(0)
	for {
		ts += proc.NextGap()
		if ts > horizon {
			break
		}
		if err := w.Write(tuple.NewData(ts, tuple.Int(n))); err != nil {
			fmt.Fprintln(os.Stderr, "wlgen:", err)
			os.Exit(1)
		}
		n++
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "wlgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wlgen: %d tuples over %v\n", n, *dur)
}
