package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/adapt"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/ops"
	rt "repro/internal/runtime"
	"repro/internal/tuple"
)

// The chaos soak drives the union workload (two external sources, a reorder
// guard, a TSM union, one sink) under deterministic fault injection — node
// panics, source drops, and a mid-run stall of one source — and then checks
// the fault-tolerance invariants the runtime promises:
//
//   - the engine finishes cleanly (every injected panic recovered within the
//     restart budget, no deadlock);
//   - tuple accounting closes exactly: delivered = sent − injected drops −
//     reorder late-drops (restarts neither lose nor duplicate tuples);
//   - the watchdog force-injected ETS while the stalled source was silent,
//     so idle-waiting operators kept running;
//   - the sink's output is watermark-ordered: every inversion is a counted
//     late tuple (the post-stall stragglers the harness sends on purpose).
//
// Any violated invariant is printed and the process exits non-zero, so the
// soak doubles as a CI gate (`make chaos` runs it under -race).

const (
	chaosSendEvery  = 150 * time.Microsecond // per-source inter-arrival time
	chaosJitterStep = 300                    // µs of backward jitter per step on s1
	chaosJitterMod  = 7                      // jitter pattern period (max 1.8ms)
	chaosSlack      = 2 * tuple.Millisecond  // reorder slack (covers the jitter)
	chaosDelta      = 5 * tuple.Millisecond  // external skew bound δ
	chaosStragglers = 16                     // late tuples sent after the stall
)

type chaosReport struct {
	Spec       string `json:"spec"`
	Duration   string `json:"duration"`
	Sent       uint64 `json:"tuples_sent"`
	Delivered  uint64 `json:"tuples_delivered"`
	InjDrops   uint64 `json:"injected_drops"`
	ReorderDrp uint64 `json:"reorder_dropped"`
	InjPanics  uint64 `json:"injected_panics"`
	Restarts   uint64 `json:"restarts"`
	ForcedETS  uint64 `json:"forced_ets"`
	LateTuples uint64 `json:"late_tuples"`
	Inversions uint64 `json:"sink_inversions"`
	Stragglers uint64 `json:"stragglers_sent"`
	// AdaptRetunes/AdaptApplied report the controller's activity when the
	// soak runs with -chaos-adaptive (issued decisions / reconfigurations
	// applied at punctuation boundaries).
	AdaptRetunes uint64    `json:"adaptive_retunes,omitempty"`
	AdaptApplied uint64    `json:"adaptive_applied,omitempty"`
	Ckpt         ckvReport `json:"kill_restore_verify"`
	Violations   []string  `json:"violations"`
}

// runChaos builds the chaotic union graph, soaks it for dur, and validates.
// With adaptive, the self-tuning controller runs on top of the chaos —
// reconfigurations racing panics, drops and the stall — and every
// fault-tolerance invariant must hold exactly as without it.
func runChaos(spec string, seed int64, dur time.Duration, out string, adaptive bool) {
	cfg, err := fault.ParseSpec(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(2)
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	inj := fault.New(cfg)

	sch := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind}).
		WithTS(tuple.External)
	g := graph.New("chaos")
	s1 := ops.NewSource("s1", sch, chaosDelta)
	s2 := ops.NewSource("s2", sch, chaosDelta)
	a := g.AddNode(s1)
	b := g.AddNode(s2)
	reord := ops.NewReorder("r", sch, chaosSlack)
	r := g.AddNode(reord, a)
	u := g.AddNode(ops.NewUnion("u", nil, 2, ops.TSM), r, b)

	// The sink checks watermark order: an inversion is a delivered tuple
	// whose timestamp precedes its predecessor's. Under fault injection
	// inversions are allowed only for counted late tuples (the stragglers).
	var delivered, inversions uint64
	prev := tuple.MinTime
	sink := ops.NewSink("k", func(t *tuple.Tuple, _ tuple.Time) {
		delivered++
		if t.Ts < prev {
			inversions++
		} else {
			prev = t.Ts
		}
	})
	g.AddNode(sink, u)

	tr := metrics.NewTracer(4096)
	opts := rt.Options{
		// On-demand ETS stays off so the liveness watchdog — not the
		// demand path — is what unblocks idle-waiters during the stall.
		OnDemandETS:    false,
		BatchSize:      32,
		MaxRestarts:    1 << 20,
		RestartBackoff: 100 * time.Microsecond,
		SourceTimeout:  50 * time.Millisecond,
		Trace:          tr,
		Fault:          inj,
	}
	if adaptive {
		opts.Adaptive = &rt.AdaptiveOptions{Interval: 5 * time.Millisecond}
	}
	e, err := rt.New(g, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	var ctl *adapt.Controller
	if adaptive {
		ctl = adapt.Attach(e)
	}
	e.Start()
	if ctl != nil {
		ctl.Start()
	}
	inj.Arm() // stall clock starts with the workload
	start := time.Now()
	nowTs := func() tuple.Time { return tuple.FromDuration(time.Since(start)) }

	var sent, stragglers [2]uint64
	var wg sync.WaitGroup
	produce := func(idx int, src *ops.Source, name string, jitter bool) {
		defer wg.Done()
		i := 0
		stalledAt := tuple.Time(-1)
		for time.Since(start) < dur {
			if inj.SourceStalled(name) {
				if stalledAt < 0 {
					stalledAt = nowTs()
				}
				time.Sleep(chaosSendEvery)
				continue
			}
			if stalledAt >= 0 {
				// The stall just ended: replay tuples that were "in
				// flight" when the feed went silent. Their timestamps
				// sit below the watchdog's forced ETS, so they arrive
				// late on purpose and exercise the relaxed-more path.
				for j := 0; j < chaosStragglers; j++ {
					e.Ingest(src, tuple.NewData(stalledAt+tuple.Time(j), tuple.Int(-1)))
				}
				sent[idx] += chaosStragglers
				stragglers[idx] += chaosStragglers
				stalledAt = -1
			}
			ts := nowTs()
			if jitter {
				// Deterministic backward jitter bounded by the reorder
				// slack: disorder for r to repair, never data loss.
				ts -= tuple.Time((i % chaosJitterMod) * chaosJitterStep)
				if ts < 0 {
					ts = 0
				}
			}
			e.Ingest(src, tuple.NewData(ts, tuple.Int(int64(i))))
			sent[idx]++
			i++
			time.Sleep(chaosSendEvery)
		}
	}
	wg.Add(2)
	go produce(0, s1, "s1", true)
	go produce(1, s2, "s2", false)
	wg.Wait()
	e.CloseStream(s1)
	e.CloseStream(s2)
	waitErr := e.Wait()
	if ctl != nil {
		ctl.Stop()
	}

	snap := e.Snapshot()
	stats := inj.Stats()
	var restarts, panics, retuned uint64
	for _, n := range snap.Nodes {
		restarts += n.Restarts
		panics += n.Panics
		retuned += n.Retunes
	}
	rep := chaosReport{
		Spec:       spec,
		Duration:   dur.String(),
		Sent:       sent[0] + sent[1],
		Delivered:  delivered,
		InjDrops:   stats.Drops,
		ReorderDrp: reord.Dropped(),
		InjPanics:  stats.Panics,
		Restarts:   restarts,
		ForcedETS:  snap.ForcedETS,
		LateTuples: snap.LateTuples,
		Inversions: inversions,
		Stragglers: stragglers[0] + stragglers[1],
	}
	if ctl != nil {
		rep.AdaptRetunes = ctl.Retunes()
		rep.AdaptApplied = retuned
	}
	fail := func(format string, args ...interface{}) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}

	if waitErr != nil {
		fail("engine failed: %v", waitErr)
	}
	if want := rep.Sent - rep.InjDrops - rep.ReorderDrp; delivered != want {
		fail("tuple accounting broken: delivered %d, want %d (sent %d − dropped %d − reorder-late %d)",
			delivered, want, rep.Sent, rep.InjDrops, rep.ReorderDrp)
	}
	if restarts != stats.Panics || panics != stats.Panics {
		fail("restart accounting broken: injected %d panics, recovered %d, restarted %d",
			stats.Panics, panics, restarts)
	}
	if (cfg.PanicProb > 0 || cfg.PanicEvery > 0) && stats.Panics == 0 {
		fail("no panics injected (probes %d): soak did not exercise the supervisor", stats.Probes)
	}
	if cfg.StallFor > 0 && cfg.StallAfter+cfg.StallFor < dur {
		if rep.ForcedETS == 0 {
			fail("source stalled %v but the watchdog never forced an ETS", cfg.StallFor)
		}
		if rep.ForcedETS > 0 && rep.Stragglers > 0 && rep.LateTuples == 0 {
			fail("stragglers sent below a forced ETS were not counted late")
		}
	}
	lateAtSink := uint64(0)
	if k := snap.Node("k"); k != nil {
		lateAtSink = k.LateTuples
	}
	if inversions > lateAtSink {
		fail("output disordered beyond the late-tuple budget: %d inversions, %d counted late at sink",
			inversions, lateAtSink)
	}
	if snap.TuplesShed != 0 {
		fail("shedder dropped %d tuples with shedding disabled", snap.TuplesShed)
	}

	// Phase 2: the kill-restore-verify drill. A separate checkpointed run is
	// killed without drain at a scheduled crash point, restored from the
	// latest durable snapshot, and replayed above the source watermarks; its
	// output must match a clean reference exactly.
	ckptRep, ckptViol := runKillRestoreVerify("seed=1,crash=80ms", 60_000)
	rep.Ckpt = ckptRep
	for _, v := range ckptViol {
		fail("kill-restore-verify: %s", v)
	}

	fmt.Printf("chaos soak: %v, spec %q\n", dur, spec)
	fmt.Printf("  sent %d (stragglers %d)  delivered %d  injected-drops %d  reorder-late %d\n",
		rep.Sent, rep.Stragglers, rep.Delivered, rep.InjDrops, rep.ReorderDrp)
	fmt.Printf("  panics %d  restarts %d  forced-ets %d  late %d  inversions %d\n",
		rep.InjPanics, rep.Restarts, rep.ForcedETS, rep.LateTuples, rep.Inversions)
	fmt.Printf("  trace: panic %d  restart %d  ets-forced %d  late %d\n",
		tr.Count(metrics.EvNodePanic), tr.Count(metrics.EvNodeRestart),
		tr.Count(metrics.EvETSForced), tr.Count(metrics.EvLateTuple))
	fmt.Printf("  kill-restore-verify: fed %d before crash  checkpoints %d  restored id %d  windows %d/%d\n",
		ckptRep.FedAtCrash, ckptRep.Checkpoints, ckptRep.RestoredID,
		ckptRep.GotWindows, ckptRep.RefWindows)
	if ctl != nil {
		fmt.Printf("  adaptive: %d retunes issued, %d applied at boundaries (trace applied %d)\n",
			rep.AdaptRetunes, rep.AdaptApplied, tr.Count(metrics.EvRetuneApplied))
	}
	if out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(out, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", out)
	}
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "etsbench: chaos violation: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("  all fault-tolerance invariants held")
}
