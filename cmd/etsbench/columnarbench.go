package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/ops"
	rt "repro/internal/runtime"
	"repro/internal/tuple"
	"repro/internal/window"
)

// The columnar benchmark compares the row data plane against the columnar
// one (Options.Columnar + ColBatch ingest) on two pipelines:
//
//   - hotpath: source → filter (~30% pass) → project (drop a column) →
//     hash-split (2 shards) → per-shard tumbling aggregate → sink. Every
//     stage between source and sink runs columnar; this is the
//     filter/project/hash pipeline the tentpole targets.
//   - join: source → filter → TSM hash window-join against a sparse
//     reference stream → aggregate → sink. The join itself is a
//     register-ordered row operator (the runtime converts at its arcs), so
//     this measures the columnar plane in a mixed graph.
//
// Latency is sampled at the sinks as now − ts on aggregate output rows,
// i.e. the delay between a window becoming closable (its end passing under
// the advancing bound) and its result reaching the sink — an ETS-latency
// proxy that the flush rules must keep flat when batches go columnar.

type colConfig struct {
	Name     string `json:"name"`
	Columnar bool   `json:"columnar"`
}

type colResult struct {
	colConfig
	Workload       string  `json:"workload"`
	Tuples         uint64  `json:"tuples"`
	Seconds        float64 `json:"seconds"`
	TuplesPerSec   float64 `json:"tuples_per_sec"`
	AllocsPerTuple float64 `json:"allocs_per_tuple"`
	BytesPerTuple  float64 `json:"bytes_per_tuple"`
	LatencyP50Us   float64 `json:"latency_p50_us"`
	LatencyP99Us   float64 `json:"latency_p99_us"`
	RowsOut        uint64  `json:"rows_out"`
	BatchesSent    uint64  `json:"batches_sent"`
	TuplesSent     uint64  `json:"tuples_sent"`
	ETSGenerated   uint64  `json:"ets_generated"`
}

type colReport struct {
	Tuples        int         `json:"tuples_per_config"`
	GoVersion     string      `json:"go_version"`
	Date          string      `json:"date"`
	Results       []colResult `json:"results"`
	HotpathX      float64     `json:"hotpath_col_vs_row_speedup_x"`
	HotpathP50X   float64     `json:"hotpath_col_vs_row_p50_latency_x"`
	JoinPipelineX float64     `json:"join_col_vs_row_speedup_x"`
}

// colLCG is the shared deterministic value generator: both configs must
// push byte-identical workloads.
type colLCG uint64

func (g *colLCG) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g)
}

func (g *colLCG) row() (key int64, x float64, pay int64) {
	v := g.next()
	return int64((v >> 33) % 64), float64((v>>11)&0xFFFFF) / float64(1<<20), int64(v % 1024)
}

const (
	colSpan      = 256        // tuples per ingest call
	colThreshold = 0.3        // filter pass fraction
	colWindow    = 5_000      // aggregate window width, µs
	colGroups    = 64         // distinct keys
	colRefEvery  = 10_000     // main tuples between reference refreshes (join)
	colBatchSize = 256        // engine arc batch size, both configs
)

// colPipelineFilter builds the shared source → filter → … prefix and
// returns the filter predicate wiring. Schema: [key int, x float, pay int].
func newColFilter(name string) *ops.Select {
	sel := ops.NewSelect(name, nil, func(t *tuple.Tuple) bool {
		return t.Vals[1].AsFloat() < colThreshold
	})
	sel.SetColPredicate(func(b *tuple.ColBatch, keep []bool) {
		c := &b.Cols[1]
		if c.Any == nil && c.Kind == tuple.FloatKind && c.Valid.AllSet(b.Len()) {
			for r, x := range c.F64[:b.Len()] {
				keep[r] = x < colThreshold
			}
			return
		}
		for r := range keep {
			keep[r] = b.Value(1, r).AsFloat() < colThreshold
		}
	})
	return sel
}

// feedRows ingests total main-stream tuples as pooled row batches.
func feedRows(e *rt.Engine, src *ops.Source, total int, ref func(i int)) {
	var g colLCG
	var mag tuple.Magazine
	raws := make([]*tuple.Tuple, 0, colSpan)
	for i := 0; i < total; i += colSpan {
		n := min(colSpan, total-i)
		raws = raws[:0]
		for j := 0; j < n; j++ {
			key, x, pay := g.row()
			t := mag.Get()
			t.Vals = append(t.Vals, tuple.Int(key), tuple.Float(x), tuple.Int(pay))
			raws = append(raws, t)
		}
		e.IngestBatch(src, raws)
		if ref != nil {
			ref(i)
		}
	}
}

// feedCols ingests the identical workload as columnar batches built
// directly in column storage.
func feedCols(e *rt.Engine, src *ops.Source, total int, ref func(i int)) {
	var g colLCG
	for i := 0; i < total; i += colSpan {
		n := min(colSpan, total-i)
		cb := tuple.GetColBatch(3)
		c0, c1, c2 := &cb.Cols[0], &cb.Cols[1], &cb.Cols[2]
		c0.Kind, c1.Kind, c2.Kind = tuple.IntKind, tuple.FloatKind, tuple.IntKind
		for j := 0; j < n; j++ {
			key, x, pay := g.row()
			c0.I64 = append(c0.I64, key)
			c1.F64 = append(c1.F64, x)
			c2.I64 = append(c2.I64, pay)
			cb.Ts = append(cb.Ts, 0) // internal stream: stamped at ingest
		}
		c0.Valid.SetAll(n)
		c1.Valid.SetAll(n)
		c2.Valid.SetAll(n)
		cb.SetLen(n)
		e.IngestColBatch(src, cb)
		if ref != nil {
			ref(i)
		}
	}
}

// runColHotpath measures one config on the filter/project/hash/aggregate
// pipeline.
func runColHotpath(cfg colConfig, total int) colResult {
	sch := tuple.NewSchema("s",
		tuple.Field{Name: "key", Kind: tuple.IntKind},
		tuple.Field{Name: "x", Kind: tuple.FloatKind},
		tuple.Field{Name: "pay", Kind: tuple.IntKind})
	g := graph.New("colbench")
	src := ops.NewSource("src", sch, 0)
	a := g.AddNode(src)
	f := g.AddNode(newColFilter("filter"), a)
	// Non-identity projection: keep [key, x], drop the payload column.
	p := g.AddNode(ops.NewProject("proj", nil, []int{0, 1}), f)
	sp := g.AddNode(ops.NewSplit("split", nil, 2, 0), p)

	// The two sinks run on their own node goroutines, so the shared
	// accumulator needs a lock; callbacks fire once per closed window per
	// group, rare enough that the lock is invisible in the numbers.
	lat := metrics.NewLatency()
	var mu sync.Mutex
	var rowsOut uint64
	sink := func(t *tuple.Tuple, now tuple.Time) {
		mu.Lock()
		rowsOut++
		lat.Observe(now - t.Ts)
		mu.Unlock()
	}
	for s := 0; s < 2; s++ {
		ag := g.AddNode(ops.NewAggregate(fmt.Sprintf("agg%d", s), nil, colWindow, 0,
			ops.AggSpec{Fn: ops.Sum, Col: 1}, ops.AggSpec{Fn: ops.Count}), sp)
		g.AddNode(ops.NewSink(fmt.Sprintf("sink%d", s), sink), ag)
	}
	return runColConfig(cfg, total, "hotpath", g, src, nil, lat, &rowsOut)
}

// runColJoin measures one config on the filter → TSM hash join → aggregate
// pipeline. The reference side refreshes one tuple per key every
// colRefEvery main tuples; the join is row-mode, so the columnar config
// exercises the arc-boundary converters.
func runColJoin(cfg colConfig, total int) colResult {
	schM := tuple.NewSchema("m",
		tuple.Field{Name: "key", Kind: tuple.IntKind},
		tuple.Field{Name: "x", Kind: tuple.FloatKind},
		tuple.Field{Name: "pay", Kind: tuple.IntKind})
	schR := tuple.NewSchema("r",
		tuple.Field{Name: "key", Kind: tuple.IntKind},
		tuple.Field{Name: "w", Kind: tuple.FloatKind})
	g := graph.New("coljoin")
	src := ops.NewSource("src", schM, 0)
	refs := ops.NewSource("refs", schR, 0)
	a := g.AddNode(src)
	b := g.AddNode(refs)
	f := g.AddNode(newColFilter("filter"), a)
	// Keep probe cost bounded and deterministic: the main side retains the
	// last colGroups rows, the reference side one generation of refs.
	j := g.AddNode(ops.NewHashWindowJoin("join", nil,
		window.RowWindow(colGroups), window.RowWindow(colGroups), 0, 0, ops.TSM), f, b)
	ag := g.AddNode(ops.NewAggregate("agg", nil, colWindow, 0,
		ops.AggSpec{Fn: ops.Sum, Col: 4}, ops.AggSpec{Fn: ops.Count}), j)

	lat := metrics.NewLatency()
	var rowsOut uint64
	g.AddNode(ops.NewSink("sink", func(t *tuple.Tuple, now tuple.Time) {
		rowsOut++
		lat.Observe(now - t.Ts)
	}), ag)

	refFeed := func(e *rt.Engine) func(i int) {
		var rg colLCG
		return func(i int) {
			if i%colRefEvery != 0 {
				return
			}
			batch := make([]*tuple.Tuple, 0, colGroups)
			for k := 0; k < colGroups; k++ {
				w := float64(rg.next()&0xFFFF) / float64(1<<16)
				batch = append(batch, tuple.NewData(0, tuple.Int(int64(k)), tuple.Float(w)))
			}
			e.IngestBatch(refs, batch)
		}
	}
	return runColConfigWith(cfg, total, "join", g, src, refFeed, lat, &rowsOut,
		func(e *rt.Engine) { e.CloseStream(refs) })
}

func runColConfig(cfg colConfig, total int, workload string, g *graph.Graph,
	src *ops.Source, refFeed func(e *rt.Engine) func(i int),
	lat *metrics.Latency, rowsOut *uint64) colResult {
	return runColConfigWith(cfg, total, workload, g, src, refFeed, lat, rowsOut, nil)
}

func runColConfigWith(cfg colConfig, total int, workload string, g *graph.Graph,
	src *ops.Source, refFeed func(e *rt.Engine) func(i int),
	lat *metrics.Latency, rowsOut *uint64, closeExtra func(e *rt.Engine)) colResult {
	e, err := rt.New(g, rt.Options{
		OnDemandETS:  true,
		ChannelDepth: 8,
		BatchSize:    colBatchSize,
		Recycle:      true,
		Columnar:     cfg.Columnar,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	e.Start()

	var ref func(i int)
	if refFeed != nil {
		ref = refFeed(e)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	if cfg.Columnar {
		feedCols(e, src, total, ref)
	} else {
		feedRows(e, src, total, ref)
	}
	e.CloseStream(src)
	if closeExtra != nil {
		closeExtra(e)
	}
	e.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	n := uint64(total)
	return colResult{
		colConfig:      cfg,
		Workload:       workload,
		Tuples:         n,
		Seconds:        elapsed.Seconds(),
		TuplesPerSec:   float64(n) / elapsed.Seconds(),
		AllocsPerTuple: float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerTuple:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
		LatencyP50Us:   float64(lat.Percentile(50)),
		LatencyP99Us:   float64(lat.Percentile(99)),
		RowsOut:        *rowsOut,
		BatchesSent:    e.BatchesSent(),
		TuplesSent:     e.TuplesSent(),
		ETSGenerated:   e.ETSGenerated(),
	}
}

// runColumnarBench runs both pipelines under both data planes and writes
// the JSON report.
func runColumnarBench(total int, out string) {
	if total < colSpan {
		fmt.Fprintf(os.Stderr, "etsbench: -columnar-tuples must be ≥ %d (got %d)\n", colSpan, total)
		os.Exit(2)
	}
	rep := colReport{
		Tuples:    total,
		GoVersion: runtime.Version(),
		Date:      time.Now().UTC().Format(time.RFC3339),
	}
	configs := []colConfig{
		{Name: "row", Columnar: false},
		{Name: "columnar", Columnar: true},
	}
	speed := map[string]map[string]colResult{}
	for _, wl := range []struct {
		name string
		run  func(colConfig, int) colResult
		frac int // divisor applied to total (the join pipeline is heavier)
	}{
		{"hotpath", runColHotpath, 1},
		{"join", runColJoin, 4},
	} {
		speed[wl.name] = map[string]colResult{}
		for _, cfg := range configs {
			wl.run(cfg, total/wl.frac/10) // warmup: pools, scheduler, maps
			res := wl.run(cfg, total/wl.frac)
			rep.Results = append(rep.Results, res)
			speed[wl.name][cfg.Name] = res
			fmt.Printf("%-8s %-9s %10.0f tuples/s  %5.2f allocs/tuple  p50 %4.0fµs  p99 %5.0fµs  rows %d\n",
				wl.name, res.Name, res.TuplesPerSec, res.AllocsPerTuple,
				res.LatencyP50Us, res.LatencyP99Us, res.RowsOut)
		}
	}
	if r := speed["hotpath"]["row"]; r.TuplesPerSec > 0 {
		c := speed["hotpath"]["columnar"]
		rep.HotpathX = c.TuplesPerSec / r.TuplesPerSec
		if r.LatencyP50Us > 0 {
			rep.HotpathP50X = c.LatencyP50Us / r.LatencyP50Us
		}
		fmt.Printf("hotpath columnar vs row: %.2fx throughput, p50 latency %.2fx\n",
			rep.HotpathX, rep.HotpathP50X)
	}
	if r := speed["join"]["row"]; r.TuplesPerSec > 0 {
		rep.JoinPipelineX = speed["join"]["columnar"].TuplesPerSec / r.TuplesPerSec
		fmt.Printf("join pipeline columnar vs row: %.2fx throughput\n", rep.JoinPipelineX)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
}
