package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/ops"
	rt "repro/internal/runtime"
	"repro/internal/server"
	"repro/internal/tuple"
)

// The net benchmark measures what the networked ingestion subsystem costs:
// the same union workload (two external-timestamp sources merging through a
// TSM union into one sink, on-demand ETS enabled) is fed once by direct
// IngestBatch calls and once over loopback wire-protocol sessions through
// the session server. Tuples carry their send time on a shared clock, so the
// sink-observed latency is end to end — for the net configuration it
// includes client batching, framing, the socket, and the session decode
// path. The headline ratio is net p50 over in-process p50: how much farther
// from the source an on-demand ETS promise is when the feed is remote.
//
// The run ends with the kill-the-client check: one feed dies abruptly
// (no EOS, no connection close handshake) while the other keeps streaming.
// The source-liveness watchdog must force ETS into the dead source so the
// union keeps emitting, and the final drain must complete — the engine never
// deadlocks on a vanished feed.

type netResult struct {
	Name           string  `json:"name"`
	Tuples         uint64  `json:"tuples"`
	Seconds        float64 `json:"seconds"`
	TuplesPerSec   float64 `json:"tuples_per_sec"`
	LatencyP50Us   float64 `json:"latency_p50_us"`
	LatencyP99Us   float64 `json:"latency_p99_us"`
	LatencyMeanUs  float64 `json:"latency_mean_us"`
	ETSGenerated   uint64  `json:"ets_generated"`
	BatchingFactor float64 `json:"batching_factor"`
}

type killReport struct {
	ForcedETS         uint64 `json:"forced_ets"`
	ResultsBeforeKill uint64 `json:"results_before_kill"`
	ResultsAfterKill  uint64 `json:"results_after_kill"`
	DrainCut          int    `json:"drain_cut_sessions"`
	DeadlockFree      bool   `json:"deadlock_free"`
	EngineErr         string `json:"engine_err,omitempty"`
}

type netReport struct {
	Workload        string      `json:"workload"`
	Tuples          int         `json:"tuples_per_config"`
	GoVersion       string      `json:"go_version"`
	Date            string      `json:"date"`
	InProc          netResult   `json:"in_process"`
	Net             netResult   `json:"net"`
	NetVsInProcP50X float64     `json:"net_vs_inproc_p50_x"`
	Kill            *killReport `json:"kill_client_check,omitempty"`
}

// netWorkload is the union graph plus everything a feed needs to reach it.
type netWorkload struct {
	sch    *tuple.Schema
	s1, s2 *ops.Source
	eng    *rt.Engine
	lat    *metrics.Latency
	sunk   atomic.Uint64
	now    func() tuple.Time
}

func buildNetWorkload(opts rt.Options) *netWorkload {
	w := &netWorkload{}
	base := time.Now()
	w.now = func() tuple.Time { return tuple.Time(time.Since(base).Microseconds()) }
	w.sch = tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind}).WithTS(tuple.External)
	g := graph.New("netbench")
	w.s1 = ops.NewSource("s1", w.sch, 0)
	w.s2 = ops.NewSource("s2", w.sch, 0)
	a := g.AddNode(w.s1)
	b := g.AddNode(w.s2)
	u := g.AddNode(ops.NewUnion("u", nil, 2, ops.TSM), a, b)
	w.lat = metrics.NewLatency()
	g.AddNode(ops.NewSink("k", func(t *tuple.Tuple, now tuple.Time) {
		w.sunk.Add(1)
		if d := now - t.Ts; d >= 0 {
			w.lat.Observe(d)
		}
	}), u)
	opts.OnDemandETS = true
	opts.Now = w.now
	eng, err := rt.New(g, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	w.eng = eng
	return w
}

func (w *netWorkload) lookup(name string) (*tuple.Schema, *ops.Source, error) {
	switch name {
	case "s1":
		return w.sch, w.s1, nil
	case "s2":
		return w.sch, w.s2, nil
	}
	return nil, nil, fmt.Errorf("unknown stream %q", name)
}

func (w *netWorkload) result(name string, n uint64, elapsed time.Duration) netResult {
	res := netResult{
		Name:          name,
		Tuples:        n,
		Seconds:       elapsed.Seconds(),
		TuplesPerSec:  float64(n) / elapsed.Seconds(),
		LatencyP50Us:  float64(w.lat.Percentile(50)),
		LatencyP99Us:  float64(w.lat.Percentile(99)),
		LatencyMeanUs: float64(w.lat.Mean()),
		ETSGenerated:  w.eng.ETSGenerated(),
	}
	if b := w.eng.BatchesSent(); b > 0 {
		res.BatchingFactor = float64(w.eng.TuplesSent()) / float64(b)
	}
	return res
}

// runNetInProc feeds the workload by direct IngestBatch calls.
func runNetInProc(total int) netResult {
	w := buildNetWorkload(rt.Options{BatchSize: 64, Recycle: true})
	w.eng.Start()
	per := total / 2
	start := time.Now()
	feed := func(src *ops.Source) {
		const span = 64
		var mag tuple.Magazine
		raws := make([]*tuple.Tuple, 0, span)
		for i := 0; i < per; i += span {
			n := span
			if rem := per - i; rem < n {
				n = rem
			}
			raws = raws[:0]
			for j := 0; j < n; j++ {
				t := mag.Get()
				t.Ts = w.now()
				t.Vals = append(t.Vals, tuple.Int(1))
				raws = append(raws, t)
			}
			w.eng.IngestBatch(src, raws)
		}
		w.eng.CloseStream(src)
	}
	var wg sync.WaitGroup
	for _, src := range []*ops.Source{w.s1, w.s2} {
		wg.Add(1)
		go func(s *ops.Source) { defer wg.Done(); feed(s) }(src)
	}
	wg.Wait()
	w.eng.Wait()
	return w.result("in-process", uint64(2*per), time.Since(start))
}

// runNetLoopback feeds the workload through the session server over
// loopback, one wire-protocol client per source.
func runNetLoopback(total int) netResult {
	w := buildNetWorkload(rt.Options{BatchSize: 64, Recycle: true})
	w.eng.Start()
	srv, err := server.Listen("127.0.0.1:0", server.Options{
		Backend: server.NewEngineBackend(w.eng, w.lookup),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()

	per := total / 2
	start := time.Now()
	feed := func(stream string) error {
		c, err := client.Dial(srv.Addr().String(), client.Options{
			Name: "netbench-" + stream, BatchSize: 256, HeartbeatEvery: -1,
		})
		if err != nil {
			return err
		}
		defer c.Close()
		s, err := c.Bind(stream, tuple.External, client.StreamOptions{AutoPunctEvery: 256})
		if err != nil {
			return err
		}
		for i := 0; i < per; i++ {
			if err := s.Send(tuple.NewData(w.now(), tuple.Int(1))); err != nil {
				return err
			}
		}
		return s.CloseSend()
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, stream := range []string{"s1", "s2"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if err := feed(name); err != nil {
				errs <- fmt.Errorf("%s: %w", name, err)
			}
		}(stream)
	}
	wg.Wait()
	select {
	case err := <-errs:
		fmt.Fprintf(os.Stderr, "etsbench: net feed: %v\n", err)
		os.Exit(1)
	default:
	}
	w.eng.Wait()
	return w.result("net", uint64(2*per), time.Since(start))
}

// runNetKillCheck kills one of two live feeds without any shutdown handshake
// and verifies the watchdog keeps the query emitting and the drain
// completes.
func runNetKillCheck() killReport {
	w := buildNetWorkload(rt.Options{BatchSize: 16, SourceTimeout: 50 * time.Millisecond})
	w.eng.Start()
	srv, err := server.Listen("127.0.0.1:0", server.Options{
		Backend: server.NewEngineBackend(w.eng, w.lookup),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()

	dial := func(stream string, record func(net.Conn)) (*client.Conn, *client.Stream) {
		c, err := client.Dial(srv.Addr().String(), client.Options{
			Name: "kill-" + stream, BatchSize: 1, HeartbeatEvery: -1,
			Dial: func(addr string) (net.Conn, error) {
				conn, err := net.Dial("tcp", addr)
				if err == nil && record != nil {
					record(conn)
				}
				return conn, err
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
			os.Exit(1)
		}
		s, err := c.Bind(stream, tuple.External, client.StreamOptions{AutoPunctEvery: 4})
		if err != nil {
			fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
			os.Exit(1)
		}
		return c, s
	}

	var victimConn net.Conn
	live, liveStream := dial("s1", nil)
	victim, victimStream := dial("s2", func(c net.Conn) { victimConn = c })
	defer live.Close()
	defer victim.Close()

	// Both feeds stream paced tuples; then s2's connection dies mid-stream.
	stopLive := make(chan struct{})
	var liveWg sync.WaitGroup
	liveWg.Add(1)
	go func() {
		defer liveWg.Done()
		for {
			select {
			case <-stopLive:
				return
			default:
			}
			liveStream.Send(tuple.NewData(w.now(), tuple.Int(1)))
			time.Sleep(200 * time.Microsecond)
		}
	}()
	for i := 0; i < 100; i++ {
		victimStream.Send(tuple.NewData(w.now(), tuple.Int(2)))
		time.Sleep(200 * time.Microsecond)
	}
	rep := killReport{ResultsBeforeKill: w.sunk.Load()}
	victimConn.Close() // abrupt: no EOS, no drain — the feed just vanishes

	// The union now depends on the watchdog forcing ETS into the silent s2.
	deadline := time.Now().Add(10 * time.Second)
	target := rep.ResultsBeforeKill + 1000
	for time.Now().Before(deadline) {
		if w.eng.Snapshot().ForcedETS > 0 && w.sunk.Load() >= target {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	rep.ForcedETS = w.eng.Snapshot().ForcedETS
	rep.ResultsAfterKill = w.sunk.Load() - rep.ResultsBeforeKill

	// Graceful path out: the live feed finishes, the drain EOSes the
	// orphaned s2, and the graph must run dry.
	close(stopLive)
	liveWg.Wait()
	liveStream.CloseSend()
	live.Close()
	rep.DrainCut = srv.Drain(time.Second)
	done := make(chan error, 1)
	go func() { done <- w.eng.Wait() }()
	select {
	case err := <-done:
		rep.DeadlockFree = true
		if err != nil {
			rep.EngineErr = err.Error()
		}
	case <-time.After(10 * time.Second):
		rep.DeadlockFree = false
		w.eng.Stop()
		<-done
	}
	return rep
}

// runNetBench runs both feeds plus the kill check and writes the report.
func runNetBench(total int, out string) {
	if total < 2 {
		fmt.Fprintf(os.Stderr, "etsbench: -net-tuples must be ≥ 2 (got %d)\n", total)
		os.Exit(2)
	}
	rep := netReport{
		Workload:  "union: 2 external-ts sources -> TSM union -> sink, on-demand ETS, end-to-end latency",
		Tuples:    total,
		GoVersion: runtime.Version(),
		Date:      time.Now().UTC().Format(time.RFC3339),
	}
	// One warmup pass each primes pools, the scheduler, and the TCP stack.
	runNetInProc(total / 10)
	rep.InProc = runNetInProc(total)
	runNetLoopback(total / 10)
	rep.Net = runNetLoopback(total)
	if rep.InProc.LatencyP50Us > 0 {
		rep.NetVsInProcP50X = rep.Net.LatencyP50Us / rep.InProc.LatencyP50Us
	}
	for _, r := range []netResult{rep.InProc, rep.Net} {
		fmt.Printf("%-12s %10.0f tuples/s  p50 %6.0fµs  p99 %6.0fµs  ets %d\n",
			r.Name, r.TuplesPerSec, r.LatencyP50Us, r.LatencyP99Us, r.ETSGenerated)
	}
	fmt.Printf("net vs in-process p50: %.2fx\n", rep.NetVsInProcP50X)

	kill := runNetKillCheck()
	rep.Kill = &kill
	fmt.Printf("kill-client: forced ETS %d, results after kill %d, drain cut %d, deadlock-free %v\n",
		kill.ForcedETS, kill.ResultsAfterKill, kill.DrainCut, kill.DeadlockFree)
	ok := kill.DeadlockFree && kill.ForcedETS > 0 && kill.ResultsAfterKill > 0 && kill.EngineErr == ""

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
	if !ok {
		fmt.Fprintln(os.Stderr, "etsbench: kill-client check FAILED")
		os.Exit(1)
	}
}
