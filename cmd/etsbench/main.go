// Command etsbench regenerates the paper's tables and figures (and this
// repository's ablations) on the simulation substrate.
//
// Usage:
//
//	etsbench -list             list available figure ids
//	etsbench -fig fig7a        regenerate one figure
//	etsbench -fig all          regenerate everything (takes a few minutes)
//	etsbench -scenarios        quick A/B/C/D summary at default settings
//	etsbench -runtime          benchmark the concurrent engine's batched
//	                           data plane vs the per-tuple baseline and
//	                           write BENCH_runtime.json
//	etsbench -net              benchmark loopback wire-protocol ingest vs
//	                           in-process feeding, run the kill-the-client
//	                           watchdog check, and write BENCH_net.json
//	etsbench -shards           sweep the partition rewrite over 1/2/4/8
//	                           shards on the union+join workload and
//	                           write BENCH_shard.json
//	etsbench -dist             benchmark a plan cut across a coordinator
//	                           plus two loopback workers against the same
//	                           plan in-process and write BENCH_dist.json
//	etsbench -chaos            soak the concurrent engine under seeded
//	                           fault injection (panics, drops, a source
//	                           stall) and verify the fault-tolerance
//	                           invariants; non-zero exit on violation
//	etsbench -columnar         benchmark the columnar data plane against
//	                           the row plane on the filter/project/hash
//	                           and filter/join/aggregate pipelines and
//	                           write BENCH_columnar.json
//	etsbench -obs              measure punctuation-tracing overhead (span
//	                           collector on vs off on the batched union
//	                           workload) and write BENCH_obs.json
//	etsbench -adaptive         benchmark the adaptive controller against
//	                           static configurations on the drifting-skew
//	                           union+join workload and the probe-reorder
//	                           multiway join; write BENCH_adaptive.json
//	etsbench -adaptive-smoke   short adaptive run asserting at least one
//	                           retune applied at a punctuation boundary
//	                           with all invariants held (CI gate)
//	etsbench -ckpt             run the kill-restore-verify crash drill and
//	                           measure checkpointing's steady-state overhead
//	                           against a budget; write BENCH_ckpt.json
//	etsbench -ckpt-verify      crash drill only: checkpointed run killed
//	                           without drain, restored from the latest
//	                           snapshot, watermark replay, exact-output
//	                           comparison (CI gate)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "figure id to regenerate (or 'all')")
	list := flag.Bool("list", false, "list figure ids")
	scen := flag.Bool("scenarios", false, "print the A/B/C/D scenario summary")
	hbRate := flag.Float64("hb", 10, "heartbeat rate for scenario B in the summary")
	csv := flag.Bool("csv", false, "emit comma-separated values instead of text tables")
	rtBench := flag.Bool("runtime", false, "benchmark the concurrent engine's batched data plane")
	rtTuples := flag.Int("runtime-tuples", 2_000_000, "tuples per configuration for -runtime")
	rtOut := flag.String("runtime-out", "BENCH_runtime.json", "output file for -runtime results")
	netBench := flag.Bool("net", false, "benchmark loopback wire-protocol ingest vs in-process and run the kill-the-client check")
	netTuples := flag.Int("net-tuples", 300_000, "tuples per configuration for -net")
	netOut := flag.String("net-out", "BENCH_net.json", "output file for -net results")
	distBench := flag.Bool("dist", false, "benchmark the distributed cut (coordinator + 2 loopback workers) vs in-process")
	distTuples := flag.Int("dist-tuples", 100_000, "join pairs per configuration for -dist")
	distOut := flag.String("dist-out", "BENCH_dist.json", "output file for -dist results")
	shBench := flag.Bool("shards", false, "benchmark the partition rewrite (1/2/4/8 shards)")
	shTuples := flag.Int("shards-tuples", 150_000, "tuples per configuration for -shards")
	shOut := flag.String("shards-out", "BENCH_shard.json", "output file for -shards results")
	chaos := flag.Bool("chaos", false, "soak the concurrent engine under fault injection and check invariants")
	chaosSpec := flag.String("chaos-spec", "seed=1,panic=u+r+k:0.002,drop=0.01,stall=s2:600ms:400ms",
		"fault spec for -chaos (see internal/fault.ParseSpec)")
	chaosSeed := flag.Int64("chaos-seed", 0, "override the fault spec's PRNG seed (0 keeps the spec's)")
	chaosDur := flag.Duration("chaos-duration", 2*time.Second, "how long -chaos feeds the workload")
	chaosOut := flag.String("chaos-out", "", "optional JSON report file for -chaos")
	colBench := flag.Bool("columnar", false, "benchmark the columnar data plane vs the row plane")
	colTuples := flag.Int("columnar-tuples", 2_000_000, "tuples per configuration for -columnar")
	colOut := flag.String("columnar-out", "BENCH_columnar.json", "output file for -columnar results")
	adBench := flag.Bool("adaptive", false, "benchmark the adaptive controller vs static configurations on the drifting-skew workload")
	adTuples := flag.Int("adaptive-tuples", 240_000, "tuples per configuration for -adaptive")
	adOut := flag.String("adaptive-out", "BENCH_adaptive.json", "output file for -adaptive results")
	obsBench := flag.Bool("obs", false, "measure punctuation-tracing overhead (span collector on vs off)")
	obsTuples := flag.Int("obs-tuples", 2_000_000, "tuples per configuration for -obs")
	obsOut := flag.String("obs-out", "BENCH_obs.json", "output file for -obs results")
	adSmoke := flag.Bool("adaptive-smoke", false, "short adaptive run asserting at least one retune applied with invariants held")
	adSmokeTuples := flag.Int("adaptive-smoke-tuples", 60_000, "tuples for -adaptive-smoke")
	chaosAdaptive := flag.Bool("chaos-adaptive", false, "run -chaos with the adaptive controller attached (invariants unchanged)")
	ckptBench := flag.Bool("ckpt", false, "run the crash drill plus the checkpoint-overhead benchmark against the budget")
	ckptVerify := flag.Bool("ckpt-verify", false, "run only the kill-restore-verify crash drill (CI gate)")
	ckptTuples := flag.Int("ckpt-tuples", 1_000_000, "tuples per source for -ckpt (the drill uses a tenth)")
	ckptOut := flag.String("ckpt-out", "BENCH_ckpt.json", "output file for -ckpt results")
	ckptBudget := flag.Float64("ckpt-budget", 5, "max allowed checkpoint overhead for -ckpt, percent")
	ckptSpec := flag.String("ckpt-spec", "seed=1,crash=80ms", "fault spec scheduling the drill's crash (see internal/fault.ParseSpec)")
	flag.Parse()

	render := func(f experiments.Figure) string {
		if *csv {
			return f.CSV()
		}
		return f.Render()
	}
	switch {
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
	case *rtBench:
		runRuntimeBench(*rtTuples, *rtOut)
	case *netBench:
		runNetBench(*netTuples, *netOut)
	case *distBench:
		runDistBench(*distTuples, *distOut)
	case *shBench:
		runShardBench(*shTuples, *shOut)
	case *chaos:
		runChaos(*chaosSpec, *chaosSeed, *chaosDur, *chaosOut, *chaosAdaptive)
	case *ckptBench:
		runCkptBench(*ckptTuples, *ckptOut, *ckptBudget, *ckptSpec)
	case *ckptVerify:
		runCkptVerify(*ckptSpec, *ckptTuples/10)
	case *colBench:
		runColumnarBench(*colTuples, *colOut)
	case *obsBench:
		runObsBench(*obsTuples, *obsOut)
	case *adBench:
		runAdaptiveBench(*adTuples, *adOut)
	case *adSmoke:
		runAdaptiveSmoke(*adSmokeTuples)
	case *scen:
		runScenarios(*hbRate)
	case *fig == "all":
		for _, e := range experiments.Registry() {
			start := time.Now()
			f := e.Generate()
			fmt.Print(render(f))
			if !*csv {
				fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
			}
		}
	case *fig != "":
		gen := experiments.ByID(*fig)
		if gen == nil {
			fmt.Fprintf(os.Stderr, "unknown figure %q; use -list\n", *fig)
			os.Exit(2)
		}
		fmt.Print(render(gen()))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runScenarios(hb float64) {
	fmt.Println("scenario summary (union query, 50/0.05 t/s Poisson, 2000s virtual):")
	for _, s := range []experiments.Scenario{
		experiments.ScenarioA, experiments.ScenarioB,
		experiments.ScenarioC, experiments.ScenarioD,
	} {
		cfg := experiments.Default(s)
		if s == experiments.ScenarioB {
			cfg.HeartbeatRate = hb
		}
		fmt.Println(experiments.Run(cfg))
	}
}
