package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/ops"
	rt "repro/internal/runtime"
	"repro/internal/tuple"
	"repro/internal/window"
)

// The shard benchmark measures the partition rewrite on the union+join
// workload: two sources merge through a TSM union into the left input of a
// window equi-join; a third source feeds the right input. Both IWP operators
// are partitionable, so Options.Shards = P replicates each into P
// hash-partitioned replicas behind splitters and a min-watermark merge.
//
// The join is the nested-loop equi-join, whose probe scans the opposite
// window — the classic scan-bound stream join. Sharding P ways cuts each
// shard's window occupancy to ~1/P of the keys, so total probe work drops
// ~P× regardless of core count; on this repo's single-core reference
// machine, that state pruning — not thread parallelism — is where the
// speedup comes from (GOMAXPROCS is recorded in the report).
//
// The workload is built so the output size is sharding-invariant: right
// tuple i carries (ts=i, key=i); left tuple i carries (ts=i+lead, key=i)
// with lead < span, so each left tuple matches exactly its right twin and
// right probes never match. join_rows must equal the left-tuple count under
// every configuration — a built-in correctness check.
//
// Latency is reported two ways. The sustained phase records in-system p50
// (arrival to sink, on-demand ETS enabled) under full load — the headline
// comparison, where sharding shortens queues and improves latency. A second,
// sleep-paced phase isolates the idle-stream ETS round trip: each iteration
// ingests one matching pair whose left tuple can only be released by a
// demanded ETS from the right source, so sink latency ≈ the demand round
// trip — through splitters, every shard, and the min-watermark merge in the
// sharded configurations, which is why it grows with the shard count.

const (
	shardSpan = 2048 // join window span (virtual time units)
	shardLead = 1000 // left stream timestamp lead; must stay below shardSpan
)

type shardConfig struct {
	Name   string `json:"name"`
	Shards int    `json:"shards"`
}

type shardResult struct {
	shardConfig
	Tuples         uint64   `json:"tuples"`
	Seconds        float64  `json:"seconds"`
	TuplesPerSec   float64  `json:"tuples_per_sec"`
	JoinRows       uint64   `json:"join_rows"`
	ShardTuples    []uint64 `json:"shard_tuples,omitempty"`
	ETSGenerated   uint64   `json:"ets_generated"`
	LoadedP50Us    float64  `json:"loaded_latency_p50_us"`
	LatencyP50Us   float64  `json:"ets_latency_p50_us"`
	LatencyP95Us   float64  `json:"ets_latency_p95_us"`
	LatencySamples int      `json:"ets_latency_samples"`
}

type shardReport struct {
	Workload   string        `json:"workload"`
	Tuples     int           `json:"tuples_per_config"`
	WindowSpan int           `json:"window_span"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Date       string        `json:"date"`
	Results    []shardResult `json:"results"`
	// SpeedupX4 is 4-shard vs 1-shard throughput (acceptance: ≥ 2.5).
	SpeedupX4 float64 `json:"four_shard_speedup_x"`
	// LatencyRatioX4 is 4-shard vs 1-shard p50 output latency under the
	// sustained workload with on-demand ETS enabled (acceptance: within
	// 10%, i.e. ≤ 1.10; below 1.0 means sharding improved latency). The
	// idle-stream ETS round trip is reported per-config separately — it
	// grows with shard count because a release must traverse splitter,
	// every shard, and the merge sequentially on one core, but it stays
	// sub-millisecond and only occurs when the system is otherwise idle.
	LatencyRatioX4 float64 `json:"four_shard_latency_ratio"`
}

// buildShardGraph assembles the union+join workload. ts selects external
// timestamps (throughput phase, deterministic output) or internal stamping
// (latency phase, arrival-time semantics).
func buildShardGraph(ts tuple.TSKind, cb func(*tuple.Tuple, tuple.Time)) (*graph.Graph, [3]*ops.Source) {
	sch := tuple.NewSchema("s",
		tuple.Field{Name: "key", Kind: tuple.IntKind},
		tuple.Field{Name: "seq", Kind: tuple.IntKind},
	).WithTS(ts)
	// The throughput phase drives virtual external timestamps far slower
	// than the wall clock the external ETS estimator extrapolates with, so
	// δ must cover the whole virtual horizon: otherwise a demanded ETS
	// overshoots data the driver has not ingested yet and the join-row
	// count stops being deterministic (expiry would depend on timing).
	const δ = 1 << 40
	g := graph.New("shardbench")
	s1 := ops.NewSource("s1", sch, δ)
	s2 := ops.NewSource("s2", sch, δ)
	s3 := ops.NewSource("s3", sch, δ)
	a := g.AddNode(s1)
	b := g.AddNode(s2)
	c := g.AddNode(s3)
	u := g.AddNode(ops.NewUnion("u", sch, 2, ops.TSM), a, b)
	j := g.AddNode(ops.NewEquiWindowJoin("j", nil,
		window.TimeWindow(shardSpan), window.TimeWindow(shardSpan), 0, 0, ops.TSM), u, c)
	g.AddNode(ops.NewSink("k", cb), j)
	return g, [3]*ops.Source{s1, s2, s3}
}

// runShardThroughput pushes total tuples (half left, half right) through the
// workload at the given shard count and measures it.
func runShardThroughput(shards, total int) shardResult {
	var rows atomic.Uint64
	lat := metrics.NewLatency()
	g, srcs := buildShardGraph(tuple.External, func(t *tuple.Tuple, now tuple.Time) {
		rows.Add(1)
		lat.Observe(now - t.Arrived) // sink goroutine only: no locking needed
	})
	e, err := rt.New(g, rt.Options{
		OnDemandETS: true,
		Shards:      shards,
		Recycle:     true,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	e.Start()

	per := total / 2 // tuples per side
	const span = 64
	var magL, magR tuple.Magazine
	mk := func(mag *tuple.Magazine, ts tuple.Time, key, seq int64) *tuple.Tuple {
		t := mag.Get()
		t.Ts = ts
		t.Kind = tuple.Data
		t.Vals = append(t.Vals, tuple.Int(key), tuple.Int(seq))
		return t
	}
	start := time.Now()
	rawsL := make([]*tuple.Tuple, 0, span)
	rawsR := make([]*tuple.Tuple, 0, span)
	for i := 0; i < per; i += span {
		n := span
		if rem := per - i; rem < n {
			n = rem
		}
		rawsR = rawsR[:0]
		rawsL = rawsL[:0]
		for k := 0; k < n; k++ {
			seq := int64(i + k)
			rawsR = append(rawsR, mk(&magR, tuple.Time(seq), seq, seq))
			rawsL = append(rawsL, mk(&magL, tuple.Time(seq+shardLead), seq, seq))
		}
		// Right stream leads in ingestion as it does in timestamps.
		e.IngestBatch(srcs[2], rawsR)
		if (i/span)%2 == 0 {
			e.IngestBatch(srcs[0], rawsL)
		} else {
			e.IngestBatch(srcs[1], rawsL)
		}
	}
	for _, s := range srcs {
		e.CloseStream(s)
	}
	e.Wait()
	elapsed := time.Since(start)

	n := uint64(2 * per)
	res := shardResult{
		shardConfig:  shardConfig{Name: fmt.Sprintf("shards-%d", shards), Shards: shards},
		Tuples:       n,
		Seconds:      elapsed.Seconds(),
		TuplesPerSec: float64(n) / elapsed.Seconds(),
		JoinRows:     rows.Load(),
		ShardTuples:  e.ShardTuples(),
		ETSGenerated: e.ETSGenerated(),
		LoadedP50Us:  float64(lat.Percentile(50)),
	}
	if res.JoinRows != uint64(per) {
		fmt.Fprintf(os.Stderr, "etsbench: shards=%d produced %d join rows, want %d — sharding changed the result!\n",
			shards, res.JoinRows, per)
		os.Exit(1)
	}
	return res
}

// runShardLatency measures on-demand ETS output latency on the same graph
// with internal timestamps, sleep-paced far below capacity. Each iteration's
// left tuple blocks until a demanded ETS from the right source releases it.
func runShardLatency(shards, iters int) *metrics.Latency {
	lat := metrics.NewLatency()
	g, srcs := buildShardGraph(tuple.Internal, func(t *tuple.Tuple, now tuple.Time) {
		lat.Observe(now - t.Arrived) // sink goroutine only: no locking needed
	})
	e, err := rt.New(g, rt.Options{
		OnDemandETS: true,
		Shards:      shards,
		Recycle:     false, // keep the latency path identical across configs
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	e.Start()
	for i := 0; i < iters; i++ {
		seq := int64(i)
		e.Ingest(srcs[2], tuple.NewData(0, tuple.Int(seq), tuple.Int(seq)))
		left := srcs[0]
		if i%2 == 1 {
			left = srcs[1]
		}
		e.Ingest(left, tuple.NewData(0, tuple.Int(seq), tuple.Int(seq)))
		time.Sleep(time.Millisecond)
	}
	for _, s := range srcs {
		e.CloseStream(s)
	}
	e.Wait()
	return lat
}

// runShardBench runs the 1/2/4/8 sweep and writes the JSON report.
func runShardBench(total int, out string) {
	if total < 4 {
		fmt.Fprintf(os.Stderr, "etsbench: -shards-tuples must be ≥ 4 (got %d)\n", total)
		os.Exit(2)
	}
	rep := shardReport{
		Workload:   "union+join: (s1 ∪ s2) ⋈[key, nested-loop] s3, on-demand ETS, partition rewrite",
		Tuples:     total,
		WindowSpan: shardSpan,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Date:       time.Now().UTC().Format(time.RFC3339),
	}
	const latIters = 150
	var base, four shardResult
	for _, shards := range []int{1, 2, 4, 8} {
		runShardThroughput(shards, total/10) // warmup: pools, scheduler
		res := runShardThroughput(shards, total)
		lat := runShardLatency(shards, latIters)
		res.LatencyP50Us = float64(lat.Percentile(50))
		res.LatencyP95Us = float64(lat.Percentile(95))
		res.LatencySamples = lat.Count()
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-10s %10.0f tuples/s  %8d rows  loaded p50 %6.0fµs  ets-lat p50 %5.0fµs p95 %5.0fµs  shard-tuples %v\n",
			res.Name, res.TuplesPerSec, res.JoinRows, res.LoadedP50Us,
			res.LatencyP50Us, res.LatencyP95Us, res.ShardTuples)
		switch shards {
		case 1:
			base = res
		case 4:
			four = res
		}
	}
	if base.TuplesPerSec > 0 {
		rep.SpeedupX4 = four.TuplesPerSec / base.TuplesPerSec
		fmt.Printf("4 shards vs 1: %.2fx throughput", rep.SpeedupX4)
		if base.LoadedP50Us > 0 {
			rep.LatencyRatioX4 = four.LoadedP50Us / base.LoadedP50Us
			fmt.Printf(", %.2fx loaded p50 latency", rep.LatencyRatioX4)
		}
		fmt.Println()
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
}
