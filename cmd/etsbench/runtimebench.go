package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/ops"
	rt "repro/internal/runtime"
	"repro/internal/tuple"
)

// The runtime benchmark compares the concurrent engine's per-tuple baseline
// against the batched, pooled data plane on the union workload (two sources
// merging through a TSM union into one sink). Each configuration pushes the
// same number of tuples through the graph and records throughput, allocation
// rate, in-system latency, and the achieved batching factor; the results are
// written to a JSON file so regressions are diffable.

// rtConfig is one engine configuration under test.
type rtConfig struct {
	Name string `json:"name"`
	// BatchSize 1 with per-tuple Ingest is the unbatched baseline.
	BatchSize int  `json:"batch_size"`
	Batch     bool `json:"ingest_batch"` // use IngestBatch + pooled tuples
	Recycle   bool `json:"recycle"`
}

// rtResult is one configuration's measurement.
type rtResult struct {
	rtConfig
	Tuples         uint64  `json:"tuples"`
	Seconds        float64 `json:"seconds"`
	TuplesPerSec   float64 `json:"tuples_per_sec"`
	AllocsPerTuple float64 `json:"allocs_per_tuple"`
	BytesPerTuple  float64 `json:"bytes_per_tuple"`
	LatencyP50Us   float64 `json:"latency_p50_us"`
	LatencyP99Us   float64 `json:"latency_p99_us"`
	LatencyMeanUs  float64 `json:"latency_mean_us"`
	BatchesSent    uint64  `json:"batches_sent"`
	TuplesSent     uint64  `json:"tuples_sent"`
	BatchingFactor float64 `json:"batching_factor"`
	ETSGenerated   uint64  `json:"ets_generated"`
}

type rtReport struct {
	Workload  string     `json:"workload"`
	Tuples    int        `json:"tuples_per_config"`
	GoVersion string     `json:"go_version"`
	Date      string     `json:"date"`
	Results   []rtResult `json:"results"`
	SpeedupX  float64    `json:"batched_vs_per_tuple_speedup_x"`
}

// runRuntimeConfig pushes total tuples (split across two sources) through the
// union graph under one configuration and measures it.
func runRuntimeConfig(cfg rtConfig, total int) rtResult {
	sch := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind})
	g := graph.New("rtbench")
	s1 := ops.NewSource("s1", sch, 0)
	s2 := ops.NewSource("s2", sch, 0)
	a := g.AddNode(s1)
	b := g.AddNode(s2)
	u := g.AddNode(ops.NewUnion("u", nil, 2, ops.TSM), a, b)

	// The sink samples in-system latency: engine-clock delta between source
	// arrival stamping and sink delivery. Sink callbacks run on the sink's
	// goroutine, so the Latency accumulator needs no locking; with Recycle
	// on, the callback must not retain the tuple — it only reads it.
	lat := metrics.NewLatency()
	sink := ops.NewSink("k", func(t *tuple.Tuple, now tuple.Time) {
		lat.Observe(now - t.Arrived)
	})
	g.AddNode(sink, u)

	// Equalize buffering in *tuples*, not batches: a batched arc at the same
	// channel depth would hold BatchSize× more tuples in flight and its
	// queueing latency would not be comparable.
	depth := 1024 / cfg.BatchSize
	if depth < 4 {
		depth = 4
	}
	e, err := rt.New(g, rt.Options{
		OnDemandETS:  true,
		ChannelDepth: depth,
		BatchSize:    cfg.BatchSize,
		Recycle:      cfg.Recycle,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	e.Start()

	per := total / 2
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	if cfg.Batch {
		const span = 64
		var mag tuple.Magazine
		raws := make([]*tuple.Tuple, 0, span)
		fill := func(n int) {
			raws = raws[:0]
			for j := 0; j < n; j++ {
				t := mag.Get()
				t.Vals = append(t.Vals, tuple.Int(1))
				raws = append(raws, t)
			}
		}
		for i := 0; i < per; i += span {
			n := span
			if rem := per - i; rem < n {
				n = rem
			}
			fill(n)
			e.IngestBatch(s1, raws)
			fill(n)
			e.IngestBatch(s2, raws)
		}
	} else {
		for i := 0; i < per; i++ {
			e.Ingest(s1, tuple.NewData(0, tuple.Int(1)))
			e.Ingest(s2, tuple.NewData(0, tuple.Int(1)))
		}
	}
	e.CloseStream(s1)
	e.CloseStream(s2)
	e.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	n := uint64(2 * per)
	res := rtResult{
		rtConfig:       cfg,
		Tuples:         n,
		Seconds:        elapsed.Seconds(),
		TuplesPerSec:   float64(n) / elapsed.Seconds(),
		AllocsPerTuple: float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerTuple:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
		LatencyP50Us:   float64(lat.Percentile(50)),
		LatencyP99Us:   float64(lat.Percentile(99)),
		LatencyMeanUs:  float64(lat.Mean()),
		BatchesSent:    e.BatchesSent(),
		TuplesSent:     e.TuplesSent(),
		ETSGenerated:   e.ETSGenerated(),
	}
	if res.BatchesSent > 0 {
		res.BatchingFactor = float64(res.TuplesSent) / float64(res.BatchesSent)
	}
	return res
}

// runRuntimeBench runs every configuration and writes the JSON report.
func runRuntimeBench(total int, out string) {
	if total < 2 {
		fmt.Fprintf(os.Stderr, "etsbench: -runtime-tuples must be ≥ 2 (got %d)\n", total)
		os.Exit(2)
	}
	configs := []rtConfig{
		{Name: "per-tuple", BatchSize: 1, Batch: false, Recycle: false},
		{Name: "batched-64", BatchSize: 64, Batch: true, Recycle: true},
		{Name: "batched-64-norecycle", BatchSize: 64, Batch: true, Recycle: false},
		{Name: "batched-256", BatchSize: 256, Batch: true, Recycle: true},
	}
	rep := rtReport{
		Workload:  "union: 2 sources -> TSM union -> sink, on-demand ETS",
		Tuples:    total,
		GoVersion: runtime.Version(),
		Date:      time.Now().UTC().Format(time.RFC3339),
	}
	var base, batched float64
	for _, cfg := range configs {
		// One warmup pass primes pools and the scheduler; the measured pass
		// follows.
		runRuntimeConfig(cfg, total/10)
		res := runRuntimeConfig(cfg, total)
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-22s %10.0f tuples/s  %5.2f allocs/tuple  p50 %4.0fµs  p99 %5.0fµs  batching %5.1f\n",
			res.Name, res.TuplesPerSec, res.AllocsPerTuple,
			res.LatencyP50Us, res.LatencyP99Us, res.BatchingFactor)
		switch res.Name {
		case "per-tuple":
			base = res.TuplesPerSec
		case "batched-64":
			batched = res.TuplesPerSec
		}
	}
	if base > 0 {
		rep.SpeedupX = batched / base
		fmt.Printf("batched-64 vs per-tuple: %.2fx\n", rep.SpeedupX)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
}
