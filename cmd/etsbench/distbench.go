package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/metrics"
	rt "repro/internal/runtime"
	"repro/internal/server"
	"repro/internal/tuple"
)

// The dist benchmark prices plan shipping: the same sharded join runs once in
// a single process and once cut across a coordinator plus two loopback
// workers (the shard replicas live on the workers, splitters and the merge on
// the coordinator, so every joined tuple crosses the wire twice). Tuples
// carry their send time on a clock shared by all three executors, making the
// sink-observed latency end to end — for the distributed configuration it
// includes the ingest session, both network links, and the remote fragment's
// scheduling. The headline ratio is distributed p50 over in-process p50: what
// a cut arc costs relative to an in-memory one. Both configurations must
// produce exactly one result per input pair; a mismatch fails the run,
// because a benchmark of a wrong answer is worthless.

// distScript is the benchmark workload: an equi-join whose unique keys make
// every input pair produce exactly one output row.
const distBenchScript = `
	CREATE STREAM a (k int, v float) TIMESTAMP EXTERNAL SKEW 100ms;
	CREATE STREAM b (k int, w float) TIMESTAMP EXTERNAL SKEW 100ms;
	SELECT a.k, v, w FROM a JOIN b ON a.k = b.k WINDOW 5s;
`

type distResult struct {
	Name          string  `json:"name"`
	Pairs         int     `json:"pairs"`
	Results       uint64  `json:"results"`
	Seconds       float64 `json:"seconds"`
	PairsPerSec   float64 `json:"pairs_per_sec"`
	LatencyP50Us  float64 `json:"latency_p50_us"`
	LatencyP99Us  float64 `json:"latency_p99_us"`
	LatencyMeanUs float64 `json:"latency_mean_us"`
}

type distReport struct {
	Workload         string     `json:"workload"`
	PairsPerConfig   int        `json:"pairs_per_config"`
	Executors        int        `json:"executors"`
	Shards           int        `json:"shards"`
	GoVersion        string     `json:"go_version"`
	Date             string     `json:"date"`
	InProc           distResult `json:"in_process"`
	Dist             distResult `json:"distributed"`
	DistVsInProcP50X float64    `json:"dist_vs_inproc_p50_x"`
	ResultsMatch     bool       `json:"results_match"`
}

// runDistInProc runs the workload in one sharded engine fed by direct
// IngestBatch calls: the reference both for speed and for the exact result
// count.
func runDistInProc(pairs, shards int) distResult {
	base := time.Now()
	now := func() tuple.Time { return tuple.Time(time.Since(base).Microseconds()) }
	lat := metrics.NewLatency()
	var sunk atomic.Uint64
	eng := core.NewEngine()
	if _, err := eng.ExecuteScript(distBenchScript, func(t *tuple.Tuple, at tuple.Time) {
		sunk.Add(1)
		if d := at - t.Ts; d >= 0 {
			lat.Observe(d)
		}
	}); err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	re, err := eng.BuildRuntime(rt.Options{Shards: shards, BatchSize: 64, Now: now})
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	re.Start()
	_, srcA, errA := eng.LookupStream("a")
	_, srcB, errB := eng.LookupStream("b")
	if errA != nil || errB != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v %v\n", errA, errB)
		os.Exit(1)
	}
	start := time.Now()
	const span = 64
	bufA := make([]*tuple.Tuple, 0, span)
	bufB := make([]*tuple.Tuple, 0, span)
	for i := 0; i < pairs; i += span {
		n := span
		if rem := pairs - i; rem < n {
			n = rem
		}
		bufA, bufB = bufA[:0], bufB[:0]
		for j := 0; j < n; j++ {
			k := int64(i + j)
			ts := now()
			bufA = append(bufA, tuple.NewData(ts, tuple.Int(k), tuple.Float(0.5)))
			bufB = append(bufB, tuple.NewData(ts, tuple.Int(k), tuple.Float(2)))
		}
		re.IngestBatch(srcA, bufA)
		re.IngestBatch(srcB, bufB)
	}
	re.CloseStream(srcA)
	re.CloseStream(srcB)
	if err := re.Wait(); err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	return distResult{
		Name:          "in-process",
		Pairs:         pairs,
		Results:       sunk.Load(),
		Seconds:       elapsed.Seconds(),
		PairsPerSec:   float64(pairs) / elapsed.Seconds(),
		LatencyP50Us:  float64(lat.Percentile(50)),
		LatencyP99Us:  float64(lat.Percentile(99)),
		LatencyMeanUs: float64(lat.Mean()),
	}
}

// runDistLoopback ships the same plan across a coordinator plus two loopback
// workers and feeds it over the wire like any external client.
func runDistLoopback(pairs, shards int) distResult {
	base := time.Now()
	now := func() tuple.Time { return tuple.Time(time.Since(base).Microseconds()) }
	lat := metrics.NewLatency()
	var sunk atomic.Uint64

	const execs = 3
	workers := make([]*dist.Worker, 0, execs)
	addrs := make([]string, 0, execs)
	for i := 0; i < execs; i++ {
		w := dist.NewWorker(dist.WorkerConfig{
			Runtime:    rt.Options{BatchSize: 64, Now: now},
			ClientName: fmt.Sprintf("distbench-exec%d", i),
			Client:     client.Options{BatchSize: 256, HeartbeatEvery: -1},
			OnRow: func(_ uint64, t *tuple.Tuple, at tuple.Time) {
				sunk.Add(1)
				if d := at - t.Ts; d >= 0 {
					lat.Observe(d)
				}
			},
		}, nil)
		srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: w, Plans: w})
		if err != nil {
			fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		workers = append(workers, w)
		addrs = append(addrs, srv.Addr().String())
	}

	spec := &dist.Spec{
		Plan:      1,
		Script:    distBenchScript,
		Shards:    shards,
		Workers:   addrs,
		LinkDelta: 100_000,
	}
	if err := spec.Place(); err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	coord, err := dist.Deploy(workers[0], spec, client.Options{Name: "distbench-coord"})
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}

	conn, err := client.Dial(addrs[0], client.Options{
		Name: "distbench-feed", BatchSize: 256, HeartbeatEvery: -1,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	defer conn.Close()
	bind := func(name string) *client.Stream {
		st, err := conn.Bind(name, tuple.External, client.StreamOptions{
			Delta: 100_000, AutoPunctEvery: 256,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
			os.Exit(1)
		}
		return st
	}
	sa, sb := bind("a"), bind("b")

	start := time.Now()
	for i := 0; i < pairs; i++ {
		k := int64(i)
		ts := now()
		if err := sa.Send(tuple.NewData(ts, tuple.Int(k), tuple.Float(0.5))); err != nil {
			fmt.Fprintf(os.Stderr, "etsbench: feed a: %v\n", err)
			os.Exit(1)
		}
		if err := sb.Send(tuple.NewData(ts, tuple.Int(k), tuple.Float(2))); err != nil {
			fmt.Fprintf(os.Stderr, "etsbench: feed b: %v\n", err)
			os.Exit(1)
		}
	}
	for _, st := range []*client.Stream{sa, sb} {
		if err := st.CloseSend(); err != nil {
			fmt.Fprintf(os.Stderr, "etsbench: close feed: %v\n", err)
			os.Exit(1)
		}
	}

	done := make(chan error, 1)
	go func() { done <- coord.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			fmt.Fprintf(os.Stderr, "etsbench: distributed drain: %v\n", err)
			os.Exit(1)
		}
	case <-time.After(60 * time.Second):
		fmt.Fprintln(os.Stderr, "etsbench: distributed deployment did not drain")
		coord.Stop()
		os.Exit(1)
	}
	elapsed := time.Since(start)
	for i := 1; i < len(workers); i++ {
		if err := workers[i].WaitPlan(spec.Plan); err != nil {
			fmt.Fprintf(os.Stderr, "etsbench: worker %d: %v\n", i, err)
			os.Exit(1)
		}
	}
	return distResult{
		Name:          "distributed",
		Pairs:         pairs,
		Results:       sunk.Load(),
		Seconds:       elapsed.Seconds(),
		PairsPerSec:   float64(pairs) / elapsed.Seconds(),
		LatencyP50Us:  float64(lat.Percentile(50)),
		LatencyP99Us:  float64(lat.Percentile(99)),
		LatencyMeanUs: float64(lat.Mean()),
	}
}

// runDistBench runs both configurations and writes the report.
func runDistBench(pairs int, out string) {
	if pairs < 1 {
		fmt.Fprintf(os.Stderr, "etsbench: -dist-tuples must be ≥ 1 (got %d)\n", pairs)
		os.Exit(2)
	}
	const shards = 2
	rep := distReport{
		Workload:       "join: 2 external-ts streams, unique keys, sharded ×2, shards on remote workers",
		PairsPerConfig: pairs,
		Executors:      3,
		Shards:         shards,
		GoVersion:      runtime.Version(),
		Date:           time.Now().UTC().Format(time.RFC3339),
	}
	// One warmup pass each primes pools, the scheduler, and the TCP stack.
	runDistInProc(pairs/10+1, shards)
	rep.InProc = runDistInProc(pairs, shards)
	runDistLoopback(pairs/10+1, shards)
	rep.Dist = runDistLoopback(pairs, shards)
	if rep.InProc.LatencyP50Us > 0 {
		rep.DistVsInProcP50X = rep.Dist.LatencyP50Us / rep.InProc.LatencyP50Us
	}
	rep.ResultsMatch = rep.InProc.Results == uint64(pairs) && rep.Dist.Results == uint64(pairs)

	for _, r := range []distResult{rep.InProc, rep.Dist} {
		fmt.Printf("%-12s %10.0f pairs/s  p50 %6.0fµs  p99 %6.0fµs  results %d/%d\n",
			r.Name, r.PairsPerSec, r.LatencyP50Us, r.LatencyP99Us, r.Results, pairs)
	}
	fmt.Printf("distributed vs in-process p50: %.2fx\n", rep.DistVsInProcP50X)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
	if !rep.ResultsMatch {
		fmt.Fprintln(os.Stderr, "etsbench: dist result count MISMATCH — distributed output is wrong")
		os.Exit(1)
	}
}
