package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/ops"
	rt "repro/internal/runtime"
	"repro/internal/tuple"
)

// The checkpoint bench answers the two questions DESIGN.md §14 leaves to
// measurement:
//
//   - Correctness under a crash: feed the union+aggregate workload while the
//     coordinator checkpoints on a short cadence, kill the engine abruptly at
//     a fault-spec scheduled point (no drain, no EOS), restore a fresh graph
//     from the latest durable checkpoint, replay each source from its
//     restored sequence watermark, and require the sink's commutative
//     checksum to equal a clean reference run exactly — no tuple lost, none
//     duplicated. This phase also rides the chaos soak (`make chaos`), so CI
//     exercises kill-restore-verify under -race.
//
//   - Cost in steady state: the same workload unpaced, with and without the
//     coordinator running, must stay within a small throughput budget
//     (default 5%) — the barrier protocol's pauses are per-operator encodes,
//     not a stop-the-world.

const (
	// ckvDelta is the external skew bound δ. The bench's event timestamps are
	// synthetic (1µs per tuple) and unrelated to the wall clock, so the
	// estimator's skew extrapolation (lastTs + elapsed − δ) must be pinned
	// down: a δ larger than any run's wall time clamps every promise to
	// lastTs — sound for the strictly increasing feed, and deterministic, so
	// the reference and crash runs deliver identical output.
	ckvDelta    = tuple.Time(1) << 40
	ckvWindow   = 64               // aggregate window width (µs of event time)
	ckvChunk    = 256              // tuples per source between pacing sleeps (crash run)
	ckvPause    = time.Millisecond // pacing sleep, letting checkpoint ticks land mid-feed
	ckvInterval = 10 * time.Millisecond
	ckvTimeout  = 10 * time.Second
)

// ckptSum is the sink-side commutative checksum: order-independent (the
// union's tie-breaking between equal timestamps is scheduling-dependent) but
// sensitive to any lost or duplicated window result. It rides the sink's
// checkpoint segment via StateHooks, so a restored run resumes the count at
// the same cut as the operators.
type ckptSum struct {
	count uint64
	sum   uint64
	sq    uint64
}

func (c *ckptSum) add(t *tuple.Tuple) {
	v := uint64(t.Ts)
	if len(t.Vals) > 0 && t.Vals[0].Kind() == tuple.IntKind {
		v = v*1_000_003 + uint64(t.Vals[0].AsInt())
	}
	c.count++
	c.sum += v
	c.sq += v * v
}

func (c *ckptSum) eq(o ckptSum) bool { return c.count == o.count && c.sum == o.sum && c.sq == o.sq }

func (c *ckptSum) save(e *ckpt.Encoder) { e.U64(c.count); e.U64(c.sum); e.U64(c.sq) }

func (c *ckptSum) restore(d *ckpt.Decoder) error {
	c.count, c.sum, c.sq = d.U64(), d.U64(), d.U64()
	return d.Err()
}

// ckvGraph builds the checkpointable workload: two external sources feeding
// a TSM union, a tumbling count aggregate (stateful: open windows), and a
// sink carrying the checksum. Timestamps are deterministic functions of the
// tuple index, so a clean run and a crash-restored run are comparable.
func ckvGraph(sum *ckptSum) (*graph.Graph, *ops.Source, *ops.Source) {
	sch := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind}).
		WithTS(tuple.External)
	g := graph.New("ckpt")
	s1 := ops.NewSource("s1", sch, ckvDelta)
	s2 := ops.NewSource("s2", sch, ckvDelta)
	a := g.AddNode(s1)
	b := g.AddNode(s2)
	u := g.AddNode(ops.NewUnion("u", nil, 2, ops.TSM), a, b)
	agg := g.AddNode(ops.NewAggregate("agg", nil, ckvWindow, -1, ops.AggSpec{Fn: ops.Count}), u)
	sink := ops.NewSink("k", func(t *tuple.Tuple, _ tuple.Time) { sum.add(t) })
	sink.StateHooks(sum.save, sum.restore)
	g.AddNode(sink, agg)
	return g, s1, s2
}

// ckvOpts: on-demand ETS must be on — after a barrier aligns at the union,
// one input's register is frozen at the barrier bound, and only the demand
// path (or fresh traffic) advances it (DESIGN.md §14).
func ckvOpts() rt.Options {
	return rt.Options{OnDemandETS: true, BatchSize: 32}
}

// ckvTuple is the deterministic feed: tuple i (0-based) carries ts i+1 µs,
// and therefore sequence number i+1 at its source — index w..n-1 is exactly
// the replay range above a restored watermark w.
func ckvTuple(i int) *tuple.Tuple {
	return tuple.NewData(tuple.Time(i+1), tuple.Int(int64(i)))
}

// ckvReference runs the workload cleanly and returns the sink checksum.
func ckvReference(n int) (ckptSum, error) {
	var sum ckptSum
	g, s1, s2 := ckvGraph(&sum)
	e, err := rt.New(g, ckvOpts())
	if err != nil {
		return sum, err
	}
	e.Start()
	for i := 0; i < n; i++ {
		e.Ingest(s1, ckvTuple(i))
		e.Ingest(s2, ckvTuple(i))
	}
	e.CloseStream(s1)
	e.CloseStream(s2)
	return sum, e.Wait()
}

// ckvReport is the kill-restore-verify phase's summary.
type ckvReport struct {
	Spec        string `json:"spec"`
	Tuples      int    `json:"tuples_per_source"`
	FedAtCrash  int    `json:"fed_at_crash"`
	Checkpoints uint64 `json:"checkpoints_completed"`
	RestoredID  uint64 `json:"restored_id"`
	Watermark1  uint64 `json:"watermark_s1"`
	Watermark2  uint64 `json:"watermark_s2"`
	RefWindows  uint64 `json:"reference_windows"`
	GotWindows  uint64 `json:"recovered_windows"`
}

// runKillRestoreVerify executes the crash drill: checkpointed run killed at
// the fault spec's crash point, restore into a fresh graph, watermark
// replay, exact-checksum comparison against a clean reference. Violations
// come back as strings so callers (the chaos soak, `-ckpt`) fold them into
// their own gates.
func runKillRestoreVerify(spec string, n int) (ckvReport, []string) {
	rep := ckvReport{Spec: spec, Tuples: n}
	var viol []string
	fail := func(format string, args ...interface{}) {
		viol = append(viol, fmt.Sprintf(format, args...))
	}

	cfg, err := fault.ParseSpec(spec)
	if err != nil {
		fail("bad fault spec: %v", err)
		return rep, viol
	}
	if cfg.CrashAfter <= 0 {
		fail("fault spec %q schedules no crash (want crash=AFTER)", spec)
		return rep, viol
	}
	inj := fault.New(cfg)

	ref, err := ckvReference(n)
	if err != nil {
		fail("reference run failed: %v", err)
		return rep, viol
	}
	rep.RefWindows = ref.count

	dir, err := os.MkdirTemp("", "etsbench-ckpt-*")
	if err != nil {
		fail("mkdtemp: %v", err)
		return rep, viol
	}
	defer os.RemoveAll(dir)
	st, err := ckpt.NewStore(dir)
	if err != nil {
		fail("store: %v", err)
		return rep, viol
	}

	// Phase 1: checkpointed run, killed without drain at the crash point.
	var lost ckptSum // this engine's sink state dies with it
	g, s1, s2 := ckvGraph(&lost)
	e, err := rt.New(g, ckvOpts())
	if err != nil {
		fail("engine: %v", err)
		return rep, viol
	}
	coord, err := ckpt.NewCoordinator(e, st, ckpt.Options{Interval: ckvInterval, Timeout: ckvTimeout})
	if err != nil {
		fail("coordinator: %v", err)
		return rep, viol
	}
	e.Start()
	coord.Run()
	inj.Arm()
	fed := 0
	for fed < n && !inj.CrashDue() {
		stop := fed + ckvChunk
		if stop > n {
			stop = n
		}
		for ; fed < stop; fed++ {
			e.Ingest(s1, ckvTuple(fed))
			e.Ingest(s2, ckvTuple(fed))
		}
		time.Sleep(ckvPause)
	}
	rep.FedAtCrash = fed
	// The kill: stop the coordinator (waits out an in-flight cycle, so the
	// store holds only complete checkpoints), then tear the engine down with
	// no drain — everything past the last durable barrier is lost.
	coord.Stop()
	e.Stop()
	if err := e.Wait(); err != nil {
		fail("crashed engine reported failure: %v", err)
	}
	rep.Checkpoints = coord.Completed()
	if fed >= n {
		fail("crash never fired: fed all %d tuples before CrashAfter=%v (raise tuples or lower crash)",
			n, cfg.CrashAfter)
	}
	if rep.Checkpoints == 0 {
		fail("no checkpoint completed before the crash: restore path not exercised")
	}

	// Phase 2: restore a fresh graph from the latest durable checkpoint and
	// replay each source above its restored watermark.
	var got ckptSum
	g2, r1, r2 := ckvGraph(&got)
	e2, err := rt.New(g2, ckvOpts())
	if err != nil {
		fail("restored engine: %v", err)
		return rep, viol
	}
	snap, err := st.Latest()
	if err != nil {
		fail("latest: %v", err)
		return rep, viol
	}
	var w1, w2 uint64
	if snap != nil {
		if err := e2.Restore(snap); err != nil {
			fail("restore: %v", err)
			return rep, viol
		}
		rep.RestoredID = snap.ID
		// The restored sources' sequence counters are the replay watermarks:
		// tuple i (seq i+1) is in the checkpoint iff i+1 <= w.
		w1, w2 = r1.Seq(), r2.Seq()
	}
	rep.Watermark1, rep.Watermark2 = w1, w2
	e2.Start()
	// Interleave the replay as the original feed did: replaying one source
	// to completion first would stall the union on the other's bound and
	// deadlock the producer on backpressure.
	for i := 0; i < n; i++ {
		if uint64(i) >= w1 {
			e2.Ingest(r1, ckvTuple(i))
		}
		if uint64(i) >= w2 {
			e2.Ingest(r2, ckvTuple(i))
		}
	}
	e2.CloseStream(r1)
	e2.CloseStream(r2)
	if err := e2.Wait(); err != nil {
		fail("restored engine failed: %v", err)
	}
	rep.GotWindows = got.count
	if !got.eq(ref) {
		fail("recovered output diverges from reference: %d windows checksum (%d,%d) vs %d windows (%d,%d) — tuples lost or duplicated across the crash",
			got.count, got.sum, got.sq, ref.count, ref.sum, ref.sq)
	}
	return rep, viol
}

// runCkptVerify is the standalone CI surface: one kill-restore-verify drill,
// non-zero exit on any violation.
func runCkptVerify(spec string, n int) {
	rep, viol := runKillRestoreVerify(spec, n)
	fmt.Printf("ckpt kill-restore-verify: spec %q, %d tuples/source\n", spec, n)
	fmt.Printf("  fed %d before crash  checkpoints %d  restored id %d  watermarks s1=%d s2=%d\n",
		rep.FedAtCrash, rep.Checkpoints, rep.RestoredID, rep.Watermark1, rep.Watermark2)
	fmt.Printf("  windows: reference %d  recovered %d\n", rep.RefWindows, rep.GotWindows)
	for _, v := range viol {
		fmt.Fprintf(os.Stderr, "etsbench: ckpt violation: %s\n", v)
	}
	if len(viol) > 0 {
		os.Exit(1)
	}
	fmt.Println("  no lost, no duplicated tuples across the crash")
}

type ckptBenchReport struct {
	Tuples      int       `json:"tuples_per_source"`
	Trials      int       `json:"trials"`
	Interval    string    `json:"ckpt_interval"`
	BaseSec     float64   `json:"baseline_best_s"`
	CkptSec     float64   `json:"checkpointed_best_s"`
	BaseTps     float64   `json:"baseline_tuples_per_s"`
	CkptTps     float64   `json:"checkpointed_tuples_per_s"`
	OverheadPct float64   `json:"overhead_pct"`
	BudgetPct   float64   `json:"budget_pct"`
	Checkpoints uint64    `json:"checkpoints_completed"`
	Verify      ckvReport `json:"verify"`
	Violations  []string  `json:"violations"`
}

// ckptTrial feeds the workload unpaced, optionally with the coordinator
// checkpointing on interval, and reports the wall time plus how many
// checkpoints committed.
func ckptTrial(n int, interval time.Duration) (time.Duration, uint64, error) {
	var sum ckptSum
	g, s1, s2 := ckvGraph(&sum)
	e, err := rt.New(g, ckvOpts())
	if err != nil {
		return 0, 0, err
	}
	var coord *ckpt.Coordinator
	var dir string
	if interval > 0 {
		if dir, err = os.MkdirTemp("", "etsbench-ckpt-*"); err != nil {
			return 0, 0, err
		}
		defer os.RemoveAll(dir)
		st, err := ckpt.NewStore(dir)
		if err != nil {
			return 0, 0, err
		}
		if coord, err = ckpt.NewCoordinator(e, st, ckpt.Options{Interval: interval, Timeout: ckvTimeout}); err != nil {
			return 0, 0, err
		}
	}
	e.Start()
	if coord != nil {
		coord.Run()
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		e.Ingest(s1, ckvTuple(i))
		e.Ingest(s2, ckvTuple(i))
	}
	var done uint64
	if coord != nil {
		// Stop before EOS: a barrier injected into a closing source would
		// never come back (DESIGN.md §14). The wait for an in-flight cycle
		// is part of the measured cost.
		coord.Stop()
		done = coord.Completed()
	}
	e.CloseStream(s1)
	e.CloseStream(s2)
	if err := e.Wait(); err != nil {
		return 0, 0, err
	}
	return time.Since(start), done, nil
}

// runCkptBench is the full `-ckpt` mode: the kill-restore-verify drill, then
// the steady-state overhead measurement against the budget.
func runCkptBench(n int, out string, budget float64, spec string) {
	const trials = 3
	// A realistic steady-state cadence (the coordinator's default is 10s;
	// 200ms is already 50× more aggressive). Benching at a few-ms interval
	// would measure barrier-flight hiccups back to back, a regime no
	// deployment runs in.
	interval := 200 * time.Millisecond

	verify, viol := runKillRestoreVerify(spec, n/10)
	rep := ckptBenchReport{
		Tuples: n, Trials: trials, Interval: interval.String(),
		BudgetPct: budget, Verify: verify, Violations: viol,
	}

	fmt.Printf("checkpoint bench: %d tuples/source, %d trials, interval %v\n", n, trials, interval)
	best := func(withCkpt bool) (time.Duration, uint64) {
		bt, bc := time.Duration(0), uint64(0)
		for t := 0; t < trials; t++ {
			iv := time.Duration(0)
			if withCkpt {
				iv = interval
			}
			el, done, err := ckptTrial(n, iv)
			if err != nil {
				fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
				os.Exit(1)
			}
			if bt == 0 || el < bt {
				bt, bc = el, done
			}
		}
		return bt, bc
	}
	baseT, _ := best(false)
	ckptT, done := best(true)
	rep.BaseSec = baseT.Seconds()
	rep.CkptSec = ckptT.Seconds()
	rep.BaseTps = float64(2*n) / baseT.Seconds()
	rep.CkptTps = float64(2*n) / ckptT.Seconds()
	rep.OverheadPct = (ckptT.Seconds() - baseT.Seconds()) / baseT.Seconds() * 100
	rep.Checkpoints = done

	fmt.Printf("  baseline      %8.3fs  %10.0f t/s\n", rep.BaseSec, rep.BaseTps)
	fmt.Printf("  checkpointed  %8.3fs  %10.0f t/s  (%d checkpoints)\n", rep.CkptSec, rep.CkptTps, done)
	fmt.Printf("  overhead %.2f%% (budget %.1f%%)\n", rep.OverheadPct, budget)
	fmt.Printf("  verify: fed %d before crash, %d checkpoints, restored id %d, windows %d/%d\n",
		verify.FedAtCrash, verify.Checkpoints, verify.RestoredID, verify.GotWindows, verify.RefWindows)

	if done == 0 {
		rep.Violations = append(rep.Violations, "no checkpoint completed during the overhead run")
	}
	if rep.OverheadPct > budget {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("checkpoint overhead %.2f%% exceeds the %.1f%% budget", rep.OverheadPct, budget))
	}
	if out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(out, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", out)
	}
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "etsbench: ckpt violation: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("  checkpointing within budget; crash drill clean")
}
