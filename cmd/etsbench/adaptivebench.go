package main

import (
	"encoding/json"
	"fmt"
	"os"
	goruntime "runtime"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/partition"
	rt "repro/internal/runtime"
	"repro/internal/tuple"
	"repro/internal/window"
)

// The adaptive benchmark measures the closed metrics loop on a workload
// built to punish static configuration: the shardbench union+join graph at
// 4 shards, fed keys whose hash buckets ALL map canonically to shard 0 —
// and whose hot bucket set drifts between phases, so even a one-shot
// hand-placed assignment goes stale. Three contestants run the identical
// tuple sequence:
//
//   - static-default: canonical bucket→shard table, default batch size.
//     Every tuple lands on shard 0; the nested-loop join probe scans the
//     whole window there while three shards idle.
//   - the static sweep ("hand-tuned"): the best of canonical/oracle
//     assignment × default/4× batch size, where the oracle table is
//     partition.Balance over the full run's per-bucket load — the best
//     single table anyone could have picked in advance.
//   - adaptive: starts exactly like static-default, with the controller
//     attached. It must discover the skew from the splitters' bucket
//     meters, re-balance behind punctuation barriers, and chase the drift.
//
// Keys are unique (one matching twin per left tuple), so join_rows == half
// the tuple count is a hard correctness gate for every contestant, and the
// engine's late counter at the sink doubles as the ordering gate: a
// reconfiguration that leaked a tuple across a bound would count there.
//
// A second, probe-order benchmark drives the 3-way multiway join with one
// never-matching input hidden behind two expensive ones: natural probe
// order enumerates the expensive cross-product before the cheap kill;
// the controller learns per-input fanout and probes cheapest-first.

const (
	adaptShards     = 4
	adaptPhases     = 3
	adaptPunctEvery = 512 // seqs between explicit punctuation rounds

	adaptProbeSpan  = 64 // multiway-join window span (virtual units)
	adaptProbeSteps = 20000

	// adaptInflight caps un-delivered seqs in flight, pacing ingestion to
	// the join's drain rate so the splitters' routing frontier (and hence
	// every retarget barrier) stays just ahead of processing.
	adaptInflight = 4096
)

type adaptiveResult struct {
	Name         string  `json:"name"`
	Tuples       uint64  `json:"tuples"`
	Seconds      float64 `json:"seconds"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	JoinRows     uint64  `json:"join_rows"`
	LatencyP50Us float64 `json:"latency_p50_us"`
	LatencyP95Us float64 `json:"latency_p95_us"`
	// LateAtSink counts deliveries below the sink's input watermark — a
	// tuple leaked across a punctuation bound by a mid-stream swap would
	// land here. Inversions ≤ late is the ordering acceptance; this
	// workload feeds nothing late, so the budget is zero.
	LateAtSink   uint64   `json:"late_at_sink"`
	BatchRetunes uint64   `json:"batch_retunes,omitempty"`
	ShardRetunes uint64   `json:"shard_retunes,omitempty"`
	ShardApplies uint64   `json:"shard_applies,omitempty"`
	NodeRetunes  uint64   `json:"node_retunes_applied,omitempty"`
	ShardTuples  []uint64 `json:"shard_tuples,omitempty"`
}

type probeReorderResult struct {
	Steps        int     `json:"steps"`
	NaturalTps   float64 `json:"natural_tuples_per_sec"`
	AdaptiveTps  float64 `json:"adaptive_tuples_per_sec"`
	SpeedupX     float64 `json:"speedup_x"`
	ProbeRetunes uint64  `json:"probe_retunes"`
	RowsNatural  uint64  `json:"rows_natural"`
	RowsAdaptive uint64  `json:"rows_adaptive"`
}

type adaptiveReport struct {
	Workload   string           `json:"workload"`
	Tuples     int              `json:"tuples_per_config"`
	Phases     int              `json:"phases"`
	Shards     int              `json:"shards"`
	WindowSpan int              `json:"window_span"`
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Date       string           `json:"date"`
	Results    []adaptiveResult `json:"results"`
	// BestStatic names the static sweep's winner (the "hand-tuned" bar).
	BestStatic string `json:"best_static"`
	// AdaptiveVsDefaultX is adaptive vs static-default throughput
	// (acceptance: ≥ 1.3).
	AdaptiveVsDefaultX float64 `json:"adaptive_vs_default_x"`
	// AdaptiveVsBestStatic is adaptive vs the sweep winner (acceptance:
	// ≥ 0.85 — the controller pays its observation rent but must stay
	// within 15% of the best hand-tuned static configuration).
	AdaptiveVsBestStatic float64            `json:"adaptive_vs_best_static"`
	ProbeReorder         probeReorderResult `json:"probe_reorder"`
	Violations           []string           `json:"violations"`
}

// adaptKeys builds the drifting-skew key sequence: per unique keys, each
// hashing to a bucket that canonically maps to shard 0, partitioned into
// phases that use disjoint bucket families. Also returns the full-run
// per-bucket load (left + right twin per key) the oracle table is built
// from.
func adaptKeys(per, shards, phases int) (keys []int64, loads []uint64) {
	keys = make([]int64, per)
	loads = make([]uint64, ops.SplitBuckets)
	perPhase := (per + phases - 1) / phases
	next := int64(0)
	for p := 0; p < phases; p++ {
		lo, hi := p*perPhase, (p+1)*perPhase
		if hi > per {
			hi = per
		}
		for i := lo; i < hi; {
			k := next
			next++
			b := int(tuple.Int(k).Hash() % ops.SplitBuckets)
			if b%shards != 0 || (b/shards)%phases != p {
				continue
			}
			keys[i] = k
			loads[b] += 2
			i++
		}
	}
	return keys, loads
}

// runAdaptiveConfig pushes the key sequence through the sharded union+join
// workload under one configuration. assign, when non-nil, is installed on
// every splitter before the first tuple (barrier 0: it governs the whole
// run). adaptive attaches and runs the controller.
func runAdaptiveConfig(name string, keys []int64, batch int, assign []int32, adaptive bool) adaptiveResult {
	per := len(keys)
	var rows atomic.Uint64
	lat := metrics.NewReservoir(4096)
	g, srcs := buildShardGraph(tuple.External, func(t *tuple.Tuple, now tuple.Time) {
		rows.Add(1)
		lat.Observe(int64(now - t.Arrived)) // sink goroutine only
	})
	opts := rt.Options{Shards: adaptShards, Recycle: true, BatchSize: batch}
	if adaptive {
		opts.Adaptive = &rt.AdaptiveOptions{
			Interval: 2 * time.Millisecond,
			Latency:  lat,
			// The driver punctuates every adaptPunctEvery seqs, so half a
			// round is the tightest barrier lead a punctuation is still
			// guaranteed to cross promptly. The default (one tick's
			// event-time advance) would balloon during fast drain bursts
			// and push every swap thousands of seqs into the future.
			BarrierLead: adaptPunctEvery / 2,
		}
		opts.Trace = metrics.NewTracer(8192)
	}
	e, err := rt.New(g, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	if assign != nil {
		for _, grp := range e.ShardGroups() {
			for _, s := range grp.Splitters {
				s.Retarget(assign, 0) // pre-start: governs from the first tuple
			}
		}
	}
	var ctl *adapt.Controller
	if adaptive {
		ctl = adapt.Attach(e)
	}
	e.Start()
	if ctl != nil {
		ctl.Start()
	}

	const span = 64
	var magL, magR tuple.Magazine
	mk := func(mag *tuple.Magazine, ts tuple.Time, key, seq int64) *tuple.Tuple {
		t := mag.Get()
		t.Ts = ts
		t.Kind = tuple.Data
		t.Vals = append(t.Vals, tuple.Int(key), tuple.Int(seq))
		return t
	}
	punct := func(seq int) {
		// Bounds are exact: every future tuple on every source carries
		// ts > seq. These explicit rounds are the boundaries all
		// reconfigurations apply at — and because a key's twins share one
		// timestamp, a retarget barrier can never split a pair across two
		// shard assignments.
		e.Ingest(srcs[2], tuple.NewPunct(tuple.Time(seq+1)))
		e.Ingest(srcs[0], tuple.NewPunct(tuple.Time(seq+1)))
		e.Ingest(srcs[1], tuple.NewPunct(tuple.Time(seq+1)))
	}
	start := time.Now()
	rawsL := make([]*tuple.Tuple, 0, span)
	rawsR := make([]*tuple.Tuple, 0, span)
	for i := 0; i < per; i += span {
		// Flow control: splitter routing is orders of magnitude cheaper
		// than the join, so an unpaced driver lets the routing frontier
		// race to end-of-stream within milliseconds — every barrier would
		// land past the data and rebalancing could never redirect load.
		// Pacing ingestion to delivery keeps the frontier where real
		// streams have it: just ahead of processing.
		for i-int(rows.Load()) > adaptInflight {
			time.Sleep(20 * time.Microsecond)
		}
		n := span
		if rem := per - i; rem < n {
			n = rem
		}
		rawsR = rawsR[:0]
		rawsL = rawsL[:0]
		for k := 0; k < n; k++ {
			seq := int64(i + k)
			key := keys[i+k]
			rawsR = append(rawsR, mk(&magR, tuple.Time(seq), key, seq))
			rawsL = append(rawsL, mk(&magL, tuple.Time(seq), key, seq))
		}
		e.IngestBatch(srcs[2], rawsR)
		if (i/span)%2 == 0 {
			e.IngestBatch(srcs[0], rawsL)
		} else {
			e.IngestBatch(srcs[1], rawsL)
		}
		if (i / adaptPunctEvery) != (i+span)/adaptPunctEvery {
			punct(i + n - 1)
		}
	}
	for _, s := range srcs {
		e.CloseStream(s)
	}
	e.Wait()
	if ctl != nil {
		ctl.Stop()
	}
	elapsed := time.Since(start)

	snap := e.Snapshot()
	var lateAtSink, nodeRetunes uint64
	for _, ns := range snap.Nodes {
		nodeRetunes += ns.Retunes
	}
	if k := snap.Node("k"); k != nil {
		lateAtSink = k.LateTuples
	}
	ls := lat.Snapshot()
	n := uint64(2 * per)
	res := adaptiveResult{
		Name:         name,
		Tuples:       n,
		Seconds:      elapsed.Seconds(),
		TuplesPerSec: float64(n) / elapsed.Seconds(),
		JoinRows:     rows.Load(),
		LatencyP50Us: float64(ls.Percentile(0.50)),
		LatencyP95Us: float64(ls.Percentile(0.95)),
		LateAtSink:   lateAtSink,
		NodeRetunes:  nodeRetunes,
		ShardTuples:  e.ShardTuples(),
	}
	if ctl != nil {
		res.BatchRetunes, res.ShardRetunes, _ = ctl.Decisions()
		res.ShardApplies = e.Registry().Counter("sm_adapt_shard_applies_total").Load()
	}
	return res
}

// runProbeReorder drives the 3-way multiway equi-join where input 2 never
// matches: natural order enumerates input 1's expensive matches first,
// cheapest-first kills every candidate at one scan.
func runProbeReorder(steps int, adaptive bool) (float64, uint64, uint64) {
	sch := tuple.NewSchema("s", tuple.Field{Name: "key", Kind: tuple.IntKind}).
		WithTS(tuple.External)
	const δ = 1 << 40
	g := graph.New("probebench")
	s1 := ops.NewSource("s1", sch, δ)
	s2 := ops.NewSource("s2", sch, δ)
	s3 := ops.NewSource("s3", sch, δ)
	a := g.AddNode(s1)
	b := g.AddNode(s2)
	c := g.AddNode(s3)
	mj := ops.NewMultiEquiJoin("mj", nil, window.TimeWindow(adaptProbeSpan), 0, 0, 0)
	j := g.AddNode(mj, a, b, c)
	var rows atomic.Uint64
	g.AddNode(ops.NewSink("k", func(*tuple.Tuple, tuple.Time) { rows.Add(1) }), j)

	opts := rt.Options{Recycle: true}
	if adaptive {
		opts.Adaptive = &rt.AdaptiveOptions{Interval: 2 * time.Millisecond}
	}
	e, err := rt.New(g, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	var ctl *adapt.Controller
	if adaptive {
		ctl = adapt.Attach(e)
	}
	e.Start()
	if ctl != nil {
		ctl.Start()
	}
	start := time.Now()
	for i := 0; i < steps; i++ {
		ts := tuple.Time(i)
		// Inputs 0 and 1 share a key (their windows cross-match densely);
		// input 2 never matches, so it can veto every candidate cheaply —
		// if it is probed first.
		e.Ingest(s1, tuple.NewData(ts, tuple.Int(1)))
		e.Ingest(s2, tuple.NewData(ts, tuple.Int(1)))
		e.Ingest(s3, tuple.NewData(ts, tuple.Int(2)))
		if i%adaptProbeSpan == adaptProbeSpan-1 {
			p := tuple.Time(i + 1)
			e.Ingest(s1, tuple.NewPunct(p))
			e.Ingest(s2, tuple.NewPunct(p))
			e.Ingest(s3, tuple.NewPunct(p))
		}
	}
	for _, s := range []*ops.Source{s1, s2, s3} {
		e.CloseStream(s)
	}
	e.Wait()
	if ctl != nil {
		ctl.Stop()
	}
	elapsed := time.Since(start)
	var retunes uint64
	if ctl != nil {
		_, _, retunes = ctl.Decisions()
	}
	return float64(3*steps) / elapsed.Seconds(), rows.Load(), retunes
}

// runAdaptiveBench runs the static sweep and the adaptive contestant on the
// drifting-skew workload, the probe-reorder sub-benchmark, and writes the
// JSON report.
func runAdaptiveBench(total int, out string) {
	per := total / 2
	if per < adaptPhases*adaptPunctEvery {
		fmt.Fprintf(os.Stderr, "etsbench: -adaptive-tuples too small (got %d)\n", total)
		os.Exit(2)
	}
	keys, loads := adaptKeys(per, adaptShards, adaptPhases)
	oracle := partition.Balance(loads, adaptShards)
	rep := adaptiveReport{
		Workload: "drifting-skew union+join: (s1 ∪ s2) ⋈[key] s3, 4 shards, " +
			"all hot buckets canonically on shard 0, hot set drifts per phase",
		Tuples:     total,
		Phases:     adaptPhases,
		Shards:     adaptShards,
		WindowSpan: shardSpan,
		GoVersion:  goruntime.Version(),
		GOMAXPROCS: goruntime.GOMAXPROCS(0),
		Date:       time.Now().UTC().Format(time.RFC3339),
	}
	fail := func(format string, args ...interface{}) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}

	runAdaptiveConfig("warmup", keys[:per/8], 0, nil, false)
	show := func(r adaptiveResult) {
		fmt.Printf("%-24s %10.0f tuples/s  %8d rows  p50 %6.0fµs  shard-tuples %v",
			r.Name, r.TuplesPerSec, r.JoinRows, r.LatencyP50Us, r.ShardTuples)
		if r.ShardRetunes > 0 || r.BatchRetunes > 0 {
			fmt.Printf("  retunes batch=%d shard=%d applied=%d",
				r.BatchRetunes, r.ShardRetunes, r.ShardApplies+r.NodeRetunes)
		}
		fmt.Println()
	}
	check := func(r adaptiveResult) {
		if r.JoinRows != uint64(per) {
			fail("%s produced %d join rows, want %d — configuration changed the result",
				r.Name, r.JoinRows, per)
		}
		if r.LateAtSink != 0 {
			fail("%s delivered %d tuples below a sink bound (late budget is 0)",
				r.Name, r.LateAtSink)
		}
	}

	type staticCfg struct {
		name   string
		batch  int
		assign []int32
	}
	statics := []staticCfg{
		{"static-default", 0, nil},
		{"static-batch256", 256, nil},
		{"static-oracle", 0, oracle},
		{"static-oracle-batch256", 256, oracle},
	}
	var def, best adaptiveResult
	for i, c := range statics {
		r := runAdaptiveConfig(c.name, keys, c.batch, c.assign, false)
		check(r)
		show(r)
		rep.Results = append(rep.Results, r)
		if i == 0 {
			def = r
		}
		if r.TuplesPerSec > best.TuplesPerSec {
			best = r
		}
	}
	ad := runAdaptiveConfig("adaptive", keys, 0, nil, true)
	check(ad)
	show(ad)
	rep.Results = append(rep.Results, ad)
	rep.BestStatic = best.Name
	rep.AdaptiveVsDefaultX = ad.TuplesPerSec / def.TuplesPerSec
	rep.AdaptiveVsBestStatic = ad.TuplesPerSec / best.TuplesPerSec
	if ad.ShardRetunes == 0 || ad.ShardApplies == 0 {
		fail("adaptive run shows no applied rebalance (issued %d, applied %d)",
			ad.ShardRetunes, ad.ShardApplies)
	}
	fmt.Printf("adaptive vs static-default: %.2fx;  vs best static (%s): %.2f\n",
		rep.AdaptiveVsDefaultX, best.Name, rep.AdaptiveVsBestStatic)

	natTps, natRows, _ := runProbeReorder(adaptProbeSteps, false)
	adTps, adRows, reorders := runProbeReorder(adaptProbeSteps, true)
	rep.ProbeReorder = probeReorderResult{
		Steps:        adaptProbeSteps,
		NaturalTps:   natTps,
		AdaptiveTps:  adTps,
		SpeedupX:     adTps / natTps,
		ProbeRetunes: reorders,
		RowsNatural:  natRows,
		RowsAdaptive: adRows,
	}
	if natRows != adRows {
		fail("probe reordering changed the join output: %d vs %d rows", natRows, adRows)
	}
	if reorders == 0 {
		fail("probe benchmark issued no reorder")
	}
	fmt.Printf("probe reorder: natural %.0f t/s, adaptive %.0f t/s (%.2fx, %d reorders)\n",
		natTps, adTps, rep.ProbeReorder.SpeedupX, reorders)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "etsbench: adaptive violation: %s\n", v)
		}
		os.Exit(1)
	}
}

// runAdaptiveSmoke is the CI gate: a short adaptive run that must retune at
// least once at a punctuation boundary while keeping the join exact and the
// output inside its bounds. Exits non-zero otherwise. Run under -race.
func runAdaptiveSmoke(total int) {
	per := total / 2
	keys, _ := adaptKeys(per, adaptShards, adaptPhases)
	r := runAdaptiveConfig("adaptive-smoke", keys, 0, nil, true)
	fmt.Printf("adaptive smoke: %d tuples, %d rows, retunes batch=%d shard=%d, applied node=%d shard=%d, late=%d\n",
		r.Tuples, r.JoinRows, r.BatchRetunes, r.ShardRetunes, r.NodeRetunes, r.ShardApplies, r.LateAtSink)
	bad := false
	report := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "etsbench: adaptive smoke: "+format+"\n", args...)
		bad = true
	}
	if r.JoinRows != uint64(per) {
		report("join produced %d rows, want %d", r.JoinRows, per)
	}
	if r.LateAtSink != 0 {
		report("%d tuples delivered below a sink bound", r.LateAtSink)
	}
	if r.BatchRetunes+r.ShardRetunes == 0 {
		report("controller issued no retune")
	}
	if r.NodeRetunes+r.ShardApplies == 0 {
		report("no retune observably applied at a punctuation boundary")
	}
	if bad {
		os.Exit(1)
	}
	fmt.Println("adaptive smoke: all invariants held")
}
