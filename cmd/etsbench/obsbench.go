package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/ops"
	rt "repro/internal/runtime"
	"repro/internal/tuple"
)

// The obs benchmark prices punctuation tracing: the same batched union
// workload as -runtime, with punctuation every 64 tuples per source, run
// once with the span collector attached and once without. Span recording is
// punct-only by design, so the data plane should be untouched — the report
// records the measured overhead so the ≤5% budget is diffable.

type obsResult struct {
	Name           string  `json:"name"`
	Traced         bool    `json:"traced"`
	Tuples         uint64  `json:"tuples"`
	Puncts         uint64  `json:"puncts"`
	Seconds        float64 `json:"seconds"`
	TuplesPerSec   float64 `json:"tuples_per_sec"`
	AllocsPerTuple float64 `json:"allocs_per_tuple"`
	SpanEvents     uint64  `json:"span_events,omitempty"`
	SpanTraces     uint64  `json:"span_traces,omitempty"`
	SpanDropped    uint64  `json:"span_dropped,omitempty"`
}

type obsReport struct {
	Workload    string      `json:"workload"`
	Tuples      int         `json:"tuples_per_config"`
	GoVersion   string      `json:"go_version"`
	Date        string      `json:"date"`
	Results     []obsResult `json:"results"`
	OverheadPct float64     `json:"tracing_overhead_pct"`
}

// runObsConfig pushes total tuples (split across two sources, a punctuation
// after every 64 per source) through the union graph and measures it.
func runObsConfig(traced bool, total int) obsResult {
	sch := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind})
	g := graph.New("obsbench")
	s1 := ops.NewSource("s1", sch, 0)
	s2 := ops.NewSource("s2", sch, 0)
	a := g.AddNode(s1)
	b := g.AddNode(s2)
	u := g.AddNode(ops.NewUnion("u", nil, 2, ops.TSM), a, b)
	g.AddNode(ops.NewSink("k", func(t *tuple.Tuple, now tuple.Time) {}), u)

	var spans *obs.Collector
	if traced {
		spans = obs.New(obs.DefaultRingSize)
	}
	e, err := rt.New(g, rt.Options{
		OnDemandETS: true,
		BatchSize:   64,
		Recycle:     true,
		Spans:       spans,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	e.Start()

	per := total / 2
	const span = 64
	var puncts uint64
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	var mag tuple.Magazine
	raws := make([]*tuple.Tuple, 0, span)
	feed := func(src *ops.Source) {
		base := tuple.Time(0)
		for i := 0; i < per; i += span {
			n := span
			if rem := per - i; rem < n {
				n = rem
			}
			raws = raws[:0]
			for j := 0; j < n; j++ {
				t := mag.Get()
				t.Ts = base + tuple.Time(j)
				t.Vals = append(t.Vals, tuple.Int(1))
				raws = append(raws, t)
			}
			e.IngestBatch(src, raws)
			// The ordered feed promises its own progress, like a
			// punctuating wrapper: one bound per batch.
			e.Ingest(src, tuple.NewPunct(base+tuple.Time(n-1)))
			puncts++
			base += tuple.Time(span)
		}
	}
	feed(s1)
	feed(s2)
	e.CloseStream(s1)
	e.CloseStream(s2)
	e.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	n := uint64(2 * per)
	name := "spans-off"
	if traced {
		name = "spans-on"
	}
	res := obsResult{
		Name:           name,
		Traced:         traced,
		Tuples:         n,
		Puncts:         puncts,
		Seconds:        elapsed.Seconds(),
		TuplesPerSec:   float64(n) / elapsed.Seconds(),
		AllocsPerTuple: float64(after.Mallocs-before.Mallocs) / float64(n),
	}
	if traced {
		res.SpanEvents = spans.Total()
		res.SpanTraces = spans.Traces()
		res.SpanDropped = spans.Dropped()
	}
	return res
}

// runObsBench measures both configurations and writes the JSON report.
func runObsBench(total int, out string) {
	if total < 2 {
		fmt.Fprintf(os.Stderr, "etsbench: -obs-tuples must be ≥ 2 (got %d)\n", total)
		os.Exit(2)
	}
	rep := obsReport{
		Workload:  "union: 2 sources -> TSM union -> sink, punct every 64/source, batched ingest",
		Tuples:    total,
		GoVersion: runtime.Version(),
		Date:      time.Now().UTC().Format(time.RFC3339),
	}
	// Interleave repetitions and keep the best pass per configuration:
	// scheduler and frequency noise on a shared host dwarfs the effect
	// under test, and the best pass is the least-perturbed measurement.
	const reps = 3
	runObsConfig(false, total/10) // warmup: pools, scheduler
	runObsConfig(true, total/10)
	var off, on float64
	var best [2]obsResult
	for r := 0; r < reps; r++ {
		for _, traced := range []bool{false, true} {
			res := runObsConfig(traced, total)
			fmt.Printf("%-10s %10.0f tuples/s  %5.2f allocs/tuple  %d puncts", res.Name,
				res.TuplesPerSec, res.AllocsPerTuple, res.Puncts)
			if res.Traced {
				fmt.Printf("  %d span events, %d traces, %d dropped",
					res.SpanEvents, res.SpanTraces, res.SpanDropped)
			}
			fmt.Println()
			i := 0
			if traced {
				i = 1
			}
			if res.TuplesPerSec > best[i].TuplesPerSec {
				best[i] = res
			}
		}
	}
	off, on = best[0].TuplesPerSec, best[1].TuplesPerSec
	rep.Results = append(rep.Results, best[0], best[1])
	if off > 0 && on > 0 {
		rep.OverheadPct = (1 - on/off) * 100
		fmt.Printf("tracing overhead: %.2f%%\n", rep.OverheadPct)
		if rep.OverheadPct > 5 {
			fmt.Fprintf(os.Stderr, "etsbench: WARNING tracing overhead %.2f%% exceeds the 5%% budget\n", rep.OverheadPct)
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "etsbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
}
