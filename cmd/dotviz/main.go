// Command dotviz compiles CQL statements and prints the resulting query
// graph in Graphviz DOT format.
//
// Usage:
//
//	dotviz -ddl 'CREATE STREAM a (v int); CREATE STREAM b (v int)' \
//	       -q 'SELECT * FROM a UNION b' | dot -Tpng > graph.png
//
// With -overlay, dotviz annotates each node with the live counters a
// running engine exported: the argument is either a file holding a /vars
// JSON dump or the URL of a live metrics endpoint (streamd -metrics), e.g.
//
//	dotviz -ddl ... -q ... -overlay http://127.0.0.1:9151/vars
//
// With -dist N, dotviz instead renders the distributed placement the
// coordinator would deploy over N executors: the partition rewrite runs
// first (factor -shards, default N), every node is filled with its
// executor's color, and the cut arcs — the network links — draw dashed red:
//
//	dotviz -ddl ... -q ... -dist 3 | dot -Tpng > placement.png
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/partition"
)

func main() {
	ddl := flag.String("ddl", "", "semicolon-separated CREATE STREAM statements")
	overlay := flag.String("overlay", "", "annotate nodes with live metrics from a /vars JSON file or URL")
	distN := flag.Int("dist", 0, "render the distributed placement over this many executors: one fill color per executor, dashed red arcs for network links (implies the -shards partition rewrite)")
	shards := flag.Int("shards", 0, "partition factor for -dist (0 = number of executors)")
	var queries []string
	flag.Func("q", "SELECT query (repeatable)", func(v string) error {
		queries = append(queries, v)
		return nil
	})
	flag.Parse()
	if *ddl == "" || len(queries) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	e := core.NewEngine()
	if _, err := e.ExecuteScript(*ddl, nil); err != nil {
		fmt.Fprintln(os.Stderr, "dotviz:", err)
		os.Exit(1)
	}
	for _, q := range queries {
		if _, err := e.Execute(q, nil); err != nil {
			fmt.Fprintln(os.Stderr, "dotviz:", err)
			os.Exit(1)
		}
	}
	if *distN > 0 {
		if *shards == 0 {
			*shards = *distN
		}
		g, plan := partition.Rewrite(e.Graph(), *shards)
		placement := dist.AutoPlace(g, plan, *distN)
		dot, err := dist.DotPlacement(g, placement)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dotviz:", err)
			os.Exit(1)
		}
		fmt.Print(dot)
		return
	}
	if *overlay == "" {
		fmt.Print(e.Graph().Dot())
		return
	}
	vars, err := loadVars(*overlay)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dotviz: overlay:", err)
		os.Exit(1)
	}
	fmt.Print(e.Graph().DotAnnotated(func(n *graph.Node) string {
		return annotation(vars, n.Op.Name())
	}))
}

// loadVars reads a flat name→value JSON map from a file or an HTTP URL.
func loadVars(src string) (map[string]float64, error) {
	var r io.ReadCloser
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("%s: %s", src, resp.Status)
		}
		r = resp.Body
	} else {
		f, err := os.Open(src)
		if err != nil {
			return nil, err
		}
		r = f
	}
	defer r.Close()
	raw := map[string]any{}
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, err
	}
	// Scalars stay as-is; reservoir objects ({count, mean, p50, ...})
	// flatten to name.field entries.
	vars := map[string]float64{}
	for name, v := range raw {
		switch x := v.(type) {
		case float64:
			vars[name] = x
		case map[string]any:
			for k, f := range x {
				if fv, ok := f.(float64); ok {
					vars[name+"."+k] = fv
				}
			}
		}
	}
	return vars, nil
}

// annotation collects every metric labelled node="name" into short
// `key=value` lines, sorted for a stable rendering.
func annotation(vars map[string]float64, name string) string {
	var lines []string
	for metric, v := range vars {
		family, labels := metrics.SplitName(metric)
		if metrics.LabelValue(labels, "node") != name {
			continue
		}
		short := strings.TrimSuffix(family, "_total")
		for _, p := range []string{"sm_sim_node_", "sm_node_", "sm_sim_", "sm_"} {
			if strings.HasPrefix(short, p) {
				short = short[len(p):]
				break
			}
		}
		lines = append(lines, fmt.Sprintf("%s=%s", short, trimFloat(v)))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// trimFloat renders v without a trailing ".000000" for integral values.
func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
