// Command dotviz compiles CQL statements and prints the resulting query
// graph in Graphviz DOT format.
//
// Usage:
//
//	dotviz -ddl 'CREATE STREAM a (v int); CREATE STREAM b (v int)' \
//	       -q 'SELECT * FROM a UNION b' | dot -Tpng > graph.png
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	ddl := flag.String("ddl", "", "semicolon-separated CREATE STREAM statements")
	var queries []string
	flag.Func("q", "SELECT query (repeatable)", func(v string) error {
		queries = append(queries, v)
		return nil
	})
	flag.Parse()
	if *ddl == "" || len(queries) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	e := core.NewEngine()
	if _, err := e.ExecuteScript(*ddl, nil); err != nil {
		fmt.Fprintln(os.Stderr, "dotviz:", err)
		os.Exit(1)
	}
	for _, q := range queries {
		if _, err := e.Execute(q, nil); err != nil {
			fmt.Fprintln(os.Stderr, "dotviz:", err)
			os.Exit(1)
		}
	}
	fmt.Print(e.Graph().Dot())
}
