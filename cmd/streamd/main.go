// Command streamd runs a continuous CQL query over CSV stream traces and
// writes the result stream as CSV to stdout. Traces carry a microsecond
// timestamp in their first column (as produced by wlgen); tuples are
// replayed into the engine in global timestamp order, driving the virtual
// clock, with on-demand ETS keeping multi-stream operators live.
//
// Usage:
//
//	streamd \
//	  -ddl 'CREATE STREAM fast (v int); CREATE STREAM slow (v int)' \
//	  -q   'SELECT * FROM fast UNION slow' \
//	  -in  fast=fast.csv -in slow=slow.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/tuple"
	"repro/internal/wrappers"
)

type input struct {
	stream string
	path   string
}

func main() {
	ddl := flag.String("ddl", "", "semicolon-separated CREATE STREAM statements")
	q := flag.String("q", "", "SELECT query to run")
	noETS := flag.Bool("no-ets", false, "disable on-demand ETS (scenario A semantics)")
	stats := flag.Bool("stats", false, "print per-operator execution statistics to stderr")
	var ins []input
	flag.Func("in", "stream=file CSV trace binding (repeatable)", func(v string) error {
		parts := strings.SplitN(v, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("want stream=file, got %q", v)
		}
		ins = append(ins, input{stream: parts[0], path: parts[1]})
		return nil
	})
	flag.Parse()
	if *ddl == "" || *q == "" || len(ins) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*ddl, *q, ins, *noETS, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "streamd:", err)
		os.Exit(1)
	}
}

func run(ddl, q string, ins []input, noETS, stats bool) error {
	e := core.NewEngine()
	if _, err := e.ExecuteScript(ddl, nil); err != nil {
		return err
	}
	var out *wrappers.CSVWriter
	var results uint64
	query, err := e.Execute(q, func(t *tuple.Tuple, _ tuple.Time) {
		if out == nil {
			return
		}
		results++
		if err := out.Write(t); err != nil {
			fmt.Fprintln(os.Stderr, "streamd: write:", err)
		}
	})
	if err != nil {
		return err
	}
	out = wrappers.NewCSVWriter(os.Stdout, query.Out, wrappers.CSVOptions{TsColumn: 0, Header: true})

	// Load every trace.
	type arrival struct {
		src *ops.Source
		t   *tuple.Tuple
	}
	var arrivals []arrival
	for _, in := range ins {
		src, err := e.Source(in.stream)
		if err != nil {
			return err
		}
		sch, err := e.Catalog().Schema(in.stream)
		if err != nil {
			return err
		}
		f, err := os.Open(in.path)
		if err != nil {
			return err
		}
		tuples, err := wrappers.ReadAllCSV(f, sch, wrappers.CSVOptions{TsColumn: 0, Header: true})
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", in.path, err)
		}
		for _, t := range tuples {
			arrivals = append(arrivals, arrival{src: src, t: t})
		}
	}
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].t.Ts < arrivals[j].t.Ts })

	policy := core.OnDemandETS
	if noETS {
		policy = core.NoETS
	}
	clock := tuple.Time(0)
	ex, err := e.Build(policy, func() tuple.Time { return clock })
	if err != nil {
		return err
	}
	// Replay in timestamp order: each arrival advances the clock, then the
	// engine runs to quiescence (generating ETS on demand).
	for _, a := range arrivals {
		if a.t.Ts > clock {
			clock = a.t.Ts
		}
		a.src.Ingest(a.t, clock)
		ex.Run(1 << 20)
	}
	// Close every stream so windows and aggregates flush.
	for _, name := range e.Catalog().Names() {
		if src, err := e.Source(name); err == nil {
			src.Offer(tuple.EOS())
		}
	}
	ex.Run(1 << 20)
	if err := out.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "streamd: %d input tuples, %d results, %d steps\n",
		len(arrivals), results, ex.Steps())
	if stats {
		for _, st := range ex.NodeStats() {
			fmt.Fprintf(os.Stderr, "  unit %d  %-16s steps=%-8d buffered=%d\n",
				st.Comp, st.Name, st.Steps, st.Buffered)
		}
	}
	return nil
}
