// Command streamd runs a continuous CQL query over CSV stream traces and
// writes the result stream as CSV to stdout. Traces carry a microsecond
// timestamp in their first column (as produced by wlgen); tuples are
// replayed into the engine in global timestamp order, driving the virtual
// clock, with on-demand ETS keeping multi-stream operators live.
//
// Usage:
//
//	streamd \
//	  -ddl 'CREATE STREAM fast (v int); CREATE STREAM slow (v int)' \
//	  -q   'SELECT * FROM fast UNION slow' \
//	  -in  fast=fast.csv -in slow=slow.csv
//
// Observability: -metrics ADDR serves the live registry over HTTP
// (/metrics Prometheus text, /vars JSON, /trace recent events); -trace
// records engine trace events and dumps the tail to stderr at exit; -stats
// prints the full registry snapshot (name value lines) to stderr; -linger
// keeps the process (and the endpoint) alive after the replay finishes so
// scrapers can collect final values.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/adapt"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/runtime"
	"repro/internal/server"
	"repro/internal/tuple"
	"repro/internal/wrappers"
)

type input struct {
	stream string
	path   string
}

type options struct {
	noETS     bool
	stats     bool
	trace     bool
	metrics   string
	linger    time.Duration
	chaos     string
	chaosSeed int64

	listen     string
	drainGrace time.Duration
	srcTimeout time.Duration
	adaptive   bool
	pprof      bool
	spanLog    string

	ckptDir      string
	ckptInterval time.Duration
	ckptKeep     int
	restore      bool
	maxQueue     int

	worker      string
	coordinator string
	distShards  int
	linkDelta   time.Duration
}

func main() {
	ddl := flag.String("ddl", "", "semicolon-separated CREATE STREAM statements")
	q := flag.String("q", "", "SELECT query to run")
	var opts options
	flag.BoolVar(&opts.noETS, "no-ets", false, "disable on-demand ETS (scenario A semantics)")
	flag.BoolVar(&opts.stats, "stats", false, "print the metrics registry snapshot to stderr")
	flag.BoolVar(&opts.trace, "trace", false, "record engine trace events; dump the tail to stderr at exit")
	flag.StringVar(&opts.metrics, "metrics", "", "serve live metrics over HTTP on this address (e.g. 127.0.0.1:9151, :0 for ephemeral)")
	flag.DurationVar(&opts.linger, "linger", 0, "keep running this long after the replay ends (lets scrapers collect)")
	flag.StringVar(&opts.chaos, "chaos", "", "fault spec applied at replay ingestion — drop=P and skew=P:MAX faults (see internal/fault.ParseSpec)")
	flag.Int64Var(&opts.chaosSeed, "chaos-seed", 0, "override the -chaos spec's PRNG seed (0 keeps the spec's)")
	flag.StringVar(&opts.listen, "listen", "", "network mode: serve the wire-protocol ingest server on this address instead of replaying -in traces (e.g. 127.0.0.1:7433, :0 for ephemeral)")
	flag.DurationVar(&opts.drainGrace, "drain-grace", 2*time.Second, "network mode: how long SIGINT lets sessions finish before their connections are cut")
	flag.DurationVar(&opts.srcTimeout, "source-timeout", 0, "network mode: arm the source-liveness watchdog — a silent source has ETS forced after this long (0 disables)")
	flag.BoolVar(&opts.adaptive, "adaptive", false, "network mode: attach the self-tuning controller (batch sizes, shard tables, probe orders retuned at punctuation boundaries; watch sm_adapt_* in /vars)")
	flag.BoolVar(&opts.pprof, "pprof", false, "expose net/http/pprof under /debug/pprof/ on the -metrics address")
	flag.StringVar(&opts.spanLog, "span-log", "", "network mode: dump the retained punctuation spans as JSONL to this file at shutdown")
	flag.StringVar(&opts.ckptDir, "ckpt-dir", "", "network mode: checkpoint operator state to this directory on -ckpt-interval (punctuation-aligned barriers)")
	flag.DurationVar(&opts.ckptInterval, "ckpt-interval", 10*time.Second, "network mode: checkpoint cadence for -ckpt-dir")
	flag.IntVar(&opts.ckptKeep, "ckpt-keep", 3, "network mode: complete checkpoints to retain in -ckpt-dir")
	flag.BoolVar(&opts.restore, "restore", false, "network mode: restore operator state from the latest checkpoint in -ckpt-dir before serving; sequenced clients resume at the reported watermark")
	flag.IntVar(&opts.maxQueue, "max-queue", -1, "network mode: bound each operator input queue to this many tuples with backpressure (0 = unbounded; defaults to 4096 when -ckpt-dir is set, since a checkpoint barrier must drain the in-flight data ahead of it)")
	flag.StringVar(&opts.worker, "worker", "", "distributed mode: run a plan-execution worker serving the wire protocol on this address; fragments arrive from a remote coordinator (no -ddl/-q needed)")
	flag.StringVar(&opts.coordinator, "coordinator", "", "distributed mode: comma-separated worker addresses; cut the query across them, serve feeds on -listen, and collect results locally")
	flag.IntVar(&opts.distShards, "dist-shards", 0, "distributed mode: partition factor applied before the cut (0 = number of workers)")
	flag.DurationVar(&opts.linkDelta, "link-delta", 500*time.Millisecond, "distributed mode: skew bound declared for network links (the watchdog's forced-ETS bound on a stalled link)")
	var ins []input
	flag.Func("in", "stream=file CSV trace binding (repeatable)", func(v string) error {
		parts := strings.SplitN(v, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("want stream=file, got %q", v)
		}
		ins = append(ins, input{stream: parts[0], path: parts[1]})
		return nil
	})
	flag.Parse()
	if opts.worker != "" {
		if err := serveWorker(opts); err != nil {
			fmt.Fprintln(os.Stderr, "streamd:", err)
			os.Exit(1)
		}
		return
	}
	if opts.coordinator != "" && (*ddl == "" || *q == "" || opts.listen == "") {
		fmt.Fprintln(os.Stderr, "streamd: -coordinator needs -ddl, -q and -listen")
		os.Exit(2)
	}
	if opts.coordinator == "" && (*ddl == "" || *q == "" || (len(ins) == 0 && opts.listen == "")) {
		flag.Usage()
		os.Exit(2)
	}
	if opts.maxQueue < 0 {
		// A barrier rides the arcs FIFO, so checkpoint latency is bounded by
		// the in-flight data ahead of it. Unbounded queues under overload make
		// that unbounded — checkpointing defaults to backpressure-bounded
		// queues unless -max-queue says otherwise.
		if opts.ckptDir != "" {
			opts.maxQueue = 4096
			fmt.Fprintln(os.Stderr, "streamd: -ckpt-dir set; bounding input queues at 4096 tuples (override with -max-queue)")
		} else {
			opts.maxQueue = 0
		}
	}
	var err error
	switch {
	case opts.coordinator != "":
		err = serveCoordinator(*ddl, *q, opts)
	case opts.listen != "":
		err = serve(*ddl, *q, opts)
	default:
		err = run(*ddl, *q, ins, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamd:", err)
		os.Exit(1)
	}
}

// serve runs the continuous query against live network ingest: the
// concurrent runtime executes the graph while the session server accepts
// wire-protocol connections (legacy text mode stays off: with several
// declared streams there is no single stream a raw connection could mean)
// and feeds tuples, punctuation, and measured clock skew into the sources. SIGINT drains gracefully: the listener closes,
// in-flight sessions get drainGrace to finish, every stream is closed with
// a final ETS, and the engine runs to quiescence before results flush.
func serve(ddl, q string, opts options) error {
	e := core.NewEngine()
	if _, err := e.ExecuteScript(ddl, nil); err != nil {
		return err
	}
	reg := metrics.NewRegistry()
	resultsC := reg.Counter("sm_results_total")
	outLat := reg.Reservoir("sm_output_latency_us", 8192)
	var out *wrappers.CSVWriter
	var results uint64
	query, err := e.Execute(q, func(t *tuple.Tuple, now tuple.Time) {
		if out == nil {
			return
		}
		results++
		resultsC.Inc()
		if d := now - t.Ts; d >= 0 {
			outLat.Observe(int64(d))
		}
		if err := out.Write(t); err != nil {
			fmt.Fprintln(os.Stderr, "streamd: write:", err)
		}
	})
	if err != nil {
		return err
	}
	out = wrappers.NewCSVWriter(os.Stdout, query.Out, wrappers.CSVOptions{TsColumn: 0, Header: true})

	var tr *metrics.Tracer
	if opts.trace {
		tr = metrics.NewTracer(4096)
	}
	metrics.InstrumentTracer(reg, tr)
	// One clock for the engine, the session server, and the span collector:
	// every span phase — network hop included — lands on a single µs axis,
	// so per-hop latencies subtract cleanly.
	start := time.Now()
	clock := func() tuple.Time { return tuple.Time(time.Since(start).Microseconds()) }
	spans := obs.New(obs.DefaultRingSize)
	spans.SetClock(func() int64 { return int64(clock()) })
	spans.Instrument(reg)
	ropts := runtime.Options{
		OnDemandETS:   !opts.noETS,
		Metrics:       reg,
		Trace:         tr,
		SourceTimeout: opts.srcTimeout,
		Now:           clock,
		Spans:         spans,
		MaxQueueLen:   opts.maxQueue,
	}
	if opts.adaptive {
		ropts.Adaptive = &runtime.AdaptiveOptions{}
	}
	re, err := e.BuildRuntime(ropts)
	if err != nil {
		return err
	}

	// The observability endpoint comes up before any restore work so the
	// /readyz probe can honestly answer "not yet" while state is loading.
	rdy := &readiness{restoring: opts.restore}
	if opts.metrics != "" {
		ln, err := serveObs(opts, reg, tr, spans, rdy.check)
		if err != nil {
			return err
		}
		defer ln.Close()
	}

	// Checkpointing: a store at -ckpt-dir, optionally restored from before
	// the coordinator starts cutting new snapshots. The restored sources'
	// sequence counters seed the server's dedupe watermarks, so sequenced
	// clients that resend their retained batches are suppressed below the cut
	// and learn the replay resume point from BIND_ACK.
	var coord *ckpt.Coordinator
	var initSeq map[string]uint64
	if opts.restore && opts.ckptDir == "" {
		return fmt.Errorf("-restore requires -ckpt-dir")
	}
	if opts.ckptDir != "" {
		st, err := ckpt.NewStore(opts.ckptDir)
		if err != nil {
			return err
		}
		if opts.restore {
			snap, err := st.Latest()
			if err != nil {
				return err
			}
			if snap == nil {
				fmt.Fprintf(os.Stderr, "streamd: no checkpoint in %s; cold start\n", opts.ckptDir)
			} else {
				if err := re.Restore(snap); err != nil {
					return err
				}
				initSeq = make(map[string]uint64)
				for _, name := range e.Catalog().Names() {
					if _, src, err := e.LookupStream(name); err == nil {
						if w := src.Seq(); w > 0 {
							initSeq[name] = w
						}
					}
				}
				fmt.Fprintf(os.Stderr, "streamd: restored checkpoint %d (%d segments) from %s\n",
					snap.ID, len(snap.Segments), opts.ckptDir)
			}
		}
		coord, err = ckpt.NewCoordinator(re, st, ckpt.Options{
			Interval: opts.ckptInterval,
			Keep:     opts.ckptKeep,
			OnError: func(id uint64, err error) {
				fmt.Fprintf(os.Stderr, "streamd: checkpoint %d: %v\n", id, err)
			},
		})
		if err != nil {
			return err
		}
	}

	var ctl *adapt.Controller
	if opts.adaptive {
		ctl = adapt.Attach(re)
	}
	re.Start()
	rdy.serving(re.Snapshot)
	if ctl != nil {
		ctl.Start()
	}
	if coord != nil {
		coord.Run()
	}
	srv, err := server.Listen(opts.listen, server.Options{
		Backend:    server.NewEngineBackend(re, e.LookupStream),
		Metrics:    reg,
		Trace:      tr,
		Now:        clock,
		Spans:      spans,
		InitialSeq: initSeq,
	})
	if err != nil {
		re.Stop()
		re.Wait()
		return err
	}
	fmt.Fprintf(os.Stderr, "streamd: ingest listening on %s\n", srv.Addr())

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "streamd: draining (interrupt again to abort)")
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "streamd: aborting")
		srv.Close()
		re.Stop()
	}()
	if coord != nil {
		// Stop cutting checkpoints before streams start closing: a barrier
		// injected into a source that EOSes first would never come back.
		coord.Stop()
		fmt.Fprintf(os.Stderr, "streamd: checkpoints: %d complete, %d failed\n",
			coord.Completed(), coord.Failed())
	}
	if cut := srv.Drain(opts.drainGrace); cut > 0 {
		fmt.Fprintf(os.Stderr, "streamd: drain: cut %d straggling session(s)\n", cut)
	}
	// Drain closed every stream a client had opened; close the rest too so
	// never-bound sources also EOS and the whole graph can run dry.
	for _, name := range e.Catalog().Names() {
		if _, src, err := e.LookupStream(name); err == nil {
			re.CloseStream(src)
		}
	}
	done := make(chan error, 1)
	go func() { done <- re.Wait() }()
	var runErr error
	select {
	case runErr = <-done:
	case <-time.After(opts.drainGrace + 5*time.Second):
		fmt.Fprintln(os.Stderr, "streamd: graph drain timed out; stopping")
		re.Stop()
		runErr = <-done
	}
	srv.Close()
	if ctl != nil {
		ctl.Stop()
		fmt.Fprintf(os.Stderr, "streamd: adaptive: %d retunes issued\n", ctl.Retunes())
	}
	if err := out.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "streamd: %d results\n", results)
	if opts.stats {
		if err := reg.WriteText(os.Stderr); err != nil {
			return err
		}
	}
	if tr != nil {
		fmt.Fprintf(os.Stderr, "streamd: trace: %d events recorded\n", tr.Total())
		if err := tr.WriteText(os.Stderr, 64); err != nil {
			return err
		}
	}
	if opts.spanLog != "" {
		f, err := os.Create(opts.spanLog)
		if err != nil {
			return err
		}
		if err := spans.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "streamd: spans: %d timelines (%d events, %d dropped) -> %s\n",
			spans.Traces(), spans.Total(), spans.Dropped(), opts.spanLog)
	}
	return runErr
}

// serveObs starts the observability HTTP endpoint: the metrics handler
// (/metrics, /vars, /trace) plus /spans, liveness and readiness probes,
// and — behind -pprof — the net/http/pprof profile handlers.
func serveObs(opts options, reg *metrics.Registry, tr *metrics.Tracer, spans *obs.Collector, ready func() (bool, string)) (net.Listener, error) {
	ln, err := net.Listen("tcp", opts.metrics)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", metrics.Handler(reg, tr))
	mux.Handle("/spans", obs.Handler(spans))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if ready == nil {
			fmt.Fprintln(w, "ok")
			return
		}
		if ok, why := ready(); !ok {
			http.Error(w, why, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	if opts.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	fmt.Fprintf(os.Stderr, "streamd: metrics listening on http://%s/metrics\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil && !strings.Contains(err.Error(), "use of closed") {
			fmt.Fprintln(os.Stderr, "streamd: metrics server:", err)
		}
	}()
	return ln, nil
}

// readiness implements the /readyz probe over engine snapshots: not ready
// while a checkpoint restore is still loading state (the probe comes up
// before the restore so orchestrators never route to a half-restored
// process), while any source is watchdog-dead, or while tuples keep arriving
// but no watermark has advanced for stallAfter — the timestamp plane is
// wedged even though the data plane looks busy.
type readiness struct {
	mu        sync.Mutex
	restoring bool
	snap      func() runtime.Snapshot

	started bool
	wmSum   int64
	tuples  uint64
	lastOK  time.Time
}

const stallAfter = 15 * time.Second

// serving marks the restore finished and installs the live snapshot source.
func (r *readiness) serving(snap func() runtime.Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.restoring, r.snap = false, snap
}

func (r *readiness) check() (bool, string) {
	r.mu.Lock()
	restoring, snapFn := r.restoring, r.snap
	r.mu.Unlock()
	if restoring {
		return false, "restoring from checkpoint"
	}
	if snapFn == nil {
		return false, "engine not started"
	}
	snap := snapFn()
	var wmSum int64
	var tuples uint64
	for _, ns := range snap.Nodes {
		if ns.Dead {
			return false, fmt.Sprintf("source %s dead (watchdog)", ns.Node)
		}
		if ns.Watermark > tuple.MinTime {
			wmSum += int64(ns.Watermark)
		}
		tuples += ns.TuplesIn
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	// Advancing watermarks — or a quiet data plane, which owes no advance —
	// both count as healthy.
	if !r.started || wmSum > r.wmSum || tuples == r.tuples {
		r.started, r.lastOK = true, now
	}
	r.wmSum, r.tuples = wmSum, tuples
	if now.Sub(r.lastOK) > stallAfter {
		return false, fmt.Sprintf("watermarks stalled for %v under live ingest", now.Sub(r.lastOK).Round(time.Second))
	}
	return true, ""
}

func run(ddl, q string, ins []input, opts options) error {
	e := core.NewEngine()
	if _, err := e.ExecuteScript(ddl, nil); err != nil {
		return err
	}
	reg := metrics.NewRegistry()
	resultsC := reg.Counter("sm_results_total")
	outLat := reg.Reservoir("sm_output_latency_us", 8192)
	var out *wrappers.CSVWriter
	var results uint64
	query, err := e.Execute(q, func(t *tuple.Tuple, now tuple.Time) {
		if out == nil {
			return
		}
		results++
		resultsC.Inc()
		if d := now - t.Ts; d >= 0 {
			outLat.Observe(int64(d))
		}
		if err := out.Write(t); err != nil {
			fmt.Fprintln(os.Stderr, "streamd: write:", err)
		}
	})
	if err != nil {
		return err
	}
	out = wrappers.NewCSVWriter(os.Stdout, query.Out, wrappers.CSVOptions{TsColumn: 0, Header: true})

	var inj *fault.Injector
	if opts.chaos != "" {
		cfg, err := fault.ParseSpec(opts.chaos)
		if err != nil {
			return err
		}
		if opts.chaosSeed != 0 {
			cfg.Seed = opts.chaosSeed
		}
		inj = fault.New(cfg)
	}

	// Load every trace.
	type arrival struct {
		stream string
		src    *ops.Source
		t      *tuple.Tuple
	}
	var arrivals []arrival
	for _, in := range ins {
		src, err := e.Source(in.stream)
		if err != nil {
			return err
		}
		sch, err := e.Catalog().Schema(in.stream)
		if err != nil {
			return err
		}
		f, err := os.Open(in.path)
		if err != nil {
			return err
		}
		tuples, err := wrappers.ReadAllCSV(f, sch, wrappers.CSVOptions{TsColumn: 0, Header: true})
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", in.path, err)
		}
		for _, t := range tuples {
			arrivals = append(arrivals, arrival{stream: in.stream, src: src, t: t})
		}
	}
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].t.Ts < arrivals[j].t.Ts })

	policy := core.OnDemandETS
	if opts.noETS {
		policy = core.NoETS
	}
	clock := tuple.Time(0)
	ex, err := e.Build(policy, func() tuple.Time { return clock })
	if err != nil {
		return err
	}
	ex.InstrumentInto(reg)
	var tr *metrics.Tracer
	if opts.trace {
		tr = metrics.NewTracer(4096)
		ex.SetTracer(tr)
	}
	if opts.metrics != "" {
		// Replay mode has no span collector or readiness probe: /spans
		// answers 404 and /readyz is unconditionally ok.
		ln, err := serveObs(opts, reg, tr, nil, nil)
		if err != nil {
			return err
		}
		defer ln.Close()
	}

	// Replay in timestamp order: each arrival advances the clock, then the
	// engine runs to quiescence (generating ETS on demand). Under -chaos,
	// drops lose the tuple before it reaches the source (a lossy feed) and
	// skew perturbs the application timestamp while the arrival still
	// drives the clock (a source clock drifting against the DSMS clock).
	// SIGINT drains gracefully: the replay stops feeding, every stream
	// closes so blocked windows flush, and buffered results reach stdout —
	// a truncated trace, never a truncated output file.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	fed := 0
replay:
	for _, a := range arrivals {
		select {
		case <-sig:
			fmt.Fprintf(os.Stderr, "streamd: interrupted after %d/%d arrivals; draining\n",
				fed, len(arrivals))
			break replay
		default:
		}
		if a.t.Ts > clock {
			clock = a.t.Ts
		}
		fed++
		if inj.DropTuple(a.stream) {
			continue
		}
		a.t.Ts = inj.SkewTs(a.t.Ts)
		a.src.Ingest(a.t, clock)
		ex.Run(1 << 20)
	}
	// Close every stream so windows and aggregates flush.
	for _, name := range e.Catalog().Names() {
		if src, err := e.Source(name); err == nil {
			src.Offer(tuple.EOS())
		}
	}
	ex.Run(1 << 20)
	if err := out.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "streamd: %d input tuples, %d results, %d steps\n",
		fed, results, ex.Steps())
	if inj != nil {
		st := inj.Stats()
		fmt.Fprintf(os.Stderr, "streamd: chaos: spec %q, %d dropped, %d skewed\n",
			opts.chaos, st.Drops, st.Skews)
	}
	if opts.stats {
		// The registry snapshot is the single source of stats: one
		// `name value` line per metric (see README).
		if err := reg.WriteText(os.Stderr); err != nil {
			return err
		}
	}
	if tr != nil {
		fmt.Fprintf(os.Stderr, "streamd: trace: %d events recorded\n", tr.Total())
		if err := tr.WriteText(os.Stderr, 64); err != nil {
			return err
		}
	}
	if opts.linger > 0 {
		time.Sleep(opts.linger)
	}
	return nil
}
