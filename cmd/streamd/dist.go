package main

import (
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/server"
	"repro/internal/tuple"
	"repro/internal/wrappers"
)

// serveWorker runs streamd as a distributed-execution worker: a wire server
// whose control plane (PLAN_DEPLOY/START/STOP) a remote coordinator drives.
// The worker has no query of its own — fragments arrive over the wire, get
// recompiled deterministically, and run until their links EOS. SIGINT drains:
// active fragments get drainGrace to run dry before being abandoned.
func serveWorker(opts options) error {
	reg := metrics.NewRegistry()
	start := time.Now()
	clock := func() tuple.Time { return tuple.Time(time.Since(start).Microseconds()) }
	ropts := runtime.Options{
		OnDemandETS:   !opts.noETS,
		Metrics:       reg,
		SourceTimeout: opts.srcTimeout,
		Now:           clock,
		MaxQueueLen:   opts.maxQueue,
	}
	w := dist.NewWorker(dist.WorkerConfig{
		Runtime:    ropts,
		ClientName: "streamd-worker",
		OnRow: func(plan uint64, t *tuple.Tuple, _ tuple.Time) {
			// A hand placement may park a sink on a worker; rows go to
			// stdout in a schema-less rendering rather than vanishing.
			fmt.Printf("plan %d: %s\n", plan, t)
		},
	}, nil)
	srv, err := server.Listen(opts.worker, server.Options{
		Backend: w,
		Plans:   w,
		Metrics: reg,
		Now:     clock,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "streamd: worker listening on %s\n", srv.Addr())
	if opts.metrics != "" {
		ln, err := serveObs(opts, reg, nil, nil, nil)
		if err != nil {
			srv.Close()
			return err
		}
		defer ln.Close()
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "streamd: worker draining")
	if cut := srv.Drain(opts.drainGrace); cut > 0 {
		fmt.Fprintf(os.Stderr, "streamd: drain: cut %d straggling session(s)\n", cut)
	}
	// Let drained fragments retire; abandon whatever outlives the grace.
	for _, plan := range w.Plans() {
		done := make(chan error, 1)
		go func(p uint64) { done <- w.WaitPlan(p) }(plan)
		select {
		case err := <-done:
			if err != nil {
				fmt.Fprintf(os.Stderr, "streamd: plan %d: %v\n", plan, err)
			}
		case <-time.After(opts.drainGrace):
			fmt.Fprintf(os.Stderr, "streamd: plan %d still running; stopping\n", plan)
			w.PlanStop(plan)
			<-done
		}
	}
	srv.Close()
	fmt.Fprintln(os.Stderr, "streamd: worker stopped")
	return nil
}

// serveCoordinator runs streamd as the coordinator of a distributed
// deployment: it compiles the script, cuts the (shard-rewritten) graph
// across itself plus the -coordinator worker list, ships the fragments, and
// serves the original stream feeds on -listen. Results stream to stdout as
// CSV exactly like single-process network mode. SIGINT drains end-to-end:
// feed sessions finish, sources close, EOS cascades over every link, and
// the local sink runs dry before the process exits.
func serveCoordinator(ddl, q string, opts options) error {
	workerAddrs := strings.Split(opts.coordinator, ",")
	for i := range workerAddrs {
		workerAddrs[i] = strings.TrimSpace(workerAddrs[i])
	}
	script := ddl + ";\n" + q

	// A throwaway compile supplies the output schema for the CSV writer
	// (the deployed copies recompile from the script themselves).
	probe := core.NewEngine()
	if _, err := probe.ExecuteScript(ddl, nil); err != nil {
		return err
	}
	query, err := probe.Execute(q, nil)
	if err != nil {
		return err
	}
	out := wrappers.NewCSVWriter(os.Stdout, query.Out, wrappers.CSVOptions{TsColumn: 0, Header: true})

	reg := metrics.NewRegistry()
	resultsC := reg.Counter("sm_results_total")
	start := time.Now()
	clock := func() tuple.Time { return tuple.Time(time.Since(start).Microseconds()) }
	var results uint64
	ropts := runtime.Options{
		OnDemandETS:   !opts.noETS,
		Metrics:       reg,
		SourceTimeout: opts.srcTimeout,
		Now:           clock,
		MaxQueueLen:   opts.maxQueue,
	}
	w := dist.NewWorker(dist.WorkerConfig{
		Runtime:    ropts,
		ClientName: "streamd-coordinator",
		OnRow: func(_ uint64, t *tuple.Tuple, _ tuple.Time) {
			results++
			resultsC.Inc()
			if err := out.Write(t); err != nil {
				fmt.Fprintln(os.Stderr, "streamd: write:", err)
			}
		},
	}, nil)
	srv, err := server.Listen(opts.listen, server.Options{
		Backend: w,
		Plans:   w,
		Metrics: reg,
		Now:     clock,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "streamd: coordinator ingest listening on %s\n", srv.Addr())
	if opts.metrics != "" {
		ln, err := serveObs(opts, reg, nil, nil, nil)
		if err != nil {
			srv.Close()
			return err
		}
		defer ln.Close()
	}

	shards := opts.distShards
	if shards == 0 {
		shards = len(workerAddrs)
	}
	spec := &dist.Spec{
		Plan:      1,
		Script:    script,
		Shards:    shards,
		Workers:   append([]string{srv.Addr().String()}, workerAddrs...),
		LinkDelta: tuple.Time(opts.linkDelta.Microseconds()),
	}
	if err := spec.Place(); err != nil {
		srv.Close()
		return err
	}
	coord, err := dist.Deploy(w, spec, client.Options{Name: "streamd-coordinator"})
	if err != nil {
		srv.Close()
		return err
	}
	execs := map[int32]bool{}
	for _, p := range spec.Placement {
		execs[p] = true
	}
	fmt.Fprintf(os.Stderr, "streamd: deployed plan %d: %d nodes over %d of %d executors (%d shards)\n",
		spec.Plan, len(spec.Placement), len(execs), len(spec.Workers), shards)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "streamd: draining (interrupt again to abort)")
	abort := make(chan struct{})
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "streamd: aborting")
		close(abort)
		coord.Stop()
		srv.Close()
	}()
	if cut := srv.Drain(opts.drainGrace); cut > 0 {
		fmt.Fprintf(os.Stderr, "streamd: drain: cut %d straggling session(s)\n", cut)
	}
	// Close never-bound original sources too, so the EOS cascade reaches
	// every link and the whole distributed graph runs dry.
	if eng := w.Engine(spec.Plan); eng != nil {
		if frag := w.Fragment(spec.Plan); frag != nil {
			for _, src := range frag.Sources {
				eng.CloseStream(src)
			}
		}
	}
	done := make(chan error, 1)
	go func() { done <- coord.Wait() }()
	var runErr error
	select {
	case runErr = <-done:
	case <-abort:
		runErr = <-done
	case <-time.After(opts.drainGrace + 10*time.Second):
		fmt.Fprintln(os.Stderr, "streamd: distributed drain timed out; stopping")
		coord.Stop()
		runErr = <-done
	}
	srv.Close()
	if err := out.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "streamd: coordinator drained, %d results\n", results)
	if opts.stats {
		if err := reg.WriteText(os.Stderr); err != nil {
			return err
		}
	}
	return runErr
}
