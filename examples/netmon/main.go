// Network monitoring over the wire: the Gigascope-style workload that
// motivated heartbeat punctuation (Johnson et al., VLDB'05) and this paper's
// on-demand improvement, fed through the networked ingestion subsystem
// instead of the simulator. Two packet feeds — a busy backbone link and a
// quiet management link — connect to a loopback session server as
// wire-protocol clients, and the concurrent runtime joins them on flow id
// inside a 2-second window while a per-link aggregate counts packets in
// 1-second windows.
//
// The quiet link would stall both queries under classic merge semantics.
// Here the mgmt *client* keeps them live: it generates punctuation locally
// (the paper's "wrapper as a first-class bound source"), so progress rides
// the wire as data, not as a server-side guess. Timestamps are virtual
// Poisson arrival times over a simulated minute, streamed at full speed.
package main

import (
	"flag"
	"fmt"
	"sync"

	"repro/client"
	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/tuple"
)

func main() {
	addr := flag.String("addr", "", "feed an external streamd ingest address instead of the embedded loopback server (the target must declare backbone and mgmt)")
	seconds := flag.Int("seconds", 60, "simulated seconds of link traffic")
	flag.Parse()
	horizon := tuple.Time(*seconds) * tuple.Time(tuple.Second)
	if *addr != "" {
		// External mode: the queries (and their results) live in the
		// remote streamd; this process is only the two link feeds.
		fmt.Printf("feeding %s: %ds of link traffic (200/s backbone, 0.5/s mgmt)\n", *addr, *seconds)
		feedLinks(*addr, horizon)
		fmt.Println("feeds closed")
		return
	}

	e := core.NewEngine()
	e.MustExecute(`CREATE STREAM backbone (flow int, bytes int) TIMESTAMP EXTERNAL`, nil)
	e.MustExecute(`CREATE STREAM mgmt (flow int, code int) TIMESTAMP EXTERNAL`, nil)

	var mu sync.Mutex
	correlated, windows := 0, 0
	e.MustExecute(
		`SELECT backbone.flow, bytes, code FROM backbone JOIN mgmt ON backbone.flow = mgmt.flow WINDOW 2s`,
		func(t *tuple.Tuple, _ tuple.Time) {
			mu.Lock()
			correlated++
			if correlated <= 5 {
				fmt.Printf("  correlated: flow=%v bytes=%v code=%v at %v\n",
					t.Vals[0], t.Vals[1], t.Vals[2], t.Ts)
			}
			mu.Unlock()
		})
	e.MustExecute(
		`SELECT count(*) AS pkts, sum(bytes) AS vol FROM backbone WINDOW 1s`,
		func(t *tuple.Tuple, _ tuple.Time) {
			mu.Lock()
			windows++
			if windows <= 3 {
				fmt.Printf("  1s window ending %v: %v packets, %v bytes\n",
					t.Ts, t.Vals[0], t.Vals[1])
			}
			mu.Unlock()
		})

	re, err := e.BuildRuntime(runtime.Options{OnDemandETS: true})
	if err != nil {
		panic(err)
	}
	re.Start()
	srv, err := server.Listen("127.0.0.1:0", server.Options{
		Backend: server.NewEngineBackend(re, e.LookupStream),
	})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	fmt.Printf("ingest server on %s; streaming 60s of link traffic (200/s backbone, 0.5/s mgmt):\n",
		srv.Addr())

	feedLinks(srv.Addr().String(), horizon)
	if err := re.Wait(); err != nil {
		panic(err)
	}

	snap := re.Snapshot()
	mu.Lock()
	fmt.Printf("correlation matches: %d; aggregate windows emitted: %d\n", correlated, windows)
	mu.Unlock()
	fmt.Printf("on-demand ETS generated: %d; tuples over the wire: %d; punctuation: %d\n",
		snap.ETSGenerated,
		lookupMetric(srv, "sm_net_tuples_in_total"),
		lookupMetric(srv, "sm_net_punct_in_total"))
}

// feedLinks streams the two-link workload into addr and returns once both
// feeds have sent EOS. Each link is its own wire-protocol client asking for
// punctuation tracing (granted only by span-collecting servers). The
// backbone punctuates every 64 packets; the near-silent mgmt link
// punctuates after every event and once more at each simulated second so
// the join never waits on it.
func feedLinks(addr string, horizon tuple.Time) {
	feed := func(stream string, proc *sim.Poisson, every int, payload func(i uint64) []tuple.Value) {
		c, err := client.Dial(addr, client.Options{Name: "netmon-" + stream, Trace: true})
		if err != nil {
			panic(err)
		}
		defer c.Close()
		s, err := c.Bind(stream, tuple.External, client.StreamOptions{AutoPunctEvery: every})
		if err != nil {
			panic(err)
		}
		var i uint64
		nextBeat := tuple.Time(tuple.Second)
		for ts := proc.NextGap(); ts < horizon; ts += proc.NextGap() {
			for nextBeat <= ts { // idle spell: promise progress anyway
				if err := s.Punct(nextBeat); err != nil {
					panic(err)
				}
				nextBeat += tuple.Time(tuple.Second)
			}
			if err := s.Send(tuple.NewData(ts, payload(i)...)); err != nil {
				panic(err)
			}
			i++
		}
		if err := s.CloseSend(); err != nil { // EOS: the final, maximal promise
			panic(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		feed("backbone", sim.NewPoisson(200, 7), 64, func(i uint64) []tuple.Value {
			return []tuple.Value{tuple.Int(int64(i % 8)), tuple.Int(int64(64 + i%1400))}
		})
	}()
	go func() {
		defer wg.Done()
		feed("mgmt", sim.NewPoisson(0.5, 8), 1, func(i uint64) []tuple.Value {
			return []tuple.Value{tuple.Int(int64(i % 8)), tuple.Int(int64(100 + i%5))}
		})
	}()
	wg.Wait()
}

func lookupMetric(srv *server.Server, name string) int64 {
	for _, m := range srv.Registry().Snapshot() {
		if m.Name == name {
			return int64(m.Value)
		}
	}
	return -1
}
