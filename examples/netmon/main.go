// Network monitoring: the Gigascope-style workload that motivated heartbeat
// punctuation (Johnson et al., VLDB'05) and this paper's on-demand
// improvement. Two packet streams — a busy backbone link and a quiet
// management link — are joined on flow id inside a 2-second window to
// correlate control events with data traffic, and a per-link aggregate
// counts packets in 1-second windows.
//
// The quiet link would stall both queries under classic merge semantics;
// on-demand ETS keeps them live. The whole thing runs on the deterministic
// simulator with Poisson traffic, so the demo completes in milliseconds of
// wall time while simulating a minute of link traffic.
package main

import (
	"fmt"

	streammill "repro"
	"repro/internal/sim"
)

func main() {
	e := streammill.NewEngine()
	e.MustExecute(`CREATE STREAM backbone (flow int, bytes int)`, nil)
	e.MustExecute(`CREATE STREAM mgmt (flow int, code int)`, nil)

	correlated := 0
	e.MustExecute(
		`SELECT backbone.flow, bytes, code FROM backbone JOIN mgmt ON backbone.flow = mgmt.flow WINDOW 2s`,
		func(t *streammill.Tuple, _ streammill.Time) {
			correlated++
			if correlated <= 5 {
				fmt.Printf("  correlated: flow=%v bytes=%v code=%v at %v\n",
					t.Vals[0], t.Vals[1], t.Vals[2], t.Ts)
			}
		})

	rate := 0
	e.MustExecute(
		`SELECT count(*) AS pkts, sum(bytes) AS vol FROM backbone WINDOW 1s`,
		func(t *streammill.Tuple, _ streammill.Time) {
			rate++
			if rate <= 3 {
				fmt.Printf("  1s window ending %v: %v packets, %v bytes\n",
					t.Ts, t.Vals[0], t.Vals[1])
			}
		})

	var s *streammill.Sim
	ex, err := e.Build(streammill.OnDemandETS, func() streammill.Time { return s.Clock() })
	if err != nil {
		panic(err)
	}
	s = streammill.NewSim(ex, streammill.Minute)

	backbone, _ := e.Source("backbone")
	mgmt, _ := e.Source("mgmt")
	// Backbone: 200 packets/s across 8 flows. Management: 0.5 events/s.
	s.AddStream(&streammill.Stream{
		Source: backbone,
		Proc:   sim.NewPoisson(200, 7),
		Payload: func(i uint64) []streammill.Value {
			return []streammill.Value{
				streammill.Int(int64(i % 8)),
				streammill.Int(int64(64 + i%1400)),
			}
		},
	})
	s.AddStream(&streammill.Stream{
		Source: mgmt,
		Proc:   sim.NewPoisson(0.5, 8),
		Payload: func(i uint64) []streammill.Value {
			return []streammill.Value{
				streammill.Int(int64(i % 8)),
				streammill.Int(int64(100 + i%5)),
			}
		},
	})

	fmt.Println("simulating 60s of link traffic (200/s backbone, 0.5/s mgmt):")
	if err := s.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("correlation matches: %d; aggregate windows emitted: %d\n", correlated, rate)
	fmt.Printf("on-demand ETS injected: %d; peak buffered tuples: %d\n",
		ex.ETSInjected(), ex.Queues().Peak())
}
