// Quickstart: declare two streams, union them with a filter, and watch
// on-demand Enabling Time-Stamps (ETS) keep the union live even though the
// second stream is almost silent — the paper's headline scenario, in ~60
// lines against the public API.
package main

import (
	"fmt"

	streammill "repro"
)

func main() {
	e := streammill.NewEngine()
	e.MustExecute(`CREATE STREAM fast (v int)`, nil)
	e.MustExecute(`CREATE STREAM slow (v int)`, nil)

	// The continuous query: merge both streams, keep even payloads.
	e.MustExecute(`SELECT * FROM fast UNION slow WHERE v % 2 = 0`,
		func(t *streammill.Tuple, now streammill.Time) {
			fmt.Printf("  result %v  (latency %v)\n", t, now-t.Ts)
		})

	// Build the single-threaded DFS engine with on-demand ETS (the
	// paper's scenario C). The clock is ours to drive.
	clock := streammill.Time(0)
	ex, err := e.Build(streammill.OnDemandETS, func() streammill.Time { return clock })
	if err != nil {
		panic(err)
	}

	fast, _ := e.Source("fast")
	slow, _ := e.Source("slow")

	fmt.Println("ingesting 5 tuples on `fast`; `slow` stays silent:")
	for i := 0; i < 5; i++ {
		clock += 20 * streammill.Millisecond
		fast.Ingest(streammill.NewData(0, streammill.Int(int64(i))), clock)
		// Without ETS the union would idle-wait for `slow`; the engine
		// backtracks to slow's source, generates an ETS, and the tuple
		// flows out immediately.
		ex.Run(1000)
	}

	fmt.Println("one late tuple on `slow`:")
	clock += 500 * streammill.Millisecond
	slow.Ingest(streammill.NewData(0, streammill.Int(100)), clock)
	ex.Run(1000)

	fmt.Printf("engine executed %d operator steps, injected %d on-demand ETS\n",
		ex.Steps(), ex.ETSInjected())
}
