// Multiquery: several continuous queries sharing one engine, executed under
// the weighted fair scheduler. The paper treats each weakly-connected
// component of the query graph as a "scheduling unit that is assigned a
// share of the system resources" (§3); this example gives a latency-critical
// alerting query 4× the share of a bulk analytics query and shows the step
// accounting.
package main

import (
	"fmt"

	streammill "repro"
)

func main() {
	e := streammill.NewEngine()

	// Two independent stream groups = two scheduling units.
	e.MustExecute(`CREATE STREAM alerts_in (sev int, msg string)`, nil)
	e.MustExecute(`CREATE STREAM metrics (host int, cpu float)`, nil)

	nAlerts, nRollups := 0, 0
	e.MustExecute(`SELECT * FROM alerts_in WHERE sev >= 3`,
		func(t *streammill.Tuple, _ streammill.Time) { nAlerts++ })
	e.MustExecute(`SELECT host, avg(cpu), max(cpu) FROM metrics GROUP BY host WINDOW 1s`,
		func(t *streammill.Tuple, _ streammill.Time) { nRollups++ })

	clock := streammill.Time(0)
	ex, err := e.Build(streammill.OnDemandETS, func() streammill.Time { return clock })
	if err != nil {
		panic(err)
	}
	fmt.Printf("scheduling units: %d\n", len(ex.Components()))

	// Unit 0 (alerts) gets 4× the share of unit 1 (metrics rollups).
	sched, err := streammill.NewScheduler(ex, map[int]int{0: 4, 1: 1})
	if err != nil {
		panic(err)
	}

	alerts, _ := e.Source("alerts_in")
	metrics, _ := e.Source("metrics")

	// Saturate both units, then run a bounded step budget to show the
	// share in action.
	for i := 0; i < 2000; i++ {
		clock += streammill.Millisecond
		alerts.Ingest(streammill.NewData(0,
			streammill.Int(int64(i%5)), streammill.Str("event")), clock)
		metrics.Ingest(streammill.NewData(0,
			streammill.Int(int64(i%16)), streammill.Float(float64(i%100))), clock)
	}
	sched.Run(6000)
	us := sched.UnitSteps()
	fmt.Printf("after 6000 steps under 4:1 weights: unit0=%d unit1=%d (ratio %.1f)\n",
		us[0], us[1], float64(us[0])/float64(us[1]))

	// Drain the rest; idle units yield their share automatically.
	sched.Run(1 << 20)
	fmt.Printf("delivered: %d alerts, %d rollup rows\n", nAlerts, nRollups)
	for _, st := range ex.NodeStats() {
		fmt.Printf("  unit %d  %-12s steps=%d\n", st.Comp, st.Name, st.Steps)
	}
}
