// Distributed query over loopback: one process plays a whole cluster. Three
// executors — a coordinator and two workers — each run a dist.Worker behind
// its own wire server; the coordinator cuts a sharded union across them, so
// the shard replicas live on the workers and every tuple crosses the network
// twice (splitter → shard, shard → merge).
//
// The demo then stages the failure the link-liveness machinery exists for: a
// feed goes silent mid-stream without closing. The coordinator deliberately
// runs without a source watchdog, so the silence propagates into the network
// link itself — and it is the *worker's* watchdog that must force a
// skew-bounded ETS into the quiet link source to keep its shard (and the
// whole query) emitting. The demo asserts that results keep flowing and the
// sink watermark keeps advancing while the feed is down, then resumes the
// feed, drains end to end, and checks nothing was lost.
package main

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/dist"
	rt "repro/internal/runtime"
	"repro/internal/server"
	"repro/internal/tuple"
)

const script = `
	CREATE STREAM a (k int, v float) TIMESTAMP EXTERNAL SKEW 50ms;
	CREATE STREAM c (k int, v float) TIMESTAMP EXTERNAL SKEW 50ms;
	SELECT * FROM a UNION c WHERE v > 0.0;
`

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "distquery: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	base := time.Now()
	now := func() tuple.Time { return tuple.Time(time.Since(base).Microseconds()) }

	var results atomic.Uint64
	var maxTs atomic.Int64

	// Executor 0 is the coordinator: no watchdog, so a stalled feed reaches
	// the links. Executors 1 and 2 are workers: their watchdogs guard the
	// link sources.
	const execs = 3
	var workers []*dist.Worker
	var addrs []string
	for i := 0; i < execs; i++ {
		ropts := rt.Options{Now: now}
		if i > 0 {
			ropts.SourceTimeout = 100 * time.Millisecond
		}
		w := dist.NewWorker(dist.WorkerConfig{
			Runtime:    ropts,
			ClientName: fmt.Sprintf("distquery-exec%d", i),
			OnRow: func(_ uint64, t *tuple.Tuple, _ tuple.Time) {
				results.Add(1)
				for {
					cur := maxTs.Load()
					if int64(t.Ts) <= cur || maxTs.CompareAndSwap(cur, int64(t.Ts)) {
						break
					}
				}
			},
		}, nil)
		srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: w, Plans: w})
		if err != nil {
			fail("listen: %v", err)
		}
		defer srv.Close()
		workers = append(workers, w)
		addrs = append(addrs, srv.Addr().String())
	}

	spec := &dist.Spec{
		Plan:      1,
		Script:    script,
		Shards:    2,
		Workers:   addrs,
		LinkDelta: 50_000, // 50ms skew allowance on every network link
	}
	if err := spec.Place(); err != nil {
		fail("place: %v", err)
	}
	coord, err := dist.Deploy(workers[0], spec, client.Options{Name: "distquery-coord"})
	if err != nil {
		fail("deploy: %v", err)
	}
	used := map[int32]bool{}
	for _, p := range spec.Placement {
		used[p] = true
	}
	fmt.Printf("distquery: deployed plan %d: %d nodes over %d executors (%d shards)\n",
		spec.Plan, len(spec.Placement), len(used), spec.Shards)
	if len(used) != execs {
		fail("placement uses %d executors, want %d: %v", len(used), execs, spec.Placement)
	}

	conn, err := client.Dial(addrs[0], client.Options{Name: "distquery-feed", BatchSize: 16})
	if err != nil {
		fail("dial: %v", err)
	}
	defer conn.Close()
	bind := func(name string) *client.Stream {
		st, err := conn.Bind(name, tuple.External, client.StreamOptions{
			Delta: 50_000, AutoPunctEvery: 32,
		})
		if err != nil {
			fail("bind %s: %v", name, err)
		}
		return st
	}
	sa, sc := bind("a"), bind("c")

	// Phase 1 — both feeds live: c sends a burst (the link needs at least
	// one tuple for a skew bound to exist, or no ETS could ever be forced
	// into it), a streams paced real-time tuples throughout.
	var sentA, sentC atomic.Uint64
	send := func(st *client.Stream, n *atomic.Uint64) {
		k := int64(n.Add(1))
		if err := st.Send(tuple.NewData(now(), tuple.Int(k), tuple.Float(1.5))); err != nil {
			fail("send: %v", err)
		}
	}
	for i := 0; i < 64; i++ {
		send(sc, &sentC)
	}
	stopA := make(chan struct{})
	aDone := make(chan struct{})
	go func() {
		defer close(aDone)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopA:
				return
			case <-tick.C:
				send(sa, &sentA)
			}
		}
	}()

	// Phase 2 — c goes silent: no tuples, no punctuation, no close. The
	// worker watchdogs must force ETS into the quiet c-links so the union
	// shards keep releasing a's tuples.
	time.Sleep(300 * time.Millisecond) // let the burst clear the links
	stallStart := results.Load()
	wmStart := tuple.Time(maxTs.Load())
	fmt.Printf("distquery: stalling feed c (results so far: %d)\n", stallStart)

	deadline := time.Now().Add(10 * time.Second)
	var forced uint64
	for time.Now().Before(deadline) {
		forced = 0
		for i := 1; i < execs; i++ {
			if eng := workers[i].Engine(spec.Plan); eng != nil {
				forced += eng.Snapshot().ForcedETS
			}
		}
		if forced > 0 && results.Load() > stallStart+100 && tuple.Time(maxTs.Load()) > wmStart {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	stallGain := results.Load() - stallStart
	wmEnd := tuple.Time(maxTs.Load())
	fmt.Printf("distquery: during stall: +%d results, sink watermark %dµs -> %dµs, forced ETS on workers: %d\n",
		stallGain, wmStart, wmEnd, forced)
	if forced == 0 {
		fail("no worker forced ETS into the stalled link")
	}
	if stallGain <= 100 {
		fail("query stalled with the silent feed: only %d results during the stall", stallGain)
	}
	if wmEnd <= wmStart {
		fail("sink watermark did not advance during the stall")
	}

	// Phase 3 — c resumes, both feeds close, and the deployment drains
	// naturally: EOS cascades over every link and Wait returns everywhere.
	for i := 0; i < 64; i++ {
		send(sc, &sentC)
	}
	close(stopA)
	<-aDone
	for _, st := range []*client.Stream{sa, sc} {
		if err := st.CloseSend(); err != nil {
			fail("close: %v", err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- coord.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			fail("drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		fail("deployment did not drain")
	}
	for i := 1; i < execs; i++ {
		if err := workers[i].WaitPlan(spec.Plan); err != nil {
			fail("worker %d: %v", i, err)
		}
	}

	sent := sentA.Load() + sentC.Load()
	got := results.Load()
	fmt.Printf("distquery: drained: %d results from %d sent tuples\n", got, sent)
	if got != sent {
		fail("lost tuples: sent %d, results %d", sent, got)
	}
	fmt.Println("distquery: OK")
}
