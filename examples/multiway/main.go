// Multiway: a three-way union over the concurrent goroutine runtime, with
// coarse timestamps that produce *simultaneous tuples* (paper §4.1). The
// TSM registers and relaxed `more` condition let every equal-timestamp
// tuple flow, and upstream demand signals generate on-demand ETS in real
// time whenever one of the three feeds goes quiet.
package main

import (
	"fmt"
	"sync"
	"time"

	streammill "repro"
)

func main() {
	e := streammill.NewEngine()
	e.MustExecute(`CREATE STREAM s1 (src int, v int)`, nil)
	e.MustExecute(`CREATE STREAM s2 (src int, v int)`, nil)
	e.MustExecute(`CREATE STREAM s3 (src int, v int)`, nil)

	var mu sync.Mutex
	perSource := map[int64]int{}
	total := 0
	e.MustExecute(`SELECT * FROM s1 UNION s2 UNION s3`,
		func(t *streammill.Tuple, _ streammill.Time) {
			mu.Lock()
			perSource[t.Vals[0].AsInt()]++
			total++
			mu.Unlock()
		})

	rt, err := streammill.NewRuntime(e, streammill.RuntimeOptions{OnDemandETS: true})
	if err != nil {
		panic(err)
	}
	rt.Start()

	srcs := make([]*streammill.Source, 3)
	for i := range srcs {
		s, err := e.Source(fmt.Sprintf("s%d", i+1))
		if err != nil {
			panic(err)
		}
		srcs[i] = s
	}

	// Three producers at very different speeds. s3 sends a single burst
	// and goes quiet — without demand-driven ETS the union would hold
	// back everything newer than s3's last tuple.
	var wg sync.WaitGroup
	produce := func(idx, n int, gap time.Duration) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			rt.Ingest(srcs[idx], streammill.NewData(0,
				streammill.Int(int64(idx+1)), streammill.Int(int64(i))))
			time.Sleep(gap)
		}
		rt.CloseStream(srcs[idx])
	}
	wg.Add(3)
	go produce(0, 300, 200*time.Microsecond)
	go produce(1, 100, 600*time.Microsecond)
	go produce(2, 5, 0) // burst, then silence

	wg.Wait()
	rt.Wait()

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("three-way union delivered %d tuples: s1=%d s2=%d s3=%d\n",
		total, perSource[1], perSource[2], perSource[3])
	fmt.Printf("demand-driven ETS generated: %d\n", rt.ETSGenerated())
}
