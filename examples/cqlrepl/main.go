// cqlrepl: a tiny interactive shell over the engine. Type CREATE STREAM and
// SELECT statements, then feed tuples with the built-in \ingest command and
// watch results stream back. Demonstrates using the library interactively:
//
//	$ go run ./examples/cqlrepl
//	> CREATE STREAM s (id int, temp float)
//	> SELECT id, temp FROM s WHERE temp > 30.0
//	> \ingest s 1,35.5
//	[q0] tuple(1µs, 1, 35.5)
//	> \quit
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	streammill "repro"
	"repro/internal/wrappers"
)

func main() {
	e := streammill.NewEngine()
	clock := streammill.Time(0)
	var ex *streammill.ExecEngine
	nq := 0

	sc := bufio.NewScanner(os.Stdin)
	fmt.Println("streammill cqlrepl — CREATE STREAM ..., SELECT ..., \\ingest <stream> <csv>, \\dot, \\quit")
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\quit` || line == `\q`:
			return
		case line == `\dot`:
			fmt.Print(e.Graph().Dot())
		case strings.HasPrefix(strings.ToLower(line), "explain"):
			out, err := e.Explain(line)
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Print(out)
			}
		case strings.HasPrefix(line, `\ingest `):
			if err := ingest(e, &ex, &clock, line); err != nil {
				fmt.Println("error:", err)
			}
		default:
			id := nq
			q, err := e.Execute(line, func(t *streammill.Tuple, _ streammill.Time) {
				fmt.Printf("[q%d] %v\n", id, t)
			})
			if err != nil {
				fmt.Println("error:", err)
			} else if q != nil {
				fmt.Printf("registered q%d → %s\n", nq, q.Out)
				nq++
			}
		}
		fmt.Print("> ")
	}
}

// ingest parses "\ingest stream v1,v2,..." and pushes the tuple through.
func ingest(e *streammill.Engine, ex **streammill.ExecEngine, clock *streammill.Time, line string) error {
	parts := strings.SplitN(strings.TrimPrefix(line, `\ingest `), " ", 2)
	if len(parts) != 2 {
		return fmt.Errorf(`usage: \ingest <stream> <csv-values>`)
	}
	src, err := e.Source(parts[0])
	if err != nil {
		return err
	}
	sch, err := e.Catalog().Schema(parts[0])
	if err != nil {
		return err
	}
	tuples, err := wrappers.ReadAllCSV(strings.NewReader(parts[1]+"\n"), sch,
		wrappers.CSVOptions{TsColumn: -1})
	if err != nil {
		return err
	}
	if *ex == nil {
		c := clock
		built, err := e.Build(streammill.OnDemandETS, func() streammill.Time { return *c })
		if err != nil {
			return err
		}
		*ex = built
	}
	for _, t := range tuples {
		*clock += streammill.Millisecond
		src.Ingest(t, *clock)
	}
	(*ex).Run(100000)
	return nil
}
