// Finance: externally timestamped trade and quote feeds with a bounded
// clock skew (paper §5). Trades arrive at ~40/s, quotes for an illiquid
// venue at ~0.1/s; the query joins them within a one-second window. The
// example runs the same workload twice — without ETS (scenario A) and with
// on-demand ETS using the t + τ − δ skew estimator (scenario C) — and
// prints the latency difference, reproducing the paper's contrast on a
// realistic feed.
package main

import (
	"fmt"

	streammill "repro"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func runScenario(onDemand bool) (mean streammill.Time, n int, peak int) {
	const delta = 50 * streammill.Millisecond

	e := streammill.NewEngine()
	e.MustExecute(`CREATE STREAM trades (sym int, px float) TIMESTAMP EXTERNAL SKEW 50ms`, nil)
	e.MustExecute(`CREATE STREAM quotes (sym int, bid float) TIMESTAMP EXTERNAL SKEW 50ms`, nil)

	lat := metrics.NewLatency()
	var s *streammill.Sim
	e.MustExecute(
		`SELECT trades.sym, px, bid FROM trades JOIN quotes ON trades.sym = quotes.sym WINDOW 1s`,
		func(t *streammill.Tuple, now streammill.Time) { lat.Observe(now - t.Ts) })

	policy := streammill.NoETS
	if onDemand {
		policy = streammill.OnDemandETS
	}
	ex, err := e.Build(policy, func() streammill.Time { return s.Clock() })
	if err != nil {
		panic(err)
	}
	s = streammill.NewSim(ex, 2*streammill.Minute)

	trades, _ := e.Source("trades")
	quotes, _ := e.Source("quotes")
	// External timestamps lag arrival by half the skew bound.
	extTs := func(arrival streammill.Time, _ uint64) streammill.Time {
		return arrival - delta/2
	}
	s.AddStream(&streammill.Stream{
		Source: trades,
		Proc:   sim.NewPoisson(40, 11),
		ExtTs:  extTs,
		Payload: func(i uint64) []streammill.Value {
			return []streammill.Value{streammill.Int(int64(i % 4)), streammill.Float(100 + float64(i%50)/10)}
		},
	})
	s.AddStream(&streammill.Stream{
		Source: quotes,
		Proc:   sim.NewPoisson(0.1, 12),
		ExtTs:  extTs,
		Payload: func(i uint64) []streammill.Value {
			return []streammill.Value{streammill.Int(int64(i % 4)), streammill.Float(99 + float64(i%50)/10)}
		},
	})
	if err := s.Run(); err != nil {
		panic(err)
	}
	return lat.Mean(), lat.Count(), ex.Queues().Peak()
}

func main() {
	fmt.Println("trade/quote window join, 40/s vs 0.1/s, external timestamps (δ=50ms):")
	meanA, nA, peakA := runScenario(false)
	fmt.Printf("  no ETS      : mean latency %10.3f ms, %4d matches, peak queue %5d\n",
		meanA.Millis(), nA, peakA)
	meanC, nC, peakC := runScenario(true)
	fmt.Printf("  on-demand   : mean latency %10.3f ms, %4d matches, peak queue %5d\n",
		meanC.Millis(), nC, peakC)
	if meanC > 0 {
		fmt.Printf("  speedup     : %.0fx lower latency, %.0fx less memory\n",
			float64(meanA)/float64(meanC), float64(peakA)/float64(peakC))
	}
	fmt.Println("  (on-demand ETS uses the §5 estimator: ETS = t + τ − δ)")
}
