package client_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/ops"
	"repro/internal/server"
	"repro/internal/tuple"
)

// gateBackend records ingested tuples; an optional gate channel makes
// Ingest block (engine backpressure stand-in).
type gateBackend struct {
	sch  *tuple.Schema
	gate chan struct{} // nil: never blocks

	mu     sync.Mutex
	data   []tuple.Time
	punct  []tuple.Time
	closed bool
}

func (b *gateBackend) Open(name string) (*tuple.Schema, server.StreamSink, error) {
	if name != b.sch.Name {
		return nil, nil, fmt.Errorf("unknown stream %q", name)
	}
	return b.sch, b, nil
}

func (b *gateBackend) Ingest(t *tuple.Tuple) {
	if b.gate != nil {
		<-b.gate
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if t.IsPunct() {
		b.punct = append(b.punct, t.Ts)
	} else {
		b.data = append(b.data, t.Ts)
	}
}

func (b *gateBackend) IngestBatch(ts []*tuple.Tuple) {
	for _, t := range ts {
		b.Ingest(t)
	}
}

func (b *gateBackend) Source() *ops.Source { return nil }

func (b *gateBackend) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
}

func (b *gateBackend) counts() (data, punct int, closed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.data), len(b.punct), b.closed
}

func extSchema() *tuple.Schema {
	return tuple.NewSchema("sensors",
		tuple.Field{Name: "id", Kind: tuple.IntKind},
		tuple.Field{Name: "v", Kind: tuple.FloatKind},
	).WithTS(tuple.External)
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestClientSendPunctEOS(t *testing.T) {
	back := &gateBackend{sch: extSchema()}
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := client.Dial(srv.Addr().String(), client.Options{Name: "t", BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Session() == 0 {
		t.Error("no session id")
	}
	s, err := c.Bind("sensors", tuple.External, client.StreamOptions{Delta: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Send(tuple.NewData(tuple.Time(i*100), tuple.Int(int64(i)), tuple.Float(0.5))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Punct(900); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseSend(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "ingest", func() bool {
		d, p, closed := back.counts()
		return d == 10 && p == 1 && closed
	})
	st := c.Stats()
	if st.TuplesSent != 10 || st.PunctSent != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BatchesSent >= 10 {
		t.Errorf("no batching happened: %d frames for 10 tuples", st.BatchesSent)
	}
}

func TestClientAutoPunct(t *testing.T) {
	back := &gateBackend{sch: extSchema()}
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := client.Dial(srv.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.Bind("sensors", tuple.External, client.StreamOptions{AutoPunctEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Send(tuple.NewData(tuple.Time(i*10), tuple.Int(int64(i)), tuple.Float(1)))
	}
	c.Flush()
	waitCond(t, "auto punct", func() bool {
		d, p, _ := back.counts()
		return d == 20 && p == 4
	})
	// Each auto punct promises the max timestamp sent before it.
	back.mu.Lock()
	defer back.mu.Unlock()
	for i, p := range back.punct {
		want := tuple.Time((i+1)*5*10 - 10)
		if p != want {
			t.Errorf("punct %d = %d, want %d", i, p, want)
		}
	}
}

func TestClientBindError(t *testing.T) {
	back := &gateBackend{sch: extSchema()}
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := client.Dial(srv.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Bind("nosuch", tuple.External, client.StreamOptions{}); err == nil {
		t.Fatal("bind to unknown stream succeeded")
	}
	if _, err := c.Bind("sensors", tuple.Internal, client.StreamOptions{}); err == nil {
		t.Fatal("bind with wrong TS kind succeeded")
	}
}

// killableDialer hands out connections the test can sever at will.
type killableDialer struct {
	mu   sync.Mutex
	last net.Conn
}

func (d *killableDialer) dial(addr string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.last = conn
	d.mu.Unlock()
	return conn, nil
}

func (d *killableDialer) kill() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.last != nil {
		d.last.Close()
	}
}

func TestClientReconnectResumesAndRebinds(t *testing.T) {
	back := &gateBackend{sch: extSchema()}
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	d := &killableDialer{}
	c, err := client.Dial(srv.Addr().String(), client.Options{
		Reconnect:      true,
		BatchSize:      1,
		HeartbeatEvery: -1, // the test drives reconnection via Send
		Dial:           d.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.Bind("sensors", tuple.External, client.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Send(tuple.NewData(tuple.Time(i), tuple.Int(int64(i)), tuple.Float(1))); err != nil {
			t.Fatal(err)
		}
	}
	waitCond(t, "first half", func() bool { d, _, _ := back.counts(); return d == 5 })
	firstSession := c.Session()

	d.kill()
	// The next sends ride the reconnect: the first may be buffered into the
	// dead transport's batch (kept and resent), the second forces a redial.
	for i := 5; i < 10; i++ {
		if err := s.Send(tuple.NewData(tuple.Time(i), tuple.Int(int64(i)), tuple.Float(1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "second half", func() bool { d, _, _ := back.counts(); return d == 10 })
	if got := c.Stats().Reconnects; got != 1 {
		t.Errorf("reconnects = %d, want 1", got)
	}
	if c.Session() == firstSession {
		t.Error("session id unchanged across reconnect")
	}
	// The re-bound stream still works end to end.
	if err := s.CloseSend(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "eos", func() bool { _, _, closed := back.counts(); return closed })
}

func TestClientCreditBackpressure(t *testing.T) {
	gate := make(chan struct{})
	back := &gateBackend{sch: extSchema(), gate: gate}
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back, Credits: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := client.Dial(srv.Addr().String(), client.Options{BatchSize: 1, HeartbeatEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.Bind("sensors", tuple.External, client.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 9; i++ {
			s.Send(tuple.NewData(tuple.Time(i), tuple.Int(int64(i)), tuple.Float(1)))
		}
	}()
	// The window is 8 and the server is stuck in Ingest: the 9th Send must
	// stall rather than complete.
	select {
	case <-done:
		t.Fatal("sends completed past an exhausted credit window")
	case <-time.After(200 * time.Millisecond):
	}
	close(gate) // engine unblocks -> server consumes -> DEMAND tops up
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sends never completed after credits returned")
	}
	if c.Stats().CreditStalls == 0 {
		t.Error("no credit stall recorded")
	}
	waitCond(t, "all ingested", func() bool { d, _, _ := back.counts(); return d == 9 })
}
