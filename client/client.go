// Package client is the public library for feeding tuples into a stream
// engine node (cmd/streamd, or any internal/server listener) over the wire
// protocol. It owns the client half of the protocol's timestamp-management
// contract:
//
//   - every HELLO and periodic HEARTBEAT carries the local clock, so the
//     server's per-connection skew estimator can measure the link and widen
//     the stream's skew bound δ — remote on-demand ETS then rests on a
//     measured link, not a declared constant;
//   - a stream can generate punctuation locally (Stream.Punct, or
//     automatically every AutoPunctEvery tuples for in-order feeds), making
//     a remote wrapper a first-class punctuation source (paper §3);
//   - sends respect the server's credit window (HELLO_ACK grant plus DEMAND
//     top-ups) — when the engine backpressures, the server stops granting
//     and Send blocks, extending the engine's demand/backpressure discipline
//     across the network.
//
// Connections survive failures: with Options.Reconnect the client redials
// with exponential backoff, replays the handshake, re-binds every stream,
// and resumes. Tuples buffered but unsent at the failure are resent. With
// Options.Sequenced the resend is idempotent: every tuple carries a
// per-stream sequence number, the server suppresses anything at or below
// its last-applied watermark, and the BIND_ACK watermark lets the client
// trim its retained batch — so reconnect and crash-recovery replay become
// effectively exactly-once for everything the client still holds. Tuples
// the client already released (flushed before the failure) that the server
// nevertheless lost — e.g. a crash past the last checkpoint cut — must be
// replayed by the application, which learns the resume point from the
// BIND_ACK watermark.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// ErrClosed is returned by operations on a closed connection.
var ErrClosed = errors.New("client: connection closed")

// DefaultBatchSize is the per-stream send batch cap when Options.BatchSize
// is zero.
const DefaultBatchSize = 256

// DefaultHeartbeatEvery is the heartbeat cadence when Options.HeartbeatEvery
// is zero.
const DefaultHeartbeatEvery = 200 * time.Millisecond

// DefaultMaxBackoff caps the reconnect backoff when Options.MaxBackoff is
// zero.
const DefaultMaxBackoff = 5 * time.Second

// Options configures a connection.
type Options struct {
	// Name identifies the client in the HELLO frame (diagnostics only).
	Name string
	// Clock supplies the client clock in µs for HELLO/HEARTBEAT skew
	// samples; defaults to wall time (time.Now().UnixMicro()).
	Clock func() int64
	// HeartbeatEvery is the heartbeat cadence (default
	// DefaultHeartbeatEvery); heartbeats also flush stale send batches.
	// Negative disables heartbeats (tests).
	HeartbeatEvery time.Duration
	// BatchSize caps tuples buffered per stream before a TUPLES frame is
	// written (default DefaultBatchSize). 1 sends every tuple immediately.
	BatchSize int
	// Columnar offers the columnar-batch capability in HELLO: when the
	// server grants it, Stream.SendCol ships tuple.ColBatch payloads as
	// TUPLES_COL frames with no per-row materialization on either end.
	// Against an older server SendCol still works — batches are converted
	// to row frames client-side.
	Columnar bool
	// Trace offers the punctuation-trace capability in HELLO: when the
	// server grants it (it runs a span collector), every Punct this client
	// sends carries a fresh trace ID and the local send clock, so the
	// server can splice the network hop into the punctuation's
	// propagation timeline. Against an older server the frames stay in
	// the legacy format.
	Trace bool
	// Sequenced offers the tuple-sequencing capability in HELLO: every data
	// tuple sent on the row path (Send/SendBatch) carries a per-stream
	// sequence number, making retained-batch resend after reconnect — and
	// replay against a crash-restored server — idempotent (see wire.CapSeq).
	// The BIND_ACK watermark trims the retained batch and floors the
	// counter; Stream.AckedSeq exposes it as the application's replay
	// resume point. Do not mix with SendCol on the same stream: the
	// columnar path carries no sequence numbers, and its row fallback
	// would break the batch's contiguity.
	Sequenced bool
	// Reconnect enables automatic redial with exponential backoff after a
	// connection failure; streams are re-bound transparently.
	Reconnect bool
	// MaxBackoff caps the reconnect backoff (default DefaultMaxBackoff).
	MaxBackoff time.Duration
	// Dial overrides the transport dialer (tests, TLS wrappers).
	Dial func(addr string) (net.Conn, error)
}

// Conn is one logical client connection; it may span several transport
// connections when Reconnect is on. Safe for concurrent use.
type Conn struct {
	addr string
	opts Options

	mu   sync.Mutex
	cond *sync.Cond // signalled on credits, breakage, close

	conn    net.Conn
	w       *wire.Writer
	epoch   uint64 // transport generation; stale readers detect themselves
	broken  bool
	closed  bool
	permErr error // terminal failure when Reconnect is off

	sess    uint64
	credits int64
	colOK   bool   // server granted CapColumnar on the current transport
	traceOK bool   // server granted CapTrace on the current transport
	seqOK   bool   // server granted CapSeq on the current transport
	traceCt uint64 // traces issued; IDs are (session<<32 | ct) to stay unique server-side
	streams map[uint32]*Stream
	nextID  uint32

	// planAcks tracks in-flight plan control operations by plan id (see
	// plan.go); readLoop resolves them as PLAN_ACK frames arrive.
	planAcks map[uint64]*planAck

	reconnecting bool

	hbStop  chan struct{}
	hbDone  chan struct{}
	readers sync.WaitGroup

	stats Stats
}

// Stats counts a connection's lifetime activity.
type Stats struct {
	TuplesSent   uint64
	BatchesSent  uint64
	PunctSent    uint64
	Heartbeats   uint64
	Reconnects   uint64
	CreditStalls uint64 // times a Send had to wait for window
}

// Dial connects, performs the HELLO handshake, and starts the heartbeat.
func Dial(addr string, opts Options) (*Conn, error) {
	c := &Conn{addr: addr, opts: opts, streams: make(map[uint32]*Stream)}
	c.cond = sync.NewCond(&c.mu)
	if c.opts.Clock == nil {
		c.opts.Clock = func() int64 { return time.Now().UnixMicro() }
	}
	if c.opts.BatchSize <= 0 {
		c.opts.BatchSize = DefaultBatchSize
	}
	if c.opts.HeartbeatEvery == 0 {
		c.opts.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if c.opts.MaxBackoff <= 0 {
		c.opts.MaxBackoff = DefaultMaxBackoff
	}
	if c.opts.Dial == nil {
		c.opts.Dial = func(a string) (net.Conn, error) {
			return net.DialTimeout("tcp", a, 10*time.Second)
		}
	}
	c.mu.Lock()
	err := c.connectLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	c.hbStop = make(chan struct{})
	c.hbDone = make(chan struct{})
	go c.heartbeatLoop()
	return c, nil
}

// Session reports the server-assigned session id of the current transport
// connection.
func (c *Conn) Session() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sess
}

// Stats snapshots the connection counters.
func (c *Conn) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// connectLocked establishes a fresh transport connection: dial, handshake,
// re-bind existing streams, and start the reader for this epoch. Called with
// c.mu held; the mutex stays held across the dial (concurrent senders wait —
// they could not make progress anyway).
func (c *Conn) connectLocked() error {
	conn, err := c.opts.Dial(c.addr)
	if err != nil {
		return fmt.Errorf("client: dial %s: %w", c.addr, err)
	}
	w := wire.NewWriter(conn)
	rd := wire.NewReader(conn)
	fail := func(err error) error {
		conn.Close()
		return err
	}
	if err := w.WriteMagic(); err != nil {
		return fail(err)
	}
	hello := wire.Hello{Version: wire.Version, Name: c.opts.Name, Clock: c.opts.Clock()}
	if c.opts.Columnar {
		hello.Flags |= wire.CapColumnar
	}
	if c.opts.Trace {
		hello.Flags |= wire.CapTrace
	}
	if c.opts.Sequenced {
		hello.Flags |= wire.CapSeq
	}
	if err := w.WriteFrame(hello); err != nil {
		return fail(err)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := rd.Next()
	if err != nil {
		return fail(fmt.Errorf("client: handshake: %w", err))
	}
	ack, ok := f.(wire.HelloAck)
	if !ok {
		if e, isErr := f.(wire.Error); isErr {
			return fail(fmt.Errorf("client: server refused: %s", e.Msg))
		}
		return fail(fmt.Errorf("client: expected HELLO_ACK, got %v", f.Type()))
	}
	// Re-bind every stream of the previous epoch, synchronously: the server
	// answers BIND in order, so read acks until each bind is resolved.
	for id, s := range c.streams {
		if s.eos {
			continue
		}
		if err := w.WriteFrame(s.bindFrame(id)); err != nil {
			return fail(err)
		}
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	pending := 0
	for _, s := range c.streams {
		if !s.eos {
			pending++
		}
	}
	for pending > 0 {
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		f, err := rd.Next()
		if err != nil {
			return fail(fmt.Errorf("client: re-bind: %w", err))
		}
		switch f := f.(type) {
		case wire.BindAck:
			if s := c.streams[f.ID]; s != nil {
				if !s.ackDone {
					// A Bind caller is still waiting on the first ack.
					s.ackDone, s.ackErr = true, f.Err
				} else if f.Err != "" {
					s.err = fmt.Errorf("client: re-bind %q: %s", s.name, f.Err)
				}
				if f.Err == "" {
					s.applyAckSeq(f.Seq)
				}
				pending--
			}
		case wire.Demand:
			ack.Credits += f.Credits
		case wire.Error:
			return fail(fmt.Errorf("client: re-bind refused: %s", f.Msg))
		default:
			return fail(fmt.Errorf("client: unexpected %v during re-bind", f.Type()))
		}
	}
	conn.SetReadDeadline(time.Time{})

	c.conn = conn
	c.w = w
	c.sess = ack.Session
	c.credits = int64(ack.Credits)
	c.colOK = ack.Flags&wire.CapColumnar != 0
	c.traceOK = ack.Flags&wire.CapTrace != 0
	c.seqOK = ack.Flags&wire.CapSeq != 0
	c.broken = false
	c.epoch++
	c.readers.Add(1)
	go c.readLoop(conn, rd, c.epoch)
	c.cond.Broadcast()
	return nil
}

// readLoop consumes server frames for one transport epoch: credit grants,
// bind acks (steady-state ones arrive here), and errors.
func (c *Conn) readLoop(conn net.Conn, rd *wire.Reader, epoch uint64) {
	defer c.readers.Done()
	for {
		f, err := rd.Next()
		if err != nil {
			c.mu.Lock()
			if c.epoch == epoch {
				c.markBrokenLocked()
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		if c.epoch != epoch {
			c.mu.Unlock()
			return // a reconnect already superseded this transport
		}
		switch f := f.(type) {
		case wire.Demand:
			c.credits += int64(f.Credits)
			c.cond.Broadcast()
		case wire.BindAck:
			if s := c.streams[f.ID]; s != nil && !s.ackDone {
				s.ackDone, s.ackErr = true, f.Err
				if f.Err == "" {
					s.applyAckSeq(f.Seq)
				}
				c.cond.Broadcast()
			}
		case wire.PlanAck:
			if pa := c.planAcks[f.Plan]; pa != nil && !pa.done {
				pa.done, pa.err = true, f.Err
				c.cond.Broadcast()
			}
		case wire.Error:
			// Draining or protocol complaint: this transport is done. With
			// Reconnect on, the next operation redials (and backs off while
			// the server is away).
			c.markBrokenLocked()
			c.mu.Unlock()
			return
		default:
			// Tolerate unknown server chatter (forward compatibility).
		}
		c.mu.Unlock()
	}
}

// markBrokenLocked declares the current transport dead and wakes everyone
// blocked on it.
func (c *Conn) markBrokenLocked() {
	if c.broken {
		return
	}
	c.broken = true
	if c.conn != nil {
		c.conn.Close()
	}
	if !c.opts.Reconnect && c.permErr == nil {
		c.permErr = errors.New("client: connection lost")
	}
	c.cond.Broadcast()
}

// ensureLocked blocks until the connection is usable, reconnecting if
// allowed. Returns the terminal error otherwise.
func (c *Conn) ensureLocked() error {
	for {
		if c.closed {
			return ErrClosed
		}
		if c.permErr != nil {
			return c.permErr
		}
		if !c.broken {
			return nil
		}
		if !c.opts.Reconnect {
			return errors.New("client: connection lost")
		}
		if c.reconnecting {
			c.cond.Wait() // someone else is redialing
			continue
		}
		c.reconnecting = true
		backoff := 50 * time.Millisecond
		for {
			if err := c.connectLocked(); err == nil {
				c.stats.Reconnects++
				break
			}
			c.mu.Unlock()
			time.Sleep(backoff)
			c.mu.Lock()
			if c.closed {
				break
			}
			if backoff *= 2; backoff > c.opts.MaxBackoff {
				backoff = c.opts.MaxBackoff
			}
		}
		c.reconnecting = false
		c.cond.Broadcast()
	}
}

// takeCredits blocks until n credits are available (reconnecting as needed)
// and consumes them.
func (c *Conn) takeCredits(n int64) error {
	stalled := false
	for {
		if err := c.ensureLocked(); err != nil {
			return err
		}
		if c.credits >= n {
			c.credits -= n
			return nil
		}
		if !stalled {
			stalled = true
			c.stats.CreditStalls++
		}
		c.cond.Wait()
	}
}

// writeLocked writes one frame and flushes; a failure marks the transport
// broken and is returned (callers holding unsent data keep it for the retry).
func (c *Conn) writeLocked(f wire.Frame) error {
	if err := c.w.WriteFrame(f); err != nil {
		c.markBrokenLocked()
		return err
	}
	if err := c.w.Flush(); err != nil {
		c.markBrokenLocked()
		return err
	}
	return nil
}

func (c *Conn) heartbeatLoop() {
	defer close(c.hbDone)
	if c.opts.HeartbeatEvery < 0 {
		return
	}
	tick := time.NewTicker(c.opts.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-tick.C:
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		if !c.broken {
			// Piggyback: anything sitting in a send batch has waited long
			// enough.
			for _, s := range c.streams {
				s.flushLocked()
			}
			if c.writeLocked(wire.Heartbeat{Clock: c.opts.Clock()}) == nil {
				c.stats.Heartbeats++
			}
		}
		c.mu.Unlock()
	}
}

// Flush writes out every stream's buffered tuples.
func (c *Conn) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureLocked(); err != nil {
		return err
	}
	for _, s := range c.streams {
		if err := s.flushLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes buffered tuples (best effort), stops the heartbeat, and
// tears the connection down. It does not send EOS — use Stream.CloseSend for
// streams that should end.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	if !c.broken {
		for _, s := range c.streams {
			s.flushLocked()
		}
	}
	c.closed = true
	if c.conn != nil {
		c.conn.Close()
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	close(c.hbStop)
	<-c.hbDone
	c.readers.Wait()
	return nil
}
