package client

import (
	"errors"
	"fmt"

	"repro/internal/wire"
)

// planAck tracks one in-flight plan operation awaiting its PLAN_ACK.
type planAck struct {
	done bool
	err  string
}

// PlanDeploy ships a serialized plan fragment (internal/dist codec bytes,
// opaque here) to the server and waits for its PLAN_ACK. The coordinator
// side of the distributed-execution control plane: deploy to every worker,
// then PlanStart everywhere only after all deploys acked.
func (c *Conn) PlanDeploy(plan uint64, spec []byte) error {
	return c.planOp(wire.PlanDeploy{Plan: plan, Spec: spec}, plan)
}

// PlanStart begins execution of a deployed plan fragment and waits for the
// ack.
func (c *Conn) PlanStart(plan uint64) error {
	return c.planOp(wire.PlanStart{Plan: plan}, plan)
}

// PlanStop tears a deployed plan fragment down and waits for the ack.
func (c *Conn) PlanStop(plan uint64) error {
	return c.planOp(wire.PlanStop{Plan: plan}, plan)
}

// planOp writes one plan control frame and blocks until the server's
// PLAN_ACK arrives. Plan operations do not survive a transport failure:
// deployment state on the far side is unknowable mid-operation, so the
// caller gets an error and decides (the coordinator aborts the deploy).
func (c *Conn) planOp(f wire.Frame, plan uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureLocked(); err != nil {
		return err
	}
	if c.planAcks == nil {
		c.planAcks = make(map[uint64]*planAck)
	}
	if _, busy := c.planAcks[plan]; busy {
		return fmt.Errorf("client: plan %d has an operation in flight", plan)
	}
	pa := &planAck{}
	c.planAcks[plan] = pa
	defer delete(c.planAcks, plan)
	if err := c.writeLocked(f); err != nil {
		return err
	}
	for !pa.done {
		if c.closed {
			return ErrClosed
		}
		if c.permErr != nil {
			return c.permErr
		}
		if c.broken {
			return errors.New("client: connection lost awaiting PLAN_ACK")
		}
		c.cond.Wait()
	}
	if pa.err != "" {
		return fmt.Errorf("client: plan %d: %s", plan, pa.err)
	}
	return nil
}
