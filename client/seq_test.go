package client_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/server"
	"repro/internal/tuple"
)

// retargetDialer dials whatever address is currently set — the test's way of
// "restarting" a server on a new port while the client reconnects to the
// same logical node.
type retargetDialer struct {
	mu   sync.Mutex
	addr string
	last net.Conn
}

func (d *retargetDialer) dial(string) (net.Conn, error) {
	d.mu.Lock()
	addr := d.addr
	d.mu.Unlock()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.last = conn
	d.mu.Unlock()
	return conn, nil
}

func (d *retargetDialer) retarget(addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.addr = addr
}

// TestClientSequencedRecovery replays the crash-recovery handshake end to
// end: a sequenced client streams into a server, the server "crashes" and is
// replaced by one restored to an earlier checkpoint cut (Options.InitialSeq),
// and the reconnecting client must (a) learn the restored watermark from
// BIND_ACK, (b) keep its sequence counter monotone so new tuples land above
// the cut, and (c) let the application replay the gap — with the server
// suppressing any overlap into the restored prefix.
func TestClientSequencedRecovery(t *testing.T) {
	back1 := &gateBackend{sch: extSchema()}
	srv1, err := server.Listen("127.0.0.1:0", server.Options{Backend: back1})
	if err != nil {
		t.Fatal(err)
	}

	d := &retargetDialer{addr: srv1.Addr().String()}
	c, err := client.Dial(d.addr, client.Options{
		Sequenced:      true,
		Reconnect:      true,
		BatchSize:      1,
		HeartbeatEvery: -1,
		Dial:           d.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.Bind("sensors", tuple.External, client.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.AckedSeq(); got != 0 {
		t.Fatalf("fresh stream AckedSeq = %d, want 0", got)
	}
	for i := 1; i <= 10; i++ {
		if err := s.Send(tuple.NewData(tuple.Time(i), tuple.Int(int64(i)), tuple.Float(1))); err != nil {
			t.Fatal(err)
		}
	}
	waitCond(t, "first run", func() bool { d, _, _ := back1.counts(); return d == 10 })

	// Crash: the server dies having durably checkpointed only seqs 1..6.
	srv1.Close()
	back2 := &gateBackend{sch: extSchema()}
	srv2, err := server.Listen("127.0.0.1:0", server.Options{
		Backend:    back2,
		InitialSeq: map[string]uint64{"sensors": 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	d.retarget(srv2.Addr().String())

	// Drive the reconnect (Flush runs the redial once the dead transport is
	// noticed); the re-bind brings the restored watermark back.
	waitCond(t, "reconnect watermark", func() bool {
		_ = c.Flush() // errors expected while the transport is down
		return s.AckedSeq() == 6
	})

	// Application-level gap replay: AckedSeq is the resume point — the
	// application re-sends its tuples above the cut (7..10, which the
	// client itself released long ago) plus new traffic (11). The re-sends
	// get fresh sequence numbers above the watermark, so nothing is
	// suppressed and nothing below the cut is repeated.
	for i := 7; i <= 11; i++ {
		if err := s.Send(tuple.NewData(tuple.Time(i), tuple.Int(int64(i)), tuple.Float(1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// The restored run must see exactly the gap plus the new tuple: 7..11.
	waitCond(t, "gap replay", func() bool { d, _, _ := back2.counts(); return d == 5 })
	back2.mu.Lock()
	got := append([]tuple.Time(nil), back2.data...)
	back2.mu.Unlock()
	seen := make(map[tuple.Time]bool, len(got))
	for _, ts := range got {
		seen[ts] = true
	}
	for _, want := range []tuple.Time{7, 8, 9, 10, 11} {
		if !seen[want] {
			t.Fatalf("restored run missing ts %d (got %v)", want, got)
		}
	}
	if err := s.CloseSend(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "eos", func() bool { _, _, closed := back2.counts(); return closed })
}

// TestClientSequencedResendTrim covers the retained-batch trim: a batch that
// failed to flush is trimmed against the re-bind watermark instead of being
// resent, when the server already applied it.
func TestClientSequencedResendTrim(t *testing.T) {
	back1 := &gateBackend{sch: extSchema()}
	srv1, err := server.Listen("127.0.0.1:0", server.Options{Backend: back1})
	if err != nil {
		t.Fatal(err)
	}
	d := &retargetDialer{addr: srv1.Addr().String()}
	c, err := client.Dial(d.addr, client.Options{
		Sequenced:      true,
		Reconnect:      true,
		BatchSize:      64, // large: sends stay buffered client-side
		HeartbeatEvery: -1,
		Dial:           d.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.Bind("sensors", tuple.External, client.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Buffer three tuples (seqs 1..3) without flushing, then "crash" onto a
	// server restored past all of them: the re-bind watermark must trim the
	// whole retained batch, and the flush after reconnect sends nothing.
	for i := 1; i <= 3; i++ {
		if err := s.Send(tuple.NewData(tuple.Time(i), tuple.Int(int64(i)), tuple.Float(1))); err != nil {
			t.Fatal(err)
		}
	}
	srv1.Close()
	back2 := &gateBackend{sch: extSchema()}
	srv2, err := server.Listen("127.0.0.1:0", server.Options{
		Backend:    back2,
		InitialSeq: map[string]uint64{"sensors": 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	d.retarget(srv2.Addr().String())

	waitCond(t, "trim watermark", func() bool {
		_ = c.Flush() // rides the reconnect + re-bind once brokenness is seen
		return s.AckedSeq() == 3
	})
	// A fresh tuple must land with seq 4, alone.
	if err := s.Send(tuple.NewData(tuple.Time(40), tuple.Int(40), tuple.Float(1))); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "post-trim send", func() bool { d, _, _ := back2.counts(); return d == 1 })
	time.Sleep(50 * time.Millisecond) // give any wrongly-resent tuples time to land
	if got, _, _ := back2.counts(); got != 1 {
		t.Fatalf("restored server ingested %d tuples, want 1 (trimmed batch resent?)", got)
	}
}
