package client_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/client"
	"repro/internal/server"
	"repro/internal/tuple"
)

// colGateBackend extends gateBackend with a columnar sink so the session
// forwards batches whole; colBatches counts how many arrived columnar.
type colGateBackend struct {
	gateBackend
	colMu      sync.Mutex
	colBatches int
}

func (b *colGateBackend) Open(name string) (*tuple.Schema, server.StreamSink, error) {
	if name != b.sch.Name {
		return nil, nil, fmt.Errorf("unknown stream %q", name)
	}
	return b.sch, b, nil
}

func (b *colGateBackend) IngestCol(cb *tuple.ColBatch) {
	b.colMu.Lock()
	b.colBatches++
	b.colMu.Unlock()
	b.IngestBatch(cb.AppendRows(nil, nil))
	tuple.PutColBatch(cb)
}

func (b *colGateBackend) colCount() int {
	b.colMu.Lock()
	defer b.colMu.Unlock()
	return b.colBatches
}

func sendColWorkload(t *testing.T, s *client.Stream) {
	t.Helper()
	b := tuple.GetColBatch(0)
	for i := 0; i < 10; i++ {
		b.AppendTuple(tuple.NewData(tuple.Time(i*100), tuple.Int(int64(i)), tuple.Float(0.5)))
	}
	b.AppendPunct(900)
	if err := s.SendCol(b); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseSend(); err != nil {
		t.Fatal(err)
	}
}

// TestClientSendColNegotiated: columnar client against a columnar-capable
// server and sink — the batch travels as one TUPLES_COL frame end to end,
// and the batch's punctuation mark arrives as a stream bound.
func TestClientSendColNegotiated(t *testing.T) {
	back := &colGateBackend{gateBackend: gateBackend{sch: extSchema()}}
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := client.Dial(srv.Addr().String(), client.Options{Name: "t", Columnar: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.Bind("sensors", tuple.External, client.StreamOptions{Delta: 100})
	if err != nil {
		t.Fatal(err)
	}
	sendColWorkload(t, s)
	waitCond(t, "columnar ingest", func() bool {
		d, p, closed := back.counts()
		return d == 10 && p == 1 && closed
	})
	if back.colCount() != 1 {
		t.Fatalf("colBatches = %d, want 1", back.colCount())
	}
	if st := c.Stats(); st.TuplesSent != 10 || st.BatchesSent != 1 || st.PunctSent != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestClientSendColRowFallback: a client that never offered the capability
// can still use SendCol — the batch is converted to row frames locally, so
// SendCol works against any server.
func TestClientSendColRowFallback(t *testing.T) {
	back := &gateBackend{sch: extSchema()}
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := client.Dial(srv.Addr().String(), client.Options{Name: "t", BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.Bind("sensors", tuple.External, client.StreamOptions{Delta: 100})
	if err != nil {
		t.Fatal(err)
	}
	sendColWorkload(t, s)
	waitCond(t, "row-fallback ingest", func() bool {
		d, p, closed := back.counts()
		return d == 10 && p == 1 && closed
	})
	if st := c.Stats(); st.TuplesSent != 10 {
		t.Errorf("stats = %+v", st)
	}
}

// TestClientRowAgainstColumnarServer: an old-style row client against a
// columnar-capable backend keeps working untouched (capability is opt-in).
func TestClientRowAgainstColumnarServer(t *testing.T) {
	back := &colGateBackend{gateBackend: gateBackend{sch: extSchema()}}
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := client.Dial(srv.Addr().String(), client.Options{Name: "t", BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.Bind("sensors", tuple.External, client.StreamOptions{Delta: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Send(tuple.NewData(tuple.Time(i*100), tuple.Int(int64(i)), tuple.Float(0.5))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CloseSend(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "row ingest", func() bool {
		d, _, closed := back.counts()
		return d == 10 && closed
	})
	if back.colCount() != 0 {
		t.Fatalf("row client produced %d columnar batches", back.colCount())
	}
}

// TestClientSendColMixesWithSend: row Sends buffered before a SendCol must
// be flushed first so arrival order matches send order.
func TestClientSendColMixesWithSend(t *testing.T) {
	back := &colGateBackend{gateBackend: gateBackend{sch: extSchema()}}
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := client.Dial(srv.Addr().String(), client.Options{Name: "t", Columnar: true, BatchSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.Bind("sensors", tuple.External, client.StreamOptions{Delta: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // stays buffered: BatchSize 100
		if err := s.Send(tuple.NewData(tuple.Time(i), tuple.Int(int64(i)), tuple.Float(0.5))); err != nil {
			t.Fatal(err)
		}
	}
	b := tuple.GetColBatch(0)
	for i := 3; i < 6; i++ {
		b.AppendTuple(tuple.NewData(tuple.Time(i), tuple.Int(int64(i)), tuple.Float(0.5)))
	}
	if err := s.SendCol(b); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseSend(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "ordered ingest", func() bool {
		d, _, closed := back.counts()
		return d == 6 && closed
	})
	back.mu.Lock()
	defer back.mu.Unlock()
	for i, ts := range back.data {
		if ts != tuple.Time(i) {
			t.Fatalf("arrival order broken at %d: %v", i, back.data)
		}
	}
}
