package client

import (
	"fmt"

	"repro/internal/tuple"
	"repro/internal/wire"
)

// StreamOptions configures one bound stream.
type StreamOptions struct {
	// Delta declares the feed's skew bound δ in µs (external streams): the
	// maximum lag between a tuple's timestamp advancing and the next
	// tuple's timestamp. The server widens it further with its measured
	// per-connection spread.
	Delta tuple.Time
	// Fields optionally declares the schema for server-side validation
	// (kinds must match the declared stream). Empty trusts the server.
	Fields []tuple.Field
	// AutoPunctEvery, when > 0, emits a punctuation carrying the maximum
	// timestamp sent so far after every N data tuples. Only sound for
	// feeds that send tuples in timestamp order — the bound promises no
	// later tuple will be smaller.
	AutoPunctEvery int
}

// Stream is one bound stream on a connection. Safe for concurrent use.
type Stream struct {
	c    *Conn
	id   uint32
	name string
	ts   tuple.TSKind
	opts StreamOptions

	// All fields below are guarded by c.mu.
	batch      []*tuple.Tuple
	maxTs      tuple.Time
	hasTs      bool
	sincePunct int
	eos        bool
	err        error

	// seq is the last sequence number assigned (Options.Sequenced): tuples
	// are numbered seq+1, seq+2, … as Send buffers them, and a BIND_ACK
	// watermark floors it so post-recovery sends never collide with
	// sequence numbers the server already applied.
	seq uint64
	// acked is the last BIND_ACK dedupe watermark the server reported —
	// the application's replay resume point after a server crash.
	acked uint64

	ackDone bool
	ackErr  string
}

func (s *Stream) bindFrame(id uint32) wire.Frame {
	return wire.Bind{ID: id, Stream: s.name, TS: s.ts, Delta: s.opts.Delta, Fields: s.opts.Fields}
}

// Bind registers a stream on the connection and waits for the server's
// acknowledgement. ts must match the stream's declared timestamp kind.
func (c *Conn) Bind(stream string, ts tuple.TSKind, opts StreamOptions) (*Stream, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureLocked(); err != nil {
		return nil, err
	}
	c.nextID++
	id := c.nextID
	s := &Stream{c: c, id: id, name: stream, ts: ts, opts: opts}
	c.streams[id] = s
	c.writeLocked(s.bindFrame(id)) // a failure here resolves via reconnect re-bind
	for !s.ackDone {
		if c.closed || c.permErr != nil {
			delete(c.streams, id)
			if c.closed {
				return nil, ErrClosed
			}
			return nil, c.permErr
		}
		if c.broken {
			// ensureLocked redials; connectLocked replays the BIND and
			// resolves the ack synchronously.
			if err := c.ensureLocked(); err != nil {
				delete(c.streams, id)
				return nil, err
			}
			continue
		}
		c.cond.Wait()
	}
	if s.ackErr != "" {
		delete(c.streams, id)
		return nil, fmt.Errorf("client: bind %q: %s", stream, s.ackErr)
	}
	return s, nil
}

// Send buffers one tuple for the stream, writing a batched TUPLES frame when
// the batch fills. It takes ownership of t. Send blocks while the server's
// credit window is exhausted — the networked form of engine backpressure —
// and while a broken connection reconnects. A transport failure after
// buffering is not an error: the batch is retained and resent on the next
// transport.
func (s *Stream) Send(t *tuple.Tuple) error {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.eos {
		return fmt.Errorf("client: send on closed stream %q", s.name)
	}
	if err := c.takeCredits(1); err != nil {
		return err
	}
	if c.opts.Sequenced {
		s.seq++
		t.Seq = s.seq
	}
	s.batch = append(s.batch, t)
	if !s.hasTs || t.Ts > s.maxTs {
		s.maxTs, s.hasTs = t.Ts, true
	}
	s.sincePunct++
	if len(s.batch) >= c.opts.BatchSize {
		s.flushLocked()
	}
	if s.opts.AutoPunctEvery > 0 && s.sincePunct >= s.opts.AutoPunctEvery && s.hasTs {
		s.sincePunct = 0
		s.punctLocked(s.maxTs)
	}
	return nil
}

// SendBatch sends a slice of tuples (ownership of the tuples transfers; the
// slice stays the caller's).
func (s *Stream) SendBatch(ts []*tuple.Tuple) error {
	for _, t := range ts {
		if err := s.Send(t); err != nil {
			return err
		}
	}
	return nil
}

// SendCol sends a columnar batch, taking ownership of b. On a connection
// that negotiated the columnar capability (Options.Columnar against a
// capable server) the batch goes out as one TUPLES_COL frame — no per-row
// tuples are materialized on either endpoint; otherwise it is converted to
// row frames here, so SendCol works against any server. Punctuation marks
// in the batch are sent as PUNCT frames after the rows (delaying a bound is
// always sound — it promises strictly less). Like Send, SendCol blocks on
// the credit window; a transport failure after crediting is not an error —
// the rows are retained (in row form) and resent on the next transport.
func (s *Stream) SendCol(b *tuple.ColBatch) error {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.err != nil {
		tuple.PutColBatch(b)
		return s.err
	}
	if s.eos {
		tuple.PutColBatch(b)
		return fmt.Errorf("client: send on closed stream %q", s.name)
	}
	n := b.Len()
	if n == 0 && !b.HasPunct() {
		tuple.PutColBatch(b)
		return nil
	}
	if err := c.takeCredits(int64(n)); err != nil {
		tuple.PutColBatch(b)
		return err
	}
	// Plain punctuation marks leave the batch and ride PUNCT frames after
	// the rows (trace-capable, and delaying a bound is always sound).
	// Checkpoint-barrier marks (Ckpt != 0) stay in the batch on the columnar
	// path: TUPLES_COL carries the tag at the mark's exact position, which a
	// PUNCT frame cannot.
	var marks []tuple.PunctMark
	if b.HasPunct() {
		kept := b.Puncts[:0]
		for _, p := range b.Puncts {
			if p.Ckpt != 0 && c.colOK {
				kept = append(kept, p)
			} else {
				marks = append(marks, p)
			}
		}
		b.Puncts = kept
	}
	if mx, ok := b.MaxTs(); ok && (!s.hasTs || mx > s.maxTs) {
		s.maxTs, s.hasTs = mx, true
	}
	s.sincePunct += n
	sent := false
	if c.colOK && (n > 0 || b.HasPunct()) {
		// Order against anything buffered by row Sends, then ship columnar.
		if s.flushLocked() == nil && c.writeLocked(wire.TuplesCol{ID: s.id, B: b}) == nil {
			c.stats.BatchesSent++
			c.stats.TuplesSent += uint64(n)
			sent = true
		}
	}
	if !sent {
		// Row fallback: capability not granted, or the transport died —
		// either way the rows ride the ordinary batch (and its retry path).
		// Barrier marks degrade to PUNCT frames here (the row wire path has
		// no barrier field), exactly like a pre-columnar client.
		for _, p := range b.Puncts {
			marks = append(marks, p)
		}
		b.Puncts = b.Puncts[:0]
		if n > 0 {
			s.batch = b.AppendRows(s.batch, nil)
			if len(s.batch) >= c.opts.BatchSize {
				s.flushLocked()
			}
		}
	}
	tuple.PutColBatch(b)
	for _, p := range marks {
		s.punctLocked(p.Ts)
	}
	if s.opts.AutoPunctEvery > 0 && s.sincePunct >= s.opts.AutoPunctEvery && s.hasTs {
		s.sincePunct = 0
		s.punctLocked(s.maxTs)
	}
	return nil
}

// Punct sends a punctuation promising that no future tuple on this stream
// will carry a timestamp below ets — local punctuation generation, making
// the remote wrapper a first-class bound source.
func (s *Stream) Punct(ets tuple.Time) error {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.eos {
		return fmt.Errorf("client: punct on closed stream %q", s.name)
	}
	if err := c.ensureLocked(); err != nil {
		return err
	}
	return s.punctLocked(ets)
}

func (s *Stream) punctLocked(ets tuple.Time) error {
	c := s.c
	if err := s.flushLocked(); err != nil {
		return nil // buffered; punct is dropped with the transport, resend later
	}
	f := wire.Punct{ID: s.id, TS: s.ts, ETS: ets}
	if c.traceOK {
		// Open a propagation trace: session in the high bits keeps IDs
		// unique across the server's sessions, and the send clock lets the
		// server place the network hop on its own time axis.
		c.traceCt++
		f.Trace = c.sess<<32 | c.traceCt&0xffffffff
		f.Clock = c.opts.Clock()
	}
	if err := c.writeLocked(f); err == nil {
		c.stats.PunctSent++
	}
	return nil
}

// flushLocked writes the pending batch as one TUPLES frame. On success the
// tuples return to the pool (Send took ownership); on a transport failure
// the batch is retained for the next epoch.
func (s *Stream) flushLocked() error {
	c := s.c
	if len(s.batch) == 0 {
		return nil
	}
	var f wire.Frame
	// The frame carries the first tuple's sequence number when the server
	// negotiated sequencing (the batch is contiguous: seq..seq+n-1).
	var seq uint64
	if c.seqOK {
		seq = s.batch[0].Seq
	}
	if len(s.batch) == 1 {
		f = wire.Tuple{ID: s.id, T: s.batch[0], Seq: seq}
	} else {
		f = wire.Tuples{ID: s.id, Batch: s.batch, Seq: seq}
	}
	if err := c.writeLocked(f); err != nil {
		return err
	}
	c.stats.BatchesSent++
	c.stats.TuplesSent += uint64(len(s.batch))
	for i, t := range s.batch {
		tuple.Put(t)
		s.batch[i] = nil
	}
	s.batch = s.batch[:0]
	return nil
}

// CloseSend flushes the stream and sends EOS, ending the stream server-side
// once every other binding has also ended. The stream accepts no more sends.
func (s *Stream) CloseSend() error {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.eos {
		return nil
	}
	for {
		if err := c.ensureLocked(); err != nil {
			return err
		}
		if s.flushLocked() != nil {
			continue // transport died mid-flush; reconnect and retry
		}
		if c.writeLocked(wire.EOS{ID: s.id}) == nil {
			s.eos = true
			return nil
		}
	}
}

// applyAckSeq adopts the server's dedupe watermark from a BIND_ACK (0 =
// sequencing not in use): the retained batch drops everything the server
// already applied, and the sequence counter jumps forward so new tuples
// never collide with applied sequence numbers. Called with c.mu held.
func (s *Stream) applyAckSeq(w uint64) {
	if w == 0 {
		return
	}
	s.acked = w
	if w > s.seq {
		s.seq = w
	}
	kept := s.batch[:0]
	for _, t := range s.batch {
		if t.Seq != 0 && t.Seq <= w {
			tuple.Put(t)
			continue
		}
		kept = append(kept, t)
	}
	for i := len(kept); i < len(s.batch); i++ {
		s.batch[i] = nil
	}
	s.batch = kept
}

// AckedSeq reports the last dedupe watermark the server sent in a BIND_ACK
// (0 before the first sequenced ack). After a reconnect to a crash-restored
// server this is the replay resume point: the application must re-Send its
// tuples numbered above it that the client no longer retains, and nothing
// at or below it (the server would suppress them anyway).
func (s *Stream) AckedSeq() uint64 {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	return s.acked
}

// Err reports a terminal stream error (e.g. a failed re-bind after
// reconnect).
func (s *Stream) Err() error {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	return s.err
}
