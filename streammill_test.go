package streammill_test

import (
	"testing"

	streammill "repro"
)

// TestPublicAPIQuickstart exercises the facade end-to-end the way the
// README shows it: DDL + query + simulated execution.
func TestPublicAPIQuickstart(t *testing.T) {
	e := streammill.NewEngine()
	e.MustExecute(`CREATE STREAM fast (v int)`, nil)
	e.MustExecute(`CREATE STREAM slow (v int)`, nil)
	var got []*streammill.Tuple
	e.MustExecute(`SELECT * FROM fast UNION slow`,
		func(tp *streammill.Tuple, _ streammill.Time) { got = append(got, tp) })

	clock := streammill.Time(0)
	ex, err := e.Build(streammill.OnDemandETS, func() streammill.Time { return clock })
	if err != nil {
		t.Fatal(err)
	}
	src, err := e.Source("fast")
	if err != nil {
		t.Fatal(err)
	}
	clock = 5 * streammill.Millisecond
	src.Ingest(streammill.NewData(0, streammill.Int(42)), clock)
	ex.Run(1000)
	if len(got) != 1 || got[0].Vals[0].AsInt() != 42 {
		t.Fatalf("got = %v", got)
	}
	if got[0].Ts != 5*streammill.Millisecond {
		t.Errorf("internal stamp = %v", got[0].Ts)
	}
}

// TestPublicAPIRuntime drives the concurrent runtime through the facade.
func TestPublicAPIRuntime(t *testing.T) {
	e := streammill.NewEngine()
	e.MustExecute(`CREATE STREAM a (v int)`, nil)
	e.MustExecute(`CREATE STREAM b (v int)`, nil)
	done := make(chan int, 1)
	count := 0
	e.MustExecute(`SELECT * FROM a UNION b`,
		func(*streammill.Tuple, streammill.Time) { count++ })
	rt, err := streammill.NewRuntime(e, streammill.RuntimeOptions{OnDemandETS: true})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	srcA, _ := e.Source("a")
	srcB, _ := e.Source("b")
	go func() {
		for i := 0; i < 100; i++ {
			rt.Ingest(srcA, streammill.NewData(0, streammill.Int(int64(i))))
		}
		rt.CloseStream(srcA)
		rt.CloseStream(srcB)
		rt.Wait()
		done <- count
	}()
	if n := <-done; n != 100 {
		t.Fatalf("runtime delivered %d, want 100", n)
	}
}

// TestPublicHelpers covers the small constructors.
func TestPublicHelpers(t *testing.T) {
	if streammill.Int(3).AsInt() != 3 ||
		streammill.Float(2.5).AsFloat() != 2.5 ||
		streammill.Str("x").AsString() != "x" ||
		!streammill.Boolean(true).AsBool() ||
		streammill.TimeValue(7).AsTime() != 7 {
		t.Error("value constructors broken")
	}
	sch := streammill.NewSchema("s", streammill.Field{Name: "x", Kind: streammill.Int(0).Kind()})
	if sch.Arity() != 1 {
		t.Error("NewSchema broken")
	}
	if streammill.TimeWindow(5).Span != 5 || streammill.RowWindow(3).Rows != 3 {
		t.Error("window helpers broken")
	}
}
