// Package ckpt implements punctuation-aligned checkpointing for operator
// state. A checkpoint is a consistent cut of the query graph: the coordinator
// injects a barrier punctuation at every source, the barrier flows the
// ordinary arcs (inheriting the shard broadcast and min-watermark merge
// alignment the partition rewrite already provides for punctuation), and each
// stateful operator snapshots its state the moment the barrier applies — no
// pause, no global lock, exactly the frontier-aligned coordination the
// punctuation mechanism makes cheap.
//
// The package has three layers:
//
//   - Encoder/Decoder: a versioned, self-describing binary codec in the
//     spirit of internal/wire, used by every operator's SaveState and
//     RestoreState. Snapshots produced by one build remain restorable by the
//     next as long as the version byte matches.
//   - Store: an on-disk checkpoint directory — per-checkpoint subdirectories
//     written to a temp name, fsynced, and atomically renamed, holding a
//     MANIFEST plus a STATE file of CRC-framed per-node segments. A crash at
//     any point leaves either a complete checkpoint or a skippable temp dir.
//   - Coordinator: the periodic trigger driving an Engine (the runtime)
//     through barrier injection, snapshot collection, and durable write.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/tuple"
)

// Version is the snapshot encoding version. Bumped on any incompatible
// change to the per-operator encodings; Restore rejects mismatches rather
// than guessing.
const Version = 1

// ErrCorrupt reports a snapshot that failed structural validation (bad
// magic, short payload, CRC mismatch, or an operator shape that does not
// match the restoring graph).
var ErrCorrupt = errors.New("ckpt: corrupt snapshot")

// Encoder builds one operator's state payload. The zero Encoder is ready to
// use; Bytes returns the accumulated buffer.
type Encoder struct {
	b []byte
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.b }

// Len reports the encoded size so far.
func (e *Encoder) Len() int { return len(e.b) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.b = append(e.b, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

// I64 appends a little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Time appends a virtual-time value.
func (e *Encoder) Time(t tuple.Time) { e.I64(int64(t)) }

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// Value appends one tagged attribute value (kind byte + payload), the same
// shape internal/wire uses on the network.
func (e *Encoder) Value(v tuple.Value) {
	e.U8(uint8(v.Kind()))
	switch v.Kind() {
	case tuple.Null:
	case tuple.IntKind:
		e.I64(v.AsInt())
	case tuple.FloatKind:
		e.U64(math.Float64bits(v.AsFloat()))
	case tuple.StringKind:
		e.String(v.AsString())
	case tuple.BoolKind:
		e.Bool(v.AsBool())
	case tuple.TimeKind:
		e.Time(v.AsTime())
	}
}

// Tuple appends one data tuple: timestamp, arrival, seq, and values.
// Punctuation never lives in operator state, so only data tuples are
// encoded.
func (e *Encoder) Tuple(t *tuple.Tuple) {
	e.Time(t.Ts)
	e.Time(t.Arrived)
	e.Uvarint(t.Seq)
	e.Uvarint(uint64(len(t.Vals)))
	for _, v := range t.Vals {
		e.Value(v)
	}
}

// maxArity bounds decoded tuple width, matching the wire codec's guard.
const maxArity = 1 << 12

// Decoder reads back an Encoder's payload. Errors are sticky: after the
// first failure every accessor returns zero values and Err reports the
// cause, so restore code can decode straight through and check once.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder wraps an encoded payload.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err reports the first decoding failure, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports the unread byte count — the sanity bound for decoded
// element counts: every encoded element costs at least one byte, so a count
// above Remaining proves corruption before any count-sized allocation.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

// Done verifies the payload was consumed exactly.
func (d *Decoder) Done() error {
	if d.err == nil && d.off != len(d.b) {
		d.err = fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.b)-d.off)
	}
	return d.err
}

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: short payload at offset %d", ErrCorrupt, d.off)
	}
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// Time reads a virtual-time value.
func (d *Decoder) Time() tuple.Time { return tuple.Time(d.I64()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Value reads one tagged attribute value.
func (d *Decoder) Value() tuple.Value {
	switch k := tuple.ValueKind(d.U8()); k {
	case tuple.Null:
		return tuple.Value{}
	case tuple.IntKind:
		return tuple.Int(d.I64())
	case tuple.FloatKind:
		return tuple.Float(math.Float64frombits(d.U64()))
	case tuple.StringKind:
		return tuple.String_(d.String())
	case tuple.BoolKind:
		return tuple.Bool(d.Bool())
	case tuple.TimeKind:
		return tuple.TimeVal(d.Time())
	default:
		if d.err == nil {
			d.err = fmt.Errorf("%w: unknown value kind %d", ErrCorrupt, k)
		}
		return tuple.Value{}
	}
}

// Tuple reads one data tuple, freshly allocated (restored state must not
// alias pooled tuples the runtime may recycle).
func (d *Decoder) Tuple() *tuple.Tuple {
	ts := d.Time()
	arrived := d.Time()
	seq := d.Uvarint()
	arity := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if arity > maxArity {
		d.err = fmt.Errorf("%w: tuple arity %d", ErrCorrupt, arity)
		return nil
	}
	t := &tuple.Tuple{Ts: ts, Kind: tuple.Data, Arrived: arrived, Seq: seq}
	if arity > 0 {
		t.Vals = make([]tuple.Value, arity)
		for i := range t.Vals {
			t.Vals[i] = d.Value()
		}
	}
	return t
}
