package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/tuple"
)

// File-format constants. A checkpoint directory holds two files:
//
//	MANIFEST  magic u32, version u8, id u64, barrier ETS i64, when i64,
//	          segment count uvarint, CRC u32 over everything before it
//	STATE     magic u32, version u8, then per-segment frames:
//	          name len uvarint, name, payload len uvarint, payload,
//	          CRC u32 over name+payload
//
// Both files are written into a ".tmp-*" directory, fsynced, and the
// directory atomically renamed to its final "ckpt-*" name — the rename is
// the commit point, so a crash anywhere mid-write leaves only a temp
// directory that Latest skips and Prune removes.
const (
	magicState    uint32 = 0x534d434b // "SMCK"
	magicManifest uint32 = 0x534d434d // "SMCM"

	manifestName = "MANIFEST"
	stateName    = "STATE"
	dirPrefix    = "ckpt-"
	tmpPrefix    = ".tmp-"
)

// maxSegment bounds one operator's decoded payload (64 MiB) so a corrupt
// length field cannot drive a huge allocation.
const maxSegment = 64 << 20

// Segment is one node's encoded state within a checkpoint.
type Segment struct {
	// Name identifies the node (operator name, unique within a graph).
	Name string
	// Payload is the operator's SaveState encoding.
	Payload []byte
}

// Snapshot is one complete checkpoint: the barrier's identity plus every
// stateful node's segment.
type Snapshot struct {
	// ID is the barrier's checkpoint ID (monotone per coordinator).
	ID uint64
	// Barrier is the merged barrier ETS observed at snapshot time (the
	// minimum across sources; informational).
	Barrier tuple.Time
	// When is the wall-clock time of the checkpoint in µs since the epoch.
	When int64
	// Segments holds each node's state, in node order.
	Segments []Segment
}

// Segment returns the named segment's payload, or nil when absent.
func (s *Snapshot) Segment(name string) []byte {
	for i := range s.Segments {
		if s.Segments[i].Name == name {
			return s.Segments[i].Payload
		}
	}
	return nil
}

// Store manages a directory of checkpoints.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) the checkpoint directory.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: create store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

func ckptDirName(id uint64) string { return fmt.Sprintf("%s%016d", dirPrefix, id) }

// Write durably commits one snapshot. It returns the total payload bytes
// written.
func (s *Store) Write(snap *Snapshot) (int64, error) {
	tmp := filepath.Join(s.dir, fmt.Sprintf("%s%016d", tmpPrefix, snap.ID))
	final := filepath.Join(s.dir, ckptDirName(snap.ID))
	if err := os.RemoveAll(tmp); err != nil {
		return 0, fmt.Errorf("ckpt: clear temp: %w", err)
	}
	if err := os.Mkdir(tmp, 0o755); err != nil {
		return 0, fmt.Errorf("ckpt: temp dir: %w", err)
	}
	var total int64

	// STATE: framed per-node segments, each CRC-protected independently so
	// a torn tail invalidates only the checkpoint, not the decoder.
	st := make([]byte, 0, 1024)
	st = binary.LittleEndian.AppendUint32(st, magicState)
	st = append(st, Version)
	for _, seg := range snap.Segments {
		st = binary.AppendUvarint(st, uint64(len(seg.Name)))
		st = append(st, seg.Name...)
		st = binary.AppendUvarint(st, uint64(len(seg.Payload)))
		st = append(st, seg.Payload...)
		crc := crc32.ChecksumIEEE([]byte(seg.Name))
		crc = crc32.Update(crc, crc32.IEEETable, seg.Payload)
		st = binary.LittleEndian.AppendUint32(st, crc)
		total += int64(len(seg.Payload))
	}
	if err := writeFileSync(filepath.Join(tmp, stateName), st); err != nil {
		return 0, err
	}

	// MANIFEST: identity + segment count, CRC-sealed. Written after STATE
	// so a manifest's presence implies a fully written state file.
	mf := make([]byte, 0, 64)
	mf = binary.LittleEndian.AppendUint32(mf, magicManifest)
	mf = append(mf, Version)
	mf = binary.LittleEndian.AppendUint64(mf, snap.ID)
	mf = binary.LittleEndian.AppendUint64(mf, uint64(snap.Barrier))
	mf = binary.LittleEndian.AppendUint64(mf, uint64(snap.When))
	mf = binary.AppendUvarint(mf, uint64(len(snap.Segments)))
	mf = binary.LittleEndian.AppendUint32(mf, crc32.ChecksumIEEE(mf))
	if err := writeFileSync(filepath.Join(tmp, manifestName), mf); err != nil {
		return 0, err
	}

	if err := syncDir(tmp); err != nil {
		return 0, err
	}
	if err := os.RemoveAll(final); err != nil {
		return 0, fmt.Errorf("ckpt: clear final: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return 0, fmt.Errorf("ckpt: commit: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return 0, err
	}
	return total, nil
}

// List reports the IDs of complete checkpoints, ascending.
func (s *Store) List() ([]uint64, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: list: %w", err)
	}
	var ids []uint64
	for _, e := range ents {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), dirPrefix) {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimPrefix(e.Name(), dirPrefix), 10, 64)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// Latest loads the newest complete, structurally valid checkpoint, skipping
// corrupt ones. It returns nil (and no error) when the store holds none.
func (s *Store) Latest() (*Snapshot, error) {
	ids, err := s.List()
	if err != nil {
		return nil, err
	}
	for i := len(ids) - 1; i >= 0; i-- {
		snap, err := s.Load(ids[i])
		if err == nil {
			return snap, nil
		}
	}
	return nil, nil
}

// Load reads one checkpoint by ID, verifying manifest and segment CRCs.
func (s *Store) Load(id uint64) (*Snapshot, error) {
	dir := filepath.Join(s.dir, ckptDirName(id))
	mf, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if len(mf) < 4+1+8+8+8+1+4 {
		return nil, fmt.Errorf("%w: short manifest", ErrCorrupt)
	}
	body, crcb := mf[:len(mf)-4], mf[len(mf)-4:]
	if binary.LittleEndian.Uint32(crcb) != crc32.ChecksumIEEE(body) {
		return nil, fmt.Errorf("%w: manifest CRC", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(body) != magicManifest {
		return nil, fmt.Errorf("%w: manifest magic", ErrCorrupt)
	}
	if body[4] != Version {
		return nil, fmt.Errorf("ckpt: snapshot version %d, want %d", body[4], Version)
	}
	snap := &Snapshot{
		ID:      binary.LittleEndian.Uint64(body[5:]),
		Barrier: tuple.Time(binary.LittleEndian.Uint64(body[13:])),
		When:    int64(binary.LittleEndian.Uint64(body[21:])),
	}
	count, n := binary.Uvarint(body[29:])
	if n <= 0 || snap.ID != id {
		return nil, fmt.Errorf("%w: manifest fields", ErrCorrupt)
	}

	st, err := os.ReadFile(filepath.Join(dir, stateName))
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if len(st) < 5 || binary.LittleEndian.Uint32(st) != magicState || st[4] != Version {
		return nil, fmt.Errorf("%w: state header", ErrCorrupt)
	}
	off := 5
	for i := uint64(0); i < count; i++ {
		name, next, err := readFrameField(st, off)
		if err != nil {
			return nil, err
		}
		payload, next2, err := readFrameField(st, next)
		if err != nil {
			return nil, err
		}
		if next2+4 > len(st) {
			return nil, fmt.Errorf("%w: short segment CRC", ErrCorrupt)
		}
		crc := crc32.ChecksumIEEE(name)
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if binary.LittleEndian.Uint32(st[next2:]) != crc {
			return nil, fmt.Errorf("%w: segment %q CRC", ErrCorrupt, name)
		}
		off = next2 + 4
		snap.Segments = append(snap.Segments, Segment{Name: string(name), Payload: payload})
	}
	if off != len(st) {
		return nil, fmt.Errorf("%w: trailing state bytes", ErrCorrupt)
	}
	return snap, nil
}

func readFrameField(b []byte, off int) ([]byte, int, error) {
	n, sz := binary.Uvarint(b[off:])
	if sz <= 0 || n > maxSegment || n > uint64(len(b)-off-sz) {
		return nil, 0, fmt.Errorf("%w: segment frame at %d", ErrCorrupt, off)
	}
	start := off + sz
	return b[start : start+int(n)], start + int(n), nil
}

// Prune keeps the newest `keep` complete checkpoints, removing older ones
// and any leftover temp directories.
func (s *Store) Prune(keep int) error {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("ckpt: prune: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() && strings.HasPrefix(e.Name(), tmpPrefix) {
			os.RemoveAll(filepath.Join(s.dir, e.Name()))
		}
	}
	ids, err := s.List()
	if err != nil {
		return err
	}
	if keep < 1 {
		keep = 1
	}
	for len(ids) > keep {
		if err := os.RemoveAll(filepath.Join(s.dir, ckptDirName(ids[0]))); err != nil {
			return fmt.Errorf("ckpt: prune: %w", err)
		}
		ids = ids[1:]
	}
	return nil
}

func writeFileSync(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: sync %s: %w", path, err)
	}
	return f.Close()
}

func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("ckpt: sync dir %s: %w", dir, err)
	}
	return nil
}
