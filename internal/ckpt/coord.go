package ckpt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Engine is the surface the coordinator drives. The runtime engine
// implements it: Checkpoint injects a barrier punctuation (tagged with id)
// at every source, waits until every stateful node has snapshotted at the
// barrier, and returns the collected segments. The engine does no I/O —
// persistence is the coordinator's job, so node goroutines only pay the
// in-memory encode.
type Engine interface {
	Checkpoint(id uint64, timeout time.Duration) (*Snapshot, error)
}

// DefaultInterval is the checkpoint cadence when Options.Interval is zero.
const DefaultInterval = 10 * time.Second

// DefaultTimeout bounds one barrier's flight time when Options.Timeout is
// zero.
const DefaultTimeout = 30 * time.Second

// DefaultKeep is how many complete checkpoints Prune retains when
// Options.Keep is zero.
const DefaultKeep = 3

// Options configures a Coordinator.
type Options struct {
	// Interval is the periodic checkpoint cadence (default DefaultInterval).
	Interval time.Duration
	// Timeout bounds one checkpoint's barrier flight (default
	// DefaultTimeout); a barrier that does not complete in time is
	// abandoned and the next tick retries with a fresh ID.
	Timeout time.Duration
	// Keep is how many complete checkpoints to retain (default DefaultKeep).
	Keep int
	// OnComplete, when non-nil, observes every durably committed
	// checkpoint (ID, wall duration, payload bytes).
	OnComplete func(id uint64, took time.Duration, bytes int64)
	// OnError, when non-nil, observes every failed attempt.
	OnError func(id uint64, err error)
}

// Coordinator periodically drives an Engine through checkpoint cycles and
// persists the results to a Store.
type Coordinator struct {
	eng  Engine
	st   *Store
	opts Options

	nextID   atomic.Uint64
	complete atomic.Uint64
	failed   atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	runOnce  sync.Once
	mu       sync.Mutex // serializes Once against the periodic loop
}

// NewCoordinator builds a coordinator. The store's newest existing
// checkpoint ID seeds the ID sequence so restart continues it.
func NewCoordinator(eng Engine, st *Store, opts Options) (*Coordinator, error) {
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.Keep <= 0 {
		opts.Keep = DefaultKeep
	}
	c := &Coordinator{eng: eng, st: st, opts: opts,
		stop: make(chan struct{}), done: make(chan struct{})}
	ids, err := st.List()
	if err != nil {
		return nil, err
	}
	if len(ids) > 0 {
		c.nextID.Store(ids[len(ids)-1])
	}
	return c, nil
}

// Completed reports the number of durably committed checkpoints this
// coordinator produced.
func (c *Coordinator) Completed() uint64 { return c.complete.Load() }

// Failed reports the number of failed attempts.
func (c *Coordinator) Failed() uint64 { return c.failed.Load() }

// Once runs one full checkpoint cycle synchronously: barrier, collect,
// durable write, prune. Safe to call concurrently with Run (cycles are
// serialized).
func (c *Coordinator) Once() (*Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID.Add(1)
	start := time.Now()
	snap, err := c.eng.Checkpoint(id, c.opts.Timeout)
	if err == nil && snap == nil {
		err = fmt.Errorf("ckpt: engine returned no snapshot")
	}
	var bytes int64
	if err == nil {
		snap.When = start.UnixMicro()
		bytes, err = c.st.Write(snap)
	}
	if err != nil {
		c.failed.Add(1)
		if c.opts.OnError != nil {
			c.opts.OnError(id, err)
		}
		return nil, err
	}
	c.complete.Add(1)
	if c.opts.OnComplete != nil {
		c.opts.OnComplete(id, time.Since(start), bytes)
	}
	if err := c.st.Prune(c.opts.Keep); err != nil && c.opts.OnError != nil {
		c.opts.OnError(id, err)
	}
	return snap, nil
}

// Run starts the periodic loop on its own goroutine; it returns
// immediately. Stop ends the loop.
func (c *Coordinator) Run() {
	c.runOnce.Do(func() {
		go func() {
			defer close(c.done)
			tick := time.NewTicker(c.opts.Interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					c.Once() // errors are reported via OnError and retried next tick
				case <-c.stop:
					return
				}
			}
		}()
	})
}

// Stop ends the periodic loop and waits for an in-flight cycle to finish.
// Idempotent; a coordinator never Run is stopped trivially.
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.runOnce.Do(func() { close(c.done) })
	<-c.done
}
