package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tuple"
)

func testSnap(id uint64) *Snapshot {
	return &Snapshot{
		ID:      id,
		Barrier: tuple.Time(int64(id) * 100),
		When:    int64(id) * 1_000_000,
		Segments: []Segment{
			{Name: "src", Payload: []byte{1, 2, 3}},
			{Name: "agg", Payload: []byte("window state")},
			{Name: "empty", Payload: nil},
		},
	}
}

func sameSnap(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if got.ID != want.ID || got.Barrier != want.Barrier || got.When != want.When {
		t.Fatalf("header mismatch: got %+v, want %+v", got, want)
	}
	if len(got.Segments) != len(want.Segments) {
		t.Fatalf("got %d segments, want %d", len(got.Segments), len(want.Segments))
	}
	for i, seg := range want.Segments {
		if got.Segments[i].Name != seg.Name || string(got.Segments[i].Payload) != string(seg.Payload) {
			t.Fatalf("segment %d: got %q/%x, want %q/%x",
				i, got.Segments[i].Name, got.Segments[i].Payload, seg.Name, seg.Payload)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := testSnap(7)
	if _, err := st.Write(want); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load(7)
	if err != nil {
		t.Fatal(err)
	}
	sameSnap(t, got, want)
	if p := got.Segment("agg"); string(p) != "window state" {
		t.Fatalf("Segment(agg) = %q", p)
	}
	if p := got.Segment("missing"); p != nil {
		t.Fatalf("Segment(missing) = %x, want nil", p)
	}
}

func TestStoreLatestEmpty(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := st.Latest()
	if err != nil || snap != nil {
		t.Fatalf("Latest on empty store = %v, %v; want nil, nil", snap, err)
	}
}

func TestStoreLatestSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 3; id++ {
		if _, err := st.Write(testSnap(id)); err != nil {
			t.Fatal(err)
		}
	}

	// Flip one payload byte in the newest checkpoint's STATE file: its
	// segment CRC must fail and Latest must fall back to checkpoint 2.
	statePath := filepath.Join(dir, "ckpt-0000000000000003", "STATE")
	b, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-10] ^= 0xff
	if err := os.WriteFile(statePath, b, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := st.Load(3); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load(corrupt) = %v, want ErrCorrupt", err)
	}
	snap, err := st.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.ID != 2 {
		t.Fatalf("Latest = %+v, want checkpoint 2", snap)
	}
}

func TestStoreIgnoresTempDirs(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write(testSnap(1)); err != nil {
		t.Fatal(err)
	}
	// A crash mid-write leaves a temp directory; List/Latest must skip it
	// and Prune must sweep it.
	if err := os.MkdirAll(filepath.Join(dir, ".tmp-0000000000000009"), 0o755); err != nil {
		t.Fatal(err)
	}
	ids, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("List = %v, want [1]", ids)
	}
	if err := st.Prune(3); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-0000000000000009")); !os.IsNotExist(err) {
		t.Fatalf("temp dir survived Prune: %v", err)
	}
}

func TestStorePruneKeepsNewest(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 5; id++ {
		if _, err := st.Write(testSnap(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Prune(2); err != nil {
		t.Fatal(err)
	}
	ids, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 4 || ids[1] != 5 {
		t.Fatalf("List after Prune(2) = %v, want [4 5]", ids)
	}
	snap, err := st.Latest()
	if err != nil || snap == nil || snap.ID != 5 {
		t.Fatalf("Latest = %+v, %v; want checkpoint 5", snap, err)
	}
}

func TestEncoderDecoderRoundTrip(t *testing.T) {
	var enc Encoder
	enc.U8(7)
	enc.U32(0xdeadbeef)
	enc.U64(1 << 60)
	enc.I64(-42)
	enc.Uvarint(300)
	enc.Bool(true)
	enc.Time(12345)
	enc.String("hello")
	enc.Value(tuple.Float(1.5))
	enc.Tuple(&tuple.Tuple{Ts: 9, Arrived: 10, Seq: 11, Vals: []tuple.Value{tuple.Int(3), tuple.String_("x")}})

	dec := NewDecoder(enc.Bytes())
	if v := dec.U8(); v != 7 {
		t.Fatalf("U8 = %d", v)
	}
	if v := dec.U32(); v != 0xdeadbeef {
		t.Fatalf("U32 = %x", v)
	}
	if v := dec.U64(); v != 1<<60 {
		t.Fatalf("U64 = %d", v)
	}
	if v := dec.I64(); v != -42 {
		t.Fatalf("I64 = %d", v)
	}
	if v := dec.Uvarint(); v != 300 {
		t.Fatalf("Uvarint = %d", v)
	}
	if !dec.Bool() {
		t.Fatal("Bool = false")
	}
	if v := dec.Time(); v != 12345 {
		t.Fatalf("Time = %d", v)
	}
	if v := dec.String(); v != "hello" {
		t.Fatalf("String = %q", v)
	}
	if v := dec.Value(); v.AsFloat() != 1.5 {
		t.Fatalf("Value = %v", v)
	}
	tp := dec.Tuple()
	if tp == nil || tp.Ts != 9 || tp.Arrived != 10 || tp.Seq != 11 ||
		len(tp.Vals) != 2 || tp.Vals[0].AsInt() != 3 || tp.Vals[1].AsString() != "x" {
		t.Fatalf("Tuple = %+v", tp)
	}
	if err := dec.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderShortPayload(t *testing.T) {
	dec := NewDecoder([]byte{1, 2})
	if v := dec.U64(); v != 0 {
		t.Fatalf("short U64 = %d, want 0", v)
	}
	if !errors.Is(dec.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v, want ErrCorrupt", dec.Err())
	}
	// Errors are sticky: later reads keep failing without panicking.
	if v := dec.String(); v != "" {
		t.Fatalf("String after error = %q", v)
	}
	if dec.Remaining() != 2 {
		t.Fatalf("Remaining = %d", dec.Remaining())
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	var enc Encoder
	enc.U8(1)
	enc.U8(2)
	dec := NewDecoder(enc.Bytes())
	dec.U8()
	if err := dec.Done(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Done with trailing byte = %v, want ErrCorrupt", err)
	}
}
