package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// session is one accepted connection: a reader goroutine owning the socket,
// the per-connection skew estimator, and the session's stream bindings.
type session struct {
	s    *Server
	id   uint64
	conn net.Conn

	wmu sync.Mutex // guards w: Drain writes concurrently with the reader
	w   *wire.Writer

	skew  SkewEstimator
	binds map[uint32]*binding
	caps  uint16 // capability bits granted in HELLO_ACK (CapColumnar, …)

	consumed uint32 // tuples consumed since the last credit grant

	bytesIn  uint64 // last published reader byte count
	bytesOut uint64 // last published writer byte count

	draining atomic.Bool
	done     chan struct{}
}

// binding is one BIND: a session-local stream id mapped onto server-wide
// stream state.
type binding struct {
	st        *streamState
	baseDelta tuple.Time // max(declared δ, client BIND δ) before skew widening
	released  bool
}

func newSession(s *Server, id uint64, conn net.Conn) *session {
	return &session{
		s:     s,
		id:    id,
		conn:  conn,
		binds: make(map[uint32]*binding),
		done:  make(chan struct{}),
	}
}

// run handles the whole connection, then releases every binding the client
// left open. It never panics the server on a misbehaving peer: protocol
// violations get a best-effort ERROR frame and a close.
func (c *session) run() {
	defer close(c.done)
	defer c.conn.Close()
	br := bufio.NewReaderSize(c.conn, 32<<10)
	head, err := br.Peek(len(wire.Magic))
	if err != nil {
		return // died before identifying itself
	}
	if bytes.Equal(head, wire.Magic[:]) {
		br.Discard(len(wire.Magic))
		c.runBinary(br)
	} else {
		c.runText(br)
	}
	// Bindings without an explicit EOS release their reference but leave the
	// stream open: an abrupt disconnect is the engine watchdog's problem
	// (forced ETS, dead-source EOS), not an excuse to end the stream early.
	for _, b := range c.binds {
		if !b.released {
			b.released = true
			c.s.releaseStream(b.st, false)
		}
	}
}

// --- binary protocol ---

func (c *session) runBinary(br *bufio.Reader) {
	s := c.s
	rd := wire.NewReaderBuffered(br)
	c.w = wire.NewWriter(c.conn)

	// The opening frame must be HELLO; it doubles as the first skew sample.
	f, err := rd.Next()
	if err != nil {
		return
	}
	c.noteRead(rd)
	hello, ok := f.(wire.Hello)
	if !ok {
		c.protoError("expected HELLO, got %v", f.Type())
		return
	}
	if hello.Version < 1 {
		c.protoError("unsupported protocol version %d", hello.Version)
		return
	}
	c.skew.Observe(hello.Clock, int64(s.now()))
	ver := uint16(wire.Version)
	if hello.Version < ver {
		ver = hello.Version
	}
	// Grant the intersection of the client's offered capabilities and ours.
	c.caps = hello.Flags & (wire.CapColumnar | wire.CapSeq)
	if c.s.spans != nil {
		// Trace context is only useful (and only decoded into span events)
		// when a collector exists server-side.
		c.caps |= hello.Flags & wire.CapTrace
	}
	if !c.send(wire.HelloAck{Version: ver, Session: c.id, Credits: s.credits, Flags: c.caps}) {
		return
	}
	s.m.credits.Add(uint64(s.credits))

	for {
		f, err := rd.Next()
		if err != nil {
			// A clean close (EOF), a cut connection, or the drain deadline
			// ends the session quietly; a malformed frame earns the peer a
			// best-effort ERROR first.
			if err != io.EOF && !errors.Is(err, io.ErrUnexpectedEOF) && !isNetErr(err) {
				c.protoError("%v", err)
			}
			return
		}
		c.noteRead(rd)
		switch f := f.(type) {
		case wire.Bind:
			c.handleBind(f)
		case wire.Tuple:
			b := c.active(f.ID)
			if b == nil {
				rd.Release(f.T)
				c.protoError("TUPLE on unbound stream id %d", f.ID)
				return
			}
			if f.Seq != 0 && c.caps&wire.CapSeq != 0 && b.st.admitSeq(f.Seq, 1) > 0 {
				// A resend the stream already applied (retained-batch replay
				// after reconnect or crash recovery): suppress, but still
				// return the credit the client spent on it.
				rd.Release(f.T)
				s.m.tuplesDedup.Inc()
				c.grant(1)
				continue
			}
			s.m.tuplesIn.Inc()
			b.st.tuples.Inc()
			b.st.sink.Ingest(f.T)
			c.grant(1)
		case wire.Tuples:
			b := c.active(f.ID)
			if b == nil {
				for _, t := range f.Batch {
					rd.Release(t)
				}
				c.protoError("TUPLES on unbound stream id %d", f.ID)
				return
			}
			n := uint32(len(f.Batch))
			batch := f.Batch
			if f.Seq != 0 && c.caps&wire.CapSeq != 0 {
				// The batch occupies Seq..Seq+n-1; drop the already-applied
				// prefix (a resend overlapping the dedupe watermark).
				if drop := b.st.admitSeq(f.Seq, len(batch)); drop > 0 {
					for _, t := range batch[:drop] {
						rd.Release(t)
					}
					s.m.tuplesDedup.Add(uint64(drop))
					batch = batch[drop:]
				}
			}
			if len(batch) > 0 {
				s.m.tuplesIn.Add(uint64(len(batch)))
				b.st.tuples.Add(uint64(len(batch)))
				b.st.sink.IngestBatch(batch)
			}
			c.grant(n)
		case wire.TuplesCol:
			if c.caps&wire.CapColumnar == 0 {
				tuple.PutColBatch(f.B)
				c.protoError("TUPLES_COL without negotiated capability")
				return
			}
			b := c.active(f.ID)
			if b == nil {
				tuple.PutColBatch(f.B)
				c.protoError("TUPLES_COL on unbound stream id %d", f.ID)
				return
			}
			// Punctuation marks in a batch follow the PUNCT frame policy:
			// accepted only where the client is a timestamp authority.
			if f.B.HasPunct() {
				if b.st.sch.TS == tuple.External {
					s.m.punctIn.Add(uint64(len(f.B.Puncts)))
				} else {
					s.m.punctIgnored.Add(uint64(len(f.B.Puncts)))
					f.B.Puncts = f.B.Puncts[:0]
				}
			}
			n := uint32(f.B.Len())
			s.m.tuplesIn.Add(uint64(n))
			b.st.tuples.Add(uint64(n))
			if cs, ok := b.st.sink.(ColSink); ok {
				cs.IngestCol(f.B)
			} else {
				rows := f.B.AppendRows(nil, nil)
				tuple.PutColBatch(f.B)
				b.st.sink.IngestBatch(rows)
			}
			c.grant(n)
		case wire.Punct:
			b := c.active(f.ID)
			if b == nil {
				c.protoError("PUNCT on unbound stream id %d", f.ID)
				return
			}
			// Only an external stream can accept a client's bound: for
			// internal and latent streams the server (or nobody) is the
			// timestamp authority, so the value is dropped on the floor.
			if b.st.sch.TS == tuple.External && f.TS == tuple.External {
				s.m.punctIn.Inc()
				p := tuple.GetPunct(f.ETS)
				if f.Trace != 0 && c.caps&wire.CapTrace != 0 && s.spans != nil {
					// Splice the network hop into the timeline: the
					// client's send instant mapped onto the server
					// clock by the skew estimate (Offset ≈ server −
					// client, the least-delay sample), then our receive
					// instant. The trace ID rides the injected tuple
					// into the engine.
					p.Trace = f.Trace
					sess := fmt.Sprintf("session:%d", c.id)
					if c.skew.Samples() > 0 {
						s.spans.RecordAt(f.Trace, sess, obs.PhaseNetSend,
							f.Clock+c.skew.Offset(), f.ETS)
					}
					// Both network phases land on the server clock (the
					// axis the skew estimate maps onto) — Options.Now
					// and the collector clock must share it.
					s.spans.RecordAt(f.Trace, sess, obs.PhaseNetRecv,
						int64(s.now()), f.ETS)
				}
				b.st.sink.Ingest(p)
			} else {
				s.m.punctIgnored.Inc()
			}
		case wire.Heartbeat:
			s.m.heartbeats.Inc()
			c.skew.Observe(f.Clock, int64(s.now()))
			c.applySkew()
		case wire.EOS:
			b := c.active(f.ID)
			if b == nil {
				c.protoError("EOS on unbound stream id %d", f.ID)
				return
			}
			b.released = true
			c.s.releaseStream(b.st, true)
		case wire.Error:
			s.m.errors.Inc()
			return
		case wire.Demand:
			// Credits flow server→client; a client DEMAND is advisory
			// (a poll for liveness) and needs no reply.
		case wire.PlanDeploy:
			c.handlePlan(f.Plan, func() error { return s.opts.Plans.PlanDeploy(f.Plan, f.Spec) })
		case wire.PlanStart:
			c.handlePlan(f.Plan, func() error { return s.opts.Plans.PlanStart(f.Plan) })
		case wire.PlanStop:
			c.handlePlan(f.Plan, func() error { return s.opts.Plans.PlanStop(f.Plan) })
		default:
			c.protoError("unexpected frame %v", f.Type())
			return
		}
	}
}

func (c *session) handleBind(f wire.Bind) {
	s := c.s
	if _, dup := c.binds[f.ID]; dup {
		c.send(wire.BindAck{ID: f.ID, Err: fmt.Sprintf("stream id %d already bound", f.ID)})
		return
	}
	st, err := s.openStream(f.Stream)
	if err != nil {
		c.send(wire.BindAck{ID: f.ID, Err: err.Error()})
		return
	}
	if err := checkBind(st.sch, f); err != nil {
		s.releaseStream(st, false)
		c.send(wire.BindAck{ID: f.ID, Err: err.Error()})
		return
	}
	base := f.Delta
	if st.src != nil && st.src.Delta() > base {
		base = st.src.Delta()
	}
	c.binds[f.ID] = &binding{st: st, baseDelta: base}
	s.m.binds.Inc()
	if s.trace != nil {
		s.trace.Emit(metrics.EvNetBind, "stream:"+st.name, s.now(), int64(c.id))
	}
	// The client's declared δ may already widen the source's bound, and the
	// HELLO sample plus any prior heartbeats may widen it further.
	c.applySkew()
	ack := wire.BindAck{ID: f.ID}
	if c.caps&wire.CapSeq != 0 {
		// Tell the producer where the stream's dedupe watermark stands so it
		// can trim its retained resend batch before replaying.
		ack.Seq = st.ingested.Load()
	}
	c.send(ack)
}

// checkBind validates the client's declared schema against the server's.
// Field kinds and count must match exactly when declared (names are the
// client's business); the timestamp kind must always match — a client
// assuming external timestamps on an internal stream would be promising
// bounds the server will overwrite.
func checkBind(sch *tuple.Schema, f wire.Bind) error {
	if f.TS != sch.TS {
		return fmt.Errorf("server: stream %q has timestamp kind %v, client declared %v", sch.Name, sch.TS, f.TS)
	}
	if len(f.Fields) == 0 {
		return nil // client trusts the server's schema
	}
	if len(f.Fields) != len(sch.Fields) {
		return fmt.Errorf("server: stream %q has %d fields, client declared %d", sch.Name, len(sch.Fields), len(f.Fields))
	}
	for i, fd := range f.Fields {
		if fd.Kind != sch.Fields[i].Kind {
			return fmt.Errorf("server: stream %q field %d is %v, client declared %v", sch.Name, i, sch.Fields[i].Kind, fd.Kind)
		}
	}
	return nil
}

// active returns the binding for a stream id, or nil if absent or already
// EOS'd (data after EOS is a protocol violation).
func (c *session) active(id uint32) *binding {
	b := c.binds[id]
	if b == nil || b.released {
		return nil
	}
	return b
}

// applySkew widens every bound external source's δ to the binding's base
// plus the connection's measured offset spread. Widening-only end to end, so
// every promised ETS stays a valid lower bound.
func (c *session) applySkew() {
	spread := c.skew.Spread()
	for _, b := range c.binds {
		if b.released || b.st.src == nil || b.st.sch.TS != tuple.External {
			continue
		}
		d := b.baseDelta + spread
		if d > b.st.src.Delta() {
			b.st.src.RaiseDelta(d)
			eff := b.st.src.Delta()
			b.st.skewUs.Set(int64(eff))
			if c.s.trace != nil {
				c.s.trace.Emit(metrics.EvNetSkew, "stream:"+b.st.name, c.s.now(), int64(eff))
			}
		}
	}
}

// handlePlan runs one distributed-execution control operation through the
// server's PlanHandler and answers with a PLAN_ACK. A server without a
// handler rejects per frame (the session stays usable — a coordinator
// probing a non-worker deserves a diagnostic, not a cut connection), and a
// handler error travels back verbatim for the coordinator to abort on.
func (c *session) handlePlan(plan uint64, op func() error) {
	c.s.m.planOps.Inc()
	var msg string
	if c.s.opts.Plans == nil {
		msg = "server does not accept plan deployments"
	} else if err := op(); err != nil {
		msg = err.Error()
	}
	if msg != "" {
		c.s.m.planErrors.Inc()
	}
	c.send(wire.PlanAck{Plan: plan, Err: msg})
}

// grant accounts n consumed tuples and tops the client's credit window up
// with a DEMAND once half the window has been consumed — the wire form of
// the engine's upstream demand signalling, repurposed as flow control: when
// the engine backpressures, the session blocks in Ingest, stops granting,
// and the client runs out of window.
func (c *session) grant(n uint32) {
	c.consumed += n
	if c.consumed < c.s.credits/2 {
		return
	}
	n, c.consumed = c.consumed, 0
	if c.send(wire.Demand{Credits: n}) {
		c.s.m.demandSent.Inc()
		c.s.m.credits.Add(uint64(n))
		if c.s.trace != nil {
			c.s.trace.Emit(metrics.EvNetDemand, "server", c.s.now(), int64(n))
		}
	}
}

// send writes one frame and flushes (control frames are rare; tuple traffic
// is client→server only). Reports false once the connection is broken.
func (c *session) send(f wire.Frame) bool {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.w == nil {
		return false
	}
	if err := c.w.WriteFrame(f); err != nil {
		return false
	}
	if err := c.w.Flush(); err != nil {
		return false
	}
	c.s.m.framesOut.Inc()
	nb := c.w.Bytes()
	c.s.m.bytesOut.Add(nb - c.bytesOut)
	c.bytesOut = nb
	return true
}

// protoError reports a protocol violation to the peer (best effort) before
// the caller closes the session.
func (c *session) protoError(format string, args ...any) {
	c.s.m.errors.Inc()
	c.send(wire.Error{Code: wire.ErrCodeProtocol, Msg: fmt.Sprintf(format, args...)})
}

// noteRead publishes reader-side frame/byte counters after each frame.
func (c *session) noteRead(rd *wire.Reader) {
	c.s.m.framesIn.Inc()
	nb := rd.Bytes()
	c.s.m.bytesIn.Add(nb - c.bytesIn)
	c.bytesIn = nb
}

// beginDrain tells the client the server is going away and bounds how long
// the session may keep the socket. Called from the Drain goroutine.
func (c *session) beginDrain(deadline time.Time) {
	if !c.draining.CompareAndSwap(false, true) {
		return
	}
	if c.w != nil {
		c.send(wire.Error{Code: wire.ErrCodeDraining, Msg: "server draining"})
	}
	c.conn.SetReadDeadline(deadline)
}

// waitUntil blocks until the session ends or the deadline passes, reporting
// whether it ended.
func (c *session) waitUntil(deadline time.Time) bool {
	d := time.Until(deadline)
	if d <= 0 {
		select {
		case <-c.done:
			return true
		default:
			return false
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.done:
		return true
	case <-t.C:
		return false
	}
}

// isNetErr reports whether err came from the transport (timeout, reset,
// closed socket) rather than the protocol layer.
func isNetErr(err error) bool {
	var ne net.Error
	return errors.Is(err, net.ErrClosed) || errors.As(err, &ne)
}

// --- text fallback ---

// runText serves a legacy unframed connection: the whole connection is one
// stream of Options.Text-decoded tuples bound to the configured stream.
func (c *session) runText(br *bufio.Reader) {
	s := c.s
	if s.opts.Text == nil {
		return // no fallback configured; drop the stray connection
	}
	s.m.sessionsText.Inc()
	st, err := s.openStream(s.opts.Text.Stream)
	if err != nil {
		return
	}
	// Legacy semantics: a text connection closing does NOT end the stream —
	// the old TCP wrapper outlived its connections.
	defer s.releaseStream(st, false)
	dec := s.opts.Text.NewDecoder(br, st.sch)
	for {
		t, err := dec.Next()
		if err != nil {
			return
		}
		if c.draining.Load() {
			return
		}
		s.m.tuplesIn.Inc()
		st.tuples.Inc()
		st.sink.Ingest(t)
	}
}
