package server

import (
	"repro/internal/tuple"
)

// SkewEstimator measures the clock relationship of one network connection,
// turning the paper's abstract skew bound δ (§5: a source can promise
// ETS = t + τ − δ) into a quantity the server actually observes.
//
// Every HELLO and HEARTBEAT frame carries the sender's clock c; the server
// records the receive clock s and keeps the running minimum and maximum of
// the offset o = s − c. A single offset says nothing (the two clocks have
// arbitrary epochs), but the *spread* max(o) − min(o) is epoch-free and
// bounds how far the sender's clock has wandered against ours — relative
// drift plus network-delay jitter, which is exactly the extra uncertainty a
// remote external-timestamp stream adds on top of its application-declared
// skew. The session feeds base δ + spread into the source's ETS estimator
// (ops.Source.RaiseDelta), widening only: on-demand ETS for the remote
// stream then uses the measured link rather than a hopeful constant, and
// the promised bound stays a valid lower bound even on a jittery
// connection.
//
// The estimator is owned by its session goroutine; it needs no locking.
type SkewEstimator struct {
	samples uint64
	minOff  int64
	maxOff  int64
}

// Observe records one (sender clock, receive clock) pair, both in µs.
func (e *SkewEstimator) Observe(senderClock, recvClock int64) {
	off := recvClock - senderClock
	if e.samples == 0 {
		e.minOff, e.maxOff = off, off
	} else {
		if off < e.minOff {
			e.minOff = off
		}
		if off > e.maxOff {
			e.maxOff = off
		}
	}
	e.samples++
}

// Samples reports the number of clock pairs observed.
func (e *SkewEstimator) Samples() uint64 { return e.samples }

// Spread reports the observed offset spread — the measured relative skew
// bound of the connection. It is 0 until at least two samples exist (one
// sample fixes the epoch but bounds nothing).
func (e *SkewEstimator) Spread() tuple.Time {
	if e.samples < 2 {
		return 0
	}
	return tuple.Time(e.maxOff - e.minOff)
}

// Offset reports the minimum observed offset — the best single estimate of
// the epoch difference between the two clocks (the sample with the least
// network delay in it). Diagnostic only; ETS math uses Spread.
func (e *SkewEstimator) Offset() int64 { return e.minOff }
