package server_test

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/server"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// recBackend records everything ingested for one declared stream.
type recBackend struct {
	sch *tuple.Schema
	src *ops.Source

	mu     sync.Mutex
	data   []*tuple.Tuple
	punct  []tuple.Time
	closed bool
}

func newRecBackend(sch *tuple.Schema, src *ops.Source) *recBackend {
	return &recBackend{sch: sch, src: src}
}

func (b *recBackend) Open(name string) (*tuple.Schema, server.StreamSink, error) {
	if name != b.sch.Name {
		return nil, nil, fmt.Errorf("unknown stream %q", name)
	}
	return b.sch, b, nil
}

func (b *recBackend) Ingest(t *tuple.Tuple) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t.IsPunct() {
		b.punct = append(b.punct, t.Ts)
		return
	}
	b.data = append(b.data, t)
}

func (b *recBackend) IngestBatch(ts []*tuple.Tuple) {
	for _, t := range ts {
		b.Ingest(t)
	}
}

func (b *recBackend) Source() *ops.Source { return b.src }

func (b *recBackend) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
}

func (b *recBackend) counts() (data, punct int, closed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.data), len(b.punct), b.closed
}

func sensorSchema() *tuple.Schema {
	return tuple.NewSchema("sensors",
		tuple.Field{Name: "id", Kind: tuple.IntKind},
		tuple.Field{Name: "v", Kind: tuple.FloatKind},
	).WithTS(tuple.External)
}

// testConn wraps a raw protocol conversation.
type testConn struct {
	t    *testing.T
	conn net.Conn
	w    *wire.Writer
	r    *wire.Reader
}

func dialWire(t *testing.T, addr string) *testConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	tc := &testConn{t: t, conn: conn, w: wire.NewWriter(conn), r: wire.NewReader(conn)}
	if err := tc.w.WriteMagic(); err != nil {
		t.Fatalf("magic: %v", err)
	}
	return tc
}

func (tc *testConn) send(f wire.Frame) {
	tc.t.Helper()
	if err := tc.w.WriteFrame(f); err != nil {
		tc.t.Fatalf("write %v: %v", f.Type(), err)
	}
	if err := tc.w.Flush(); err != nil {
		tc.t.Fatalf("flush: %v", err)
	}
}

func (tc *testConn) recv() wire.Frame {
	tc.t.Helper()
	tc.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := tc.r.Next()
	if err != nil {
		tc.t.Fatalf("read frame: %v", err)
	}
	return f
}

// hello performs the opening handshake and returns the ack.
func (tc *testConn) hello(clock int64) wire.HelloAck {
	tc.t.Helper()
	tc.send(wire.Hello{Version: wire.Version, Name: "test", Clock: clock})
	ack, ok := tc.recv().(wire.HelloAck)
	if !ok {
		tc.t.Fatalf("expected HELLO_ACK")
	}
	return ack
}

func (tc *testConn) bind(id uint32, stream string, ts tuple.TSKind, delta tuple.Time) wire.BindAck {
	tc.t.Helper()
	tc.send(wire.Bind{ID: id, Stream: stream, TS: ts, Delta: delta})
	ack, ok := tc.recv().(wire.BindAck)
	if !ok {
		tc.t.Fatalf("expected BIND_ACK")
	}
	return ack
}

func TestSessionIngest(t *testing.T) {
	back := newRecBackend(sensorSchema(), nil)
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tc := dialWire(t, srv.Addr().String())
	defer tc.conn.Close()
	ack := tc.hello(1000)
	if ack.Session == 0 || ack.Credits == 0 {
		t.Fatalf("bad hello ack: %+v", ack)
	}
	if back := tc.bind(1, "sensors", tuple.External, 500); back.Err != "" {
		t.Fatalf("bind: %s", back.Err)
	}

	tc.send(wire.Tuple{ID: 1, T: tuple.NewData(10, tuple.Int(1), tuple.Float(0.5))})
	batch := wire.Tuples{ID: 1}
	for i := 0; i < 10; i++ {
		batch.Batch = append(batch.Batch, tuple.NewData(tuple.Time(20+i), tuple.Int(int64(i)), tuple.Float(1.5)))
	}
	tc.send(batch)
	tc.send(wire.Punct{ID: 1, TS: tuple.External, ETS: 29})
	tc.send(wire.EOS{ID: 1})
	tc.conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		data, punct, closed := back.counts()
		if data == 11 && punct == 1 && closed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: data=%d punct=%d closed=%v", data, punct, closed)
		}
		time.Sleep(time.Millisecond)
	}

	reg := srv.Registry()
	snap := map[string]float64{}
	for _, m := range reg.Snapshot() {
		snap[m.Name] = m.Value
	}
	if snap["sm_net_tuples_in_total"] != 11 {
		t.Errorf("tuples_in = %v, want 11", snap["sm_net_tuples_in_total"])
	}
	if snap["sm_net_punct_in_total"] != 1 {
		t.Errorf("punct_in = %v, want 1", snap["sm_net_punct_in_total"])
	}
	if snap["sm_net_stream_tuples_total{stream=sensors}"] != 11 {
		t.Errorf("stream tuples = %v, want 11", snap["sm_net_stream_tuples_total{stream=sensors}"])
	}
}

func TestBindErrors(t *testing.T) {
	back := newRecBackend(sensorSchema(), nil)
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tc := dialWire(t, srv.Addr().String())
	defer tc.conn.Close()
	tc.hello(0)

	if ack := tc.bind(1, "nosuch", tuple.External, 0); ack.Err == "" {
		t.Error("bind to unknown stream succeeded")
	}
	// Wrong timestamp kind.
	if ack := tc.bind(2, "sensors", tuple.Internal, 0); ack.Err == "" {
		t.Error("bind with wrong TS kind succeeded")
	}
	// Wrong field kinds.
	tc.send(wire.Bind{ID: 3, Stream: "sensors", TS: tuple.External,
		Fields: []tuple.Field{{Name: "a", Kind: tuple.StringKind}, {Name: "b", Kind: tuple.FloatKind}}})
	if ack := tc.recv().(wire.BindAck); ack.Err == "" {
		t.Error("bind with wrong field kind succeeded")
	}
	// Matching explicit schema is accepted.
	tc.send(wire.Bind{ID: 4, Stream: "sensors", TS: tuple.External,
		Fields: []tuple.Field{{Name: "x", Kind: tuple.IntKind}, {Name: "y", Kind: tuple.FloatKind}}})
	if ack := tc.recv().(wire.BindAck); ack.Err != "" {
		t.Errorf("bind with matching schema failed: %s", ack.Err)
	}
	// Duplicate id.
	if ack := tc.bind(4, "sensors", tuple.External, 0); ack.Err == "" {
		t.Error("duplicate bind id succeeded")
	}
}

func TestUnboundTupleIsProtocolError(t *testing.T) {
	back := newRecBackend(sensorSchema(), nil)
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tc := dialWire(t, srv.Addr().String())
	defer tc.conn.Close()
	tc.hello(0)
	tc.send(wire.Tuple{ID: 9, T: tuple.NewData(1, tuple.Int(1), tuple.Float(1))})
	f := tc.recv()
	e, ok := f.(wire.Error)
	if !ok || e.Code != wire.ErrCodeProtocol {
		t.Fatalf("expected protocol ERROR, got %+v", f)
	}
}

func TestCreditsTopUp(t *testing.T) {
	back := newRecBackend(sensorSchema(), nil)
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back, Credits: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tc := dialWire(t, srv.Addr().String())
	defer tc.conn.Close()
	ack := tc.hello(0)
	if ack.Credits != 8 {
		t.Fatalf("credits = %d, want 8", ack.Credits)
	}
	tc.bind(1, "sensors", tuple.External, 0)
	for i := 0; i < 4; i++ {
		tc.send(wire.Tuple{ID: 1, T: tuple.NewData(tuple.Time(i), tuple.Int(1), tuple.Float(1))})
	}
	f := tc.recv()
	d, ok := f.(wire.Demand)
	if !ok {
		t.Fatalf("expected DEMAND after half window, got %+v", f)
	}
	if d.Credits != 4 {
		t.Errorf("granted %d credits, want 4", d.Credits)
	}
}

func TestSharedStreamEOSRefcount(t *testing.T) {
	back := newRecBackend(sensorSchema(), nil)
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	a := dialWire(t, srv.Addr().String())
	defer a.conn.Close()
	a.hello(0)
	a.bind(1, "sensors", tuple.External, 0)
	b := dialWire(t, srv.Addr().String())
	defer b.conn.Close()
	b.hello(0)
	b.bind(1, "sensors", tuple.External, 0)

	// First EOS must not close the shared stream: another session still
	// holds a reference.
	a.send(wire.EOS{ID: 1})
	a.conn.Close()
	time.Sleep(50 * time.Millisecond)
	if _, _, closed := back.counts(); closed {
		t.Fatal("stream closed while a session still held it")
	}
	b.send(wire.EOS{ID: 1})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, closed := back.counts(); closed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream not closed after last EOS")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDrain(t *testing.T) {
	back := newRecBackend(sensorSchema(), nil)
	reg := metrics.NewRegistry()
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tc := dialWire(t, srv.Addr().String())
	defer tc.conn.Close()
	tc.hello(0)
	tc.bind(1, "sensors", tuple.External, 0)
	tc.send(wire.Tuple{ID: 1, T: tuple.NewData(5, tuple.Int(1), tuple.Float(1))})

	done := make(chan int)
	go func() { done <- srv.Drain(2 * time.Second) }()

	// The client is told the server is draining...
	f := tc.recv()
	if e, ok := f.(wire.Error); !ok || e.Code != wire.ErrCodeDraining {
		t.Fatalf("expected draining ERROR, got %+v", f)
	}
	// ...finishes up and leaves.
	tc.send(wire.EOS{ID: 1})
	tc.conn.Close()
	if cut := <-done; cut != 0 {
		t.Errorf("drain cut %d sessions, want 0", cut)
	}
	if _, _, closed := back.counts(); !closed {
		t.Fatal("stream not closed after drain")
	}
	// New connections are refused while drained.
	if conn, err := net.Dial("tcp", srv.Addr().String()); err == nil {
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			t.Error("post-drain connection was served")
		}
		conn.Close()
	}
}

// lineDecoder is a minimal text decoder: "<ts>,<id>,<v>" per line.
type lineDecoder struct {
	br  *bufio.Reader
	sch *tuple.Schema
}

func (d *lineDecoder) Next() (*tuple.Tuple, error) {
	line, err := d.br.ReadString('\n')
	if err != nil {
		return nil, err
	}
	parts := strings.Split(strings.TrimSpace(line), ",")
	ts, _ := strconv.ParseInt(parts[0], 10, 64)
	id, _ := strconv.ParseInt(parts[1], 10, 64)
	v, _ := strconv.ParseFloat(parts[2], 64)
	return tuple.NewData(tuple.Time(ts), tuple.Int(id), tuple.Float(v)), nil
}

func TestTextFallback(t *testing.T) {
	back := newRecBackend(sensorSchema(), nil)
	srv, err := server.Listen("127.0.0.1:0", server.Options{
		Backend: back,
		Text: &server.TextOptions{
			Stream: "sensors",
			NewDecoder: func(r io.Reader, sch *tuple.Schema) server.TupleDecoder {
				return &lineDecoder{br: bufio.NewReader(r), sch: sch}
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		fmt.Fprintf(conn, "%d,%d,%g\n", 100+i, i, 0.25)
	}
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		data, _, closed := back.counts()
		if data == 5 {
			if closed {
				t.Fatal("text disconnect must not close the stream")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: got %d tuples", data)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTextRejectedWithoutOptions(t *testing.T) {
	back := newRecBackend(sensorSchema(), nil)
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "1,2,3\n")
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("expected the stray text connection to be dropped")
	}
}
