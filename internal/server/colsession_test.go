package server_test

import (
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// colRecBackend extends recBackend with a columnar sink, recording how many
// batches arrived columnar (vs converted to rows by the session).
type colRecBackend struct {
	recBackend
	colBatches int
}

func (b *colRecBackend) Open(name string) (*tuple.Schema, server.StreamSink, error) {
	if _, _, err := b.recBackend.Open(name); err != nil {
		return nil, nil, err
	}
	return b.sch, b, nil
}

func (b *colRecBackend) IngestCol(cb *tuple.ColBatch) {
	b.mu.Lock()
	b.colBatches++
	b.mu.Unlock()
	b.IngestBatch(cb.AppendRows(nil, nil))
	tuple.PutColBatch(cb)
}

func (b *colRecBackend) colCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.colBatches
}

// helloCol performs the handshake offering the columnar capability.
func (tc *testConn) helloCol(clock int64) wire.HelloAck {
	tc.t.Helper()
	tc.send(wire.Hello{Version: wire.Version, Name: "test", Clock: clock, Flags: wire.CapColumnar})
	ack, ok := tc.recv().(wire.HelloAck)
	if !ok {
		tc.t.Fatalf("expected HELLO_ACK")
	}
	return ack
}

func sensorColBatch(n int, punctAt tuple.Time) *tuple.ColBatch {
	b := tuple.GetColBatch(0)
	for i := 0; i < n; i++ {
		b.AppendTuple(tuple.NewData(tuple.Time(10+i), tuple.Int(int64(i)), tuple.Float(0.5)))
	}
	if punctAt != 0 {
		b.AppendPunct(punctAt)
	}
	return b
}

func waitCounts(t *testing.T, back interface {
	counts() (int, int, bool)
}, data, punct int, closed bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		d, p, c := back.counts()
		if d == data && p == punct && c == closed {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: data=%d punct=%d closed=%v, want %d/%d/%v", d, p, c, data, punct, closed)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSessionColumnarIngest covers the negotiated happy path into a
// columnar-capable sink: the capability is echoed, batches reach the sink
// columnar, and batch punctuation is accepted on an external stream.
func TestSessionColumnarIngest(t *testing.T) {
	back := &colRecBackend{recBackend: recBackend{sch: sensorSchema()}}
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tc := dialWire(t, srv.Addr().String())
	defer tc.conn.Close()
	ack := tc.helloCol(1000)
	if ack.Flags&wire.CapColumnar == 0 {
		t.Fatalf("capability not echoed: %+v", ack)
	}
	if back := tc.bind(1, "sensors", tuple.External, 500); back.Err != "" {
		t.Fatalf("bind: %s", back.Err)
	}
	tc.send(wire.TuplesCol{ID: 1, B: sensorColBatch(8, 17)})
	tc.send(wire.EOS{ID: 1})
	waitCounts(t, back, 8, 1, true)
	if back.colCount() != 1 {
		t.Fatalf("colBatches = %d, want 1", back.colCount())
	}
}

// TestSessionColumnarRowFallback: a columnar frame into a row-only backend
// is converted by the session, so every backend works.
func TestSessionColumnarRowFallback(t *testing.T) {
	back := newRecBackend(sensorSchema(), nil)
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tc := dialWire(t, srv.Addr().String())
	defer tc.conn.Close()
	tc.helloCol(1000)
	if back := tc.bind(1, "sensors", tuple.External, 500); back.Err != "" {
		t.Fatalf("bind: %s", back.Err)
	}
	tc.send(wire.TuplesCol{ID: 1, B: sensorColBatch(5, 14)})
	tc.send(wire.EOS{ID: 1})
	waitCounts(t, back, 5, 1, true)
}

// TestSessionColumnarWithoutCapability: a TUPLES_COL frame on a session
// that never negotiated the capability is a protocol error.
func TestSessionColumnarWithoutCapability(t *testing.T) {
	back := newRecBackend(sensorSchema(), nil)
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tc := dialWire(t, srv.Addr().String())
	defer tc.conn.Close()
	ack := tc.hello(1000) // no capability offered
	if ack.Flags != 0 {
		t.Fatalf("capability granted unasked: %+v", ack)
	}
	if back := tc.bind(1, "sensors", tuple.External, 500); back.Err != "" {
		t.Fatalf("bind: %s", back.Err)
	}
	tc.send(wire.TuplesCol{ID: 1, B: sensorColBatch(2, 0)})
	f := tc.recv()
	e, ok := f.(wire.Error)
	if !ok {
		t.Fatalf("expected protocol Error, got %T", f)
	}
	if e.Code != wire.ErrCodeProtocol {
		t.Fatalf("error code %d: %s", e.Code, e.Msg)
	}
}

// TestSessionColumnarStripsInternalPunct mirrors the PUNCT-frame policy:
// batch punctuation on a non-external stream is dropped, not forwarded.
func TestSessionColumnarStripsInternalPunct(t *testing.T) {
	sch := tuple.NewSchema("sensors",
		tuple.Field{Name: "id", Kind: tuple.IntKind},
		tuple.Field{Name: "v", Kind: tuple.FloatKind},
	).WithTS(tuple.Internal)
	back := &colRecBackend{recBackend: recBackend{sch: sch}}
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tc := dialWire(t, srv.Addr().String())
	defer tc.conn.Close()
	tc.helloCol(1000)
	if back := tc.bind(1, "sensors", tuple.Internal, 0); back.Err != "" {
		t.Fatalf("bind: %s", back.Err)
	}
	tc.send(wire.TuplesCol{ID: 1, B: sensorColBatch(3, 12)})
	tc.send(wire.EOS{ID: 1})
	waitCounts(t, back, 3, 0, true)
}
