package server

import (
	"fmt"

	"repro/internal/ops"
	"repro/internal/tuple"
)

// Backend resolves stream names to ingest sinks. The server is deliberately
// decoupled from the engine: cmd/streamd plugs a runtime engine in through
// NewEngineBackend, while wrappers.TCPSource (the legacy text wrapper) plugs
// in a bare callback, and tests plug in recorders.
type Backend interface {
	// Open resolves a stream name to its schema and an ingest sink. The
	// server calls it once per stream (bindings are refcounted server-side)
	// and Closes the sink after the last EOS.
	Open(name string) (*tuple.Schema, StreamSink, error)
}

// StreamSink is where a bound stream's tuples go. Ingest and IngestBatch may
// block — that is the engine's backpressure, and the session stops reading
// its socket while blocked, pushing the pressure onto TCP and ultimately the
// client's credit window.
type StreamSink interface {
	// Ingest takes ownership of one raw tuple (data or punctuation).
	Ingest(t *tuple.Tuple)
	// IngestBatch takes ownership of the tuples (not the slice).
	IngestBatch(ts []*tuple.Tuple)
	// Source exposes the stream's source operator for skew feedback and
	// drain-time ETS, or nil when the backend has no source (callback mode).
	Source() *ops.Source
	// Close ends the stream (EOS downstream).
	Close()
}

// ColSink is an optional extension of StreamSink: a sink that accepts a
// columnar batch without row materialization (ownership of the batch
// transfers). Sessions fall back to a row conversion for sinks without it,
// so TUPLES_COL works against every backend.
type ColSink interface {
	IngestCol(b *tuple.ColBatch)
}

// Ingestor is the slice of runtime.Engine the engine backend needs; an
// interface so server does not import runtime (and so tests can fake it).
type Ingestor interface {
	Ingest(src *ops.Source, raw *tuple.Tuple)
	IngestBatch(src *ops.Source, raws []*tuple.Tuple)
	CloseStream(src *ops.Source)
}

// ColIngestor is the optional columnar extension of Ingestor
// (runtime.Engine implements it); engine sinks forward columnar batches
// whole when the engine does.
type ColIngestor interface {
	IngestColBatch(src *ops.Source, b *tuple.ColBatch)
}

// NewEngineBackend adapts a running engine to the server: lookup resolves
// declared streams (core.Engine.LookupStream has the right signature) and
// ing delivers into the engine's source inboxes.
func NewEngineBackend(ing Ingestor, lookup func(name string) (*tuple.Schema, *ops.Source, error)) Backend {
	return &engineBackend{ing: ing, lookup: lookup}
}

type engineBackend struct {
	ing    Ingestor
	lookup func(name string) (*tuple.Schema, *ops.Source, error)
}

func (b *engineBackend) Open(name string) (*tuple.Schema, StreamSink, error) {
	sch, src, err := b.lookup(name)
	if err != nil {
		return nil, nil, err
	}
	return sch, &engineSink{ing: b.ing, src: src}, nil
}

type engineSink struct {
	ing Ingestor
	src *ops.Source
}

func (s *engineSink) Ingest(t *tuple.Tuple)         { s.ing.Ingest(s.src, t) }
func (s *engineSink) IngestBatch(ts []*tuple.Tuple) { s.ing.IngestBatch(s.src, ts) }
func (s *engineSink) Source() *ops.Source           { return s.src }
func (s *engineSink) Close()                        { s.ing.CloseStream(s.src) }

// IngestCol forwards a columnar batch whole when the engine can take one,
// else converts to rows at this last boundary.
func (s *engineSink) IngestCol(b *tuple.ColBatch) {
	if ci, ok := s.ing.(ColIngestor); ok {
		ci.IngestColBatch(s.src, b)
		return
	}
	rows := b.AppendRows(nil, nil)
	tuple.PutColBatch(b)
	s.ing.IngestBatch(s.src, rows)
}

// NewCallbackBackend serves exactly one stream, delivering every tuple to a
// callback — the adapter the legacy text wrapper uses. deliver must be safe
// for concurrent use (sessions run on their own goroutines). onClose, which
// may be nil, runs once after the stream's last EOS.
func NewCallbackBackend(sch *tuple.Schema, deliver func(*tuple.Tuple), onClose func()) Backend {
	return &callbackBackend{sch: sch, deliver: deliver, onClose: onClose}
}

type callbackBackend struct {
	sch     *tuple.Schema
	deliver func(*tuple.Tuple)
	onClose func()
}

func (b *callbackBackend) Open(name string) (*tuple.Schema, StreamSink, error) {
	if name != b.sch.Name {
		return nil, nil, fmt.Errorf("server: unknown stream %q (serving %q)", name, b.sch.Name)
	}
	return b.sch, &callbackSink{b: b}, nil
}

type callbackSink struct{ b *callbackBackend }

func (s *callbackSink) Ingest(t *tuple.Tuple) { s.b.deliver(t) }
func (s *callbackSink) IngestBatch(ts []*tuple.Tuple) {
	for _, t := range ts {
		s.b.deliver(t)
	}
}
func (s *callbackSink) Source() *ops.Source { return nil }
func (s *callbackSink) Close() {
	if s.b.onClose != nil {
		s.b.onClose()
	}
}
