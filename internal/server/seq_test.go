package server_test

import (
	"testing"

	"repro/internal/server"
	"repro/internal/tuple"
	"repro/internal/wire"
)

func mkSensor(ts tuple.Time) *tuple.Tuple {
	return tuple.NewData(ts, tuple.Int(int64(ts)), tuple.Float(1))
}

// TestSeqDedupe drives the sequenced-ingest protocol over raw wire frames:
// the server must seed its watermark from Options.InitialSeq (a restored
// checkpoint cut), report it in BIND_ACK, drop whole and partial resend
// overlaps, and advance the watermark over what it admits.
func TestSeqDedupe(t *testing.T) {
	back := newRecBackend(sensorSchema(), nil)
	srv, err := server.Listen("127.0.0.1:0", server.Options{
		Backend:    back,
		InitialSeq: map[string]uint64{"sensors": 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tc := dialWire(t, srv.Addr().String())
	defer tc.conn.Close()
	tc.send(wire.Hello{Version: wire.Version, Flags: wire.CapSeq, Name: "seq", Clock: 0})
	ack, ok := tc.recv().(wire.HelloAck)
	if !ok {
		t.Fatal("no HELLO_ACK")
	}
	if ack.Flags&wire.CapSeq == 0 {
		t.Fatalf("server did not grant CapSeq (flags %x)", ack.Flags)
	}
	tc.send(wire.Bind{ID: 1, Stream: "sensors", TS: tuple.External})
	bak, ok := tc.recv().(wire.BindAck)
	if !ok || bak.Err != "" {
		t.Fatalf("bind failed: %+v", bak)
	}
	if bak.Seq != 3 {
		t.Fatalf("BIND_ACK watermark = %d, want 3 (the seeded cut)", bak.Seq)
	}

	// A batch overlapping the watermark: seqs 1..5, of which 1..3 were
	// applied before the "crash" — only 4 and 5 may land.
	batch := []*tuple.Tuple{mkSensor(10), mkSensor(20), mkSensor(30), mkSensor(40), mkSensor(50)}
	tc.send(wire.Tuples{ID: 1, Batch: batch, Seq: 1})
	// The identical resend: a full duplicate, nothing lands.
	batch2 := []*tuple.Tuple{mkSensor(10), mkSensor(20), mkSensor(30), mkSensor(40), mkSensor(50)}
	tc.send(wire.Tuples{ID: 1, Batch: batch2, Seq: 1})
	// A fresh single tuple, then its duplicate resend.
	tc.send(wire.Tuple{ID: 1, T: mkSensor(60), Seq: 6})
	tc.send(wire.Tuple{ID: 1, T: mkSensor(60), Seq: 6})
	tc.send(wire.EOS{ID: 1})

	waitCounts(t, back, 3, 0, true)
	back.mu.Lock()
	defer back.mu.Unlock()
	var got []tuple.Time
	for _, d := range back.data {
		got = append(got, d.Ts)
	}
	want := []tuple.Time{40, 50, 60}
	if len(got) != len(want) {
		t.Fatalf("applied timestamps %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("applied timestamps %v, want %v", got, want)
		}
	}
}

// TestSeqNotGrantedWithoutOffer confirms an unsequenced session is untouched
// by the dedupe path: no watermark in BIND_ACK, nothing suppressed.
func TestSeqNotGrantedWithoutOffer(t *testing.T) {
	back := newRecBackend(sensorSchema(), nil)
	srv, err := server.Listen("127.0.0.1:0", server.Options{
		Backend:    back,
		InitialSeq: map[string]uint64{"sensors": 99},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tc := dialWire(t, srv.Addr().String())
	defer tc.conn.Close()
	tc.send(wire.Hello{Version: wire.Version, Name: "plain", Clock: 0})
	if ack, ok := tc.recv().(wire.HelloAck); !ok || ack.Flags&wire.CapSeq != 0 {
		t.Fatalf("unexpected HELLO_ACK: %+v", ack)
	}
	tc.send(wire.Bind{ID: 1, Stream: "sensors", TS: tuple.External})
	bak, ok := tc.recv().(wire.BindAck)
	if !ok || bak.Err != "" || bak.Seq != 0 {
		t.Fatalf("BIND_ACK = %+v, want no watermark", bak)
	}
	tc.send(wire.Tuple{ID: 1, T: mkSensor(10)})
	tc.send(wire.EOS{ID: 1})
	waitCounts(t, back, 1, 0, true)
}
