// Package server is the networked ingestion subsystem: a session-managed
// TCP server that speaks the internal/wire protocol and feeds tuples into a
// stream engine. It is what turns streamd from a process that replays files
// into a network DSMS node.
//
// One connection is one session. A binary session opens with the wire magic
// and a HELLO, then BINDs any number of declared streams and interleaves
// TUPLE/TUPLES/PUNCT frames on them. Three pieces of timestamp management
// from the paper live here rather than in the engine:
//
//   - Skew measurement (§5): every HELLO and HEARTBEAT carries the sender's
//     clock; the session's SkewEstimator turns the offset spread into a
//     measured per-connection skew bound and widens the source's δ with it
//     (ops.Source.RaiseDelta), so on-demand ETS for a remote stream is
//     computed from the link actually in use, not from a declared constant.
//   - Punctuation transport (§3): PUNCT frames from clients become real
//     punctuation tuples in the stream — a remote wrapper can promise
//     bounds exactly like an in-process one.
//   - Flow control as demand: the server grants tuple credits (HELLO_ACK,
//     then DEMAND top-ups as it consumes); when the engine backpressures,
//     the session stops reading and stops granting, so the client's window
//     drains and the pressure reaches the true producer.
//
// A connection that does not start with the magic falls back to text mode —
// one newline-delimited stream decoded by Options.Text (the legacy CSV
// wrapper path) — so pre-protocol feeds keep working on the same port.
package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/tuple"
)

// DefaultCredits is the per-session tuple credit window when Options.Credits
// is zero.
const DefaultCredits = 1 << 16

// TupleDecoder decodes one tuple per call from some text format; it returns
// an error (conventionally io.EOF) when the input ends. wrappers.CSVScanner
// satisfies it.
type TupleDecoder interface {
	Next() (*tuple.Tuple, error)
}

// TextOptions enables the legacy text fallback: connections that do not
// present the wire magic are decoded as one unframed text stream.
type TextOptions struct {
	// Stream is the declared stream every text connection feeds.
	Stream string
	// NewDecoder builds the decoder for one connection, e.g. a CSV scanner.
	NewDecoder func(r io.Reader, sch *tuple.Schema) TupleDecoder
}

// PlanHandler accepts distributed-execution control frames (PLAN_DEPLOY /
// PLAN_START / PLAN_STOP). internal/dist.Worker implements it; a server
// without one rejects plan frames with a PLAN_ACK error instead of killing
// the session, so a coordinator probing a non-worker gets a clean
// diagnostic. Handlers run on the session's reader goroutine — a deploy may
// compile a query graph, and blocking that one connection is acceptable
// (control connections carry no data).
type PlanHandler interface {
	// PlanDeploy decodes and instantiates a plan fragment; the fragment must
	// be ready to accept link binds when it returns.
	PlanDeploy(plan uint64, spec []byte) error
	// PlanStart begins execution of a deployed fragment (egress links dial
	// out from here).
	PlanStart(plan uint64) error
	// PlanStop tears a deployed fragment down.
	PlanStop(plan uint64) error
}

// Options configures a Server.
type Options struct {
	// Backend resolves stream bindings (required).
	Backend Backend
	// Plans, when non-nil, accepts distributed-execution control frames on
	// any session (a worker streamd). Nil rejects them per frame.
	Plans PlanHandler
	// Metrics receives the server's sm_net_* instruments; nil gives the
	// server a private registry (reachable via Server.Registry).
	Metrics *metrics.Registry
	// Trace, when non-nil, receives EvNetSessionOpen/Close/Bind/Demand/Skew
	// events.
	Trace *metrics.Tracer
	// Spans, when non-nil, enables punctuation-propagation tracing across
	// the wire: sessions grant wire.CapTrace, PUNCT frames may carry trace
	// context, and the network hop (client send → server receive) is
	// recorded into the collector with the client's send instant mapped
	// onto the server clock by the session's skew estimate. Share the
	// collector (and Options.Now) with the backing engine so the wire hop
	// and the in-graph hops land on one timeline.
	Spans *obs.Collector
	// Credits is the tuple credit window granted per session (default
	// DefaultCredits). The server grants the full window at HELLO_ACK and
	// tops it up with DEMAND frames once half is consumed.
	Credits uint32
	// Text, when non-nil, enables the text-mode fallback.
	Text *TextOptions
	// Now supplies the server clock in µs (skew sampling, trace stamps);
	// defaults to wall time since server start. Use the engine's clock so
	// trace timelines line up.
	Now func() tuple.Time
	// HeartbeatEvery asks clients (via HELLO_ACK flags — advisory) and the
	// drain logic for a heartbeat cadence; also the read-deadline grace
	// applied during Drain. Default 1s.
	HeartbeatEvery time.Duration
	// InitialSeq seeds each stream's ingest-sequence dedupe watermark (see
	// wire.CapSeq) when the stream first opens — after a checkpoint restore,
	// the restored source sequence numbers go here, so reconnecting clients
	// that resend their retained batches have everything at or below the
	// snapshot cut suppressed instead of double-applied.
	InitialSeq map[string]uint64
}

// Server accepts and runs ingest sessions.
type Server struct {
	ln      net.Listener
	opts    Options
	now     func() tuple.Time
	credits uint32

	reg   *metrics.Registry
	trace *metrics.Tracer
	spans *obs.Collector
	m     serverMetrics

	mu       sync.Mutex
	sessions map[uint64]*session
	streams  map[string]*streamState
	nextSID  uint64

	draining atomic.Bool
	closed   atomic.Bool
	wg       sync.WaitGroup
}

// streamState is the server-wide registry entry for one bound stream.
// Sessions share it: the first bind opens the backend sink, later binds
// reference it, and the sink closes (EOS downstream) only when the last
// reference is gone and some session asked for EOS.
type streamState struct {
	name string
	sch  *tuple.Schema
	sink StreamSink
	src  *ops.Source

	refs      int
	eosWanted bool
	closed    bool

	// ingested is the stream's sequence dedupe watermark: the highest
	// client-assigned sequence number applied so far (wire.CapSeq). Seeded
	// from Options.InitialSeq at open; sessions advance it as they admit
	// sequenced frames and report it in BIND_ACK so reconnecting producers
	// trim their resend batches.
	ingested atomic.Uint64

	tuples *metrics.Counter64
	skewUs *metrics.Gauge64
}

// admitSeq checks the sequence range [seq, seq+n) against the stream's
// dedupe watermark and advances the watermark over it. It returns how many
// leading tuples of the range are duplicates (already applied under an
// earlier session or before a crash) and must be dropped; the remaining
// suffix is the caller's to ingest. Dedupe assumes one sequenced producer
// per stream — concurrent sequenced writers would interleave their counters.
func (st *streamState) admitSeq(seq uint64, n int) int {
	last := seq + uint64(n) - 1
	for {
		cur := st.ingested.Load()
		if last <= cur {
			return n // whole range already applied
		}
		if st.ingested.CompareAndSwap(cur, last) {
			if seq > cur {
				return 0
			}
			return int(cur - seq + 1)
		}
	}
}

type serverMetrics struct {
	sessions     *metrics.Counter64
	sessionsLive *metrics.Gauge64
	sessionsText *metrics.Counter64
	framesIn     *metrics.Counter64
	framesOut    *metrics.Counter64
	bytesIn      *metrics.Counter64
	bytesOut     *metrics.Counter64
	tuplesIn     *metrics.Counter64
	tuplesDedup  *metrics.Counter64
	punctIn      *metrics.Counter64
	punctIgnored *metrics.Counter64
	heartbeats   *metrics.Counter64
	binds        *metrics.Counter64
	eos          *metrics.Counter64
	demandSent   *metrics.Counter64
	credits      *metrics.Counter64
	errors       *metrics.Counter64
	planOps      *metrics.Counter64
	planErrors   *metrics.Counter64
}

// Listen binds addr and starts accepting sessions.
func Listen(addr string, opts Options) (*Server, error) {
	if opts.Backend == nil {
		return nil, errors.New("server: Options.Backend is required")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:       ln,
		opts:     opts,
		trace:    opts.Trace,
		spans:    opts.Spans,
		credits:  opts.Credits,
		sessions: make(map[uint64]*session),
		streams:  make(map[string]*streamState),
	}
	if s.credits == 0 {
		s.credits = DefaultCredits
	}
	if opts.Now != nil {
		s.now = opts.Now
	} else {
		start := time.Now()
		s.now = func() tuple.Time { return tuple.FromDuration(time.Since(start)) }
	}
	if s.opts.HeartbeatEvery <= 0 {
		s.opts.HeartbeatEvery = time.Second
	}
	s.reg = opts.Metrics
	if s.reg == nil {
		s.reg = metrics.NewRegistry()
	}
	m := &s.m
	m.sessions = s.reg.Counter("sm_net_sessions_total")
	m.sessionsLive = s.reg.Gauge("sm_net_sessions_active")
	m.sessionsText = s.reg.Counter("sm_net_sessions_text_total")
	m.framesIn = s.reg.Counter("sm_net_frames_in_total")
	m.framesOut = s.reg.Counter("sm_net_frames_out_total")
	m.bytesIn = s.reg.Counter("sm_net_bytes_in_total")
	m.bytesOut = s.reg.Counter("sm_net_bytes_out_total")
	m.tuplesIn = s.reg.Counter("sm_net_tuples_in_total")
	m.tuplesDedup = s.reg.Counter("sm_net_tuples_deduped_total")
	m.punctIn = s.reg.Counter("sm_net_punct_in_total")
	m.punctIgnored = s.reg.Counter("sm_net_punct_ignored_total")
	m.heartbeats = s.reg.Counter("sm_net_heartbeats_total")
	m.binds = s.reg.Counter("sm_net_binds_total")
	m.eos = s.reg.Counter("sm_net_eos_total")
	m.demandSent = s.reg.Counter("sm_net_demand_sent_total")
	m.credits = s.reg.Counter("sm_net_credits_granted_total")
	m.errors = s.reg.Counter("sm_net_errors_total")
	m.planOps = s.reg.Counter("sm_net_plan_ops_total")
	m.planErrors = s.reg.Counter("sm_net_plan_errors_total")
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Registry exposes the registry the server's instruments live in.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Sessions reports the number of live sessions.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if s.draining.Load() {
			conn.Close()
			continue
		}
		s.mu.Lock()
		s.nextSID++
		sid := s.nextSID
		sess := newSession(s, sid, conn)
		s.sessions[sid] = sess
		s.mu.Unlock()
		s.m.sessions.Inc()
		s.m.sessionsLive.Add(1)
		if s.trace != nil {
			s.trace.Emit(metrics.EvNetSessionOpen, "server", s.now(), int64(sid))
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sess.run()
			s.mu.Lock()
			delete(s.sessions, sid)
			s.mu.Unlock()
			s.m.sessionsLive.Add(-1)
			if s.trace != nil {
				s.trace.Emit(metrics.EvNetSessionClose, "server", s.now(), int64(sid))
			}
		}()
	}
}

// openStream resolves name through the backend, or references the existing
// server-wide state. Called from session goroutines.
func (s *Server) openStream(name string) (*streamState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.streams[name]; ok {
		if st.closed {
			return nil, fmt.Errorf("server: stream %q already closed", name)
		}
		st.refs++
		return st, nil
	}
	sch, sink, err := s.opts.Backend.Open(name)
	if err != nil {
		return nil, err
	}
	st := &streamState{
		name:   name,
		sch:    sch,
		sink:   sink,
		src:    sink.Source(),
		refs:   1,
		tuples: s.reg.Counter(fmt.Sprintf("sm_net_stream_tuples_total{stream=%s}", name)),
		skewUs: s.reg.Gauge(fmt.Sprintf("sm_net_skew_delta_us{stream=%s}", name)),
	}
	st.ingested.Store(s.opts.InitialSeq[name])
	if st.src != nil {
		st.skewUs.Set(int64(st.src.Delta()))
	}
	s.streams[name] = st
	return st, nil
}

// releaseStream drops one reference. eos records that the releasing session
// sent an explicit EOS for the stream; the sink closes when the last
// reference goes away and at least one session wanted EOS — a session that
// merely disconnects leaves the stream open for the engine's liveness
// watchdog to reason about.
func (s *Server) releaseStream(st *streamState, eos bool) {
	var closeSink bool
	s.mu.Lock()
	st.refs--
	if eos {
		st.eosWanted = true
	}
	if st.refs <= 0 && st.eosWanted && !st.closed {
		st.closed = true
		closeSink = true
	}
	s.mu.Unlock()
	if closeSink {
		s.m.eos.Inc()
		st.sink.Close()
	}
}

// Drain performs a graceful network shutdown: stop accepting, tell every
// live session the server is draining (ERROR/Draining), give them grace to
// finish, then close every still-open stream so the engine sees EOS — the
// final, maximal ETS — and can drain its graph. It returns the number of
// sessions that had to be cut off at the deadline.
func (s *Server) Drain(grace time.Duration) int {
	if !s.draining.CompareAndSwap(false, true) {
		return 0
	}
	s.ln.Close()
	if grace <= 0 {
		grace = s.opts.HeartbeatEvery
	}
	deadline := time.Now().Add(grace)
	s.mu.Lock()
	live := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.Unlock()
	for _, sess := range live {
		sess.beginDrain(deadline)
	}
	// Sessions exit on their own (client EOS/close) or at the read deadline.
	cut := 0
	for _, sess := range live {
		if !sess.waitUntil(deadline) {
			sess.conn.Close()
			cut++
			sess.waitUntil(deadline.Add(grace))
		}
	}
	// Whatever streams are still open, close now: drain is a commitment to
	// shut down, and EOS is the one bound that lets downstream finish.
	s.mu.Lock()
	var toClose []*streamState
	for _, st := range s.streams {
		if !st.closed {
			st.closed = true
			toClose = append(toClose, st)
		}
	}
	s.mu.Unlock()
	for _, st := range toClose {
		s.m.eos.Inc()
		st.sink.Close()
	}
	return cut
}

// Close stops the server immediately: the listener closes, every session's
// connection is cut, and Close blocks until the handlers return. Streams are
// not EOS'd — use Drain first for a graceful stop.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := s.ln.Close()
	s.mu.Lock()
	for _, sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}
