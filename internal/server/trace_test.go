package server_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/server"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// traceBackend records the trace IDs riding injected punctuations.
type traceBackend struct {
	sch *tuple.Schema

	mu     sync.Mutex
	traces []uint64
}

func (b *traceBackend) Open(name string) (*tuple.Schema, server.StreamSink, error) {
	if name != b.sch.Name {
		return nil, nil, fmt.Errorf("unknown stream %q", name)
	}
	return b.sch, b, nil
}

func (b *traceBackend) Ingest(t *tuple.Tuple) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t.IsPunct() {
		b.traces = append(b.traces, t.Trace)
	}
}

func (b *traceBackend) IngestBatch(ts []*tuple.Tuple) {
	for _, t := range ts {
		b.Ingest(t)
	}
}

func (b *traceBackend) Source() *ops.Source { return nil }

func (b *traceBackend) Close() {}

func (b *traceBackend) puncts() []uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]uint64(nil), b.traces...)
}

// TestTracedPunctSpans drives a traced PUNCT through a live session and
// checks both halves of the contract: the network hop lands in the span
// collector under the session's node name, and the trace ID rides the
// injected punctuation into the backend.
func TestTracedPunctSpans(t *testing.T) {
	back := &traceBackend{sch: sensorSchema()}
	col := obs.New(256)
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back, Spans: col})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tc := dialWire(t, srv.Addr().String())
	defer tc.conn.Close()
	tc.send(wire.Hello{Version: wire.Version, Name: "tracer", Clock: 1000, Flags: wire.CapTrace})
	ack, ok := tc.recv().(wire.HelloAck)
	if !ok {
		t.Fatalf("expected HELLO_ACK")
	}
	if ack.Flags&wire.CapTrace == 0 {
		t.Fatalf("server did not grant CapTrace: flags=%#x", ack.Flags)
	}
	if back := tc.bind(1, "sensors", tuple.External, 500); back.Err != "" {
		t.Fatalf("bind: %s", back.Err)
	}

	const trace = 0xfeed0042
	tc.send(wire.Punct{ID: 1, TS: tuple.External, ETS: 7777, Trace: trace, Clock: 2000})

	deadline := time.Now().Add(5 * time.Second)
	for {
		if ps := back.puncts(); len(ps) == 1 {
			if ps[0] != trace {
				t.Fatalf("injected punct trace = %#x, want %#x", ps[0], trace)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for punct")
		}
		time.Sleep(time.Millisecond)
	}

	// The HELLO clock is the first skew sample, so both network phases must
	// be present on the session's synthetic node, with the mapped send
	// instant near the receive instant (exact ordering is only as good as
	// the skew estimate, so allow a generous window).
	sess := fmt.Sprintf("session:%d", ack.Session)
	var sendAt, recvAt int64
	var sawSend, sawRecv bool
	for _, ev := range col.Events(0) {
		if ev.Trace != trace {
			continue
		}
		if ev.Node != sess {
			t.Errorf("span node = %q, want %q", ev.Node, sess)
		}
		if ev.Ts != 7777 {
			t.Errorf("span ts = %d, want 7777", ev.Ts)
		}
		switch ev.Phase {
		case obs.PhaseNetSend:
			sawSend, sendAt = true, ev.At
		case obs.PhaseNetRecv:
			sawRecv, recvAt = true, ev.At
		}
	}
	if !sawSend || !sawRecv {
		t.Fatalf("missing network phases: send=%v recv=%v", sawSend, sawRecv)
	}
	if d := sendAt - recvAt; d < -5e6 || d > 5e6 {
		t.Errorf("mapped net send %d not within 5s of recv %d", sendAt, recvAt)
	}
}

// TestTraceCapRequiresCollector pins the negotiation rule: without a span
// collector the server must not grant CapTrace, and a traced PUNCT still
// ingests cleanly with the trace stripped.
func TestTraceCapRequiresCollector(t *testing.T) {
	back := &traceBackend{sch: sensorSchema()}
	srv, err := server.Listen("127.0.0.1:0", server.Options{Backend: back})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tc := dialWire(t, srv.Addr().String())
	defer tc.conn.Close()
	tc.send(wire.Hello{Version: wire.Version, Name: "tracer", Clock: 1000, Flags: wire.CapTrace})
	ack, ok := tc.recv().(wire.HelloAck)
	if !ok {
		t.Fatalf("expected HELLO_ACK")
	}
	if ack.Flags&wire.CapTrace != 0 {
		t.Fatalf("CapTrace granted without a collector: flags=%#x", ack.Flags)
	}
	if back := tc.bind(1, "sensors", tuple.External, 500); back.Err != "" {
		t.Fatalf("bind: %s", back.Err)
	}
	tc.send(wire.Punct{ID: 1, TS: tuple.External, ETS: 42, Trace: 0xbeef, Clock: 9})

	deadline := time.Now().Add(5 * time.Second)
	for {
		if ps := back.puncts(); len(ps) == 1 {
			if ps[0] != 0 {
				t.Fatalf("punct trace = %#x, want 0 (cap not granted)", ps[0])
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for punct")
		}
		time.Sleep(time.Millisecond)
	}
}
