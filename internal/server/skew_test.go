package server_test

import (
	"sync/atomic"
	"testing"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/server"
	"repro/internal/tuple"
	"repro/internal/wire"
)

func TestSkewEstimatorSpread(t *testing.T) {
	var e server.SkewEstimator
	if e.Spread() != 0 {
		t.Fatal("spread before samples")
	}
	e.Observe(100, 150) // offset +50
	if e.Spread() != 0 {
		t.Fatal("one sample fixes the epoch, bounds nothing")
	}
	e.Observe(200, 230) // offset +30
	if got := e.Spread(); got != 20 {
		t.Fatalf("spread = %d, want 20", got)
	}
	e.Observe(300, 390) // offset +90
	if got := e.Spread(); got != 60 {
		t.Fatalf("spread = %d, want 60", got)
	}
	if e.Samples() != 3 {
		t.Fatalf("samples = %d", e.Samples())
	}
}

// srcBackend ingests straight into a source operator, using the server's
// clock for arrival stamps — the slice of engine behaviour the skew test
// needs.
type srcBackend struct {
	sch *tuple.Schema
	src *ops.Source
	now func() tuple.Time
}

func (b *srcBackend) Open(string) (*tuple.Schema, server.StreamSink, error) {
	return b.sch, b, nil
}
func (b *srcBackend) Ingest(t *tuple.Tuple) {
	if t.IsPunct() {
		b.src.Offer(t)
		return
	}
	b.src.Ingest(t, b.now())
}
func (b *srcBackend) IngestBatch(ts []*tuple.Tuple) {
	for _, t := range ts {
		b.Ingest(t)
	}
}
func (b *srcBackend) Source() *ops.Source { return b.src }
func (b *srcBackend) Close()              { b.src.Offer(tuple.EOS()) }

// TestSkewWidensDeltaAndETSStaysLowerBound drives a session over loopback
// with fault-injected clock jitter and fully virtual clocks:
//
//  1. Calibration: the client heartbeats with a jittered clock (seeded
//     fault.Injector, ±400µs); the session's estimator must widen the
//     source's δ to exactly the injected offset spread.
//  2. Validity: the client then streams tuples whose external timestamps
//     carry the same jitter sequence, and right before each arrival the
//     test asks the source for an on-demand ETS. Every promise must be a
//     lower bound on every timestamp still to come — the paper's
//     correctness condition for external-timestamp ETS.
//
// The test also recomputes each promise with the *unwidened* δ=0 and
// requires at least one would-be violation, proving the measured widening
// is what keeps the bound honest on this jitter sequence.
func TestSkewWidensDeltaAndETSStaysLowerBound(t *testing.T) {
	const (
		base    = int64(1_000_000) // virtual epoch, µs
		spacing = int64(10_000)    // event spacing, µs
		lead    = int64(100)       // ETS query lead before each arrival, µs
		jitMax  = tuple.Time(400)
		n       = 40
	)
	inj := fault.New(fault.Config{Seed: 7, SkewProb: 1, SkewMax: jitMax})
	jit := make([]int64, n)
	minJ, maxJ := int64(0), int64(0)
	for i := range jit {
		jit[i] = int64(inj.SkewTs(tuple.Time(base))) - base
		if i == 0 || jit[i] < minJ {
			minJ = jit[i]
		}
		if i == 0 || jit[i] > maxJ {
			maxJ = jit[i]
		}
	}
	spread := maxJ - minJ

	var snow atomic.Int64 // the server's virtual clock
	snow.Store(base)
	now := func() tuple.Time { return tuple.Time(snow.Load()) }
	sch := sensorSchema()
	src := ops.NewSource("sensors", sch, 0)
	trace := metrics.NewTracer(256)
	srv, err := server.Listen("127.0.0.1:0", server.Options{
		Backend: &srcBackend{sch: sch, src: src, now: now},
		Now:     now,
		Trace:   trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tc := dialWire(t, srv.Addr().String())
	defer tc.conn.Close()
	tc.hello(snow.Load()) // zero-offset first sample
	if ack := tc.bind(1, "sensors", tuple.External, 0); ack.Err != "" {
		t.Fatalf("bind: %s", ack.Err)
	}
	// ping waits until the session has processed every frame sent so far: a
	// duplicate BIND always earns a synchronous (error) ack, and the session
	// handles frames in order, so the reply is a barrier.
	ping := func() {
		t.Helper()
		tc.send(wire.Bind{ID: 1, Stream: "sensors", TS: tuple.External})
		if ack, ok := tc.recv().(wire.BindAck); !ok || ack.Err == "" {
			t.Fatalf("ping got %+v", ack)
		}
	}

	// Phase 1: calibrate. Client clock = server clock + jitter.
	for i, j := range jit {
		sNow := base + int64(i+1)*spacing
		snow.Store(sNow)
		tc.send(wire.Heartbeat{Clock: sNow + j})
		ping()
	}
	// The HELLO sample had offset 0 and jitter is centred on 0, so the
	// session's spread is over {0} ∪ {-jit}: exactly maxJ - minJ when the
	// jitter straddles zero (it does for this seed).
	if minJ > 0 || maxJ < 0 {
		t.Fatalf("seed no longer straddles zero: jitter [%d,%d]", minJ, maxJ)
	}
	if got := src.Delta(); int64(got) != spread {
		t.Fatalf("source δ = %d, want measured spread %d", got, spread)
	}
	if trace.Count(metrics.EvNetSkew) == 0 {
		t.Error("no EvNetSkew trace events emitted")
	}

	// Phase 2: validity. Step the source operator ourselves so its ETS
	// estimator observes arrivals on a controlled clock.
	ctx := &ops.Ctx{Emit: func(*tuple.Tuple) {}, Now: now}
	step := func() {
		for src.More(ctx) {
			src.Exec(ctx)
		}
	}
	phase2 := base + int64(n+2)*spacing
	type promise struct {
		ets   tuple.Time
		naive tuple.Time // what δ=0 would have promised
		idx   int        // issued before arrival idx
	}
	var promises []promise
	var ts []tuple.Time
	for k, j := range jit {
		arrive := phase2 + int64(k)*spacing
		ts = append(ts, tuple.Time(arrive+j))
		if k > 0 {
			// Query the promise just before the next arrival.
			snow.Store(arrive - lead)
			if ets, ok := src.OnDemandETS(now()); ok {
				naive := ets.Ts + src.Delta() // undo the widening: δ=0 promise
				promises = append(promises, promise{ets: ets.Ts, naive: naive, idx: k})
				tuple.Put(ets)
			}
		}
		snow.Store(arrive)
		tc.send(wire.Tuple{ID: 1, T: tuple.NewData(ts[k], tuple.Int(int64(k)), tuple.Float(1))})
		ping()
		step()
	}
	if len(promises) < n/2 {
		t.Fatalf("only %d promises issued; the gate starved the test", len(promises))
	}
	naiveViolations := 0
	for _, p := range promises {
		for k := p.idx; k < n; k++ {
			if ts[k] < p.ets {
				t.Fatalf("ETS %d (before arrival %d) exceeds later timestamp %d (#%d): not a lower bound",
					p.ets, p.idx, ts[k], k)
			}
			if ts[k] < p.naive {
				naiveViolations++
			}
		}
	}
	if naiveViolations == 0 {
		t.Error("δ=0 promises were all valid too: jitter sequence exercises nothing")
	}
}
