package cql

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tuple"
)

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	cat := NewCatalog()
	for _, ddl := range []string{
		"CREATE STREAM a (k int, v float)",
		"CREATE STREAM b (k int, w float)",
		"CREATE STREAM sensors (id int, temp float, loc string)",
		"CREATE STREAM la (x int) TIMESTAMP LATENT",
		"CREATE STREAM lb (x int) TIMESTAMP LATENT",
	} {
		st := mustParse(t, ddl)
		if err := cat.Register(SchemaFromCreate(st.Create)); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// runQuery builds the plan into a fresh graph with sources, feeds the given
// tuples per stream (pre-stamped), runs the engine to quiescence, and
// returns the sink output.
func runQuery(t *testing.T, cat *Catalog, q string, feed map[string][]*tuple.Tuple) []*tuple.Tuple {
	return runQueryOpts(t, cat, q, feed, PlanOptions{})
}

func runQueryOpts(t *testing.T, cat *Catalog, q string, feed map[string][]*tuple.Tuple, opts PlanOptions) []*tuple.Tuple {
	t.Helper()
	st := mustParse(t, q)
	plan, err := PlanSelectOptions(st.Select, cat, opts)
	if err != nil {
		t.Fatalf("PlanSelect(%q): %v", q, err)
	}
	g := graph.New("q")
	sources := map[string]graph.NodeID{}
	srcOps := map[string]*ops.Source{}
	for _, sch := range plan.Streams {
		if _, ok := sources[sch.Name]; ok {
			continue
		}
		src := ops.NewSource(sch.Name, sch, 0)
		sources[sch.Name] = g.AddNode(src)
		srcOps[sch.Name] = src
	}
	outNode, err := plan.Build(g, sources)
	if err != nil {
		t.Fatalf("Build(%q): %v", q, err)
	}
	var got []*tuple.Tuple
	g.AddNode(ops.NewSink("sink", func(tp *tuple.Tuple, _ tuple.Time) { got = append(got, tp) }), outNode)

	clock := tuple.Time(0)
	e := exec.MustNew(g, nil, func() tuple.Time { return clock })
	for name, tuples := range feed {
		src, ok := srcOps[name]
		if !ok {
			t.Fatalf("feed for unknown stream %q", name)
		}
		for _, tp := range tuples {
			src.Offer(tp)
		}
		src.Offer(tuple.EOS())
	}
	e.Run(100000)
	return got
}

func row(ts tuple.Time, vals ...tuple.Value) *tuple.Tuple { return tuple.NewData(ts, vals...) }

func TestPlanFilterProjection(t *testing.T) {
	cat := testCatalog(t)
	out := runQuery(t, cat,
		"SELECT loc, temp FROM sensors WHERE temp > 30 AND loc != 'ignore'",
		map[string][]*tuple.Tuple{
			"sensors": {
				row(1, tuple.Int(1), tuple.Float(35), tuple.String_("lab")),
				row(2, tuple.Int(2), tuple.Float(25), tuple.String_("lab")),
				row(3, tuple.Int(3), tuple.Float(40), tuple.String_("ignore")),
				row(4, tuple.Int(4), tuple.Float(31), tuple.String_("roof")),
			},
		})
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	if out[0].Vals[0].AsString() != "lab" || out[0].Vals[1].AsFloat() != 35 {
		t.Errorf("row 0 = %v", out[0])
	}
	if out[1].Vals[0].AsString() != "roof" {
		t.Errorf("row 1 = %v", out[1])
	}
}

func TestPlanComputedColumns(t *testing.T) {
	cat := testCatalog(t)
	out := runQuery(t, cat,
		"SELECT v * 2.0 AS double_v, k + 1 FROM a",
		map[string][]*tuple.Tuple{
			"a": {row(1, tuple.Int(10), tuple.Float(1.5))},
		})
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	if out[0].Vals[0].AsFloat() != 3.0 || out[0].Vals[1].AsInt() != 11 {
		t.Errorf("computed = %v", out[0].Vals)
	}
}

func TestPlanUnionOrdersByTimestamp(t *testing.T) {
	cat := testCatalog(t)
	out := runQuery(t, cat,
		"SELECT * FROM a UNION b",
		map[string][]*tuple.Tuple{
			"a": {row(1, tuple.Int(1), tuple.Float(0)), row(5, tuple.Int(5), tuple.Float(0))},
			"b": {row(2, tuple.Int(2), tuple.Float(0)), row(9, tuple.Int(9), tuple.Float(0))},
		})
	if len(out) != 4 {
		t.Fatalf("out = %v", out)
	}
	for i, want := range []tuple.Time{1, 2, 5, 9} {
		if out[i].Ts != want {
			t.Fatalf("order: %v", out)
		}
	}
}

func TestPlanUnionIncompatible(t *testing.T) {
	cat := testCatalog(t)
	st := mustParse(t, "SELECT * FROM a UNION sensors")
	if _, err := PlanSelect(st.Select, cat); err == nil {
		t.Fatal("incompatible union accepted")
	}
	st = mustParse(t, "SELECT * FROM a UNION la")
	if _, err := PlanSelect(st.Select, cat); err == nil {
		t.Fatal("mixed latent/timestamped union accepted")
	}
}

func TestPlanLatentUnion(t *testing.T) {
	cat := testCatalog(t)
	out := runQuery(t, cat,
		"SELECT * FROM la UNION lb",
		map[string][]*tuple.Tuple{
			"la": {row(tuple.MinTime, tuple.Int(1))},
			"lb": {row(tuple.MinTime, tuple.Int(2))},
		})
	if len(out) != 2 {
		t.Fatalf("latent union out = %v", out)
	}
}

func TestPlanJoin(t *testing.T) {
	cat := testCatalog(t)
	out := runQuery(t, cat,
		"SELECT a.k, v, w FROM a JOIN b ON a.k = b.k WINDOW 10s",
		map[string][]*tuple.Tuple{
			"a": {row(1*tuple.Second, tuple.Int(7), tuple.Float(1.0))},
			"b": {
				row(2*tuple.Second, tuple.Int(7), tuple.Float(2.0)),
				row(3*tuple.Second, tuple.Int(8), tuple.Float(3.0)),
			},
		})
	if len(out) != 1 {
		t.Fatalf("join out = %v", out)
	}
	vals := out[0].Vals
	if vals[0].AsInt() != 7 || vals[1].AsFloat() != 1.0 || vals[2].AsFloat() != 2.0 {
		t.Errorf("joined row = %v", vals)
	}
}

func TestPlanJoinRequiresWindow(t *testing.T) {
	cat := testCatalog(t)
	st := mustParse(t, "SELECT * FROM a JOIN b ON a.k = b.k")
	if _, err := PlanSelect(st.Select, cat); err == nil {
		t.Fatal("join without window accepted")
	}
}

func TestPlanAggregate(t *testing.T) {
	cat := testCatalog(t)
	out := runQuery(t, cat,
		"SELECT loc, count(*) AS n, avg(temp) FROM sensors GROUP BY loc WINDOW 10s",
		map[string][]*tuple.Tuple{
			"sensors": {
				row(1*tuple.Second, tuple.Int(1), tuple.Float(10), tuple.String_("lab")),
				row(2*tuple.Second, tuple.Int(2), tuple.Float(20), tuple.String_("lab")),
				row(3*tuple.Second, tuple.Int(3), tuple.Float(50), tuple.String_("roof")),
				// next window forces the first to close
				row(12*tuple.Second, tuple.Int(4), tuple.Float(1), tuple.String_("lab")),
			},
		})
	// EOS flushes the second window too.
	if len(out) != 3 {
		t.Fatalf("agg out = %v", out)
	}
	lab := out[0]
	if lab.Vals[0].AsString() != "lab" || lab.Vals[1].AsInt() != 2 || lab.Vals[2].AsFloat() != 15 {
		t.Errorf("lab row = %v", lab.Vals)
	}
	roof := out[1]
	if roof.Vals[0].AsString() != "roof" || roof.Vals[1].AsInt() != 1 {
		t.Errorf("roof row = %v", roof.Vals)
	}
	if out[0].Ts != 10*tuple.Second || out[2].Ts != 20*tuple.Second {
		t.Errorf("window close timestamps: %v, %v", out[0].Ts, out[2].Ts)
	}
}

func TestPlanAggregateErrors(t *testing.T) {
	cat := testCatalog(t)
	for _, q := range []string{
		"SELECT count(*) FROM sensors",                               // no window
		"SELECT temp, count(*) FROM sensors GROUP BY loc WINDOW 10s", // first item not group col
		"SELECT loc, temp FROM sensors GROUP BY loc WINDOW 10s",      // non-agg item... (temp)
		"SELECT loc, sum(*) FROM sensors GROUP BY loc WINDOW 10s",    // sum needs a column
		"SELECT loc, median(temp) FROM sensors GROUP BY loc WINDOW 10s",
		"SELECT count(*) FROM sensors WHERE ghost > 1 WINDOW 10s", // unknown column
	} {
		st := mustParse(t, q)
		if _, err := PlanSelect(st.Select, cat); err == nil {
			t.Errorf("PlanSelect(%q) should fail", q)
		}
	}
}

func TestPlanUnknownStream(t *testing.T) {
	cat := testCatalog(t)
	st := mustParse(t, "SELECT * FROM ghost")
	if _, err := PlanSelect(st.Select, cat); err == nil {
		t.Fatal("unknown stream accepted")
	}
}

func TestCatalogDuplicate(t *testing.T) {
	cat := NewCatalog()
	sch := tuple.NewSchema("s", tuple.Field{Name: "x", Kind: tuple.IntKind})
	if err := cat.Register(sch); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(sch); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if len(cat.Names()) != 1 {
		t.Errorf("Names = %v", cat.Names())
	}
}

func TestCompileExprTypeErrors(t *testing.T) {
	sch := tuple.NewSchema("s",
		tuple.Field{Name: "n", Kind: tuple.IntKind},
		tuple.Field{Name: "s", Kind: tuple.StringKind},
		tuple.Field{Name: "b", Kind: tuple.BoolKind},
	)
	bad := []string{
		"SELECT * FROM x WHERE s + 1 > 0",
		"SELECT * FROM x WHERE n AND b",
		"SELECT * FROM x WHERE NOT n",
		"SELECT * FROM x WHERE s > 1",
		"SELECT * FROM x WHERE n", // non-boolean WHERE
		"SELECT * FROM x WHERE -s = 'a'",
		"SELECT * FROM x WHERE n % s = 0",
	}
	for _, q := range bad {
		st := mustParse(t, q)
		if _, err := CompilePredicate(st.Select.Where, sch); err == nil {
			t.Errorf("predicate %q should fail to compile", q)
		}
	}
}

func TestCompileExprEvaluation(t *testing.T) {
	sch := tuple.NewSchema("s",
		tuple.Field{Name: "n", Kind: tuple.IntKind},
		tuple.Field{Name: "f", Kind: tuple.FloatKind},
		tuple.Field{Name: "b", Kind: tuple.BoolKind},
	)
	tp := tuple.NewData(0, tuple.Int(7), tuple.Float(2.5), tuple.Bool(true))
	cases := []struct {
		q    string
		want bool
	}{
		{"SELECT * FROM x WHERE n = 7", true},
		{"SELECT * FROM x WHERE n != 7", false},
		{"SELECT * FROM x WHERE n * 2 >= 14", true},
		{"SELECT * FROM x WHERE f / 0.5 = 5.0", true},
		{"SELECT * FROM x WHERE n % 2 = 1", true},
		{"SELECT * FROM x WHERE -n < 0", true},
		{"SELECT * FROM x WHERE b AND n > 1 OR false", true},
		{"SELECT * FROM x WHERE NOT b", false},
		{"SELECT * FROM x WHERE n + f > 9.4", true},
		{"SELECT * FROM x WHERE n - 10 < 0", true},
	}
	for _, c := range cases {
		st := mustParse(t, c.q)
		pred, err := CompilePredicate(st.Select.Where, sch)
		if err != nil {
			t.Errorf("compile %q: %v", c.q, err)
			continue
		}
		if got := pred(tp); got != c.want {
			t.Errorf("%q = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestDivisionByZeroYieldsNull(t *testing.T) {
	sch := tuple.NewSchema("s", tuple.Field{Name: "n", Kind: tuple.IntKind})
	st := mustParse(t, "SELECT * FROM x WHERE n / 0 = 0.0")
	pred, err := CompilePredicate(st.Select.Where, sch)
	if err != nil {
		t.Fatal(err)
	}
	// null compares as not-equal to 0.0 numerically? Compare(null, 0.0)
	// orders by kind; the predicate must simply not panic.
	_ = pred(tuple.NewData(0, tuple.Int(5)))
}
