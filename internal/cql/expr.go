package cql

import (
	"fmt"

	"repro/internal/tuple"
)

// Compiled is a compiled expression: an evaluator over tuples of the schema
// it was compiled against, plus the inferred result kind and a derived name
// for select lists.
type Compiled struct {
	Eval func(*tuple.Tuple) tuple.Value
	Kind tuple.ValueKind
	Name string
}

// CompileExpr compiles e against the schema, resolving column references and
// inferring result kinds.
func CompileExpr(e Expr, sch *tuple.Schema) (Compiled, error) {
	switch x := e.(type) {
	case *LitExpr:
		v := x.Val
		return Compiled{
			Eval: func(*tuple.Tuple) tuple.Value { return v },
			Kind: v.Kind(),
			Name: v.String(),
		}, nil
	case *ColExpr:
		idx, f, err := resolveCol(x.Ref, sch)
		if err != nil {
			return Compiled{}, err
		}
		return Compiled{
			Eval: func(t *tuple.Tuple) tuple.Value { return t.Vals[idx] },
			Kind: f.Kind,
			Name: f.Name,
		}, nil
	case *UnaryExpr:
		in, err := CompileExpr(x.X, sch)
		if err != nil {
			return Compiled{}, err
		}
		switch x.Op {
		case "not":
			if in.Kind != tuple.BoolKind {
				return Compiled{}, errf(x.Pos, "NOT requires a boolean, got %v", in.Kind)
			}
			return Compiled{
				Eval: func(t *tuple.Tuple) tuple.Value { return tuple.Bool(!in.Eval(t).AsBool()) },
				Kind: tuple.BoolKind,
				Name: "not " + in.Name,
			}, nil
		case "-":
			switch in.Kind {
			case tuple.IntKind:
				return Compiled{
					Eval: func(t *tuple.Tuple) tuple.Value { return tuple.Int(-in.Eval(t).AsInt()) },
					Kind: tuple.IntKind,
					Name: "-" + in.Name,
				}, nil
			case tuple.FloatKind:
				return Compiled{
					Eval: func(t *tuple.Tuple) tuple.Value { return tuple.Float(-in.Eval(t).AsFloat()) },
					Kind: tuple.FloatKind,
					Name: "-" + in.Name,
				}, nil
			default:
				return Compiled{}, errf(x.Pos, "unary minus requires a number, got %v", in.Kind)
			}
		default:
			return Compiled{}, errf(x.Pos, "unknown unary operator %q", x.Op)
		}
	case *BinaryExpr:
		return compileBinary(x, sch)
	default:
		return Compiled{}, fmt.Errorf("cql: unknown expression node %T", e)
	}
}

func compileBinary(x *BinaryExpr, sch *tuple.Schema) (Compiled, error) {
	l, err := CompileExpr(x.Left, sch)
	if err != nil {
		return Compiled{}, err
	}
	r, err := CompileExpr(x.Right, sch)
	if err != nil {
		return Compiled{}, err
	}
	name := fmt.Sprintf("(%s %s %s)", l.Name, x.Op, r.Name)
	switch x.Op {
	case "and", "or":
		if l.Kind != tuple.BoolKind || r.Kind != tuple.BoolKind {
			return Compiled{}, errf(x.Pos, "%s requires booleans, got %v and %v", x.Op, l.Kind, r.Kind)
		}
		and := x.Op == "and"
		return Compiled{
			Eval: func(t *tuple.Tuple) tuple.Value {
				a := l.Eval(t).AsBool()
				if and {
					return tuple.Bool(a && r.Eval(t).AsBool())
				}
				return tuple.Bool(a || r.Eval(t).AsBool())
			},
			Kind: tuple.BoolKind,
			Name: name,
		}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		if !comparable(l.Kind, r.Kind) {
			return Compiled{}, errf(x.Pos, "cannot compare %v with %v", l.Kind, r.Kind)
		}
		op := x.Op
		return Compiled{
			Eval: func(t *tuple.Tuple) tuple.Value {
				c := l.Eval(t).Compare(r.Eval(t))
				var b bool
				switch op {
				case "=":
					b = c == 0
				case "!=":
					b = c != 0
				case "<":
					b = c < 0
				case "<=":
					b = c <= 0
				case ">":
					b = c > 0
				case ">=":
					b = c >= 0
				}
				return tuple.Bool(b)
			},
			Kind: tuple.BoolKind,
			Name: name,
		}, nil
	case "+", "-", "*", "/", "%":
		if !numeric(l.Kind) || !numeric(r.Kind) {
			return Compiled{}, errf(x.Pos, "%s requires numbers, got %v and %v", x.Op, l.Kind, r.Kind)
		}
		if x.Op == "%" {
			if l.Kind != tuple.IntKind || r.Kind != tuple.IntKind {
				return Compiled{}, errf(x.Pos, "%% requires integers")
			}
			return Compiled{
				Eval: func(t *tuple.Tuple) tuple.Value {
					d := r.Eval(t).AsInt()
					if d == 0 {
						return tuple.Value{}
					}
					return tuple.Int(l.Eval(t).AsInt() % d)
				},
				Kind: tuple.IntKind,
				Name: name,
			}, nil
		}
		intOp := l.Kind == tuple.IntKind && r.Kind == tuple.IntKind && x.Op != "/"
		op := x.Op
		if intOp {
			return Compiled{
				Eval: func(t *tuple.Tuple) tuple.Value {
					a, b := l.Eval(t).AsInt(), r.Eval(t).AsInt()
					switch op {
					case "+":
						return tuple.Int(a + b)
					case "-":
						return tuple.Int(a - b)
					default:
						return tuple.Int(a * b)
					}
				},
				Kind: tuple.IntKind,
				Name: name,
			}, nil
		}
		return Compiled{
			Eval: func(t *tuple.Tuple) tuple.Value {
				a, b := l.Eval(t).AsFloat(), r.Eval(t).AsFloat()
				switch op {
				case "+":
					return tuple.Float(a + b)
				case "-":
					return tuple.Float(a - b)
				case "*":
					return tuple.Float(a * b)
				default:
					if b == 0 {
						return tuple.Value{}
					}
					return tuple.Float(a / b)
				}
			},
			Kind: tuple.FloatKind,
			Name: name,
		}, nil
	default:
		return Compiled{}, errf(x.Pos, "unknown operator %q", x.Op)
	}
}

// CompilePredicate compiles e and requires a boolean result.
func CompilePredicate(e Expr, sch *tuple.Schema) (func(*tuple.Tuple) bool, error) {
	c, err := CompileExpr(e, sch)
	if err != nil {
		return nil, err
	}
	if c.Kind != tuple.BoolKind {
		return nil, fmt.Errorf("cql: WHERE expression must be boolean, got %v", c.Kind)
	}
	return func(t *tuple.Tuple) bool { return c.Eval(t).AsBool() }, nil
}

// resolveCol finds a column reference in the schema, trying the qualified
// name ("stream.column", as produced by join-schema concatenation) before
// the bare column name.
func resolveCol(ref ColRef, sch *tuple.Schema) (int, tuple.Field, error) {
	var candidates []string
	if ref.Stream != "" {
		candidates = []string{ref.Stream + "." + ref.Column, ref.Column}
	} else {
		candidates = []string{ref.Column}
	}
	for _, c := range candidates {
		if i := sch.Index(c); i >= 0 {
			return i, sch.Field(i), nil
		}
	}
	full := ref.Column
	if ref.Stream != "" {
		full = ref.Stream + "." + ref.Column
	}
	return 0, tuple.Field{}, errf(ref.Pos, "unknown column %q in %s", full, sch.Name)
}

func numeric(k tuple.ValueKind) bool {
	return k == tuple.IntKind || k == tuple.FloatKind || k == tuple.TimeKind
}

func comparable(a, b tuple.ValueKind) bool {
	if numeric(a) && numeric(b) {
		return true
	}
	return a == b
}
