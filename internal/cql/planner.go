package cql

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tuple"
	"repro/internal/window"
)

// Catalog maps stream names to their schemas.
type Catalog struct {
	schemas map[string]*tuple.Schema
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{schemas: make(map[string]*tuple.Schema)}
}

// Register adds a schema; re-registering a name is an error.
func (c *Catalog) Register(sch *tuple.Schema) error {
	if err := sch.Validate(); err != nil {
		return err
	}
	if _, dup := c.schemas[sch.Name]; dup {
		return fmt.Errorf("cql: stream %q already declared", sch.Name)
	}
	c.schemas[sch.Name] = sch
	return nil
}

// Schema resolves a stream name.
func (c *Catalog) Schema(name string) (*tuple.Schema, error) {
	sch, ok := c.schemas[name]
	if !ok {
		return nil, fmt.Errorf("cql: unknown stream %q", name)
	}
	return sch, nil
}

// Names lists the registered stream names (unordered).
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.schemas))
	for n := range c.schemas {
		out = append(out, n)
	}
	return out
}

// SchemaFromCreate converts a CREATE STREAM statement into a schema.
func SchemaFromCreate(cs *CreateStmt) *tuple.Schema {
	sch := tuple.NewSchema(cs.Name, cs.Fields...)
	return sch.WithTS(cs.TS)
}

// Plan is a compiled continuous query, ready to be instantiated into a
// query graph.
type Plan struct {
	stmt *SelectStmt
	cat  *Catalog

	// Streams lists the input stream schemas in FROM order.
	Streams []*tuple.Schema
	// Out is the output schema.
	Out *tuple.Schema

	build func(g *graph.Graph, sources map[string]graph.NodeID) (graph.NodeID, error)
}

// PlanOptions tunes the planner.
type PlanOptions struct {
	// NoPushdown disables the selection-pushdown rewrite (see pushdown.go);
	// the WHERE predicate then runs after the union/join, as written.
	NoPushdown bool
}

// PlanSelect type-checks sel against the catalog and produces a Plan with
// default options (selection pushdown enabled).
func PlanSelect(sel *SelectStmt, cat *Catalog) (*Plan, error) {
	return PlanSelectOptions(sel, cat, PlanOptions{})
}

// PlanSelectOptions is PlanSelect with explicit planner options.
func PlanSelectOptions(sel *SelectStmt, cat *Catalog, opts PlanOptions) (*Plan, error) {
	p := &Plan{stmt: sel, cat: cat}
	for _, name := range sel.From.Streams {
		sch, err := cat.Schema(name)
		if err != nil {
			return nil, err
		}
		p.Streams = append(p.Streams, sch)
	}

	mode, err := iwpMode(p.Streams)
	if err != nil {
		return nil, err
	}

	// The relation schema the WHERE/select list sees.
	var relSchema *tuple.Schema
	var mkRelation func(g *graph.Graph, src map[string]graph.NodeID) (graph.NodeID, error)

	// Pushdown state, populated after WHERE compilation; the mkRelation
	// closures read it at build time.
	var push struct {
		union func(*tuple.Tuple) bool // duplicated onto every union arm
		left  func(*tuple.Tuple) bool // join sides
		right func(*tuple.Tuple) bool
	}
	wrap := func(g *graph.Graph, node graph.NodeID, sch *tuple.Schema, pred func(*tuple.Tuple) bool) graph.NodeID {
		if pred == nil {
			return node
		}
		return g.AddNode(ops.NewSelect("where↓", sch, pred), node)
	}

	switch {
	case sel.From.Join != nil:
		if len(p.Streams) != 2 {
			return nil, fmt.Errorf("cql: join requires exactly two streams")
		}
		l, r := p.Streams[0], p.Streams[1]
		relSchema = l.Concat(l.Name+"_"+r.Name, r)
		j := sel.From.Join
		li, _, err := resolveCol(j.LeftCol, l)
		if err != nil {
			return nil, err
		}
		ri, _, err := resolveCol(j.RightCol, r)
		if err != nil {
			return nil, err
		}
		spec := window.Spec{Span: j.Window, Rows: j.Rows}
		if spec.Span == 0 && spec.Rows == 0 {
			return nil, fmt.Errorf("cql: join requires a WINDOW clause")
		}
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		rightSpec := spec
		if j.RightWindow > 0 {
			rightSpec = window.Spec{Span: j.RightWindow}
			if err := rightSpec.Validate(); err != nil {
				return nil, err
			}
		}
		mkRelation = func(g *graph.Graph, src map[string]graph.NodeID) (graph.NodeID, error) {
			ln, lok := src[l.Name]
			rn, rok := src[r.Name]
			if !lok || !rok {
				return 0, fmt.Errorf("cql: missing source node for join inputs")
			}
			ln = wrap(g, ln, l, push.left)
			rn = wrap(g, rn, r, push.right)
			// CQL joins are always equi-joins, so the planner picks the
			// hash-indexed variant: probes cost O(matches) instead of a
			// window scan.
			jn := ops.NewHashWindowJoin("join", relSchema, spec, rightSpec, li, ri, mode)
			return g.AddNode(jn, ln, rn), nil
		}

	case len(p.Streams) == 1:
		relSchema = p.Streams[0]
		name := p.Streams[0].Name
		mkRelation = func(g *graph.Graph, src map[string]graph.NodeID) (graph.NodeID, error) {
			n, ok := src[name]
			if !ok {
				return 0, fmt.Errorf("cql: missing source node for %q", name)
			}
			return n, nil
		}

	default: // union
		first := p.Streams[0]
		for _, s := range p.Streams[1:] {
			if err := unionCompatible(first, s); err != nil {
				return nil, err
			}
		}
		relSchema = first
		names := sel.From.Streams
		nIn := len(names)
		schemas := p.Streams
		mkRelation = func(g *graph.Graph, src map[string]graph.NodeID) (graph.NodeID, error) {
			preds := make([]graph.NodeID, 0, nIn)
			for i, name := range names {
				n, ok := src[name]
				if !ok {
					return 0, fmt.Errorf("cql: missing source node for %q", name)
				}
				// Union inputs are positionally compatible, so the
				// pushed predicate (compiled against the first
				// schema) evaluates identically on every arm.
				preds = append(preds, wrap(g, n, schemas[i], push.union))
			}
			u := ops.NewUnion("union", relSchema, nIn, mode)
			return g.AddNode(u, preds...), nil
		}
	}

	// WHERE — with pushdown when enabled and transparent (see pushdown.go).
	var pred func(*tuple.Tuple) bool
	if sel.Where != nil {
		// Always compile against the relation schema first: this is the
		// authoritative name resolution and type check.
		pred, err = CompilePredicate(sel.Where, relSchema)
		if err != nil {
			return nil, err
		}
		switch {
		case opts.NoPushdown:
			// keep pred after the relation
		case sel.From.Join != nil:
			l, r := p.Streams[0], p.Streams[1]
			lc, rc, rest := splitJoinPredicate(sel.Where, relSchema, l.Arity())
			ok := true
			if e := joinConjuncts(lc); e != nil {
				if push.left, err = CompilePredicate(e, l); err != nil {
					ok = false
				}
			}
			if e := joinConjuncts(rc); e != nil && ok {
				if push.right, err = CompilePredicate(e, r); err != nil {
					ok = false
				}
			}
			if !ok {
				// Unexpected (classification guarantees resolvability);
				// fall back to the post-join predicate.
				push.left, push.right = nil, nil
			} else if e := joinConjuncts(rest); e != nil {
				if pred, err = CompilePredicate(e, relSchema); err != nil {
					return nil, err
				}
			} else {
				pred = nil
			}
		case len(p.Streams) > 1:
			// Union: duplicate the whole predicate onto every arm.
			push.union = pred
			pred = nil
		}
	}

	// Select list: aggregate or plain projection/computation.
	hasAgg := false
	for _, it := range sel.Items {
		if it.Agg != "" {
			hasAgg = true
		}
	}

	if !hasAgg && sel.GroupBy != "" {
		return nil, fmt.Errorf("cql: GROUP BY requires aggregate functions in the select list")
	}

	var mkTail func(g *graph.Graph, in graph.NodeID) (graph.NodeID, error)
	switch {
	case hasAgg:
		out, build, err := planAggregate(sel, relSchema)
		if err != nil {
			return nil, err
		}
		p.Out = out
		mkTail = build
	case sel.Star || len(sel.Items) == 0:
		p.Out = relSchema
		mkTail = func(_ *graph.Graph, in graph.NodeID) (graph.NodeID, error) { return in, nil }
	default:
		out, build, err := planProjection(sel, relSchema)
		if err != nil {
			return nil, err
		}
		p.Out = out
		mkTail = build
	}

	p.build = func(g *graph.Graph, sources map[string]graph.NodeID) (graph.NodeID, error) {
		node, err := mkRelation(g, sources)
		if err != nil {
			return 0, err
		}
		if pred != nil {
			node = g.AddNode(ops.NewSelect("where", relSchema, pred), node)
		}
		return mkTail(g, node)
	}
	return p, nil
}

// Build instantiates the plan into g, wiring the named source nodes, and
// returns the output node (attach a sink to consume results).
func (p *Plan) Build(g *graph.Graph, sources map[string]graph.NodeID) (graph.NodeID, error) {
	return p.build(g, sources)
}

// planProjection handles a select list without aggregates.
func planProjection(sel *SelectStmt, relSchema *tuple.Schema) (*tuple.Schema, func(*graph.Graph, graph.NodeID) (graph.NodeID, error), error) {
	// Pure column list compiles to a Project; anything else to a Map.
	pure := true
	for _, it := range sel.Items {
		if _, ok := it.Expr.(*ColExpr); !ok {
			pure = false
			break
		}
	}
	outFields := make([]tuple.Field, 0, len(sel.Items))
	if pure {
		idx := make([]int, 0, len(sel.Items))
		for _, it := range sel.Items {
			ref := it.Expr.(*ColExpr).Ref
			i, f, err := resolveCol(ref, relSchema)
			if err != nil {
				return nil, nil, err
			}
			idx = append(idx, i)
			name := f.Name
			if it.Alias != "" {
				name = it.Alias
			}
			outFields = append(outFields, tuple.Field{Name: name, Kind: f.Kind})
		}
		out := tuple.NewSchema(relSchema.Name+"_proj", outFields...).WithTS(relSchema.TS)
		build := func(g *graph.Graph, in graph.NodeID) (graph.NodeID, error) {
			return g.AddNode(ops.NewProject("project", out, idx), in), nil
		}
		return out, build, nil
	}
	evals := make([]Compiled, 0, len(sel.Items))
	for _, it := range sel.Items {
		c, err := CompileExpr(it.Expr, relSchema)
		if err != nil {
			return nil, nil, err
		}
		name := c.Name
		if it.Alias != "" {
			name = it.Alias
		}
		outFields = append(outFields, tuple.Field{Name: name, Kind: c.Kind})
		evals = append(evals, c)
	}
	out := tuple.NewSchema(relSchema.Name+"_map", outFields...).WithTS(relSchema.TS)
	build := func(g *graph.Graph, in graph.NodeID) (graph.NodeID, error) {
		m := ops.NewMap("compute", out, func(t *tuple.Tuple) *tuple.Tuple {
			vals := make([]tuple.Value, len(evals))
			for i, c := range evals {
				vals[i] = c.Eval(t)
			}
			return &tuple.Tuple{Ts: t.Ts, Kind: tuple.Data, Vals: vals, Arrived: t.Arrived}
		})
		return g.AddNode(m, in), nil
	}
	return out, build, nil
}

// planAggregate handles a select list with aggregate calls.
func planAggregate(sel *SelectStmt, relSchema *tuple.Schema) (*tuple.Schema, func(*graph.Graph, graph.NodeID) (graph.NodeID, error), error) {
	if sel.Window <= 0 {
		return nil, nil, fmt.Errorf("cql: aggregates require a WINDOW clause")
	}
	slide := sel.Slide
	if slide == 0 {
		slide = sel.Window // tumbling
	}
	if slide > sel.Window {
		return nil, nil, fmt.Errorf("cql: SLIDE (%v) must not exceed WINDOW (%v)", slide, sel.Window)
	}
	groupCol := -1
	outFields := []tuple.Field{}
	if sel.GroupBy != "" {
		i, f, err := resolveCol(ColRef{Column: sel.GroupBy}, relSchema)
		if err != nil {
			return nil, nil, err
		}
		groupCol = i
		// Convention: the group-by column must be the first select item.
		if len(sel.Items) == 0 {
			return nil, nil, fmt.Errorf("cql: empty select list with GROUP BY")
		}
		first, ok := sel.Items[0].Expr.(*ColExpr)
		if !ok || first.Ref.Column != sel.GroupBy {
			return nil, nil, fmt.Errorf("cql: with GROUP BY %s, the first select item must be %s",
				sel.GroupBy, sel.GroupBy)
		}
		name := f.Name
		if sel.Items[0].Alias != "" {
			name = sel.Items[0].Alias
		}
		outFields = append(outFields, tuple.Field{Name: name, Kind: f.Kind})
	}
	items := sel.Items
	if groupCol >= 0 {
		items = items[1:]
	}
	var specs []ops.AggSpec
	for _, it := range items {
		if it.Agg == "" {
			return nil, nil, errf(it.Pos, "non-aggregate select item in an aggregate query")
		}
		fn, err := ops.ParseAggFunc(it.Agg)
		if err != nil {
			return nil, nil, errf(it.Pos, "%v", err)
		}
		col := -1
		var argKind tuple.ValueKind = tuple.FloatKind
		if fn != ops.Count {
			if it.AggArg == "" {
				return nil, nil, errf(it.Pos, "%s requires a column argument", it.Agg)
			}
			i, f, err := resolveCol(ColRef{Column: it.AggArg, Pos: it.Pos}, relSchema)
			if err != nil {
				return nil, nil, err
			}
			col = i
			argKind = f.Kind
		}
		name := it.Alias
		if name == "" {
			name = it.Agg
			if it.AggArg != "" {
				name += "_" + it.AggArg
			}
		}
		kind := tuple.FloatKind
		switch fn {
		case ops.Count:
			kind = tuple.IntKind
		case ops.Min, ops.Max:
			kind = argKind
		}
		outFields = append(outFields, tuple.Field{Name: name, Kind: kind})
		specs = append(specs, ops.AggSpec{Fn: fn, Col: col})
	}
	if len(specs) == 0 {
		return nil, nil, fmt.Errorf("cql: aggregate query without aggregate functions")
	}
	out := tuple.NewSchema(relSchema.Name+"_agg", outFields...).WithTS(relSchema.TS)
	width := sel.Window
	build := func(g *graph.Graph, in graph.NodeID) (graph.NodeID, error) {
		a := ops.NewSlidingAggregate("aggregate", out, width, slide, groupCol, specs...)
		return g.AddNode(a, in), nil
	}
	return out, build, nil
}

// iwpMode derives the IWP execution mode from the input timestamp kinds.
func iwpMode(streams []*tuple.Schema) (ops.IWPMode, error) {
	latent := 0
	for _, s := range streams {
		if s.TS == tuple.Latent {
			latent++
		}
	}
	switch latent {
	case 0:
		return ops.TSM, nil
	case len(streams):
		return ops.LatentMode, nil
	default:
		return 0, fmt.Errorf("cql: cannot mix latent and timestamped streams in one query")
	}
}

// unionCompatible verifies two schemas can be unioned (same arity, same
// kinds, same timestamp kind).
func unionCompatible(a, b *tuple.Schema) error {
	if a.Arity() != b.Arity() {
		return fmt.Errorf("cql: union of %s and %s: arity %d vs %d",
			a.Name, b.Name, a.Arity(), b.Arity())
	}
	for i := range a.Fields {
		if a.Fields[i].Kind != b.Fields[i].Kind {
			return fmt.Errorf("cql: union of %s and %s: field %d kind %v vs %v",
				a.Name, b.Name, i, a.Fields[i].Kind, b.Fields[i].Kind)
		}
	}
	if a.TS != b.TS {
		return fmt.Errorf("cql: union of %s and %s: timestamp kinds differ (%v vs %v)",
			a.Name, b.Name, a.TS, b.TS)
	}
	return nil
}
