package cql

import (
	"strings"
	"unicode"
)

// Lex tokenizes the input, returning the token stream or a positioned error.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := strings.ToLower(input[start:i])
			kind := TokIdent
			if keywords[word] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: word, Pos: start})
		case c >= '0' && c <= '9':
			start := i
			for i < n && (input[i] >= '0' && input[i] <= '9') {
				i++
			}
			if i < n && input[i] == '.' {
				i++
				for i < n && (input[i] >= '0' && input[i] <= '9') {
					i++
				}
			}
			// Duration suffix: us, ms, s, m (m must not swallow "ms").
			if i < n && isIdentStart(rune(input[i])) {
				sfx := i
				for i < n && isIdentPart(rune(input[i])) {
					i++
				}
				unit := strings.ToLower(input[sfx:i])
				switch unit {
				case "us", "ms", "s", "m":
					toks = append(toks, Token{Kind: TokDuration, Text: input[start:i], Pos: start})
					continue
				default:
					return nil, errf(sfx, "bad numeric suffix %q", unit)
				}
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, errf(start, "unterminated string literal")
				}
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		default:
			start := i
			// Multi-char operators first.
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "!=", "<>":
				toks = append(toks, Token{Kind: TokOp, Text: two, Pos: start})
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', '*', '=', '<', '>', '+', '-', '/', '.', '%':
				toks = append(toks, Token{Kind: TokOp, Text: string(c), Pos: start})
				i++
			default:
				return nil, errf(start, "unexpected character %q", string(c))
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
