package cql

import (
	"repro/internal/tuple"
)

// This file implements the planner's selection-pushdown rewrite: a WHERE
// predicate evaluated after a union or join is moved upstream whenever that
// is semantically transparent, shrinking the buffers of the IWP operator —
// the paper's own Figure-4 graph has the selections *before* the union for
// exactly this reason.
//
//   - σ over UNION: union-compatible inputs share positions and kinds, so
//     the whole predicate is duplicated onto every input arm.
//   - σ over JOIN: the predicate is split into top-level AND conjuncts;
//     each conjunct referencing only left (resp. right) columns moves to
//     that side; mixed conjuncts stay behind the join.

// splitConjuncts flattens top-level ANDs into a conjunct list.
func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "and" {
		return append(splitConjuncts(b.Left), splitConjuncts(b.Right)...)
	}
	return []Expr{e}
}

// joinConjuncts rebuilds an AND tree from a conjunct list (nil when empty).
func joinConjuncts(cs []Expr) Expr {
	if len(cs) == 0 {
		return nil
	}
	out := cs[0]
	for _, c := range cs[1:] {
		out = &BinaryExpr{Op: "and", Left: out, Right: c}
	}
	return out
}

// exprCols collects every column reference in e.
func exprCols(e Expr) []ColRef {
	var out []ColRef
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *ColExpr:
			out = append(out, x.Ref)
		case *UnaryExpr:
			walk(x.X)
		case *BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		}
	}
	walk(e)
	return out
}

// sideOf classifies a conjunct against a join's concatenated schema: it
// returns 0 when every referenced column lives in the left input, 1 when
// every one lives in the right input, and -1 for mixed (or column-free)
// conjuncts. leftArity is the left schema's field count; resolution uses
// the concat schema so that ambiguous names keep their post-join meaning.
func sideOf(c Expr, concat *tuple.Schema, leftArity int) int {
	refs := exprCols(c)
	if len(refs) == 0 {
		return -1
	}
	side := -2 // undecided
	for _, ref := range refs {
		idx, _, err := resolveCol(ref, concat)
		if err != nil {
			return -1 // leave errors to the main compile for reporting
		}
		s := 0
		if idx >= leftArity {
			s = 1
		}
		if side == -2 {
			side = s
		} else if side != s {
			return -1
		}
	}
	return side
}

// rebaseForRight maps a conjunct's references so they compile against the
// right input's schema: references are name-based, and every name that
// resolves into the right half of the concat schema resolves to the same
// (rebased) position in the right schema alone, so the expression can be
// reused as-is.
//
// splitJoinPredicate partitions a WHERE expression for a join into
// (leftOnly, rightOnly, remainder) conjunct groups.
func splitJoinPredicate(where Expr, concat *tuple.Schema, leftArity int) (left, right, rest []Expr) {
	for _, c := range splitConjuncts(where) {
		switch sideOf(c, concat, leftArity) {
		case 0:
			left = append(left, c)
		case 1:
			right = append(right, c)
		default:
			rest = append(rest, c)
		}
	}
	return left, right, rest
}
