package cql

import (
	"strings"
	"testing"

	"repro/internal/tuple"
)

func mustParse(t *testing.T, q string) *Stmt {
	t.Helper()
	st, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return st
}

func TestParseCreateStream(t *testing.T) {
	st := mustParse(t, "CREATE STREAM sensors (id int, temp float, loc string) TIMESTAMP INTERNAL")
	c := st.Create
	if c == nil || c.Name != "sensors" || len(c.Fields) != 3 {
		t.Fatalf("create = %+v", c)
	}
	if c.Fields[1].Name != "temp" || c.Fields[1].Kind != tuple.FloatKind {
		t.Errorf("field 1 = %v", c.Fields[1])
	}
	if c.TS != tuple.Internal {
		t.Errorf("TS = %v", c.TS)
	}
}

func TestParseCreateExternalSkew(t *testing.T) {
	st := mustParse(t, "create stream trades (sym string, px float) timestamp external skew 100ms")
	if st.Create.TS != tuple.External || st.Create.Skew != 100*tuple.Millisecond {
		t.Fatalf("create = %+v", st.Create)
	}
	st = mustParse(t, "create stream l (x int) timestamp latent")
	if st.Create.TS != tuple.Latent {
		t.Fatal("latent not parsed")
	}
}

func TestParseSelectStar(t *testing.T) {
	st := mustParse(t, "SELECT * FROM a UNION b UNION c")
	s := st.Select
	if !s.Star || len(s.From.Streams) != 3 || s.From.Streams[2] != "c" {
		t.Fatalf("select = %+v", s)
	}
}

func TestParseSelectWithWhere(t *testing.T) {
	st := mustParse(t, "SELECT id, temp AS celsius FROM sensors WHERE temp > 30 AND NOT (loc = 'lab')")
	s := st.Select
	if len(s.Items) != 2 || s.Items[1].Alias != "celsius" {
		t.Fatalf("items = %+v", s.Items)
	}
	top, ok := s.Where.(*BinaryExpr)
	if !ok || top.Op != "and" {
		t.Fatalf("where = %#v", s.Where)
	}
	if _, ok := top.Right.(*UnaryExpr); !ok {
		t.Fatalf("where rhs = %#v", top.Right)
	}
}

func TestParseJoin(t *testing.T) {
	st := mustParse(t, "SELECT a.k, b.v FROM a JOIN b ON a.k = b.k WINDOW 2s")
	j := st.Select.From.Join
	if j == nil {
		t.Fatal("no join")
	}
	if j.LeftCol.Stream != "a" || j.LeftCol.Column != "k" || j.RightCol.Stream != "b" {
		t.Errorf("join cols = %+v", j)
	}
	if j.Window != 2*tuple.Second || j.Rows != 0 {
		t.Errorf("window = %v/%d", j.Window, j.Rows)
	}
}

func TestParseJoinRowWindow(t *testing.T) {
	st := mustParse(t, "SELECT * FROM a JOIN b ON a.k = b.k WINDOW 100 ROWS")
	j := st.Select.From.Join
	if j.Rows != 100 || j.Window != 0 {
		t.Fatalf("row window = %+v", j)
	}
}

func TestParseAggregate(t *testing.T) {
	st := mustParse(t, "SELECT loc, avg(temp), count(*) AS n FROM sensors GROUP BY loc WINDOW 10s")
	s := st.Select
	if s.GroupBy != "loc" || s.Window != 10*tuple.Second {
		t.Fatalf("groupby/window = %q/%v", s.GroupBy, s.Window)
	}
	if len(s.Items) != 3 {
		t.Fatalf("items = %+v", s.Items)
	}
	if s.Items[1].Agg != "avg" || s.Items[1].AggArg != "temp" {
		t.Errorf("avg item = %+v", s.Items[1])
	}
	if s.Items[2].Agg != "count" || s.Items[2].AggArg != "" || s.Items[2].Alias != "n" {
		t.Errorf("count item = %+v", s.Items[2])
	}
}

func TestParsePrecedence(t *testing.T) {
	st := mustParse(t, "SELECT * FROM s WHERE a + b * 2 > 10 OR c = 'x' AND d < 5")
	// OR is the top: (a+b*2 > 10) OR ((c='x') AND (d<5))
	or, ok := st.Select.Where.(*BinaryExpr)
	if !ok || or.Op != "or" {
		t.Fatalf("top = %#v", st.Select.Where)
	}
	and, ok := or.Right.(*BinaryExpr)
	if !ok || and.Op != "and" {
		t.Fatalf("rhs = %#v", or.Right)
	}
	cmp, ok := or.Left.(*BinaryExpr)
	if !ok || cmp.Op != ">" {
		t.Fatalf("lhs = %#v", or.Left)
	}
	add, ok := cmp.Left.(*BinaryExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("sum = %#v", cmp.Left)
	}
	if mul, ok := add.Right.(*BinaryExpr); !ok || mul.Op != "*" {
		t.Fatalf("product = %#v", add.Right)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DROP STREAM x",
		"SELECT FROM s",
		"SELECT * FROM",
		"SELECT * FROM a JOIN b",                 // missing ON
		"SELECT * FROM a JOIN b ON a.k",          // missing = rhs
		"CREATE STREAM s ()",                     // empty fields
		"CREATE STREAM s (x blob)",               // unknown type
		"SELECT * FROM s WHERE",                  // missing expr
		"SELECT * FROM s WINDOW 5x",              // bad duration
		"SELECT * FROM s extra",                  // trailing garbage
		"CREATE STREAM s (x int) TIMESTAMP WEEK", // bad ts kind
		"SELECT * FROM a JOIN b ON a.k = b.k WINDOW 0 ROWS",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseErrorMentionsPosition(t *testing.T) {
	_, err := Parse("SELECT * FROM s WHERE @")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Errorf("error lacks position: %v", err)
	}
}
