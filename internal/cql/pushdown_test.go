package cql

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tuple"
)

func TestSplitConjuncts(t *testing.T) {
	st := mustParse(t, "SELECT * FROM s WHERE a > 1 AND b < 2 AND (c = 3 OR d = 4)")
	cs := splitConjuncts(st.Select.Where)
	if len(cs) != 3 {
		t.Fatalf("conjuncts = %d", len(cs))
	}
	if joinConjuncts(nil) != nil {
		t.Error("empty rebuild must be nil")
	}
	rebuilt := joinConjuncts(cs)
	if len(splitConjuncts(rebuilt)) != 3 {
		t.Error("rebuild lost conjuncts")
	}
}

func TestExprCols(t *testing.T) {
	st := mustParse(t, "SELECT * FROM s WHERE a.x > 1 AND NOT (y = z + 2)")
	cols := exprCols(st.Select.Where)
	if len(cols) != 3 {
		t.Fatalf("cols = %v", cols)
	}
	if cols[0].Stream != "a" || cols[0].Column != "x" {
		t.Errorf("first ref = %+v", cols[0])
	}
}

func TestSideOf(t *testing.T) {
	l := tuple.NewSchema("l", tuple.Field{Name: "k", Kind: tuple.IntKind}, tuple.Field{Name: "v", Kind: tuple.FloatKind})
	r := tuple.NewSchema("r", tuple.Field{Name: "k", Kind: tuple.IntKind}, tuple.Field{Name: "w", Kind: tuple.FloatKind})
	concat := l.Concat("j", r)
	cases := []struct {
		where string
		want  int
	}{
		{"SELECT * FROM x WHERE v > 1.0", 0},
		{"SELECT * FROM x WHERE w > 1.0", 1},
		{"SELECT * FROM x WHERE v > w", -1},
		{"SELECT * FROM x WHERE k > 1", 0},   // ambiguous name → post-join meaning = left
		{"SELECT * FROM x WHERE r.k > 1", 1}, // qualified → right
		{"SELECT * FROM x WHERE 1 = 1", -1},  // column-free stays behind
		{"SELECT * FROM x WHERE ghost > 1", -1},
	}
	for _, c := range cases {
		st := mustParse(t, c.where)
		if got := sideOf(st.Select.Where, concat, l.Arity()); got != c.want {
			t.Errorf("sideOf(%q) = %d, want %d", c.where, got, c.want)
		}
	}
}

// planGraph builds the plan into a fresh graph and returns it with the out
// node, so tests can inspect the operator placement.
func planGraph(t *testing.T, cat *Catalog, q string, opts PlanOptions) (*graph.Graph, *Plan) {
	t.Helper()
	st := mustParse(t, q)
	plan, err := PlanSelectOptions(st.Select, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New("q")
	sources := map[string]graph.NodeID{}
	for _, sch := range plan.Streams {
		if _, ok := sources[sch.Name]; !ok {
			sources[sch.Name] = g.AddNode(ops.NewSource(sch.Name, sch, 0))
		}
	}
	if _, err := plan.Build(g, sources); err != nil {
		t.Fatal(err)
	}
	return g, plan
}

// countOps counts nodes whose name has the given prefix.
func countOps(g *graph.Graph, prefix string) int {
	n := 0
	for _, node := range g.Nodes() {
		name := node.Op.Name()
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			n++
		}
	}
	return n
}

func TestUnionPushdownShape(t *testing.T) {
	cat := testCatalog(t)
	q := "SELECT * FROM a UNION b WHERE v > 1.0"
	g, _ := planGraph(t, cat, q, PlanOptions{})
	// Pushed: one filter per arm, none after the union — the paper's
	// Figure-4 shape.
	if got := countOps(g, "where↓"); got != 2 {
		t.Fatalf("pushed filters = %d, want 2", got)
	}
	if got := countOps(g, "where"); got != 2 {
		t.Fatalf("total filters = %d, want 2 (no post-union σ)", got)
	}
	g2, _ := planGraph(t, cat, q, PlanOptions{NoPushdown: true})
	if got := countOps(g2, "where↓"); got != 0 {
		t.Fatalf("NoPushdown still pushed: %d", got)
	}
	if got := countOps(g2, "where"); got != 1 {
		t.Fatalf("NoPushdown filters = %d, want 1", got)
	}
}

func TestJoinPushdownShape(t *testing.T) {
	cat := testCatalog(t)
	// v is left-only, w is right-only, a.k = 1 is left, v > w is mixed.
	q := "SELECT * FROM a JOIN b ON a.k = b.k WINDOW 1s WHERE v > 1.0 AND w < 5.0 AND v + w > 0.0"
	g, _ := planGraph(t, cat, q, PlanOptions{})
	if got := countOps(g, "where↓"); got != 2 {
		t.Fatalf("pushed filters = %d, want 2", got)
	}
	// The mixed conjunct stays behind the join.
	if got := countOps(g, "where"); got != 3 {
		t.Fatalf("total filters = %d, want 3", got)
	}
}

// TestPushdownEquivalence: for random tuples, pushed and unpushed plans
// produce identical outputs.
func TestPushdownEquivalence(t *testing.T) {
	cat := testCatalog(t)
	queries := []string{
		"SELECT * FROM a UNION b WHERE v > 2.0",
		"SELECT * FROM a JOIN b ON a.k = b.k WINDOW 10s WHERE v > 1.0 AND w < 200.0",
		"SELECT * FROM a JOIN b ON a.k = b.k WINDOW 10s WHERE v + w > 3.0",
	}
	f := func(aRaw, bRaw []uint8) bool {
		mkFeed := func() map[string][]*tuple.Tuple {
			feed := map[string][]*tuple.Tuple{"a": nil, "b": nil}
			ts := tuple.Time(0)
			for _, v := range aRaw {
				ts += tuple.Time(v % 8)
				feed["a"] = append(feed["a"], row(ts, tuple.Int(int64(v%4)), tuple.Float(float64(v%7))))
			}
			ts = 0
			for _, v := range bRaw {
				ts += tuple.Time(v % 8)
				feed["b"] = append(feed["b"], row(ts, tuple.Int(int64(v%4)), tuple.Float(float64(v%9))))
			}
			return feed
		}
		// Canonicalize: the paper allows simultaneous tuples to be
		// processed in either order (§2), and pushdown legitimately
		// changes that interleaving; sort equal timestamps by value.
		canon := func(ts []*tuple.Tuple) []string {
			out := make([]string, len(ts))
			for i, tp := range ts {
				out[i] = tp.String()
			}
			sort.Strings(out)
			return out
		}
		for _, q := range queries {
			out1 := canon(runQueryOpts(t, cat, q, mkFeed(), PlanOptions{}))
			out2 := canon(runQueryOpts(t, cat, q, mkFeed(), PlanOptions{NoPushdown: true}))
			if len(out1) != len(out2) {
				return false
			}
			for i := range out1 {
				if out1[i] != out2[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
