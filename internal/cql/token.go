// Package cql implements a small continuous-query language over the engine:
// enough surface to express every query in the paper (filtered unions,
// window joins) plus windowed group-by aggregates — the way a Stream Mill
// user would drive the system rather than assembling operator graphs by
// hand.
//
//	CREATE STREAM sensors (id int, temp float, loc string) TIMESTAMP INTERNAL
//	SELECT id, temp FROM sensors WHERE temp > 30 AND loc = 'lab'
//	SELECT * FROM a UNION b
//	SELECT a.k, b.v FROM a JOIN b ON a.k = b.k WINDOW 2s
//	SELECT loc, avg(temp) FROM sensors GROUP BY loc WINDOW 10s
//
// The pipeline is lexer → parser → planner: the planner resolves stream and
// column names against a catalog of registered schemas, compiles expressions
// to closures, and emits operator nodes into a query graph.
package cql

import "fmt"

// TokKind enumerates token kinds.
type TokKind uint8

const (
	// TokEOF terminates the token stream.
	TokEOF TokKind = iota
	// TokIdent is an identifier (stream, column, function name).
	TokIdent
	// TokNumber is a numeric literal (int or float).
	TokNumber
	// TokString is a single-quoted string literal.
	TokString
	// TokDuration is a duration literal such as 2s, 150ms, 10us, 3m.
	TokDuration
	// TokKeyword is a reserved word (SELECT, FROM, ...).
	TokKeyword
	// TokOp is an operator or punctuation token.
	TokOp
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokDuration:
		return "duration"
	case TokKeyword:
		return "keyword"
	case TokOp:
		return "operator"
	default:
		return "token(?)"
	}
}

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokKind
	Text string // lowercased for keywords/identifiers, raw otherwise
	Pos  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// keywords lists the reserved words; identifiers matching one (case-
// insensitively) lex as TokKeyword.
var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"window": true, "union": true, "join": true, "on": true, "and": true,
	"or": true, "not": true, "create": true, "stream": true, "explain": true,
	"timestamp": true, "internal": true, "external": true, "latent": true,
	"skew": true, "slack": true, "slide": true, "rows": true, "true": true,
	"false": true, "as": true,
}

// Error is a parse/plan error carrying the source position.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("cql: at offset %d: %s", e.Pos, e.Msg) }

func errf(pos int, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
