package cql

import (
	"strconv"
	"strings"

	"repro/internal/tuple"
)

// Parse parses one statement.
func Parse(input string) (*Stmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.stmt()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF, "") {
		return nil, errf(p.peek().Pos, "unexpected trailing input %s", p.peek())
	}
	return st, nil
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) peek() Token { return p.toks[p.i] }

func (p *parser) next() Token {
	t := p.toks[p.i]
	if t.Kind != TokEOF {
		p.i++
	}
	return t
}

// at reports whether the next token matches kind (and text when non-empty).
func (p *parser) at(kind TokKind, text string) bool {
	t := p.peek()
	return t.Kind == kind && (text == "" || t.Text == text)
}

// eat consumes the next token when it matches.
func (p *parser) eat(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

// expect consumes a matching token or fails.
func (p *parser) expect(kind TokKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = kind.String()
	}
	return Token{}, errf(p.peek().Pos, "expected %s, found %s", want, p.peek())
}

func (p *parser) stmt() (*Stmt, error) {
	if p.eat(TokKeyword, "explain") {
		s, err := p.selectStmtChecked()
		if err != nil {
			return nil, err
		}
		return &Stmt{Select: s, Explain: true}, nil
	}
	switch {
	case p.at(TokKeyword, "create"):
		c, err := p.createStmt()
		if err != nil {
			return nil, err
		}
		return &Stmt{Create: c}, nil
	case p.at(TokKeyword, "select"):
		s, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &Stmt{Select: s}, nil
	default:
		return nil, errf(p.peek().Pos, "expected CREATE or SELECT, found %s", p.peek())
	}
}

func (p *parser) createStmt() (*CreateStmt, error) {
	p.next() // create
	if _, err := p.expect(TokKeyword, "stream"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	c := &CreateStmt{Name: name.Text, TS: tuple.Internal}
	for {
		fn, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		ft := p.next()
		if ft.Kind != TokIdent && ft.Kind != TokKeyword {
			return nil, errf(ft.Pos, "expected a type name, found %s", ft)
		}
		kind, err := tuple.ParseValueKind(ft.Text)
		if err != nil {
			return nil, errf(ft.Pos, "%v", err)
		}
		c.Fields = append(c.Fields, tuple.Field{Name: fn.Text, Kind: kind})
		if p.eat(TokOp, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	if p.eat(TokKeyword, "timestamp") {
		switch {
		case p.eat(TokKeyword, "internal"):
			c.TS = tuple.Internal
		case p.eat(TokKeyword, "latent"):
			c.TS = tuple.Latent
		case p.eat(TokKeyword, "external"):
			c.TS = tuple.External
			if p.eat(TokKeyword, "skew") {
				d, err := p.duration()
				if err != nil {
					return nil, err
				}
				c.Skew = d
			}
		default:
			return nil, errf(p.peek().Pos, "expected INTERNAL, EXTERNAL or LATENT")
		}
	}
	if p.eat(TokKeyword, "slack") {
		d, err := p.duration()
		if err != nil {
			return nil, err
		}
		c.Slack = d
	}
	return c, nil
}

// ParseAll parses a script of semicolon-separated statements. Statements
// may span lines; empty statements are skipped.
func ParseAll(input string) ([]*Stmt, error) {
	var out []*Stmt
	for _, part := range splitStatements(input) {
		st, err := Parse(part)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

// splitStatements splits on top-level semicolons, respecting string
// literals.
func splitStatements(input string) []string {
	var parts []string
	var cur []byte
	inStr := false
	for i := 0; i < len(input); i++ {
		c := input[i]
		switch {
		case c == '\'':
			inStr = !inStr
			cur = append(cur, c)
		case c == ';' && !inStr:
			if s := strings.TrimSpace(string(cur)); s != "" {
				parts = append(parts, s)
			}
			cur = cur[:0]
		default:
			cur = append(cur, c)
		}
	}
	if s := strings.TrimSpace(string(cur)); s != "" {
		parts = append(parts, s)
	}
	return parts
}

// selectStmtChecked expects a SELECT at the current position.
func (p *parser) selectStmtChecked() (*SelectStmt, error) {
	if !p.at(TokKeyword, "select") {
		return nil, errf(p.peek().Pos, "expected SELECT after EXPLAIN, found %s", p.peek())
	}
	return p.selectStmt()
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	p.next() // select
	s := &SelectStmt{}
	if p.eat(TokOp, "*") {
		s.Star = true
	} else {
		for {
			item, err := p.selectItem()
			if err != nil {
				return nil, err
			}
			s.Items = append(s.Items, item)
			if !p.eat(TokOp, ",") {
				break
			}
		}
	}
	if _, err := p.expect(TokKeyword, "from"); err != nil {
		return nil, err
	}
	if err := p.fromClause(s); err != nil {
		return nil, err
	}
	if p.eat(TokKeyword, "where") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.eat(TokKeyword, "group") {
		if _, err := p.expect(TokKeyword, "by"); err != nil {
			return nil, err
		}
		col, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		s.GroupBy = col.Text
	}
	if p.eat(TokKeyword, "window") {
		d, err := p.duration()
		if err != nil {
			return nil, err
		}
		s.Window = d
		if p.eat(TokKeyword, "slide") {
			sl, err := p.duration()
			if err != nil {
				return nil, err
			}
			s.Slide = sl
		}
	}
	return s, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	t := p.peek()
	// Aggregate call: ident '(' (ident|*) ')'
	if t.Kind == TokIdent && p.toks[p.i+1].Kind == TokOp && p.toks[p.i+1].Text == "(" {
		name := p.next().Text
		p.next() // (
		arg := ""
		if !p.eat(TokOp, "*") {
			a, err := p.expect(TokIdent, "")
			if err != nil {
				return SelectItem{}, err
			}
			arg = a.Text
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return SelectItem{}, err
		}
		item := SelectItem{Agg: name, AggArg: arg, Pos: t.Pos}
		if p.eat(TokKeyword, "as") {
			al, err := p.expect(TokIdent, "")
			if err != nil {
				return SelectItem{}, err
			}
			item.Alias = al.Text
		}
		return item, nil
	}
	e, err := p.expr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e, Pos: t.Pos}
	if p.eat(TokKeyword, "as") {
		al, err := p.expect(TokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = al.Text
	}
	return item, nil
}

func (p *parser) fromClause(s *SelectStmt) error {
	first, err := p.expect(TokIdent, "")
	if err != nil {
		return err
	}
	s.From.Streams = []string{first.Text}
	if p.eat(TokKeyword, "join") {
		right, err := p.expect(TokIdent, "")
		if err != nil {
			return err
		}
		s.From.Streams = append(s.From.Streams, right.Text)
		if _, err := p.expect(TokKeyword, "on"); err != nil {
			return err
		}
		l, err := p.colRef()
		if err != nil {
			return err
		}
		if _, err := p.expect(TokOp, "="); err != nil {
			return err
		}
		r, err := p.colRef()
		if err != nil {
			return err
		}
		j := &JoinClause{LeftCol: l, RightCol: r}
		if p.eat(TokKeyword, "window") {
			if p.at(TokNumber, "") {
				// count-based: WINDOW n ROWS
				numTok := p.next()
				n, convErr := strconv.Atoi(numTok.Text)
				if convErr != nil || n <= 0 {
					return errf(numTok.Pos, "bad row count %q", numTok.Text)
				}
				if _, err := p.expect(TokKeyword, "rows"); err != nil {
					return err
				}
				j.Rows = n
			} else {
				d, err := p.duration()
				if err != nil {
					return err
				}
				j.Window = d
				// Asymmetric extents: WINDOW <left>, <right>.
				if p.eat(TokOp, ",") {
					dr, err := p.duration()
					if err != nil {
						return err
					}
					j.RightWindow = dr
				}
			}
		}
		s.From.Join = j
		return nil
	}
	for p.eat(TokKeyword, "union") {
		nxt, err := p.expect(TokIdent, "")
		if err != nil {
			return err
		}
		s.From.Streams = append(s.From.Streams, nxt.Text)
	}
	return nil
}

func (p *parser) colRef() (ColRef, error) {
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return ColRef{}, err
	}
	ref := ColRef{Column: t.Text, Pos: t.Pos}
	if p.eat(TokOp, ".") {
		c, err := p.expect(TokIdent, "")
		if err != nil {
			return ColRef{}, err
		}
		ref.Stream = ref.Column
		ref.Column = c.Text
	}
	return ref, nil
}

func (p *parser) duration() (tuple.Time, error) {
	t, err := p.expect(TokDuration, "")
	if err != nil {
		return 0, err
	}
	return parseDuration(t.Text, t.Pos)
}

func parseDuration(s string, pos int) (tuple.Time, error) {
	low := strings.ToLower(s)
	var unit tuple.Time
	var numPart string
	switch {
	case strings.HasSuffix(low, "us"):
		unit, numPart = tuple.Microsecond, low[:len(low)-2]
	case strings.HasSuffix(low, "ms"):
		unit, numPart = tuple.Millisecond, low[:len(low)-2]
	case strings.HasSuffix(low, "s"):
		unit, numPart = tuple.Second, low[:len(low)-1]
	case strings.HasSuffix(low, "m"):
		unit, numPart = tuple.Minute, low[:len(low)-1]
	default:
		return 0, errf(pos, "bad duration %q", s)
	}
	f, err := strconv.ParseFloat(numPart, 64)
	if err != nil || f < 0 {
		return 0, errf(pos, "bad duration %q", s)
	}
	return tuple.Time(f * float64(unit)), nil
}

// Expression grammar: or → and → not → cmp → addsub → muldiv → unary → primary.

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokKeyword, "or") {
		pos := p.next().Pos
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "or", Left: left, Right: right, Pos: pos}
	}
	return left, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokKeyword, "and") {
		pos := p.next().Pos
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "and", Left: left, Right: right, Pos: pos}
	}
	return left, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.at(TokKeyword, "not") {
		pos := p.next().Pos
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "not", X: x, Pos: pos}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	left, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokOp {
		op := p.peek().Text
		switch op {
		case "=", "!=", "<>", "<", "<=", ">", ">=":
			pos := p.next().Pos
			if op == "<>" {
				op = "!="
			}
			right, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: op, Left: left, Right: right, Pos: pos}
		default:
			return left, nil
		}
	}
	return left, nil
}

func (p *parser) addExpr() (Expr, error) {
	left, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokOp, "+") || p.at(TokOp, "-") {
		op := p.next()
		right, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op.Text, Left: left, Right: right, Pos: op.Pos}
	}
	return left, nil
}

func (p *parser) mulExpr() (Expr, error) {
	left, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokOp, "*") || p.at(TokOp, "/") || p.at(TokOp, "%") {
		op := p.next()
		right, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op.Text, Left: left, Right: right, Pos: op.Pos}
	}
	return left, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.at(TokOp, "-") {
		pos := p.next().Pos
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x, Pos: pos}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, errf(t.Pos, "bad number %q", t.Text)
			}
			return &LitExpr{Val: tuple.Float(f), Pos: t.Pos}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad number %q", t.Text)
		}
		return &LitExpr{Val: tuple.Int(i), Pos: t.Pos}, nil
	case t.Kind == TokString:
		p.next()
		return &LitExpr{Val: tuple.String_(t.Text), Pos: t.Pos}, nil
	case t.Kind == TokKeyword && (t.Text == "true" || t.Text == "false"):
		p.next()
		return &LitExpr{Val: tuple.Bool(t.Text == "true"), Pos: t.Pos}, nil
	case t.Kind == TokIdent:
		ref, err := p.colRef()
		if err != nil {
			return nil, err
		}
		return &ColExpr{Ref: ref}, nil
	case t.Kind == TokOp && t.Text == "(":
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, errf(t.Pos, "expected an expression, found %s", t)
	}
}
