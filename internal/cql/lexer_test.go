package cql

import (
	"testing"

	"repro/internal/tuple"
)

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT id, temp FROM sensors WHERE temp > 30.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind TokKind
		text string
	}{
		{TokKeyword, "select"}, {TokIdent, "id"}, {TokOp, ","},
		{TokIdent, "temp"}, {TokKeyword, "from"}, {TokIdent, "sensors"},
		{TokKeyword, "where"}, {TokIdent, "temp"}, {TokOp, ">"},
		{TokNumber, "30.5"}, {TokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v %q, want %v %q", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexDurations(t *testing.T) {
	toks, err := Lex("2s 150ms 10us 3m 2.5s")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if toks[i].Kind != TokDuration {
			t.Errorf("token %d = %v (%q), want duration", i, toks[i].Kind, toks[i].Text)
		}
	}
	for s, want := range map[string]tuple.Time{
		"2s": 2 * tuple.Second, "150ms": 150 * tuple.Millisecond,
		"10us": 10 * tuple.Microsecond, "3m": 3 * tuple.Minute,
		"2.5s": 2500 * tuple.Millisecond,
	} {
		got, err := parseDuration(s, 0)
		if err != nil || got != want {
			t.Errorf("parseDuration(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := Lex("5x"); err == nil {
		t.Error("bad suffix accepted")
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := Lex("'hello' 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "hello" || toks[1].Text != "it's" {
		t.Errorf("strings = %q, %q", toks[0].Text, toks[1].Text)
	}
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestLexOperatorsAndComments(t *testing.T) {
	toks, err := Lex("a <= b -- comment\n c != d <> e")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tk := range toks {
		if tk.Kind == TokOp {
			ops = append(ops, tk.Text)
		}
	}
	if len(ops) != 3 || ops[0] != "<=" || ops[1] != "!=" || ops[2] != "<>" {
		t.Errorf("ops = %v", ops)
	}
}

func TestLexRejectsGarbage(t *testing.T) {
	if _, err := Lex("a @ b"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestTokenStrings(t *testing.T) {
	if (Token{Kind: TokEOF}).String() != "end of input" {
		t.Error("EOF token string")
	}
	if TokIdent.String() != "identifier" || TokDuration.String() != "duration" {
		t.Error("kind strings")
	}
}
