package cql

import (
	"testing"

	"repro/internal/tuple"
)

func TestParseCreateSlack(t *testing.T) {
	st := mustParse(t, "CREATE STREAM s (v int) TIMESTAMP EXTERNAL SKEW 100ms SLACK 50ms")
	if st.Create.Skew != 100*tuple.Millisecond || st.Create.Slack != 50*tuple.Millisecond {
		t.Fatalf("create = %+v", st.Create)
	}
	st = mustParse(t, "CREATE STREAM s (v int) SLACK 10ms")
	if st.Create.Slack != 10*tuple.Millisecond || st.Create.TS != tuple.Internal {
		t.Fatalf("create = %+v", st.Create)
	}
}

func TestParseAll(t *testing.T) {
	stmts, err := ParseAll(`
		CREATE STREAM a (v int);
		-- a comment
		CREATE STREAM b (name string);
		SELECT * FROM a ;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("parsed %d statements", len(stmts))
	}
	if stmts[0].Create == nil || stmts[1].Create == nil || stmts[2].Select == nil {
		t.Fatal("statement kinds wrong")
	}
}

func TestParseAllRespectsStringLiterals(t *testing.T) {
	stmts, err := ParseAll(`SELECT * FROM s WHERE name = 'a;b'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 1 {
		t.Fatalf("semicolon inside string split the statement: %d stmts", len(stmts))
	}
}

func TestParseAllError(t *testing.T) {
	if _, err := ParseAll("CREATE STREAM a (v int); garbage"); err == nil {
		t.Fatal("bad script accepted")
	}
	stmts, err := ParseAll("  ;;  ")
	if err != nil || len(stmts) != 0 {
		t.Fatalf("empty script: %v, %v", stmts, err)
	}
}

func TestParseWindowSlide(t *testing.T) {
	st := mustParse(t, "SELECT count(*) FROM s WINDOW 10s SLIDE 2s")
	if st.Select.Window != 10*tuple.Second || st.Select.Slide != 2*tuple.Second {
		t.Fatalf("window/slide = %v/%v", st.Select.Window, st.Select.Slide)
	}
}

func TestPlanSlidingAggregate(t *testing.T) {
	cat := testCatalog(t)
	out := runQuery(t, cat,
		"SELECT count(*) FROM sensors WINDOW 10s SLIDE 5s",
		map[string][]*tuple.Tuple{
			"sensors": {
				row(7*tuple.Second, tuple.Int(1), tuple.Float(1), tuple.String_("x")),
				row(12*tuple.Second, tuple.Int(2), tuple.Float(1), tuple.String_("x")),
			},
		})
	// Windows ending 10, 15, 20 (counts 1, 2, 1), flushed by EOS.
	if len(out) != 3 {
		t.Fatalf("rows = %v", out)
	}
	if out[1].Ts != 15*tuple.Second || out[1].Vals[0].AsInt() != 2 {
		t.Fatalf("middle window = %v", out[1])
	}
	// SLIDE > WINDOW is rejected.
	st := mustParse(t, "SELECT count(*) FROM sensors WINDOW 1s SLIDE 5s")
	if _, err := PlanSelect(st.Select, cat); err == nil {
		t.Fatal("slide > window accepted")
	}
}

func TestParseAsymmetricJoinWindow(t *testing.T) {
	st := mustParse(t, "SELECT * FROM a JOIN b ON a.k = b.k WINDOW 2s, 5s")
	j := st.Select.From.Join
	if j.Window != 2*tuple.Second || j.RightWindow != 5*tuple.Second {
		t.Fatalf("windows = %v/%v", j.Window, j.RightWindow)
	}
}

func TestPlanAsymmetricJoin(t *testing.T) {
	cat := testCatalog(t)
	// Left window tiny, right window large: a late right tuple still joins
	// an old left tuple only if the LEFT store kept it (it expires fast).
	out := runQuery(t, cat,
		"SELECT a.k, v, w FROM a JOIN b ON a.k = b.k WINDOW 1ms, 10s",
		map[string][]*tuple.Tuple{
			"a": {row(0, tuple.Int(7), tuple.Float(1))},
			"b": {row(5*tuple.Second, tuple.Int(7), tuple.Float(2))},
		})
	if len(out) != 0 {
		t.Fatalf("expired-left join = %v", out)
	}
	out = runQuery(t, cat,
		"SELECT a.k, v, w FROM a JOIN b ON a.k = b.k WINDOW 10s, 1ms",
		map[string][]*tuple.Tuple{
			"a": {row(0, tuple.Int(7), tuple.Float(1))},
			"b": {row(5*tuple.Second, tuple.Int(7), tuple.Float(2))},
		})
	if len(out) != 1 {
		t.Fatalf("wide-left join = %v", out)
	}
}

func TestParseExplain(t *testing.T) {
	st := mustParse(t, "EXPLAIN SELECT * FROM s")
	if !st.Explain || st.Select == nil {
		t.Fatalf("stmt = %+v", st)
	}
	if _, err := Parse("EXPLAIN CREATE STREAM s (x int)"); err == nil {
		t.Error("EXPLAIN of DDL accepted")
	}
}

// TestParseNeverPanics: the parser must return errors, not panic, on
// arbitrary input.
func TestParseNeverPanics(t *testing.T) {
	inputs := []string{
		"", ";;;", "SELECT", "SELECT * FROM", "((((", "')", "1s2s3s",
		"CREATE CREATE", "SELECT * FROM a JOIN", "WHERE", "*",
		"SELECT count( FROM s", "SELECT * FROM s WINDOW", "-- only a comment",
		"\x00\x01\x02", "SELECT 'unterminated FROM s",
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Parse(%q) panicked: %v", in, r)
				}
			}()
			Parse(in)
			ParseAll(in)
		}()
	}
}

// FuzzParse lives in fuzz_test.go: it covers ParseAll (multi-statement),
// determinism, and error-quality invariants beyond the panic guard above.
