package cql

import (
	"repro/internal/tuple"
)

// Stmt is a parsed statement: exactly one of Create or Select is non-nil.
// Explain marks an EXPLAIN-prefixed SELECT: the engine describes the plan
// instead of registering the query.
type Stmt struct {
	Create  *CreateStmt
	Select  *SelectStmt
	Explain bool
}

// CreateStmt declares a stream schema.
type CreateStmt struct {
	Name   string
	Fields []tuple.Field
	TS     tuple.TSKind
	// Skew is the external-timestamp skew bound (TIMESTAMP EXTERNAL SKEW d).
	Skew tuple.Time
	// Slack, when positive, tolerates out-of-order arrivals up to the
	// given bound by placing a reorder stage behind the source
	// (... SLACK 50ms).
	Slack tuple.Time
}

// SelectStmt is a continuous query.
type SelectStmt struct {
	// Star selects every column of the input relation.
	Star bool
	// Items are the select-list entries (empty iff Star).
	Items []SelectItem
	// From describes the input relation.
	From FromClause
	// Where is the optional filter expression (nil if absent).
	Where Expr
	// GroupBy is the optional grouping column (empty if absent).
	GroupBy string
	// Window is the aggregate window width (required with aggregates).
	Window tuple.Time
	// Slide is the optional hop between aggregate windows (WINDOW w SLIDE
	// s); zero means tumbling (slide == width).
	Slide tuple.Time
}

// SelectItem is one select-list entry: a column reference or an aggregate
// call.
type SelectItem struct {
	// Expr is the column expression (nil for aggregates).
	Expr Expr
	// Agg is the aggregate function name ("" for plain expressions).
	Agg string
	// AggArg is the aggregate argument column ("" means * / count).
	AggArg string
	// Alias is the optional AS name.
	Alias string
	// Pos is the source position, for error reporting.
	Pos int
}

// FromClause is either a union of streams or a binary equi-join.
type FromClause struct {
	// Streams lists the unioned stream names (len 1 = single stream).
	Streams []string
	// Join, when set, replaces the union: Streams[0] JOIN Streams[1].
	Join *JoinClause
}

// JoinClause is an equi-join with a window.
type JoinClause struct {
	LeftCol  ColRef
	RightCol ColRef
	// Window is the join window span (time-based); Rows is count-based.
	Window tuple.Time
	Rows   int
	// RightWindow, when positive, gives the right side its own extent
	// (asymmetric join: WINDOW <left>, <right>); zero means symmetric.
	RightWindow tuple.Time
}

// ColRef is a possibly-qualified column reference.
type ColRef struct {
	Stream string // "" when unqualified
	Column string
	Pos    int
}

// Expr is a boolean/arithmetic expression AST node.
type Expr interface{ exprNode() }

// BinaryExpr applies Op to Left and Right. Op is one of
// and or = != < <= > >= + - * / %.
type BinaryExpr struct {
	Op          string
	Left, Right Expr
	Pos         int
}

// UnaryExpr applies Op ("not" or "-") to X.
type UnaryExpr struct {
	Op  string
	X   Expr
	Pos int
}

// ColExpr references a column.
type ColExpr struct {
	Ref ColRef
}

// LitExpr is a literal value.
type LitExpr struct {
	Val tuple.Value
	Pos int
}

func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*ColExpr) exprNode()    {}
func (*LitExpr) exprNode()    {}
