package cql

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParse drives the lexer, parser, and expression grammar with arbitrary
// byte strings. The contract under fuzzing is total behaviour: every input —
// valid, malformed, truncated mid-token, or non-UTF-8 — must produce either
// statements or an error, never a panic or a hang, and parsing must be
// deterministic (two passes over the same input agree).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		";",
		"CREATE STREAM sensors (id int, temp float, loc string) TIMESTAMP INTERNAL",
		"CREATE STREAM trades (sym string, px float) TIMESTAMP EXTERNAL SKEW 3ms",
		"SELECT * FROM a UNION b UNION c",
		"SELECT id, temp AS celsius FROM sensors WHERE temp > 30 AND NOT (loc = 'lab')",
		"SELECT a.k, b.v FROM a JOIN b ON a.k = b.k WINDOW 2s",
		"SELECT * FROM a JOIN b ON a.k = b.k WINDOW 100 ROWS",
		"SELECT loc, avg(temp), count(*) AS n FROM sensors GROUP BY loc WINDOW 10s",
		"SELECT * FROM s WHERE a + b * 2 > 10 OR c = 'x' AND d < 5",
		"SELECT FROM s",
		"SELECT * FROM",
		"SELECT * FROM s WHERE",
		"SELECT * FROM s; SELECT * FROM t;",
		"select * from s where x = 'unterminated",
		"SELECT * FROM s WINDOW 9999999999999999999s",
		"SELECT ((((((((((x))))))))))",
		"\x00\xff\xfe",
		"SELECT *\tFROM\r\ns",
		"SELECT * FROM a UNION b WHERE v % 2 = 0",
		"CREATE STREAM s (a int, b float) TIMESTAMP EXTERNAL SKEW 10ms SLACK 5ms",
		"SELECT loc, avg(t) FROM s GROUP BY loc WINDOW 10s SLIDE 2s",
		"SELECT a.k FROM a JOIN b ON a.k = b.k WINDOW 2s, 5s",
		"EXPLAIN SELECT * FROM s WHERE x = 'it''s'",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmts, err := ParseAll(input)
		if err != nil {
			if !utf8.ValidString(input) {
				return // error text may quote garbage; nothing to check
			}
			if strings.TrimSpace(err.Error()) == "" {
				t.Fatalf("empty error for %q", input)
			}
			return
		}
		for _, st := range stmts {
			if st == nil {
				t.Fatalf("ParseAll(%q) returned a nil statement without error", input)
			}
		}
		again, err := ParseAll(input)
		if err != nil || len(again) != len(stmts) {
			t.Fatalf("ParseAll(%q) not deterministic: %d stmts then (%d, %v)",
				input, len(stmts), len(again), err)
		}
	})
}
