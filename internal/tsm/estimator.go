package tsm

import (
	"sync/atomic"

	"repro/internal/tuple"
)

// ETSEstimator computes on-demand Enabling Time-Stamp values for a source
// node, per the rules of paper §5 ("On-Demand Generation of ETS at Source
// Nodes"):
//
//   - internal timestamps: the ETS is the current (virtual) system clock —
//     any tuple entering later will be stamped with a later clock value;
//   - external timestamps: the ETS is application-dependent; with a maximum
//     inter-arrival skew bound δ, if the last tuple arrived τ ago carrying
//     timestamp t, the source can promise t + τ − δ;
//   - latent timestamps: no ETS is ever needed (IWP operators pass latent
//     tuples through immediately).
//
// Estimators also enforce monotonicity: an ETS never moves backwards, and is
// never smaller than the last timestamp already emitted on the arc.
type ETSEstimator struct {
	kind tuple.TSKind

	// δ is the maximum skew between a tuple's external timestamp and the
	// arrival clock, relative to the previous tuple (external kind only).
	// It is atomic because a networked source's per-connection skew
	// estimator raises it from the session goroutine while the source's
	// own goroutine computes ETS values; every other estimator field stays
	// single-owner.
	delta atomic.Int64

	lastTs      tuple.Time // timestamp of the last data tuple emitted
	lastArrival tuple.Time // clock at which it was emitted
	seen        bool

	lastETS tuple.Time
	hasETS  bool
}

// NewInternalEstimator returns an estimator for internally timestamped
// streams.
func NewInternalEstimator() *ETSEstimator {
	return &ETSEstimator{kind: tuple.Internal}
}

// NewExternalEstimator returns an estimator for externally timestamped
// streams with maximum skew δ between successive arrivals.
func NewExternalEstimator(delta tuple.Time) *ETSEstimator {
	e := &ETSEstimator{kind: tuple.External}
	e.delta.Store(int64(delta))
	return e
}

// Delta reports the current skew bound δ.
func (e *ETSEstimator) Delta() tuple.Time { return tuple.Time(e.delta.Load()) }

// RaiseDelta widens the skew bound to d if d exceeds the current bound.
// Only widening is allowed: δ is the safety margin that keeps an ETS a
// valid lower bound, so a measured skew larger than the configured bound
// must take effect, while a smaller measurement must not narrow the
// promise retroactively. Safe for concurrent use — the networked ingest
// path calls it from a session goroutine as its per-connection skew
// estimator learns the link's real jitter.
func (e *ETSEstimator) RaiseDelta(d tuple.Time) {
	for {
		cur := e.delta.Load()
		if int64(d) <= cur {
			return
		}
		if e.delta.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Kind reports the timestamp kind the estimator serves.
func (e *ETSEstimator) Kind() tuple.TSKind { return e.kind }

// ObserveTuple records that a data tuple with timestamp ts entered the
// system at clock now. External estimators need this history to bound
// future timestamps.
func (e *ETSEstimator) ObserveTuple(ts, now tuple.Time) {
	if ts > e.lastTs || !e.seen {
		e.lastTs = ts
	}
	e.lastArrival = now
	e.seen = true
}

// ETS returns the Enabling Time-Stamp the source can promise at clock now,
// and whether a useful (non-MinTime, monotonically advancing) value exists.
//
// For internal streams the value is now itself. For external streams it is
// t + τ − δ where t is the last external timestamp, τ = now − lastArrival;
// before any tuple has been seen no bound exists.
func (e *ETSEstimator) ETS(now tuple.Time) (tuple.Time, bool) {
	var ets tuple.Time
	switch e.kind {
	case tuple.Internal:
		ets = now
	case tuple.External:
		if !e.seen {
			return tuple.MinTime, false
		}
		elapsed := now - e.lastArrival
		ets = e.lastTs + elapsed - tuple.Time(e.delta.Load())
		if ets < e.lastTs {
			// The bound can not regress below the last emitted
			// timestamp: arcs are ordered.
			ets = e.lastTs
		}
	case tuple.Latent:
		return tuple.MinTime, false
	}
	if e.hasETS && ets <= e.lastETS {
		// Re-issuing the same (or an older) ETS would not unblock
		// anything the previous one did not already unblock.
		return e.lastETS, false
	}
	return ets, true
}

// CanBound reports whether the estimator is in a state where some future
// clock could yield a useful ETS: always for internal streams, only after
// the first observed tuple for external streams, never for latent. The
// source-liveness watchdog uses it to avoid signalling sources that could
// not answer anyway.
func (e *ETSEstimator) CanBound() bool {
	switch e.kind {
	case tuple.Internal:
		return true
	case tuple.External:
		return e.seen
	default:
		return false
	}
}

// Emit records that an ETS value was actually issued, so subsequent calls
// only report usefulness when the bound has advanced.
func (e *ETSEstimator) Emit(ets tuple.Time) {
	if !e.hasETS || ets > e.lastETS {
		e.lastETS = ets
		e.hasETS = true
	}
}

// Bound reports the strongest promise already standing on the arc: the last
// issued ETS, else the last emitted timestamp, else tuple.MinTime. Unlike
// ETS it never speculates — the value restates what downstream could
// already rely on, which is exactly what a checkpoint barrier may carry
// without lying about the future.
func (e *ETSEstimator) Bound() tuple.Time {
	if e.hasETS {
		return e.lastETS
	}
	if e.seen {
		return e.lastTs
	}
	return tuple.MinTime
}

// State exports the estimator's single-owner fields for a checkpoint
// (lastTs, lastArrival, seen, lastETS, hasETS — δ is configuration and is
// re-learned, not checkpointed). Must be called from the source's goroutine.
func (e *ETSEstimator) State() (lastTs, lastArrival tuple.Time, seen bool, lastETS tuple.Time, hasETS bool) {
	return e.lastTs, e.lastArrival, e.seen, e.lastETS, e.hasETS
}

// SetState restores the fields exported by State.
func (e *ETSEstimator) SetState(lastTs, lastArrival tuple.Time, seen bool, lastETS tuple.Time, hasETS bool) {
	e.lastTs, e.lastArrival, e.seen = lastTs, lastArrival, seen
	e.lastETS, e.hasETS = lastETS, hasETS
}
