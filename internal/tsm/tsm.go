// Package tsm implements the Time-Stamp Memory (TSM) registers of the paper
// (§4.1) and the timestamp arithmetic used for Enabling Time-Stamp (ETS)
// generation (§5).
//
// Each input of an Idle-Waiting-Prone (IWP) operator — union or join — owns a
// TSM register. The register is updated with the timestamp of the current
// input tuple (data or punctuation) and retains that value after the input
// drains, until the next tuple updates it. The registers give the operator a
// per-input lower bound on all future timestamps, which enables the *relaxed
// more condition* of Figure 5: the operator can run as soon as some input
// holds a tuple whose timestamp equals the minimum across all registers —
// even if other inputs are momentarily empty.
package tsm

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/tuple"
)

// Registers is the bank of TSM registers for one IWP operator, one per
// input. The zero value of each register is tuple.MinTime: before anything
// has arrived on an input, no lower bound on its future timestamps exists,
// so the relaxed more condition cannot hold.
type Registers struct {
	ts []tuple.Time
}

// New returns a bank of n registers, all initialized to tuple.MinTime.
func New(n int) *Registers {
	r := &Registers{ts: make([]tuple.Time, n)}
	for i := range r.ts {
		r.ts[i] = tuple.MinTime
	}
	return r
}

// Len reports the number of registers.
func (r *Registers) Len() int { return len(r.ts) }

// Get returns register i.
func (r *Registers) Get(i int) tuple.Time { return r.ts[i] }

// Set overwrites register i unconditionally — the checkpoint-restore path,
// where the saved value is a valid lower bound for the replayed stream and
// the current value is the zero MinTime.
func (r *Registers) Set(i int, ts tuple.Time) { r.ts[i] = ts }

// Update sets register i to ts if ts is larger; timestamps on an arc are
// non-decreasing so a smaller value would indicate disorder and is ignored.
// It reports whether the register advanced.
func (r *Registers) Update(i int, ts tuple.Time) bool {
	if ts > r.ts[i] {
		r.ts[i] = ts
		return true
	}
	return false
}

// Observe refreshes every register from the head tuple of its input buffer.
// Inputs that are currently empty keep their remembered value — that is the
// entire point of the registers.
func (r *Registers) Observe(ins []*buffer.Queue) {
	for i, q := range ins {
		if head := q.Peek(); head != nil {
			r.Update(i, head.Ts)
		}
	}
}

// Min returns the minimal register value — the operator-wide lower bound τ
// on the timestamp of any future input tuple — and the index of (one of) the
// inputs holding it.
func (r *Registers) Min() (tuple.Time, int) {
	min, arg := r.ts[0], 0
	for i := 1; i < len(r.ts); i++ {
		if r.ts[i] < min {
			min, arg = r.ts[i], i
		}
	}
	return min, arg
}

// More evaluates the relaxed more condition of Figure 5 against the input
// buffers: more holds iff at least one input buffer holds a head tuple whose
// timestamp does not exceed τ, the minimum across the registers. Callers
// must invoke Observe first so the registers reflect the current buffer
// heads.
//
// With ordered arcs a head timestamp below τ cannot occur (Observe raises
// the input's own register to its head, and τ is the minimum). It does
// occur when an ETS over-estimated a bound — the paper's estimators promise,
// they do not guarantee (§5) — and a data tuple below the promised bound
// arrives afterwards. Such a late tuple is matched by ≤ rather than ==, so
// it is consumed immediately (it cannot get less late) instead of wedging
// the operator: a register can never move back down to meet an exact-match
// head, and an operator that holds data it can never process demands
// upstream forever.
//
// The returned index identifies an input whose head is consumable; inputs
// holding data tuples are preferred over ones holding only punctuation, so
// that punctuation is consumed last at a given timestamp and data is never
// held back behind it.
func (r *Registers) More(ins []*buffer.Queue) (ok bool, input int, τ tuple.Time) {
	τ, _ = r.Min()
	if τ == tuple.MinTime {
		// Some input has never produced a tuple or ETS: no bound exists.
		return false, -1, τ
	}
	input = -1
	for i, q := range ins {
		head := q.Peek()
		if head == nil || head.Ts > τ {
			continue
		}
		if !head.IsPunct() {
			return true, i, τ
		}
		if input < 0 {
			input = i
		}
	}
	return input >= 0, input, τ
}

// BlockingInput identifies the input responsible for more being false: the
// (an) input whose register holds the minimal value and whose buffer is
// empty. The DFS Backtrack rule for multi-input operators (§3.2) backtracks
// to the predecessor feeding this input. When every minimal input is
// non-empty (more is true, or disorder), it returns -1.
func (r *Registers) BlockingInput(ins []*buffer.Queue) int {
	τ, _ := r.Min()
	for i, q := range ins {
		if r.ts[i] == τ && q.Empty() {
			return i
		}
	}
	// τ == MinTime with a non-empty buffer cannot happen after Observe;
	// an empty input with register above τ is not the blocker.
	for i, q := range ins {
		if q.Empty() {
			return i
		}
	}
	return -1
}

func (r *Registers) String() string {
	return fmt.Sprintf("tsm%v", r.ts)
}
