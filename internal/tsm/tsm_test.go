package tsm

import (
	"testing"
	"testing/quick"

	"repro/internal/buffer"
	"repro/internal/tuple"
)

func queues(names ...string) []*buffer.Queue {
	qs := make([]*buffer.Queue, len(names))
	for i, n := range names {
		qs[i] = buffer.New(n)
	}
	return qs
}

func TestRegistersInitialState(t *testing.T) {
	r := New(3)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	for i := 0; i < 3; i++ {
		if r.Get(i) != tuple.MinTime {
			t.Errorf("register %d = %v, want MinTime", i, r.Get(i))
		}
	}
	min, _ := r.Min()
	if min != tuple.MinTime {
		t.Errorf("Min = %v", min)
	}
}

func TestRegistersUpdateMonotone(t *testing.T) {
	r := New(1)
	if !r.Update(0, 10) {
		t.Error("first update must advance")
	}
	if r.Update(0, 5) {
		t.Error("regressing update must be ignored")
	}
	if r.Get(0) != 10 {
		t.Errorf("register = %v", r.Get(0))
	}
	if !r.Update(0, 11) {
		t.Error("larger update must advance")
	}
}

func TestObserveTakesHeadAndRemembers(t *testing.T) {
	ins := queues("a", "b")
	r := New(2)
	ins[0].Push(tuple.NewData(7))
	r.Observe(ins)
	if r.Get(0) != 7 || r.Get(1) != tuple.MinTime {
		t.Fatalf("registers = %v", r)
	}
	ins[0].Pop()
	r.Observe(ins)
	if r.Get(0) != 7 {
		t.Error("register must retain value after input drains")
	}
}

func TestMoreRequiresBoundOnEveryInput(t *testing.T) {
	ins := queues("a", "b")
	r := New(2)
	ins[0].Push(tuple.NewData(5))
	r.Observe(ins)
	ok, _, _ := r.More(ins)
	if ok {
		t.Fatal("more must be false while input b has no bound")
	}
	// Punctuation on b establishes a bound at 10 > 5: a's tuple unblocks.
	ins[1].Push(tuple.NewPunct(10))
	r.Observe(ins)
	ok, input, τ := r.More(ins)
	if !ok || input != 0 || τ != 5 {
		t.Fatalf("more = %v, input=%d, τ=%v; want true,0,5", ok, input, τ)
	}
}

func TestMoreRelaxedCondition(t *testing.T) {
	// The classic idle-waiting case the relaxed condition fixes: b drained
	// after delivering ts=9; a holds ts=9 (simultaneous tuple). Basic rules
	// would idle-wait on b; relaxed more lets a's tuple go.
	ins := queues("a", "b")
	r := New(2)
	ins[0].Push(tuple.NewData(9))
	ins[1].Push(tuple.NewData(9))
	r.Observe(ins)
	ins[1].Pop() // b's tuple consumed
	r.Observe(ins)
	ok, input, τ := r.More(ins)
	if !ok || input != 0 || τ != 9 {
		t.Fatalf("more = %v,%d,%v; want true,0,9", ok, input, τ)
	}
}

func TestMoreFalseWhenMinInputEmpty(t *testing.T) {
	ins := queues("a", "b")
	r := New(2)
	// Both saw ts 3; then both drained; then a receives ts 8. b's register
	// (3) is the minimum and b is empty: more must be false (a future b
	// tuple could carry ts in (3, 8)).
	ins[0].Push(tuple.NewData(3))
	ins[1].Push(tuple.NewData(3))
	r.Observe(ins)
	ins[0].Pop()
	ins[1].Pop()
	ins[0].Push(tuple.NewData(8))
	r.Observe(ins)
	ok, _, _ := r.More(ins)
	if ok {
		t.Fatal("more must be false: min register input is empty")
	}
	if b := r.BlockingInput(ins); b != 1 {
		t.Fatalf("BlockingInput = %d, want 1", b)
	}
}

func TestMorePrefersDataOverPunct(t *testing.T) {
	ins := queues("a", "b")
	r := New(2)
	ins[0].Push(tuple.NewPunct(4))
	ins[1].Push(tuple.NewData(4))
	r.Observe(ins)
	ok, input, τ := r.More(ins)
	if !ok || input != 1 || τ != 4 {
		t.Fatalf("more = %v,%d,%v; want data input 1 at τ=4", ok, input, τ)
	}
}

func TestMorePunctOnlyStillRuns(t *testing.T) {
	ins := queues("a", "b")
	r := New(2)
	ins[0].Push(tuple.NewPunct(4))
	ins[1].Push(tuple.NewData(9))
	r.Observe(ins)
	ok, input, τ := r.More(ins)
	if !ok || input != 0 || τ != 4 {
		t.Fatalf("more = %v,%d,%v; want punct input 0 at τ=4", ok, input, τ)
	}
}

func TestBlockingInputFallsBackToAnyEmpty(t *testing.T) {
	ins := queues("a", "b")
	r := New(2)
	ins[0].Push(tuple.NewData(3))
	ins[1].Push(tuple.NewData(5))
	r.Observe(ins)
	ins[0].Pop() // a empty with register 3 (the min)
	if b := r.BlockingInput(ins); b != 0 {
		t.Fatalf("BlockingInput = %d", b)
	}
	// No empty input at all.
	ins[0].Push(tuple.NewData(6))
	r.Observe(ins)
	if b := r.BlockingInput(ins); b != -1 {
		t.Fatalf("BlockingInput with all inputs full = %d", b)
	}
}

// Property: More never reports an input whose head timestamp differs from
// the register minimum, and τ always equals the register minimum.
func TestMorePropertyConsistency(t *testing.T) {
	f := func(tsA, tsB []uint8) bool {
		ins := queues("a", "b")
		r := New(2)
		for _, v := range tsA {
			ins[0].Push(tuple.NewData(tuple.Time(v)))
		}
		for _, v := range tsB {
			ins[1].Push(tuple.NewData(tuple.Time(v)))
		}
		// Arcs must be ordered: sort by draining via a fresh queue is
		// overkill; instead only observe (registers take head values).
		r.Observe(ins)
		ok, input, τ := r.More(ins)
		min, _ := r.Min()
		if τ != min {
			return false
		}
		if !ok {
			return input == -1 || ins[input].Empty() || ins[input].Peek().Ts != τ
		}
		return ins[input].Peek() != nil && ins[input].Peek().Ts == τ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInternalEstimator(t *testing.T) {
	e := NewInternalEstimator()
	if e.Kind() != tuple.Internal {
		t.Fatal("kind")
	}
	ets, ok := e.ETS(100)
	if !ok || ets != 100 {
		t.Fatalf("ETS = %v, %v", ets, ok)
	}
	e.Emit(ets)
	// Same clock again: not useful (would not unblock anything new).
	if _, ok := e.ETS(100); ok {
		t.Error("repeated ETS at same clock must be useless")
	}
	ets, ok = e.ETS(150)
	if !ok || ets != 150 {
		t.Fatalf("ETS advance = %v, %v", ets, ok)
	}
}

func TestExternalEstimatorSkewFormula(t *testing.T) {
	e := NewExternalEstimator(10) // δ = 10µs
	if _, ok := e.ETS(50); ok {
		t.Fatal("no bound before any tuple seen")
	}
	e.ObserveTuple(100, 105) // ext ts 100 arrived at clock 105
	// At clock 145: τ = 40 elapsed, ETS = 100 + 40 − 10 = 130.
	ets, ok := e.ETS(145)
	if !ok || ets != 130 {
		t.Fatalf("ETS = %v, %v; want 130", ets, ok)
	}
	e.Emit(ets)
	// Clock barely advanced: ETS grows with elapsed time.
	ets, ok = e.ETS(146)
	if !ok || ets != 131 {
		t.Fatalf("ETS = %v, %v; want 131", ets, ok)
	}
}

func TestExternalEstimatorNeverRegresses(t *testing.T) {
	e := NewExternalEstimator(1000)
	e.ObserveTuple(500, 500)
	// Elapsed 10 < δ: raw bound 500+10−1000 < lastTs; clamp to lastTs.
	ets, ok := e.ETS(510)
	if !ok || ets != 500 {
		t.Fatalf("ETS = %v, %v; want clamp to 500", ets, ok)
	}
	e.Emit(ets)
	if _, ok := e.ETS(511); ok {
		// 500+11−1000 clamps to 500 == lastETS: useless.
		t.Error("non-advancing ETS must be useless")
	}
}

func TestEstimatorObserveMonotoneTs(t *testing.T) {
	e := NewExternalEstimator(0)
	e.ObserveTuple(100, 100)
	e.ObserveTuple(90, 110) // out-of-order external ts must not lower the bound
	ets, ok := e.ETS(120)
	if !ok || ets < 100 {
		t.Fatalf("ETS = %v, %v; bound regressed", ets, ok)
	}
}

// Property: internal estimator ETS values are strictly increasing across
// Emit'd values for any increasing clock sequence.
func TestInternalEstimatorMonotoneProperty(t *testing.T) {
	f := func(deltas []uint8) bool {
		e := NewInternalEstimator()
		clock := tuple.Time(0)
		last := tuple.MinTime
		for _, d := range deltas {
			clock += tuple.Time(d)
			ets, ok := e.ETS(clock)
			if ok {
				if ets <= last && last != tuple.MinTime {
					return false
				}
				e.Emit(ets)
				last = ets
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// A data tuple below τ — possible after an ETS over-estimated the stream's
// bound and a later tuple undercut the promise — must be consumable
// immediately. Requiring an exact head == τ match here wedges the operator:
// the register can never come back down, so it would hold the tuple and
// demand upstream forever.
func TestRelaxedMoreConsumesLateTuple(t *testing.T) {
	r := New(2)
	qs := queues("l", "r")
	// Input 0 promised ts 520 via ETS; input 1 stands at 600.
	r.Update(0, 520)
	r.Update(1, 600)
	// A late data tuple (ts 515 < promised 520) arrives on input 0.
	qs[0].Push(tuple.NewData(515, tuple.Int(1)))
	r.Observe(qs)
	if τ, _ := r.Min(); τ != 520 {
		t.Fatalf("τ = %v, want 520 (Observe must not lower the register)", τ)
	}
	ok, input, τ := r.More(qs)
	if !ok || input != 0 {
		t.Fatalf("More = %v, %d (τ=%v); late tuple must be consumable", ok, input, τ)
	}
	// Late punctuation is likewise consumed (and simply absorbed by the
	// operator, since it advances nothing) rather than blocking the queue.
	qs[0].Pop()
	qs[0].Push(tuple.NewPunct(400))
	ok, input, _ = r.More(qs)
	if !ok || input != 0 {
		t.Fatal("late punctuation must be consumable")
	}
}
