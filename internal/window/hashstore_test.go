package window

import (
	"testing"
	"testing/quick"

	"repro/internal/tuple"
)

func kv(ts tuple.Time, key int64) *tuple.Tuple {
	return tuple.NewData(ts, tuple.Int(key))
}

func TestHashStoreRejectsBadKeyCol(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative key column accepted")
		}
	}()
	NewHashStore(TimeWindow(10), -1)
}

func TestHashStoreProbe(t *testing.T) {
	w := NewHashStore(TimeWindow(100), 0)
	w.Insert(kv(1, 7))
	w.Insert(kv(2, 8))
	w.Insert(kv(3, 7))
	var got []tuple.Time
	w.Probe(tuple.Int(7), func(tp *tuple.Tuple) { got = append(got, tp.Ts) })
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("probe(7) = %v", got)
	}
	w.Probe(tuple.Int(99), func(*tuple.Tuple) { t.Fatal("phantom match") })
	if w.Keys() != 2 || w.Len() != 3 {
		t.Errorf("keys=%d len=%d", w.Keys(), w.Len())
	}
}

func TestHashStoreExpiration(t *testing.T) {
	w := NewHashStore(TimeWindow(10), 0)
	w.Insert(kv(0, 7))
	w.Insert(kv(5, 7))
	w.Insert(kv(20, 8)) // expires kv(0,7) and kv(5,7)
	var got []tuple.Time
	w.Probe(tuple.Int(7), func(tp *tuple.Tuple) { got = append(got, tp.Ts) })
	if len(got) != 0 {
		t.Fatalf("expired tuples probeable: %v", got)
	}
	if w.Keys() != 1 || w.Len() != 1 || w.Expired() != 2 {
		t.Errorf("keys=%d len=%d expired=%d", w.Keys(), w.Len(), w.Expired())
	}
	w.ExpireTo(100)
	if w.Len() != 0 || w.Keys() != 0 {
		t.Error("ExpireTo left state behind")
	}
}

func TestHashStoreRowBound(t *testing.T) {
	w := NewHashStore(RowWindow(2), 0)
	for i := 0; i < 5; i++ {
		w.Insert(kv(tuple.Time(i), 7))
	}
	if w.Len() != 2 || w.Peak() != 2 {
		t.Fatalf("len=%d peak=%d", w.Len(), w.Peak())
	}
	var got []tuple.Time
	w.Probe(tuple.Int(7), func(tp *tuple.Tuple) { got = append(got, tp.Ts) })
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("probe after row eviction = %v", got)
	}
}

func TestHashStoreInsertPunctPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Insert(punct) must panic")
		}
	}()
	NewHashStore(RowWindow(1), 0).Insert(tuple.NewPunct(1))
}

// Property: a HashStore's probe results always match a brute-force scan of
// an equivalent plain Store.
func TestHashStoreMatchesPlainStore(t *testing.T) {
	f := func(ops []uint8, spanRaw uint8) bool {
		span := tuple.Time(spanRaw%20 + 1)
		h := NewHashStore(TimeWindow(span), 0)
		p := NewStore(TimeWindow(span))
		ts := tuple.Time(0)
		for _, op := range ops {
			ts += tuple.Time(op % 4)
			key := int64(op % 5)
			tp := kv(ts, key)
			h.Insert(tp)
			p.Insert(tp)
			if h.Len() != p.Len() {
				return false
			}
			// Probe every key and compare with a scan.
			for k := int64(0); k < 5; k++ {
				var hGot, pGot int
				h.Probe(tuple.Int(k), func(*tuple.Tuple) { hGot++ })
				p.Each(func(x *tuple.Tuple) {
					if x.Vals[0].AsInt() == k {
						pGot++
					}
				})
				if hGot != pGot {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
