package window

import (
	"fmt"

	"repro/internal/tuple"
)

// HashStore is a window store with a hash index on one key column, giving
// O(matches) equi-join probes instead of a full window scan. Tuples live in
// a ring (insertion = timestamp order) for expiration and in per-key lists
// for probing; both structures expire together.
type HashStore struct {
	spec   Spec
	keyCol int

	buf  []*tuple.Tuple
	head int
	n    int

	idx map[tuple.Value][]*tuple.Tuple

	peak     int
	inserted uint64
	expired  uint64
}

// NewHashStore returns an empty hash-indexed window keyed on column keyCol.
func NewHashStore(spec Spec, keyCol int) *HashStore {
	if keyCol < 0 {
		panic("window: negative key column")
	}
	return &HashStore{spec: spec, keyCol: keyCol, idx: make(map[tuple.Value][]*tuple.Tuple)}
}

// Spec returns the window's extent specification.
func (w *HashStore) Spec() Spec { return w.spec }

// Len reports the number of live tuples.
func (w *HashStore) Len() int { return w.n }

// Peak reports the maximum number of live tuples ever held.
func (w *HashStore) Peak() int { return w.peak }

// Inserted reports the total number of tuples ever inserted.
func (w *HashStore) Inserted() uint64 { return w.inserted }

// Expired reports the total number of tuples ever expired.
func (w *HashStore) Expired() uint64 { return w.expired }

// Insert adds t and applies the window bounds, exactly like Store.Insert.
func (w *HashStore) Insert(t *tuple.Tuple) {
	if t.IsPunct() {
		panic("window: Insert(punctuation)")
	}
	if w.n == len(w.buf) {
		w.grow()
	}
	w.buf[(w.head+w.n)%len(w.buf)] = t
	w.n++
	w.inserted++
	key := t.Vals[w.keyCol]
	w.idx[key] = append(w.idx[key], t)
	w.ExpireTo(t.Ts)
	if w.spec.Rows > 0 {
		for w.n > w.spec.Rows {
			w.popFront()
		}
	}
	if w.n > w.peak {
		w.peak = w.n
	}
}

// ExpireTo removes tuples with ts < bound − Span from both structures.
func (w *HashStore) ExpireTo(ts tuple.Time) {
	if w.spec.Span <= 0 {
		return
	}
	limit := ts - w.spec.Span
	for w.n > 0 && w.buf[w.head].Ts < limit {
		w.popFront()
	}
}

func (w *HashStore) popFront() {
	t := w.buf[w.head]
	w.buf[w.head] = nil
	w.head = (w.head + 1) % len(w.buf)
	w.n--
	w.expired++
	key := t.Vals[w.keyCol]
	lst := w.idx[key]
	// Per-key lists are in insertion order, and global expiration is in
	// insertion order, so the expiring tuple is the list head.
	if len(lst) > 0 && lst[0] == t {
		lst[0] = nil
		lst = lst[1:]
	} else {
		// Defensive: remove by scan (cannot happen with ordered
		// insertion, but a corrupted index must not leak tuples).
		for i, x := range lst {
			if x == t {
				lst = append(lst[:i], lst[i+1:]...)
				break
			}
		}
	}
	if len(lst) == 0 {
		delete(w.idx, key)
	} else {
		w.idx[key] = lst
	}
}

func (w *HashStore) grow() {
	newCap := len(w.buf) * 2
	if newCap < 8 {
		newCap = 8
	}
	nb := make([]*tuple.Tuple, newCap)
	for i := 0; i < w.n; i++ {
		nb[i] = w.buf[(w.head+i)%len(w.buf)]
	}
	w.buf = nb
	w.head = 0
}

// Probe calls fn for every live tuple whose key column equals key, in
// insertion order.
func (w *HashStore) Probe(key tuple.Value, fn func(*tuple.Tuple)) {
	for _, t := range w.idx[key] {
		fn(t)
	}
}

// Keys reports the number of distinct live keys.
func (w *HashStore) Keys() int { return len(w.idx) }

func (w *HashStore) String() string {
	return fmt.Sprintf("hash%v len=%d keys=%d peak=%d", w.spec, w.n, len(w.idx), w.peak)
}
