package window

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/tuple"
)

// Checkpoint encodings for the window stores. A snapshot records the spec
// (restore validates it against the rebuilt graph's spec — state is only
// portable across identical plans), the lifetime counters, and the live
// tuples in insertion order. Restore replays the tuples through Insert,
// which rebuilds the ring (and, for HashStore, the key index) exactly:
// re-inserting an already-live set under the same spec expires nothing,
// because every saved tuple survived at least as aggressive a bound before
// the save.

// SaveState appends the store's state to enc.
func (w *Store) SaveState(enc *ckpt.Encoder) {
	saveWindow(enc, w.spec, -1, w.peak, w.inserted, w.expired, w.n, w.Each)
}

// RestoreState rebuilds the store from dec. The store must be empty and
// built with the same spec as at save time.
func (w *Store) RestoreState(dec *ckpt.Decoder) error {
	return restoreWindow(dec, w.spec, -1, &w.peak, &w.inserted, &w.expired, w.Insert)
}

// SaveState appends the hash store's state to enc.
func (w *HashStore) SaveState(enc *ckpt.Encoder) {
	each := func(fn func(*stateTuple)) {
		for i := 0; i < w.n; i++ {
			fn(w.buf[(w.head+i)%len(w.buf)])
		}
	}
	saveWindow(enc, w.spec, w.keyCol, w.peak, w.inserted, w.expired, w.n, each)
}

// RestoreState rebuilds the hash store (ring and key index) from dec.
func (w *HashStore) RestoreState(dec *ckpt.Decoder) error {
	return restoreWindow(dec, w.spec, w.keyCol, &w.peak, &w.inserted, &w.expired, w.Insert)
}

// stateTuple aliases the tuple type so the shared helpers read naturally.
type stateTuple = tuple.Tuple

func saveWindow(enc *ckpt.Encoder, spec Spec, keyCol, peak int, inserted, expired uint64, n int, each func(func(*stateTuple))) {
	enc.Time(spec.Span)
	enc.I64(int64(spec.Rows))
	enc.I64(int64(keyCol))
	enc.Uvarint(uint64(peak))
	enc.Uvarint(inserted)
	enc.Uvarint(expired)
	enc.Uvarint(uint64(n))
	each(func(t *stateTuple) { enc.Tuple(t) })
}

func restoreWindow(dec *ckpt.Decoder, spec Spec, keyCol int, peak *int, inserted, expired *uint64, insert func(*stateTuple)) error {
	span := dec.Time()
	rows := dec.I64()
	kc := dec.I64()
	pk := dec.Uvarint()
	ins := dec.Uvarint()
	exp := dec.Uvarint()
	n := dec.Uvarint()
	if err := dec.Err(); err != nil {
		return err
	}
	if span != spec.Span || rows != int64(spec.Rows) || kc != int64(keyCol) {
		return fmt.Errorf("%w: window shape mismatch (saved span=%v rows=%d key=%d, have %v/%d/%d)",
			ckpt.ErrCorrupt, span, rows, kc, spec.Span, spec.Rows, keyCol)
	}
	for i := uint64(0); i < n; i++ {
		t := dec.Tuple()
		if t == nil {
			return dec.Err()
		}
		if keyCol >= 0 && len(t.Vals) <= keyCol {
			return fmt.Errorf("%w: window tuple arity %d lacks key column %d",
				ckpt.ErrCorrupt, len(t.Vals), keyCol)
		}
		insert(t)
	}
	if err := dec.Err(); err != nil {
		return err
	}
	// Insert bumped the lifetime counters; the saved values are the truth.
	*peak = int(pk)
	*inserted = ins
	*expired = exp
	return nil
}
