package window

import (
	"testing"
	"testing/quick"

	"repro/internal/tuple"
)

func TestSpecValidate(t *testing.T) {
	if err := TimeWindow(10).Validate(); err != nil {
		t.Errorf("time window rejected: %v", err)
	}
	if err := RowWindow(5).Validate(); err != nil {
		t.Errorf("row window rejected: %v", err)
	}
	if err := (Spec{Span: 10, Rows: 5}).Validate(); err != nil {
		t.Errorf("combined window rejected: %v", err)
	}
	for _, bad := range []Spec{{}, {Span: -1}, {Rows: -1}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("degenerate spec %v accepted", bad)
		}
	}
}

func TestSpecString(t *testing.T) {
	if s := TimeWindow(5).String(); s != "window[5µs]" {
		t.Errorf("String = %q", s)
	}
	if s := RowWindow(3).String(); s != "window[3 rows]" {
		t.Errorf("String = %q", s)
	}
	if s := (Spec{Span: 5, Rows: 3}).String(); s != "window[5µs, 3 rows]" {
		t.Errorf("String = %q", s)
	}
}

func TestTimeWindowExpiration(t *testing.T) {
	w := NewStore(TimeWindow(10))
	for _, ts := range []tuple.Time{0, 4, 8, 12} {
		w.Insert(tuple.NewData(ts))
	}
	// After inserting ts=12 with span 10, limit is 2: ts=0 expires.
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	if w.Oldest().Ts != 4 || w.Newest().Ts != 12 {
		t.Errorf("oldest/newest = %v/%v", w.Oldest().Ts, w.Newest().Ts)
	}
	if w.Expired() != 1 || w.Inserted() != 4 {
		t.Errorf("counters: expired=%d inserted=%d", w.Expired(), w.Inserted())
	}
}

func TestExpireToWithoutInsert(t *testing.T) {
	// Punctuation-driven expiration: the opposite stream's ETS advances the
	// clock and frees memory without any insertion.
	w := NewStore(TimeWindow(10))
	w.Insert(tuple.NewData(0))
	w.Insert(tuple.NewData(5))
	w.ExpireTo(14)
	if w.Len() != 1 || w.Oldest().Ts != 5 {
		t.Fatalf("after ExpireTo(14): len=%d oldest=%v", w.Len(), w.Oldest())
	}
	w.ExpireTo(100)
	if w.Len() != 0 || w.Oldest() != nil || w.Newest() != nil {
		t.Fatal("window should be empty")
	}
}

func TestBoundaryTupleStaysInWindow(t *testing.T) {
	// x expires only when x.Ts < ts − Span, so x.Ts == ts − Span stays.
	w := NewStore(TimeWindow(10))
	w.Insert(tuple.NewData(0))
	w.ExpireTo(10)
	if w.Len() != 1 {
		t.Fatal("tuple exactly at boundary must remain")
	}
	w.ExpireTo(11)
	if w.Len() != 0 {
		t.Fatal("tuple past boundary must expire")
	}
}

func TestRowWindow(t *testing.T) {
	w := NewStore(RowWindow(3))
	for i := 0; i < 10; i++ {
		w.Insert(tuple.NewData(tuple.Time(i)))
		if w.Len() > 3 {
			t.Fatalf("row bound violated: len=%d", w.Len())
		}
	}
	snap := w.Snapshot()
	if len(snap) != 3 || snap[0].Ts != 7 || snap[2].Ts != 9 {
		t.Errorf("snapshot = %v", snap)
	}
	if w.Peak() != 3 {
		t.Errorf("peak = %d", w.Peak())
	}
}

func TestCombinedWindow(t *testing.T) {
	w := NewStore(Spec{Span: 100, Rows: 2})
	w.Insert(tuple.NewData(0))
	w.Insert(tuple.NewData(1))
	w.Insert(tuple.NewData(2)) // row bound evicts ts=0
	if w.Len() != 2 || w.Oldest().Ts != 1 {
		t.Fatalf("row bound: len=%d oldest=%v", w.Len(), w.Oldest())
	}
	w.ExpireTo(200) // time bound evicts everything
	if w.Len() != 0 {
		t.Fatal("time bound should have emptied the window")
	}
}

func TestInsertPunctPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Insert(punct) must panic")
		}
	}()
	NewStore(RowWindow(1)).Insert(tuple.NewPunct(1))
}

func TestEachOrderAndWraparound(t *testing.T) {
	w := NewStore(RowWindow(4))
	for i := 0; i < 20; i++ { // forces ring wrap
		w.Insert(tuple.NewData(tuple.Time(i)))
	}
	var got []tuple.Time
	w.Each(func(tp *tuple.Tuple) { got = append(got, tp.Ts) })
	want := []tuple.Time{16, 17, 18, 19}
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v want %v", got, want)
		}
	}
}

// Property: after any monotone insertion sequence, every live tuple is
// within the span of the newest, order is preserved, and no live tuple was
// counted as expired.
func TestWindowInvariantsProperty(t *testing.T) {
	f := func(gaps []uint8, spanRaw uint8) bool {
		span := tuple.Time(spanRaw%50 + 1)
		w := NewStore(TimeWindow(span))
		ts := tuple.Time(0)
		total := 0
		for _, g := range gaps {
			ts += tuple.Time(g)
			w.Insert(tuple.NewData(ts))
			total++
		}
		if int(w.Inserted()) != total {
			return false
		}
		if w.Len()+int(w.Expired()) != total {
			return false
		}
		prev := tuple.MinTime
		ok := true
		w.Each(func(tp *tuple.Tuple) {
			if tp.Ts < prev {
				ok = false
			}
			prev = tp.Ts
			if tp.Ts < ts-span {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
