// Package window implements the sliding-window buffers used by window joins
// and windowed aggregates. The semantics follow Kang, Naughton and Viglas
// (ICDE 2003), the model the paper adopts (§2): a window W(A) over stream A
// holds the A-tuples that are still joinable; inserting a new tuple also
// expires tuples that have fallen out of the window extent.
package window

import (
	"fmt"

	"repro/internal/tuple"
)

// Spec describes a window extent. Exactly one of Span (time-based) or Rows
// (count-based) is used; when both are set, both constraints apply (a tuple
// expires when either bound evicts it).
type Spec struct {
	// Span keeps tuples whose timestamp is within Span of the newest
	// relevant timestamp. Zero means no time bound.
	Span tuple.Time
	// Rows keeps at most Rows tuples. Zero means no row bound.
	Rows int
}

// TimeWindow returns a time-based window spec.
func TimeWindow(span tuple.Time) Spec { return Spec{Span: span} }

// RowWindow returns a count-based window spec.
func RowWindow(rows int) Spec { return Spec{Rows: rows} }

// Validate reports an error when the spec is degenerate.
func (s Spec) Validate() error {
	if s.Span < 0 {
		return fmt.Errorf("window: negative span %v", s.Span)
	}
	if s.Rows < 0 {
		return fmt.Errorf("window: negative rows %d", s.Rows)
	}
	if s.Span == 0 && s.Rows == 0 {
		return fmt.Errorf("window: unbounded spec (set Span and/or Rows)")
	}
	return nil
}

func (s Spec) String() string {
	switch {
	case s.Span > 0 && s.Rows > 0:
		return fmt.Sprintf("window[%v, %d rows]", s.Span, s.Rows)
	case s.Rows > 0:
		return fmt.Sprintf("window[%d rows]", s.Rows)
	default:
		return fmt.Sprintf("window[%v]", s.Span)
	}
}

// Store holds the live tuples of one window. Tuples are kept in insertion
// (and therefore timestamp) order in a ring buffer, so expiration pops from
// the front.
type Store struct {
	spec Spec

	buf  []*tuple.Tuple
	head int
	n    int

	peak     int
	inserted uint64
	expired  uint64
}

// NewStore returns an empty window store with the given spec.
func NewStore(spec Spec) *Store {
	return &Store{spec: spec}
}

// Spec returns the window's extent specification.
func (w *Store) Spec() Spec { return w.spec }

// Len reports the number of live tuples.
func (w *Store) Len() int { return w.n }

// Peak reports the maximum number of live tuples ever held.
func (w *Store) Peak() int { return w.peak }

// Inserted reports the total number of tuples ever inserted.
func (w *Store) Inserted() uint64 { return w.inserted }

// Expired reports the total number of tuples ever expired.
func (w *Store) Expired() uint64 { return w.expired }

// Insert adds t to the window and expires tuples that the insertion pushes
// out (row bound) or that have aged out relative to t.Ts (time bound).
// Punctuation tuples must not be inserted.
func (w *Store) Insert(t *tuple.Tuple) {
	if t.IsPunct() {
		panic("window: Insert(punctuation)")
	}
	if w.n == len(w.buf) {
		w.grow()
	}
	w.buf[(w.head+w.n)%len(w.buf)] = t
	w.n++
	w.inserted++
	w.ExpireTo(t.Ts)
	if w.spec.Rows > 0 {
		for w.n > w.spec.Rows {
			w.popFront()
		}
	}
	if w.n > w.peak {
		w.peak = w.n
	}
}

// ExpireTo removes tuples that are no longer within the time extent relative
// to the given timestamp: a tuple x expires when x.Ts < ts − Span. Window
// joins call this both on insertion and when the opposite stream advances
// (including via punctuation), which is how ETS propagation frees memory.
func (w *Store) ExpireTo(ts tuple.Time) {
	if w.spec.Span <= 0 {
		return
	}
	limit := ts - w.spec.Span
	for w.n > 0 && w.buf[w.head].Ts < limit {
		w.popFront()
	}
}

func (w *Store) popFront() {
	w.buf[w.head] = nil
	w.head = (w.head + 1) % len(w.buf)
	w.n--
	w.expired++
}

func (w *Store) grow() {
	newCap := len(w.buf) * 2
	if newCap < 8 {
		newCap = 8
	}
	nb := make([]*tuple.Tuple, newCap)
	for i := 0; i < w.n; i++ {
		nb[i] = w.buf[(w.head+i)%len(w.buf)]
	}
	w.buf = nb
	w.head = 0
}

// Each calls fn for every live tuple in insertion order. fn must not mutate
// the store.
func (w *Store) Each(fn func(*tuple.Tuple)) {
	for i := 0; i < w.n; i++ {
		fn(w.buf[(w.head+i)%len(w.buf)])
	}
}

// Snapshot returns the live tuples in insertion order (a fresh slice).
func (w *Store) Snapshot() []*tuple.Tuple {
	out := make([]*tuple.Tuple, 0, w.n)
	w.Each(func(t *tuple.Tuple) { out = append(out, t) })
	return out
}

// Oldest returns the front (oldest) tuple, or nil when empty.
func (w *Store) Oldest() *tuple.Tuple {
	if w.n == 0 {
		return nil
	}
	return w.buf[w.head]
}

// Newest returns the most recently inserted live tuple, or nil when empty.
func (w *Store) Newest() *tuple.Tuple {
	if w.n == 0 {
		return nil
	}
	return w.buf[(w.head+w.n-1)%len(w.buf)]
}

func (w *Store) String() string {
	return fmt.Sprintf("%v len=%d peak=%d", w.spec, w.n, w.peak)
}
