// Package ets implements the Enabling Time-Stamp generation policies the
// paper compares (§5–6):
//
//   - None: sources never produce ETS; idle-waiting operators wait for real
//     data (the paper's scenario A).
//   - OnDemand: when DFS backtracking reaches a source with an empty inbox,
//     the source generates an ETS punctuation right then (scenario C, the
//     paper's contribution).
//   - Periodic heartbeats (scenario B, the Gigascope baseline of Johnson et
//     al.) are not a backtrack policy: they are injected on a timer
//     regardless of demand. The simulation driver (internal/sim) schedules
//     them via Source.InjectETS; see sim.Heartbeat.
package ets

import (
	"repro/internal/ops"
	"repro/internal/tuple"
)

// None never generates ETS: backtracking to an empty source simply returns
// control (paper scenario A).
type None struct{}

// Name implements exec.SourcePolicy.
func (None) Name() string { return "none" }

// OnBacktrack implements exec.SourcePolicy; it always reports false.
func (None) OnBacktrack(*ops.Source, tuple.Time) bool { return false }

// OnDemand generates an ETS at the source the moment backtracking proves an
// operator downstream is idle-waiting on it (paper scenario C). Generation
// is delegated to the source's estimator, which enforces per-kind rules and
// monotonicity (no ETS for latent streams; none before an external stream's
// first tuple; never the same bound twice).
type OnDemand struct {
	// Generated counts the ETS punctuation tuples deposited.
	Generated uint64
}

// Name implements exec.SourcePolicy.
func (o *OnDemand) Name() string { return "on-demand" }

// OnBacktrack implements exec.SourcePolicy.
func (o *OnDemand) OnBacktrack(src *ops.Source, now tuple.Time) bool {
	if !src.Inbox().Empty() {
		// Data arrived concurrently; no ETS needed.
		return false
	}
	p, ok := src.OnDemandETS(now)
	if !ok {
		return false
	}
	src.Offer(p)
	o.Generated++
	return true
}
