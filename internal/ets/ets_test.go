package ets

import (
	"testing"

	"repro/internal/ops"
	"repro/internal/tuple"
)

func TestNonePolicy(t *testing.T) {
	src := ops.NewSource("s", tuple.NewSchema("s"), 0)
	p := None{}
	if p.Name() != "none" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.OnBacktrack(src, 100) {
		t.Fatal("None injected an ETS")
	}
	if !src.Inbox().Empty() {
		t.Fatal("None touched the inbox")
	}
}

func TestOnDemandPolicyInternal(t *testing.T) {
	src := ops.NewSource("s", tuple.NewSchema("s"), 0)
	p := &OnDemand{}
	if p.Name() != "on-demand" {
		t.Errorf("Name = %q", p.Name())
	}
	if !p.OnBacktrack(src, 100) {
		t.Fatal("no ETS at first demand")
	}
	if p.Generated != 1 || src.Inbox().Len() != 1 {
		t.Fatalf("generated=%d inbox=%d", p.Generated, src.Inbox().Len())
	}
	got := src.Inbox().Pop()
	if !got.IsPunct() || got.Ts != 100 {
		t.Fatalf("ETS = %v", got)
	}
	// Same clock: the bound has not advanced, no new ETS.
	if p.OnBacktrack(src, 100) {
		t.Fatal("re-issued a stale ETS")
	}
	if !p.OnBacktrack(src, 101) {
		t.Fatal("advancing clock must re-enable ETS")
	}
}

func TestOnDemandDeclinesWithPendingData(t *testing.T) {
	src := ops.NewSource("s", tuple.NewSchema("s"), 0)
	src.Ingest(tuple.NewData(0), 50)
	p := &OnDemand{}
	if p.OnBacktrack(src, 100) {
		t.Fatal("ETS generated while data is already queued")
	}
}

func TestOnDemandLatentAndExternal(t *testing.T) {
	lat := ops.NewSource("l", tuple.NewSchema("l").WithTS(tuple.Latent), 0)
	p := &OnDemand{}
	if p.OnBacktrack(lat, 100) {
		t.Fatal("latent streams never need ETS")
	}
	ext := ops.NewSource("e", tuple.NewSchema("e").WithTS(tuple.External), 10)
	if p.OnBacktrack(ext, 100) {
		t.Fatal("external ETS before any tuple must fail")
	}
}
