// Package sim provides the discrete-event simulation substrate the
// experiments run on: a virtual clock, an event queue, stochastic arrival
// processes (Poisson, constant, bursty on-off), periodic heartbeat drivers,
// and the main loop that interleaves event delivery with engine execution
// under a CPU cost model.
//
// The paper ran its experiments in real time on the Stream Mill server; a
// 0.05 tuple-per-second stream makes that impractical to reproduce (one
// tuple every 20 seconds of wall time). The phenomena measured — idle-
// waiting latency, queue growth, punctuation overhead — are queueing
// effects of timestamp skew, so a deterministic virtual-time simulation
// reproduces their shape exactly and in milliseconds (see DESIGN.md,
// substitutions).
package sim

import (
	"container/heap"

	"repro/internal/tuple"
)

// event is one scheduled occurrence. fire runs at the event's time and is
// free to schedule further events (self-scheduling arrival processes do).
type event struct {
	at   tuple.Time
	seq  uint64 // tie-break: FIFO among simultaneous events
	fire func(now tuple.Time)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// queue is the simulator's event queue.
type queue struct {
	h   eventHeap
	seq uint64
}

func (q *queue) schedule(at tuple.Time, fire func(now tuple.Time)) {
	q.seq++
	heap.Push(&q.h, &event{at: at, seq: q.seq, fire: fire})
}

func (q *queue) empty() bool { return len(q.h) == 0 }

func (q *queue) nextAt() tuple.Time { return q.h[0].at }

func (q *queue) pop() *event { return heap.Pop(&q.h).(*event) }
