package sim

import (
	"math"
	"math/rand"

	"repro/internal/tuple"
)

// Process generates inter-arrival gaps for one stream. Implementations own
// their randomness (seeded at construction) so simulations are reproducible.
type Process interface {
	// NextGap returns the virtual-time gap until the next arrival.
	NextGap() tuple.Time
}

// Poisson is a Poisson arrival process with the given average rate, the
// traffic model of the paper's experiments (§6).
type Poisson struct {
	rate float64 // arrivals per second
	r    *rand.Rand
}

// NewPoisson returns a Poisson process with ratePerSec average arrivals per
// (virtual) second.
func NewPoisson(ratePerSec float64, seed int64) *Poisson {
	if ratePerSec <= 0 {
		panic("sim: Poisson rate must be positive")
	}
	return &Poisson{rate: ratePerSec, r: rand.New(rand.NewSource(seed))}
}

// NextGap draws an exponential gap with mean 1/rate.
func (p *Poisson) NextGap() tuple.Time {
	u := p.r.Float64()
	gap := -math.Log(1-u) / p.rate // seconds
	t := tuple.Time(gap * float64(tuple.Second))
	if t < 1 {
		t = 1 // arcs carry distinct, strictly advancing entry instants
	}
	return t
}

// Constant is a deterministic arrival process with a fixed gap.
type Constant struct {
	gap tuple.Time
}

// NewConstant returns a process emitting one arrival every gap.
func NewConstant(gap tuple.Time) *Constant {
	if gap <= 0 {
		panic("sim: constant gap must be positive")
	}
	return &Constant{gap: gap}
}

// NextGap returns the fixed gap.
func (c *Constant) NextGap() tuple.Time { return c.gap }

// Bursty is an on-off modulated Poisson process: bursts of onDur at
// burstRate separated by silent gaps of offDur. The paper's introduction
// motivates on-demand ETS with exactly this kind of non-stationary traffic
// ("very hard to achieve when the traffic is not stationary and if A or B
// are bursty").
type Bursty struct {
	inner *Poisson
	on    tuple.Time
	off   tuple.Time
	pos   tuple.Time // position within the current on-phase
}

// NewBursty returns a bursty process: Poisson at burstRate during on-phases
// of onDur, silent during off-phases of offDur.
func NewBursty(burstRate float64, onDur, offDur tuple.Time, seed int64) *Bursty {
	if onDur <= 0 || offDur < 0 {
		panic("sim: bursty durations invalid")
	}
	return &Bursty{inner: NewPoisson(burstRate, seed), on: onDur, off: offDur}
}

// NextGap draws the next gap, inserting the off-phase whenever the on-phase
// is exhausted.
func (b *Bursty) NextGap() tuple.Time {
	gap := b.inner.NextGap()
	b.pos += gap
	var silence tuple.Time
	for b.pos >= b.on {
		b.pos -= b.on
		silence += b.off
	}
	return gap + silence
}
