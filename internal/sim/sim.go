package sim

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/tuple"
)

// DefaultCostPerStep is the virtual CPU time charged per operator execution
// when a Sim does not override it. Without a cost model, punctuation
// processing would be free and the periodic-ETS overhead effects of
// Figures 7–8 could not appear.
const DefaultCostPerStep = 20 * tuple.Microsecond

// Stream describes one input stream fed into the simulation.
type Stream struct {
	// Source receives the generated tuples.
	Source *ops.Source
	// Proc generates inter-arrival gaps.
	Proc Process
	// Payload builds the i-th tuple's values; nil produces single-column
	// integer payloads.
	Payload func(i uint64) []tuple.Value
	// ExtTs supplies the application timestamp for externally timestamped
	// streams, given the arrival clock and sequence number; nil uses the
	// arrival clock itself.
	ExtTs func(arrival tuple.Time, i uint64) tuple.Time
	// Start delays the first arrival.
	Start tuple.Time
	// Heartbeat, when positive, injects a periodic ETS into the source
	// every Heartbeat of virtual time (the paper's scenario B).
	Heartbeat tuple.Time

	n uint64
}

// Sim drives one engine over virtual time.
type Sim struct {
	// Engine executes the query graph.
	Engine *exec.Engine
	// CostPerStep is the virtual CPU time charged per operator execution.
	CostPerStep tuple.Time
	// Horizon stops the simulation when the clock reaches it.
	Horizon tuple.Time
	// Warmup, when positive, resets all statistics at that instant so
	// steady-state metrics exclude start-up transients.
	Warmup tuple.Time
	// OnReset callbacks run at the warmup reset (hook for external stats).
	OnReset []func()

	clock   tuple.Time
	events  queue
	streams []*Stream
	idle    map[graph.NodeID]*metrics.IdleAccount
	span    tuple.Time // measured time (post-warmup)

	stepsRun uint64
}

// New returns a simulation over the engine with the default cost model.
func New(engine *exec.Engine, horizon tuple.Time) *Sim {
	return &Sim{
		Engine:      engine,
		CostPerStep: DefaultCostPerStep,
		Horizon:     horizon,
		idle:        make(map[graph.NodeID]*metrics.IdleAccount),
	}
}

// Clock returns the current virtual time. Sink callbacks use it to compute
// latency.
func (s *Sim) Clock() tuple.Time { return s.clock }

// Now is the clock accessor handed to exec.New.
func (s *Sim) Now() tuple.Time { return s.clock }

// AddStream registers a stream and schedules its first arrival (and its
// heartbeat train, if configured).
func (s *Sim) AddStream(st *Stream) {
	if st.Source == nil || st.Proc == nil {
		panic("sim: stream needs Source and Proc")
	}
	s.streams = append(s.streams, st)
	s.events.schedule(st.Start+st.Proc.NextGap(), func(now tuple.Time) { s.arrive(st, now) })
	if st.Heartbeat > 0 {
		s.events.schedule(st.Start+st.Heartbeat, func(now tuple.Time) { s.heartbeat(st, now) })
	}
}

// AddTrace replays a recorded trace into a source: each tuple is ingested
// at its own timestamp (as produced by cmd/wlgen or wrappers.ReadAllCSV).
// Tuples must be timestamp-ordered; the trace drives the virtual clock like
// any other event source.
func (s *Sim) AddTrace(src *ops.Source, trace []*tuple.Tuple) {
	if src == nil {
		panic("sim: AddTrace needs a Source")
	}
	prev := tuple.MinTime
	for _, t := range trace {
		if t.Ts < prev {
			panic(fmt.Sprintf("sim: trace disordered at %v after %v", t.Ts, prev))
		}
		prev = t.Ts
		t := t
		at := t.Ts
		if at < 0 {
			at = 0
		}
		s.events.schedule(at, func(now tuple.Time) { src.Ingest(t, now) })
	}
}

// TrackIdle begins idle-waiting accounting for the given node and returns
// the account (the paper's "% of time spent idle-waiting" for the union).
func (s *Sim) TrackIdle(id graph.NodeID) *metrics.IdleAccount {
	a := &metrics.IdleAccount{}
	s.idle[id] = a
	return a
}

// Schedule registers an arbitrary event (tests and custom drivers).
func (s *Sim) Schedule(at tuple.Time, fire func(now tuple.Time)) {
	s.events.schedule(at, fire)
}

// MeasuredSpan reports the virtual time covered by statistics (horizon minus
// warmup once the run completes).
func (s *Sim) MeasuredSpan() tuple.Time { return s.span }

// StepsRun reports the number of engine steps the simulation executed.
func (s *Sim) StepsRun() uint64 { return s.stepsRun }

func (s *Sim) arrive(st *Stream, now tuple.Time) {
	var vals []tuple.Value
	if st.Payload != nil {
		vals = st.Payload(st.n)
	} else {
		vals = []tuple.Value{tuple.Int(int64(st.n))}
	}
	raw := tuple.NewData(0, vals...)
	if st.Source.TSKind() == tuple.External {
		ts := now
		if st.ExtTs != nil {
			ts = st.ExtTs(now, st.n)
		}
		raw.Ts = ts
	}
	st.n++
	st.Source.Ingest(raw, now)
	s.events.schedule(now+st.Proc.NextGap(), func(t tuple.Time) { s.arrive(st, t) })
}

func (s *Sim) heartbeat(st *Stream, now tuple.Time) {
	st.Source.InjectETS(now)
	s.events.schedule(now+st.Heartbeat, func(t tuple.Time) { s.heartbeat(st, t) })
}

// Run executes the simulation until the horizon. The loop alternates event
// delivery and engine steps: each engine step advances the clock by
// CostPerStep (arrivals landing inside a busy period are delivered before
// the next step); when the engine is quiescent the clock jumps to the next
// event, charging the gap as idle-waiting time to every operator that is
// blocked while holding input tuples.
func (s *Sim) Run() error {
	if s.Horizon <= 0 {
		return fmt.Errorf("sim: horizon must be positive")
	}
	warmupDone := s.Warmup <= 0
	measureStart := s.Warmup
	for s.clock < s.Horizon {
		// Deliver everything due.
		for !s.events.empty() && s.events.nextAt() <= s.clock {
			ev := s.events.pop()
			ev.fire(ev.at)
		}
		if !warmupDone && s.clock >= s.Warmup {
			s.reset()
			warmupDone = true
		}
		if s.Engine.Step() {
			s.stepsRun++
			s.clock += s.CostPerStep
			continue
		}
		// Quiescent: jump to the next event.
		if s.events.empty() {
			break
		}
		next := s.events.nextAt()
		if next > s.Horizon {
			next = s.Horizon
		}
		if delta := next - s.clock; delta > 0 {
			for _, id := range s.Engine.BlockedWithData() {
				if a, ok := s.idle[id]; ok {
					a.AddIdle(delta)
				}
			}
			s.clock = next
		} else {
			// An event at the current instant produced no work
			// (e.g. a heartbeat on a latent stream): pop it to
			// make progress.
			ev := s.events.pop()
			ev.fire(ev.at)
		}
	}
	if s.clock > s.Horizon {
		s.clock = s.Horizon
	}
	s.span = s.clock - measureStart
	for _, a := range s.idle {
		a.AddTotal(s.span)
	}
	return nil
}

func (s *Sim) reset() {
	s.Engine.Queues().Reset()
	for _, a := range s.idle {
		a.Reset()
	}
	for _, fn := range s.OnReset {
		fn()
	}
}

// NewLatencySink builds a sink that records output latency: emission time
// minus timestamp for timestamped streams, emission time minus system-entry
// time for latent streams. Add the returned Latency's Reset to the Sim's
// OnReset list so warm-up samples are discarded.
func NewLatencySink(name string) (*ops.Sink, *metrics.Latency) {
	lat := metrics.NewLatency()
	sink := ops.NewSink(name, func(t *tuple.Tuple, now tuple.Time) {
		ref := t.Ts
		if ref == tuple.MinTime {
			ref = t.Arrived
		}
		lat.Observe(now - ref)
	})
	return sink, lat
}
