package sim

import (
	"math"
	"testing"

	"repro/internal/ets"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tuple"
)

func TestEventQueueOrdering(t *testing.T) {
	var q queue
	var got []int
	q.schedule(30, func(tuple.Time) { got = append(got, 3) })
	q.schedule(10, func(tuple.Time) { got = append(got, 1) })
	q.schedule(20, func(tuple.Time) { got = append(got, 2) })
	q.schedule(10, func(tuple.Time) { got = append(got, 11) }) // FIFO tie-break
	for !q.empty() {
		ev := q.pop()
		ev.fire(ev.at)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
}

func TestPoissonMeanGap(t *testing.T) {
	p := NewPoisson(50, 1) // 50/s → mean gap 20ms
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		g := p.NextGap()
		if g <= 0 {
			t.Fatal("non-positive gap")
		}
		sum += float64(g)
	}
	mean := sum / float64(n)
	want := float64(20 * tuple.Millisecond)
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("Poisson mean gap = %.0fµs, want ≈ %.0fµs", mean, want)
	}
}

func TestPoissonDeterministicBySeed(t *testing.T) {
	a, b := NewPoisson(10, 7), NewPoisson(10, 7)
	for i := 0; i < 100; i++ {
		if a.NextGap() != b.NextGap() {
			t.Fatal("same seed must give same gaps")
		}
	}
	c := NewPoisson(10, 8)
	same := true
	a2 := NewPoisson(10, 7)
	for i := 0; i < 10; i++ {
		if a2.NextGap() != c.NextGap() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical gap streams")
	}
}

func TestPoissonRejectsBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero rate must panic")
		}
	}()
	NewPoisson(0, 1)
}

func TestConstantProcess(t *testing.T) {
	c := NewConstant(5 * tuple.Millisecond)
	for i := 0; i < 3; i++ {
		if c.NextGap() != 5*tuple.Millisecond {
			t.Fatal("constant gap wrong")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("zero gap must panic")
		}
	}()
	NewConstant(0)
}

func TestBurstyAverageRate(t *testing.T) {
	// 10x burst rate, 1s on / 9s off → average rate equals burstRate/10.
	b := NewBursty(500, tuple.Second, 9*tuple.Second, 3)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += float64(b.NextGap())
	}
	mean := sum / float64(n)
	want := float64(tuple.Second) / 50 // average 50/s
	if math.Abs(mean-want)/want > 0.1 {
		t.Errorf("bursty mean gap = %.0fµs, want ≈ %.0fµs", mean, want)
	}
}

// pipeline builds source → sink with a latency recorder and returns the
// pieces.
func pipeline(tsKind tuple.TSKind) (*graph.Graph, *ops.Source, *ops.Sink, func() int) {
	g := graph.New("p")
	sch := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind}).WithTS(tsKind)
	src := ops.NewSource("src", sch, 0)
	n := g.AddNode(src)
	count := 0
	sink := ops.NewSink("sink", func(*tuple.Tuple, tuple.Time) { count++ })
	g.AddNode(sink, n)
	return g, src, sink, func() int { return count }
}

func TestSimDeliversPoissonStream(t *testing.T) {
	g, src, _, count := pipeline(tuple.Internal)
	var s *Sim
	e := exec.MustNew(g, nil, func() tuple.Time { return s.Clock() })
	s = New(e, 10*tuple.Second)
	s.AddStream(&Stream{Source: src, Proc: NewPoisson(100, 1)})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// ~1000 arrivals expected over 10s at 100/s.
	got := count()
	if got < 800 || got > 1200 {
		t.Errorf("delivered %d tuples, want ≈ 1000", got)
	}
	if s.Clock() < 10*tuple.Second {
		t.Errorf("clock stopped early at %v", s.Clock())
	}
	if s.StepsRun() == 0 {
		t.Error("no steps recorded")
	}
}

func TestSimHorizonValidation(t *testing.T) {
	g, _, _, _ := pipeline(tuple.Internal)
	var s *Sim
	e := exec.MustNew(g, nil, func() tuple.Time { return s.Clock() })
	s = New(e, 0)
	if err := s.Run(); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestSimWarmupResetsStats(t *testing.T) {
	g, src, _, _ := pipeline(tuple.Internal)
	var s *Sim
	e := exec.MustNew(g, nil, func() tuple.Time { return s.Clock() })
	s = New(e, 10*tuple.Second)
	s.Warmup = 5 * tuple.Second
	resetCalled := false
	s.OnReset = append(s.OnReset, func() { resetCalled = true })
	s.AddStream(&Stream{Source: src, Proc: NewPoisson(100, 1)})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !resetCalled {
		t.Error("OnReset not invoked")
	}
	if s.MeasuredSpan() != 5*tuple.Second {
		t.Errorf("MeasuredSpan = %v, want 5s", s.MeasuredSpan())
	}
}

func TestSimIdleAccounting(t *testing.T) {
	// Union fed by one active and one silent stream, no ETS: the union
	// must be idle-waiting essentially the whole time.
	g := graph.New("u")
	sch := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind})
	src1 := ops.NewSource("s1", sch, 0)
	src2 := ops.NewSource("s2", sch, 0)
	a := g.AddNode(src1)
	b := g.AddNode(src2)
	u := g.AddNode(ops.NewUnion("u", nil, 2, ops.TSM), a, b)
	g.AddNode(ops.NewSink("k", nil), u)

	var s *Sim
	e := exec.MustNew(g, nil, func() tuple.Time { return s.Clock() })
	s = New(e, 10*tuple.Second)
	idle := s.TrackIdle(u)
	s.AddStream(&Stream{Source: src1, Proc: NewPoisson(100, 1)})
	s.AddStream(&Stream{Source: src2, Proc: NewConstant(100 * tuple.Second)}) // silent within horizon
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if idle.Fraction() < 0.95 {
		t.Errorf("idle fraction = %.3f, want ≈ 1", idle.Fraction())
	}
	if idle.Total() != s.MeasuredSpan() {
		t.Errorf("idle total %v != span %v", idle.Total(), s.MeasuredSpan())
	}
}

func TestSimOnDemandKeepsUnionLive(t *testing.T) {
	g := graph.New("u")
	sch := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind})
	src1 := ops.NewSource("s1", sch, 0)
	src2 := ops.NewSource("s2", sch, 0)
	a := g.AddNode(src1)
	b := g.AddNode(src2)
	u := g.AddNode(ops.NewUnion("u", nil, 2, ops.TSM), a, b)
	sink, lat := NewLatencySink("k")
	g.AddNode(sink, u)

	var s *Sim
	pol := &ets.OnDemand{}
	e := exec.MustNew(g, pol, func() tuple.Time { return s.Clock() })
	s = New(e, 10*tuple.Second)
	idle := s.TrackIdle(u)
	s.AddStream(&Stream{Source: src1, Proc: NewPoisson(100, 1)})
	s.AddStream(&Stream{Source: src2, Proc: NewConstant(100 * tuple.Second)})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if idle.Fraction() > 0.01 {
		t.Errorf("idle fraction = %.4f with on-demand ETS", idle.Fraction())
	}
	if lat.Count() == 0 || lat.Mean() > tuple.Millisecond {
		t.Errorf("latency: n=%d mean=%v", lat.Count(), lat.Mean())
	}
	if pol.Generated == 0 {
		t.Error("no on-demand ETS generated")
	}
}

func TestSimHeartbeatStream(t *testing.T) {
	g, src, sink, _ := pipeline(tuple.Internal)
	var s *Sim
	e := exec.MustNew(g, nil, func() tuple.Time { return s.Clock() })
	s = New(e, 10*tuple.Second)
	s.AddStream(&Stream{
		Source:    src,
		Proc:      NewConstant(100 * tuple.Second), // no data in horizon
		Heartbeat: tuple.Second,
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// ~10 heartbeats eliminated at the sink.
	if got := sink.PunctEliminated(); got < 8 || got > 12 {
		t.Errorf("heartbeats at sink = %d, want ≈ 10", got)
	}
}

func TestSimExternalTimestampStream(t *testing.T) {
	g, src, _, count := pipeline(tuple.External)
	var s *Sim
	e := exec.MustNew(g, nil, func() tuple.Time { return s.Clock() })
	s = New(e, tuple.Second)
	var seenTs []tuple.Time
	s.AddStream(&Stream{
		Source: src,
		Proc:   NewConstant(100 * tuple.Millisecond),
		ExtTs: func(arrival tuple.Time, i uint64) tuple.Time {
			seenTs = append(seenTs, arrival-10*tuple.Millisecond)
			return arrival - 10*tuple.Millisecond
		},
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count() == 0 || len(seenTs) == 0 {
		t.Fatal("no external tuples flowed")
	}
}

func TestSimAddStreamValidation(t *testing.T) {
	g, src, _, _ := pipeline(tuple.Internal)
	var s *Sim
	e := exec.MustNew(g, nil, func() tuple.Time { return s.Clock() })
	s = New(e, tuple.Second)
	defer func() {
		if recover() == nil {
			t.Error("stream without Proc must panic")
		}
	}()
	s.AddStream(&Stream{Source: src})
}

func TestSimAddTrace(t *testing.T) {
	g, src, _, count := pipeline(tuple.Internal)
	var s *Sim
	e := exec.MustNew(g, nil, func() tuple.Time { return s.Clock() })
	s = New(e, tuple.Second)
	trace := []*tuple.Tuple{
		tuple.NewData(100*tuple.Millisecond, tuple.Int(1)),
		tuple.NewData(250*tuple.Millisecond, tuple.Int(2)),
		tuple.NewData(900*tuple.Millisecond, tuple.Int(3)),
	}
	s.AddTrace(src, trace)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count() != 3 {
		t.Fatalf("replayed %d of 3", count())
	}
}

func TestSimAddTraceValidation(t *testing.T) {
	g, src, _, _ := pipeline(tuple.Internal)
	var s *Sim
	e := exec.MustNew(g, nil, func() tuple.Time { return s.Clock() })
	s = New(e, tuple.Second)
	defer func() {
		if recover() == nil {
			t.Error("disordered trace accepted")
		}
	}()
	s.AddTrace(src, []*tuple.Tuple{tuple.NewData(100), tuple.NewData(50)})
}
