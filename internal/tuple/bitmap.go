package tuple

import "math/bits"

// Bitmap is a growable validity bitmap: bit i is set when row i holds a
// non-null value. The zero Bitmap is empty and usable; reads past the
// allocated words report false, so an all-null column needs no storage.
type Bitmap struct {
	w []uint64
}

// Get reports bit i. Out-of-range bits read as false.
func (b *Bitmap) Get(i int) bool {
	wi := i >> 6
	if wi >= len(b.w) {
		return false
	}
	return b.w[wi]&(1<<uint(i&63)) != 0
}

// Set sets bit i, growing the word array as needed.
func (b *Bitmap) Set(i int) {
	wi := i >> 6
	if wi >= len(b.w) {
		b.grow(wi + 1)
	}
	b.w[wi] |= 1 << uint(i&63)
}

// SetAll sets bits [0, n).
func (b *Bitmap) SetAll(n int) {
	if n <= 0 {
		return
	}
	words := (n + 63) >> 6
	if words > len(b.w) {
		b.grow(words)
	}
	for i := 0; i < words-1; i++ {
		b.w[i] = ^uint64(0)
	}
	rem := uint(n & 63)
	if rem == 0 {
		b.w[words-1] = ^uint64(0)
	} else {
		b.w[words-1] |= (1 << rem) - 1
	}
}

// AllSet reports whether every bit in [0, n) is set.
func (b *Bitmap) AllSet(n int) bool {
	if n <= 0 {
		return true
	}
	words := n >> 6
	if words > len(b.w) {
		return false
	}
	for i := 0; i < words; i++ {
		if b.w[i] != ^uint64(0) {
			return false
		}
	}
	rem := uint(n & 63)
	if rem == 0 {
		return true
	}
	if words >= len(b.w) {
		return false
	}
	mask := uint64(1)<<rem - 1
	return b.w[words]&mask == mask
}

// Count reports the number of set bits in [0, n).
func (b *Bitmap) Count(n int) int {
	if n <= 0 {
		return 0
	}
	words := n >> 6
	if words > len(b.w) {
		words = len(b.w)
	}
	c := 0
	for i := 0; i < words; i++ {
		c += bits.OnesCount64(b.w[i])
	}
	if rem := uint(n & 63); rem != 0 && n>>6 < len(b.w) {
		c += bits.OnesCount64(b.w[n>>6] & (uint64(1)<<rem - 1))
	}
	return c
}

// Reset clears all bits, retaining capacity.
func (b *Bitmap) Reset() {
	for i := range b.w {
		b.w[i] = 0
	}
	b.w = b.w[:0]
}

// Words exposes the raw word array covering bits [0, n); the returned slice
// is padded with zero words to exactly ceil(n/64) entries. Used by the wire
// codec; callers must not mutate the words.
func (b *Bitmap) Words(n int) []uint64 {
	words := (n + 63) >> 6
	if words > len(b.w) {
		b.grow(words)
	}
	return b.w[:words]
}

// SetWords replaces the bitmap content with the given words (bits beyond the
// caller's row count must be zero). The slice is copied.
func (b *Bitmap) SetWords(w []uint64) {
	if cap(b.w) < len(w) {
		b.w = make([]uint64, len(w))
	} else {
		b.w = b.w[:len(w)]
	}
	copy(b.w, w)
}

func (b *Bitmap) grow(words int) {
	if cap(b.w) < words {
		nw := make([]uint64, words, max(words, 2*cap(b.w)))
		copy(nw, b.w)
		b.w = nw
		return
	}
	old := len(b.w)
	b.w = b.w[:words]
	for i := old; i < words; i++ {
		b.w[i] = 0
	}
}
