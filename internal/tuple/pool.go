package tuple

import "sync"

// Allocation pooling for the hot path. The concurrent runtime moves millions
// of tuples per second; allocating every Tuple (and every batch slice that
// carries tuples along an arc) from the heap makes the garbage collector the
// bottleneck long before the operators are. The pools below let the steady
// state recycle both.
//
// Ownership discipline: a tuple obtained from Get/GetPunct is owned by
// whoever holds the pointer; Put hands it back and the caller must not touch
// it afterwards. Recycling is always optional — a tuple that is never Put is
// simply collected by the GC, so code that cannot prove ownership (fan-out
// graphs, callbacks that retain tuples) just skips the Put.

var tuplePool = sync.Pool{New: func() interface{} { return new(Tuple) }}

// Get returns a cleared data tuple from the pool. Vals has length zero but
// retains the capacity of its previous life, so refilling it with append is
// allocation-free in the steady state.
func Get() *Tuple {
	t := tuplePool.Get().(*Tuple)
	t.Kind = Data
	return t
}

// GetData returns a pooled data tuple stamped ts whose Vals slice has been
// grown to n null values, ready for indexed assignment.
func GetData(ts Time, n int) *Tuple { return asData(Get(), ts, n) }

func asData(t *Tuple, ts Time, n int) *Tuple {
	t.Ts = ts
	if cap(t.Vals) < n {
		t.Vals = make([]Value, n)
	} else {
		t.Vals = t.Vals[:n]
		for i := range t.Vals {
			t.Vals[i] = Value{}
		}
	}
	return t
}

// GetPunct returns a pooled punctuation tuple carrying the ETS value ts.
func GetPunct(ts Time) *Tuple {
	t := tuplePool.Get().(*Tuple)
	t.Ts = ts
	t.Kind = Punct
	t.Vals = t.Vals[:0]
	return t
}

// Put recycles t. The caller must own t exclusively: no other goroutine,
// queue, window store or downstream operator may still reference it. Put is
// nil-safe so release paths need no guard.
func Put(t *Tuple) {
	if t == nil {
		return
	}
	t.Ts = 0
	t.Kind = Data
	t.Vals = t.Vals[:0]
	t.Arrived = 0
	t.Seq = 0
	t.Trace = 0
	t.Ckpt = 0
	tuplePool.Put(t)
}

// MagazineSize is the number of tuples a Magazine exchanges with the shared
// depot in one refill or spill.
const MagazineSize = 64

// magazineDepot holds full magazines: slabs of MagazineSize recycled tuples.
var magazineDepot sync.Pool

// Magazine is a goroutine-local tuple cache layered over the shared pool.
// Get and Put work on a plain local stack; only when the stack runs dry (or
// overflows) does the magazine exchange a whole MagazineSize slab with the
// shared depot — one synchronized operation per MagazineSize tuples instead
// of one per tuple, which matters when the getter and the putter live on
// different goroutines (a wrapper allocating tuples that a sink recycles)
// and every per-tuple pool access would cross CPUs. The zero Magazine is
// ready to use. A Magazine must not be shared between goroutines.
type Magazine struct {
	stack []*Tuple
}

// Get returns a cleared data tuple, refilling from the shared depot (or the
// per-tuple pool, or the heap) when the local stack is empty. The tuple has
// the same state as one from the package-level Get.
func (m *Magazine) Get() *Tuple {
	n := len(m.stack)
	if n == 0 {
		if bb, _ := magazineDepot.Get().(*batchBox); bb != nil {
			m.stack = bb.s
			n = len(m.stack)
		}
		if n == 0 {
			return Get()
		}
	}
	t := m.stack[n-1]
	m.stack[n-1] = nil
	m.stack = m.stack[:n-1]
	t.Kind = Data
	return t
}

// GetData is the magazine form of the package-level GetData: a data tuple
// stamped ts with n null values ready for indexed assignment.
func (m *Magazine) GetData(ts Time, n int) *Tuple { return asData(m.Get(), ts, n) }

// Put recycles t into the local stack, spilling a full magazine to the
// shared depot once the stack holds two magazines' worth. Put is nil-safe
// and requires the same exclusive ownership as the package-level Put.
func (m *Magazine) Put(t *Tuple) {
	if t == nil {
		return
	}
	t.Ts = 0
	t.Kind = Data
	t.Vals = t.Vals[:0]
	t.Arrived = 0
	t.Seq = 0
	t.Trace = 0
	t.Ckpt = 0
	if len(m.stack) >= 2*MagazineSize {
		top := len(m.stack) - MagazineSize
		spill := make([]*Tuple, MagazineSize)
		copy(spill, m.stack[top:])
		for i := top; i < len(m.stack); i++ {
			m.stack[i] = nil
		}
		m.stack = m.stack[:top]
		magazineDepot.Put(&batchBox{s: spill})
	}
	m.stack = append(m.stack, t)
}

// batchBox wraps a batch slice so the pool can hold it without re-boxing the
// slice header on every round trip.
type batchBox struct{ s []*Tuple }

// BatchPool recycles the []*Tuple slices the runtime's arcs carry. Slices
// come back with length zero and at least the pool's configured capacity.
type BatchPool struct {
	capacity int
	p        sync.Pool
}

// NewBatchPool returns a pool of batch slices with the given capacity hint.
func NewBatchPool(capacity int) *BatchPool {
	if capacity < 1 {
		capacity = 1
	}
	bp := &BatchPool{capacity: capacity}
	bp.p.New = func() interface{} {
		return &batchBox{s: make([]*Tuple, 0, capacity)}
	}
	return bp
}

// Get returns an empty batch slice with capacity ≥ the pool's hint.
func (bp *BatchPool) Get() []*Tuple {
	return bp.p.Get().(*batchBox).s[:0]
}

// Put recycles a batch slice. Entries are cleared so recycled slices do not
// pin tuples against the GC; the tuples themselves are not Put — their
// ownership moved to whoever consumed the batch.
func (bp *BatchPool) Put(b []*Tuple) {
	if b == nil {
		return
	}
	for i := range b {
		b[i] = nil
	}
	bp.p.Put(&batchBox{s: b[:0]})
}
