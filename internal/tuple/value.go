package tuple

import (
	"fmt"
	"math"
	"strconv"
)

// ValueKind enumerates the attribute types supported by the engine.
type ValueKind uint8

const (
	// Null is the zero Value.
	Null ValueKind = iota
	// IntKind holds a 64-bit signed integer.
	IntKind
	// FloatKind holds a 64-bit float.
	FloatKind
	// StringKind holds a string.
	StringKind
	// BoolKind holds a boolean.
	BoolKind
	// TimeKind holds a virtual-time value (e.g. an application timestamp
	// attribute for externally timestamped streams).
	TimeKind
)

func (k ValueKind) String() string {
	switch k {
	case Null:
		return "null"
	case IntKind:
		return "int"
	case FloatKind:
		return "float"
	case StringKind:
		return "string"
	case BoolKind:
		return "bool"
	case TimeKind:
		return "time"
	default:
		return fmt.Sprintf("ValueKind(%d)", uint8(k))
	}
}

// ParseValueKind maps a type name (as written in CQL schemas) to a ValueKind.
func ParseValueKind(s string) (ValueKind, error) {
	switch s {
	case "int":
		return IntKind, nil
	case "float", "double", "real":
		return FloatKind, nil
	case "string", "varchar", "text":
		return StringKind, nil
	case "bool", "boolean":
		return BoolKind, nil
	case "time", "timestamp":
		return TimeKind, nil
	default:
		return Null, fmt.Errorf("unknown type %q", s)
	}
}

// Value is a compact tagged union holding one attribute value. The zero
// Value is Null. Values are comparable with Compare and Equal; the engine
// never compares values of different kinds except against Null.
type Value struct {
	kind ValueKind
	i    int64 // IntKind, BoolKind (0/1), TimeKind
	f    float64
	s    string
}

// Int returns an integer Value.
func Int(v int64) Value { return Value{kind: IntKind, i: v} }

// Float returns a float Value.
func Float(v float64) Value { return Value{kind: FloatKind, f: v} }

// String_ returns a string Value. (Named with a trailing underscore because
// Value already has a String() method satisfying fmt.Stringer.)
func String_(v string) Value { return Value{kind: StringKind, s: v} }

// Bool returns a boolean Value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: BoolKind, i: i}
}

// TimeVal returns a virtual-time Value.
func TimeVal(v Time) Value { return Value{kind: TimeKind, i: int64(v)} }

// Kind reports the kind of v.
func (v Value) Kind() ValueKind { return v.kind }

// IsNull reports whether v is the Null value.
func (v Value) IsNull() bool { return v.kind == Null }

// AsInt returns the integer payload; it is 0 unless Kind is IntKind.
func (v Value) AsInt() int64 {
	if v.kind == IntKind {
		return v.i
	}
	return 0
}

// AsFloat returns the numeric payload as a float64. Integer and time values
// are widened; other kinds return 0.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case FloatKind:
		return v.f
	case IntKind, TimeKind:
		return float64(v.i)
	default:
		return 0
	}
}

// AsString returns the string payload; it is "" unless Kind is StringKind.
func (v Value) AsString() string {
	if v.kind == StringKind {
		return v.s
	}
	return ""
}

// AsBool returns the boolean payload; it is false unless Kind is BoolKind.
func (v Value) AsBool() bool { return v.kind == BoolKind && v.i != 0 }

// AsTime returns the time payload; it is 0 unless Kind is TimeKind.
func (v Value) AsTime() Time {
	if v.kind == TimeKind {
		return Time(v.i)
	}
	return 0
}

// Equal reports whether v and o hold the same kind and payload, except that
// numeric kinds (int, float, time) compare by numeric value.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 && v.comparable_(o) }

func (v Value) comparable_(o Value) bool {
	if v.kind == o.kind {
		return true
	}
	return v.isNumeric() && o.isNumeric()
}

func (v Value) isNumeric() bool {
	return v.kind == IntKind || v.kind == FloatKind || v.kind == TimeKind
}

// Compare orders v against o: -1, 0, +1. Null sorts before everything;
// values of incomparable kinds order by kind tag (stable but arbitrary).
func (v Value) Compare(o Value) int {
	if v.isNumeric() && o.isNumeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		switch {
		case v.kind < o.kind:
			return -1
		default:
			return 1
		}
	}
	switch v.kind {
	case Null:
		return 0
	case StringKind:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		default:
			return 0
		}
	case BoolKind:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// FNV-1a constants for Hash.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvWord(h uint64, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(w>>(8*i)))
	}
	return h
}

// Hash returns a 64-bit hash of v, consistent with Equal: values that compare
// equal hash equally. Numeric kinds (int, float, time) are equal by numeric
// value, so they hash through their float64 widening (with -0 normalized to
// +0); the hash partitioner relies on this so that an int key on one join
// input co-locates with a float key on the other.
func (v Value) Hash() uint64 {
	h := fnvOffset64
	switch {
	case v.isNumeric():
		f := v.AsFloat()
		if f == 0 {
			f = 0 // normalize -0.0: it compares equal to +0.0
		}
		h = fnvByte(h, 1)
		h = fnvWord(h, math.Float64bits(f))
	case v.kind == StringKind:
		h = fnvByte(h, 2)
		for i := 0; i < len(v.s); i++ {
			h = fnvByte(h, v.s[i])
		}
	case v.kind == BoolKind:
		h = fnvByte(h, 3)
		h = fnvByte(h, byte(v.i))
	default: // Null
		h = fnvByte(h, 0)
	}
	return h
}

// String renders v for debugging and CSV output.
func (v Value) String() string {
	switch v.kind {
	case Null:
		return "null"
	case IntKind:
		return strconv.FormatInt(v.i, 10)
	case FloatKind:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case StringKind:
		return v.s
	case BoolKind:
		return strconv.FormatBool(v.i != 0)
	case TimeKind:
		return Time(v.i).String()
	default:
		return fmt.Sprintf("Value(kind=%d)", v.kind)
	}
}

// ParseValue parses s as a value of the requested kind (used by the CSV
// wrapper and the CQL literal parser).
func ParseValue(kind ValueKind, s string) (Value, error) {
	switch kind {
	case IntKind:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parse int %q: %w", s, err)
		}
		return Int(i), nil
	case FloatKind:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parse float %q: %w", s, err)
		}
		return Float(f), nil
	case StringKind:
		return String_(s), nil
	case BoolKind:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Value{}, fmt.Errorf("parse bool %q: %w", s, err)
		}
		return Bool(b), nil
	case TimeKind:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parse time %q: %w", s, err)
		}
		return TimeVal(Time(i)), nil
	default:
		return Value{}, fmt.Errorf("cannot parse into kind %v", kind)
	}
}
