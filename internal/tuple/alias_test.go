package tuple

import "testing"

// TestWithTsAliasing pins the documented aliasing contract: WithTs never
// mutates the original (stamping a latent tuple leaves it at MinTime) and
// shares the Vals backing array, while Clone is fully independent.
func TestWithTsAliasing(t *testing.T) {
	orig := &Tuple{Ts: MinTime, Kind: Data, Vals: []Value{Int(1), String_("a")}, Arrived: 7, Seq: 3}
	stamped := orig.WithTs(42)
	if orig.Ts != MinTime {
		t.Fatalf("WithTs mutated the original: Ts=%v", orig.Ts)
	}
	if stamped.Ts != 42 || stamped.Arrived != 7 || stamped.Seq != 3 {
		t.Fatalf("WithTs copy wrong: %+v", stamped)
	}
	if &stamped.Vals[0] != &orig.Vals[0] {
		t.Fatal("WithTs must alias Vals (documented contract)")
	}

	clone := orig.Clone()
	if &clone.Vals[0] == &orig.Vals[0] {
		t.Fatal("Clone must not alias Vals")
	}
	clone.Vals[0] = Int(99)
	if orig.Vals[0].AsInt() != 1 {
		t.Fatal("mutating a clone leaked into the original")
	}

	// Recycling the original invalidates a WithTs copy but not a Clone —
	// the reason operators that retain stamped tuples past the batch
	// boundary take the Clone path.
	Put(orig)
	if clone.Vals[1].AsString() != "a" {
		t.Fatal("clone damaged by recycling the original")
	}
}

// TestWithTsPunct covers the punctuation stamping path: punct tuples have
// nil Vals, so the copy is trivially independent.
func TestWithTsPunct(t *testing.T) {
	p := NewPunct(10)
	q := p.WithTs(20)
	if p.Ts != 10 || q.Ts != 20 || !q.IsPunct() {
		t.Fatalf("punct WithTs: p=%v q=%v", p, q)
	}
}
