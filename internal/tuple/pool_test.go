package tuple

import "testing"

func TestPoolGetPutRoundTrip(t *testing.T) {
	tp := Get()
	tp.Ts = 42
	tp.Vals = append(tp.Vals, Int(1), Int(2))
	tp.Seq = 7
	tp.Arrived = 9
	Put(tp)

	got := Get()
	if got.Kind != Data || got.Ts != 0 || len(got.Vals) != 0 || got.Seq != 0 || got.Arrived != 0 {
		t.Fatalf("pooled tuple not cleared: %+v", got)
	}
	Put(got)
	Put(nil) // nil-safe
}

func TestPoolGetPunct(t *testing.T) {
	p := GetPunct(99)
	if !p.IsPunct() || p.Ts != 99 || len(p.Vals) != 0 {
		t.Fatalf("GetPunct = %+v", p)
	}
	Put(p)
	if e := GetPunct(MaxTime); !e.IsEOS() {
		t.Fatal("GetPunct(MaxTime) must be EOS")
	}
}

func TestPoolGetData(t *testing.T) {
	tp := Get()
	tp.Vals = append(tp.Vals, Int(1), Int(2), Int(3), Int(4))
	Put(tp)

	d := GetData(5, 2)
	if d.Ts != 5 || len(d.Vals) != 2 {
		t.Fatalf("GetData = %+v", d)
	}
	for i, v := range d.Vals {
		if !v.IsNull() {
			t.Fatalf("Vals[%d] not null after recycle: %v", i, v)
		}
	}
	big := GetData(1, 8)
	if len(big.Vals) != 8 {
		t.Fatalf("GetData growth: len=%d", len(big.Vals))
	}
}

func TestBatchPool(t *testing.T) {
	bp := NewBatchPool(16)
	b := bp.Get()
	if len(b) != 0 || cap(b) < 16 {
		t.Fatalf("batch len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, NewData(1), NewData(2))
	bp.Put(b)
	b2 := bp.Get()
	if len(b2) != 0 {
		t.Fatalf("recycled batch not empty: len=%d", len(b2))
	}
	// Entries must have been cleared (no tuple pinning).
	b2 = b2[:cap(b2)]
	for i, e := range b2 {
		if e != nil {
			t.Fatalf("recycled batch entry %d not nil", i)
		}
	}
	bp.Put(nil) // nil-safe
}

func TestMagazineRoundTrip(t *testing.T) {
	var m Magazine
	tp := m.Get()
	if tp.Kind != Data || tp.Ts != 0 || len(tp.Vals) != 0 {
		t.Fatalf("magazine tuple not cleared: %+v", tp)
	}
	tp.Ts = 42
	tp.Vals = append(tp.Vals, Int(1))
	tp.Seq = 3
	tp.Arrived = 9
	m.Put(tp)
	got := m.Get()
	if got != tp {
		t.Fatal("magazine must reuse the local stack before the depot")
	}
	if got.Kind != Data || got.Ts != 0 || len(got.Vals) != 0 || got.Seq != 0 || got.Arrived != 0 {
		t.Fatalf("recycled tuple not cleared: %+v", got)
	}
	m.Put(nil) // nil-safe
}

func TestMagazineGetData(t *testing.T) {
	var m Magazine
	tp := m.Get()
	tp.Vals = append(tp.Vals, Int(1), Int(2), Int(3))
	m.Put(tp)
	d := m.GetData(5, 2)
	if d.Ts != 5 || len(d.Vals) != 2 || !d.Vals[0].IsNull() || !d.Vals[1].IsNull() {
		t.Fatalf("Magazine.GetData = %+v", d)
	}
}

func TestMagazineSpill(t *testing.T) {
	// Drive the stack past two magazines' worth so the spill path runs, then
	// drain everything back out: every tuple must come back cleared and
	// distinct.
	var m Magazine
	const n = 3*MagazineSize + 5
	tuples := make([]*Tuple, n)
	for i := range tuples {
		tuples[i] = m.Get()
	}
	for _, tp := range tuples {
		tp.Ts = 7
		m.Put(tp)
	}
	if len(m.stack) > 2*MagazineSize {
		t.Fatalf("stack holds %d tuples, want ≤ %d after spills", len(m.stack), 2*MagazineSize)
	}
	seen := make(map[*Tuple]bool)
	for i := 0; i < n; i++ {
		tp := m.Get()
		if tp.Ts != 0 || tp.Kind != Data {
			t.Fatalf("tuple %d not cleared: %+v", i, tp)
		}
		if seen[tp] {
			t.Fatalf("tuple %d handed out twice", i)
		}
		seen[tp] = true
	}
}

func BenchmarkTupleMagazine(b *testing.B) {
	var m Magazine
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := m.Get()
		t.Ts = Time(i)
		t.Vals = append(t.Vals, Int(int64(i)))
		m.Put(t)
	}
}

func BenchmarkTuplePool(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := Get()
		t.Ts = Time(i)
		t.Vals = append(t.Vals, Int(int64(i)))
		Put(t)
	}
}
