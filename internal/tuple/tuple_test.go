package tuple

import (
	"testing"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if got := FromDuration(1500 * time.Millisecond); got != 1500*Millisecond {
		t.Errorf("FromDuration = %v, want %v", got, 1500*Millisecond)
	}
	if got := (2 * Second).Duration(); got != 2*time.Second {
		t.Errorf("Duration = %v, want 2s", got)
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Errorf("Seconds = %v, want 2.5", got)
	}
	if got := (1500 * Microsecond).Millis(); got != 1.5 {
		t.Errorf("Millis = %v, want 1.5", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{MinTime, "-inf"},
		{MaxTime, "+inf"},
		{42, "42µs"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeOrderingSentinels(t *testing.T) {
	if !(MinTime < 0 && 0 < MaxTime) {
		t.Fatal("sentinel ordering broken")
	}
	if MinTime >= -Second || MaxTime <= Minute {
		t.Fatal("sentinels must dominate ordinary times")
	}
}

func TestNewDataAndPunct(t *testing.T) {
	d := NewData(5*Second, Int(1), String_("x"))
	if d.IsPunct() || d.Kind != Data {
		t.Fatal("NewData produced a punctuation tuple")
	}
	if d.Ts != 5*Second || len(d.Vals) != 2 {
		t.Fatalf("NewData fields wrong: %v", d)
	}
	p := NewPunct(7 * Second)
	if !p.IsPunct() || p.Vals != nil {
		t.Fatalf("NewPunct wrong: %v", p)
	}
	if p.IsEOS() {
		t.Error("ordinary punct must not be EOS")
	}
	if !EOS().IsEOS() {
		t.Error("EOS().IsEOS() = false")
	}
}

func TestTupleWithTs(t *testing.T) {
	d := NewData(1, Int(9))
	d2 := d.WithTs(99)
	if d.Ts != 1 {
		t.Error("WithTs mutated the original")
	}
	if d2.Ts != 99 || len(d2.Vals) != 1 || d2.Vals[0].AsInt() != 9 {
		t.Errorf("WithTs copy wrong: %v", d2)
	}
}

func TestTupleClone(t *testing.T) {
	d := NewData(1, Int(9), Float(2.5))
	c := d.Clone()
	c.Vals[0] = Int(100)
	if d.Vals[0].AsInt() != 9 {
		t.Error("Clone aliases Vals")
	}
	if c.Ts != d.Ts || len(c.Vals) != 2 {
		t.Errorf("Clone fields wrong: %v", c)
	}
}

func TestTupleString(t *testing.T) {
	if got := NewPunct(3).String(); got != "punct(3µs)" {
		t.Errorf("punct String = %q", got)
	}
	if got := NewData(3, Int(1)).String(); got != "tuple(3µs, 1)" {
		t.Errorf("data String = %q", got)
	}
	var nilT *Tuple
	if got := nilT.String(); got != "<nil>" {
		t.Errorf("nil String = %q", got)
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := Int(-7); v.Kind() != IntKind || v.AsInt() != -7 {
		t.Errorf("Int: %v", v)
	}
	if v := Float(1.25); v.Kind() != FloatKind || v.AsFloat() != 1.25 {
		t.Errorf("Float: %v", v)
	}
	if v := String_("hi"); v.Kind() != StringKind || v.AsString() != "hi" {
		t.Errorf("String_: %v", v)
	}
	if v := Bool(true); v.Kind() != BoolKind || !v.AsBool() {
		t.Errorf("Bool: %v", v)
	}
	if v := TimeVal(9); v.Kind() != TimeKind || v.AsTime() != 9 {
		t.Errorf("TimeVal: %v", v)
	}
	var z Value
	if !z.IsNull() || z.Kind() != Null {
		t.Error("zero Value must be Null")
	}
}

func TestValueAccessorMismatches(t *testing.T) {
	v := String_("x")
	if v.AsInt() != 0 || v.AsFloat() != 0 || v.AsBool() || v.AsTime() != 0 {
		t.Error("mismatched accessors must return zero values")
	}
	if Int(3).AsString() != "" {
		t.Error("AsString on int must return empty")
	}
}

func TestValueNumericWidening(t *testing.T) {
	if Int(3).AsFloat() != 3.0 {
		t.Error("int should widen to float")
	}
	if TimeVal(4).AsFloat() != 4.0 {
		t.Error("time should widen to float")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(2), Float(2.5), -1},
		{Float(2.5), Int(2), 1},
		{TimeVal(5), Int(5), 0},
		{String_("a"), String_("b"), -1},
		{String_("b"), String_("b"), 0},
		{String_("c"), String_("b"), 1},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
		{Value{}, Value{}, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(2).Equal(Float(2)) {
		t.Error("numeric cross-kind equality should hold")
	}
	if Int(2).Equal(String_("2")) {
		t.Error("int and string must not be equal")
	}
	if !String_("x").Equal(String_("x")) {
		t.Error("equal strings must be Equal")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(5), "5"},
		{Float(2.5), "2.5"},
		{String_("s"), "s"},
		{Bool(true), "true"},
		{Value{}, "null"},
		{TimeVal(7), "7µs"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParseValue(t *testing.T) {
	ok := []struct {
		k    ValueKind
		s    string
		want Value
	}{
		{IntKind, "42", Int(42)},
		{FloatKind, "2.5", Float(2.5)},
		{StringKind, "abc", String_("abc")},
		{BoolKind, "true", Bool(true)},
		{TimeKind, "100", TimeVal(100)},
	}
	for _, c := range ok {
		got, err := ParseValue(c.k, c.s)
		if err != nil {
			t.Errorf("ParseValue(%v, %q) error: %v", c.k, c.s, err)
			continue
		}
		if !got.Equal(c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("ParseValue(%v, %q) = %v, want %v", c.k, c.s, got, c.want)
		}
	}
	bad := []struct {
		k ValueKind
		s string
	}{
		{IntKind, "x"}, {FloatKind, "y"}, {BoolKind, "maybe"}, {TimeKind, "z"}, {Null, "1"},
	}
	for _, c := range bad {
		if _, err := ParseValue(c.k, c.s); err == nil {
			t.Errorf("ParseValue(%v, %q) should fail", c.k, c.s)
		}
	}
}

func TestParseValueKind(t *testing.T) {
	for s, want := range map[string]ValueKind{
		"int": IntKind, "float": FloatKind, "double": FloatKind, "real": FloatKind,
		"string": StringKind, "varchar": StringKind, "text": StringKind,
		"bool": BoolKind, "boolean": BoolKind, "time": TimeKind, "timestamp": TimeKind,
	} {
		got, err := ParseValueKind(s)
		if err != nil || got != want {
			t.Errorf("ParseValueKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseValueKind("blob"); err == nil {
		t.Error("ParseValueKind(blob) should fail")
	}
}

func TestKindStrings(t *testing.T) {
	if Data.String() != "data" || Punct.String() != "punct" {
		t.Error("Kind.String wrong")
	}
	if External.String() != "external" || Internal.String() != "internal" || Latent.String() != "latent" {
		t.Error("TSKind.String wrong")
	}
}
