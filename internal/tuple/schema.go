package tuple

import (
	"fmt"
	"strings"
)

// Field is one attribute of a stream schema.
type Field struct {
	Name string
	Kind ValueKind
}

// Schema describes the attributes carried by a stream's data tuples, plus
// how the stream is timestamped.
type Schema struct {
	// Name is the stream name (as registered with the engine / referenced
	// in CQL).
	Name string
	// Fields are the attributes, in tuple order.
	Fields []Field
	// TS is the stream's timestamp kind.
	TS TSKind
}

// NewSchema builds a schema with internal timestamps; use WithTS to change
// the timestamp kind.
func NewSchema(name string, fields ...Field) *Schema {
	return &Schema{Name: name, Fields: fields, TS: Internal}
}

// WithTS returns a copy of s using the given timestamp kind.
func (s *Schema) WithTS(k TSKind) *Schema {
	c := *s
	c.Fields = append([]Field(nil), s.Fields...)
	c.TS = k
	return &c
}

// Arity reports the number of attributes.
func (s *Schema) Arity() int { return len(s.Fields) }

// Index returns the position of the named field, or -1 if absent.
func (s *Schema) Index(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Field returns the field at position i.
func (s *Schema) Field(i int) Field { return s.Fields[i] }

// Validate checks the schema for duplicate or empty field names.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("schema has no name")
	}
	seen := make(map[string]bool, len(s.Fields))
	for i, f := range s.Fields {
		if f.Name == "" {
			return fmt.Errorf("schema %s: field %d has no name", s.Name, i)
		}
		if seen[f.Name] {
			return fmt.Errorf("schema %s: duplicate field %q", s.Name, f.Name)
		}
		seen[f.Name] = true
	}
	return nil
}

// CheckTuple verifies that a data tuple conforms to the schema (arity and
// per-field kinds; Null is accepted anywhere). Punctuation always conforms.
func (s *Schema) CheckTuple(t *Tuple) error {
	if t.IsPunct() {
		return nil
	}
	if len(t.Vals) != len(s.Fields) {
		return fmt.Errorf("schema %s: tuple arity %d, want %d", s.Name, len(t.Vals), len(s.Fields))
	}
	for i, v := range t.Vals {
		if v.IsNull() {
			continue
		}
		if v.Kind() != s.Fields[i].Kind {
			return fmt.Errorf("schema %s: field %s has kind %v, want %v",
				s.Name, s.Fields[i].Name, v.Kind(), s.Fields[i].Kind)
		}
	}
	return nil
}

// Concat returns the schema of a join output: the fields of s followed by
// the fields of o, with field names qualified by stream name when they
// collide.
func (s *Schema) Concat(name string, o *Schema) *Schema {
	out := &Schema{Name: name, TS: s.TS}
	names := make(map[string]bool)
	add := func(owner string, f Field) {
		n := f.Name
		if names[n] {
			n = owner + "." + f.Name
		}
		names[n] = true
		out.Fields = append(out.Fields, Field{Name: n, Kind: f.Kind})
	}
	for _, f := range s.Fields {
		add(s.Name, f)
	}
	for _, f := range o.Fields {
		add(o.Name, f)
	}
	return out
}

// Project returns a schema containing only the named fields, in the given
// order, along with the corresponding source indexes.
func (s *Schema) Project(name string, fields ...string) (*Schema, []int, error) {
	out := &Schema{Name: name, TS: s.TS}
	idx := make([]int, 0, len(fields))
	for _, fn := range fields {
		i := s.Index(fn)
		if i < 0 {
			return nil, nil, fmt.Errorf("schema %s: no field %q", s.Name, fn)
		}
		idx = append(idx, i)
		out.Fields = append(out.Fields, s.Fields[i])
	}
	return out, idx, nil
}

func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteString("(")
	for i, f := range s.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %v", f.Name, f.Kind)
	}
	fmt.Fprintf(&b, ") ts=%v", s.TS)
	return b.String()
}
