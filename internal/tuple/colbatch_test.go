package tuple

import (
	"math"
	"testing"
)

// eqValue compares values bit-exactly (NaN-safe, unlike Value.Equal, and
// distinguishing kinds the way round-trips must preserve them).
func eqValue(a, b Value) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case FloatKind:
		return math.Float64bits(a.f) == math.Float64bits(b.f)
	case StringKind:
		return a.s == b.s
	default:
		return a.i == b.i
	}
}

// eqStream compares two row streams tuple by tuple: kind, timestamp,
// arrival, sequence number, and values.
func eqStream(t *testing.T, got, want []*Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("stream length %d, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Kind != w.Kind || g.Ts != w.Ts {
			t.Fatalf("tuple %d: got %v/%v, want %v/%v", i, g.Kind, g.Ts, w.Kind, w.Ts)
		}
		if g.IsPunct() {
			continue
		}
		if g.Arrived != w.Arrived || g.Seq != w.Seq {
			t.Fatalf("tuple %d: arrived/seq %v/%d, want %v/%d", i, g.Arrived, g.Seq, w.Arrived, w.Seq)
		}
		if len(g.Vals) != len(w.Vals) {
			t.Fatalf("tuple %d: %d vals, want %d", i, len(g.Vals), len(w.Vals))
		}
		for c := range w.Vals {
			if !eqValue(g.Vals[c], w.Vals[c]) {
				t.Fatalf("tuple %d col %d: %v, want %v", i, c, g.Vals[c], w.Vals[c])
			}
		}
	}
}

// roundTrip pushes rows through a ColBatch and back.
func roundTrip(rows []*Tuple) []*Tuple {
	b := GetColBatch(0)
	defer PutColBatch(b)
	for _, t := range rows {
		b.AppendTuple(t)
	}
	return b.AppendRows(nil, nil)
}

func TestColBatchRoundTrip(t *testing.T) {
	cases := map[string][]*Tuple{
		"typed": {
			&Tuple{Ts: 10, Vals: []Value{Int(1), Float(0.5), String_("a"), Bool(true), TimeVal(7)}, Arrived: 11, Seq: 1},
			&Tuple{Ts: 20, Vals: []Value{Int(2), Float(1.5), String_(""), Bool(false), TimeVal(8)}, Arrived: 21, Seq: 2},
		},
		"nulls": {
			&Tuple{Ts: 1, Vals: []Value{{}, Int(1)}},
			&Tuple{Ts: 2, Vals: []Value{Int(2), {}}},
			&Tuple{Ts: 3, Vals: []Value{{}, {}}},
		},
		"mixed-kind-promotion": {
			&Tuple{Ts: 1, Vals: []Value{Int(1)}},
			&Tuple{Ts: 2, Vals: []Value{String_("x")}},
			&Tuple{Ts: 3, Vals: []Value{{}}},
			&Tuple{Ts: 4, Vals: []Value{Float(2.5)}},
		},
		"punct-interleave": {
			NewPunct(5),
			&Tuple{Ts: 10, Vals: []Value{Int(1)}},
			NewPunct(10),
			NewPunct(12),
			&Tuple{Ts: 20, Vals: []Value{Int(2)}},
			NewPunct(20),
		},
		"punct-only": {NewPunct(3), NewPunct(9), EOS()},
		"empty":      {},
		"float-edges": {
			&Tuple{Ts: 1, Vals: []Value{Float(math.Copysign(0, -1))}},
			&Tuple{Ts: 2, Vals: []Value{Float(math.Inf(1))}},
			&Tuple{Ts: 3, Vals: []Value{Float(math.NaN())}},
		},
	}
	for name, rows := range cases {
		t.Run(name, func(t *testing.T) {
			eqStream(t, roundTrip(rows), rows)
		})
	}
}

// TestColBatchPunctDrainOrder is the property the batch-metadata encoding
// must guarantee: for any interleaving of data rows and punctuation, the
// columnar form drains punctuation in exactly the order (and at exactly the
// positions) of the equivalent in-band punct stream — also when the batch is
// built by appending several smaller batches.
func TestColBatchPunctDrainOrder(t *testing.T) {
	var lcg uint64 = 12345
	rnd := func(n uint64) uint64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return (lcg >> 33) % n
	}
	for trial := 0; trial < 200; trial++ {
		var stream []*Tuple
		ln := int(rnd(20))
		for i := 0; i < ln; i++ {
			if rnd(3) == 0 {
				stream = append(stream, NewPunct(Time(rnd(1000))))
			} else {
				stream = append(stream, &Tuple{Ts: Time(rnd(1000)), Vals: []Value{Int(int64(rnd(10)))}, Seq: uint64(i)})
			}
		}
		eqStream(t, roundTrip(stream), stream)

		// Split the stream at a random point, build two batches, and append
		// one onto the other: mark positions must re-offset.
		if ln > 0 {
			cut := int(rnd(uint64(ln)))
			b1, b2 := GetColBatch(0), GetColBatch(0)
			for _, tt := range stream[:cut] {
				b1.AppendTuple(tt)
			}
			for _, tt := range stream[cut:] {
				b2.AppendTuple(tt)
			}
			b1.AppendBatch(b2)
			eqStream(t, b1.AppendRows(nil, nil), stream)
			PutColBatch(b1)
			PutColBatch(b2)
		}
	}
}

func TestColBatchHashKeyParity(t *testing.T) {
	rows := []*Tuple{
		{Ts: 1, Vals: []Value{Int(42), Float(-0.0), String_("abc"), Bool(true), {}}},
		{Ts: 2, Vals: []Value{Int(-7), Float(3.25), String_(""), Bool(false), Int(1)}},
		{Ts: 3, Vals: []Value{{}, {}, {}, {}, String_("mixed")}},
		{Ts: 4, Vals: []Value{TimeVal(99), Float(0.0), String_("déjà"), Bool(true), Float(2.5)}},
	}
	b := GetColBatch(0)
	defer PutColBatch(b)
	for _, r := range rows {
		b.AppendTuple(r)
	}
	for c := 0; c < b.NumCols(); c++ {
		hashes := b.HashKey(c, nil)
		for r, row := range rows {
			if want := row.Vals[c].Hash(); hashes[r] != want {
				t.Errorf("col %d row %d: HashKey %#x, Value.Hash %#x", c, r, hashes[r], want)
			}
		}
	}
	// An int column and a time column never built (all-null Kind path).
	empty := GetColBatch(1)
	defer PutColBatch(empty)
	empty.AppendRow(1, 0, 0, []Value{{}})
	if h := empty.HashKey(0, nil); h[0] != (Value{}).Hash() {
		t.Errorf("all-null column hash %#x, want %#x", h[0], (Value{}).Hash())
	}
}

func TestColBatchProjectCols(t *testing.T) {
	build := func() *ColBatch {
		b := NewColBatch(3)
		b.AppendRow(1, 0, 0, []Value{Int(1), String_("a"), Float(0.5)})
		b.AppendRow(2, 0, 0, []Value{Int(2), String_("b"), Float(1.5)})
		b.AppendPunct(2)
		return b
	}
	t.Run("reorder-drop", func(t *testing.T) {
		b := build()
		b.ProjectCols([]int{2, 0}, nil)
		want := []*Tuple{
			{Ts: 1, Vals: []Value{Float(0.5), Int(1)}},
			{Ts: 2, Vals: []Value{Float(1.5), Int(2)}},
			NewPunct(2),
		}
		eqStream(t, b.AppendRows(nil, nil), want)
	})
	t.Run("duplicate", func(t *testing.T) {
		b := build()
		b.ProjectCols([]int{1, 1}, nil)
		got := b.AppendRows(nil, nil)
		want := []*Tuple{
			{Ts: 1, Vals: []Value{String_("a"), String_("a")}},
			{Ts: 2, Vals: []Value{String_("b"), String_("b")}},
			NewPunct(2),
		}
		eqStream(t, got, want)
	})
	t.Run("scratch-reuse", func(t *testing.T) {
		b := build()
		scratch := b.ProjectCols([]int{0}, nil)
		b2 := build()
		scratch = b2.ProjectCols([]int{2}, scratch)
		if len(scratch) != 0 {
			t.Fatalf("returned scratch not cleared: len %d", len(scratch))
		}
		eqStream(t, b2.AppendRows(nil, nil), []*Tuple{
			{Ts: 1, Vals: []Value{Float(0.5)}},
			{Ts: 2, Vals: []Value{Float(1.5)}},
			NewPunct(2),
		})
	})
}

func TestColBatchSetLen(t *testing.T) {
	b := NewColBatch(1)
	b.Ts = append(b.Ts, 5, 6, 7)
	c := &b.Cols[0]
	c.Kind = IntKind
	c.I64 = append(c.I64, 10, 20, 30)
	c.Valid.SetAll(3)
	b.SetLen(3)
	if b.Len() != 3 || len(b.Arrived) != 3 || len(b.Seq) != 3 {
		t.Fatalf("SetLen: n=%d arrived=%d seq=%d", b.Len(), len(b.Arrived), len(b.Seq))
	}
	eqStream(t, b.AppendRows(nil, nil), []*Tuple{
		{Ts: 5, Vals: []Value{Int(10)}},
		{Ts: 6, Vals: []Value{Int(20)}},
		{Ts: 7, Vals: []Value{Int(30)}},
	})
}

func TestColBatchPoolReuse(t *testing.T) {
	b := GetColBatch(2)
	b.AppendRow(1, 2, 3, []Value{String_("pinned"), Int(9)})
	b.AppendPunct(4)
	PutColBatch(b)
	b2 := GetColBatch(1) // different arity must come back clean
	if !b2.Empty() || b2.NumCols() != 1 || b2.Cols[0].Kind != Null || len(b2.Cols[0].Str) != 0 {
		t.Fatalf("recycled batch not clean: %+v", b2)
	}
	PutColBatch(b2)
	PutColBatch(nil) // nil-safe
}

func TestColBatchCloneInto(t *testing.T) {
	b := GetColBatch(0)
	defer PutColBatch(b)
	rows := []*Tuple{
		NewPunct(1),
		{Ts: 2, Vals: []Value{Int(1), String_("x")}, Arrived: 3, Seq: 4},
		{Ts: 5, Vals: []Value{{}, String_("y")}, Arrived: 6, Seq: 7},
	}
	for _, r := range rows {
		b.AppendTuple(r)
	}
	c := b.CloneInto(nil)
	// Mutating the clone must not touch the original.
	c.Cols[0].I64[0] = 99
	c.Puncts[0].Ts = 42
	eqStream(t, b.AppendRows(nil, nil), rows)
	eqStream(t, c.AppendRows(nil, nil), []*Tuple{
		NewPunct(42),
		{Ts: 2, Vals: []Value{Int(99), String_("x")}, Arrived: 3, Seq: 4},
		{Ts: 5, Vals: []Value{{}, String_("y")}, Arrived: 6, Seq: 7},
	})
}

// FuzzColBatchRoundTrip drives the row→columnar→row converters with an
// arbitrary interleaving of data rows (mixed kinds and nulls, adversarial
// floats) and punctuation, asserting losslessness.
func FuzzColBatchRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x10, 0x81, 0x02, 0x43, 0xFF})
	f.Add([]byte{0x05, 0x05, 0x05, 0x20, 0x20, 0x60, 0x60})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Each byte is one instruction: the low 3 bits select the op, the
		// high bits parameterize it. Arity is fixed by the first data row.
		var stream []*Tuple
		var seq uint64
		arity := 1
		if len(data) > 0 {
			arity = int(data[0]%4) + 1
			data = data[1:]
		}
		take := func() byte {
			if len(data) == 0 {
				return 0
			}
			v := data[0]
			data = data[1:]
			return v
		}
		for len(data) > 0 {
			op := take()
			if op&0x07 == 7 {
				stream = append(stream, NewPunct(Time(op>>3)))
				continue
			}
			vals := make([]Value, arity)
			for c := range vals {
				sel := take()
				switch sel % 6 {
				case 0: // null
				case 1:
					vals[c] = Int(int64(int8(sel)))
				case 2:
					vals[c] = Float(math.Float64frombits(uint64(sel) << 55))
				case 3:
					vals[c] = String_(string([]byte{sel}))
				case 4:
					vals[c] = Bool(sel&0x80 != 0)
				case 5:
					vals[c] = TimeVal(Time(sel))
				}
			}
			seq++
			stream = append(stream, &Tuple{Ts: Time(op), Vals: vals, Arrived: Time(op) + 1, Seq: seq})
		}
		eqStream(t, roundTrip(stream), stream)
	})
}
