package tuple

import (
	"math"
	"sync"
)

// Columnar batch layout for the hot data plane.
//
// A ColBatch holds a run of data tuples decomposed into per-attribute typed
// columns (struct-of-arrays) plus a dense timestamp column, so filters,
// projections and hash-key loops run over contiguous memory instead of
// chasing *Tuple pointers field by field. Punctuation does not travel
// in-band as rows: each ETS is a PunctMark {Pos, Ts} in batch metadata,
// meaning "after the first Pos data rows of this batch, an ETS of Ts was
// observed". Converting to rows re-interleaves marks at exactly those
// positions, so the row and columnar representations of a stream segment
// are interchangeable (the FuzzColBatchRoundTrip target checks this).
//
// Column typing is optimistic: a column starts Null, adopts the kind of the
// first non-null value appended, and stores payloads in one typed slice
// (int64 for int/bool/time, float64, string). If a later value arrives with
// a different kind — legal, if unusual, in this engine's dynamically typed
// tuples — the column is promoted to a boxed []Value fallback so no
// information is lost. A validity bitmap tracks nulls; invalid rows hold
// zero payload entries so typed loops can read them without branching.
//
// Ownership follows the tuple pool discipline: a batch obtained from
// GetColBatch is owned by whoever holds the pointer, PutColBatch hands it
// back, and recycling is always optional.

// PunctMark is one punctuation carried as batch metadata: an ETS of Ts
// observed after the first Pos data rows of the batch. Marks are ordered by
// Pos (ties preserve arrival order); Pos ranges over [0, Len()]. An ETS of
// MaxTime marks end-of-stream. Ckpt mirrors Tuple.Ckpt: a non-zero value
// tags the mark as a checkpoint barrier, so barriers survive row⇄columnar
// conversion and the TUPLES_COL wire frame.
type PunctMark struct {
	Pos  int
	Ts   Time
	Ckpt uint64
}

// Col is one attribute column of a ColBatch.
type Col struct {
	// Kind is the uniform kind of the column's non-null values; Null until
	// the first non-null value is appended. Meaningless when Any is non-nil.
	Kind ValueKind
	// I64 holds int, bool (0/1) and time payloads; F64 float payloads; Str
	// string payloads. Exactly one is active (per Kind) and, once the column
	// has adopted a kind, its length always equals the batch row count —
	// null rows hold zero entries.
	I64 []int64
	F64 []float64
	Str []string
	// Any, when non-nil, is the mixed-kind fallback and is authoritative:
	// the column was promoted because values of different kinds were
	// appended. Its length always equals the batch row count.
	Any []Value
	// Valid has bit i set iff row i is non-null.
	Valid Bitmap
}

// ColBatch is a columnar run of data rows plus punctuation metadata.
// Fields are exported so operators can run typed loops directly; use the
// Append*/Value/FillRow helpers to keep the representation invariants.
type ColBatch struct {
	n int
	// Ts is the dense timestamp column, one entry per data row.
	Ts []Time
	// Arrived and Seq mirror Tuple.Arrived / Tuple.Seq per row. Arrived is
	// used for latency accounting; both survive round-trips.
	Arrived []Time
	Seq     []uint64
	// Cols holds one Col per schema attribute.
	Cols []Col
	// Puncts is the punctuation metadata, ordered by Pos.
	Puncts []PunctMark
}

// NewColBatch returns an empty batch with ncols attribute columns.
func NewColBatch(ncols int) *ColBatch {
	b := &ColBatch{}
	b.Reset(ncols)
	return b
}

// Len reports the number of data rows.
func (b *ColBatch) Len() int { return b.n }

// NumCols reports the number of attribute columns.
func (b *ColBatch) NumCols() int { return len(b.Cols) }

// Empty reports whether the batch carries neither rows nor punctuation.
func (b *ColBatch) Empty() bool { return b.n == 0 && len(b.Puncts) == 0 }

// HasPunct reports whether the batch carries punctuation metadata.
func (b *ColBatch) HasPunct() bool { return len(b.Puncts) > 0 }

// HasEOS reports whether the batch carries the end-of-stream punctuation.
func (b *ColBatch) HasEOS() bool {
	for i := range b.Puncts {
		if b.Puncts[i].Ts == MaxTime {
			return true
		}
	}
	return false
}

// MaxPunctTs returns the largest punctuation timestamp in the batch and
// whether any punctuation is present.
func (b *ColBatch) MaxPunctTs() (Time, bool) {
	if len(b.Puncts) == 0 {
		return 0, false
	}
	m := b.Puncts[0].Ts
	for _, p := range b.Puncts[1:] {
		if p.Ts > m {
			m = p.Ts
		}
	}
	return m, true
}

// MaxTs returns the largest row timestamp and whether the batch has rows.
func (b *ColBatch) MaxTs() (Time, bool) {
	if b.n == 0 {
		return 0, false
	}
	m := b.Ts[0]
	for _, t := range b.Ts[1:b.n] {
		if t > m {
			m = t
		}
	}
	return m, true
}

// Reset clears the batch to zero rows and punctuation with ncols attribute
// columns, retaining column storage capacity. ncols < 0 keeps the current
// column count.
func (b *ColBatch) Reset(ncols int) {
	b.n = 0
	b.Ts = b.Ts[:0]
	b.Arrived = b.Arrived[:0]
	b.Seq = b.Seq[:0]
	b.Puncts = b.Puncts[:0]
	if ncols < 0 {
		ncols = len(b.Cols)
	}
	if cap(b.Cols) < ncols {
		b.Cols = make([]Col, ncols)
	} else {
		for i := ncols; i < len(b.Cols); i++ {
			b.Cols[i] = Col{}
		}
		b.Cols = b.Cols[:ncols]
		for i := range b.Cols {
			b.Cols[i].reset()
		}
	}
}

func (c *Col) reset() {
	c.Kind = Null
	c.I64 = c.I64[:0]
	c.F64 = c.F64[:0]
	for i := range c.Str {
		c.Str[i] = "" // drop string references so the pool does not pin them
	}
	c.Str = c.Str[:0]
	c.Any = nil
	c.Valid.Reset()
}

// AppendPunct records a punctuation with ETS ts after the rows appended so
// far.
func (b *ColBatch) AppendPunct(ts Time) {
	b.Puncts = append(b.Puncts, PunctMark{Pos: b.n, Ts: ts})
}

// AppendPunctCkpt is AppendPunct carrying a checkpoint barrier tag.
func (b *ColBatch) AppendPunctCkpt(ts Time, ckpt uint64) {
	b.Puncts = append(b.Puncts, PunctMark{Pos: b.n, Ts: ts, Ckpt: ckpt})
}

// AppendTuple appends one tuple — a data row or, for Kind==Punct, a
// punctuation mark. The tuple's values are copied; t is not retained. The
// batch must have been created with ncols == len(t.Vals) for data tuples
// (a batch that has never seen a data row adopts the first row's arity).
func (b *ColBatch) AppendTuple(t *Tuple) {
	if t.IsPunct() {
		b.AppendPunctCkpt(t.Ts, t.Ckpt)
		return
	}
	if b.n == 0 && len(b.Cols) != len(t.Vals) {
		b.resizeCols(len(t.Vals))
	}
	b.Ts = append(b.Ts, t.Ts)
	b.Arrived = append(b.Arrived, t.Arrived)
	b.Seq = append(b.Seq, t.Seq)
	for i := range b.Cols {
		b.Cols[i].appendValue(t.Vals[i], b.n)
	}
	b.n++
}

// AppendRow appends one data row given its components. vals is copied.
func (b *ColBatch) AppendRow(ts, arrived Time, seq uint64, vals []Value) {
	if b.n == 0 && len(b.Cols) != len(vals) {
		b.resizeCols(len(vals))
	}
	b.Ts = append(b.Ts, ts)
	b.Arrived = append(b.Arrived, arrived)
	b.Seq = append(b.Seq, seq)
	for i := range b.Cols {
		b.Cols[i].appendValue(vals[i], b.n)
	}
	b.n++
}

func (b *ColBatch) resizeCols(ncols int) {
	if cap(b.Cols) < ncols {
		b.Cols = make([]Col, ncols)
		return
	}
	old := len(b.Cols)
	b.Cols = b.Cols[:ncols]
	for i := old; i < ncols; i++ {
		b.Cols[i].reset()
	}
}

// AppendRowFrom appends row i of src as a new row of b, copying typed
// payloads directly when the column representations agree. Both batches
// must have the same number of columns.
func (b *ColBatch) AppendRowFrom(src *ColBatch, i int) {
	if b.n == 0 && len(b.Cols) != len(src.Cols) {
		b.resizeCols(len(src.Cols))
	}
	b.Ts = append(b.Ts, src.Ts[i])
	b.Arrived = append(b.Arrived, src.Arrived[i])
	b.Seq = append(b.Seq, src.Seq[i])
	for c := range b.Cols {
		b.Cols[c].appendFrom(&src.Cols[c], i, b.n)
	}
	b.n++
}

// AppendBatch appends all rows and punctuation of src to b, preserving
// their interleaving. src is not modified.
func (b *ColBatch) AppendBatch(src *ColBatch) {
	base := b.n
	for i := 0; i < src.n; i++ {
		b.AppendRowFrom(src, i)
	}
	for _, p := range src.Puncts {
		b.Puncts = append(b.Puncts, PunctMark{Pos: base + p.Pos, Ts: p.Ts, Ckpt: p.Ckpt})
	}
}

// appendValue appends v at row n (the current row count).
func (c *Col) appendValue(v Value, n int) {
	if c.Any != nil {
		c.Any = append(c.Any, v)
		if v.kind != Null {
			c.Valid.Set(n)
		}
		return
	}
	if v.kind == Null {
		c.pad(n + 1)
		return
	}
	if c.Kind == Null {
		c.Kind = v.kind
		c.pad(n)
	} else if v.kind != c.Kind {
		c.promote(n)
		c.Any = append(c.Any, v)
		c.Valid.Set(n)
		return
	}
	c.Valid.Set(n)
	switch c.Kind {
	case IntKind, BoolKind, TimeKind:
		c.I64 = append(c.I64, v.i)
	case FloatKind:
		c.F64 = append(c.F64, v.f)
	case StringKind:
		c.Str = append(c.Str, v.s)
	}
}

// appendFrom appends row i of s at row n of c.
func (c *Col) appendFrom(s *Col, i, n int) {
	if s.Any == nil && c.Any == nil && s.Valid.Get(i) && (c.Kind == s.Kind || c.Kind == Null) {
		if c.Kind == Null {
			c.Kind = s.Kind
			c.pad(n)
		}
		c.Valid.Set(n)
		switch c.Kind {
		case IntKind, BoolKind, TimeKind:
			c.I64 = append(c.I64, s.I64[i])
		case FloatKind:
			c.F64 = append(c.F64, s.F64[i])
		case StringKind:
			c.Str = append(c.Str, s.Str[i])
		}
		return
	}
	c.appendValue(s.value(i), n)
}

// pad extends the active payload slice with zero entries to length n (only
// meaningful once the column has adopted a kind).
func (c *Col) pad(n int) {
	switch c.Kind {
	case IntKind, BoolKind, TimeKind:
		for len(c.I64) < n {
			c.I64 = append(c.I64, 0)
		}
	case FloatKind:
		for len(c.F64) < n {
			c.F64 = append(c.F64, 0)
		}
	case StringKind:
		for len(c.Str) < n {
			c.Str = append(c.Str, "")
		}
	}
}

// promote converts the column's first n rows to the boxed fallback.
func (c *Col) promote(n int) {
	any := make([]Value, n, n+1)
	for i := 0; i < n; i++ {
		any[i] = c.value(i)
	}
	c.Any = any
	c.I64 = c.I64[:0]
	c.F64 = c.F64[:0]
	for i := range c.Str {
		c.Str[i] = ""
	}
	c.Str = c.Str[:0]
}

// value reconstructs the Value at row i.
func (c *Col) value(i int) Value {
	if c.Any != nil {
		return c.Any[i]
	}
	if !c.Valid.Get(i) {
		return Value{}
	}
	switch c.Kind {
	case IntKind, BoolKind, TimeKind:
		return Value{kind: c.Kind, i: c.I64[i]}
	case FloatKind:
		return Value{kind: FloatKind, f: c.F64[i]}
	case StringKind:
		return Value{kind: StringKind, s: c.Str[i]}
	}
	return Value{}
}

// Value returns the value at column c, row r.
func (b *ColBatch) Value(c, r int) Value { return b.Cols[c].value(r) }

// SetLen declares the batch's row count after its exported columns were
// filled directly — the wire-decode path, which reconstructs typed columns
// without going through AppendRow. Ts must already hold n entries; Arrived
// and Seq are zero-padded to the new length (a decoded batch has not
// arrived anywhere yet — ingest stamps both).
func (b *ColBatch) SetLen(n int) {
	b.n = n
	for len(b.Arrived) < n {
		b.Arrived = append(b.Arrived, 0)
	}
	for len(b.Seq) < n {
		b.Seq = append(b.Seq, 0)
	}
}

// FillRow materializes row r into t: timestamp, arrival time, sequence
// number and values. t's Vals slice is reused when it has capacity. The
// filled values alias the batch's string storage; callers must treat the
// tuple as read-only while the batch is live (Value payloads are copied,
// so retaining individual Values is safe).
func (b *ColBatch) FillRow(r int, t *Tuple) {
	t.Kind = Data
	t.Ts = b.Ts[r]
	t.Arrived = b.Arrived[r]
	t.Seq = b.Seq[r]
	if cap(t.Vals) < len(b.Cols) {
		t.Vals = make([]Value, len(b.Cols))
	} else {
		t.Vals = t.Vals[:len(b.Cols)]
	}
	for c := range b.Cols {
		t.Vals[c] = b.Cols[c].value(r)
	}
}

// AppendRows converts the batch back to row form, appending to dst: data
// rows and punctuation tuples interleaved exactly as the punctuation marks
// record. Tuples are allocated from mag when non-nil (else from the shared
// pool), so a recycling consumer keeps the conversion allocation-free.
func (b *ColBatch) AppendRows(dst []*Tuple, mag *Magazine) []*Tuple {
	pi := 0
	for r := 0; r < b.n; r++ {
		for pi < len(b.Puncts) && b.Puncts[pi].Pos <= r {
			pt := GetPunct(b.Puncts[pi].Ts)
			pt.Ckpt = b.Puncts[pi].Ckpt
			dst = append(dst, pt)
			pi++
		}
		var t *Tuple
		if mag != nil {
			t = mag.Get()
		} else {
			t = Get()
		}
		b.FillRow(r, t)
		dst = append(dst, t)
	}
	for ; pi < len(b.Puncts); pi++ {
		pt := GetPunct(b.Puncts[pi].Ts)
		pt.Ckpt = b.Puncts[pi].Ckpt
		dst = append(dst, pt)
	}
	return dst
}

// CloneInto deep-copies b into dst (dst is reset first) and returns dst;
// a nil dst allocates. Used by fan-out arcs, where each consumer owns its
// own copy.
func (b *ColBatch) CloneInto(dst *ColBatch) *ColBatch {
	if dst == nil {
		dst = &ColBatch{}
	}
	dst.Reset(len(b.Cols))
	dst.Ts = append(dst.Ts, b.Ts[:b.n]...)
	dst.Arrived = append(dst.Arrived, b.Arrived[:b.n]...)
	dst.Seq = append(dst.Seq, b.Seq[:b.n]...)
	dst.Puncts = append(dst.Puncts, b.Puncts...)
	dst.n = b.n
	for i := range b.Cols {
		b.Cols[i].cloneInto(&dst.Cols[i])
	}
	return dst
}

func (c *Col) cloneInto(dst *Col) {
	dst.Kind = c.Kind
	dst.I64 = append(dst.I64[:0], c.I64...)
	dst.F64 = append(dst.F64[:0], c.F64...)
	dst.Str = append(dst.Str[:0], c.Str...)
	if c.Any != nil {
		dst.Any = append([]Value(nil), c.Any...)
	} else {
		dst.Any = nil
	}
	dst.Valid.SetWords(c.Valid.w)
}

// HashKey appends the per-row hash of column key to dst and returns it.
// The hash is exactly Value.Hash row by row — numeric kinds hash through
// their float64 widening with -0 normalized — so columnar hash routing
// lands every row on the same shard as the row-at-a-time path.
func (b *ColBatch) HashKey(key int, dst []uint64) []uint64 {
	c := &b.Cols[key]
	n := b.n
	if c.Any != nil {
		for r := 0; r < n; r++ {
			dst = append(dst, c.Any[r].Hash())
		}
		return dst
	}
	nullHash := fnvByte(fnvOffset64, 0) // Value{}.Hash()
	switch c.Kind {
	case IntKind, TimeKind:
		payload := c.I64[:n]
		for r := 0; r < n; r++ {
			if !c.Valid.Get(r) {
				dst = append(dst, nullHash)
				continue
			}
			dst = append(dst, hashNumeric(float64(payload[r])))
		}
	case FloatKind:
		payload := c.F64[:n]
		for r := 0; r < n; r++ {
			if !c.Valid.Get(r) {
				dst = append(dst, nullHash)
				continue
			}
			dst = append(dst, hashNumeric(payload[r]))
		}
	case BoolKind:
		payload := c.I64[:n]
		for r := 0; r < n; r++ {
			if !c.Valid.Get(r) {
				dst = append(dst, nullHash)
				continue
			}
			h := fnvByte(fnvOffset64, 3)
			dst = append(dst, fnvByte(h, byte(payload[r])))
		}
	case StringKind:
		payload := c.Str[:n]
		for r := 0; r < n; r++ {
			if !c.Valid.Get(r) {
				dst = append(dst, nullHash)
				continue
			}
			h := fnvByte(fnvOffset64, 2)
			s := payload[r]
			for i := 0; i < len(s); i++ {
				h = fnvByte(h, s[i])
			}
			dst = append(dst, h)
		}
	default: // all-null column
		for r := 0; r < n; r++ {
			dst = append(dst, nullHash)
		}
	}
	return dst
}

func hashNumeric(f float64) uint64 {
	if f == 0 {
		f = 0 // normalize -0.0, as Value.Hash does
	}
	return fnvWord(fnvByte(fnvOffset64, 1), math.Float64bits(f))
}

// ProjectCols rearranges the batch's columns to Cols[idx[0]], Cols[idx[1]],
// … in place. Column structs are moved, not copied, except when idx names a
// source column more than once — duplicates are deep-copied. scratch (may
// be nil) is used as the new column array when it has capacity; the
// previous column array is returned, cleared, for the caller to reuse as
// the next call's scratch.
func (b *ColBatch) ProjectCols(idx []int, scratch []Col) []Col {
	if cap(scratch) < len(idx) {
		scratch = make([]Col, len(idx))
	} else {
		scratch = scratch[:len(idx)]
	}
	for j, src := range idx {
		dup := false
		for k := 0; k < j; k++ {
			if idx[k] == src {
				dup = true
				break
			}
		}
		if dup {
			scratch[j] = Col{}
			b.Cols[src].cloneInto(&scratch[j])
		} else {
			scratch[j] = b.Cols[src]
		}
	}
	old := b.Cols
	b.Cols = scratch
	for i := range old {
		old[i] = Col{}
	}
	return old[:0]
}

// colBatchPool recycles ColBatch headers (and, transitively, their column
// storage). One shared pool suffices: Reset adapts a recycled batch to any
// column count, and column payload slices regrow lazily.
var colBatchPool = sync.Pool{New: func() interface{} { return new(ColBatch) }}

// GetColBatch returns an empty pooled batch with ncols attribute columns.
func GetColBatch(ncols int) *ColBatch {
	b := colBatchPool.Get().(*ColBatch)
	b.Reset(ncols)
	return b
}

// PutColBatch recycles b. The caller must own b exclusively; PutColBatch is
// nil-safe. String references are dropped so recycled batches do not pin
// row data against the GC.
func PutColBatch(b *ColBatch) {
	if b == nil {
		return
	}
	b.Reset(-1)
	colBatchPool.Put(b)
}
