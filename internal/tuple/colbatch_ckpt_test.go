package tuple

import "testing"

// TestColBatchBarrierRoundTrip pins the checkpoint-barrier tag through the
// row⇄columnar conversions: a punctuation tuple with Ckpt != 0 decomposed
// into a PunctMark keeps its tag through AppendTuple, AppendBatch and the
// AppendRows reconstruction.
func TestColBatchBarrierRoundTrip(t *testing.T) {
	b := GetColBatch(0)
	defer PutColBatch(b)
	b.AppendTuple(NewData(10, Int(1)))
	bp := NewPunct(10)
	bp.Ckpt = 42
	b.AppendTuple(bp)
	b.AppendTuple(NewData(20, Int(2)))
	b.AppendPunctCkpt(MaxTime, 42) // tagged EOS

	if len(b.Puncts) != 2 || b.Puncts[0].Ckpt != 42 || b.Puncts[1].Ckpt != 42 {
		t.Fatalf("marks = %+v", b.Puncts)
	}

	// AppendBatch must carry the tags across (re-based positions included).
	dst := GetColBatch(0)
	defer PutColBatch(dst)
	dst.AppendTuple(NewData(5, Int(0)))
	dst.AppendBatch(b)
	if len(dst.Puncts) != 2 || dst.Puncts[0] != (PunctMark{Pos: 2, Ts: 10, Ckpt: 42}) {
		t.Fatalf("AppendBatch marks = %+v", dst.Puncts)
	}

	// Row reconstruction must yield punct tuples with the tag restored, in
	// the recorded interleaving.
	rows := b.AppendRows(nil, nil)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !rows[1].IsPunct() || rows[1].Ckpt != 42 || rows[1].Ts != 10 {
		t.Fatalf("mid punct = %+v", rows[1])
	}
	if !rows[3].IsEOS() || rows[3].Ckpt != 42 {
		t.Fatalf("eos = %+v", rows[3])
	}

	// CloneInto copies marks wholesale.
	cl := b.CloneInto(nil)
	if len(cl.Puncts) != 2 || cl.Puncts[0].Ckpt != 42 {
		t.Fatalf("clone marks = %+v", cl.Puncts)
	}
}
