// Package tuple defines the data model shared by every part of the DSMS:
// virtual time, typed values, schemas, and the tuples (data and punctuation)
// that flow along the arcs of a query graph.
//
// Timestamps follow the three kinds supported by Stream Mill (paper §5):
// external (assigned by the producing application), internal (assigned by the
// system when the tuple enters the DSMS), and latent (no timestamp; operators
// that need one stamp tuples on the fly).
package tuple

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Time is a point on the engine's virtual clock, in microseconds.
//
// The discrete-event simulator advances Time explicitly; the concurrent
// runtime maps it to wall-clock time. All latency and window arithmetic in
// the system is done in Time.
type Time int64

// Sentinel values for Time.
const (
	// MinTime is smaller than every valid timestamp. It is the initial
	// value of a TSM register: before the first tuple (or ETS) arrives on
	// an input, nothing is known about that input's future timestamps.
	MinTime Time = math.MinInt64
	// MaxTime is larger than every valid timestamp. A punctuation carrying
	// MaxTime marks end-of-stream.
	MaxTime Time = math.MaxInt64
)

// Common durations expressed in Time units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
)

// FromDuration converts a wall-clock duration to virtual time.
func FromDuration(d time.Duration) Time { return Time(d.Microseconds()) }

// Duration converts a virtual-time span to a wall-clock duration.
func (t Time) Duration() time.Duration { return time.Duration(t) * time.Microsecond }

// Seconds reports t as (possibly fractional) seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as (possibly fractional) milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	switch t {
	case MinTime:
		return "-inf"
	case MaxTime:
		return "+inf"
	}
	return fmt.Sprintf("%dµs", int64(t))
}

// TSKind identifies how a stream's tuples obtain timestamps (paper §5).
type TSKind uint8

const (
	// External timestamps are assigned by the application that produced
	// the tuples. The DSMS cannot assume anything about their relation to
	// its own clock beyond a configured skew bound.
	External TSKind = iota
	// Internal timestamps are assigned by the DSMS when a tuple enters the
	// system, using the (virtual) system clock.
	Internal
	// Latent streams carry no timestamp; operators that need one stamp
	// tuples on the fly. IWP operators never idle-wait on latent streams.
	Latent
)

func (k TSKind) String() string {
	switch k {
	case External:
		return "external"
	case Internal:
		return "internal"
	case Latent:
		return "latent"
	default:
		return fmt.Sprintf("TSKind(%d)", uint8(k))
	}
}

// Kind distinguishes data tuples from punctuation tuples.
type Kind uint8

const (
	// Data tuples carry application values.
	Data Kind = iota
	// Punct tuples carry only an Enabling Time-Stamp (ETS): a promise that
	// no future tuple on this arc will have a timestamp smaller than Ts.
	// They exist to reactivate idle-waiting operators and are eliminated
	// at sink nodes.
	Punct
)

func (k Kind) String() string {
	if k == Punct {
		return "punct"
	}
	return "data"
}

// Tuple is one element of a stream. Tuples are immutable once emitted;
// operators that transform values allocate new tuples.
type Tuple struct {
	// Ts is the tuple's timestamp. For Kind==Punct it is the ETS value.
	// For latent streams it is MinTime until an operator stamps it.
	Ts Time
	// Kind is Data or Punct.
	Kind Kind
	// Vals holds the attribute values, aligned with the stream's schema.
	// Punctuation tuples have nil Vals.
	Vals []Value
	// Arrived is the virtual time at which the tuple entered the DSMS.
	// Latency accounting uses emission time minus Ts for timestamped
	// streams and emission time minus Arrived for latent streams.
	Arrived Time
	// Seq is a per-source sequence number, useful for debugging and for
	// deterministic tie-breaking in tests.
	Seq uint64
	// Trace is the propagation-span trace ID for Kind==Punct when span
	// collection is enabled; 0 means untraced. Data tuples never carry a
	// trace. The ID is assigned where the punctuation is generated (source
	// ETS logic, watchdog, or a remote client over the wire) and rides the
	// tuple so every hop can append to the same timeline.
	Trace uint64
	// Ckpt is the checkpoint-barrier ID for Kind==Punct when the tuple is a
	// barrier punctuation; 0 means not a barrier. Data tuples never carry a
	// barrier ID. The checkpoint coordinator assigns it at injection and it
	// rides the punctuation through the graph so every stateful operator
	// snapshots at the same consistent cut.
	Ckpt uint64
}

// NewData returns a data tuple with the given timestamp and values.
func NewData(ts Time, vals ...Value) *Tuple {
	return &Tuple{Ts: ts, Kind: Data, Vals: vals}
}

// NewPunct returns a punctuation tuple carrying the ETS value ts.
func NewPunct(ts Time) *Tuple {
	return &Tuple{Ts: ts, Kind: Punct}
}

// IsPunct reports whether t is a punctuation tuple.
func (t *Tuple) IsPunct() bool { return t.Kind == Punct }

// IsEOS reports whether t is the end-of-stream punctuation.
func (t *Tuple) IsEOS() bool { return t.Kind == Punct && t.Ts == MaxTime }

// EOS is the end-of-stream punctuation constructor.
func EOS() *Tuple { return NewPunct(MaxTime) }

// WithTs returns a copy of t with the timestamp replaced, used by operators
// that stamp latent tuples on the fly. The original is never mutated — in
// particular, stamping a latent tuple leaves the original's Ts at MinTime.
// The copy ALIASES t.Vals rather than deep-copying it, which is safe under
// the immutability rule above but carries one sharp edge: recycling the
// original (Put or Magazine.Put) truncates and reuses the shared backing
// array, so a WithTs copy must not outlive its original's return to the
// pool. Callers that need an independent lifetime must use Clone.
func (t *Tuple) WithTs(ts Time) *Tuple {
	c := *t
	c.Ts = ts
	return &c
}

// Clone returns a deep copy of t. Vals are copied so the clone can be
// mutated (e.g. by a projection) and outlive the original's recycling
// without aliasing; boxed values (strings, nested Values) still share
// immutable backing data.
func (t *Tuple) Clone() *Tuple {
	c := *t
	if t.Vals != nil {
		c.Vals = make([]Value, len(t.Vals))
		copy(c.Vals, t.Vals)
	}
	return &c
}

func (t *Tuple) String() string {
	if t == nil {
		return "<nil>"
	}
	if t.IsPunct() {
		return fmt.Sprintf("punct(%s)", t.Ts)
	}
	var b strings.Builder
	b.WriteString("tuple(")
	b.WriteString(t.Ts.String())
	for _, v := range t.Vals {
		b.WriteString(", ")
		b.WriteString(v.String())
	}
	b.WriteString(")")
	return b.String()
}
