package tuple

import (
	"strings"
	"testing"
)

func sensorSchema() *Schema {
	return NewSchema("sensor",
		Field{Name: "id", Kind: IntKind},
		Field{Name: "temp", Kind: FloatKind},
		Field{Name: "loc", Kind: StringKind},
	)
}

func TestSchemaBasics(t *testing.T) {
	s := sensorSchema()
	if s.Arity() != 3 {
		t.Fatalf("Arity = %d", s.Arity())
	}
	if s.TS != Internal {
		t.Fatal("default TS kind must be Internal")
	}
	if i := s.Index("temp"); i != 1 {
		t.Errorf("Index(temp) = %d", i)
	}
	if i := s.Index("nope"); i != -1 {
		t.Errorf("Index(nope) = %d", i)
	}
	if f := s.Field(0); f.Name != "id" || f.Kind != IntKind {
		t.Errorf("Field(0) = %v", f)
	}
}

func TestSchemaWithTS(t *testing.T) {
	s := sensorSchema()
	e := s.WithTS(External)
	if e.TS != External || s.TS != Internal {
		t.Fatal("WithTS must copy, not mutate")
	}
	e.Fields[0].Name = "mutated"
	if s.Fields[0].Name != "id" {
		t.Fatal("WithTS aliases Fields slice")
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := sensorSchema().Validate(); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
	bad := NewSchema("", Field{Name: "a", Kind: IntKind})
	if err := bad.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	dup := NewSchema("s", Field{Name: "a", Kind: IntKind}, Field{Name: "a", Kind: IntKind})
	if err := dup.Validate(); err == nil {
		t.Error("duplicate field accepted")
	}
	anon := NewSchema("s", Field{Name: "", Kind: IntKind})
	if err := anon.Validate(); err == nil {
		t.Error("empty field name accepted")
	}
}

func TestSchemaCheckTuple(t *testing.T) {
	s := sensorSchema()
	good := NewData(1, Int(7), Float(21.5), String_("lab"))
	if err := s.CheckTuple(good); err != nil {
		t.Errorf("good tuple rejected: %v", err)
	}
	withNull := NewData(1, Int(7), Value{}, String_("lab"))
	if err := s.CheckTuple(withNull); err != nil {
		t.Errorf("null field rejected: %v", err)
	}
	short := NewData(1, Int(7))
	if err := s.CheckTuple(short); err == nil {
		t.Error("arity mismatch accepted")
	}
	wrongKind := NewData(1, Int(7), String_("x"), String_("lab"))
	if err := s.CheckTuple(wrongKind); err == nil {
		t.Error("kind mismatch accepted")
	}
	if err := s.CheckTuple(NewPunct(5)); err != nil {
		t.Errorf("punctuation rejected: %v", err)
	}
}

func TestSchemaConcat(t *testing.T) {
	a := NewSchema("a", Field{Name: "id", Kind: IntKind}, Field{Name: "x", Kind: FloatKind})
	b := NewSchema("b", Field{Name: "id", Kind: IntKind}, Field{Name: "y", Kind: FloatKind})
	j := a.Concat("j", b)
	if j.Arity() != 4 {
		t.Fatalf("Concat arity = %d", j.Arity())
	}
	want := []string{"id", "x", "b.id", "y"}
	for i, w := range want {
		if j.Fields[i].Name != w {
			t.Errorf("Concat field %d = %q, want %q", i, j.Fields[i].Name, w)
		}
	}
	if err := j.Validate(); err != nil {
		t.Errorf("Concat schema invalid: %v", err)
	}
}

func TestSchemaProject(t *testing.T) {
	s := sensorSchema()
	p, idx, err := s.Project("p", "loc", "id")
	if err != nil {
		t.Fatal(err)
	}
	if p.Arity() != 2 || p.Fields[0].Name != "loc" || p.Fields[1].Name != "id" {
		t.Errorf("Project schema wrong: %v", p)
	}
	if len(idx) != 2 || idx[0] != 2 || idx[1] != 0 {
		t.Errorf("Project indexes wrong: %v", idx)
	}
	if _, _, err := s.Project("p", "ghost"); err == nil {
		t.Error("Project of missing field accepted")
	}
}

func TestSchemaString(t *testing.T) {
	s := sensorSchema().String()
	for _, frag := range []string{"sensor(", "id int", "temp float", "loc string", "ts=internal"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q: %s", frag, s)
		}
	}
}
