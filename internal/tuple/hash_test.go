package tuple

import "testing"

// Hash must be consistent with Equal: values that compare equal (including
// cross-kind numeric equality) must hash equally — the hash partitioner
// routes both join inputs by value.
func TestHashConsistentWithEqual(t *testing.T) {
	pairs := [][2]Value{
		{Int(7), Int(7)},
		{Int(7), Float(7)},
		{Int(0), Float(-0.0)}, // -0.0 == +0, must co-locate
		{TimeVal(42), Int(42)},
		{String_("abc"), String_("abc")},
		{Bool(true), Bool(true)},
		{Value{}, Value{}},
	}
	for _, p := range pairs {
		if !p[0].Equal(p[1]) {
			t.Fatalf("%v and %v should be Equal", p[0], p[1])
		}
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("Hash(%v) != Hash(%v)", p[0], p[1])
		}
	}
}

func TestHashSpreadsDistinctValues(t *testing.T) {
	seen := make(map[uint64]Value)
	add := func(v Value) {
		h := v.Hash()
		if prev, dup := seen[h]; dup && !prev.Equal(v) {
			t.Errorf("collision: %v and %v -> %#x", prev, v, h)
		}
		seen[h] = v
	}
	for i := int64(0); i < 1000; i++ {
		add(Int(i))
	}
	add(String_("a"))
	add(String_("b"))
	add(String_("ab"))
	add(Bool(true))
	add(Bool(false))
	// Distinct kinds with disjoint payload spaces must not all collapse
	// onto one bucket: int 1 vs string "1" vs bool true.
	if Int(1).Hash() == String_("1").Hash() && Int(1).Hash() == Bool(true).Hash() {
		t.Error("kind tag not mixed into hash")
	}
}
