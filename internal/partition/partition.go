// Package partition implements the data-parallel graph rewrite: given a
// query graph and a shard count P, it replicates every partitionable
// stateful operator (hash/equi window join, multiway equi-join, grouped
// aggregate, TSM union) into P shards, inserts a hash-partitioning Split on
// each input arc, and re-joins the shard outputs through a min-watermark
// Merge, so that downstream consumers see the same timestamp-ordered,
// punctuation-correct stream as the unsharded operator.
//
// The rewrite is semantics-preserving because of three invariants:
//
//  1. Key co-location: a Split routes a data tuple by hashing the operator's
//     partition key for that input, so every set of tuples that can produce
//     joint output (equal join keys, same group) meets in exactly one shard,
//     and each shard's state is the restriction of the global operator's
//     state to its key slice.
//  2. Punctuation broadcast: a Split copies every punctuation to all shards,
//     so each shard's TSM registers advance exactly as the unsharded
//     operator's would, and no shard idle-waits on a key-skewed input.
//  3. Min-watermark merge: the Merge forwards a punctuation only once every
//     shard's register has passed it (the TSM union's min-register rule), so
//     the merged stream never carries a bound some shard could still
//     contradict, and data pops in global timestamp order.
//
// Operators opt in via ops.Partitionable; anything else (reorder and other
// order-sensitive ops, opaque join predicates, row-count windows, global
// aggregates) passes through unchanged.
package partition

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/ops"
)

// Sharded records how one operator was partitioned, in new-graph node ids.
type Sharded struct {
	// Name is the original operator's name.
	Name string
	// Shards is the replication factor.
	Shards int
	// Splitters holds the Split node per input port.
	Splitters []graph.NodeID
	// ShardIDs holds the P shard nodes.
	ShardIDs []graph.NodeID
	// Merge is the min-watermark fan-in standing in for the original node.
	Merge graph.NodeID
}

// Plan describes a completed rewrite.
type Plan struct {
	// Shards is the requested replication factor.
	Shards int
	// Ops lists the partitioned operators in topological order.
	Ops []Sharded
}

func (p *Plan) String() string {
	if p == nil || len(p.Ops) == 0 {
		return "partition: none"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "partition: %d shards:", p.Shards)
	for _, s := range p.Ops {
		fmt.Fprintf(&b, " %s", s.Name)
	}
	return b.String()
}

// partitionable reports the node's partition capability, requiring a
// non-source, non-sink operator whose PartitionKeys accept.
func partitionable(n *graph.Node) (ops.Partitionable, []int, bool) {
	if len(n.Preds) == 0 || len(n.Out) == 0 {
		// A source has nothing upstream to split; a terminal node's output
		// never re-merges, so sharding it would change what the sink sees.
		return nil, nil, false
	}
	pa, ok := n.Op.(ops.Partitionable)
	if !ok {
		return nil, nil, false
	}
	keys, ok := pa.PartitionKeys()
	if !ok || len(keys) != n.Op.NumInputs() {
		return nil, nil, false
	}
	return pa, keys, true
}

// Rewrite expands every partitionable operator of g into shards replicas.
// With shards < 2, or when no operator is partitionable, it returns g
// unchanged and a nil Plan. Otherwise it returns a fresh graph (sharing the
// surviving operator instances with g — the input graph is consumed) and the
// plan describing the expansion.
func Rewrite(g *graph.Graph, shards int) (*graph.Graph, *Plan) {
	if shards < 2 {
		return g, nil
	}
	any := false
	for _, n := range g.Nodes() {
		if _, _, ok := partitionable(n); ok {
			any = true
			break
		}
	}
	if !any {
		return g, nil
	}

	r := graph.NewRewriter(g, g.Name()+"/sharded")
	plan := &Plan{Shards: shards}
	for _, id := range g.TopoOrder() {
		n := g.Node(id)
		pa, keys, ok := partitionable(n)
		if !ok {
			r.Keep(id)
			continue
		}
		sh := Sharded{Name: n.Op.Name(), Shards: shards}
		// One splitter per input port, fed by the image of that port's
		// producer; the splitter carries the producer's output schema.
		for port, pred := range n.Preds {
			split := ops.NewSplit(
				fmt.Sprintf("split:%s.%d", n.Op.Name(), port),
				g.Node(pred).Op.OutSchema(), shards, keys[port])
			sh.Splitters = append(sh.Splitters, r.Add(split, r.Map(pred)))
		}
		// P shard replicas, each consuming port i from splitter i. Shards
		// are added in index order, so splitter i's out-arc s is the arc to
		// shard s — the invariant Split.Exec's EmitTo(s, ·) relies on.
		for s := 0; s < shards; s++ {
			sh.ShardIDs = append(sh.ShardIDs, r.Add(pa.NewShard(s, shards), sh.Splitters...))
		}
		// The min-watermark merge stands in for the original node.
		merge := ops.NewMerge("merge:"+n.Op.Name(), n.Op.OutSchema(), shards)
		sh.Merge = r.Add(merge, sh.ShardIDs...)
		r.SetMap(id, sh.Merge)
		plan.Ops = append(plan.Ops, sh)
	}
	return r.Graph(), plan
}

// Skew summarizes routing imbalance over a per-shard tuple vector (the
// rollup Engine.ShardTuples produces): (max − mean) / mean, so 0 means
// perfectly balanced and 1 means the hottest shard carries twice the mean.
// The observability snapshot reports it as the one-number skew diagnostic.
func Skew(counts []uint64) float64 {
	if len(counts) == 0 {
		return 0
	}
	var total, max uint64
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(counts))
	return (float64(max) - mean) / mean
}

// Balance computes a bucket→shard assignment over observed per-bucket loads
// using the longest-processing-time greedy: buckets are placed heaviest
// first onto the currently lightest shard, which is within 4/3 of optimal
// makespan and deterministic (ties break toward the lower shard index, equal
// loads toward the lower bucket index). Buckets with zero observed load keep
// the canonical bucket%shards mapping, so cold key groups are not shuffled
// by a rebalance they contributed nothing to. The result is what
// ops.Split.Retarget swaps in at a punctuation barrier.
//
// shards < 1 or an empty load vector returns nil.
func Balance(load []uint64, shards int) []int32 {
	if shards < 1 || len(load) == 0 {
		return nil
	}
	assign := make([]int32, len(load))
	order := make([]int, 0, len(load))
	for b := range load {
		if load[b] == 0 {
			assign[b] = int32(b % shards)
			continue
		}
		order = append(order, b)
	}
	// Heaviest first, bucket index as the deterministic tie-break.
	sort.Slice(order, func(i, j int) bool {
		bi, bj := order[i], order[j]
		if load[bi] != load[bj] {
			return load[bi] > load[bj]
		}
		return bi < bj
	})
	totals := make([]uint64, shards)
	for _, b := range order {
		best := 0
		for s := 1; s < shards; s++ {
			if totals[s] < totals[best] {
				best = s
			}
		}
		assign[b] = int32(best)
		totals[best] += load[b]
	}
	return assign
}
