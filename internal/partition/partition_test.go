package partition

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tuple"
	"repro/internal/window"
)

func noopSink() *ops.Sink {
	return ops.NewSink("k", func(*tuple.Tuple, tuple.Time) {})
}

func joinGraph() (*graph.Graph, *ops.Source, *ops.Source) {
	sch := tuple.NewSchema("s",
		tuple.Field{Name: "key", Kind: tuple.IntKind},
		tuple.Field{Name: "seq", Kind: tuple.IntKind},
	).WithTS(tuple.External)
	g := graph.New("q")
	s1 := ops.NewSource("s1", sch, 0)
	s2 := ops.NewSource("s2", sch, 0)
	a := g.AddNode(s1)
	b := g.AddNode(s2)
	j := g.AddNode(ops.NewHashWindowJoin("j", nil,
		window.TimeWindow(1<<40), window.TimeWindow(1<<40), 0, 0, ops.TSM), a, b)
	g.AddNode(noopSink(), j)
	return g, s1, s2
}

func TestRewriteNoopCases(t *testing.T) {
	g, _, _ := joinGraph()
	if g2, plan := Rewrite(g, 1); g2 != g || plan != nil {
		t.Fatal("shards=1 must return the graph unchanged")
	}
	// Nothing partitionable: an opaque-predicate join.
	g3 := graph.New("q")
	sch := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind})
	a := g3.AddNode(ops.NewSource("s1", sch, 0))
	b := g3.AddNode(ops.NewSource("s2", sch, 0))
	j := g3.AddNode(ops.NewWindowJoin("j", nil, window.TimeWindow(100), ops.CrossJoin(), ops.TSM), a, b)
	g3.AddNode(noopSink(), j)
	if g4, plan := Rewrite(g3, 4); g4 != g3 || plan != nil {
		t.Fatal("graph without partitionable ops must pass through unchanged")
	}
}

func TestRewriteStructure(t *testing.T) {
	g, _, _ := joinGraph()
	const P = 3
	g2, plan := Rewrite(g, P)
	if g2 == g || plan == nil {
		t.Fatal("rewrite did not expand the graph")
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2 sources + 2 splitters + P shards + 1 merge + 1 sink.
	if want := 2 + 2 + P + 1 + 1; g2.Len() != want {
		t.Fatalf("rewritten graph has %d nodes, want %d\n%s", g2.Len(), want, g2.Dot())
	}
	if len(plan.Ops) != 1 || plan.Shards != P {
		t.Fatalf("plan = %+v", plan)
	}
	sh := plan.Ops[0]
	if sh.Name != "j" || len(sh.Splitters) != 2 || len(sh.ShardIDs) != P {
		t.Fatalf("sharded op = %+v", sh)
	}
	// The arc-order invariant Split.Exec relies on: splitter i's out-arc s
	// leads to shard s, on input port i.
	for i, sid := range sh.Splitters {
		sp := g2.Node(sid)
		if _, ok := sp.Op.(*ops.Split); !ok {
			t.Fatalf("splitter %d is %T", i, sp.Op)
		}
		if len(sp.Out) != P {
			t.Fatalf("splitter %d has %d out arcs", i, len(sp.Out))
		}
		for s, arc := range sp.Out {
			if arc.To != sh.ShardIDs[s] || arc.Port != i {
				t.Fatalf("splitter %d arc %d -> node %d port %d; want shard %d port %d",
					i, s, arc.To, arc.Port, sh.ShardIDs[s], i)
			}
		}
	}
	for s, sid := range sh.ShardIDs {
		op := g2.Node(sid).Op
		if op.Name() != fmt.Sprintf("j#%d", s) {
			t.Errorf("shard %d name %q", s, op.Name())
		}
	}
	merge := g2.Node(sh.Merge)
	if _, ok := merge.Op.(*ops.Merge); !ok {
		t.Fatalf("merge is %T", merge.Op)
	}
	for s, p := range merge.Preds {
		if p != sh.ShardIDs[s] {
			t.Fatalf("merge pred %d = %d, want %d", s, p, sh.ShardIDs[s])
		}
	}
	// The sink follows the merge, not the vanished original join node.
	sink := g2.Node(graph.NodeID(g2.Len() - 1))
	if _, ok := sink.Op.(*ops.Sink); !ok || sink.Preds[0] != sh.Merge {
		t.Fatalf("sink wiring: %T preds %v", sink.Op, sink.Preds)
	}
}

// driveJoin pushes a deterministic two-stream workload through g on the
// cooperative engine and returns the sink's data output as sorted strings.
func driveJoin(t *testing.T, g *graph.Graph, s1, s2 *ops.Source, collected *[]string) []string {
	t.Helper()
	*collected = (*collected)[:0]
	e := exec.MustNew(g, nil, func() tuple.Time { return 1 << 41 })
	const n = 200
	for i := 0; i < n; i++ {
		key := tuple.Int(int64(i % 8))
		s1.Ingest(tuple.NewData(tuple.Time(2*i), key, tuple.Int(int64(i))), 0)
		s2.Ingest(tuple.NewData(tuple.Time(2*i+1), key, tuple.Int(int64(i))), 0)
		for e.Step() {
		}
	}
	// Flush the tail with punctuation: unlike a data tuple — which routes
	// to a single shard — a punctuation broadcasts through the splitters
	// and bounds every shard's registers.
	s1.Offer(tuple.NewPunct(1 << 30))
	s2.Offer(tuple.NewPunct(1 << 30))
	for e.Step() {
	}
	out := append([]string(nil), *collected...)
	sort.Strings(out)
	return out
}

// The equivalence property: the sharded graph must produce exactly the
// unsharded graph's output (as a multiset — equal-timestamp interleaving at
// the merge is the only permitted difference).
func TestShardedJoinEquivalence(t *testing.T) {
	var got []string
	collect := func(tp *tuple.Tuple, _ tuple.Time) {
		if !tp.IsPunct() {
			got = append(got, fmt.Sprintf("%v|%v", tp.Ts, tp.Vals))
		}
	}
	g, s1, s2 := joinGraphWithSink(collect)
	want := driveJoin(t, g, s1, s2, &got)
	if len(want) == 0 {
		t.Fatal("unsharded join produced no output")
	}

	for _, P := range []int{2, 4} {
		gs, s1s, s2s := joinGraphWithSink(collect)
		g2, plan := Rewrite(gs, P)
		if plan == nil {
			t.Fatalf("P=%d: join not partitioned", P)
		}
		if have := driveJoin(t, g2, s1s, s2s, &got); !equalStrings(have, want) {
			t.Fatalf("P=%d: sharded output differs: %d vs %d rows", P, len(have), len(want))
		}
	}
}

func joinGraphWithSink(cb func(*tuple.Tuple, tuple.Time)) (*graph.Graph, *ops.Source, *ops.Source) {
	sch := tuple.NewSchema("s",
		tuple.Field{Name: "key", Kind: tuple.IntKind},
		tuple.Field{Name: "seq", Kind: tuple.IntKind},
	).WithTS(tuple.External)
	g := graph.New("q")
	s1 := ops.NewSource("s1", sch, 0)
	s2 := ops.NewSource("s2", sch, 0)
	a := g.AddNode(s1)
	b := g.AddNode(s2)
	j := g.AddNode(ops.NewHashWindowJoin("j", nil,
		window.TimeWindow(1<<40), window.TimeWindow(1<<40), 0, 0, ops.TSM), a, b)
	g.AddNode(ops.NewSink("k", cb), j)
	return g, s1, s2
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Round-robin sharding of a union must also reproduce the unsharded output:
// the merge restores global timestamp order.
func TestShardedUnionEquivalence(t *testing.T) {
	var got []tuple.Time
	build := func() (*graph.Graph, *ops.Source, *ops.Source) {
		sch := tuple.NewSchema("s",
			tuple.Field{Name: "v", Kind: tuple.IntKind}).WithTS(tuple.External)
		g := graph.New("u")
		s1 := ops.NewSource("s1", sch, 0)
		s2 := ops.NewSource("s2", sch, 0)
		a := g.AddNode(s1)
		b := g.AddNode(s2)
		u := g.AddNode(ops.NewUnion("u", nil, 2, ops.TSM), a, b)
		g.AddNode(ops.NewSink("k", func(tp *tuple.Tuple, _ tuple.Time) {
			if !tp.IsPunct() {
				got = append(got, tp.Ts)
			}
		}), u)
		return g, s1, s2
	}
	drive := func(g *graph.Graph, s1, s2 *ops.Source) []tuple.Time {
		got = got[:0]
		e := exec.MustNew(g, nil, func() tuple.Time { return 1 << 41 })
		for i := 0; i < 100; i++ {
			s1.Ingest(tuple.NewData(tuple.Time(2*i), tuple.Int(int64(i))), 0)
			s2.Ingest(tuple.NewData(tuple.Time(2*i+1), tuple.Int(int64(i))), 0)
			for e.Step() {
			}
		}
		s1.Offer(tuple.NewPunct(1 << 30))
		s2.Offer(tuple.NewPunct(1 << 30))
		for e.Step() {
		}
		return append([]tuple.Time(nil), got...)
	}

	g, s1, s2 := build()
	want := drive(g, s1, s2)
	if len(want) != 200 {
		t.Fatalf("unsharded union emitted %d tuples", len(want))
	}
	gs, s1s, s2s := build()
	g2, plan := Rewrite(gs, 4)
	if plan == nil {
		t.Fatal("union not partitioned")
	}
	have := drive(g2, s1s, s2s)
	if len(have) != len(want) {
		t.Fatalf("sharded union emitted %d tuples, want %d", len(have), len(want))
	}
	for i := range want {
		if have[i] != want[i] {
			t.Fatalf("order diverges at %d: %v vs %v", i, have[i], want[i])
		}
	}
}
