package partition

import (
	"math"
	"testing"
)

func TestSkewEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		counts []uint64
		want   float64
	}{
		{"empty", nil, 0},
		{"empty slice", []uint64{}, 0},
		{"all shards empty", []uint64{0, 0, 0, 0}, 0},
		{"single shard", []uint64{5}, 0},
		{"single empty shard", []uint64{0}, 0},
		{"balanced", []uint64{10, 10, 10, 10}, 0},
		// mean = 2.5, max = 10 → (10-2.5)/2.5 = 3.
		{"all on one shard", []uint64{10, 0, 0, 0}, 3},
		// mean = 15, max = 20 → 1/3.
		{"mild imbalance", []uint64{20, 10}, 1.0 / 3.0},
	}
	for _, c := range cases {
		got := Skew(c.counts)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("Skew(%v) = %v, want finite", c.counts, got)
			continue
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Skew(%v) = %v, want %v", c.counts, got, c.want)
		}
	}
}

func TestBalanceDegenerate(t *testing.T) {
	if got := Balance(nil, 4); got != nil {
		t.Fatalf("Balance(nil, 4) = %v, want nil", got)
	}
	if got := Balance([]uint64{1, 2}, 0); got != nil {
		t.Fatalf("Balance(load, 0) = %v, want nil", got)
	}
}

func TestBalanceColdBucketsKeepCanonicalMapping(t *testing.T) {
	load := make([]uint64, 8)
	got := Balance(load, 4)
	for b, s := range got {
		if s != int32(b%4) {
			t.Fatalf("cold bucket %d assigned to %d, want %d", b, s, b%4)
		}
	}
}

func TestBalanceSpreadsHotBuckets(t *testing.T) {
	// Four equally hot buckets that the canonical b%2 mapping would pile
	// two-and-two — but so would any mapping; instead make them collide:
	// all four hash to shard 0 under b%2? Use buckets 0,2,4,6 hot with 2
	// shards: canonical puts all on shard 0.
	load := make([]uint64, 8)
	for _, b := range []int{0, 2, 4, 6} {
		load[b] = 100
	}
	got := Balance(load, 2)
	var totals [2]uint64
	for b, s := range got {
		totals[s] += load[b]
	}
	if totals[0] != 200 || totals[1] != 200 {
		t.Fatalf("Balance split hot load %v, want 200/200 (assign %v)", totals, got)
	}
	if Skew([]uint64{totals[0], totals[1]}) != 0 {
		t.Fatalf("post-balance skew nonzero")
	}
}

func TestBalanceDeterministic(t *testing.T) {
	load := []uint64{5, 0, 9, 9, 1, 0, 3, 7}
	a := Balance(load, 3)
	b := Balance(load, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Balance not deterministic at bucket %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestBalanceLPTQuality(t *testing.T) {
	// One dominant bucket plus filler: the dominant bucket must sit alone-ish
	// and the result's makespan must be within 4/3 of the lower bound.
	load := []uint64{90, 10, 10, 10, 10, 10, 10, 10}
	shards := 4
	got := Balance(load, shards)
	totals := make([]uint64, shards)
	var sum uint64
	for b, s := range got {
		totals[s] += load[b]
		sum += load[b]
	}
	var max uint64
	for _, v := range totals {
		if v > max {
			max = v
		}
	}
	// OPT ≥ max(mean load, heaviest single bucket).
	lower := sum / uint64(shards)
	for _, v := range load {
		if v > lower {
			lower = v
		}
	}
	if max > lower*4/3+1 {
		t.Fatalf("LPT makespan %d exceeds 4/3 bound of %d (totals %v)", max, lower*4/3+1, totals)
	}
}
