// Live observability: the Registry is a process-local set of named
// instruments — monotonic counters, gauges, gauge functions, and
// ring-buffered sample reservoirs — that engine goroutines update lock-free
// while scrapers (the streamd HTTP endpoint, the -stats printer, dotviz
// overlays) snapshot concurrently without stopping anything.
//
// Naming follows the Prometheus convention: a metric name is a family plus
// an optional label set, e.g.
//
//	sm_node_tuples_out_total{node="u",id="2"}
//
// The registry treats the whole string as the unique key; the exposition
// writers split off the family so TYPE lines group correctly.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter64 is a lock-free monotonic counter.
type Counter64 struct{ v atomic.Uint64 }

// Add increments the counter by d.
func (c *Counter64) Add(d uint64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter64) Inc() { c.v.Add(1) }

// Load reads the current value.
func (c *Counter64) Load() uint64 { return c.v.Load() }

// RateWindow remembers a counter's value at the previous observation so
// periodic pollers (the adaptive controller's tick) can read per-interval
// deltas without diffing whole snapshots by hand. One RateWindow tracks one
// counter; it is not safe for concurrent use — each poller owns its own.
type RateWindow struct {
	last  uint64
	valid bool
}

// Rate returns the counter's increase since the previous call with the same
// window. The first call primes the window and returns 0, so a controller's
// first tick never sees the counter's whole lifetime as one burst. Counters
// are monotonic; if the counter was restarted below the remembered value the
// window re-primes and returns 0 rather than underflowing.
func (c *Counter64) Rate(w *RateWindow) uint64 {
	cur := c.v.Load()
	prev, valid := w.last, w.valid
	w.last, w.valid = cur, true
	if !valid || cur < prev {
		return 0
	}
	return cur - prev
}

// Gauge64 is a lock-free gauge (a value that can go up and down).
type Gauge64 struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge64) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
func (g *Gauge64) Add(d int64) { g.v.Add(d) }

// Load reads the current value.
func (g *Gauge64) Load() int64 { return g.v.Load() }

// Raise sets the gauge to v if v exceeds the current value — the high-water
// mark primitive. Safe under concurrent Raise calls.
func (g *Gauge64) Raise(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Reservoir retains the most recent capacity samples in a lock-free ring:
// writers claim a slot with one atomic add and store with one atomic store,
// so a node goroutine can observe per-tuple latencies without coordination.
// A snapshot may see a torn window under heavy concurrent writes (each slot
// is individually atomic, the window is not) — acceptable for percentile
// estimation, which is what reservoirs are for.
type Reservoir struct {
	slots []atomic.Int64
	pos   atomic.Uint64 // total observations ever
}

// NewReservoir returns a reservoir retaining the last capacity samples.
func NewReservoir(capacity int) *Reservoir {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Reservoir{slots: make([]atomic.Int64, capacity)}
}

// Observe records one sample.
func (r *Reservoir) Observe(v int64) {
	i := r.pos.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(v)
}

// Count reports the total number of observations ever made.
func (r *Reservoir) Count() uint64 { return r.pos.Load() }

// Snapshot copies the retained window. The result is sorted, ready for
// percentile queries and merging.
func (r *Reservoir) Snapshot() ReservoirSnapshot {
	n := r.pos.Load()
	keep := uint64(len(r.slots))
	if n < keep {
		keep = n
	}
	s := ReservoirSnapshot{Count: n, Samples: make([]int64, keep)}
	for i := range s.Samples {
		s.Samples[i] = r.slots[i].Load()
	}
	sort.Slice(s.Samples, func(i, j int) bool { return s.Samples[i] < s.Samples[j] })
	return s
}

// ReservoirSnapshot is a point-in-time copy of a reservoir's window.
// Samples are sorted ascending.
type ReservoirSnapshot struct {
	Count   uint64  `json:"count"`
	Samples []int64 `json:"-"`
}

// Merge combines two snapshots (e.g. the same instrument across shards or
// engines) into one: counts add, windows concatenate re-sorted.
func (s ReservoirSnapshot) Merge(o ReservoirSnapshot) ReservoirSnapshot {
	out := ReservoirSnapshot{
		Count:   s.Count + o.Count,
		Samples: make([]int64, 0, len(s.Samples)+len(o.Samples)),
	}
	out.Samples = append(append(out.Samples, s.Samples...), o.Samples...)
	sort.Slice(out.Samples, func(i, j int) bool { return out.Samples[i] < out.Samples[j] })
	return out
}

// Percentile reports the p-th percentile (0 < p ≤ 100) of the retained
// window by nearest rank, or 0 with no samples.
func (s ReservoirSnapshot) Percentile(p float64) int64 {
	if len(s.Samples) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(s.Samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s.Samples) {
		rank = len(s.Samples) - 1
	}
	return s.Samples[rank]
}

// Mean reports the average of the retained window, or 0 with no samples.
func (s ReservoirSnapshot) Mean() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Samples {
		sum += float64(v)
	}
	return sum / float64(len(s.Samples))
}

// Max reports the largest retained sample, or 0 with no samples.
func (s ReservoirSnapshot) Max() int64 {
	if len(s.Samples) == 0 {
		return 0
	}
	return s.Samples[len(s.Samples)-1]
}

// MetricKind classifies a registered instrument.
type MetricKind uint8

const (
	KindCounter MetricKind = iota
	KindGauge
	KindReservoir
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "reservoir"
	}
}

type entry struct {
	name string
	kind MetricKind
	c    *Counter64
	g    *Gauge64
	fn   func() int64
	r    *Reservoir
}

// Registry is a named set of instruments. Registration takes a lock;
// updates through the returned instruments are lock-free; Snapshot and the
// writers may run concurrently with both.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// register installs e under its name, or returns the existing entry of the
// same kind (registration is idempotent so graph rebuilds can share a
// registry). A name collision across kinds panics: it is a programming
// error that would silently misreport.
func (r *Registry) register(e *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.entries[e.name]; ok {
		if old.kind != e.kind {
			panic(fmt.Sprintf("metrics: %q registered as both %v and %v", e.name, old.kind, e.kind))
		}
		return old
	}
	r.entries[e.name] = e
	return e
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter64 {
	return r.register(&entry{name: name, kind: KindCounter, c: &Counter64{}}).c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge64 {
	return r.register(&entry{name: name, kind: KindGauge, g: &Gauge64{}}).g
}

// GaugeFunc registers a gauge whose value is computed at snapshot time. fn
// must be safe to call from any goroutine at any moment (read atomics,
// channel lengths — never engine-private state).
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.register(&entry{name: name, kind: KindGauge, fn: fn})
}

// CounterFunc registers a counter whose value is read at snapshot time from
// an existing monotonic source (e.g. an engine-owned atomic). The same
// safety rule as GaugeFunc applies.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	r.register(&entry{name: name, kind: KindCounter, fn: fn})
}

// Reservoir returns the named reservoir, creating it with the given window
// capacity on first use.
func (r *Registry) Reservoir(name string, capacity int) *Reservoir {
	e := r.register(&entry{name: name, kind: KindReservoir, r: NewReservoir(capacity)})
	return e.r
}

// Metric is one instrument's value in a registry snapshot.
type Metric struct {
	Name  string
	Kind  MetricKind
	Value float64            // counter / gauge value
	Res   *ReservoirSnapshot // set for reservoirs
}

// Snapshot reads every instrument once and returns the values sorted by
// name. Mergeable: see MergeSnapshots.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	es := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		es = append(es, e)
	}
	r.mu.Unlock()
	sort.Slice(es, func(i, j int) bool { return es[i].name < es[j].name })
	out := make([]Metric, 0, len(es))
	for _, e := range es {
		m := Metric{Name: e.name, Kind: e.kind}
		switch {
		case e.c != nil:
			m.Value = float64(e.c.Load())
		case e.fn != nil:
			m.Value = float64(e.fn())
		case e.g != nil:
			m.Value = float64(e.g.Load())
		case e.r != nil:
			s := e.r.Snapshot()
			m.Res = &s
		}
		out = append(out, m)
	}
	return out
}

// MergeSnapshots combines two snapshots by name: counters add, gauges take
// the maximum (the conservative reading for depths and high-water marks),
// reservoirs merge. Metrics present in only one input pass through.
func MergeSnapshots(a, b []Metric) []Metric {
	byName := make(map[string]Metric, len(a))
	for _, m := range a {
		byName[m.Name] = m
	}
	for _, m := range b {
		old, ok := byName[m.Name]
		if !ok {
			byName[m.Name] = m
			continue
		}
		switch m.Kind {
		case KindCounter:
			old.Value += m.Value
		case KindGauge:
			if m.Value > old.Value {
				old.Value = m.Value
			}
		case KindReservoir:
			if old.Res != nil && m.Res != nil {
				merged := old.Res.Merge(*m.Res)
				old.Res = &merged
			} else if m.Res != nil {
				old.Res = m.Res
			}
		}
		byName[old.Name] = old
	}
	out := make([]Metric, 0, len(byName))
	for _, m := range byName {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SplitName separates a metric name into its family and label portion:
// `f{a="b"}` → ("f", `a="b"`); a plain name has an empty label portion.
func SplitName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// LabelValue extracts one label's value from the label portion returned by
// SplitName, or "" when absent. Label values must not contain escaped
// quotes (engine-generated names never do).
func LabelValue(labels, key string) string {
	for _, part := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(part, "=")
		if ok && k == key {
			return strings.Trim(v, `"`)
		}
	}
	return ""
}

// quantileName splices a quantile label into a metric name.
func quantileName(name, q string) string {
	family, labels := SplitName(name)
	if labels == "" {
		return fmt.Sprintf("%s{quantile=%q}", family, q)
	}
	return fmt.Sprintf("%s{%s,quantile=%q}", family, labels, q)
}

// suffixName appends a suffix to the family, keeping labels: f{l} + "_count"
// → f_count{l}.
func suffixName(name, suffix string) string {
	family, labels := SplitName(name)
	if labels == "" {
		return family + suffix
	}
	return fmt.Sprintf("%s%s{%s}", family, suffix, labels)
}

// WriteProm renders the registry in the Prometheus text exposition format:
// counters and gauges as-is, reservoirs as summaries with p50/p90/p99
// quantiles plus _count.
func (r *Registry) WriteProm(w io.Writer) error {
	snap := r.Snapshot()
	seenType := make(map[string]bool)
	for _, m := range snap {
		family, _ := SplitName(m.Name)
		if !seenType[family] {
			seenType[family] = true
			t := "counter"
			switch m.Kind {
			case KindGauge:
				t = "gauge"
			case KindReservoir:
				t = "summary"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, t); err != nil {
				return err
			}
		}
		if m.Res != nil {
			for _, q := range []struct {
				label string
				p     float64
			}{{"0.5", 50}, {"0.9", 90}, {"0.99", 99}} {
				if _, err := fmt.Fprintf(w, "%s %d\n", quantileName(m.Name, q.label), m.Res.Percentile(q.p)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", suffixName(m.Name, "_count"), m.Res.Count); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", m.Name, formatValue(m.Value)); err != nil {
			return err
		}
	}
	return nil
}

// formatValue renders integral values without an exponent or trailing
// zeros; non-integral values keep full float formatting.
// sanitizeValue maps NaN and ±Inf to 0: a GaugeFunc dividing by a
// not-yet-incremented counter must not break the whole exposition (JSON
// rejects NaN outright, and one NaN sample poisons Prometheus rate math).
func sanitizeValue(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

func formatValue(v float64) string {
	v = sanitizeValue(v)
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteText renders the snapshot as sorted "name value" lines — the
// human-readable form streamd's -stats prints (documented in README).
// Reservoirs expand to _count/_mean/_p50/_p99/_max lines.
func (r *Registry) WriteText(w io.Writer) error {
	for _, m := range r.Snapshot() {
		if m.Res != nil {
			lines := []struct {
				suffix string
				value  string
			}{
				{"_count", fmt.Sprintf("%d", m.Res.Count)},
				{"_mean", fmt.Sprintf("%.1f", m.Res.Mean())},
				{"_p50", fmt.Sprintf("%d", m.Res.Percentile(50))},
				{"_p99", fmt.Sprintf("%d", m.Res.Percentile(99))},
				{"_max", fmt.Sprintf("%d", m.Res.Max())},
			}
			for _, l := range lines {
				if _, err := fmt.Fprintf(w, "%s %s\n", suffixName(m.Name, l.suffix), l.value); err != nil {
					return err
				}
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", m.Name, formatValue(m.Value)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as one flat JSON object, name → value
// (reservoirs become {count, mean, p50, p99, max} objects) — the /vars
// document dotviz -overlay consumes.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]any)
	for _, m := range r.Snapshot() {
		if m.Res != nil {
			out[m.Name] = map[string]any{
				"count": m.Res.Count,
				"mean":  m.Res.Mean(),
				"p50":   m.Res.Percentile(50),
				"p99":   m.Res.Percentile(99),
				"max":   m.Res.Max(),
			}
			continue
		}
		out[m.Name] = sanitizeValue(m.Value)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
