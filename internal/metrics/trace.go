package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/tuple"
)

// EventKind names the engine moments the trace facility records — the event
// taxonomy of DESIGN.md §8. Each kind corresponds to a timestamp-management
// transition the paper reasons about: idle-waiting onset and exit, on-demand
// ETS generation, upstream demand signalling, watermark (output bound)
// advance, and batch flushes on the concurrent data plane.
type EventKind uint8

const (
	// EvIdleEnter: an operator blocked while holding input data.
	EvIdleEnter EventKind = iota
	// EvIdleExit: the operator was reactivated; Value is the idle spell's
	// duration in µs.
	EvIdleExit
	// EvETSGen: a source generated an on-demand ETS; Value is its timestamp.
	EvETSGen
	// EvDemandSent: an idle-waiting node signalled demand upstream.
	EvDemandSent
	// EvWatermarkAdvance: a node's output bound advanced; Value is the new
	// watermark.
	EvWatermarkAdvance
	// EvBatchFlush: a pending output batch was sent; Value is its length.
	EvBatchFlush
	// EvNodePanic: a node goroutine panicked and was caught by its
	// supervisor; Value is the number of restarts already consumed.
	EvNodePanic
	// EvNodeRestart: the supervisor restarted a panicked node; Value is
	// the restart attempt number (1-based).
	EvNodeRestart
	// EvETSForced: the source-liveness watchdog force-injected an ETS into
	// a silent source.
	EvETSForced
	// EvSourceDead: a source silent past its dead threshold was declared
	// dead and its stream closed so downstream bounds keep advancing.
	EvSourceDead
	// EvSourceRevive: a tuple arrived at a source previously declared dead.
	EvSourceRevive
	// EvLateTuple: data arrived below the node's input watermark (an ETS
	// overshoot or a revived source); Value is how many tuples in the
	// delivery were late.
	EvLateTuple
	// EvShed: the node dropped buffered tuples to stay within its queue
	// bound; Value is how many were shed.
	EvShed
	// EvNetSessionOpen: the ingest server accepted a connection; Value is
	// the session id.
	EvNetSessionOpen
	// EvNetSessionClose: an ingest session ended; Value is the session id.
	EvNetSessionClose
	// EvNetBind: a session bound a stream; Value is the session id.
	EvNetBind
	// EvNetDemand: the server granted tuple credits to a client (the wire
	// form of upstream demand); Value is the credits granted.
	EvNetDemand
	// EvNetSkew: a session's skew estimator raised a source's δ; Value is
	// the new bound in µs.
	EvNetSkew
	// EvRetuneBatch: the adaptive controller decided a new batch size for a
	// node; Value is the new size.
	EvRetuneBatch
	// EvRetuneShards: the controller issued a splitter re-assignment;
	// Value is the punctuation barrier timestamp the swap is fenced on.
	EvRetuneShards
	// EvRetuneProbe: the controller reordered a multiway join's probe
	// sequence; Value packs the new order (input index per nibble).
	EvRetuneProbe
	// EvRetuneApplied: a node observed a pending reconfiguration at a
	// punctuation boundary and applied it; Value is the punctuation
	// timestamp at the apply point (the quiescence witness).
	EvRetuneApplied
	// EvCkptBarrier: a source emitted a checkpoint barrier; Value is the
	// barrier's punctuation timestamp (the source's standing bound).
	EvCkptBarrier
	// EvCkptNode: a node applied a checkpoint barrier and snapshotted;
	// Value is the encoded state size in bytes (0 for stateless nodes).
	EvCkptNode
	// EvCkptComplete: every node reported and the snapshot was assembled;
	// Value is the checkpoint ID.
	EvCkptComplete
	// EvCkptAbort: a checkpoint attempt was abandoned (timeout or engine
	// stop); Value is the checkpoint ID.
	EvCkptAbort
	// EvCkptRestore: operator state was restored from a checkpoint before
	// start; Value is the checkpoint ID.
	EvCkptRestore

	numEventKinds
)

func (k EventKind) String() string {
	switch k {
	case EvIdleEnter:
		return "IdleEnter"
	case EvIdleExit:
		return "IdleExit"
	case EvETSGen:
		return "ETSGen"
	case EvDemandSent:
		return "DemandSent"
	case EvWatermarkAdvance:
		return "WatermarkAdvance"
	case EvBatchFlush:
		return "BatchFlush"
	case EvNodePanic:
		return "NodePanic"
	case EvNodeRestart:
		return "NodeRestart"
	case EvETSForced:
		return "ETSForced"
	case EvSourceDead:
		return "SourceDead"
	case EvSourceRevive:
		return "SourceRevive"
	case EvLateTuple:
		return "LateTuple"
	case EvShed:
		return "Shed"
	case EvNetSessionOpen:
		return "NetSessionOpen"
	case EvNetSessionClose:
		return "NetSessionClose"
	case EvNetBind:
		return "NetBind"
	case EvNetDemand:
		return "NetDemand"
	case EvNetSkew:
		return "NetSkew"
	case EvRetuneBatch:
		return "RetuneBatch"
	case EvRetuneShards:
		return "RetuneShards"
	case EvRetuneProbe:
		return "RetuneProbe"
	case EvRetuneApplied:
		return "RetuneApplied"
	case EvCkptBarrier:
		return "CkptBarrier"
	case EvCkptNode:
		return "CkptNode"
	case EvCkptComplete:
		return "CkptComplete"
	case EvCkptAbort:
		return "CkptAbort"
	case EvCkptRestore:
		return "CkptRestore"
	default:
		return fmt.Sprintf("EventKind(%d)", k)
	}
}

// Event is one recorded engine moment.
type Event struct {
	// Seq is the global emission sequence number (0-based).
	Seq uint64 `json:"seq"`
	// Kind classifies the event.
	Kind EventKind `json:"-"`
	// Node names the operator the event happened at.
	Node string `json:"node"`
	// When is the engine clock at emission, in µs.
	When tuple.Time `json:"when_us"`
	// Value is kind-specific: an ETS/watermark timestamp, an idle duration,
	// a batch length.
	Value int64 `json:"value"`
}

func (e Event) String() string {
	return fmt.Sprintf("#%d %s %s when=%d value=%d", e.Seq, e.Kind, e.Node, e.When, e.Value)
}

// MarshalJSON renders the kind by name so /trace output is self-describing.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Seq   uint64 `json:"seq"`
		Kind  string `json:"kind"`
		Node  string `json:"node"`
		When  int64  `json:"when_us"`
		Value int64  `json:"value"`
	}{e.Seq, e.Kind.String(), e.Node, int64(e.When), e.Value})
}

// Tracer records typed events into a bounded ring. Engines hold a *Tracer
// that is nil when tracing is off, so the disabled cost is one pointer
// check at each emission site. When enabled, Emit takes a short mutex to
// write one ring slot; per-kind totals are atomic so pairing invariants
// (every IdleEnter has an IdleExit) survive ring eviction.
//
// A pluggable sink, when set, receives every event synchronously after the
// ring write — e.g. a stderr streamer in streamd. The sink must be fast or
// it becomes the engine's bottleneck while tracing.
type Tracer struct {
	mu   sync.Mutex
	ring []Event
	next uint64 // total events emitted

	counts  [numEventKinds]atomic.Uint64
	dropped atomic.Uint64 // events overwritten by ring wrap before any read
	sink    atomic.Pointer[func(Event)]
}

// NewTracer returns a tracer retaining the last capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{ring: make([]Event, capacity)}
}

// SetSink installs fn as the synchronous event sink (nil removes it).
func (t *Tracer) SetSink(fn func(Event)) {
	if fn == nil {
		t.sink.Store(nil)
		return
	}
	t.sink.Store(&fn)
}

// Emit records one event. Safe for concurrent use.
func (t *Tracer) Emit(kind EventKind, node string, when tuple.Time, value int64) {
	if t == nil {
		return
	}
	t.counts[kind].Add(1)
	t.mu.Lock()
	if t.next >= uint64(len(t.ring)) {
		t.dropped.Add(1) // the slot being reused held an unevicted event
	}
	ev := Event{Seq: t.next, Kind: kind, Node: node, When: when, Value: value}
	t.ring[t.next%uint64(len(t.ring))] = ev
	t.next++
	t.mu.Unlock()
	if fn := t.sink.Load(); fn != nil {
		(*fn)(ev)
	}
}

// Total reports the number of events ever emitted.
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Count reports how many events of one kind were emitted (ring eviction
// does not affect it).
func (t *Tracer) Count(kind EventKind) uint64 { return t.counts[kind].Load() }

// Dropped reports how many events were silently evicted by ring
// wrap-around — exported as sm_trace_dropped_total (see InstrumentTracer)
// so a wrapping ring is visible instead of quietly lying by omission.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// InstrumentTracer registers the tracer's own meters into reg:
// sm_trace_events_total and sm_trace_dropped_total. Call once per
// registry+tracer pair (typically where both are created, e.g. streamd).
func InstrumentTracer(reg *Registry, t *Tracer) {
	if reg == nil || t == nil {
		return
	}
	reg.CounterFunc("sm_trace_events_total", func() int64 { return int64(t.Total()) })
	reg.CounterFunc("sm_trace_dropped_total", func() int64 { return int64(t.Dropped()) })
}

// Recent copies up to max retained events, oldest first. max ≤ 0 means the
// whole ring.
func (t *Tracer) Recent(max int) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	keep := uint64(len(t.ring))
	if n < keep {
		keep = n
	}
	if max > 0 && uint64(max) < keep {
		keep = uint64(max)
	}
	out := make([]Event, 0, keep)
	for i := n - keep; i < n; i++ {
		out = append(out, t.ring[i%uint64(len(t.ring))])
	}
	return out
}

// WriteText renders up to max retained events as one line each.
func (t *Tracer) WriteText(w io.Writer, max int) error {
	for _, ev := range t.Recent(max) {
		if _, err := fmt.Fprintln(w, ev.String()); err != nil {
			return err
		}
	}
	return nil
}
