// Package metrics provides the measurement instruments used by the
// experiment harness: latency accumulators with percentiles and histograms,
// and per-operator idle-waiting time accounting (the paper reports average
// output latency, peak total queue size, and the percentage of time the
// union operator spends idle-waiting).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/tuple"
)

// Latency accumulates latency samples in virtual time.
type Latency struct {
	samples []tuple.Time
	sum     float64
	max     tuple.Time
	min     tuple.Time
	// unsorted marks that samples has been appended to since the last
	// Percentile call. Sample order is otherwise meaningless (sum/min/max
	// are tracked incrementally), so Percentile sorts in place once and
	// reuses the order until the next Observe instead of copying and
	// re-sorting per call.
	unsorted bool
}

// NewLatency returns an empty accumulator.
func NewLatency() *Latency {
	return &Latency{min: tuple.MaxTime, max: tuple.MinTime}
}

// Reset discards all samples (e.g. at the end of a warm-up period).
func (l *Latency) Reset() {
	l.samples = l.samples[:0]
	l.sum = 0
	l.min = tuple.MaxTime
	l.max = tuple.MinTime
	l.unsorted = false
}

// Observe records one latency sample.
func (l *Latency) Observe(d tuple.Time) {
	// Appending a sample ≥ the current tail keeps a sorted slice sorted —
	// the common case for monotone latency sweeps — so only flag otherwise.
	if n := len(l.samples); n > 0 && d < l.samples[n-1] {
		l.unsorted = true
	}
	l.samples = append(l.samples, d)
	l.sum += float64(d)
	if d > l.max {
		l.max = d
	}
	if d < l.min {
		l.min = d
	}
}

// Count reports the number of samples.
func (l *Latency) Count() int { return len(l.samples) }

// Mean reports the average latency, or 0 with no samples.
func (l *Latency) Mean() tuple.Time {
	if len(l.samples) == 0 {
		return 0
	}
	return tuple.Time(l.sum / float64(len(l.samples)))
}

// Max reports the largest sample, or 0 with no samples.
func (l *Latency) Max() tuple.Time {
	if len(l.samples) == 0 {
		return 0
	}
	return l.max
}

// Min reports the smallest sample, or 0 with no samples.
func (l *Latency) Min() tuple.Time {
	if len(l.samples) == 0 {
		return 0
	}
	return l.min
}

// Percentile reports the p-th percentile (0 < p ≤ 100) by nearest-rank, or
// 0 with no samples. The samples are sorted in place at most once per batch
// of Observe calls: repeated Percentile queries between observations reuse
// the cached order (the experiment harness asks for p50/p95/p99 of the same
// accumulator back to back).
func (l *Latency) Percentile(p float64) tuple.Time {
	if len(l.samples) == 0 {
		return 0
	}
	if l.unsorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.unsorted = false
	}
	s := l.samples
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// Histogram buckets the samples into n logarithmic buckets between min and
// max (in µs) and renders a small text histogram.
func (l *Latency) Histogram(n int) string {
	if len(l.samples) == 0 || n <= 0 {
		return "(no samples)"
	}
	lo, hi := float64(l.Min()), float64(l.Max())
	if lo < 1 {
		lo = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	counts := make([]int, n)
	logLo, logHi := math.Log(lo), math.Log(hi)
	for _, s := range l.samples {
		v := float64(s)
		if v < 1 {
			v = 1
		}
		b := int(float64(n) * (math.Log(v) - logLo) / (logHi - logLo))
		if b >= n {
			b = n - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		from := math.Exp(logLo + (logHi-logLo)*float64(i)/float64(n))
		bar := ""
		if peak > 0 {
			bar = strings.Repeat("#", c*40/peak)
		}
		fmt.Fprintf(&b, "%12.0fµs |%-40s %d\n", from, bar, c)
	}
	return b.String()
}

// IdleAccount tracks, for one operator, how much virtual time it has spent
// idle-waiting: blocked by timestamp uncertainty while holding at least one
// input tuple it could otherwise process. This matches the paper's §6
// measurement ("the percentage of time the union operator spends in an
// idle-waiting state").
type IdleAccount struct {
	idle  tuple.Time
	total tuple.Time
}

// AddIdle charges d of idle-waiting time.
func (a *IdleAccount) AddIdle(d tuple.Time) { a.idle += d }

// AddTotal charges d of observed (wall) time.
func (a *IdleAccount) AddTotal(d tuple.Time) { a.total += d }

// Idle reports the accumulated idle-waiting time.
func (a *IdleAccount) Idle() tuple.Time { return a.idle }

// Total reports the accumulated observation time.
func (a *IdleAccount) Total() tuple.Time { return a.total }

// Fraction reports idle/total in [0,1], or 0 when nothing was observed.
func (a *IdleAccount) Fraction() float64 {
	if a.total == 0 {
		return 0
	}
	return float64(a.idle) / float64(a.total)
}

// Reset zeroes the account (e.g. at the end of a warm-up period).
func (a *IdleAccount) Reset() { a.idle, a.total = 0, 0 }

// Counter is a named counter set, used for ad-hoc experiment accounting
// (tuples seen, ETS generated, steps executed, ...). It is safe for
// concurrent use: the concurrent runtime's node goroutines may account into
// one shared Counter. The hot path (Add on an existing name) is lock-free —
// one sync.Map read plus one atomic add; a mutex is taken only the first
// time a name appears.
type Counter struct {
	counts sync.Map // string → *atomic.Int64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{} }

// cell returns the atomic cell for name, creating it on first use.
func (c *Counter) cell(name string) *atomic.Int64 {
	if v, ok := c.counts.Load(name); ok {
		return v.(*atomic.Int64)
	}
	v, _ := c.counts.LoadOrStore(name, new(atomic.Int64))
	return v.(*atomic.Int64)
}

// Add increments the named counter by delta.
func (c *Counter) Add(name string, delta int64) {
	c.cell(name).Add(delta)
}

// Get reads the named counter.
func (c *Counter) Get(name string) int64 {
	if v, ok := c.counts.Load(name); ok {
		return v.(*atomic.Int64).Load()
	}
	return 0
}

// Names returns the counter names in sorted order.
func (c *Counter) Names() []string {
	var names []string
	c.counts.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}

func (c *Counter) String() string {
	var b strings.Builder
	for _, n := range c.Names() {
		fmt.Fprintf(&b, "%s=%d ", n, c.Get(n))
	}
	return strings.TrimSpace(b.String())
}

// PerShard is a fixed-size vector of atomic counters, one per shard of a
// partitioned operator. Writers (splitter goroutines, shard goroutines) add
// lock-free on their own index; readers snapshot at any time without
// stopping the engine. The zero-allocation path matters: a splitter accounts
// one Add per routed tuple.
type PerShard struct {
	counts []atomic.Uint64
}

// NewPerShard returns a counter vector for n shards.
func NewPerShard(n int) *PerShard {
	return &PerShard{counts: make([]atomic.Uint64, n)}
}

// Len reports the number of shards.
func (p *PerShard) Len() int { return len(p.counts) }

// Add adds d to shard s's counter.
func (p *PerShard) Add(s int, d uint64) { p.counts[s].Add(d) }

// Get reads shard s's counter.
func (p *PerShard) Get(s int) uint64 { return p.counts[s].Load() }

// Total sums all shard counters.
func (p *PerShard) Total() uint64 {
	var t uint64
	for i := range p.counts {
		t += p.counts[i].Load()
	}
	return t
}

// Snapshot copies the current per-shard values.
func (p *PerShard) Snapshot() []uint64 {
	out := make([]uint64, len(p.counts))
	for i := range p.counts {
		out[i] = p.counts[i].Load()
	}
	return out
}

// AddTo accumulates the current values into dst (growing it as needed) and
// returns dst — the rollup primitive: summing every splitter's PerShard gives
// the per-shard tuple totals of the whole partition.
func (p *PerShard) AddTo(dst []uint64) []uint64 {
	for len(dst) < len(p.counts) {
		dst = append(dst, 0)
	}
	for i := range p.counts {
		dst[i] += p.counts[i].Load()
	}
	return dst
}

func (p *PerShard) String() string {
	var b strings.Builder
	b.WriteString("shards[")
	for i := range p.counts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", p.counts[i].Load())
	}
	b.WriteByte(']')
	return b.String()
}
