package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestWritePromGolden pins the exact Prometheus exposition so the scrape
// format never regresses silently: TYPE lines once per family, quantile
// splicing into labelled names, reservoir expansion, NaN sanitation.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(`sm_node_tuples_in_total{node="u",id="2"}`).Add(7)
	r.Counter(`sm_node_tuples_in_total{node="j",id="3"}`).Add(9)
	r.Gauge("sm_engine_dead_sources").Set(1)
	r.GaugeFunc("sm_bad_ratio", func() int64 { return 0 }) // int gauges can't NaN
	res := r.Reservoir("sm_latency_us", 8)
	for _, v := range []int64{10, 20, 30, 40} {
		res.Observe(v)
	}
	r.Reservoir("sm_empty_us", 8) // no samples: quantiles must be 0, not NaN

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := strings.Join([]string{
		`# TYPE sm_bad_ratio gauge`,
		`sm_bad_ratio 0`,
		`# TYPE sm_empty_us summary`,
		`sm_empty_us{quantile="0.5"} 0`,
		`sm_empty_us{quantile="0.9"} 0`,
		`sm_empty_us{quantile="0.99"} 0`,
		`sm_empty_us_count 0`,
		`# TYPE sm_engine_dead_sources gauge`,
		`sm_engine_dead_sources 1`,
		`# TYPE sm_latency_us summary`,
		`sm_latency_us{quantile="0.5"} 20`,
		`sm_latency_us{quantile="0.9"} 40`,
		`sm_latency_us{quantile="0.99"} 40`,
		`sm_latency_us_count 4`,
		`# TYPE sm_node_tuples_in_total counter`,
		`sm_node_tuples_in_total{node="j",id="3"} 9`,
		`sm_node_tuples_in_total{node="u",id="2"} 7`,
	}, "\n") + "\n"
	if got != want {
		t.Fatalf("WriteProm drifted from golden format.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestEmptyPercentilesAreZero pins the empty-window contract across both
// percentile implementations: 0, never NaN or a panic.
func TestEmptyPercentilesAreZero(t *testing.T) {
	var snap ReservoirSnapshot
	for _, p := range []float64{0, 50, 99, 100} {
		if got := snap.Percentile(p); got != 0 {
			t.Fatalf("empty ReservoirSnapshot.Percentile(%v) = %d, want 0", p, got)
		}
	}
	if snap.Mean() != 0 {
		t.Fatalf("empty Mean = %v, want 0", snap.Mean())
	}
	l := NewLatency()
	for _, p := range []float64{0, 50, 99, 100} {
		if got := l.Percentile(p); got != 0 {
			t.Fatalf("empty Latency.Percentile(%v) = %d, want 0", p, got)
		}
	}
	if l.Mean() != 0 || l.Max() != 0 || l.Min() != 0 {
		t.Fatalf("empty Latency stats = mean %d max %d min %d, want zeros", l.Mean(), l.Max(), l.Min())
	}
}

// TestValueSanitation: NaN/Inf must never reach the exposition — JSON
// refuses NaN outright (one bad gauge would break all of /vars) and a NaN
// sample poisons Prometheus rate math.
func TestValueSanitation(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := sanitizeValue(v); got != 0 {
			t.Fatalf("sanitizeValue(%v) = %v, want 0", v, got)
		}
		if got := formatValue(v); got != "0" {
			t.Fatalf("formatValue(%v) = %q, want \"0\"", v, got)
		}
	}
	if got := sanitizeValue(1.5); got != 1.5 {
		t.Fatalf("sanitizeValue(1.5) = %v, want 1.5", got)
	}

	// And the full JSON document stays decodable.
	r := NewRegistry()
	r.Counter("sm_ok_total").Add(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v", err)
	}
	if out["sm_ok_total"] != float64(3) {
		t.Fatalf("sm_ok_total = %v, want 3", out["sm_ok_total"])
	}
}

// TestTracerDroppedCounter overflows the trace ring and checks the loss is
// counted (and exported via InstrumentTracer).
func TestTracerDroppedCounter(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 40; i++ {
		tr.Emit(EvETSGen, "u", 0, int64(i))
	}
	if got := tr.Dropped(); got != 24 {
		t.Fatalf("Dropped = %d, want 24", got)
	}
	if got := tr.Total(); got != 40 {
		t.Fatalf("Total = %d, want 40", got)
	}
	if got := len(tr.Recent(0)); got != 16 {
		t.Fatalf("retained = %d, want 16", got)
	}

	reg := NewRegistry()
	InstrumentTracer(reg, tr)
	var seen int
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "sm_trace_dropped_total":
			seen++
			if m.Value != 24 {
				t.Fatalf("sm_trace_dropped_total = %v, want 24", m.Value)
			}
		case "sm_trace_events_total":
			seen++
			if m.Value != 40 {
				t.Fatalf("sm_trace_events_total = %v, want 40", m.Value)
			}
		}
	}
	if seen != 2 {
		t.Fatalf("instrumented metrics missing (saw %d of 2)", seen)
	}

	var nilTr *Tracer
	if nilTr.Dropped() != 0 {
		t.Fatal("nil tracer Dropped should be 0")
	}
}
