package metrics

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/tuple"
)

// Interleaved Observe/Percentile must stay correct across the sort cache:
// a Percentile call sorts in place, later Observes must invalidate.
func TestPercentileInterleaved(t *testing.T) {
	l := NewLatency()
	for _, v := range []tuple.Time{50, 10, 40} {
		l.Observe(v)
	}
	if got := l.Percentile(100); got != 50 {
		t.Fatalf("p100 = %v, want 50", got)
	}
	l.Observe(5) // smaller than the sorted tail: must re-sort
	if got := l.Percentile(1); got != 5 {
		t.Errorf("p1 after late small sample = %v, want 5", got)
	}
	if got := l.Percentile(100); got != 50 {
		t.Errorf("p100 = %v, want 50", got)
	}
	l.Observe(60) // ≥ tail keeps sortedness
	if got := l.Percentile(100); got != 60 {
		t.Errorf("p100 = %v, want 60", got)
	}
	if got, want := l.Mean(), tuple.Time((50+10+40+5+60)/5); got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
	l.Reset()
	l.Observe(3)
	if got := l.Percentile(50); got != 3 {
		t.Errorf("p50 after reset = %v", got)
	}
}

// Guard the Percentile fix: repeated percentile queries over a static
// accumulator must not re-sort (previously every call copied and sorted).
func BenchmarkLatencyPercentile(b *testing.B) {
	l := NewLatency()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		l.Observe(tuple.Time(rng.Int63n(1_000_000)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Percentile(50)
		_ = l.Percentile(95)
		_ = l.Percentile(99)
	}
}

// Race-test the sharded/atomic Counter satellite: parallel adders on shared
// and private names, concurrent readers.
func TestCounterConcurrentSharded(t *testing.T) {
	c := NewCounter()
	var wg sync.WaitGroup
	const workers, perWorker = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add("shared", 1)
				c.Add(string(rune('a'+w)), 2)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = c.Get("shared")
			_ = c.Names()
			_ = c.String()
		}
	}()
	wg.Wait()
	if got := c.Get("shared"); got != workers*perWorker {
		t.Errorf("shared = %d, want %d", got, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if got := c.Get(string(rune('a' + w))); got != 2*perWorker {
			t.Errorf("worker %d = %d, want %d", w, got, 2*perWorker)
		}
	}
	if got := len(c.Names()); got != workers+1 {
		t.Errorf("Names = %d entries, want %d", got, workers+1)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewCounter()
	c.Add("hot", 0)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add("hot", 1)
		}
	})
}
