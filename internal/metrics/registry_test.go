package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRegistryInstruments(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter(`f_total{node="u"}`)
	c.Add(3)
	c.Inc()
	g := reg.Gauge("g")
	g.Set(7)
	g.Add(-2)
	reg.GaugeFunc("fn", func() int64 { return 42 })
	r := reg.Reservoir("lat", 8)
	for i := int64(1); i <= 20; i++ {
		r.Observe(i)
	}

	// Idempotent re-registration returns the same instrument.
	if reg.Counter(`f_total{node="u"}`) != c {
		t.Fatal("re-registration returned a different counter")
	}

	snap := reg.Snapshot()
	byName := map[string]Metric{}
	for _, m := range snap {
		byName[m.Name] = m
	}
	if v := byName[`f_total{node="u"}`].Value; v != 4 {
		t.Errorf("counter = %v, want 4", v)
	}
	if v := byName["g"].Value; v != 5 {
		t.Errorf("gauge = %v, want 5", v)
	}
	if v := byName["fn"].Value; v != 42 {
		t.Errorf("gauge func = %v, want 42", v)
	}
	res := byName["lat"].Res
	if res == nil || res.Count != 20 {
		t.Fatalf("reservoir snapshot = %+v", res)
	}
	// Window keeps the last 8 samples: 13..20.
	if got := res.Percentile(50); got < 13 || got > 20 {
		t.Errorf("p50 = %d outside retained window", got)
	}
	if got := res.Max(); got != 20 {
		t.Errorf("max = %d, want 20", got)
	}
}

func TestGaugeRaise(t *testing.T) {
	var g Gauge64
	g.Raise(5)
	g.Raise(3)
	if g.Load() != 5 {
		t.Errorf("Raise lowered the gauge: %d", g.Load())
	}
	g.Raise(9)
	if g.Load() != 9 {
		t.Errorf("Raise did not raise: %d", g.Load())
	}
}

func TestReservoirMerge(t *testing.T) {
	a := NewReservoir(4)
	b := NewReservoir(4)
	for i := int64(0); i < 4; i++ {
		a.Observe(i * 10)
		b.Observe(i*10 + 5)
	}
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 8 || len(m.Samples) != 8 {
		t.Fatalf("merged = %+v", m)
	}
	for i := 1; i < len(m.Samples); i++ {
		if m.Samples[i-1] > m.Samples[i] {
			t.Fatalf("merged samples not sorted: %v", m.Samples)
		}
	}
}

func TestMergeSnapshots(t *testing.T) {
	a := NewRegistry()
	b := NewRegistry()
	a.Counter("c").Add(2)
	b.Counter("c").Add(5)
	a.Gauge("g").Set(3)
	b.Gauge("g").Set(9)
	b.Counter("only_b").Inc()
	merged := MergeSnapshots(a.Snapshot(), b.Snapshot())
	byName := map[string]Metric{}
	for _, m := range merged {
		byName[m.Name] = m
	}
	if byName["c"].Value != 7 {
		t.Errorf("merged counter = %v, want 7", byName["c"].Value)
	}
	if byName["g"].Value != 9 {
		t.Errorf("merged gauge = %v, want 9 (max)", byName["g"].Value)
	}
	if byName["only_b"].Value != 1 {
		t.Errorf("one-sided metric lost: %v", byName["only_b"])
	}
}

func TestSplitNameAndLabels(t *testing.T) {
	f, l := SplitName(`sm_x_total{node="u",id="3"}`)
	if f != "sm_x_total" || l != `node="u",id="3"` {
		t.Fatalf("SplitName = %q, %q", f, l)
	}
	if v := LabelValue(l, "node"); v != "u" {
		t.Errorf("LabelValue(node) = %q", v)
	}
	if v := LabelValue(l, "id"); v != "3" {
		t.Errorf("LabelValue(id) = %q", v)
	}
	if v := LabelValue(l, "missing"); v != "" {
		t.Errorf("LabelValue(missing) = %q", v)
	}
	f, l = SplitName("plain")
	if f != "plain" || l != "" {
		t.Fatalf("SplitName(plain) = %q, %q", f, l)
	}
}

func TestWriteProm(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`sm_t_total{node="a"}`).Add(1)
	reg.Counter(`sm_t_total{node="b"}`).Add(2)
	reg.Gauge("sm_depth").Set(5)
	reg.Reservoir("sm_lat_us", 16).Observe(100)
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sm_t_total counter",
		`sm_t_total{node="a"} 1`,
		`sm_t_total{node="b"} 2`,
		"# TYPE sm_depth gauge",
		"sm_depth 5",
		"# TYPE sm_lat_us summary",
		`sm_lat_us{quantile="0.5"} 100`,
		"sm_lat_us_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
	// Exactly one TYPE line per family.
	if strings.Count(out, "# TYPE sm_t_total") != 1 {
		t.Errorf("duplicate TYPE lines:\n%s", out)
	}
}

func TestHTTPHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sm_x_total").Add(9)
	tr := NewTracer(8)
	tr.Emit(EvETSGen, "s1", 100, 100)
	srv := httptest.NewServer(Handler(reg, tr))
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}
	if out := get("/metrics"); !strings.Contains(out, "sm_x_total 9") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/vars"); !strings.Contains(out, `"sm_x_total": 9`) {
		t.Errorf("/vars missing counter:\n%s", out)
	}
	if out := get("/trace"); !strings.Contains(out, `"ETSGen"`) {
		t.Errorf("/trace missing event:\n%s", out)
	}
}

// Race test: concurrent instrument updates against concurrent snapshots.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("shared_total")
			g := reg.Gauge("depth")
			r := reg.Reservoir("lat", 64)
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Set(int64(i))
				g.Raise(int64(i))
				r.Observe(int64(i))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			reg.Snapshot()
			var b strings.Builder
			_ = reg.WriteProm(&b)
		}
	}()
	wg.Wait()
	if got := reg.Counter("shared_total").Load(); got != 4000 {
		t.Errorf("shared counter = %d, want 4000", got)
	}
}
