package metrics

import (
	"sync"
	"testing"
)

func TestPerShardBasics(t *testing.T) {
	p := NewPerShard(3)
	if p.Len() != 3 || p.Total() != 0 {
		t.Fatalf("fresh PerShard: len=%d total=%d", p.Len(), p.Total())
	}
	p.Add(0, 5)
	p.Add(2, 7)
	p.Add(2, 1)
	if p.Get(0) != 5 || p.Get(1) != 0 || p.Get(2) != 8 {
		t.Fatalf("counters = %v", p.Snapshot())
	}
	if p.Total() != 13 {
		t.Fatalf("total = %d", p.Total())
	}
	if s := p.String(); s != "shards[5 0 8]" {
		t.Errorf("String = %q", s)
	}
}

func TestPerShardAddToRollsUp(t *testing.T) {
	a, b := NewPerShard(2), NewPerShard(4)
	a.Add(0, 1)
	a.Add(1, 2)
	b.Add(1, 10)
	b.Add(3, 30)
	dst := a.AddTo(nil)
	dst = b.AddTo(dst)
	want := []uint64{1, 12, 0, 30}
	if len(dst) != len(want) {
		t.Fatalf("rollup = %v", dst)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("rollup = %v, want %v", dst, want)
		}
	}
}

// Concurrent writers on distinct and shared shards; run under -race this
// doubles as the counters' race-cleanliness check (ISSUE 2 satellite).
func TestPerShardConcurrent(t *testing.T) {
	p := NewPerShard(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Add(w%4, 1)
				_ = p.Snapshot() // readers may overlap writers
			}
		}()
	}
	wg.Wait()
	if p.Total() != 8000 {
		t.Fatalf("total = %d, want 8000", p.Total())
	}
}

// Counter must be safe for concurrent node goroutines (atomic cells).
func TestCounterConcurrent(t *testing.T) {
	c := NewCounter()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add("x", 1)
				_ = c.Get("x")
				_ = c.Names()
			}
		}()
	}
	wg.Wait()
	if c.Get("x") != 4000 {
		t.Fatalf("x = %d, want 4000", c.Get("x"))
	}
}
