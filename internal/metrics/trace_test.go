package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestTracerRingAndCounts(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(EvBatchFlush, "n", 0, int64(i))
	}
	tr.Emit(EvIdleEnter, "u", 5, 0)
	if got := tr.Total(); got != 11 {
		t.Errorf("Total = %d, want 11", got)
	}
	// Per-kind counts survive ring eviction.
	if got := tr.Count(EvBatchFlush); got != 10 {
		t.Errorf("Count(BatchFlush) = %d, want 10", got)
	}
	recent := tr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("Recent = %d events, want ring size 4", len(recent))
	}
	// Oldest-first ordering, ending with the IdleEnter.
	last := recent[len(recent)-1]
	if last.Kind != EvIdleEnter || last.Node != "u" {
		t.Errorf("last event = %+v", last)
	}
	for i := 1; i < len(recent); i++ {
		if recent[i-1].Seq >= recent[i].Seq {
			t.Errorf("events out of order: %v", recent)
		}
	}
	if got := len(tr.Recent(2)); got != 2 {
		t.Errorf("Recent(2) = %d events", got)
	}
}

func TestTracerNilIsNoop(t *testing.T) {
	var tr *Tracer
	tr.Emit(EvETSGen, "s", 1, 1) // must not panic
}

func TestTracerSink(t *testing.T) {
	tr := NewTracer(4)
	var got []Event
	tr.SetSink(func(e Event) { got = append(got, e) })
	tr.Emit(EvDemandSent, "j", 7, 0)
	if len(got) != 1 || got[0].Kind != EvDemandSent {
		t.Fatalf("sink got %+v", got)
	}
	tr.SetSink(nil)
	tr.Emit(EvDemandSent, "j", 8, 0)
	if len(got) != 1 {
		t.Errorf("sink called after removal")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Emit(EvWatermarkAdvance, "m", 0, int64(i))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			tr.Recent(0)
			tr.Total()
		}
	}()
	wg.Wait()
	if got := tr.Count(EvWatermarkAdvance); got != 2000 {
		t.Errorf("count = %d, want 2000", got)
	}
}

func TestEventJSON(t *testing.T) {
	tr := NewTracer(4)
	tr.Emit(EvWatermarkAdvance, "u", 10, 42)
	ev := tr.Recent(0)[0]
	b, err := ev.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"kind":"WatermarkAdvance"`) {
		t.Errorf("json = %s", b)
	}
}
