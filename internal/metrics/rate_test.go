package metrics

import (
	"sync"
	"testing"
)

func TestRateFirstCallPrimes(t *testing.T) {
	var c Counter64
	c.Add(1000)
	var w RateWindow
	if got := c.Rate(&w); got != 0 {
		t.Fatalf("first Rate() = %d, want 0 (priming call)", got)
	}
	if got := c.Rate(&w); got != 0 {
		t.Fatalf("Rate() with no increments = %d, want 0", got)
	}
}

func TestRateDeltas(t *testing.T) {
	var c Counter64
	var w RateWindow
	c.Rate(&w) // prime
	c.Add(7)
	if got := c.Rate(&w); got != 7 {
		t.Fatalf("Rate() = %d, want 7", got)
	}
	c.Add(3)
	c.Inc()
	if got := c.Rate(&w); got != 4 {
		t.Fatalf("Rate() = %d, want 4", got)
	}
	if got := c.Rate(&w); got != 0 {
		t.Fatalf("Rate() after quiet interval = %d, want 0", got)
	}
}

func TestRateIndependentWindows(t *testing.T) {
	var c Counter64
	var w1, w2 RateWindow
	c.Rate(&w1)
	c.Add(10)
	c.Rate(&w2) // primes at 10
	c.Add(5)
	if got := c.Rate(&w1); got != 15 {
		t.Fatalf("window 1 Rate() = %d, want 15", got)
	}
	if got := c.Rate(&w2); got != 5 {
		t.Fatalf("window 2 Rate() = %d, want 5", got)
	}
}

func TestRateReprimesOnReset(t *testing.T) {
	var c Counter64
	var w RateWindow
	c.Add(100)
	c.Rate(&w)
	// Simulate a counter restart (a fresh counter reusing the window):
	// the remembered value is above the current one.
	var fresh Counter64
	fresh.Add(2)
	if got := fresh.Rate(&w); got != 0 {
		t.Fatalf("Rate() across counter restart = %d, want 0", got)
	}
	fresh.Add(4)
	if got := fresh.Rate(&w); got != 4 {
		t.Fatalf("Rate() after re-prime = %d, want 4", got)
	}
}

// The counter side stays lock-free: concurrent writers may race a poller
// reading deltas, and the deltas must still sum to the total.
func TestRateConcurrentWriters(t *testing.T) {
	var c Counter64
	var w RateWindow
	c.Rate(&w)
	const writers, per = 8, 10_000
	var wg sync.WaitGroup
	done := make(chan struct{})
	var sum uint64
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			default:
			}
			sum += c.Rate(&w)
			if sum >= writers*per {
				return
			}
		}
	}()
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	<-done
	sum += c.Rate(&w)
	if sum != writers*per {
		t.Fatalf("sum of deltas = %d, want %d", sum, writers*per)
	}
}
