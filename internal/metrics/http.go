package metrics

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves a registry (and optionally a tracer) over HTTP:
//
//	/metrics  Prometheus text exposition
//	/vars     flat JSON object, name → value (expvar-style)
//	/trace    recent trace events as JSON (?n=K limits the count),
//	          404 when tracing is disabled
//
// Every path reads live atomics; scraping never stops the engine.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if tr == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		max := 0
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				max = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Total  uint64            `json:"total"`
			Counts map[string]uint64 `json:"counts"`
			Events []Event           `json:"events"`
		}{
			Total:  tr.Total(),
			Counts: countsByName(tr),
			Events: tr.Recent(max),
		})
	})
	return mux
}

func countsByName(tr *Tracer) map[string]uint64 {
	out := make(map[string]uint64, int(numEventKinds))
	for k := EventKind(0); k < numEventKinds; k++ {
		if c := tr.Count(k); c > 0 {
			out[k.String()] = c
		}
	}
	return out
}
