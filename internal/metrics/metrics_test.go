package metrics

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tuple"
)

func TestLatencyEmpty(t *testing.T) {
	l := NewLatency()
	if l.Count() != 0 || l.Mean() != 0 || l.Max() != 0 || l.Min() != 0 || l.Percentile(50) != 0 {
		t.Error("empty accumulator must report zeros")
	}
	if l.Histogram(5) != "(no samples)" {
		t.Error("empty histogram wrong")
	}
}

func TestLatencyStats(t *testing.T) {
	l := NewLatency()
	for _, v := range []tuple.Time{10, 20, 30, 40, 100} {
		l.Observe(v)
	}
	if l.Count() != 5 {
		t.Fatalf("Count = %d", l.Count())
	}
	if l.Mean() != 40 {
		t.Errorf("Mean = %v", l.Mean())
	}
	if l.Min() != 10 || l.Max() != 100 {
		t.Errorf("Min/Max = %v/%v", l.Min(), l.Max())
	}
	if p := l.Percentile(50); p != 30 {
		t.Errorf("P50 = %v", p)
	}
	if p := l.Percentile(100); p != 100 {
		t.Errorf("P100 = %v", p)
	}
	if p := l.Percentile(1); p != 10 {
		t.Errorf("P1 = %v", p)
	}
}

func TestLatencyReset(t *testing.T) {
	l := NewLatency()
	l.Observe(50)
	l.Reset()
	if l.Count() != 0 || l.Mean() != 0 {
		t.Error("Reset did not clear samples")
	}
	l.Observe(7)
	if l.Mean() != 7 || l.Min() != 7 || l.Max() != 7 {
		t.Error("accumulator broken after Reset")
	}
}

func TestLatencyHistogram(t *testing.T) {
	l := NewLatency()
	for i := 1; i <= 1000; i++ {
		l.Observe(tuple.Time(i))
	}
	h := l.Histogram(5)
	if !strings.Contains(h, "#") || len(strings.Split(strings.TrimSpace(h), "\n")) != 5 {
		t.Errorf("histogram:\n%s", h)
	}
}

// Property: mean is always between min and max, and percentiles are
// monotone.
func TestLatencyProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		l := NewLatency()
		for _, v := range raw {
			l.Observe(tuple.Time(v))
		}
		if l.Mean() < l.Min() || l.Mean() > l.Max() {
			return false
		}
		prev := tuple.Time(-1)
		for _, p := range []float64{1, 25, 50, 75, 99, 100} {
			v := l.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return l.Percentile(100) == l.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIdleAccount(t *testing.T) {
	var a IdleAccount
	if a.Fraction() != 0 {
		t.Error("empty account fraction must be 0")
	}
	a.AddIdle(30)
	a.AddTotal(100)
	if a.Idle() != 30 || a.Total() != 100 {
		t.Errorf("counters: %v/%v", a.Idle(), a.Total())
	}
	if a.Fraction() != 0.3 {
		t.Errorf("Fraction = %v", a.Fraction())
	}
	a.Reset()
	if a.Idle() != 0 || a.Total() != 0 || a.Fraction() != 0 {
		t.Error("Reset failed")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add("b", 2)
	c.Add("a", 1)
	c.Add("b", 3)
	if c.Get("b") != 5 || c.Get("a") != 1 || c.Get("zzz") != 0 {
		t.Errorf("counts wrong: %v", c)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	if c.String() != "a=1 b=5" {
		t.Errorf("String = %q", c.String())
	}
}
