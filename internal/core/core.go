// Package core ties the system together as a Stream Mill-style engine
// facade: a catalog of declared streams, CQL compilation, query-graph
// assembly, and handles for running the resulting graph on either the
// deterministic simulation engine (internal/sim) or the concurrent
// real-time runtime (internal/runtime).
package core

import (
	"fmt"
	"strings"

	"repro/internal/cql"
	"repro/internal/ets"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/runtime"
	"repro/internal/tuple"
)

// Engine is the DSMS facade. Declare streams (DDL or schema), submit
// continuous queries, then run the assembled graph.
type Engine struct {
	cat     *cql.Catalog
	g       *graph.Graph
	sources map[string]*sourceEntry
	queries []*Query
	sealed  bool
}

type sourceEntry struct {
	op   *ops.Source
	node graph.NodeID
}

// Query is a handle on one registered continuous query.
type Query struct {
	// Text is the original CQL.
	Text string
	// Out is the output schema.
	Out *tuple.Schema
	// Sink is the query's sink operator (counts, punctuation stats).
	Sink *ops.Sink

	outNode graph.NodeID
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{
		cat:     cql.NewCatalog(),
		g:       graph.New("streammill"),
		sources: make(map[string]*sourceEntry),
	}
}

// DeclareStream registers a stream schema directly (the programmatic
// alternative to CREATE STREAM). delta is the external-timestamp skew bound
// (ignored for other kinds).
func (e *Engine) DeclareStream(sch *tuple.Schema, delta tuple.Time) (*ops.Source, error) {
	return e.DeclareStreamSlack(sch, delta, 0)
}

// DeclareStreamSlack is DeclareStream with a disorder tolerance: when slack
// is positive a reorder stage is placed behind the source, so queries see a
// timestamp-ordered stream even if the wrapper delivers tuples up to slack
// out of order (CREATE STREAM ... SLACK d).
func (e *Engine) DeclareStreamSlack(sch *tuple.Schema, delta, slack tuple.Time) (*ops.Source, error) {
	if e.sealed {
		return nil, fmt.Errorf("core: engine already running")
	}
	if err := e.cat.Register(sch); err != nil {
		return nil, err
	}
	src := ops.NewSource(sch.Name, sch, delta)
	node := e.g.AddNode(src)
	if slack > 0 {
		node = e.g.AddNode(ops.NewReorder(sch.Name+".reorder", sch, slack), node)
	}
	e.sources[sch.Name] = &sourceEntry{op: src, node: node}
	return src, nil
}

// Execute runs one CQL statement. CREATE STREAM declares a stream and
// returns (nil, nil); SELECT registers a continuous query and returns its
// handle. onRow receives the query's result tuples (may be nil).
func (e *Engine) Execute(q string, onRow func(t *tuple.Tuple, now tuple.Time)) (*Query, error) {
	if e.sealed {
		return nil, fmt.Errorf("core: engine already running")
	}
	st, err := cql.Parse(q)
	if err != nil {
		return nil, err
	}
	if st.Explain {
		return nil, fmt.Errorf("core: use Engine.Explain for EXPLAIN statements")
	}
	if st.Create != nil {
		sch := cql.SchemaFromCreate(st.Create)
		_, err := e.DeclareStreamSlack(sch, st.Create.Skew, st.Create.Slack)
		return nil, err
	}
	return e.executeSelect(st.Select, q, onRow)
}

func (e *Engine) executeSelect(sel *cql.SelectStmt, text string, onRow func(t *tuple.Tuple, now tuple.Time)) (*Query, error) {
	plan, err := cql.PlanSelect(sel, e.cat)
	if err != nil {
		return nil, err
	}
	srcNodes := make(map[string]graph.NodeID, len(plan.Streams))
	for _, sch := range plan.Streams {
		entry, ok := e.sources[sch.Name]
		if !ok {
			return nil, fmt.Errorf("core: stream %q has no source", sch.Name)
		}
		srcNodes[sch.Name] = entry.node
	}
	outNode, err := plan.Build(e.g, srcNodes)
	if err != nil {
		return nil, err
	}
	qh := &Query{Text: text, Out: plan.Out, outNode: outNode}
	qh.Sink = ops.NewSink(fmt.Sprintf("sink%d", len(e.queries)), onRow)
	e.g.AddNode(qh.Sink, outNode)
	e.queries = append(e.queries, qh)
	return qh, nil
}

// Explain parses a SELECT (with or without an EXPLAIN prefix), plans it
// against the catalog, and describes the physical operator plan without
// registering the query: one line per operator in topological order, with
// predecessors, followed by the output schema.
func (e *Engine) Explain(q string) (string, error) {
	st, err := cql.Parse(q)
	if err != nil {
		return "", err
	}
	if st.Select == nil {
		return "", fmt.Errorf("core: EXPLAIN requires a SELECT")
	}
	plan, err := cql.PlanSelect(st.Select, e.cat)
	if err != nil {
		return "", err
	}
	// Instantiate into a scratch graph so the description reflects the
	// plan that would actually run.
	g := graph.New("explain")
	srcNodes := make(map[string]graph.NodeID, len(plan.Streams))
	for _, sch := range plan.Streams {
		if _, ok := srcNodes[sch.Name]; ok {
			continue
		}
		srcNodes[sch.Name] = g.AddNode(ops.NewSource(sch.Name, sch, 0))
	}
	outNode, err := plan.Build(g, srcNodes)
	if err != nil {
		return "", err
	}
	g.AddNode(ops.NewSink("output", nil), outNode)

	var b strings.Builder
	for _, id := range g.TopoOrder() {
		n := g.Node(id)
		line := fmt.Sprintf("%2d: %-12s", id, n.Op.Name())
		if len(n.Preds) > 0 {
			line += " ←"
			for _, p := range n.Preds {
				line += fmt.Sprintf(" %d", p)
			}
		}
		b.WriteString(strings.TrimRight(line, " "))
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "out: %s\n", plan.Out)
	return b.String(), nil
}

// ExecuteScript runs a semicolon-separated sequence of statements; every
// SELECT in the script gets the same onRow callback. It returns the handles
// of the queries registered, in script order.
func (e *Engine) ExecuteScript(script string, onRow func(t *tuple.Tuple, now tuple.Time)) ([]*Query, error) {
	stmts, err := cql.ParseAll(script)
	if err != nil {
		return nil, err
	}
	var queries []*Query
	for _, st := range stmts {
		switch {
		case st.Create != nil:
			sch := cql.SchemaFromCreate(st.Create)
			if _, err := e.DeclareStreamSlack(sch, st.Create.Skew, st.Create.Slack); err != nil {
				return nil, err
			}
		case st.Select != nil:
			q, err := e.executeSelect(st.Select, "", onRow)
			if err != nil {
				return nil, err
			}
			queries = append(queries, q)
		}
	}
	return queries, nil
}

// MustExecute is Execute panicking on error (examples, fixed queries).
func (e *Engine) MustExecute(q string, onRow func(t *tuple.Tuple, now tuple.Time)) *Query {
	qh, err := e.Execute(q, onRow)
	if err != nil {
		panic(err)
	}
	return qh
}

// Source returns the source operator for a declared stream.
func (e *Engine) Source(name string) (*ops.Source, error) {
	entry, ok := e.sources[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown stream %q", name)
	}
	return entry.op, nil
}

// SourceNode returns the graph node id of a declared stream's source.
func (e *Engine) SourceNode(name string) (graph.NodeID, error) {
	entry, ok := e.sources[name]
	if !ok {
		return 0, fmt.Errorf("core: unknown stream %q", name)
	}
	return entry.node, nil
}

// Graph exposes the assembled query graph. Mutating it after sealing is the
// caller's responsibility to avoid.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Queries lists the registered query handles.
func (e *Engine) Queries() []*Query { return e.queries }

// Catalog exposes the stream catalog.
func (e *Engine) Catalog() *cql.Catalog { return e.cat }

// ETSPolicy names the timestamp-management policies of the paper.
type ETSPolicy uint8

const (
	// NoETS never generates enabling timestamps (paper scenario A).
	NoETS ETSPolicy = iota
	// OnDemandETS generates ETS when backtracking finds an idle-waiting
	// operator (scenario C, the paper's contribution). Periodic heartbeats
	// (scenario B) are configured on the driver, not here: see
	// sim.Stream.Heartbeat and Source.InjectETS.
	OnDemandETS
)

// Build seals the engine and returns an execution engine over the graph
// with the chosen ETS policy. now supplies the virtual (or real) clock.
func (e *Engine) Build(policy ETSPolicy, now func() tuple.Time) (*exec.Engine, error) {
	if len(e.queries) == 0 {
		return nil, fmt.Errorf("core: no queries registered")
	}
	var pol exec.SourcePolicy
	if policy == OnDemandETS {
		pol = &ets.OnDemand{}
	}
	ex, err := exec.New(e.g, pol, now)
	if err != nil {
		return nil, err
	}
	e.sealed = true
	return ex, nil
}

// BuildRuntime seals the engine and returns a concurrent real-time runtime
// engine over the graph (one goroutine per operator, batched arcs, demand-
// driven ETS per opts). The network ingest path — streamd -listen and the
// server package's engine backend — runs on this engine; the simulation
// engine from Build stays for deterministic replay.
func (e *Engine) BuildRuntime(opts runtime.Options) (*runtime.Engine, error) {
	if len(e.queries) == 0 {
		return nil, fmt.Errorf("core: no queries registered")
	}
	re, err := runtime.New(e.g, opts)
	if err != nil {
		return nil, err
	}
	e.sealed = true
	return re, nil
}

// LookupStream resolves a declared stream to its schema and source operator
// — the stream-binding hook the networked ingest server uses.
func (e *Engine) LookupStream(name string) (*tuple.Schema, *ops.Source, error) {
	entry, ok := e.sources[name]
	if !ok {
		return nil, nil, fmt.Errorf("core: unknown stream %q", name)
	}
	sch, err := e.cat.Schema(name)
	if err != nil {
		return nil, nil, err
	}
	return sch, entry.op, nil
}
