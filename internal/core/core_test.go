package core

import (
	"strings"
	"testing"

	"repro/internal/tuple"
)

func TestEngineDDLAndQuery(t *testing.T) {
	e := NewEngine()
	if _, err := e.Execute("CREATE STREAM a (k int, v float)", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute("CREATE STREAM b (k int, v float)", nil); err != nil {
		t.Fatal(err)
	}
	var rows []*tuple.Tuple
	q, err := e.Execute("SELECT * FROM a UNION b WHERE v > 0.0",
		func(tp *tuple.Tuple, _ tuple.Time) { rows = append(rows, tp) })
	if err != nil {
		t.Fatal(err)
	}
	if q.Out == nil || q.Sink == nil {
		t.Fatal("query handle incomplete")
	}

	clock := tuple.Time(0)
	ex, err := e.Build(OnDemandETS, func() tuple.Time { return clock })
	if err != nil {
		t.Fatal(err)
	}
	srcA, err := e.Source("a")
	if err != nil {
		t.Fatal(err)
	}
	clock = 100
	srcA.Ingest(tuple.NewData(0, tuple.Int(1), tuple.Float(2.5)), clock)
	ex.Run(1000)
	if len(rows) != 1 || rows[0].Vals[1].AsFloat() != 2.5 {
		t.Fatalf("rows = %v", rows)
	}
	if q.Sink.Received() != 1 {
		t.Errorf("sink received = %d", q.Sink.Received())
	}
}

func TestEngineErrors(t *testing.T) {
	e := NewEngine()
	if _, err := e.Execute("SELECT * FROM ghost", nil); err == nil {
		t.Error("query on unknown stream accepted")
	}
	if _, err := e.Execute("NOT SQL AT ALL", nil); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := e.Build(NoETS, func() tuple.Time { return 0 }); err == nil {
		t.Error("Build with no queries accepted")
	}
	if _, err := e.Source("ghost"); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := e.SourceNode("ghost"); err == nil {
		t.Error("unknown source node accepted")
	}
}

func TestEngineSealing(t *testing.T) {
	e := NewEngine()
	e.MustExecute("CREATE STREAM a (k int)", nil)
	e.MustExecute("SELECT * FROM a", nil)
	if _, err := e.Build(NoETS, func() tuple.Time { return 0 }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute("CREATE STREAM b (k int)", nil); err == nil {
		t.Error("DDL after Build accepted")
	}
	if _, err := e.DeclareStream(tuple.NewSchema("c", tuple.Field{Name: "x", Kind: tuple.IntKind}), 0); err == nil {
		t.Error("DeclareStream after Build accepted")
	}
}

func TestEngineDuplicateStream(t *testing.T) {
	e := NewEngine()
	e.MustExecute("CREATE STREAM a (k int)", nil)
	if _, err := e.Execute("CREATE STREAM a (k int)", nil); err == nil {
		t.Error("duplicate stream accepted")
	}
}

func TestEngineMultipleQueriesShareSource(t *testing.T) {
	e := NewEngine()
	e.MustExecute("CREATE STREAM s (v int)", nil)
	var all, evens int
	e.MustExecute("SELECT * FROM s", func(*tuple.Tuple, tuple.Time) { all++ })
	e.MustExecute("SELECT * FROM s WHERE v % 2 = 0", func(*tuple.Tuple, tuple.Time) { evens++ })
	if len(e.Queries()) != 2 {
		t.Fatalf("queries = %d", len(e.Queries()))
	}
	clock := tuple.Time(0)
	ex, err := e.Build(NoETS, func() tuple.Time { return clock })
	if err != nil {
		t.Fatal(err)
	}
	src, _ := e.Source("s")
	for i := 0; i < 10; i++ {
		src.Ingest(tuple.NewData(0, tuple.Int(int64(i))), clock)
	}
	ex.Run(10000)
	if all != 10 || evens != 5 {
		t.Fatalf("fan-out results: all=%d evens=%d", all, evens)
	}
	if e.Graph().Len() == 0 || e.Catalog() == nil {
		t.Error("accessors broken")
	}
}

func TestMustExecutePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustExecute must panic on error")
		}
	}()
	NewEngine().MustExecute("garbage", nil)
}

func TestEngineScriptAndSlack(t *testing.T) {
	e := NewEngine()
	var rows []*tuple.Tuple
	qs, err := e.ExecuteScript(`
		CREATE STREAM oo (v int) TIMESTAMP EXTERNAL SKEW 100ms SLACK 100ms;
		SELECT * FROM oo;
	`, func(tp *tuple.Tuple, _ tuple.Time) { rows = append(rows, tp) })
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 1 {
		t.Fatalf("queries = %d", len(qs))
	}
	clock := tuple.Time(0)
	ex, err := e.Build(NoETS, func() tuple.Time { return clock })
	if err != nil {
		t.Fatal(err)
	}
	src, _ := e.Source("oo")
	// Deliver out of order within the slack; the reorder stage fixes it.
	clock = 1000
	src.Ingest(tuple.NewData(500, tuple.Int(1)), clock)
	src.Ingest(tuple.NewData(400, tuple.Int(2)), clock)
	src.Ingest(tuple.NewData(900, tuple.Int(3)), clock)
	ex.Run(1000)
	// High-water 900 with slack 100ms: releases ≤ 900−100000... nothing;
	// flush with EOS.
	src.Offer(tuple.EOS())
	ex.Run(1000)
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].Ts != 400 || rows[1].Ts != 500 || rows[2].Ts != 900 {
		t.Fatalf("order not restored: %v", rows)
	}
}

func TestEngineScriptErrors(t *testing.T) {
	e := NewEngine()
	if _, err := e.ExecuteScript("garbage", nil); err == nil {
		t.Fatal("bad script accepted")
	}
	if _, err := e.ExecuteScript("SELECT * FROM ghost", nil); err == nil {
		t.Fatal("unknown stream accepted")
	}
}

func TestEngineExplain(t *testing.T) {
	e := NewEngine()
	e.MustExecute("CREATE STREAM a (k int, v float)", nil)
	e.MustExecute("CREATE STREAM b (k int, w float)", nil)
	out, err := e.Explain("EXPLAIN SELECT a.k, v, w FROM a JOIN b ON a.k = b.k WINDOW 2s WHERE v > 1.0")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"join", "where↓", "project", "output", "out:"} {
		if !strings.Contains(out, frag) {
			t.Errorf("explain missing %q:\n%s", frag, out)
		}
	}
	// Without the EXPLAIN prefix too.
	if _, err := e.Explain("SELECT * FROM a"); err != nil {
		t.Errorf("bare select explain: %v", err)
	}
	// Errors.
	if _, err := e.Explain("CREATE STREAM c (x int)"); err == nil {
		t.Error("explain of DDL accepted")
	}
	if _, err := e.Explain("SELECT * FROM ghost"); err == nil {
		t.Error("explain of bad query accepted")
	}
	// Execute must redirect EXPLAIN statements.
	if _, err := e.Execute("EXPLAIN SELECT * FROM a", nil); err == nil {
		t.Error("Execute accepted EXPLAIN")
	}
	// Explain registers nothing.
	if len(e.Queries()) != 0 {
		t.Error("Explain registered a query")
	}
}
