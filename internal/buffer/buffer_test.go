package buffer

import (
	"testing"
	"testing/quick"

	"repro/internal/tuple"
)

func TestQueueFIFO(t *testing.T) {
	q := New("a")
	if !q.Empty() || q.Len() != 0 || q.Peek() != nil || q.Pop() != nil {
		t.Fatal("fresh queue not empty")
	}
	for i := 0; i < 100; i++ {
		q.Push(tuple.NewData(tuple.Time(i), tuple.Int(int64(i))))
	}
	if q.Len() != 100 || q.Empty() {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		if got := q.Peek(); got.Ts != tuple.Time(i) {
			t.Fatalf("Peek %d: ts=%v", i, got.Ts)
		}
		if got := q.Pop(); got.Ts != tuple.Time(i) {
			t.Fatalf("Pop %d: ts=%v", i, got.Ts)
		}
	}
	if !q.Empty() {
		t.Fatal("queue should be empty after draining")
	}
}

func TestQueueInterleavedPushPop(t *testing.T) {
	// Exercises ring wrap-around: alternate pushes and pops so head travels.
	q := New("w")
	next, want := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			q.Push(tuple.NewData(tuple.Time(next)))
			next++
		}
		for i := 0; i < 2; i++ {
			got := q.Pop()
			if got.Ts != tuple.Time(want) {
				t.Fatalf("round %d: pop ts=%v want %d", round, got.Ts, want)
			}
			want++
		}
	}
	for !q.Empty() {
		got := q.Pop()
		if got.Ts != tuple.Time(want) {
			t.Fatalf("drain: pop ts=%v want %d", got.Ts, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("popped %d, pushed %d", want, next)
	}
}

func TestQueueAt(t *testing.T) {
	q := New("at")
	for i := 0; i < 10; i++ {
		q.Push(tuple.NewData(tuple.Time(i)))
	}
	q.Pop()
	q.Pop()
	for i := 0; i < q.Len(); i++ {
		if got := q.At(i); got.Ts != tuple.Time(i+2) {
			t.Fatalf("At(%d).Ts = %v", i, got.Ts)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("At out of range must panic")
		}
	}()
	q.At(q.Len())
}

func TestQueuePushNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Push(nil) must panic")
		}
	}()
	New("n").Push(nil)
}

func TestQueueStats(t *testing.T) {
	q := New("s")
	q.Push(tuple.NewData(1))
	q.Push(tuple.NewPunct(2))
	q.Push(tuple.NewData(3))
	q.Pop()
	q.Pop()
	st := q.Stats()
	if st.Name != "s" || st.Len != 1 || st.Peak != 3 || st.Pushes != 3 || st.Pops != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.PunctIn != 1 || st.PunctOut != 1 {
		t.Errorf("punct stats = %+v", st)
	}
	if q.Peak() != 3 {
		t.Errorf("Peak = %d", q.Peak())
	}
	q.ResetStats()
	st = q.Stats()
	if st.Peak != 1 || st.Pushes != 0 || st.Pops != 0 {
		t.Errorf("after reset: %+v", st)
	}
}

func TestQueueLastTs(t *testing.T) {
	q := New("l")
	if _, ok := q.LastTs(); ok {
		t.Error("fresh queue claims a last ts")
	}
	q.Push(tuple.NewData(5))
	q.Push(tuple.NewData(9))
	if ts, ok := q.LastTs(); !ok || ts != 9 {
		t.Errorf("LastTs = %v, %v", ts, ok)
	}
	q.Pop()
	q.Pop()
	if ts, ok := q.LastTs(); !ok || ts != 9 {
		t.Error("LastTs must survive draining")
	}
}

func TestQueueClear(t *testing.T) {
	q := New("c")
	for i := 0; i < 5; i++ {
		q.Push(tuple.NewData(tuple.Time(i)))
	}
	q.Clear()
	if !q.Empty() {
		t.Error("Clear left tuples")
	}
	if q.Peak() != 5 {
		t.Error("Clear must preserve peak")
	}
}

func TestGroupPeakIsInstantaneousSum(t *testing.T) {
	a, b := New("a"), New("b")
	g := NewGroup(a)
	g.Add(b)

	// a peaks at 3 while b is empty; then a drains and b peaks at 3.
	// Sum of per-queue peaks would be 6; the instantaneous total peak is 3.
	for i := 0; i < 3; i++ {
		a.Push(tuple.NewData(tuple.Time(i)))
		g.Observe()
	}
	for !a.Empty() {
		a.Pop()
		g.Observe()
	}
	for i := 0; i < 3; i++ {
		b.Push(tuple.NewData(tuple.Time(i)))
		g.Observe()
	}
	if g.Peak() != 3 {
		t.Errorf("group peak = %d, want 3", g.Peak())
	}
	if g.Total() != 3 {
		t.Errorf("group total = %d, want 3", g.Total())
	}
	g.Reset()
	if g.Peak() != 3 {
		t.Errorf("Reset should set peak to current total, got %d", g.Peak())
	}
	b.Clear()
	g.Observe()
	if g.Peak() != 3 {
		t.Errorf("peak after drain = %d", g.Peak())
	}
}

// Property: for any sequence of pushes and pops, the queue behaves exactly
// like a slice-based FIFO.
func TestQueueMatchesReferenceModel(t *testing.T) {
	f := func(ops []bool, seed int64) bool {
		q := New("prop")
		var ref []*tuple.Tuple
		n := 0
		for _, push := range ops {
			if push {
				tp := tuple.NewData(tuple.Time(n))
				n++
				q.Push(tp)
				ref = append(ref, tp)
			} else {
				got := q.Pop()
				if len(ref) == 0 {
					if got != nil {
						return false
					}
					continue
				}
				want := ref[0]
				ref = ref[1:]
				if got != want {
					return false
				}
			}
			if q.Len() != len(ref) {
				return false
			}
			if (q.Peek() == nil) != (len(ref) == 0) {
				return false
			}
			if len(ref) > 0 && q.Peek() != ref[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
