package buffer

import (
	"testing"
	"testing/quick"

	"repro/internal/tuple"
)

func TestQueueFIFO(t *testing.T) {
	q := New("a")
	if !q.Empty() || q.Len() != 0 || q.Peek() != nil || q.Pop() != nil {
		t.Fatal("fresh queue not empty")
	}
	for i := 0; i < 100; i++ {
		q.Push(tuple.NewData(tuple.Time(i), tuple.Int(int64(i))))
	}
	if q.Len() != 100 || q.Empty() {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		if got := q.Peek(); got.Ts != tuple.Time(i) {
			t.Fatalf("Peek %d: ts=%v", i, got.Ts)
		}
		if got := q.Pop(); got.Ts != tuple.Time(i) {
			t.Fatalf("Pop %d: ts=%v", i, got.Ts)
		}
	}
	if !q.Empty() {
		t.Fatal("queue should be empty after draining")
	}
}

func TestQueueInterleavedPushPop(t *testing.T) {
	// Exercises ring wrap-around: alternate pushes and pops so head travels.
	q := New("w")
	next, want := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			q.Push(tuple.NewData(tuple.Time(next)))
			next++
		}
		for i := 0; i < 2; i++ {
			got := q.Pop()
			if got.Ts != tuple.Time(want) {
				t.Fatalf("round %d: pop ts=%v want %d", round, got.Ts, want)
			}
			want++
		}
	}
	for !q.Empty() {
		got := q.Pop()
		if got.Ts != tuple.Time(want) {
			t.Fatalf("drain: pop ts=%v want %d", got.Ts, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("popped %d, pushed %d", want, next)
	}
}

func TestQueueAt(t *testing.T) {
	q := New("at")
	for i := 0; i < 10; i++ {
		q.Push(tuple.NewData(tuple.Time(i)))
	}
	q.Pop()
	q.Pop()
	for i := 0; i < q.Len(); i++ {
		if got := q.At(i); got.Ts != tuple.Time(i+2) {
			t.Fatalf("At(%d).Ts = %v", i, got.Ts)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("At out of range must panic")
		}
	}()
	q.At(q.Len())
}

func TestQueuePushNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Push(nil) must panic")
		}
	}()
	New("n").Push(nil)
}

func TestQueueStats(t *testing.T) {
	q := New("s")
	q.Push(tuple.NewData(1))
	q.Push(tuple.NewPunct(2))
	q.Push(tuple.NewData(3))
	q.Pop()
	q.Pop()
	st := q.Stats()
	if st.Name != "s" || st.Len != 1 || st.Peak != 3 || st.Pushes != 3 || st.Pops != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.PunctIn != 1 || st.PunctOut != 1 {
		t.Errorf("punct stats = %+v", st)
	}
	if q.Peak() != 3 {
		t.Errorf("Peak = %d", q.Peak())
	}
	q.ResetStats()
	st = q.Stats()
	if st.Peak != 1 || st.Pushes != 0 || st.Pops != 0 {
		t.Errorf("after reset: %+v", st)
	}
}

func TestQueueLastTs(t *testing.T) {
	q := New("l")
	if _, ok := q.LastTs(); ok {
		t.Error("fresh queue claims a last ts")
	}
	q.Push(tuple.NewData(5))
	q.Push(tuple.NewData(9))
	if ts, ok := q.LastTs(); !ok || ts != 9 {
		t.Errorf("LastTs = %v, %v", ts, ok)
	}
	q.Pop()
	q.Pop()
	if ts, ok := q.LastTs(); !ok || ts != 9 {
		t.Error("LastTs must survive draining")
	}
}

func TestQueueClear(t *testing.T) {
	q := New("c")
	for i := 0; i < 5; i++ {
		q.Push(tuple.NewData(tuple.Time(i)))
	}
	q.Clear()
	if !q.Empty() {
		t.Error("Clear left tuples")
	}
	if q.Peak() != 5 {
		t.Error("Clear must preserve peak")
	}
}

func TestGroupPeakIsInstantaneousSum(t *testing.T) {
	a, b := New("a"), New("b")
	g := NewGroup(a)
	g.Add(b)

	// a peaks at 3 while b is empty; then a drains and b peaks at 3.
	// Sum of per-queue peaks would be 6; the instantaneous total peak is 3.
	for i := 0; i < 3; i++ {
		a.Push(tuple.NewData(tuple.Time(i)))
		g.Observe()
	}
	for !a.Empty() {
		a.Pop()
		g.Observe()
	}
	for i := 0; i < 3; i++ {
		b.Push(tuple.NewData(tuple.Time(i)))
		g.Observe()
	}
	if g.Peak() != 3 {
		t.Errorf("group peak = %d, want 3", g.Peak())
	}
	if g.Total() != 3 {
		t.Errorf("group total = %d, want 3", g.Total())
	}
	g.Reset()
	if g.Peak() != 3 {
		t.Errorf("Reset should set peak to current total, got %d", g.Peak())
	}
	b.Clear()
	g.Observe()
	if g.Peak() != 3 {
		t.Errorf("peak after drain = %d", g.Peak())
	}
}

func TestQueueClearStatAccounting(t *testing.T) {
	// Clear counts the discarded tuples as pops (and punctuation as
	// punctOut) so push/pop ledgers stay balanced across a Clear.
	q := New("cs")
	q.Push(tuple.NewData(1))
	q.Push(tuple.NewPunct(2))
	q.Push(tuple.NewData(3))
	q.Pop()
	q.Clear()
	st := q.Stats()
	if st.Len != 0 || st.Pushes != 3 || st.Pops != 3 {
		t.Errorf("stats after Clear = %+v", st)
	}
	if st.PunctIn != 1 || st.PunctOut != 1 {
		t.Errorf("punct stats after Clear = %+v", st)
	}
	if q.DataLen() != 0 {
		t.Errorf("DataLen after Clear = %d", q.DataLen())
	}
	q.Clear() // idempotent on empty
	if got := q.Stats().Pops; got != 3 {
		t.Errorf("Clear on empty queue changed pops: %d", got)
	}
}

func TestQueueAtAfterHeadWrap(t *testing.T) {
	// Drive head past the capacity boundary, then check At indexes the
	// logical order, not the physical layout.
	q := New("wrapAt")
	for i := 0; i < minCap; i++ {
		q.Push(tuple.NewData(tuple.Time(i)))
	}
	for i := 0; i < minCap-2; i++ {
		q.Pop()
	}
	// head is near the end of the ring; these pushes wrap physically.
	for i := minCap; i < minCap+4; i++ {
		q.Push(tuple.NewData(tuple.Time(i)))
	}
	want := []tuple.Time{tuple.Time(minCap - 2), tuple.Time(minCap - 1),
		tuple.Time(minCap), tuple.Time(minCap + 1), tuple.Time(minCap + 2), tuple.Time(minCap + 3)}
	if q.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", q.Len(), len(want))
	}
	for i, w := range want {
		if got := q.At(i).Ts; got != w {
			t.Fatalf("At(%d).Ts = %v, want %v", i, got, w)
		}
	}
}

func TestQueueGrowPreservesOrderWithPunctuation(t *testing.T) {
	// Wrap the ring, then force growth and verify FIFO order with data and
	// punctuation interleaved across the copy.
	q := New("growp")
	mk := func(i int) *tuple.Tuple {
		if i%3 == 0 {
			return tuple.NewPunct(tuple.Time(i))
		}
		return tuple.NewData(tuple.Time(i))
	}
	next, want := 0, 0
	for i := 0; i < 5; i++ {
		q.Push(mk(next))
		next++
	}
	for i := 0; i < 4; i++ { // move head so the live region wraps post-growth
		q.Pop()
		want++
	}
	for next < 40 { // forces several grow() calls while head ≠ 0
		q.Push(mk(next))
		next++
	}
	if q.Len()&(q.Len()-1) != 0 && len(q.buf)&(len(q.buf)-1) != 0 {
		t.Fatalf("capacity %d not a power of two", len(q.buf))
	}
	for !q.Empty() {
		got := q.Pop()
		if got.Ts != tuple.Time(want) {
			t.Fatalf("pop ts=%v want %d", got.Ts, want)
		}
		if wantPunct := want%3 == 0; got.IsPunct() != wantPunct {
			t.Fatalf("tuple %d: punct=%v", want, got.IsPunct())
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d, pushed %d", want, next)
	}
}

func TestQueueCapacityAlwaysPowerOfTwo(t *testing.T) {
	q := New("pow2")
	for i := 0; i < 1000; i++ {
		q.Push(tuple.NewData(tuple.Time(i)))
		if c := len(q.buf); c != 0 && c&(c-1) != 0 {
			t.Fatalf("capacity %d not a power of two after %d pushes", c, i+1)
		}
	}
	q2 := New("pow2batch")
	batch := make([]*tuple.Tuple, 100)
	for i := range batch {
		batch[i] = tuple.NewData(tuple.Time(i))
	}
	q2.PushAll(batch)
	if c := len(q2.buf); c&(c-1) != 0 || c < 100 {
		t.Fatalf("PushAll capacity = %d", c)
	}
}

func TestQueueLastTsMonotonicityAcrossWrap(t *testing.T) {
	// LastTs tracks the most recent push — including punctuation — and is
	// unaffected by pops, Clear, or ring growth.
	q := New("lts")
	for i := 0; i < 20; i++ {
		q.Push(tuple.NewData(tuple.Time(i * 10)))
		if ts, ok := q.LastTs(); !ok || ts != tuple.Time(i*10) {
			t.Fatalf("LastTs after push %d = %v, %v", i, ts, ok)
		}
		if i%2 == 0 {
			q.Pop()
			if ts, _ := q.LastTs(); ts != tuple.Time(i*10) {
				t.Fatalf("Pop moved LastTs to %v", ts)
			}
		}
	}
	q.Push(tuple.NewPunct(500))
	if ts, _ := q.LastTs(); ts != 500 {
		t.Fatalf("punct push must advance LastTs, got %v", ts)
	}
	q.Clear()
	if ts, ok := q.LastTs(); !ok || ts != 500 {
		t.Fatalf("LastTs after Clear = %v, %v", ts, ok)
	}
}

func TestQueuePushAllPopAll(t *testing.T) {
	q := New("batch")
	var batch []*tuple.Tuple
	for i := 0; i < 200; i++ {
		batch = append(batch, tuple.NewData(tuple.Time(i)))
	}
	q.PushAll(batch[:50])
	q.PushAll(nil) // no-op
	for i := 0; i < 20; i++ {
		q.Pop() // move head so PushAll spans a wrap
	}
	q.PushAll(batch[50:])
	if q.Len() != 180 {
		t.Fatalf("Len = %d, want 180", q.Len())
	}
	out := q.PopAll(nil)
	if len(out) != 180 || !q.Empty() {
		t.Fatalf("PopAll returned %d, queue len %d", len(out), q.Len())
	}
	for i, tp := range out {
		if tp.Ts != tuple.Time(i+20) {
			t.Fatalf("PopAll[%d].Ts = %v", i, tp.Ts)
		}
	}
	if got := q.PopAll(out[:0]); len(got) != 0 {
		t.Fatal("PopAll on empty queue must return dst unchanged")
	}
	st := q.Stats()
	if st.Pushes != 200 || st.Pops != 200 {
		t.Fatalf("batch stats = %+v", st)
	}
}

func TestGroupIncrementalTotal(t *testing.T) {
	a, b := New("a"), New("b")
	a.Push(tuple.NewData(1)) // pre-Add occupancy must join the total
	g := NewGroup(a, b)
	if g.Total() != 1 {
		t.Fatalf("initial total = %d", g.Total())
	}
	var batch []*tuple.Tuple
	for i := 0; i < 10; i++ {
		batch = append(batch, tuple.NewData(tuple.Time(i)))
	}
	b.PushAll(batch)
	if g.Total() != 11 {
		t.Fatalf("total after PushAll = %d", g.Total())
	}
	g.Observe()
	if g.Peak() != 11 {
		t.Fatalf("peak = %d", g.Peak())
	}
	a.Pop()
	b.PopAll(nil)
	if g.Total() != 0 {
		t.Fatalf("total after drain = %d", g.Total())
	}
	b.Push(tuple.NewData(1))
	b.Clear()
	if g.Total() != 0 {
		t.Fatalf("total after Clear = %d", g.Total())
	}
	if g.Peak() != 11 {
		t.Fatalf("peak after drain = %d", g.Peak())
	}
	// A queue may feed several groups.
	g2 := NewGroup(b)
	b.Push(tuple.NewData(2))
	if g.Total() != 1 || g2.Total() != 1 {
		t.Fatalf("multi-group totals = %d, %d", g.Total(), g2.Total())
	}
}

// Property: for any sequence of pushes and pops, the queue behaves exactly
// like a slice-based FIFO.
func TestQueueMatchesReferenceModel(t *testing.T) {
	f := func(ops []bool, seed int64) bool {
		q := New("prop")
		var ref []*tuple.Tuple
		n := 0
		for _, push := range ops {
			if push {
				tp := tuple.NewData(tuple.Time(n))
				n++
				q.Push(tp)
				ref = append(ref, tp)
			} else {
				got := q.Pop()
				if len(ref) == 0 {
					if got != nil {
						return false
					}
					continue
				}
				want := ref[0]
				ref = ref[1:]
				if got != want {
					return false
				}
			}
			if q.Len() != len(ref) {
				return false
			}
			if (q.Peek() == nil) != (len(ref) == 0) {
				return false
			}
			if len(ref) > 0 && q.Peek() != ref[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQueueShedOldest(t *testing.T) {
	q := New("shed")
	// data(0) data(1) punct(5) data(10) data(11)
	for _, ts := range []tuple.Time{0, 1} {
		q.Push(tuple.NewData(ts))
	}
	q.Push(tuple.NewPunct(5))
	for _, ts := range []tuple.Time{10, 11} {
		q.Push(tuple.NewData(ts))
	}
	var released []*tuple.Tuple
	if got := q.ShedOldest(3, func(tp *tuple.Tuple) { released = append(released, tp) }); got != 3 {
		t.Fatalf("shed %d, want 3", got)
	}
	if len(released) != 3 {
		t.Fatalf("release hook saw %d tuples", len(released))
	}
	// Punctuation survives at the front, ahead of the remaining data tuple.
	if q.Len() != 2 || q.DataLen() != 1 {
		t.Fatalf("len=%d data=%d after shed", q.Len(), q.DataLen())
	}
	if front := q.Pop(); !front.IsPunct() || front.Ts != 5 {
		t.Fatalf("front after shed = %v, want punct(5)", front)
	}
	if rest := q.Pop(); rest.IsPunct() || rest.Ts != 11 {
		t.Fatalf("second after shed = %v, want data(11)", rest)
	}
	// Shedding more than the data on hand stops at zero.
	q.Push(tuple.NewData(20))
	if got := q.ShedOldest(10, nil); got != 1 {
		t.Errorf("over-shed removed %d, want 1", got)
	}
	if got := q.ShedOldest(1, nil); got != 0 {
		t.Errorf("shedding an empty queue removed %d", got)
	}
}

func TestQueueShedOldestGroupAccounting(t *testing.T) {
	q := New("shedg")
	g := NewGroup(q)
	for i := 0; i < 6; i++ {
		q.Push(tuple.NewData(tuple.Time(i)))
	}
	q.Push(tuple.NewPunct(100))
	if g.Total() != 7 {
		t.Fatalf("group total = %d", g.Total())
	}
	q.ShedOldest(4, nil)
	if g.Total() != 3 {
		t.Errorf("group total after shed = %d, want 3", g.Total())
	}
	// Stats: the retained punct must not inflate pop/punctOut counters.
	st := q.Stats()
	if st.PunctOut != 0 {
		t.Errorf("punctOut = %d after shed kept the punct", st.PunctOut)
	}
	if st.Pops != 4 {
		t.Errorf("pops = %d, want 4 (shed tuples only)", st.Pops)
	}
}
