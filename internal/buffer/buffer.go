// Package buffer implements the FIFO queues that form the arcs of a query
// graph. In the paper's execution model (§3) a directed arc from Qi to Qj is
// a buffer: Qi appends tuples at the tail (production) and Qj removes them
// from the front (consumption).
//
// Queues track occupancy statistics — in particular the peak size — because
// peak total queue size is the memory metric reported in Figure 8 of the
// paper. Group totals are maintained incrementally: every Push/Pop adjusts
// the running sum of each group observing the queue, so sampling the
// Figure-8 metric costs O(1) per execution step instead of a rescan of every
// arc.
package buffer

import (
	"fmt"

	"repro/internal/tuple"
)

// Queue is a growable ring-buffer FIFO of tuples. Capacity is always a power
// of two so positions reduce with a bitmask instead of a modulo. It is not
// safe for concurrent use; the simulation engine is single-threaded and the
// concurrent runtime gives each operator exclusive ownership of its input
// queues.
type Queue struct {
	name string

	buf   []*tuple.Tuple
	head  int // index of front element
	n     int // number of elements
	mask  int // len(buf)-1; valid whenever buf is non-empty
	nData int // number of buffered data (non-punctuation) tuples

	// groups observing this queue for incremental total-occupancy tracking.
	groups []*Group

	// stats
	peak      int
	pushes    uint64
	pops      uint64
	punctIn   uint64
	punctOut  uint64
	lastTs    tuple.Time // timestamp of the most recently pushed tuple
	hasLastTs bool
}

const minCap = 8

// New returns an empty queue. The name is used in diagnostics and stats.
func New(name string) *Queue {
	return &Queue{name: name}
}

// Name returns the queue's diagnostic name.
func (q *Queue) Name() string { return q.name }

// Len reports the number of buffered tuples (data + punctuation).
func (q *Queue) Len() int { return q.n }

// DataLen reports the number of buffered data tuples. Idle-waiting
// detection uses it: an operator holding only punctuation is not delaying
// any result.
func (q *Queue) DataLen() int { return q.nData }

// Empty reports whether the queue holds no tuples.
func (q *Queue) Empty() bool { return q.n == 0 }

// notifyGroups adjusts the running total of every observing group by d.
func (q *Queue) notifyGroups(d int) {
	for _, g := range q.groups {
		g.total += d
	}
}

// push is the unguarded tail append shared by Push and PushAll; capacity
// must already be available.
func (q *Queue) push(t *tuple.Tuple) {
	q.buf[(q.head+q.n)&q.mask] = t
	q.n++
	q.pushes++
	if t.IsPunct() {
		q.punctIn++
	} else {
		q.nData++
	}
	q.lastTs = t.Ts
	q.hasLastTs = true
	if q.n > q.peak {
		q.peak = q.n
	}
}

// Push appends t at the tail of the queue.
func (q *Queue) Push(t *tuple.Tuple) {
	if t == nil {
		panic("buffer: Push(nil)")
	}
	if q.n == len(q.buf) {
		q.grow(q.n + 1)
	}
	q.push(t)
	if len(q.groups) != 0 {
		q.notifyGroups(1)
	}
}

// PushAll appends every tuple of batch in order, ensuring capacity once.
// The batched runtime delivers whole arc batches through it so the per-tuple
// cost is one masked store plus stats.
func (q *Queue) PushAll(batch []*tuple.Tuple) {
	if len(batch) == 0 {
		return
	}
	if q.n+len(batch) > len(q.buf) {
		q.grow(q.n + len(batch))
	}
	for _, t := range batch {
		if t == nil {
			panic("buffer: PushAll(nil tuple)")
		}
		q.push(t)
	}
	if len(q.groups) != 0 {
		q.notifyGroups(len(batch))
	}
}

// Peek returns the front tuple without removing it, or nil when empty.
func (q *Queue) Peek() *tuple.Tuple {
	if q.n == 0 {
		return nil
	}
	return q.buf[q.head]
}

// At returns the i-th buffered tuple counting from the front (0 = front).
// It panics when i is out of range.
func (q *Queue) At(i int) *tuple.Tuple {
	if i < 0 || i >= q.n {
		panic(fmt.Sprintf("buffer %s: At(%d) with len %d", q.name, i, q.n))
	}
	return q.buf[(q.head+i)&q.mask]
}

// pop is the unguarded front removal shared by Pop and PopAll; the queue
// must be non-empty.
func (q *Queue) pop() *tuple.Tuple {
	t := q.buf[q.head]
	q.buf[q.head] = nil // allow GC
	q.head = (q.head + 1) & q.mask
	q.n--
	q.pops++
	if t.IsPunct() {
		q.punctOut++
	} else {
		q.nData--
	}
	return t
}

// Pop removes and returns the front tuple, or nil when empty.
func (q *Queue) Pop() *tuple.Tuple {
	if q.n == 0 {
		return nil
	}
	t := q.pop()
	if len(q.groups) != 0 {
		q.notifyGroups(-1)
	}
	return t
}

// PopAll drains the queue front-to-back, appending every tuple to dst and
// returning the extended slice.
func (q *Queue) PopAll(dst []*tuple.Tuple) []*tuple.Tuple {
	if q.n == 0 {
		return dst
	}
	drained := q.n
	for q.n > 0 {
		dst = append(dst, q.pop())
	}
	if len(q.groups) != 0 {
		q.notifyGroups(-drained)
	}
	return dst
}

// pushFront re-inserts t at the head of the queue. It is the mechanism
// ShedOldest uses to retain punctuation, so it deliberately skips the
// push/punctIn counters — the tuple never left the queue's accounting.
func (q *Queue) pushFront(t *tuple.Tuple) {
	if q.n == len(q.buf) {
		q.grow(q.n + 1)
	}
	q.head = (q.head - 1) & q.mask
	q.buf[q.head] = t
	if !t.IsPunct() {
		q.nData++
	}
	q.n++
	if q.n > q.peak {
		q.peak = q.n
	}
}

// ShedOldest removes up to k of the oldest buffered *data* tuples — the
// drop-oldest load-shedding policy — and reports how many were removed.
// Punctuation is never shed: dropping data tuples cannot violate an ETS
// promise (the promise bounds future timestamps, it does not guarantee
// delivery), but dropping a bound would re-stall downstream IWP operators.
// Retained punctuation keeps its position relative to the surviving tuples.
// release, when non-nil, receives each shed tuple for recycling.
func (q *Queue) ShedOldest(k int, release func(*tuple.Tuple)) int {
	if k <= 0 || q.nData == 0 {
		return 0
	}
	shed := 0
	var keep []*tuple.Tuple
	for shed < k && q.nData > 0 {
		t := q.pop()
		if t.IsPunct() {
			// pop() charged a pop and a punctOut; the punct is going
			// straight back in, so reverse both.
			q.pops--
			q.punctOut--
			keep = append(keep, t)
			continue
		}
		shed++
		if release != nil {
			release(t)
		}
	}
	for i := len(keep) - 1; i >= 0; i-- {
		q.pushFront(keep[i])
	}
	if shed != 0 && len(q.groups) != 0 {
		q.notifyGroups(-shed)
	}
	return shed
}

// Clear discards all buffered tuples (stats are preserved: cleared tuples
// count as pops, punctuation as punctOut).
func (q *Queue) Clear() {
	drained := q.n
	for q.n > 0 {
		q.pop()
	}
	if drained != 0 && len(q.groups) != 0 {
		q.notifyGroups(-drained)
	}
}

// grow resizes the ring to the smallest power of two ≥ need, unwrapping the
// live region with at most two bulk copies.
func (q *Queue) grow(need int) {
	newCap := len(q.buf)
	if newCap < minCap {
		newCap = minCap
	}
	for newCap < need {
		newCap <<= 1
	}
	nb := make([]*tuple.Tuple, newCap)
	if q.n > 0 {
		if q.head+q.n <= len(q.buf) {
			copy(nb, q.buf[q.head:q.head+q.n])
		} else {
			k := copy(nb, q.buf[q.head:])
			copy(nb[k:], q.buf[:q.n-k])
		}
	}
	q.buf = nb
	q.mask = newCap - 1
	q.head = 0
}

// LastTs returns the timestamp of the most recently pushed tuple and whether
// any tuple has ever been pushed. Source wrappers use it to keep ETS values
// monotone with respect to already-enqueued tuples.
func (q *Queue) LastTs() (tuple.Time, bool) { return q.lastTs, q.hasLastTs }

// Stats is a snapshot of a queue's counters.
type Stats struct {
	Name     string
	Len      int
	Peak     int
	Pushes   uint64
	Pops     uint64
	PunctIn  uint64
	PunctOut uint64
}

// Stats returns a snapshot of the queue's counters.
func (q *Queue) Stats() Stats {
	return Stats{
		Name:     q.name,
		Len:      q.n,
		Peak:     q.peak,
		Pushes:   q.pushes,
		Pops:     q.pops,
		PunctIn:  q.punctIn,
		PunctOut: q.punctOut,
	}
}

// Peak reports the maximum occupancy ever observed.
func (q *Queue) Peak() int { return q.peak }

// ResetStats zeroes the counters (occupancy is untouched) — used when a
// measurement window starts after a warm-up period.
func (q *Queue) ResetStats() {
	q.peak = q.n
	q.pushes = 0
	q.pops = 0
	q.punctIn = 0
	q.punctOut = 0
}

func (q *Queue) String() string {
	return fmt.Sprintf("queue %s: len=%d peak=%d", q.name, q.n, q.peak)
}

// Group aggregates occupancy across a set of queues. The experiment harness
// uses a Group over every arc of the query graph to track *peak total* queue
// size, the metric of Figure 8 (which is a property of the instantaneous sum,
// not the sum of per-queue peaks).
//
// The total is maintained incrementally: member queues adjust it on every
// Push/Pop, so Total and Observe are O(1) regardless of how many arcs the
// graph has. Like Queue, a Group is not safe for concurrent use and its
// member queues must be mutated from a single goroutine.
type Group struct {
	queues []*Queue
	total  int
	peak   int
}

// NewGroup returns a Group observing the given queues.
func NewGroup(queues ...*Queue) *Group {
	g := &Group{}
	for _, q := range queues {
		g.Add(q)
	}
	return g
}

// Add registers another queue with the group; its current occupancy joins
// the running total.
func (g *Group) Add(q *Queue) {
	g.queues = append(g.queues, q)
	q.groups = append(q.groups, g)
	g.total += q.n
}

// Total reports the current total occupancy across all queues.
func (g *Group) Total() int { return g.total }

// Observe samples the current total occupancy and updates the peak. The
// engine calls it after every production step.
func (g *Group) Observe() int {
	if g.total > g.peak {
		g.peak = g.total
	}
	return g.total
}

// Peak reports the maximum total occupancy observed so far.
func (g *Group) Peak() int { return g.peak }

// Reset zeroes the group peak (e.g. after warm-up).
func (g *Group) Reset() { g.peak = g.total }
