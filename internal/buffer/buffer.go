// Package buffer implements the FIFO queues that form the arcs of a query
// graph. In the paper's execution model (§3) a directed arc from Qi to Qj is
// a buffer: Qi appends tuples at the tail (production) and Qj removes them
// from the front (consumption).
//
// Queues track occupancy statistics — in particular the peak size — because
// peak total queue size is the memory metric reported in Figure 8 of the
// paper.
package buffer

import (
	"fmt"

	"repro/internal/tuple"
)

// Queue is a growable ring-buffer FIFO of tuples. It is not safe for
// concurrent use; the simulation engine is single-threaded and the
// concurrent runtime uses channels instead.
type Queue struct {
	name string

	buf   []*tuple.Tuple
	head  int // index of front element
	n     int // number of elements
	nData int // number of buffered data (non-punctuation) tuples

	// stats
	peak      int
	pushes    uint64
	pops      uint64
	punctIn   uint64
	punctOut  uint64
	lastTs    tuple.Time // timestamp of the most recently pushed tuple
	hasLastTs bool
}

const minCap = 8

// New returns an empty queue. The name is used in diagnostics and stats.
func New(name string) *Queue {
	return &Queue{name: name}
}

// Name returns the queue's diagnostic name.
func (q *Queue) Name() string { return q.name }

// Len reports the number of buffered tuples (data + punctuation).
func (q *Queue) Len() int { return q.n }

// DataLen reports the number of buffered data tuples. Idle-waiting
// detection uses it: an operator holding only punctuation is not delaying
// any result.
func (q *Queue) DataLen() int { return q.nData }

// Empty reports whether the queue holds no tuples.
func (q *Queue) Empty() bool { return q.n == 0 }

// Push appends t at the tail of the queue.
func (q *Queue) Push(t *tuple.Tuple) {
	if t == nil {
		panic("buffer: Push(nil)")
	}
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = t
	q.n++
	q.pushes++
	if t.IsPunct() {
		q.punctIn++
	} else {
		q.nData++
	}
	q.lastTs = t.Ts
	q.hasLastTs = true
	if q.n > q.peak {
		q.peak = q.n
	}
}

// Peek returns the front tuple without removing it, or nil when empty.
func (q *Queue) Peek() *tuple.Tuple {
	if q.n == 0 {
		return nil
	}
	return q.buf[q.head]
}

// At returns the i-th buffered tuple counting from the front (0 = front).
// It panics when i is out of range.
func (q *Queue) At(i int) *tuple.Tuple {
	if i < 0 || i >= q.n {
		panic(fmt.Sprintf("buffer %s: At(%d) with len %d", q.name, i, q.n))
	}
	return q.buf[(q.head+i)%len(q.buf)]
}

// Pop removes and returns the front tuple, or nil when empty.
func (q *Queue) Pop() *tuple.Tuple {
	if q.n == 0 {
		return nil
	}
	t := q.buf[q.head]
	q.buf[q.head] = nil // allow GC
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.pops++
	if t.IsPunct() {
		q.punctOut++
	} else {
		q.nData--
	}
	return t
}

// Clear discards all buffered tuples (stats are preserved).
func (q *Queue) Clear() {
	for q.n > 0 {
		q.Pop()
	}
}

func (q *Queue) grow() {
	newCap := len(q.buf) * 2
	if newCap < minCap {
		newCap = minCap
	}
	nb := make([]*tuple.Tuple, newCap)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}

// LastTs returns the timestamp of the most recently pushed tuple and whether
// any tuple has ever been pushed. Source wrappers use it to keep ETS values
// monotone with respect to already-enqueued tuples.
func (q *Queue) LastTs() (tuple.Time, bool) { return q.lastTs, q.hasLastTs }

// Stats is a snapshot of a queue's counters.
type Stats struct {
	Name     string
	Len      int
	Peak     int
	Pushes   uint64
	Pops     uint64
	PunctIn  uint64
	PunctOut uint64
}

// Stats returns a snapshot of the queue's counters.
func (q *Queue) Stats() Stats {
	return Stats{
		Name:     q.name,
		Len:      q.n,
		Peak:     q.peak,
		Pushes:   q.pushes,
		Pops:     q.pops,
		PunctIn:  q.punctIn,
		PunctOut: q.punctOut,
	}
}

// Peak reports the maximum occupancy ever observed.
func (q *Queue) Peak() int { return q.peak }

// ResetStats zeroes the counters (occupancy is untouched) — used when a
// measurement window starts after a warm-up period.
func (q *Queue) ResetStats() {
	q.peak = q.n
	q.pushes = 0
	q.pops = 0
	q.punctIn = 0
	q.punctOut = 0
}

func (q *Queue) String() string {
	return fmt.Sprintf("queue %s: len=%d peak=%d", q.name, q.n, q.peak)
}

// Group aggregates occupancy across a set of queues. The experiment harness
// uses a Group over every arc of the query graph to track *peak total* queue
// size, the metric of Figure 8 (which is a property of the instantaneous sum,
// not the sum of per-queue peaks).
type Group struct {
	queues []*Queue
	peak   int
}

// NewGroup returns a Group observing the given queues.
func NewGroup(queues ...*Queue) *Group {
	return &Group{queues: queues}
}

// Add registers another queue with the group.
func (g *Group) Add(q *Queue) { g.queues = append(g.queues, q) }

// Total reports the current total occupancy across all queues.
func (g *Group) Total() int {
	total := 0
	for _, q := range g.queues {
		total += q.Len()
	}
	return total
}

// Observe samples the current total occupancy and updates the peak. The
// engine calls it after every production step.
func (g *Group) Observe() int {
	t := g.Total()
	if t > g.peak {
		g.peak = t
	}
	return t
}

// Peak reports the maximum total occupancy observed so far.
func (g *Group) Peak() int { return g.peak }

// Reset zeroes the group peak (e.g. after warm-up).
func (g *Group) Reset() { g.peak = g.Total() }
