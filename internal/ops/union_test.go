package ops

import (
	"testing"
	"testing/quick"

	"repro/internal/tuple"
)

func TestUnionNeedsTwoInputs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("1-input union must panic")
		}
	}()
	NewUnion("u", nil, 1, Basic)
}

func TestBasicUnionMerges(t *testing.T) {
	u := NewUnion("u", nil, 2, Basic)
	if u.Mode() != Basic || u.Registers() != nil {
		t.Fatal("mode/registers wrong")
	}
	h := newHarness(u)
	for _, ts := range []tuple.Time{1, 4, 9} {
		h.ins[0].Push(tuple.NewData(ts))
	}
	for _, ts := range []tuple.Time{2, 3, 10} {
		h.ins[1].Push(tuple.NewData(ts))
	}
	h.run()
	// Basic more fails once an input drains: after consuming 1,2,3,4 input
	// 1 holds {9}, input 2 holds {10}; 9 goes, then input 1 is empty.
	wantTs(t, h.data(), 1, 2, 3, 4, 9)
	if u.BlockingInput(h.ctx) != 0 {
		t.Errorf("BlockingInput = %d", u.BlockingInput(h.ctx))
	}
}

func TestBasicUnionIdleWaitsOnEmptyInput(t *testing.T) {
	u := NewUnion("u", nil, 2, Basic)
	h := newHarness(u)
	h.ins[0].Push(tuple.NewData(1))
	if u.More(h.ctx) {
		t.Fatal("basic union must idle-wait with an empty input")
	}
	if u.BlockingInput(h.ctx) != 1 {
		t.Errorf("BlockingInput = %d", u.BlockingInput(h.ctx))
	}
}

func TestTSMUnionUnblockedByPunctuation(t *testing.T) {
	u := NewUnion("u", nil, 2, TSM)
	h := newHarness(u)
	h.ins[0].Push(tuple.NewData(5))
	h.ins[0].Push(tuple.NewData(8))
	if u.More(h.ctx) {
		t.Fatal("no bound on input 1 yet")
	}
	if u.BlockingInput(h.ctx) != 1 {
		t.Fatalf("BlockingInput = %d", u.BlockingInput(h.ctx))
	}
	// An ETS punctuation at 7 releases the tuple at 5 but not the one at 8.
	h.ins[1].Push(tuple.NewPunct(7))
	h.run()
	wantTs(t, h.data(), 5)
	// The punctuation itself was consumed and propagated with the merged
	// bound min(7, 8) = 7.
	p := h.puncts()
	if len(p) != 1 || p[0].Ts != 7 {
		t.Fatalf("puncts = %v", p)
	}
	if u.More(h.ctx) {
		t.Fatal("tuple at 8 must wait for a bound ≥ 8")
	}
	h.ins[1].Push(tuple.NewPunct(9))
	h.run()
	wantTs(t, h.data(), 5, 8)
}

func TestTSMUnionSimultaneousTuples(t *testing.T) {
	// §4.1: with coarse timestamps, all simultaneous tuples must flow with
	// no idle-waiting once each input's register reaches τ.
	u := NewUnion("u", nil, 2, TSM)
	h := newHarness(u)
	for i := 0; i < 3; i++ {
		h.ins[0].Push(tuple.NewData(100))
	}
	for i := 0; i < 2; i++ {
		h.ins[1].Push(tuple.NewData(100))
	}
	h.run()
	if len(h.data()) != 5 {
		t.Fatalf("emitted %d of 5 simultaneous tuples", len(h.data()))
	}
	// Late-arriving simultaneous tuples also pass: registers remember 100.
	h.ins[1].Push(tuple.NewData(100))
	h.run()
	if len(h.data()) != 6 {
		t.Fatal("late simultaneous tuple idle-waited")
	}
}

func TestBasicUnionStrandsSimultaneousTuples(t *testing.T) {
	// The failure mode the TSM registers fix (§4.1): Figure-1 rules move
	// one tuple at a time, so one input drains and the other idles.
	u := NewUnion("u", nil, 2, Basic)
	h := newHarness(u)
	for i := 0; i < 3; i++ {
		h.ins[0].Push(tuple.NewData(100))
	}
	for i := 0; i < 2; i++ {
		h.ins[1].Push(tuple.NewData(100))
	}
	h.run()
	if len(h.data()) == 5 {
		t.Fatal("basic union unexpectedly processed all simultaneous tuples")
	}
	if h.ins[0].Empty() && h.ins[1].Empty() {
		t.Fatal("expected stranded tuples")
	}
}

func TestTSMUnionOrderedOutput(t *testing.T) {
	u := NewUnion("u", nil, 3, TSM)
	h := newHarness(u)
	h.ins[0].Push(tuple.NewData(1))
	h.ins[0].Push(tuple.NewData(7))
	h.ins[1].Push(tuple.NewData(2))
	h.ins[1].Push(tuple.NewData(8))
	h.ins[2].Push(tuple.NewData(3))
	h.ins[2].Push(tuple.NewData(9))
	h.run()
	// Merge proceeds to 7; consuming 7 drains input 0 whose register (7)
	// is then the operator minimum, so 8 and 9 must wait for a new bound
	// on input 0.
	wantTs(t, h.data(), 1, 2, 3, 7)
	if u.More(h.ctx) {
		t.Fatal("8 must wait for a bound on input 0")
	}
	if u.BlockingInput(h.ctx) != 0 {
		t.Fatalf("BlockingInput = %d", u.BlockingInput(h.ctx))
	}
	h.ins[0].Push(tuple.NewPunct(20))
	h.run()
	// The bound on input 0 releases 8; then input 1 (register 8) blocks 9.
	wantTs(t, h.data(), 1, 2, 3, 7, 8)
	h.ins[1].Push(tuple.NewPunct(20))
	h.run()
	wantTs(t, h.data(), 1, 2, 3, 7, 8, 9)
}

func TestTSMUnionPunctDedup(t *testing.T) {
	u := NewUnion("u", nil, 2, TSM)
	h := newHarness(u)
	// Both inputs punctuate at 5: only one output punct should appear.
	h.ins[0].Push(tuple.NewPunct(5))
	h.ins[1].Push(tuple.NewPunct(5))
	h.run()
	if len(h.puncts()) != 1 || h.puncts()[0].Ts != 5 {
		t.Fatalf("deduped puncts = %v", h.puncts())
	}
	if u.PunctEmitted() != 1 {
		t.Errorf("PunctEmitted = %d", u.PunctEmitted())
	}
}

func TestTSMUnionPunctNoDedup(t *testing.T) {
	u := NewUnion("u", nil, 2, TSM)
	u.DedupPunct = false
	h := newHarness(u)
	h.ins[0].Push(tuple.NewPunct(5))
	h.ins[1].Push(tuple.NewPunct(5))
	h.run()
	if len(h.puncts()) != 2 {
		t.Fatalf("raw puncts = %v", h.puncts())
	}
}

func TestTSMUnionPunctNotEmittedBehindData(t *testing.T) {
	u := NewUnion("u", nil, 2, TSM)
	h := newHarness(u)
	h.ins[0].Push(tuple.NewData(10))
	h.ins[1].Push(tuple.NewData(10))
	h.ins[1].Push(tuple.NewPunct(10))
	h.run()
	// The punct at 10 conveys nothing beyond the data at 10: suppressed.
	if len(h.puncts()) != 0 {
		t.Fatalf("puncts = %v", h.puncts())
	}
	wantTs(t, h.data(), 10, 10)
}

func TestTSMUnionEOS(t *testing.T) {
	u := NewUnion("u", nil, 2, TSM)
	h := newHarness(u)
	h.ins[0].Push(tuple.NewData(1))
	h.ins[0].Push(tuple.EOS())
	h.ins[1].Push(tuple.NewData(2))
	h.ins[1].Push(tuple.EOS())
	h.run()
	wantTs(t, h.data(), 1, 2)
	p := h.puncts()
	if len(p) == 0 || !p[len(p)-1].IsEOS() {
		t.Fatalf("EOS not propagated: %v", p)
	}
}

func TestLatentUnionArrivalOrder(t *testing.T) {
	u := NewUnion("u", nil, 2, LatentMode)
	h := newHarness(u)
	// Only input 0 has tuples: latent union must not wait for input 1.
	h.ins[0].Push(tuple.NewData(tuple.MinTime, tuple.Int(1)))
	h.ins[0].Push(tuple.NewData(tuple.MinTime, tuple.Int(2)))
	h.run()
	if len(h.data()) != 2 {
		t.Fatalf("latent union emitted %d", len(h.data()))
	}
	if u.BlockingInput(h.ctx) != -1 {
		t.Error("latent union never blocks on an input")
	}
}

func TestLatentUnionRoundRobin(t *testing.T) {
	u := NewUnion("u", nil, 2, LatentMode)
	h := newHarness(u)
	for i := 0; i < 3; i++ {
		h.ins[0].Push(tuple.NewData(tuple.MinTime, tuple.Int(0)))
		h.ins[1].Push(tuple.NewData(tuple.MinTime, tuple.Int(1)))
	}
	h.run()
	d := h.data()
	if len(d) != 6 {
		t.Fatalf("emitted %d", len(d))
	}
	// Alternating origin: no starvation.
	for i := 1; i < len(d); i++ {
		if d[i].Vals[0].AsInt() == d[i-1].Vals[0].AsInt() {
			t.Fatalf("round robin violated at %d: %v", i, d)
		}
	}
}

// Property: a TSM union's data output is always nondecreasing in timestamp,
// for any interleaving of ordered inputs with punctuation.
func TestTSMUnionOrderProperty(t *testing.T) {
	f := func(aGaps, bGaps []uint8, punctEvery uint8) bool {
		u := NewUnion("u", nil, 2, TSM)
		h := newHarness(u)
		feed := func(q int, gaps []uint8) {
			ts := tuple.Time(0)
			for i, g := range gaps {
				ts += tuple.Time(g)
				h.ins[q].Push(tuple.NewData(ts))
				if punctEvery > 0 && i%(int(punctEvery)+1) == 0 {
					h.ins[q].Push(tuple.NewPunct(ts))
				}
			}
			h.ins[q].Push(tuple.EOS())
		}
		feed(0, aGaps)
		feed(1, bGaps)
		h.run()
		prev := tuple.MinTime
		for _, d := range h.data() {
			if d.Ts < prev {
				return false
			}
			prev = d.Ts
		}
		// With EOS on both inputs everything must drain.
		return len(h.data()) == len(aGaps)+len(bGaps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
