package ops

import (
	"fmt"
	"sync/atomic"

	"repro/internal/tsm"
	"repro/internal/tuple"
	"repro/internal/window"
)

// MultiPred decides whether a candidate combination of tuples — one per
// input, with vals[i] from input i — joins. The tuple that just arrived is
// always present in the combination.
type MultiPred func(vals []*tuple.Tuple) bool

// MultiEquiJoin matches combinations whose values at the given column (one
// index per input) are all equal.
func MultiEquiJoin(cols ...int) MultiPred {
	return func(vals []*tuple.Tuple) bool {
		first := vals[0].Vals[cols[0]]
		for i := 1; i < len(vals); i++ {
			if !vals[i].Vals[cols[i]].Equal(first) {
				return false
			}
		}
		return true
	}
}

// MultiJoin is the n-way symmetric window join the paper defers ("we omit
// here the discussion of multi-way joins ... whose treatment is however
// similar to that of binary joins", §2). Each input keeps a window; a new
// tuple on input i joins against the cross product of the other windows.
// TSM registers make the operator punctuation-aware exactly like the binary
// join: every input needs a timestamp bound before the operator may run,
// punctuation expires every other window, and the merged bound propagates.
type MultiJoin struct {
	base
	pred MultiPred
	regs *tsm.Registers
	wins []*window.Store

	// keyCols are the equi-join columns (one per input) when the join was
	// built with NewMultiEquiJoin; nil for an opaque predicate. Known
	// columns make the join partitionable and enable per-level probe
	// filtering (a candidate is discarded the moment its key mismatches,
	// instead of at the full combination).
	keyCols []int

	// order is the probe sequence over inputs (a permutation of 0..n-1),
	// swapped in by the adaptive controller at punctuation boundaries;
	// nil means natural input order. Atomic because the controller reads
	// it (to decide whether a reorder is worthwhile) while the join's
	// goroutine walks it.
	order atomic.Pointer[[]int]

	// Per-input probe selectivity evidence, read by the controller:
	// probes[i] counts scans of window i, visits[i] candidates enumerated
	// from it, passed[i] candidates surviving the per-level key filter.
	probes, visits, passed []atomic.Uint64

	// mag pools output tuples (single-owner, see WindowJoin.mag).
	mag tuple.Magazine

	// DedupPunct is as for Union and WindowJoin.
	DedupPunct bool
	watermark  tuple.Time
	al         aligner // checkpoint-barrier alignment

	dataOut  uint64
	punctOut uint64
}

// NewMultiJoin builds an n-way symmetric window join (n ≥ 2, TSM rules).
func NewMultiJoin(name string, schema *tuple.Schema, n int, spec window.Spec, pred MultiPred) *MultiJoin {
	if n < 2 {
		panic(fmt.Sprintf("multijoin %s: need at least 2 inputs, got %d", name, n))
	}
	if err := spec.Validate(); err != nil {
		panic(fmt.Sprintf("multijoin %s: %v", name, err))
	}
	j := &MultiJoin{
		base:       base{name: name, inputs: n, schema: schema},
		pred:       pred,
		regs:       tsm.New(n),
		DedupPunct: true,
		watermark:  tuple.MinTime,
	}
	j.wins = make([]*window.Store, n)
	for i := range j.wins {
		j.wins[i] = window.NewStore(spec)
	}
	j.probes = make([]atomic.Uint64, n)
	j.visits = make([]atomic.Uint64, n)
	j.passed = make([]atomic.Uint64, n)
	return j
}

// NewMultiEquiJoin builds an n-way symmetric window equi-join over one key
// column per input (n = len(cols) ≥ 2). Equivalent to NewMultiJoin with
// MultiEquiJoin(cols...), but the recorded columns make it partitionable.
func NewMultiEquiJoin(name string, schema *tuple.Schema, spec window.Spec, cols ...int) *MultiJoin {
	j := NewMultiJoin(name, schema, len(cols), spec, MultiEquiJoin(cols...))
	j.keyCols = append([]int(nil), cols...)
	return j
}

// Window exposes the window store of input i.
func (j *MultiJoin) Window(i int) *window.Store { return j.wins[i] }

// SetProbeOrder installs a new probe sequence (a permutation of 0..n-1).
// The adaptive controller delivers it through the runtime's reconfiguration
// protocol so the swap lands on the join's own goroutine at a punctuation
// boundary; an invalid permutation is rejected.
func (j *MultiJoin) SetProbeOrder(order []int) bool {
	n := len(j.wins)
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, i := range order {
		if i < 0 || i >= n || seen[i] {
			return false
		}
		seen[i] = true
	}
	o := append([]int(nil), order...)
	j.order.Store(&o)
	return true
}

// ProbeOrder returns the current probe sequence (natural order if never
// reordered).
func (j *MultiJoin) ProbeOrder() []int {
	if o := j.order.Load(); o != nil {
		return append([]int(nil), (*o)...)
	}
	o := make([]int, len(j.wins))
	for i := range o {
		o[i] = i
	}
	return o
}

// ProbeStat is one input's accumulated probe evidence.
type ProbeStat struct {
	// Probes counts scans of this input's window (one per surviving prefix
	// that reached it).
	Probes uint64
	// Visits counts candidate tuples enumerated from the window.
	Visits uint64
	// Passed counts candidates that survived the per-level key filter —
	// Passed/Probes is the window's expected match fan-out, the quantity
	// cheapest-first ordering minimizes early in the sequence.
	Passed uint64
}

// ProbeStats returns per-input probe selectivity counters. Safe to call from
// the controller while the join runs.
func (j *MultiJoin) ProbeStats() []ProbeStat {
	out := make([]ProbeStat, len(j.wins))
	for i := range out {
		out[i] = ProbeStat{
			Probes: j.probes[i].Load(),
			Visits: j.visits[i].Load(),
			Passed: j.passed[i].Load(),
		}
	}
	return out
}

// KeyCols returns the equi-join key columns, or nil for an opaque predicate.
func (j *MultiJoin) KeyCols() []int { return j.keyCols }

// DataEmitted reports the number of joined combinations emitted.
func (j *MultiJoin) DataEmitted() uint64 { return j.dataOut }

// PunctEmitted reports the number of punctuation tuples emitted.
func (j *MultiJoin) PunctEmitted() uint64 { return j.punctOut }

// More implements the relaxed condition over all n inputs.
func (j *MultiJoin) More(ctx *Ctx) bool {
	j.regs.Observe(ctx.Ins)
	if j.al.ready(ctx.Ins) >= 0 {
		return true
	}
	ok, _, _ := j.regs.More(ctx.Ins)
	return ok
}

// BlockingInput identifies the input to backtrack into.
func (j *MultiJoin) BlockingInput(ctx *Ctx) int {
	j.regs.Observe(ctx.Ins)
	if j.al.ready(ctx.Ins) >= 0 {
		return -1
	}
	if ok, _, _ := j.regs.More(ctx.Ins); ok {
		return -1
	}
	return j.regs.BlockingInput(ctx.Ins)
}

// Exec performs one production/consumption step.
func (j *MultiJoin) Exec(ctx *Ctx) bool {
	j.regs.Observe(ctx.Ins)
	var t *tuple.Tuple
	τ := tuple.MinTime
	input := j.al.ready(ctx.Ins)
	if input >= 0 {
		// A checkpoint barrier at the head of an unaligned input is
		// consumable regardless of τ (see barrier.go).
		t = ctx.Ins[input].Pop()
	} else {
		ok, in, bound := j.regs.More(ctx.Ins)
		if !ok {
			return false
		}
		input, τ = in, bound
		t = ctx.Ins[input].Pop()
	}
	if handled, yield := handleBarrier(&j.al, j, ctx, input, t); handled {
		return yield
	}
	if !t.IsPunct() {
		if τ > j.watermark {
			j.watermark = τ
		}
		return j.produce(ctx, input, t)
	}
	return j.punctStep(ctx, input, t)
}

// punctStep runs the punctuation rule for a consumed punctuation on input:
// expire every other window against the bound, then propagate the merged
// bound.
func (j *MultiJoin) punctStep(ctx *Ctx, input int, t *tuple.Tuple) bool {
	for i, w := range j.wins {
		if i != input {
			w.ExpireTo(t.Ts)
		}
	}
	j.regs.Observe(ctx.Ins)
	bound, _ := j.regs.Min()
	if !j.DedupPunct {
		j.punctOut++
		ctx.Emit(t)
		return true
	}
	if bound > j.watermark && bound != tuple.MaxTime {
		j.watermark = bound
		j.punctOut++
		ctx.free(t)
		ctx.Emit(tuple.GetPunct(bound))
		return true
	}
	if t.IsEOS() && j.allEOS() {
		j.punctOut++
		ctx.free(t)
		ctx.Emit(tuple.EOS())
		return true
	}
	ctx.free(t) // absorbed: the bound did not advance
	return false
}

// barrierHost hooks (see barrier.go).

func (j *MultiJoin) replayData(ctx *Ctx, input int, t *tuple.Tuple) {
	j.produce(ctx, input, t)
}

func (j *MultiJoin) replayPunct(ctx *Ctx, input int, t *tuple.Tuple) {
	j.punctStep(ctx, input, t)
}

func (j *MultiJoin) barrierBound(ctx *Ctx) tuple.Time {
	j.regs.Observe(ctx.Ins)
	bound, _ := j.regs.Min()
	return bound
}

func (j *MultiJoin) emitBarrier(ctx *Ctx, id uint64, bound tuple.Time) {
	if bound > j.watermark && bound != tuple.MaxTime {
		j.watermark = bound
	}
	j.punctOut++
	ctx.barrier(id, bound)
	p := tuple.GetPunct(bound)
	p.Ckpt = id
	ctx.Emit(p)
}

func (j *MultiJoin) allEOS() bool {
	for i := 0; i < j.regs.Len(); i++ {
		if j.regs.Get(i) != tuple.MaxTime {
			return false
		}
	}
	return true
}

// produce joins the arriving tuple against the cross product of the other
// windows, emits qualifying combinations (values concatenated in input
// order, timestamp the maximum across the combination — with ordered arcs
// that is the arriving tuple's own; after an over-estimated ETS admits a
// late tuple it keeps the output identical to ordered execution), and
// inserts the tuple into its own window.
//
// Windows are probed in the current probe order (controller-tunable,
// cheapest fan-out first); for equi-joins each candidate is filtered by key
// equality at its own level, so a mismatching window prunes the enumeration
// tree immediately instead of at the full combination. Key equality is
// transitive, so per-level filtering plus the final predicate emits exactly
// the combinations the unfiltered natural-order walk would — probe order
// changes cost, never output.
func (j *MultiJoin) produce(ctx *Ctx, input int, t *tuple.Tuple) bool {
	n := len(j.wins)
	for i, w := range j.wins {
		if i != input {
			w.ExpireTo(t.Ts)
		}
	}
	var key tuple.Value
	filter := j.keyCols != nil
	if filter {
		key = t.Vals[j.keyCols[input]]
	}
	ord := j.order.Load()
	combo := make([]*tuple.Tuple, n)
	combo[input] = t
	yield := false
	var walk func(p int)
	walk = func(p int) {
		if p == n {
			if !j.pred(combo) {
				return
			}
			size := 0
			ts := t.Ts
			for _, c := range combo {
				size += len(c.Vals)
				if c.Ts > ts {
					ts = c.Ts
				}
			}
			out := j.mag.GetData(ts, size)
			vals := out.Vals[:0]
			for _, c := range combo {
				vals = append(vals, c.Vals...)
			}
			out.Vals = vals
			out.Arrived = t.Arrived
			j.dataOut++
			yield = true
			ctx.Emit(out)
			return
		}
		i := p
		if ord != nil {
			i = (*ord)[p]
		}
		if i == input {
			walk(p + 1)
			return
		}
		j.probes[i].Add(1)
		var visits, passed uint64
		j.wins[i].Each(func(o *tuple.Tuple) {
			visits++
			if filter && !o.Vals[j.keyCols[i]].Equal(key) {
				return
			}
			passed++
			combo[i] = o
			walk(p + 1)
		})
		j.visits[i].Add(visits)
		j.passed[i].Add(passed)
		combo[i] = nil
	}
	walk(0)
	j.wins[input].Insert(t)
	return yield
}
