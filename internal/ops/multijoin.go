package ops

import (
	"fmt"

	"repro/internal/tsm"
	"repro/internal/tuple"
	"repro/internal/window"
)

// MultiPred decides whether a candidate combination of tuples — one per
// input, with vals[i] from input i — joins. The tuple that just arrived is
// always present in the combination.
type MultiPred func(vals []*tuple.Tuple) bool

// MultiEquiJoin matches combinations whose values at the given column (one
// index per input) are all equal.
func MultiEquiJoin(cols ...int) MultiPred {
	return func(vals []*tuple.Tuple) bool {
		first := vals[0].Vals[cols[0]]
		for i := 1; i < len(vals); i++ {
			if !vals[i].Vals[cols[i]].Equal(first) {
				return false
			}
		}
		return true
	}
}

// MultiJoin is the n-way symmetric window join the paper defers ("we omit
// here the discussion of multi-way joins ... whose treatment is however
// similar to that of binary joins", §2). Each input keeps a window; a new
// tuple on input i joins against the cross product of the other windows.
// TSM registers make the operator punctuation-aware exactly like the binary
// join: every input needs a timestamp bound before the operator may run,
// punctuation expires every other window, and the merged bound propagates.
type MultiJoin struct {
	base
	pred MultiPred
	regs *tsm.Registers
	wins []*window.Store

	// keyCols are the equi-join columns (one per input) when the join was
	// built with NewMultiEquiJoin; nil for an opaque predicate. Known
	// columns make the join partitionable.
	keyCols []int

	// mag pools output tuples (single-owner, see WindowJoin.mag).
	mag tuple.Magazine

	// DedupPunct is as for Union and WindowJoin.
	DedupPunct bool
	watermark  tuple.Time

	dataOut  uint64
	punctOut uint64
}

// NewMultiJoin builds an n-way symmetric window join (n ≥ 2, TSM rules).
func NewMultiJoin(name string, schema *tuple.Schema, n int, spec window.Spec, pred MultiPred) *MultiJoin {
	if n < 2 {
		panic(fmt.Sprintf("multijoin %s: need at least 2 inputs, got %d", name, n))
	}
	if err := spec.Validate(); err != nil {
		panic(fmt.Sprintf("multijoin %s: %v", name, err))
	}
	j := &MultiJoin{
		base:       base{name: name, inputs: n, schema: schema},
		pred:       pred,
		regs:       tsm.New(n),
		DedupPunct: true,
		watermark:  tuple.MinTime,
	}
	j.wins = make([]*window.Store, n)
	for i := range j.wins {
		j.wins[i] = window.NewStore(spec)
	}
	return j
}

// NewMultiEquiJoin builds an n-way symmetric window equi-join over one key
// column per input (n = len(cols) ≥ 2). Equivalent to NewMultiJoin with
// MultiEquiJoin(cols...), but the recorded columns make it partitionable.
func NewMultiEquiJoin(name string, schema *tuple.Schema, spec window.Spec, cols ...int) *MultiJoin {
	j := NewMultiJoin(name, schema, len(cols), spec, MultiEquiJoin(cols...))
	j.keyCols = append([]int(nil), cols...)
	return j
}

// Window exposes the window store of input i.
func (j *MultiJoin) Window(i int) *window.Store { return j.wins[i] }

// DataEmitted reports the number of joined combinations emitted.
func (j *MultiJoin) DataEmitted() uint64 { return j.dataOut }

// PunctEmitted reports the number of punctuation tuples emitted.
func (j *MultiJoin) PunctEmitted() uint64 { return j.punctOut }

// More implements the relaxed condition over all n inputs.
func (j *MultiJoin) More(ctx *Ctx) bool {
	j.regs.Observe(ctx.Ins)
	ok, _, _ := j.regs.More(ctx.Ins)
	return ok
}

// BlockingInput identifies the input to backtrack into.
func (j *MultiJoin) BlockingInput(ctx *Ctx) int {
	j.regs.Observe(ctx.Ins)
	if ok, _, _ := j.regs.More(ctx.Ins); ok {
		return -1
	}
	return j.regs.BlockingInput(ctx.Ins)
}

// Exec performs one production/consumption step.
func (j *MultiJoin) Exec(ctx *Ctx) bool {
	j.regs.Observe(ctx.Ins)
	ok, input, τ := j.regs.More(ctx.Ins)
	if !ok {
		return false
	}
	t := ctx.Ins[input].Pop()
	if !t.IsPunct() {
		if τ > j.watermark {
			j.watermark = τ
		}
		return j.produce(ctx, input, t)
	}
	// Punctuation: expire every other window against the bound, then
	// propagate the merged bound.
	for i, w := range j.wins {
		if i != input {
			w.ExpireTo(t.Ts)
		}
	}
	j.regs.Observe(ctx.Ins)
	bound, _ := j.regs.Min()
	if !j.DedupPunct {
		j.punctOut++
		ctx.Emit(t)
		return true
	}
	if bound > j.watermark && bound != tuple.MaxTime {
		j.watermark = bound
		j.punctOut++
		ctx.free(t)
		ctx.Emit(tuple.GetPunct(bound))
		return true
	}
	if t.IsEOS() && j.allEOS() {
		j.punctOut++
		ctx.free(t)
		ctx.Emit(tuple.EOS())
		return true
	}
	ctx.free(t) // absorbed: the bound did not advance
	return false
}

func (j *MultiJoin) allEOS() bool {
	for i := 0; i < j.regs.Len(); i++ {
		if j.regs.Get(i) != tuple.MaxTime {
			return false
		}
	}
	return true
}

// produce joins the arriving tuple against the cross product of the other
// windows, emits qualifying combinations (values concatenated in input
// order, timestamp the maximum across the combination — with ordered arcs
// that is the arriving tuple's own; after an over-estimated ETS admits a
// late tuple it keeps the output identical to ordered execution), and
// inserts the tuple into its own window.
func (j *MultiJoin) produce(ctx *Ctx, input int, t *tuple.Tuple) bool {
	n := len(j.wins)
	for i, w := range j.wins {
		if i != input {
			w.ExpireTo(t.Ts)
		}
	}
	combo := make([]*tuple.Tuple, n)
	combo[input] = t
	yield := false
	var walk func(i int)
	walk = func(i int) {
		if i == n {
			if !j.pred(combo) {
				return
			}
			size := 0
			ts := t.Ts
			for _, c := range combo {
				size += len(c.Vals)
				if c.Ts > ts {
					ts = c.Ts
				}
			}
			out := j.mag.GetData(ts, size)
			vals := out.Vals[:0]
			for _, c := range combo {
				vals = append(vals, c.Vals...)
			}
			out.Vals = vals
			out.Arrived = t.Arrived
			j.dataOut++
			yield = true
			ctx.Emit(out)
			return
		}
		if i == input {
			walk(i + 1)
			return
		}
		j.wins[i].Each(func(o *tuple.Tuple) {
			combo[i] = o
			walk(i + 1)
		})
		combo[i] = nil
	}
	walk(0)
	j.wins[input].Insert(t)
	return yield
}
