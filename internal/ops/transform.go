package ops

import (
	"repro/internal/tuple"
)

// Predicate decides whether a data tuple passes a selection.
type Predicate func(*tuple.Tuple) bool

// Mapper transforms a data tuple into another data tuple (or nil to drop
// it). Implementations must not mutate the input.
type Mapper func(*tuple.Tuple) *tuple.Tuple

// unary is the common machinery of single-input, non-IWP operators: the
// straightforward execution of §2 — produce the result with the input
// tuple's timestamp and consume the input — extended with punctuation
// pass-through (§4.2: non-IWP operators let punctuation tuples go through
// unchanged).
type unary struct {
	base
	apply func(*tuple.Tuple, *Ctx) bool // returns yield

	inData  uint64
	inPunct uint64
	out     uint64
}

func (u *unary) More(ctx *Ctx) bool { return !ctx.Ins[0].Empty() }

func (u *unary) BlockingInput(ctx *Ctx) int {
	if ctx.Ins[0].Empty() {
		return 0
	}
	return -1
}

func (u *unary) Exec(ctx *Ctx) bool {
	t := ctx.Ins[0].Pop()
	if t == nil {
		return false
	}
	if t.IsPunct() {
		u.inPunct++
		if t.Ckpt != 0 {
			// Stateless transforms have nothing to snapshot, but the engine
			// still counts every node's barrier application for completion.
			ctx.barrier(t.Ckpt, t.Ts)
		}
		ctx.Emit(t)
		return true
	}
	u.inData++
	yield := u.apply(t, ctx)
	if yield {
		u.out++
	}
	return yield
}

// Processed reports the number of data tuples consumed.
func (u *unary) Processed() uint64 { return u.inData }

// Emitted reports the number of data tuples produced.
func (u *unary) Emitted() uint64 { return u.out }

// Select is the selection operator σ: data tuples satisfying the predicate
// pass through unchanged; the rest are consumed silently. Punctuation always
// passes — a selection never weakens a timestamp bound.
type Select struct {
	unary
	pred    Predicate
	colPred ColPredicate

	keep    []bool
	scratch tuple.Tuple
}

// NewSelect builds a selection operator.
func NewSelect(name string, schema *tuple.Schema, pred Predicate) *Select {
	s := &Select{pred: pred}
	s.base = base{name: name, inputs: 1, schema: schema}
	s.apply = func(t *tuple.Tuple, ctx *Ctx) bool {
		if pred(t) {
			ctx.Emit(t)
			return true
		}
		ctx.free(t) // filtered out
		return false
	}
	return s
}

// Project is the projection operator π: it re-arranges a tuple's values
// according to a column index list computed by Schema.Project.
type Project struct {
	unary
	idx   []int
	ident bool // idx is a prefix-identity permutation (idx[i] == i)

	scratchCols []tuple.Col
}

// NewProject builds a projection keeping the columns at idx, in order.
func NewProject(name string, schema *tuple.Schema, idx []int) *Project {
	p := &Project{idx: append([]int(nil), idx...)}
	p.ident = true
	for i, j := range p.idx {
		if i != j {
			p.ident = false
			break
		}
	}
	p.base = base{name: name, inputs: 1, schema: schema}
	p.apply = func(t *tuple.Tuple, ctx *Ctx) bool {
		if p.ident && len(p.idx) == len(t.Vals) {
			// Identity projection: the tuple already has the output shape;
			// re-allocating Vals per tuple would only feed the GC.
			ctx.Emit(t)
			return true
		}
		vals := make([]tuple.Value, len(p.idx))
		for i, j := range p.idx {
			vals[i] = t.Vals[j]
		}
		out := &tuple.Tuple{Ts: t.Ts, Kind: tuple.Data, Vals: vals, Arrived: t.Arrived, Seq: t.Seq}
		ctx.free(t) // values were copied into out
		ctx.Emit(out)
		return true
	}
	return p
}

// Map applies an arbitrary tuple-to-tuple function; returning nil drops the
// tuple. The mapper must preserve the timestamp (the engine enforces arc
// order by construction, not by re-sorting).
type Map struct{ unary }

// NewMap builds a map operator.
func NewMap(name string, schema *tuple.Schema, fn Mapper) *Map {
	m := &Map{}
	m.base = base{name: name, inputs: 1, schema: schema}
	m.apply = func(t *tuple.Tuple, ctx *Ctx) bool {
		out := fn(t)
		if out == nil {
			return false
		}
		if out.Ts != t.Ts {
			out = out.WithTs(t.Ts)
		}
		ctx.Emit(out)
		return true
	}
	return m
}
