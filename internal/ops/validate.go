package ops

import (
	"fmt"

	"repro/internal/tuple"
)

// Violation describes one arc-discipline violation observed by a Validate
// operator.
type Violation struct {
	// Seq is the position in the validated stream (1-based).
	Seq uint64
	// Msg describes the violation.
	Msg string
}

func (v Violation) String() string { return fmt.Sprintf("#%d: %s", v.Seq, v.Msg) }

// Validate is a transparent assertion operator: it forwards every tuple
// unchanged while checking the discipline every arc in this system must
// obey —
//
//  1. timestamps are nondecreasing, and
//  2. punctuation is sound: no data tuple ever carries a timestamp smaller
//     than a previously seen punctuation's (an ETS is a promise about the
//     future; a violation means some upstream operator lied).
//
// Insert it between stages while developing custom operators, or wire it
// into tests; production graphs normally omit it. Violations are recorded
// (bounded) rather than panicking, so a misbehaving pipeline can still be
// inspected.
type Validate struct {
	base
	lastTs     tuple.Time
	bound      tuple.Time // strongest punctuation promise seen
	seq        uint64
	violations []Violation

	// MaxViolations bounds the recorded list (default 16).
	MaxViolations int
}

// NewValidate builds a validation operator.
func NewValidate(name string, schema *tuple.Schema) *Validate {
	return &Validate{
		base:          base{name: name, inputs: 1, schema: schema},
		lastTs:        tuple.MinTime,
		bound:         tuple.MinTime,
		MaxViolations: 16,
	}
}

// Violations returns the recorded violations.
func (v *Validate) Violations() []Violation { return v.violations }

// Ok reports whether no violation has been observed.
func (v *Validate) Ok() bool { return len(v.violations) == 0 }

// Checked reports the number of tuples validated.
func (v *Validate) Checked() uint64 { return v.seq }

func (v *Validate) record(format string, args ...interface{}) {
	if len(v.violations) >= v.MaxViolations {
		return
	}
	v.violations = append(v.violations, Violation{Seq: v.seq, Msg: fmt.Sprintf(format, args...)})
}

// More reports whether the input holds a tuple.
func (v *Validate) More(ctx *Ctx) bool { return !ctx.Ins[0].Empty() }

// BlockingInput returns 0 when the input is empty.
func (v *Validate) BlockingInput(ctx *Ctx) int {
	if ctx.Ins[0].Empty() {
		return 0
	}
	return -1
}

// Exec validates and forwards one tuple.
func (v *Validate) Exec(ctx *Ctx) bool {
	t := ctx.Ins[0].Pop()
	if t == nil {
		return false
	}
	v.seq++
	if t.Ts != tuple.MinTime && t.Ts < v.lastTs {
		v.record("timestamp order violated: %v after %v", t.Ts, v.lastTs)
	}
	if t.Ts > v.lastTs {
		v.lastTs = t.Ts
	}
	if t.IsPunct() {
		if t.Ts > v.bound {
			v.bound = t.Ts
		}
		if t.Ckpt != 0 {
			ctx.barrier(t.Ckpt, t.Ts)
		}
	} else if t.Ts != tuple.MinTime && t.Ts < v.bound {
		v.record("punctuation broken: data at %v after a promise of %v", t.Ts, v.bound)
	}
	ctx.Emit(t)
	return true
}
