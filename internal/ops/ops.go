// Package ops implements the query operators of the DSMS: sources, sinks,
// stateless transforms (selection, projection, map), the Idle-Waiting-Prone
// (IWP) operators — union and window join — and windowed aggregates.
//
// The IWP operators come in three modes mirroring the paper:
//
//   - Basic: the Figure-1 rules. An operator runs only when every input
//     buffer is non-empty; simultaneous tuples and drained inputs cause
//     idle-waiting.
//   - TSM: the Figure-6 rules. Time-Stamp Memory registers and the relaxed
//     `more` condition (Figure 5) let the operator run whenever some input
//     holds a tuple at the minimal register timestamp, and punctuation
//     tuples (ETS carriers) both unblock the operator and propagate
//     downstream.
//   - Latent: for latent-timestamp streams (§5) tuples pass through in
//     arrival order with no timestamp checks — the idle-waiting-free lower
//     bound the paper measures scenario D against.
package ops

import (
	"repro/internal/buffer"
	"repro/internal/ckpt"
	"repro/internal/tuple"
)

// Ctx carries the per-node execution environment an operator sees during one
// execution step: its input buffers, an emit function appending to the
// node's output arcs, and the engine's virtual clock.
type Ctx struct {
	// Ins are the operator's input buffers, one per input port.
	Ins []*buffer.Queue
	// Emit appends a tuple to every output arc of the node.
	Emit func(*tuple.Tuple)
	// EmitTo appends a tuple to out arc i only (arcs are indexed in the
	// order their consumers were attached). Routing operators — the hash
	// splitter of a partitioned subgraph — use it to send a tuple to one
	// shard instead of broadcasting; both engines provide it.
	EmitTo func(i int, t *tuple.Tuple)
	// Now returns the current virtual time.
	Now func() tuple.Time
	// Release, when non-nil, recycles a tuple the operator consumed
	// without forwarding (an absorbed punctuation, a filtered-out data
	// tuple, a sink-delivered result). The engine sets it only when it can
	// prove exclusive ownership — e.g. the concurrent runtime enables it
	// for fan-out-free graphs with Options.Recycle.
	Release func(*tuple.Tuple)
	// OnBarrier, when non-nil, is invoked by the operator the moment a
	// checkpoint barrier (a punctuation with Ckpt != 0) has fully applied
	// to it — after every input's barrier is aligned and before any
	// post-barrier tuple is processed. The engine snapshots the operator's
	// state inside the callback (on the node's own goroutine, so no
	// locking is needed); bound is the merged barrier timestamp the
	// operator conveys downstream.
	OnBarrier func(id uint64, bound tuple.Time)
}

// free recycles t through the engine's release hook, when one is installed.
func (c *Ctx) free(t *tuple.Tuple) {
	if c.Release != nil && t != nil {
		c.Release(t)
	}
}

// barrier reports a fully applied checkpoint barrier to the engine.
func (c *Ctx) barrier(id uint64, bound tuple.Time) {
	if c.OnBarrier != nil {
		c.OnBarrier(id, bound)
	}
}

// Stateful is implemented by operators whose state survives a crash through
// punctuation-aligned checkpoints. SaveState encodes the operator's complete
// state; it is called on the operator's own goroutine at a barrier, so it
// may read everything freely but must not block on I/O (the payload is
// persisted elsewhere). RestoreState decodes a payload produced by SaveState
// into a freshly constructed operator of the identical shape (same
// constructor arguments); it runs before the engine starts. Implementations
// must consume their payload exactly — the engine verifies with
// Decoder.Done.
type Stateful interface {
	SaveState(enc *ckpt.Encoder)
	RestoreState(dec *ckpt.Decoder) error
}

// Operator is one node's behaviour in the query graph. Implementations are
// stateful (windows, TSM registers, aggregates) and single-owner: the engine
// never executes the same Operator concurrently.
//
// The engine drives operators with the two-step cycle of Figure 3: Exec runs
// one execution step; More (the paper's `more` state variable) reports
// whether another step could make progress right now. Whether the step
// produced output (the `yield` variable) is Exec's return value.
type Operator interface {
	// Name identifies the operator in diagnostics and DOT output.
	Name() string
	// NumInputs reports the operator's input arity.
	NumInputs() int
	// OutSchema describes the tuples the operator emits, or nil when the
	// operator was assembled without schema information (low-level use).
	OutSchema() *tuple.Schema
	// More reports whether an execution step can currently make progress.
	More(ctx *Ctx) bool
	// Exec performs one execution step and reports whether it produced
	// output (yield). Exec must only be called when More is true.
	Exec(ctx *Ctx) bool
	// BlockingInput identifies the input port responsible for More being
	// false — the port the DFS Backtrack rule follows upstream — or -1
	// when the operator is not blocked on a specific input.
	BlockingInput(ctx *Ctx) int
}

// base provides the trivial parts of Operator.
type base struct {
	name   string
	inputs int
	schema *tuple.Schema
}

func (b *base) Name() string             { return b.name }
func (b *base) NumInputs() int           { return b.inputs }
func (b *base) OutSchema() *tuple.Schema { return b.schema }

// IWPMode selects the execution rules of an IWP operator.
type IWPMode uint8

const (
	// Basic uses the Figure-1 rules: run only when every input is
	// non-empty (idle-waiting prone, no punctuation awareness).
	Basic IWPMode = iota
	// TSM uses the Figure-6 rules with Time-Stamp Memory registers, the
	// relaxed more condition and punctuation propagation.
	TSM
	// LatentMode passes tuples through in arrival order without timestamp
	// checks (latent-timestamp streams never idle-wait).
	LatentMode
)

func (m IWPMode) String() string {
	switch m {
	case Basic:
		return "basic"
	case TSM:
		return "tsm"
	case LatentMode:
		return "latent"
	default:
		return "IWPMode(?)"
	}
}

// allNonEmpty implements the Figure-1 `more` condition.
func allNonEmpty(ins []*buffer.Queue) bool {
	for _, q := range ins {
		if q.Empty() {
			return false
		}
	}
	return true
}

// firstEmpty returns the index of the first empty input, or -1.
func firstEmpty(ins []*buffer.Queue) int {
	for i, q := range ins {
		if q.Empty() {
			return i
		}
	}
	return -1
}

// anyNonEmpty returns the index of the first non-empty input, or -1.
func anyNonEmpty(ins []*buffer.Queue) int {
	for i, q := range ins {
		if !q.Empty() {
			return i
		}
	}
	return -1
}
