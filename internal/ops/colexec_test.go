package ops

import (
	"fmt"
	"testing"

	"repro/internal/tuple"
)

// colCapture is the ColCtx analogue of the test harnesses: it collects
// emitted batches converted back to rows, broadcast and per-arc.
type colCapture struct {
	out  []*tuple.Tuple
	arcs [][]*tuple.Tuple
	ctx  *ColCtx
}

func newColCapture(arcs int) *colCapture {
	c := &colCapture{arcs: make([][]*tuple.Tuple, arcs)}
	c.ctx = &ColCtx{
		EmitCol: func(b *tuple.ColBatch) {
			c.out = b.AppendRows(c.out, nil)
			tuple.PutColBatch(b)
		},
		EmitColTo: func(i int, b *tuple.ColBatch) {
			c.arcs[i] = b.AppendRows(c.arcs[i], nil)
			tuple.PutColBatch(b)
		},
		Now:     func() tuple.Time { return 0 },
		FreeCol: tuple.PutColBatch,
	}
	return c
}

// toBatches chops a row stream into columnar batches of at most size rows
// (punctuation rides as metadata and does not count toward size).
func toBatches(stream []*tuple.Tuple, size int) []*tuple.ColBatch {
	var out []*tuple.ColBatch
	b := tuple.GetColBatch(0)
	for _, t := range stream {
		b.AppendTuple(t)
		if b.Len() >= size {
			out = append(out, b)
			b = tuple.GetColBatch(0)
		}
	}
	if !b.Empty() {
		out = append(out, b)
	} else {
		tuple.PutColBatch(b)
	}
	return out
}

// eqRowStream compares two streams on kind, timestamp and values (the
// fields both execution paths must agree on).
func eqRowStream(t *testing.T, label string, got, want []*tuple.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d tuples, want %d\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Kind != w.Kind || g.Ts != w.Ts || len(g.Vals) != len(w.Vals) {
			t.Fatalf("%s: tuple %d = %v, want %v", label, i, g, w)
		}
		for c := range w.Vals {
			if g.Vals[c].Kind() != w.Vals[c].Kind() || g.Vals[c].String() != w.Vals[c].String() {
				t.Fatalf("%s: tuple %d col %d = %v, want %v", label, i, c, g.Vals[c], w.Vals[c])
			}
		}
	}
}

func cloneStream(stream []*tuple.Tuple) []*tuple.Tuple {
	out := make([]*tuple.Tuple, len(stream))
	for i, t := range stream {
		out[i] = t.Clone()
	}
	return out
}

// mixedStream builds a deterministic stream with nulls, a mixed-kind
// column, interleaved punctuation and a terminal EOS. Columns:
// 0 int key, 1 float, 2 mixed (int/string/null).
func mixedStream(n int) []*tuple.Tuple {
	var out []*tuple.Tuple
	for i := 0; i < n; i++ {
		v2 := tuple.Value{}
		switch i % 3 {
		case 0:
			v2 = tuple.Int(int64(i))
		case 1:
			v2 = tuple.String_(fmt.Sprintf("s%d", i%5))
		}
		v1 := tuple.Float(float64(i%7) / 7)
		if i%11 == 0 {
			v1 = tuple.Value{}
		}
		out = append(out, &tuple.Tuple{
			Ts: tuple.Time(i * 10), Kind: tuple.Data,
			Vals: []tuple.Value{tuple.Int(int64(i % 8)), v1, v2},
			Seq:  uint64(i),
		})
		if i%13 == 5 {
			out = append(out, tuple.NewPunct(tuple.Time(i*10)))
		}
	}
	out = append(out, tuple.EOS())
	return out
}

// runRow drives an operator over the stream on the row path.
func runRow(op Operator, stream []*tuple.Tuple) []*tuple.Tuple {
	h := newHarness(op)
	for _, t := range stream {
		h.ins[0].Push(t)
	}
	h.run()
	return h.out
}

// runCol drives a ColOperator over the stream on the columnar path,
// with the stream chopped into batches of the given size.
func runCol(op ColOperator, stream []*tuple.Tuple, size int) []*tuple.Tuple {
	cap_ := newColCapture(0)
	for _, b := range toBatches(stream, size) {
		op.ExecCol(b, cap_.ctx)
	}
	return cap_.out
}

func TestSelectColEquivalence(t *testing.T) {
	pred := func(t *tuple.Tuple) bool { return t.Vals[1].AsFloat() < 0.5 }
	for _, size := range []int{1, 3, 64} {
		t.Run(fmt.Sprintf("fallback-size-%d", size), func(t *testing.T) {
			want := runRow(NewSelect("s", nil, pred), cloneStream(mixedStream(40)))
			got := runCol(NewSelect("s", nil, pred), cloneStream(mixedStream(40)), size)
			eqRowStream(t, "select", got, want)
		})
		t.Run(fmt.Sprintf("vectorized-size-%d", size), func(t *testing.T) {
			s := NewSelect("s", nil, pred)
			s.SetColPredicate(func(b *tuple.ColBatch, keep []bool) {
				for r := range keep {
					keep[r] = b.Value(1, r).AsFloat() < 0.5
				}
			})
			want := runRow(NewSelect("s", nil, pred), cloneStream(mixedStream(40)))
			got := runCol(s, cloneStream(mixedStream(40)), size)
			eqRowStream(t, "select", got, want)
		})
	}
	t.Run("all-pass-zero-copy", func(t *testing.T) {
		all := func(t *tuple.Tuple) bool { return true }
		want := runRow(NewSelect("s", nil, all), cloneStream(mixedStream(20)))
		got := runCol(NewSelect("s", nil, all), cloneStream(mixedStream(20)), 64)
		eqRowStream(t, "select", got, want)
	})
}

func TestProjectColEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		idx  []int
	}{
		{"reorder", []int{2, 0}},
		{"identity", []int{0, 1, 2}},
		{"duplicate", []int{1, 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := runRow(NewProject("p", nil, tc.idx), cloneStream(mixedStream(30)))
			got := runCol(NewProject("p", nil, tc.idx), cloneStream(mixedStream(30)), 7)
			eqRowStream(t, "project", got, want)
		})
	}
}

func TestSplitColEquivalence(t *testing.T) {
	const shards = 3
	run := func(stream []*tuple.Tuple, colSize int) ([][]*tuple.Tuple, [][]*tuple.Tuple) {
		s := NewSplit("sp", nil, shards, 0)
		h := newSplitHarness(s)
		for _, t := range cloneStream(stream) {
			h.in.Push(t)
		}
		h.run()

		s2 := NewSplit("sp", nil, shards, 0)
		cap_ := newColCapture(shards)
		for _, b := range toBatches(cloneStream(stream), colSize) {
			s2.ExecCol(b, cap_.ctx)
		}
		return h.arcs, cap_.arcs
	}
	stream := mixedStream(50)
	for _, size := range []int{1, 8, 64} {
		rowArcs, colArcs := run(stream, size)
		for k := 0; k < shards; k++ {
			eqRowStream(t, fmt.Sprintf("shard-%d-size-%d", k, size), colArcs[k], rowArcs[k])
		}
	}
}

func TestAggregateColEquivalence(t *testing.T) {
	mk := func() *Aggregate {
		return NewAggregate("a", nil, 100, 0, AggSpec{Fn: Sum, Col: 1}, AggSpec{Fn: Count})
	}
	// A stream whose float column is always non-null so sums agree exactly.
	var stream []*tuple.Tuple
	for i := 0; i < 60; i++ {
		stream = append(stream, tuple.NewData(tuple.Time(i*7),
			tuple.Int(int64(i%4)), tuple.Float(float64(i))))
		if i%10 == 9 {
			stream = append(stream, tuple.NewPunct(tuple.Time(i*7)))
		}
	}
	stream = append(stream, tuple.EOS())
	want := runRow(mk(), cloneStream(stream))
	for _, size := range []int{1, 5, 64} {
		got := runCol(mk(), cloneStream(stream), size)
		eqRowStream(t, fmt.Sprintf("aggregate-size-%d", size), got, want)
	}
}

// TestProjectColIdentityPassThrough pins the satellite fix: the row path's
// identity projection forwards the tuple unchanged (no copy), and the
// columnar path forwards the batch pointer itself.
func TestProjectColIdentityPassThrough(t *testing.T) {
	p := NewProject("p", nil, []int{0, 1})
	var got *tuple.ColBatch
	ctx := &ColCtx{EmitCol: func(b *tuple.ColBatch) { got = b }}
	b := tuple.GetColBatch(0)
	b.AppendTuple(tuple.NewData(1, tuple.Int(1), tuple.Int(2)))
	p.ExecCol(b, ctx)
	if got != b {
		t.Fatal("identity projection must forward the same batch")
	}
	tuple.PutColBatch(b)

	h := newHarness(NewProject("p", nil, []int{0, 1}))
	in := tuple.NewData(1, tuple.Int(1), tuple.Int(2))
	h.ins[0].Push(in)
	h.run()
	if len(h.out) != 1 || h.out[0] != in {
		t.Fatal("row identity projection must forward the same tuple")
	}
}
