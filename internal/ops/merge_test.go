package ops

import (
	"testing"

	"repro/internal/tuple"
)

// The min-watermark property: a punctuation entering the merge on some
// shards must not pass downstream until the slowest shard's register has
// advanced past it.
func TestMergeHoldsPunctUntilSlowestShard(t *testing.T) {
	m := NewMerge("m", nil, 3)
	h := newHarness(m)
	h.ins[0].Push(tuple.NewPunct(10))
	h.ins[1].Push(tuple.NewPunct(10))
	h.run()
	if len(h.out) != 0 {
		t.Fatalf("punct passed with shard 2 unheard: %v", h.out)
	}
	// The slowest shard advances: the bound min(registers)=10 may now pass.
	h.ins[2].Push(tuple.NewPunct(10))
	h.run()
	p := h.puncts()
	if len(p) != 1 || p[0].Ts != 10 {
		t.Fatalf("want one punct at 10, got %v", h.out)
	}
	// A later bound on a single shard is again held back.
	h.ins[0].Push(tuple.NewPunct(20))
	h.run()
	if len(h.puncts()) != 1 {
		t.Fatalf("punct 20 passed while shards 1,2 sit at 10: %v", h.out)
	}
}

// Data outpaces punctuation: the merge must deliver shard data in global
// timestamp order, governed by the slowest shard's bound.
func TestMergeOrdersShardData(t *testing.T) {
	m := NewMerge("m", nil, 2)
	h := newHarness(m)
	// Shard 0 runs ahead; shard 1 lags.
	h.ins[0].PushAll(tsOf(1, 4, 7))
	h.ins[1].PushAll(tsOf(2, 3))
	h.run()
	// regs = (1→4→7 as consumed, 2→3): pops 1,2,3 then blocks — shard 1's
	// register (3) bounds the merge; 4 and 7 must wait.
	wantTs(t, h.data(), 1, 2, 3)
	h.ins[1].Push(tuple.NewPunct(9))
	h.run()
	wantTs(t, h.data(), 1, 2, 3, 4, 7)
}

// Equal-timestamp tuples across shards must not deadlock the merge: the
// relaxed more condition (§4.1) runs whenever any input holds a tuple at the
// minimal register timestamp, and data is preferred over punctuation at the
// same timestamp.
func TestMergeSimultaneousTuplesNoDeadlock(t *testing.T) {
	m := NewMerge("m", nil, 2)
	h := newHarness(m)
	h.ins[0].Push(tuple.NewData(5, tuple.Int(0)))
	h.ins[0].Push(tuple.NewPunct(5))
	h.ins[1].Push(tuple.NewData(5, tuple.Int(1)))
	h.ins[1].Push(tuple.NewPunct(5))
	steps := h.run()
	if steps == 0 {
		t.Fatal("merge deadlocked on simultaneous tuples")
	}
	wantTs(t, h.data(), 5, 5)
	// Both inputs drained: nothing may remain buffered.
	if !h.ins[0].Empty() || !h.ins[1].Empty() {
		t.Fatalf("inputs not drained: %d/%d", h.ins[0].Len(), h.ins[1].Len())
	}
}

// EOS passes only after every shard has ended.
func TestMergeEOSAfterAllShards(t *testing.T) {
	m := NewMerge("m", nil, 2)
	h := newHarness(m)
	h.ins[0].Push(tuple.EOS())
	h.run()
	if len(h.out) != 0 {
		t.Fatalf("EOS passed with shard 1 open: %v", h.out)
	}
	h.ins[1].Push(tuple.NewData(3, tuple.Int(0)))
	h.ins[1].Push(tuple.EOS())
	h.run()
	wantTs(t, h.data(), 3)
	// Once every shard has ended, EOS propagates (one per consumed input
	// EOS, as for the plain TSM union).
	p := h.puncts()
	if len(p) == 0 {
		t.Fatal("no EOS after all shards ended")
	}
	for _, q := range p {
		if !q.IsEOS() {
			t.Fatalf("non-EOS punct escaped: %v", p)
		}
	}
}
