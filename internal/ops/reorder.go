package ops

import (
	"container/heap"

	"repro/internal/tuple"
)

// Reorder tolerates bounded disorder on its input: tuples may arrive up to
// Slack out of timestamp order and are re-emitted in order. It implements
// the "flexible time management" role the paper cites (Srivastava & Widom,
// PODS'04) as the other major use of punctuation, and it is the standard
// ingestion guard in front of the order-requiring operators of this system.
//
// Semantics: the operator buffers tuples in a min-heap by timestamp and
// releases a tuple once the *high-water mark* (the largest timestamp seen)
// exceeds it by at least Slack — no later in-bound tuple can precede it.
// Punctuation with timestamp τ asserts no future input tuple has ts < τ
// regardless of slack, so it flushes everything below τ and passes through
// with the bound reduced by nothing (the output is fully ordered, so the
// bound only strengthens). Tuples arriving later than the slack allows are
// dropped and counted (the documented late-tuple policy).
type Reorder struct {
	base
	// Slack is the maximum tolerated disorder.
	Slack tuple.Time

	heapq    tsHeap
	high     tuple.Time // high-water mark of input timestamps
	released tuple.Time // largest timestamp already emitted

	dropped uint64
	out     uint64
}

// NewReorder builds a reorder operator with the given slack bound.
func NewReorder(name string, schema *tuple.Schema, slack tuple.Time) *Reorder {
	if slack < 0 {
		panic("reorder: negative slack")
	}
	return &Reorder{
		base:     base{name: name, inputs: 1, schema: schema},
		Slack:    slack,
		high:     tuple.MinTime,
		released: tuple.MinTime,
	}
}

// Dropped reports the number of late tuples discarded.
func (r *Reorder) Dropped() uint64 { return r.dropped }

// Buffered reports the number of tuples currently held back.
func (r *Reorder) Buffered() int { return len(r.heapq) }

// Emitted reports the number of data tuples released.
func (r *Reorder) Emitted() uint64 { return r.out }

// More reports whether the input holds a tuple.
func (r *Reorder) More(ctx *Ctx) bool { return !ctx.Ins[0].Empty() }

// BlockingInput returns 0 when the input is empty.
func (r *Reorder) BlockingInput(ctx *Ctx) int {
	if ctx.Ins[0].Empty() {
		return 0
	}
	return -1
}

// Exec consumes one input tuple and releases everything the new high-water
// mark (or punctuation bound) proves safe.
func (r *Reorder) Exec(ctx *Ctx) bool {
	t := ctx.Ins[0].Pop()
	if t == nil {
		return false
	}
	yield := false
	if t.IsPunct() {
		// A bound flushes everything below it, then passes through.
		yield = r.release(ctx, t.Ts)
		if t.Ts > r.released {
			r.released = t.Ts
		}
		if t.Ts > r.high {
			r.high = t.Ts
		}
		if t.Ckpt != 0 {
			ctx.barrier(t.Ckpt, t.Ts)
		}
		ctx.Emit(t)
		return true
	}
	if t.Ts <= r.released && r.released != tuple.MinTime {
		// Too late: releasing it would disorder the output arc.
		// (Equal timestamps are fine — simultaneous tuples.)
		if t.Ts < r.released {
			r.dropped++
			ctx.free(t)
			return yield
		}
	}
	heap.Push(&r.heapq, t)
	if t.Ts > r.high {
		r.high = t.Ts
	}
	if r.Slack < r.high { // guard MinTime underflow
		yield = r.release(ctx, r.high-r.Slack) || yield
	}
	return yield
}

// release emits buffered tuples with ts ≤ bound: a bound of τ promises that
// nothing earlier than τ remains in flight, and equal timestamps
// (simultaneous tuples) are safe to release together.
func (r *Reorder) release(ctx *Ctx, bound tuple.Time) bool {
	yield := false
	for len(r.heapq) > 0 && r.heapq[0].Ts <= bound {
		t := heap.Pop(&r.heapq).(*tuple.Tuple)
		if t.Ts > r.released {
			r.released = t.Ts
		}
		r.out++
		yield = true
		ctx.Emit(t)
	}
	return yield
}

// tsHeap is a min-heap of tuples by timestamp.
type tsHeap []*tuple.Tuple

func (h tsHeap) Len() int            { return len(h) }
func (h tsHeap) Less(i, j int) bool  { return h[i].Ts < h[j].Ts }
func (h tsHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *tsHeap) Push(x interface{}) { *h = append(*h, x.(*tuple.Tuple)) }
func (h *tsHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
