package ops

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/tuple"
)

// Checkpoint encodings (ops.Stateful) for the stateful operators. Every
// payload starts with an operator-kind byte followed by the operator's shape
// (constructor arguments); RestoreState validates the shape against the
// rebuilt graph before touching any state, so a snapshot only ever restores
// into the plan that produced it. Encodings are canonical — map-backed state
// is written in sorted order — so save → restore → save is byte-identical,
// which the fuzz round-trip test relies on.
//
// Alignment stash and pending-retarget state are deliberately *not*
// checkpointed: both hold post-barrier information. Stashed tuples replay
// from the clients' retained batches after restore, and an abandoned
// retarget is reissued by the controller.

// Operator-kind tags, the first byte of every payload.
const (
	stateSource uint8 = 1 + iota
	stateSink
	stateUnion
	stateJoin
	stateMultiJoin
	stateAggregate
	stateReorder
	stateSplit
)

func shapeErr(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ckpt.ErrCorrupt}, args...)...)
}

// --- Source ---

// SaveState encodes the source's emission cut: the sequence watermark (the
// exactly-once replay boundary), the counters, and the ETS estimator's
// promise history.
func (s *Source) SaveState(enc *ckpt.Encoder) {
	enc.U8(stateSource)
	enc.U8(uint8(s.tsKind))
	enc.Uvarint(s.seq)
	enc.Uvarint(s.emitted)
	enc.Uvarint(s.etsEmitted)
	enc.Bool(s.est != nil)
	if s.est != nil {
		lastTs, lastArrival, seen, lastETS, hasETS := s.est.State()
		enc.Time(lastTs)
		enc.Time(lastArrival)
		enc.Bool(seen)
		enc.Time(lastETS)
		enc.Bool(hasETS)
	}
}

// RestoreState rebuilds the source's cut from dec.
func (s *Source) RestoreState(dec *ckpt.Decoder) error {
	if k := dec.U8(); k != stateSource {
		return shapeErr("source %s: payload kind %d", s.name, k)
	}
	if kind := tuple.TSKind(dec.U8()); dec.Err() == nil && kind != s.tsKind {
		return shapeErr("source %s: saved ts kind %v, have %v", s.name, kind, s.tsKind)
	}
	seq := dec.Uvarint()
	emitted := dec.Uvarint()
	etsEmitted := dec.Uvarint()
	hasEst := dec.Bool()
	if dec.Err() == nil && hasEst != (s.est != nil) {
		return shapeErr("source %s: estimator presence mismatch", s.name)
	}
	if hasEst {
		lastTs := dec.Time()
		lastArrival := dec.Time()
		seen := dec.Bool()
		lastETS := dec.Time()
		hasETS := dec.Bool()
		if err := dec.Err(); err != nil {
			return err
		}
		s.est.SetState(lastTs, lastArrival, seen, lastETS, hasETS)
	}
	if err := dec.Err(); err != nil {
		return err
	}
	s.seq, s.emitted, s.etsEmitted = seq, emitted, etsEmitted
	return nil
}

// --- Sink ---

// SaveState encodes the sink's counters and, when StateHooks is installed,
// the application payload.
func (s *Sink) SaveState(enc *ckpt.Encoder) {
	enc.U8(stateSink)
	enc.Uvarint(s.received)
	enc.Uvarint(s.punct)
	enc.Bool(s.saveHook != nil)
	if s.saveHook != nil {
		s.saveHook(enc)
	}
}

// RestoreState rebuilds the sink (and its application hook's state) from dec.
func (s *Sink) RestoreState(dec *ckpt.Decoder) error {
	if k := dec.U8(); k != stateSink {
		return shapeErr("sink %s: payload kind %d", s.name, k)
	}
	received := dec.Uvarint()
	punct := dec.Uvarint()
	hasHook := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	if hasHook != (s.restoreHook != nil) {
		return shapeErr("sink %s: state-hook presence mismatch", s.name)
	}
	if hasHook {
		if err := s.restoreHook(dec); err != nil {
			return err
		}
	}
	if err := dec.Err(); err != nil {
		return err
	}
	s.received, s.punct = received, punct
	return nil
}

// --- Union (and Merge, via embedding) ---

// SaveState encodes the union's watermark, counters, and TSM registers.
func (u *Union) SaveState(enc *ckpt.Encoder) {
	enc.U8(stateUnion)
	enc.U8(uint8(u.mode))
	enc.Time(u.watermark)
	enc.I64(int64(u.rr))
	enc.Uvarint(u.dataOut)
	enc.Uvarint(u.punctOut)
	enc.Bool(u.regs != nil)
	if u.regs != nil {
		enc.Uvarint(uint64(u.regs.Len()))
		for i := 0; i < u.regs.Len(); i++ {
			enc.Time(u.regs.Get(i))
		}
	}
}

// RestoreState rebuilds the union from dec.
func (u *Union) RestoreState(dec *ckpt.Decoder) error {
	if k := dec.U8(); k != stateUnion {
		return shapeErr("union %s: payload kind %d", u.name, k)
	}
	if m := IWPMode(dec.U8()); dec.Err() == nil && m != u.mode {
		return shapeErr("union %s: saved mode %v, have %v", u.name, m, u.mode)
	}
	watermark := dec.Time()
	rr := dec.I64()
	dataOut := dec.Uvarint()
	punctOut := dec.Uvarint()
	hasRegs := dec.Bool()
	if dec.Err() == nil && hasRegs != (u.regs != nil) {
		return shapeErr("union %s: register presence mismatch", u.name)
	}
	if hasRegs {
		if n := dec.Uvarint(); dec.Err() == nil && n != uint64(u.regs.Len()) {
			return shapeErr("union %s: saved %d registers, have %d", u.name, n, u.regs.Len())
		}
		for i := 0; i < u.regs.Len(); i++ {
			u.regs.Set(i, dec.Time())
		}
	}
	if err := dec.Err(); err != nil {
		return err
	}
	u.watermark, u.rr = watermark, int(rr)
	u.dataOut, u.punctOut = dataOut, punctOut
	return nil
}

// --- WindowJoin ---

// SaveState encodes the join's shape, watermark, counters, registers, and
// both window stores.
func (j *WindowJoin) SaveState(enc *ckpt.Encoder) {
	enc.U8(stateJoin)
	enc.U8(uint8(j.mode))
	enc.Bool(j.hashed)
	enc.Bool(j.hasKeys)
	enc.I64(int64(j.keyCols[0]))
	enc.I64(int64(j.keyCols[1]))
	enc.Time(j.watermark)
	enc.Uvarint(j.dataOut)
	enc.Uvarint(j.punctOut)
	enc.Uvarint(j.consumed[0])
	enc.Uvarint(j.consumed[1])
	enc.Bool(j.regs != nil)
	if j.regs != nil {
		enc.Time(j.regs.Get(0))
		enc.Time(j.regs.Get(1))
	}
	for i := 0; i < 2; i++ {
		if j.hashed {
			j.hwin[i].SaveState(enc)
		} else {
			j.win[i].SaveState(enc)
		}
	}
}

// RestoreState rebuilds the join from dec.
func (j *WindowJoin) RestoreState(dec *ckpt.Decoder) error {
	if k := dec.U8(); k != stateJoin {
		return shapeErr("join %s: payload kind %d", j.name, k)
	}
	m := IWPMode(dec.U8())
	hashed := dec.Bool()
	hasKeys := dec.Bool()
	kc0 := dec.I64()
	kc1 := dec.I64()
	if err := dec.Err(); err != nil {
		return err
	}
	if m != j.mode || hashed != j.hashed || hasKeys != j.hasKeys ||
		kc0 != int64(j.keyCols[0]) || kc1 != int64(j.keyCols[1]) {
		return shapeErr("join %s: shape mismatch", j.name)
	}
	watermark := dec.Time()
	dataOut := dec.Uvarint()
	punctOut := dec.Uvarint()
	consumed0 := dec.Uvarint()
	consumed1 := dec.Uvarint()
	hasRegs := dec.Bool()
	if dec.Err() == nil && hasRegs != (j.regs != nil) {
		return shapeErr("join %s: register presence mismatch", j.name)
	}
	if hasRegs {
		j.regs.Set(0, dec.Time())
		j.regs.Set(1, dec.Time())
	}
	for i := 0; i < 2; i++ {
		var err error
		if j.hashed {
			err = j.hwin[i].RestoreState(dec)
		} else {
			err = j.win[i].RestoreState(dec)
		}
		if err != nil {
			return err
		}
	}
	if err := dec.Err(); err != nil {
		return err
	}
	j.watermark = watermark
	j.dataOut, j.punctOut = dataOut, punctOut
	j.consumed[0], j.consumed[1] = consumed0, consumed1
	return nil
}

// --- MultiJoin ---

// SaveState encodes the n-way join's shape, probe order and evidence,
// watermark, counters, registers, and every window.
func (j *MultiJoin) SaveState(enc *ckpt.Encoder) {
	n := len(j.wins)
	enc.U8(stateMultiJoin)
	enc.Uvarint(uint64(n))
	enc.Bool(j.keyCols != nil)
	for _, c := range j.keyCols {
		enc.I64(int64(c))
	}
	enc.Time(j.watermark)
	enc.Uvarint(j.dataOut)
	enc.Uvarint(j.punctOut)
	ord := j.order.Load()
	enc.Bool(ord != nil)
	if ord != nil {
		for _, i := range *ord {
			enc.Uvarint(uint64(i))
		}
	}
	for i := 0; i < n; i++ {
		enc.Uvarint(j.probes[i].Load())
		enc.Uvarint(j.visits[i].Load())
		enc.Uvarint(j.passed[i].Load())
	}
	for i := 0; i < n; i++ {
		enc.Time(j.regs.Get(i))
	}
	for _, w := range j.wins {
		w.SaveState(enc)
	}
}

// RestoreState rebuilds the n-way join from dec.
func (j *MultiJoin) RestoreState(dec *ckpt.Decoder) error {
	n := len(j.wins)
	if k := dec.U8(); k != stateMultiJoin {
		return shapeErr("multijoin %s: payload kind %d", j.name, k)
	}
	if sn := dec.Uvarint(); dec.Err() == nil && sn != uint64(n) {
		return shapeErr("multijoin %s: saved %d inputs, have %d", j.name, sn, n)
	}
	if hasKeys := dec.Bool(); dec.Err() == nil && hasKeys != (j.keyCols != nil) {
		return shapeErr("multijoin %s: key-column presence mismatch", j.name)
	}
	for _, c := range j.keyCols {
		if sc := dec.I64(); dec.Err() == nil && sc != int64(c) {
			return shapeErr("multijoin %s: key column mismatch", j.name)
		}
	}
	watermark := dec.Time()
	dataOut := dec.Uvarint()
	punctOut := dec.Uvarint()
	if hasOrd := dec.Bool(); hasOrd {
		ord := make([]int, n)
		for i := range ord {
			ord[i] = int(dec.Uvarint())
		}
		if err := dec.Err(); err != nil {
			return err
		}
		if !j.SetProbeOrder(ord) {
			return shapeErr("multijoin %s: invalid saved probe order", j.name)
		}
	}
	for i := 0; i < n; i++ {
		j.probes[i].Store(dec.Uvarint())
		j.visits[i].Store(dec.Uvarint())
		j.passed[i].Store(dec.Uvarint())
	}
	for i := 0; i < n; i++ {
		j.regs.Set(i, dec.Time())
	}
	for _, w := range j.wins {
		if err := w.RestoreState(dec); err != nil {
			return err
		}
	}
	if err := dec.Err(); err != nil {
		return err
	}
	j.watermark = watermark
	j.dataOut, j.punctOut = dataOut, punctOut
	return nil
}

// --- Aggregate ---

// sortedValues returns m's keys in a canonical total order: Compare first,
// then kind (Int(1) and Float(1) compare equal but are distinct keys), then
// hash as the last resort (distinct NaN payloads).
func sortedValues[V any](m map[tuple.Value]V) []tuple.Value {
	keys := make([]tuple.Value, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if c := keys[a].Compare(keys[b]); c != 0 {
			return c < 0
		}
		if keys[a].Kind() != keys[b].Kind() {
			return keys[a].Kind() < keys[b].Kind()
		}
		return keys[a].Hash() < keys[b].Hash()
	})
	return keys
}

// SaveState encodes the aggregate's shape, bound, counters, and every open
// window's accumulators (windows and group keys in canonical order).
func (a *Aggregate) SaveState(enc *ckpt.Encoder) {
	enc.U8(stateAggregate)
	enc.Time(a.width)
	enc.Time(a.slide)
	enc.I64(int64(a.groupCol))
	enc.Uvarint(uint64(len(a.aggs)))
	for _, sp := range a.aggs {
		enc.U8(uint8(sp.Fn))
		enc.I64(int64(sp.Col))
	}
	enc.Time(a.bound)
	enc.Uvarint(a.rowsOut)
	enc.Uvarint(a.punctOut)
	windows := make([]int64, 0, len(a.buckets))
	for w := range a.buckets {
		windows = append(windows, w)
	}
	sort.Slice(windows, func(i, j int) bool { return windows[i] < windows[j] })
	enc.Uvarint(uint64(len(windows)))
	for _, w := range windows {
		groups := a.buckets[w]
		enc.I64(w)
		enc.Uvarint(uint64(len(groups)))
		for _, key := range sortedValues(groups) {
			enc.Value(key)
			for _, ac := range groups[key] {
				enc.I64(ac.n)
				enc.U64(math.Float64bits(ac.sum))
				enc.Value(ac.min)
				enc.Value(ac.max)
				enc.Bool(ac.seen)
			}
		}
	}
}

// RestoreState rebuilds the aggregate from dec.
func (a *Aggregate) RestoreState(dec *ckpt.Decoder) error {
	if k := dec.U8(); k != stateAggregate {
		return shapeErr("aggregate %s: payload kind %d", a.name, k)
	}
	width := dec.Time()
	slide := dec.Time()
	groupCol := dec.I64()
	nAggs := dec.Uvarint()
	if err := dec.Err(); err != nil {
		return err
	}
	if width != a.width || slide != a.slide || groupCol != int64(a.groupCol) || nAggs != uint64(len(a.aggs)) {
		return shapeErr("aggregate %s: shape mismatch", a.name)
	}
	for _, sp := range a.aggs {
		fn := dec.U8()
		col := dec.I64()
		if dec.Err() == nil && (fn != uint8(sp.Fn) || col != int64(sp.Col)) {
			return shapeErr("aggregate %s: aggregate spec mismatch", a.name)
		}
	}
	bound := dec.Time()
	rowsOut := dec.Uvarint()
	punctOut := dec.Uvarint()
	nWindows := dec.Uvarint()
	if err := dec.Err(); err != nil {
		return err
	}
	if nWindows > uint64(dec.Remaining()) {
		return shapeErr("aggregate %s: %d windows in %d bytes", a.name, nWindows, dec.Remaining())
	}
	buckets := make(map[int64]map[tuple.Value][]*acc, nWindows)
	for wi := uint64(0); wi < nWindows; wi++ {
		w := dec.I64()
		nGroups := dec.Uvarint()
		if err := dec.Err(); err != nil {
			return err
		}
		if nGroups > uint64(dec.Remaining()) {
			return shapeErr("aggregate %s: %d groups in %d bytes", a.name, nGroups, dec.Remaining())
		}
		groups := make(map[tuple.Value][]*acc, nGroups)
		for gi := uint64(0); gi < nGroups; gi++ {
			key := dec.Value()
			accs := make([]*acc, len(a.aggs))
			for i := range accs {
				ac := &acc{}
				ac.n = dec.I64()
				ac.sum = math.Float64frombits(dec.U64())
				ac.min = dec.Value()
				ac.max = dec.Value()
				ac.seen = dec.Bool()
				accs[i] = ac
			}
			if err := dec.Err(); err != nil {
				return err
			}
			groups[key] = accs
		}
		buckets[w] = groups
	}
	if err := dec.Err(); err != nil {
		return err
	}
	a.buckets = buckets
	a.bound = bound
	a.rowsOut, a.punctOut = rowsOut, punctOut
	return nil
}

// --- Reorder ---

// SaveState encodes the reorder buffer: the marks, the counters, and the
// held-back tuples in canonical (Ts, Seq, Arrived) order.
func (r *Reorder) SaveState(enc *ckpt.Encoder) {
	enc.U8(stateReorder)
	enc.Time(r.Slack)
	enc.Time(r.high)
	enc.Time(r.released)
	enc.Uvarint(r.dropped)
	enc.Uvarint(r.out)
	held := append([]*tuple.Tuple(nil), r.heapq...)
	sort.Slice(held, func(i, j int) bool {
		if held[i].Ts != held[j].Ts {
			return held[i].Ts < held[j].Ts
		}
		if held[i].Seq != held[j].Seq {
			return held[i].Seq < held[j].Seq
		}
		return held[i].Arrived < held[j].Arrived
	})
	enc.Uvarint(uint64(len(held)))
	for _, t := range held {
		enc.Tuple(t)
	}
}

// RestoreState rebuilds the reorder buffer from dec.
func (r *Reorder) RestoreState(dec *ckpt.Decoder) error {
	if k := dec.U8(); k != stateReorder {
		return shapeErr("reorder %s: payload kind %d", r.name, k)
	}
	if slack := dec.Time(); dec.Err() == nil && slack != r.Slack {
		return shapeErr("reorder %s: saved slack %v, have %v", r.name, slack, r.Slack)
	}
	high := dec.Time()
	released := dec.Time()
	dropped := dec.Uvarint()
	out := dec.Uvarint()
	n := dec.Uvarint()
	if err := dec.Err(); err != nil {
		return err
	}
	if n > uint64(dec.Remaining()) {
		return shapeErr("reorder %s: %d held tuples in %d bytes", r.name, n, dec.Remaining())
	}
	held := make(tsHeap, 0, n)
	for i := uint64(0); i < n; i++ {
		t := dec.Tuple()
		if t == nil {
			return dec.Err()
		}
		held = append(held, t)
	}
	heap.Init(&held)
	r.heapq = held
	r.high, r.released = high, released
	r.dropped, r.out = dropped, out
	return nil
}

// --- Split ---

// SaveState encodes the splitter's routing state: the live bucket→shard
// table, its version, the round-robin cursor, and the timestamp high mark. A
// pending retarget is deliberately dropped — its fence is post-barrier and
// the controller reissues it.
func (s *Split) SaveState(enc *ckpt.Encoder) {
	enc.U8(stateSplit)
	enc.I64(int64(s.shards))
	enc.I64(int64(s.key))
	enc.I64(int64(s.rr))
	enc.U64(s.version.Load())
	enc.I64(s.maxTs.Load())
	for _, sh := range *s.cur.Load() {
		enc.Uvarint(uint64(sh))
	}
}

// RestoreState rebuilds the splitter's routing state from dec.
func (s *Split) RestoreState(dec *ckpt.Decoder) error {
	if k := dec.U8(); k != stateSplit {
		return shapeErr("split %s: payload kind %d", s.name, k)
	}
	shards := dec.I64()
	key := dec.I64()
	if err := dec.Err(); err != nil {
		return err
	}
	if shards != int64(s.shards) || key != int64(s.key) {
		return shapeErr("split %s: shape mismatch", s.name)
	}
	rr := dec.I64()
	version := dec.U64()
	maxTs := dec.I64()
	assign := make([]int32, SplitBuckets)
	for b := range assign {
		sh := dec.Uvarint()
		if dec.Err() == nil && sh >= uint64(s.shards) {
			return shapeErr("split %s: bucket %d routed to shard %d of %d", s.name, b, sh, s.shards)
		}
		assign[b] = int32(sh)
	}
	if err := dec.Err(); err != nil {
		return err
	}
	s.rr = int(rr)
	s.version.Store(version)
	s.maxTs.Store(maxTs)
	s.cur.Store(&assign)
	return nil
}
