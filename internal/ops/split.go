package ops

import (
	"fmt"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/tuple"
)

// SplitBuckets is the granularity of the splitter's re-assignable routing
// table: a data tuple's key hashes into one of SplitBuckets consistent-hash
// buckets, and the bucket→shard table says which shard owns it. 256 buckets
// keep the table one cache line per 64 shards while leaving the adaptive
// controller enough granularity to peel individual hot key groups off an
// overloaded shard.
const SplitBuckets = 256

// splitRetarget is a pending bucket→shard re-assignment fenced on a
// punctuation barrier: tuples timestamped at or above Barrier route through
// Assign, older tuples through the current table, and the current table is
// retired once a punctuation ≥ Barrier proves no older data can follow.
type splitRetarget struct {
	assign  []int32
	barrier tuple.Time
	version uint64
}

// Split is the hash-partitioning router inserted on each input arc of a
// partitioned operator. It consumes one stream and routes every data tuple to
// exactly one of its shard out-arcs — by hashing the key column into a
// bucket of the assignment table, or round-robin when the operator has no
// key for this input — while *broadcasting* every punctuation tuple to all
// shards so each shard's TSM registers keep advancing.
//
// Punctuation is broadcast as fresh copies (one GetPunct per arc), never as a
// shared pointer: every tuple leaving the splitter has exactly one owner, so
// the runtime's recycling stays sound even though the node fans out.
//
// The bucket table is re-assignable at runtime (Retarget): the adaptive
// controller moves hot buckets between shards at a punctuation barrier.
// Routing is a pure function of (key hash, tuple timestamp, published
// tables), so the splitters feeding different input ports of one sharded
// operator stay key-co-located as long as they are given the same assignment
// and barrier — which is how the controller issues them.
type Split struct {
	base
	shards int
	key    int // key column, or -1 for round-robin routing
	rr     int
	routed *metrics.PerShard

	// cur is the live bucket→shard table (len SplitBuckets); pending, when
	// non-nil, is a retarget waiting for its barrier punctuation. Both are
	// written by Retarget/promotion and read on the hot path, hence atomic.
	cur     atomic.Pointer[[]int32]
	pending atomic.Pointer[splitRetarget]
	version atomic.Uint64 // bumps when a retarget is promoted (applied)

	// load counts data tuples per bucket since the last Rate() poll by the
	// controller — the skew evidence Balance() consumes.
	load *metrics.PerShard
	// maxTs is the highest data timestamp routed so far; the controller
	// picks retarget barriers above it so the fence is in the future.
	maxTs atomic.Int64
	// onApply, when set, runs on the splitter's own goroutine at the
	// punctuation that promotes a retarget — the quiescence witness hook the
	// controller uses to emit EvRetuneApplied.
	onApply atomic.Pointer[func(barrier tuple.Time)]

	// columnar-path scratch: per-shard gather batches and the vectorized
	// key-hash column (see ExecCol in colexec.go).
	colOuts []*tuple.ColBatch
	hashes  []uint64
}

// NewSplit builds a splitter routing one input stream to shards out-arcs.
// key is the column index hashed to pick a shard, or -1 to route data tuples
// round-robin (used when the downstream operator is key-agnostic on this
// input, e.g. a sharded union).
func NewSplit(name string, schema *tuple.Schema, shards, key int) *Split {
	if shards < 2 {
		panic(fmt.Sprintf("split %s: need at least 2 shards, got %d", name, shards))
	}
	s := &Split{
		base:   base{name: name, inputs: 1, schema: schema},
		shards: shards,
		key:    key,
		routed: metrics.NewPerShard(shards),
		load:   metrics.NewPerShard(SplitBuckets),
	}
	assign := make([]int32, SplitBuckets)
	for b := range assign {
		assign[b] = int32(b % shards)
	}
	s.cur.Store(&assign)
	return s
}

// Shards reports the splitter's fan-out.
func (s *Split) Shards() int { return s.shards }

// Key reports the routing column, or -1 for round-robin.
func (s *Split) Key() int { return s.key }

// Routed exposes the per-shard routed-tuple counters (data tuples only).
func (s *Split) Routed() *metrics.PerShard { return s.routed }

// BucketLoads exposes the per-bucket routed-tuple counters.
func (s *Split) BucketLoads() *metrics.PerShard { return s.load }

// Assignment returns a copy of the live bucket→shard table.
func (s *Split) Assignment() []int32 {
	return append([]int32(nil), (*s.cur.Load())...)
}

// AssignVersion counts promoted retargets; the controller polls it to learn
// that a Retarget it issued has been applied at its barrier.
func (s *Split) AssignVersion() uint64 { return s.version.Load() }

// RetargetPending reports whether a retarget has been issued but not yet
// promoted. A splitter group with any pending member must not be retargeted
// again: issuing to only some members would break key co-location.
func (s *Split) RetargetPending() bool { return s.pending.Load() != nil }

// MaxTs reports the highest data timestamp the splitter has routed.
func (s *Split) MaxTs() tuple.Time { return tuple.Time(s.maxTs.Load()) }

// OnApply installs fn to run (on the splitter's goroutine) at the
// punctuation boundary that promotes a retarget; nil removes it.
func (s *Split) OnApply(fn func(barrier tuple.Time)) {
	if fn == nil {
		s.onApply.Store(nil)
		return
	}
	s.onApply.Store(&fn)
}

// Retarget publishes a new bucket→shard assignment fenced on a punctuation
// barrier. Data tuples with Ts ≥ barrier route through assign immediately
// (they are ahead of the fence); older tuples keep the current table until a
// punctuation ≥ barrier proves the old cohort is complete, at which point
// the new table becomes current. Because routing depends only on the tuple's
// own timestamp, every splitter of a sharded operator given the same
// (assign, barrier) keeps equal-key tuples co-located through the swap.
//
// Returns false (rejecting the retarget) for round-robin splitters — their
// routing is stateless by design — for a malformed table, or when a previous
// retarget is still waiting on its barrier (the controller retries on a
// later tick rather than stacking fences).
func (s *Split) Retarget(assign []int32, barrier tuple.Time) bool {
	if s.key < 0 || len(assign) != SplitBuckets {
		return false
	}
	for _, sh := range assign {
		if sh < 0 || int(sh) >= s.shards {
			return false
		}
	}
	next := &splitRetarget{
		assign:  append([]int32(nil), assign...),
		barrier: barrier,
		version: s.version.Load() + 1,
	}
	return s.pending.CompareAndSwap(nil, next)
}

// route picks the shard for a data tuple from its key hash and timestamp.
func (s *Split) route(hash uint64, ts tuple.Time) int {
	b := hash % SplitBuckets
	s.load.Add(int(b), 1)
	if p := s.pending.Load(); p != nil && ts >= p.barrier {
		return int(p.assign[b])
	}
	return int((*s.cur.Load())[b])
}

// noteTs records a routed data timestamp for barrier selection.
func (s *Split) noteTs(ts tuple.Time) {
	if int64(ts) > s.maxTs.Load() {
		s.maxTs.Store(int64(ts))
	}
}

// promote retires the old table if punctuation ts clears a pending barrier.
// Runs only on the splitter's own goroutine (Exec/ExecCol), which is what
// makes the punctuation a true quiescent point for this arc.
func (s *Split) promote(ts tuple.Time) {
	p := s.pending.Load()
	if p == nil || ts < p.barrier {
		return
	}
	s.cur.Store(&p.assign)
	s.pending.Store(nil)
	s.version.Store(p.version)
	if fn := s.onApply.Load(); fn != nil {
		(*fn)(p.barrier)
	}
}

// More reports whether the input holds a tuple.
func (s *Split) More(ctx *Ctx) bool { return !ctx.Ins[0].Empty() }

// BlockingInput returns 0 when the input is empty.
func (s *Split) BlockingInput(ctx *Ctx) int {
	if ctx.Ins[0].Empty() {
		return 0
	}
	return -1
}

// Exec routes one tuple: data to its shard, punctuation to every shard.
func (s *Split) Exec(ctx *Ctx) bool {
	t := ctx.Ins[0].Pop()
	if t == nil {
		return false
	}
	if t.IsPunct() {
		s.promote(t.Ts)
		// Each shard gets its own copy so ownership stays single; EOS
		// (a punctuation at MaxTime) broadcasts the same way, and a
		// checkpoint barrier's tag rides every copy — each shard aligns on
		// its own barrier.
		for k := 0; k < s.shards; k++ {
			p := tuple.GetPunct(t.Ts)
			p.Ckpt = t.Ckpt
			ctx.EmitTo(k, p)
		}
		if t.Ckpt != 0 {
			ctx.barrier(t.Ckpt, t.Ts)
		}
		ctx.free(t)
		return true
	}
	var k int
	if s.key < 0 || s.key >= len(t.Vals) {
		k = s.rr
		s.rr = (s.rr + 1) % s.shards
	} else {
		k = s.route(t.Vals[s.key].Hash(), t.Ts)
		s.noteTs(t.Ts)
	}
	s.routed.Add(k, 1)
	ctx.EmitTo(k, t)
	return true
}
