package ops

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/tuple"
)

// Split is the hash-partitioning router inserted on each input arc of a
// partitioned operator. It consumes one stream and routes every data tuple to
// exactly one of its shard out-arcs — by hashing the key column, or
// round-robin when the operator has no key for this input — while
// *broadcasting* every punctuation tuple to all shards so each shard's TSM
// registers keep advancing.
//
// Punctuation is broadcast as fresh copies (one GetPunct per arc), never as a
// shared pointer: every tuple leaving the splitter has exactly one owner, so
// the runtime's recycling stays sound even though the node fans out.
type Split struct {
	base
	shards int
	key    int // key column, or -1 for round-robin routing
	rr     int
	routed *metrics.PerShard

	// columnar-path scratch: per-shard gather batches and the vectorized
	// key-hash column (see ExecCol in colexec.go).
	colOuts []*tuple.ColBatch
	hashes  []uint64
}

// NewSplit builds a splitter routing one input stream to shards out-arcs.
// key is the column index hashed to pick a shard, or -1 to route data tuples
// round-robin (used when the downstream operator is key-agnostic on this
// input, e.g. a sharded union).
func NewSplit(name string, schema *tuple.Schema, shards, key int) *Split {
	if shards < 2 {
		panic(fmt.Sprintf("split %s: need at least 2 shards, got %d", name, shards))
	}
	return &Split{
		base:   base{name: name, inputs: 1, schema: schema},
		shards: shards,
		key:    key,
		routed: metrics.NewPerShard(shards),
	}
}

// Shards reports the splitter's fan-out.
func (s *Split) Shards() int { return s.shards }

// Key reports the routing column, or -1 for round-robin.
func (s *Split) Key() int { return s.key }

// Routed exposes the per-shard routed-tuple counters (data tuples only).
func (s *Split) Routed() *metrics.PerShard { return s.routed }

// More reports whether the input holds a tuple.
func (s *Split) More(ctx *Ctx) bool { return !ctx.Ins[0].Empty() }

// BlockingInput returns 0 when the input is empty.
func (s *Split) BlockingInput(ctx *Ctx) int {
	if ctx.Ins[0].Empty() {
		return 0
	}
	return -1
}

// Exec routes one tuple: data to its shard, punctuation to every shard.
func (s *Split) Exec(ctx *Ctx) bool {
	t := ctx.Ins[0].Pop()
	if t == nil {
		return false
	}
	if t.IsPunct() {
		// Each shard gets its own copy so ownership stays single; EOS
		// (a punctuation at MaxTime) broadcasts the same way.
		for k := 0; k < s.shards; k++ {
			ctx.EmitTo(k, tuple.GetPunct(t.Ts))
		}
		ctx.free(t)
		return true
	}
	var k int
	if s.key < 0 || s.key >= len(t.Vals) {
		k = s.rr
		s.rr = (s.rr + 1) % s.shards
	} else {
		k = int(t.Vals[s.key].Hash() % uint64(s.shards))
	}
	s.routed.Add(k, 1)
	ctx.EmitTo(k, t)
	return true
}
