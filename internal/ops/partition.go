package ops

import (
	"fmt"

	"repro/internal/window"
)

// Partitionable is the opt-in capability for hash-partitioned execution.
// The partition rewrite (internal/partition) replicates a partitionable
// operator into P shards, each holding 1/P of the key space, with a Split
// router per input and a min-watermark Merge at the fan-out.
//
// An operator should implement Partitionable only when sharding by the
// returned keys preserves its semantics: every pair (or group) of tuples
// that can produce joint output must land in the same shard, and per-shard
// state must equal the restriction of global state to the shard's keys.
// Order-sensitive operators (reorder) and operators whose state is not
// key-decomposable (global aggregates, row-count windows) must not.
type Partitionable interface {
	Operator
	// PartitionKeys reports, for each input port, the column index whose
	// value hash-routes a tuple to a shard, with -1 meaning any shard may
	// take the tuple (round-robin). The bool is false when the operator is
	// not partitionable in its current configuration — e.g. an opaque join
	// predicate, a row-count window, or a non-TSM execution mode.
	PartitionKeys() ([]int, bool)
	// NewShard returns shard s of p: a fresh operator with the same
	// configuration and empty state. Shards are named "<name>#<s>".
	NewShard(s, p int) Operator
}

// timePartitionable reports whether a window spec's state decomposes by key:
// only pure time-span windows do. A row-count window keeps the newest K
// tuples *globally*; per-shard row windows would keep the newest K per shard,
// which is a different (larger) state, so sharding would change results.
func timePartitionable(spec window.Spec) bool {
	return spec.Span > 0 && spec.Rows == 0
}

// shardName names shard s of a partitioned operator.
func shardName(name string, s int) string { return fmt.Sprintf("%s#%d", name, s) }

// PartitionKeys: a TSM union is key-agnostic — any shard can merge any
// tuple — so every input routes round-robin. Basic mode would idle-wait per
// shard and latent mode is order-sensitive (arrival order), so only TSM
// unions partition.
func (u *Union) PartitionKeys() ([]int, bool) {
	if u.mode != TSM {
		return nil, false
	}
	keys := make([]int, u.inputs)
	for i := range keys {
		keys[i] = -1
	}
	return keys, true
}

// NewShard returns an empty-state TSM union shard.
func (u *Union) NewShard(s, p int) Operator {
	sh := NewUnion(shardName(u.name, s), u.schema, u.inputs, u.mode)
	sh.DedupPunct = u.DedupPunct
	return sh
}

// PartitionKeys: a window equi-join partitions by its key columns when they
// are known (hash or explicit equi-join construction), execution is TSM, and
// both windows are pure time-span — matching key values co-locate, so every
// joinable pair meets in exactly one shard.
func (j *WindowJoin) PartitionKeys() ([]int, bool) {
	if !j.hasKeys || j.mode != TSM {
		return nil, false
	}
	specL, specR := j.specs()
	if !timePartitionable(specL) || !timePartitionable(specR) {
		return nil, false
	}
	return []int{j.keyCols[0], j.keyCols[1]}, true
}

// specs recovers the construction-time window specs from either store kind.
func (j *WindowJoin) specs() (window.Spec, window.Spec) {
	if j.hashed {
		return j.hwin[0].Spec(), j.hwin[1].Spec()
	}
	return j.win[0].Spec(), j.win[1].Spec()
}

// NewShard returns an empty-state join shard of the same store kind.
func (j *WindowJoin) NewShard(s, p int) Operator {
	specL, specR := j.specs()
	name := shardName(j.name, s)
	var sh *WindowJoin
	if j.hashed {
		sh = NewHashWindowJoin(name, j.schema, specL, specR, j.keyCols[0], j.keyCols[1], j.mode)
	} else {
		sh = NewEquiWindowJoin(name, j.schema, specL, specR, j.keyCols[0], j.keyCols[1], j.mode)
	}
	sh.DedupPunct = j.DedupPunct
	return sh
}

// PartitionKeys: a multiway join partitions when it was built with known
// equi-join columns (NewMultiEquiJoin) over pure time-span windows.
func (j *MultiJoin) PartitionKeys() ([]int, bool) {
	if j.keyCols == nil {
		return nil, false
	}
	if !timePartitionable(j.wins[0].Spec()) {
		return nil, false
	}
	return append([]int(nil), j.keyCols...), true
}

// NewShard returns an empty-state multiway equi-join shard.
func (j *MultiJoin) NewShard(s, p int) Operator {
	sh := NewMultiEquiJoin(shardName(j.name, s), j.schema, j.wins[0].Spec(), j.keyCols...)
	sh.DedupPunct = j.DedupPunct
	return sh
}

// PartitionKeys: a grouped aggregate partitions by its group column — each
// group's accumulators live wholly in one shard, so per-shard results equal
// the global results restricted to the shard's groups. A global aggregate
// (groupCol < 0) would need a cross-shard combine step and is not
// partitionable.
func (a *Aggregate) PartitionKeys() ([]int, bool) {
	if a.groupCol < 0 {
		return nil, false
	}
	return []int{a.groupCol}, true
}

// NewShard returns an empty-state aggregate shard.
func (a *Aggregate) NewShard(s, p int) Operator {
	return NewSlidingAggregate(shardName(a.name, s), a.schema, a.width, a.slide, a.groupCol, a.aggs...)
}
