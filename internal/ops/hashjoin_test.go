package ops

import (
	"testing"
	"testing/quick"

	"repro/internal/tuple"
	"repro/internal/window"
)

func TestHashJoinValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad left window":  func() { NewHashWindowJoin("j", nil, window.Spec{}, window.TimeWindow(1), 0, 0, TSM) },
		"bad right window": func() { NewHashWindowJoin("j", nil, window.TimeWindow(1), window.Spec{}, 0, 0, TSM) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			fn()
		}()
	}
}

func TestHashJoinBasicMatch(t *testing.T) {
	j := NewHashWindowJoin("j", nil, window.TimeWindow(100), window.TimeWindow(100), 0, 0, TSM)
	h := newHarness(j)
	h.ins[0].Push(keyed(1, 7))
	h.ins[0].Push(tuple.EOS())
	h.ins[1].Push(keyed(2, 7))
	h.ins[1].Push(keyed(3, 8))
	h.ins[1].Push(tuple.EOS())
	h.run()
	d := h.data()
	if len(d) != 1 || d[0].Ts != 2 {
		t.Fatalf("hash join = %v", d)
	}
	if j.HashWindow(0) == nil || j.Window(0) != nil {
		t.Error("store accessors wrong for hash join")
	}
	// EOS expired both windows (nothing can join again).
	if j.WindowLen(0) != 0 || j.HashWindow(0).Inserted() != 1 {
		t.Errorf("WindowLen(0) = %d, inserted = %d", j.WindowLen(0), j.HashWindow(0).Inserted())
	}
}

func TestHashJoinAsymmetricWindows(t *testing.T) {
	// Left window 5µs, right window 1000µs: a right tuple can reach far
	// back; a left tuple only joins very recent right tuples... per KNV
	// semantics each side expires the OPPOSITE window with its own spec?
	// In this implementation each side's own store has its own extent, so
	// a left tuple at ts joins right tuples within the right store (long)
	// and right tuples joins lefts surviving in the short left store.
	j := NewHashWindowJoin("j", nil, window.TimeWindow(5), window.TimeWindow(1000), 0, 0, TSM)
	h := newHarness(j)
	h.ins[0].Push(keyed(0, 7))
	h.ins[0].Push(tuple.EOS())
	h.ins[1].Push(keyed(100, 7)) // left tuple long expired from its 5µs window
	h.ins[1].Push(tuple.EOS())
	h.run()
	if len(h.data()) != 0 {
		t.Fatalf("expired left tuple joined: %v", h.data())
	}

	j2 := NewHashWindowJoin("j2", nil, window.TimeWindow(1000), window.TimeWindow(5), 0, 0, TSM)
	h2 := newHarness(j2)
	h2.ins[0].Push(keyed(0, 7))
	h2.ins[0].Push(tuple.EOS())
	h2.ins[1].Push(keyed(100, 7)) // left store is long: still joinable
	h2.ins[1].Push(tuple.EOS())
	h2.run()
	if len(h2.data()) != 1 {
		t.Fatalf("long left window did not join: %v", h2.data())
	}
}

func TestHashJoinPunctExpires(t *testing.T) {
	j := NewHashWindowJoin("j", nil, window.TimeWindow(10), window.TimeWindow(10), 0, 0, TSM)
	h := newHarness(j)
	h.ins[0].Push(keyed(0, 1))
	h.ins[1].Push(tuple.NewPunct(0))
	h.run()
	if j.WindowLen(0) != 1 {
		t.Fatalf("left window = %d", j.WindowLen(0))
	}
	h.ins[0].Push(tuple.NewPunct(100))
	h.ins[1].Push(tuple.NewPunct(100))
	h.run()
	if j.WindowLen(0) != 0 {
		t.Fatalf("punct failed to expire hash window: %d live", j.WindowLen(0))
	}
}

// Property: the hash join emits exactly the same multiset of pairs as the
// nested-loop join on identical inputs.
func TestHashJoinMatchesNestedLoop(t *testing.T) {
	f := func(aOps, bOps []uint8, spanRaw uint8) bool {
		span := tuple.Time(spanRaw%20 + 1)
		nl := NewWindowJoin("nl", nil, window.TimeWindow(span), EquiJoin(0, 0), TSM)
		hj := NewHashWindowJoin("hj", nil, window.TimeWindow(span), window.TimeWindow(span), 0, 0, TSM)
		feed := func(h *harness, ops []uint8, side int) {
			ts := tuple.Time(0)
			for _, op := range ops {
				ts += tuple.Time(op % 4)
				h.ins[side].Push(keyed(ts, int64(op%3)))
			}
			h.ins[side].Push(tuple.EOS())
		}
		h1 := newHarness(nl)
		h2 := newHarness(hj)
		feed(h1, aOps, 0)
		feed(h1, bOps, 1)
		feed(h2, aOps, 0)
		feed(h2, bOps, 1)
		h1.run()
		h2.run()
		d1, d2 := h1.data(), h2.data()
		if len(d1) != len(d2) {
			return false
		}
		count := func(ds []*tuple.Tuple) map[string]int {
			m := map[string]int{}
			for _, d := range ds {
				m[d.String()]++
			}
			return m
		}
		c1, c2 := count(d1), count(d2)
		for k, v := range c1 {
			if c2[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
