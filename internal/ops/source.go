package ops

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/ckpt"
	"repro/internal/tsm"
	"repro/internal/tuple"
)

// Source is the operator form of a source node. External wrappers (or the
// simulation driver) deposit raw tuples into the source's inbox; an
// execution step moves one tuple from the inbox to the output arcs,
// timestamping it according to the stream's timestamp kind:
//
//   - Internal: the tuple is stamped with the current virtual clock;
//   - External: the tuple keeps its application timestamp (the source
//     verifies order and feeds its skew estimator);
//   - Latent: the tuple keeps no timestamp (tuple.MinTime).
//
// The source also owns the stream's ETS estimator (§5): when the execution
// engine backtracks to a source whose inbox is empty, it asks the source for
// an on-demand ETS; periodic-heartbeat drivers call InjectETS on a timer.
type Source struct {
	base
	tsKind tuple.TSKind
	inbox  *buffer.Queue
	est    *tsm.ETSEstimator
	seq    uint64

	// stats
	emitted    uint64
	etsEmitted uint64
}

// NewSource returns a source for the given schema. For external streams,
// delta is the maximum skew bound used by the ETS estimator; it is ignored
// for other kinds.
func NewSource(name string, schema *tuple.Schema, delta tuple.Time) *Source {
	kind := tuple.Internal
	if schema != nil {
		kind = schema.TS
	}
	s := &Source{
		base:   base{name: name, inputs: 0, schema: schema},
		tsKind: kind,
		inbox:  buffer.New(name + ".inbox"),
	}
	switch kind {
	case tuple.Internal:
		s.est = tsm.NewInternalEstimator()
	case tuple.External:
		s.est = tsm.NewExternalEstimator(delta)
	}
	return s
}

// TSKind reports the stream's timestamp kind.
func (s *Source) TSKind() tuple.TSKind { return s.tsKind }

// Delta reports the stream's current skew bound δ (0 for non-external
// streams, which have no estimator or no skew notion).
func (s *Source) Delta() tuple.Time {
	if s.est == nil || s.tsKind != tuple.External {
		return 0
	}
	return s.est.Delta()
}

// RaiseDelta widens the external skew bound δ to d if larger — the hook the
// networked ingest layer uses to feed a per-connection skew measurement
// into on-demand ETS generation. Widening only (an ETS must stay a valid
// lower bound); no-op for non-external streams. Safe for concurrent use.
func (s *Source) RaiseDelta(d tuple.Time) {
	if s.est != nil && s.tsKind == tuple.External {
		s.est.RaiseDelta(d)
	}
}

// Inbox returns the queue external wrappers deposit tuples into.
func (s *Source) Inbox() *buffer.Queue { return s.inbox }

// Offer deposits an already-stamped tuple into the inbox (wrapper side).
// Most callers should use Ingest, which applies the stream's timestamping
// rule first.
func (s *Source) Offer(t *tuple.Tuple) { s.inbox.Push(t) }

// Ingest stamps a raw tuple according to the stream's timestamp kind as of
// clock now — the moment it enters the DSMS (§5) — and deposits it into the
// inbox. Timestamping happens here rather than when the source operator
// runs, so queueing delay inside the system is visible to latency metrics.
// Ingest takes ownership of raw and stamps it in place; callers must not
// touch the tuple afterwards.
func (s *Source) Ingest(raw *tuple.Tuple, now tuple.Time) {
	switch s.tsKind {
	case tuple.Internal:
		raw.Ts = now
	case tuple.Latent:
		raw.Ts = tuple.MinTime
	case tuple.External:
		// keep the application timestamp
	}
	raw.Arrived = now
	s.inbox.Push(raw)
}

// IngestCol stamps a columnar batch of raw data rows according to the
// stream's timestamp kind as of clock now, assigns sequence numbers, and
// feeds the ETS estimator — the batch form of Ingest plus the per-tuple
// bookkeeping Exec performs. Columnar batches bypass the inbox (the caller
// emits the stamped batch directly), so this is where their tuples
// "enter the DSMS". The batch must carry no punctuation marks: ETS travels
// through Ingest/InjectETS/OnDemandETS so its ordering against queued
// inbox tuples is preserved. IngestCol takes ownership of b's contents and
// stamps in place.
func (s *Source) IngestCol(b *tuple.ColBatch, now tuple.Time) {
	n := b.Len()
	if n == 0 {
		return
	}
	ts := b.Ts[:n]
	switch s.tsKind {
	case tuple.Internal:
		for i := range ts {
			ts[i] = now
		}
	case tuple.Latent:
		for i := range ts {
			ts[i] = tuple.MinTime
		}
	case tuple.External:
		// keep the application timestamps
	}
	arr := b.Arrived[:n]
	for i := range arr {
		arr[i] = now
	}
	seq := b.Seq[:n]
	for i := range seq {
		s.seq++
		seq[i] = s.seq
	}
	if s.est != nil {
		maxTs := ts[0]
		for _, t := range ts[1:] {
			if t > maxTs {
				maxTs = t
			}
		}
		for _, t := range ts {
			s.est.ObserveTuple(t, now)
		}
		s.est.Emit(maxTs)
	}
	s.emitted += uint64(n)
}

// Emitted reports the number of data tuples the source has emitted.
func (s *Source) Emitted() uint64 { return s.emitted }

// Seq reports the sequence number of the last data tuple emitted — after a
// checkpoint restore, the replay watermark: clients must resend everything
// above it and nothing at or below it. Single-owner like the rest of the
// source; read it only while the engine is stopped or from the source's own
// goroutine.
func (s *Source) Seq() uint64 { return s.seq }

// ETSEmitted reports the number of punctuation tuples the source has
// emitted (periodic and on-demand combined).
func (s *Source) ETSEmitted() uint64 { return s.etsEmitted }

// More reports whether the inbox holds a tuple.
func (s *Source) More(*Ctx) bool { return !s.inbox.Empty() }

// BlockingInput always returns -1: a source has no upstream.
func (s *Source) BlockingInput(*Ctx) int { return -1 }

// Exec moves one tuple from the inbox (already stamped by Ingest) to the
// output and feeds the stream's ETS estimator.
func (s *Source) Exec(ctx *Ctx) bool {
	out := s.inbox.Pop()
	if out == nil {
		return false
	}
	if out.IsPunct() {
		s.etsEmitted++
		if out.Ckpt != 0 {
			// Checkpoint barrier (injected at MinTime): rewrite its
			// timestamp to the estimator's standing bound — the strongest
			// promise downstream could already rely on — so the barrier
			// flows as an honest punctuation, and snapshot at the exact
			// emission cut (s.seq is the replay watermark).
			out.Ts = tuple.MinTime
			if s.est != nil {
				out.Ts = s.est.Bound()
			}
			ctx.barrier(out.Ckpt, out.Ts)
		}
		if s.est != nil && !out.IsEOS() && out.Ts != tuple.MinTime {
			s.est.Emit(out.Ts)
		}
		ctx.Emit(out)
		return true
	}
	s.seq++
	out.Seq = s.seq
	if s.est != nil {
		s.est.ObserveTuple(out.Ts, out.Arrived)
		// A data tuple is itself a watermark carrier: future ETS must
		// exceed it to be useful.
		s.est.Emit(out.Ts)
	}
	s.emitted++
	ctx.Emit(out)
	return true
}

// OnDemandETS generates an Enabling Time-Stamp for the current clock, as the
// paper's backtrack-to-source rule requires (§4, §5). It returns false when
// the stream kind admits no ETS (latent), no bound exists yet (external
// before the first tuple), or the bound has not advanced since the last ETS
// — re-issuing it could not unblock anything and would make a quiescent
// graph spin.
func (s *Source) OnDemandETS(now tuple.Time) (*tuple.Tuple, bool) {
	if s.est == nil {
		return nil, false
	}
	ets, ok := s.est.ETS(now)
	if !ok {
		return nil, false
	}
	s.est.Emit(ets)
	return tuple.GetPunct(ets), true
}

// CanBound reports whether the source could currently promise any ETS —
// false for latent streams and for external streams before their first
// tuple. The concurrent runtime's source-liveness watchdog checks it before
// forcing an ETS into a silent source, so a source with nothing to promise
// is not signalled uselessly.
func (s *Source) CanBound() bool { return s.est != nil && s.est.CanBound() }

// InjectETS pushes a heartbeat punctuation into the inbox; the periodic
// (Gigascope-style) driver calls this at fixed intervals, and the concurrent
// runtime's source-liveness watchdog reuses it (on the source's own
// goroutine) to force a skew-bounded ETS out of a source that has gone
// silent. Internal streams stamp the heartbeat with the injection clock;
// external streams use the estimator's current bound if one exists. Unlike
// on-demand generation, periodic injection happens regardless of whether
// anything downstream is idle-waiting — that indiscriminateness is what the
// paper improves on.
func (s *Source) InjectETS(now tuple.Time) bool {
	switch s.tsKind {
	case tuple.Latent:
		return false
	case tuple.Internal:
		s.inbox.Push(tuple.NewPunct(now))
		return true
	default: // external
		if s.est == nil {
			return false
		}
		ets, ok := s.est.ETS(now)
		if !ok {
			return false
		}
		s.inbox.Push(tuple.NewPunct(ets))
		return true
	}
}

func (s *Source) String() string {
	return fmt.Sprintf("source %s (%v, inbox=%d)", s.name, s.tsKind, s.inbox.Len())
}

// Sink is the operator form of a sink node: it consumes every input tuple,
// eliminates punctuation (paper §3: "sink nodes should also eliminate
// punctuation tuples since they are only needed internally"), and hands data
// tuples to an optional callback — the output wrapper.
type Sink struct {
	base
	onTuple func(t *tuple.Tuple, now tuple.Time)

	received uint64
	punct    uint64

	// Optional application-state hooks: a consumer that accumulates state
	// from delivered tuples (a test harness checksum, an output offset) can
	// ride the sink's checkpoint segment with it, keeping its state aligned
	// with the same cut as the operators'.
	saveHook    func(*ckpt.Encoder)
	restoreHook func(*ckpt.Decoder) error
}

// NewSink returns a sink; onTuple may be nil.
func NewSink(name string, onTuple func(t *tuple.Tuple, now tuple.Time)) *Sink {
	return &Sink{base: base{name: name, inputs: 1}, onTuple: onTuple}
}

// StateHooks attaches application save/restore callbacks to the sink's
// checkpoint segment. Both must be set together (a snapshot written with
// hooks does not restore into a sink without them, and vice versa); call
// before the engine starts.
func (s *Sink) StateHooks(save func(*ckpt.Encoder), restore func(*ckpt.Decoder) error) {
	s.saveHook = save
	s.restoreHook = restore
}

// Received reports the number of data tuples delivered.
func (s *Sink) Received() uint64 { return s.received }

// PunctEliminated reports the number of punctuation tuples dropped.
func (s *Sink) PunctEliminated() uint64 { return s.punct }

// More reports whether the input holds a tuple.
func (s *Sink) More(ctx *Ctx) bool { return !ctx.Ins[0].Empty() }

// BlockingInput returns 0 when the input is empty.
func (s *Sink) BlockingInput(ctx *Ctx) int {
	if ctx.Ins[0].Empty() {
		return 0
	}
	return -1
}

// Exec consumes one tuple. Sinks never yield (they have no output arcs).
func (s *Sink) Exec(ctx *Ctx) bool {
	t := ctx.Ins[0].Pop()
	if t == nil {
		return false
	}
	if t.IsPunct() {
		s.punct++
		if t.Ckpt != 0 {
			ctx.barrier(t.Ckpt, t.Ts)
		}
		ctx.free(t)
		return false
	}
	s.received++
	if s.onTuple != nil {
		s.onTuple(t, ctx.Now())
	}
	ctx.free(t) // delivered; with Release installed, callbacks must not retain t
	return false
}
