package ops

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/tuple"
)

// splitHarness wires a Split to a routed-output capture (one slice per
// shard arc), since the shared harness only captures broadcast Emit.
type splitHarness struct {
	s    *Split
	in   *buffer.Queue
	arcs [][]*tuple.Tuple
	ctx  *Ctx
}

func newSplitHarness(s *Split) *splitHarness {
	h := &splitHarness{s: s, in: buffer.New("in"), arcs: make([][]*tuple.Tuple, s.Shards())}
	h.ctx = &Ctx{
		Ins:    []*buffer.Queue{h.in},
		EmitTo: func(i int, t *tuple.Tuple) { h.arcs[i] = append(h.arcs[i], t) },
		Now:    func() tuple.Time { return 0 },
	}
	return h
}

func (h *splitHarness) run() {
	for h.s.More(h.ctx) {
		h.s.Exec(h.ctx)
	}
}

func TestSplitHashRoutingIsConsistent(t *testing.T) {
	s := NewSplit("sp", nil, 4, 0)
	h := newSplitHarness(s)
	// The same key must always land on the same shard; numeric kinds that
	// compare equal must co-locate (int 7 with float 7.0).
	for i := 0; i < 3; i++ {
		h.in.Push(tuple.NewData(tuple.Time(i), tuple.Int(7)))
	}
	h.in.Push(tuple.NewData(3, tuple.Float(7)))
	h.run()
	hit := -1
	for k, arc := range h.arcs {
		if len(arc) > 0 {
			if hit >= 0 {
				t.Fatalf("key 7 landed on shards %d and %d", hit, k)
			}
			hit = k
		}
	}
	if hit < 0 || len(h.arcs[hit]) != 4 {
		t.Fatalf("key 7: want 4 tuples on one shard, got %v", h.arcs)
	}
	if got := s.Routed().Get(hit); got != 4 {
		t.Errorf("routed counter = %d, want 4", got)
	}
}

func TestSplitSpreadsDistinctKeys(t *testing.T) {
	s := NewSplit("sp", nil, 4, 0)
	h := newSplitHarness(s)
	for i := 0; i < 256; i++ {
		h.in.Push(tuple.NewData(tuple.Time(i), tuple.Int(int64(i))))
	}
	h.run()
	for k, arc := range h.arcs {
		// A grossly skewed hash would defeat partitioning; expect every
		// shard to take a reasonable share of 256 distinct keys.
		if len(arc) < 32 {
			t.Errorf("shard %d got %d of 256 tuples", k, len(arc))
		}
	}
	if s.Routed().Total() != 256 {
		t.Errorf("routed total = %d", s.Routed().Total())
	}
}

func TestSplitRoundRobinWithoutKey(t *testing.T) {
	s := NewSplit("sp", nil, 3, -1)
	h := newSplitHarness(s)
	for i := 0; i < 9; i++ {
		h.in.Push(tuple.NewData(tuple.Time(i), tuple.Int(42))) // same value
	}
	h.run()
	for k, arc := range h.arcs {
		if len(arc) != 3 {
			t.Fatalf("shard %d got %d tuples, want 3 (round-robin)", k, len(arc))
		}
	}
}

func TestSplitBroadcastsPunctAsCopies(t *testing.T) {
	s := NewSplit("sp", nil, 3, 0)
	h := newSplitHarness(s)
	p := tuple.NewPunct(50)
	h.in.Push(p)
	h.in.Push(tuple.EOS())
	h.run()
	for k, arc := range h.arcs {
		if len(arc) != 2 {
			t.Fatalf("shard %d got %d puncts, want 2", k, len(arc))
		}
		if arc[0].Ts != 50 || !arc[0].IsPunct() || !arc[1].IsEOS() {
			t.Fatalf("shard %d puncts = %v", k, arc)
		}
		// Fresh copies, not the shared pointer: single ownership per arc is
		// what keeps tuple recycling sound through a splitter's fan-out.
		if arc[0] == p {
			t.Fatal("splitter forwarded the original punct pointer")
		}
		for j := 0; j < k; j++ {
			if arc[0] == h.arcs[j][0] {
				t.Fatalf("shards %d and %d share a punct pointer", j, k)
			}
		}
	}
	if s.Routed().Total() != 0 {
		t.Errorf("puncts must not count as routed data: %d", s.Routed().Total())
	}
}

func TestSplitBlockingInput(t *testing.T) {
	s := NewSplit("sp", nil, 2, 0)
	h := newSplitHarness(s)
	if s.BlockingInput(h.ctx) != 0 {
		t.Error("empty splitter must block on input 0")
	}
	h.in.Push(tuple.NewData(1, tuple.Int(1)))
	if s.BlockingInput(h.ctx) != -1 {
		t.Error("non-empty splitter must not block")
	}
}
