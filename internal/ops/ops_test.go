package ops

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/tuple"
)

// harness wires an operator to input queues, an output capture and a
// settable clock, and drives it with the Encore rule (run while More).
type harness struct {
	op  Operator
	ins []*buffer.Queue
	out []*tuple.Tuple
	now tuple.Time
	ctx *Ctx
}

func newHarness(op Operator) *harness {
	h := &harness{op: op}
	h.ins = make([]*buffer.Queue, op.NumInputs())
	for i := range h.ins {
		h.ins[i] = buffer.New("in")
	}
	h.ctx = &Ctx{
		Ins:  h.ins,
		Emit: func(t *tuple.Tuple) { h.out = append(h.out, t) },
		Now:  func() tuple.Time { return h.now },
	}
	return h
}

// run executes the operator while More holds, returning the number of steps.
func (h *harness) run() int {
	steps := 0
	for h.op.More(h.ctx) {
		h.op.Exec(h.ctx)
		steps++
		if steps > 100000 {
			panic("harness: runaway operator")
		}
	}
	return steps
}

// data returns the emitted data tuples.
func (h *harness) data() []*tuple.Tuple {
	var d []*tuple.Tuple
	for _, t := range h.out {
		if !t.IsPunct() {
			d = append(d, t)
		}
	}
	return d
}

// puncts returns the emitted punctuation tuples.
func (h *harness) puncts() []*tuple.Tuple {
	var p []*tuple.Tuple
	for _, t := range h.out {
		if t.IsPunct() {
			p = append(p, t)
		}
	}
	return p
}

func tsOf(ts ...tuple.Time) []*tuple.Tuple {
	out := make([]*tuple.Tuple, len(ts))
	for i, t := range ts {
		out[i] = tuple.NewData(t, tuple.Int(int64(i)))
	}
	return out
}

func wantTs(t *testing.T, got []*tuple.Tuple, want ...tuple.Time) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d tuples, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].Ts != want[i] {
			t.Fatalf("tuple %d: ts=%v, want %v (all: %v)", i, got[i].Ts, want[i], got)
		}
	}
}

func TestSourceInternalStamping(t *testing.T) {
	sch := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind})
	src := NewSource("s", sch, 0)
	if src.TSKind() != tuple.Internal {
		t.Fatal("default schema must be internal")
	}
	h := newHarness(src)
	h.now = 500
	src.Ingest(tuple.NewData(0, tuple.Int(1)), h.now) // raw ts ignored
	if !src.More(h.ctx) {
		t.Fatal("More must be true with inbox content")
	}
	if !src.Exec(h.ctx) {
		t.Fatal("Exec must yield")
	}
	wantTs(t, h.out, 500)
	if h.out[0].Arrived != 500 || h.out[0].Seq != 1 {
		t.Errorf("arrival metadata wrong: %+v", h.out[0])
	}
	if src.Emitted() != 1 {
		t.Errorf("Emitted = %d", src.Emitted())
	}
}

func TestSourceExternalKeepsTs(t *testing.T) {
	sch := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind}).WithTS(tuple.External)
	src := NewSource("s", sch, 100)
	h := newHarness(src)
	h.now = 500
	src.Ingest(tuple.NewData(123, tuple.Int(1)), h.now)
	src.Exec(h.ctx)
	wantTs(t, h.out, 123)
	if h.out[0].Arrived != 500 {
		t.Errorf("Arrived = %v", h.out[0].Arrived)
	}
}

func TestSourceLatentClearsTs(t *testing.T) {
	sch := tuple.NewSchema("s").WithTS(tuple.Latent)
	src := NewSource("s", sch, 0)
	h := newHarness(src)
	h.now = 500
	src.Ingest(tuple.NewData(77), h.now)
	src.Exec(h.ctx)
	if h.out[0].Ts != tuple.MinTime {
		t.Errorf("latent ts = %v, want MinTime", h.out[0].Ts)
	}
}

func TestSourceOnDemandETSInternal(t *testing.T) {
	src := NewSource("s", tuple.NewSchema("s"), 0)
	p, ok := src.OnDemandETS(900)
	if !ok || !p.IsPunct() || p.Ts != 900 {
		t.Fatalf("OnDemandETS = %v, %v", p, ok)
	}
	// Clock unchanged: a second ETS is useless.
	if _, ok := src.OnDemandETS(900); ok {
		t.Fatal("repeated ETS at same clock must fail")
	}
	if p, ok := src.OnDemandETS(901); !ok || p.Ts != 901 {
		t.Fatal("advancing clock must enable a new ETS")
	}
}

func TestSourceOnDemandETSExternal(t *testing.T) {
	sch := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind}).WithTS(tuple.External)
	src := NewSource("s", sch, 10)
	if _, ok := src.OnDemandETS(50); ok {
		t.Fatal("external ETS before any tuple must fail")
	}
	h := newHarness(src)
	h.now = 105
	src.Ingest(tuple.NewData(100, tuple.Int(1)), h.now)
	src.Exec(h.ctx)
	p, ok := src.OnDemandETS(145)
	if !ok || p.Ts != 130 { // 100 + 40 − 10
		t.Fatalf("external ETS = %v, %v; want 130", p, ok)
	}
}

func TestSourceOnDemandETSLatent(t *testing.T) {
	src := NewSource("s", tuple.NewSchema("s").WithTS(tuple.Latent), 0)
	if _, ok := src.OnDemandETS(100); ok {
		t.Fatal("latent streams must not generate ETS")
	}
}

func TestSourceInjectETS(t *testing.T) {
	src := NewSource("s", tuple.NewSchema("s"), 0)
	if !src.InjectETS(100) {
		t.Fatal("internal InjectETS must succeed")
	}
	h := newHarness(src)
	h.now = 250
	src.Exec(h.ctx)
	// Heartbeat carries the injection-time bound.
	if len(h.puncts()) != 1 || h.puncts()[0].Ts != 100 {
		t.Fatalf("heartbeat = %v", h.out)
	}
	if src.ETSEmitted() != 1 {
		t.Errorf("ETSEmitted = %d", src.ETSEmitted())
	}
	lat := NewSource("l", tuple.NewSchema("l").WithTS(tuple.Latent), 0)
	if lat.InjectETS(100) {
		t.Fatal("latent InjectETS must fail")
	}
}

func TestSinkEliminatesPunctuation(t *testing.T) {
	var got []*tuple.Tuple
	var at []tuple.Time
	sink := NewSink("k", func(tp *tuple.Tuple, now tuple.Time) {
		got = append(got, tp)
		at = append(at, now)
	})
	h := newHarness(sink)
	h.now = 42
	h.ins[0].Push(tuple.NewData(1, tuple.Int(5)))
	h.ins[0].Push(tuple.NewPunct(2))
	h.ins[0].Push(tuple.NewData(3, tuple.Int(6)))
	h.run()
	if len(got) != 2 || got[0].Ts != 1 || got[1].Ts != 3 {
		t.Fatalf("sink data = %v", got)
	}
	if at[0] != 42 {
		t.Errorf("delivery clock = %v", at[0])
	}
	if sink.Received() != 2 || sink.PunctEliminated() != 1 {
		t.Errorf("counters: %d data, %d punct", sink.Received(), sink.PunctEliminated())
	}
	if sink.BlockingInput(h.ctx) != 0 {
		t.Error("empty sink must block on input 0")
	}
	h.ins[0].Push(tuple.NewData(4))
	if sink.BlockingInput(h.ctx) != -1 {
		t.Error("non-empty sink must not block")
	}
}

func TestSelectFiltersDataPassesPunct(t *testing.T) {
	sel := NewSelect("σ", nil, func(tp *tuple.Tuple) bool { return tp.Vals[0].AsInt()%2 == 0 })
	h := newHarness(sel)
	for i := 0; i < 6; i++ {
		h.ins[0].Push(tuple.NewData(tuple.Time(i), tuple.Int(int64(i))))
	}
	h.ins[0].Push(tuple.NewPunct(10))
	h.run()
	d := h.data()
	wantTs(t, d, 0, 2, 4)
	if len(h.puncts()) != 1 || h.puncts()[0].Ts != 10 {
		t.Fatalf("punct not passed: %v", h.out)
	}
	if sel.Processed() != 6 || sel.Emitted() != 3 {
		t.Errorf("counters: %d/%d", sel.Processed(), sel.Emitted())
	}
}

func TestProject(t *testing.T) {
	sch := tuple.NewSchema("s",
		tuple.Field{Name: "a", Kind: tuple.IntKind},
		tuple.Field{Name: "b", Kind: tuple.StringKind},
		tuple.Field{Name: "c", Kind: tuple.FloatKind},
	)
	_, idx, err := sch.Project("p", "c", "a")
	if err != nil {
		t.Fatal(err)
	}
	p := NewProject("π", nil, idx)
	h := newHarness(p)
	h.ins[0].Push(tuple.NewData(7, tuple.Int(1), tuple.String_("x"), tuple.Float(2.5)))
	h.run()
	out := h.data()[0]
	if out.Ts != 7 || len(out.Vals) != 2 || out.Vals[0].AsFloat() != 2.5 || out.Vals[1].AsInt() != 1 {
		t.Fatalf("projected tuple = %v", out)
	}
}

func TestMapDropAndTransform(t *testing.T) {
	m := NewMap("µ", nil, func(tp *tuple.Tuple) *tuple.Tuple {
		v := tp.Vals[0].AsInt()
		if v < 0 {
			return nil
		}
		return tuple.NewData(999, tuple.Int(v*10)) // wrong ts on purpose
	})
	h := newHarness(m)
	h.ins[0].Push(tuple.NewData(3, tuple.Int(4)))
	h.ins[0].Push(tuple.NewData(5, tuple.Int(-1)))
	h.run()
	d := h.data()
	if len(d) != 1 || d[0].Vals[0].AsInt() != 40 {
		t.Fatalf("mapped = %v", d)
	}
	if d[0].Ts != 3 {
		t.Errorf("map must preserve input timestamp, got %v", d[0].Ts)
	}
}
