package ops

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tuple"
)

func TestValidateCleanStream(t *testing.T) {
	v := NewValidate("v", nil)
	h := newHarness(v)
	h.ins[0].Push(tuple.NewData(1))
	h.ins[0].Push(tuple.NewPunct(2))
	h.ins[0].Push(tuple.NewData(2)) // equal to the promise: allowed
	h.ins[0].Push(tuple.NewData(5))
	h.run()
	if !v.Ok() {
		t.Fatalf("violations on a clean stream: %v", v.Violations())
	}
	if v.Checked() != 4 || len(h.out) != 4 {
		t.Errorf("checked=%d forwarded=%d", v.Checked(), len(h.out))
	}
}

func TestValidateDetectsDisorder(t *testing.T) {
	v := NewValidate("v", nil)
	h := newHarness(v)
	h.ins[0].Push(tuple.NewData(5))
	h.ins[0].Push(tuple.NewData(3))
	h.run()
	if v.Ok() || len(v.Violations()) != 1 {
		t.Fatalf("violations = %v", v.Violations())
	}
	if !strings.Contains(v.Violations()[0].String(), "order violated") {
		t.Errorf("message: %v", v.Violations()[0])
	}
	// Everything was still forwarded (transparent operator).
	if len(h.out) != 2 {
		t.Error("validator swallowed tuples")
	}
}

func TestValidateDetectsBrokenPunctuation(t *testing.T) {
	v := NewValidate("v", nil)
	h := newHarness(v)
	h.ins[0].Push(tuple.NewPunct(10))
	h.ins[0].Push(tuple.NewData(7)) // violates the ETS promise AND order
	h.run()
	if v.Ok() {
		t.Fatal("broken punctuation not detected")
	}
	found := false
	for _, viol := range v.Violations() {
		if strings.Contains(viol.Msg, "punctuation broken") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations = %v", v.Violations())
	}
}

func TestValidateLatentTuplesIgnored(t *testing.T) {
	v := NewValidate("v", nil)
	h := newHarness(v)
	h.ins[0].Push(tuple.NewData(5))
	h.ins[0].Push(tuple.NewData(tuple.MinTime)) // latent: exempt from order
	h.run()
	if !v.Ok() {
		t.Fatalf("latent tuple flagged: %v", v.Violations())
	}
}

func TestValidateBoundsRecording(t *testing.T) {
	v := NewValidate("v", nil)
	v.MaxViolations = 2
	h := newHarness(v)
	for ts := tuple.Time(100); ts > 0; ts -= 10 {
		h.ins[0].Push(tuple.NewData(ts))
	}
	h.run()
	if len(v.Violations()) != 2 {
		t.Fatalf("recorded %d violations, want cap 2", len(v.Violations()))
	}
}

// Property: every operator in this library preserves arc discipline — feed
// ordered streams (with punctuation) through select→union and validate the
// output.
func TestPipelineDisciplineProperty(t *testing.T) {
	f := func(aGaps, bGaps []uint8, punctEvery uint8) bool {
		u := NewUnion("u", nil, 2, TSM)
		val := NewValidate("v", nil)
		hu := newHarness(u)
		hv := newHarness(val)
		feed := func(q int, gaps []uint8) {
			ts := tuple.Time(0)
			for i, g := range gaps {
				ts += tuple.Time(g % 10)
				hu.ins[q].Push(tuple.NewData(ts))
				if punctEvery > 0 && i%(int(punctEvery)+1) == 0 {
					hu.ins[q].Push(tuple.NewPunct(ts))
				}
			}
			hu.ins[q].Push(tuple.EOS())
		}
		feed(0, aGaps)
		feed(1, bGaps)
		hu.run()
		for _, tp := range hu.out {
			hv.ins[0].Push(tp)
		}
		hv.run()
		return val.Ok()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
