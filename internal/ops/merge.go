package ops

import "repro/internal/tuple"

// Merge is the min-watermark fan-in of a partitioned operator: it combines
// the P shard output streams back into one timestamp-ordered stream, and
// forwards a punctuation only when *every* shard's TSM register has advanced
// past it — i.e. the merged bound is min over shards, governed by the slowest
// one. That is exactly the TSM union's production rule (Figure 6): data pops
// in global timestamp order via the relaxed `more` condition, and output
// punctuation is emitted at min(registers) when it advances the watermark.
//
// Merge is therefore a thin wrapper over a TSM-mode Union; the distinct type
// lets the partition rewrite (and diagnostics) identify merge nodes without
// duplicating the union's carefully tested blocking rules. Equal-timestamp
// tuples across shards cannot deadlock it for the same reason they cannot
// deadlock the union: the relaxed `more` condition (§4.1) runs whenever any
// input holds a tuple at the minimal register timestamp.
type Merge struct {
	Union
}

// NewMerge builds a min-watermark merge over n shard streams.
func NewMerge(name string, schema *tuple.Schema, n int) *Merge {
	return &Merge{Union: *NewUnion(name, schema, n, TSM)}
}
