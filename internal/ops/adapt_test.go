package ops

import (
	"testing"

	"repro/internal/tuple"
	"repro/internal/window"
)

func shardOf(h *splitHarness, key int64) int {
	for k := range h.arcs {
		h.arcs[k] = nil
	}
	h.in.Push(tuple.NewData(h.s.MaxTs()+1, tuple.Int(key)))
	h.run()
	for k, arc := range h.arcs {
		if len(arc) > 0 {
			return k
		}
	}
	return -1
}

func TestSplitRetargetAppliesAtBarrier(t *testing.T) {
	s := NewSplit("sp", nil, 4, 0)
	h := newSplitHarness(s)

	const key = 7
	before := shardOf(h, key)
	bucket := int(tuple.Int(key).Hash() % SplitBuckets)

	// Move the key's bucket to a different shard, fenced at ts 100.
	assign := s.Assignment()
	target := (before + 1) % 4
	assign[bucket] = int32(target)
	var appliedAt tuple.Time = -1
	s.OnApply(func(b tuple.Time) { appliedAt = b })
	if !s.Retarget(assign, 100) {
		t.Fatal("Retarget rejected")
	}
	if s.AssignVersion() != 0 {
		t.Fatal("retarget must not count as applied before its barrier")
	}

	// Pre-barrier tuples keep the old route.
	h.arcs[before], h.arcs[target] = nil, nil
	h.in.Push(tuple.NewData(50, tuple.Int(key)))
	h.run()
	if len(h.arcs[before]) != 1 {
		t.Fatalf("ts<barrier tuple left shard %d: %v", before, h.arcs)
	}

	// Post-barrier tuples route through the new table even before the
	// punctuation promotes it.
	h.arcs[before], h.arcs[target] = nil, nil
	h.in.Push(tuple.NewData(150, tuple.Int(key)))
	h.run()
	if len(h.arcs[target]) != 1 {
		t.Fatalf("ts>=barrier tuple not on new shard %d: %v", target, h.arcs)
	}

	// The punctuation at/above the barrier retires the old table.
	h.in.Push(tuple.NewPunct(100))
	h.run()
	if s.AssignVersion() != 1 {
		t.Fatalf("AssignVersion = %d after barrier punct, want 1", s.AssignVersion())
	}
	if appliedAt != 100 {
		t.Fatalf("OnApply barrier = %d, want 100", appliedAt)
	}
	if got := s.Assignment()[bucket]; got != int32(target) {
		t.Fatalf("promoted table bucket = %d, want %d", got, target)
	}

	h.arcs[before], h.arcs[target] = nil, nil
	h.in.Push(tuple.NewData(200, tuple.Int(key)))
	h.run()
	if len(h.arcs[target]) != 1 {
		t.Fatalf("post-promotion tuple not on new shard %d", target)
	}
}

func TestSplitRetargetRejections(t *testing.T) {
	rr := NewSplit("rr", nil, 2, -1)
	if rr.Retarget(make([]int32, SplitBuckets), 10) {
		t.Error("round-robin splitter accepted a retarget")
	}
	s := NewSplit("sp", nil, 2, 0)
	if s.Retarget(make([]int32, 10), 10) {
		t.Error("short table accepted")
	}
	bad := make([]int32, SplitBuckets)
	bad[0] = 5 // out of range for 2 shards
	if s.Retarget(bad, 10) {
		t.Error("out-of-range shard accepted")
	}
	ok := make([]int32, SplitBuckets)
	if !s.Retarget(ok, 10) {
		t.Fatal("valid retarget rejected")
	}
	if s.Retarget(ok, 20) {
		t.Error("second retarget accepted while one is pending")
	}
}

func TestSplitBucketLoadsAndMaxTs(t *testing.T) {
	s := NewSplit("sp", nil, 2, 0)
	h := newSplitHarness(s)
	for i := 0; i < 10; i++ {
		h.in.Push(tuple.NewData(tuple.Time(i), tuple.Int(7)))
	}
	h.run()
	if got := s.BucketLoads().Total(); got != 10 {
		t.Fatalf("bucket load total = %d, want 10", got)
	}
	b := int(tuple.Int(7).Hash() % SplitBuckets)
	if got := s.BucketLoads().Get(b); got != 10 {
		t.Fatalf("bucket %d load = %d, want 10", b, got)
	}
	if s.MaxTs() != 9 {
		t.Fatalf("MaxTs = %d, want 9", s.MaxTs())
	}
}

// feedMultiJoin drives a 3-way equi-join through the shared harness and
// returns the emitted data rows.
func feedMultiJoin(j *MultiJoin, rows [][3]int64) []*tuple.Tuple {
	h := newHarness(j)
	for _, r := range rows {
		for in := 0; in < 3; in++ {
			h.ins[in].Push(tuple.NewData(tuple.Time(r[in]), tuple.Int(r[in])))
		}
	}
	for in := 0; in < 3; in++ {
		h.ins[in].Push(tuple.NewPunct(1000))
	}
	h.run()
	var data []*tuple.Tuple
	for _, t := range h.out {
		if !t.IsPunct() {
			data = append(data, t)
		}
	}
	return data
}

func TestMultiJoinProbeOrderPreservesOutput(t *testing.T) {
	rows := [][3]int64{{1, 1, 1}, {2, 2, 2}, {3, 3, 3}, {2, 3, 1}}
	mk := func() *MultiJoin {
		return NewMultiEquiJoin("mj", nil, window.TimeWindow(100), 0, 0, 0)
	}
	base := feedMultiJoin(mk(), rows)

	j := mk()
	if !j.SetProbeOrder([]int{2, 0, 1}) {
		t.Fatal("valid probe order rejected")
	}
	got := feedMultiJoin(j, rows)
	if len(got) != len(base) {
		t.Fatalf("reordered join emitted %d rows, natural order %d", len(got), len(base))
	}
	for i := range got {
		if len(got[i].Vals) != len(base[i].Vals) {
			t.Fatalf("row %d arity differs", i)
		}
		for c := range got[i].Vals {
			if !got[i].Vals[c].Equal(base[i].Vals[c]) {
				t.Fatalf("row %d col %d: %v vs %v", i, c, got[i].Vals[c], base[i].Vals[c])
			}
		}
	}
}

func TestMultiJoinProbeOrderValidation(t *testing.T) {
	j := NewMultiEquiJoin("mj", nil, window.TimeWindow(100), 0, 0, 0)
	for _, bad := range [][]int{{0, 1}, {0, 1, 1}, {0, 1, 3}, {-1, 1, 2}} {
		if j.SetProbeOrder(bad) {
			t.Errorf("invalid order %v accepted", bad)
		}
	}
	ord := j.ProbeOrder()
	if len(ord) != 3 || ord[0] != 0 || ord[1] != 1 || ord[2] != 2 {
		t.Fatalf("default probe order = %v", ord)
	}
	j.SetProbeOrder([]int{1, 2, 0})
	ord = j.ProbeOrder()
	if ord[0] != 1 || ord[1] != 2 || ord[2] != 0 {
		t.Fatalf("probe order after set = %v", ord)
	}
}

func TestMultiJoinProbeStats(t *testing.T) {
	j := NewMultiEquiJoin("mj", nil, window.TimeWindow(100), 0, 0, 0)
	// Input 1's window will hold matching keys; input 2's never matches.
	h := newHarness(j)
	h.ins[1].Push(tuple.NewData(1, tuple.Int(1)))
	h.ins[2].Push(tuple.NewData(1, tuple.Int(99)))
	h.ins[0].Push(tuple.NewData(2, tuple.Int(1)))
	for in := 0; in < 3; in++ {
		h.ins[in].Push(tuple.NewPunct(10))
	}
	h.run()
	st := j.ProbeStats()
	if st[1].Visits == 0 {
		t.Fatal("no visits recorded on input 1")
	}
	if st[1].Passed == 0 {
		t.Error("matching candidate on input 1 not counted as passed")
	}
	if st[2].Passed != 0 {
		t.Errorf("mismatching input 2 counted %d passed", st[2].Passed)
	}
}
