package ops

import (
	"fmt"

	"repro/internal/tsm"
	"repro/internal/tuple"
)

// Union merges n input streams into one output stream ordered by timestamp.
// It is the canonical Idle-Waiting-Prone operator: a sort-merge that cannot
// emit while any input's future is unbounded.
//
// Modes:
//
//   - Basic (Figure 1): runs only when every input buffer is non-empty;
//     emits the head with minimal timestamp. Punctuation is treated as an
//     opaque bound-carrier: it refreshes nothing and is dropped on
//     consumption (Basic predates punctuation-awareness; dropping keeps the
//     comparison fair on tuple counts).
//   - TSM (Figures 5–6): per-input Time-Stamp Memory registers and the
//     relaxed more condition; punctuation updates the registers, unblocks
//     the operator, and is propagated (deduplicated by default).
//   - LatentMode: emits tuples in arrival order with no timestamp checks.
type Union struct {
	base
	mode IWPMode
	regs *tsm.Registers

	// DedupPunct suppresses output punctuation that does not advance the
	// operator's output watermark. Disabling it (ablation AB2) forwards
	// every consumed punctuation tuple.
	DedupPunct bool

	watermark tuple.Time // highest output bound already conveyed downstream
	rr        int        // round-robin cursor for latent mode
	al        aligner    // checkpoint-barrier alignment (TSM mode)

	dataOut  uint64
	punctOut uint64
}

// NewUnion builds an n-way union in the given mode.
func NewUnion(name string, schema *tuple.Schema, n int, mode IWPMode) *Union {
	if n < 2 {
		panic(fmt.Sprintf("union %s: need at least 2 inputs, got %d", name, n))
	}
	u := &Union{
		base:       base{name: name, inputs: n, schema: schema},
		mode:       mode,
		DedupPunct: true,
		watermark:  tuple.MinTime,
	}
	if mode == TSM {
		u.regs = tsm.New(n)
	}
	return u
}

// Mode reports the union's execution mode.
func (u *Union) Mode() IWPMode { return u.mode }

// Registers exposes the TSM register bank (nil unless mode is TSM).
func (u *Union) Registers() *tsm.Registers { return u.regs }

// DataEmitted reports the number of data tuples emitted.
func (u *Union) DataEmitted() uint64 { return u.dataOut }

// PunctEmitted reports the number of punctuation tuples emitted.
func (u *Union) PunctEmitted() uint64 { return u.punctOut }

// Watermark reports the highest output bound conveyed downstream so far
// (MinTime before the first punctuation) — the overlay's live progress mark.
func (u *Union) Watermark() tuple.Time { return u.watermark }

// More implements the mode's `more` condition.
func (u *Union) More(ctx *Ctx) bool {
	switch u.mode {
	case Basic:
		return allNonEmpty(ctx.Ins)
	case TSM:
		u.regs.Observe(ctx.Ins)
		if u.al.ready(ctx.Ins) >= 0 {
			return true
		}
		ok, _, _ := u.regs.More(ctx.Ins)
		return ok
	default: // LatentMode
		return anyNonEmpty(ctx.Ins) >= 0
	}
}

// BlockingInput identifies the input to backtrack into when More is false.
func (u *Union) BlockingInput(ctx *Ctx) int {
	switch u.mode {
	case Basic:
		return firstEmpty(ctx.Ins)
	case TSM:
		u.regs.Observe(ctx.Ins)
		if u.al.ready(ctx.Ins) >= 0 {
			return -1
		}
		if ok, _, _ := u.regs.More(ctx.Ins); ok {
			return -1
		}
		return u.regs.BlockingInput(ctx.Ins)
	default:
		return -1 // latent unions are never blocked while tuples exist
	}
}

// Exec performs one production/consumption step per the mode's rules.
func (u *Union) Exec(ctx *Ctx) bool {
	switch u.mode {
	case Basic:
		return u.execBasic(ctx)
	case TSM:
		return u.execTSM(ctx)
	default:
		return u.execLatent(ctx)
	}
}

func (u *Union) execBasic(ctx *Ctx) bool {
	if !allNonEmpty(ctx.Ins) {
		return false
	}
	// Select the input whose head has the least timestamp (Figure 1).
	arg := 0
	min := ctx.Ins[0].Peek().Ts
	for i := 1; i < len(ctx.Ins); i++ {
		if ts := ctx.Ins[i].Peek().Ts; ts < min {
			min, arg = ts, i
		}
	}
	t := ctx.Ins[arg].Pop()
	if t.IsPunct() {
		ctx.free(t)
		return false
	}
	u.dataOut++
	ctx.Emit(t)
	return true
}

func (u *Union) execTSM(ctx *Ctx) bool {
	u.regs.Observe(ctx.Ins)
	var t *tuple.Tuple
	τ := tuple.MinTime
	input := u.al.ready(ctx.Ins)
	if input >= 0 {
		// A checkpoint barrier at the head of an unaligned input is
		// consumable regardless of τ (see barrier.go).
		t = ctx.Ins[input].Pop()
	} else {
		ok, in, bound := u.regs.More(ctx.Ins)
		if !ok {
			return false
		}
		input, τ = in, bound
		t = ctx.Ins[input].Pop()
	}
	if handled, yield := handleBarrier(&u.al, u, ctx, input, t); handled {
		return yield
	}
	if !t.IsPunct() {
		// Data tuple at τ: deliver it (Figure 6). The tuple itself
		// carries the bound τ downstream.
		if τ > u.watermark {
			u.watermark = τ
		}
		u.replayData(ctx, input, t)
		return true
	}
	return u.punctStep(ctx, t)
}

// punctStep runs the TSM punctuation rule for a consumed punctuation:
// re-observe, compute the merged bound, forward/dedup/absorb.
func (u *Union) punctStep(ctx *Ctx, t *tuple.Tuple) bool {
	u.regs.Observe(ctx.Ins)
	bound, _ := u.regs.Min()
	if !u.DedupPunct {
		u.punctOut++
		ctx.Emit(t)
		return true
	}
	if bound > u.watermark && bound != tuple.MaxTime {
		u.watermark = bound
		u.punctOut++
		ctx.free(t)
		ctx.Emit(tuple.GetPunct(bound))
		return true
	}
	if t.IsEOS() && u.allEOS(ctx) {
		u.punctOut++
		ctx.free(t)
		ctx.Emit(tuple.EOS())
		return true
	}
	ctx.free(t) // absorbed: the bound did not advance
	return false
}

// barrierHost hooks (see barrier.go).

func (u *Union) replayData(ctx *Ctx, _ int, t *tuple.Tuple) {
	u.dataOut++
	ctx.Emit(t)
}

func (u *Union) replayPunct(ctx *Ctx, _ int, t *tuple.Tuple) {
	u.punctStep(ctx, t)
}

func (u *Union) barrierBound(ctx *Ctx) tuple.Time {
	u.regs.Observe(ctx.Ins)
	bound, _ := u.regs.Min()
	return bound
}

func (u *Union) emitBarrier(ctx *Ctx, id uint64, bound tuple.Time) {
	if bound > u.watermark && bound != tuple.MaxTime {
		u.watermark = bound
	}
	u.punctOut++
	ctx.barrier(id, bound)
	p := tuple.GetPunct(bound)
	p.Ckpt = id
	ctx.Emit(p)
}

// allEOS reports whether every register has reached end-of-stream.
func (u *Union) allEOS(ctx *Ctx) bool {
	for i := 0; i < u.regs.Len(); i++ {
		if u.regs.Get(i) != tuple.MaxTime {
			return false
		}
	}
	return true
}

func (u *Union) execLatent(ctx *Ctx) bool {
	// Round-robin across non-empty inputs so no stream starves.
	n := len(ctx.Ins)
	for k := 0; k < n; k++ {
		i := (u.rr + k) % n
		if ctx.Ins[i].Empty() {
			continue
		}
		u.rr = (i + 1) % n
		t := ctx.Ins[i].Pop()
		if t.IsPunct() {
			ctx.free(t)
			return false // latent streams need no punctuation
		}
		u.dataOut++
		ctx.Emit(t)
		return true
	}
	return false
}
