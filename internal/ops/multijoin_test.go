package ops

import (
	"testing"

	"repro/internal/tuple"
	"repro/internal/window"
)

func TestMultiJoinValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"one input":  func() { NewMultiJoin("j", nil, 1, window.TimeWindow(10), nil) },
		"bad window": func() { NewMultiJoin("j", nil, 3, window.Spec{}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			fn()
		}()
	}
}

func TestMultiEquiJoinPredicate(t *testing.T) {
	p := MultiEquiJoin(0, 0, 0)
	a := keyed(1, 5)
	b := keyed(2, 5)
	c := keyed(3, 5)
	if !p([]*tuple.Tuple{a, b, c}) {
		t.Error("equal keys rejected")
	}
	if p([]*tuple.Tuple{a, b, keyed(3, 6)}) {
		t.Error("unequal keys accepted")
	}
}

func TestThreeWayJoin(t *testing.T) {
	j := NewMultiJoin("j", nil, 3, window.TimeWindow(100), MultiEquiJoin(0, 0, 0))
	h := newHarness(j)
	// Key 7 appears on all three inputs within the window; key 8 on two.
	h.ins[0].Push(keyed(1, 7))
	h.ins[1].Push(keyed(2, 7))
	h.ins[2].Push(keyed(3, 7))
	h.ins[0].Push(keyed(4, 8))
	h.ins[1].Push(keyed(5, 8))
	for i := 0; i < 3; i++ {
		h.ins[i].Push(tuple.EOS())
	}
	h.run()
	d := h.data()
	if len(d) != 1 {
		t.Fatalf("combinations = %v", d)
	}
	// Output carries input-order concatenated values at the arrival ts of
	// the completing tuple.
	if d[0].Ts != 3 || len(d[0].Vals) != 3 {
		t.Fatalf("combination = %v", d[0])
	}
	for _, v := range d[0].Vals {
		if v.AsInt() != 7 {
			t.Fatalf("combination vals = %v", d[0].Vals)
		}
	}
	if j.DataEmitted() != 1 {
		t.Errorf("DataEmitted = %d", j.DataEmitted())
	}
	// EOS propagated once all inputs hit it.
	p := h.puncts()
	if len(p) == 0 || !p[len(p)-1].IsEOS() {
		t.Fatalf("EOS not propagated: %v", p)
	}
}

func TestMultiJoinRequiresBoundOnEveryInput(t *testing.T) {
	j := NewMultiJoin("j", nil, 3, window.TimeWindow(100), MultiEquiJoin(0, 0, 0))
	h := newHarness(j)
	h.ins[0].Push(keyed(1, 7))
	h.ins[1].Push(keyed(2, 7))
	if j.More(h.ctx) {
		t.Fatal("must wait for a bound on input 2")
	}
	if b := j.BlockingInput(h.ctx); b != 2 {
		t.Fatalf("BlockingInput = %d", b)
	}
	// A punctuation on input 2 releases input 0's tuple; input 1 then
	// waits on input 0's register (1) until a bound arrives there too.
	h.ins[2].Push(tuple.NewPunct(50))
	h.run()
	if !h.ins[0].Empty() {
		t.Fatal("input 0 should have drained")
	}
	if h.ins[1].Empty() {
		t.Fatal("input 1 must wait for a bound on drained input 0")
	}
	h.ins[0].Push(tuple.NewPunct(50))
	h.run()
	if !h.ins[1].Empty() {
		t.Fatal("input 1 should have drained after the bound")
	}
	if j.Window(0).Len() != 1 || j.Window(1).Len() != 1 {
		t.Fatal("tuples should sit in their windows")
	}
}

func TestMultiJoinPunctExpiresWindows(t *testing.T) {
	j := NewMultiJoin("j", nil, 3, window.TimeWindow(10), func([]*tuple.Tuple) bool { return true })
	h := newHarness(j)
	h.ins[0].Push(keyed(0, 1))
	h.ins[1].Push(tuple.NewPunct(0))
	h.ins[2].Push(tuple.NewPunct(0))
	h.run()
	if j.Window(0).Len() != 1 {
		t.Fatalf("window 0 = %d", j.Window(0).Len())
	}
	for i := 0; i < 3; i++ {
		h.ins[i].Push(tuple.NewPunct(100))
	}
	h.run()
	if j.Window(0).Len() != 0 {
		t.Fatalf("punct failed to expire window: %d live", j.Window(0).Len())
	}
	if len(h.puncts()) == 0 {
		t.Fatal("bound not propagated")
	}
}

func TestMultiJoinCrossProductCount(t *testing.T) {
	// 2 tuples on each of inputs 1 and 2 in-window, then 1 tuple arrives
	// on input 0: 1×2×2 = 4 combinations.
	j := NewMultiJoin("j", nil, 3, window.TimeWindow(1000), func([]*tuple.Tuple) bool { return true })
	h := newHarness(j)
	h.ins[1].Push(keyed(1, 10))
	h.ins[1].Push(keyed(2, 11))
	h.ins[2].Push(keyed(3, 20))
	h.ins[2].Push(keyed(4, 21))
	h.ins[0].Push(keyed(5, 30))
	for i := 0; i < 3; i++ {
		h.ins[i].Push(tuple.EOS())
	}
	h.run()
	if got := len(h.data()); got != 4 {
		t.Fatalf("combinations = %d, want 4", got)
	}
}
