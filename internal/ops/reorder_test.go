package ops

import (
	"testing"
	"testing/quick"

	"repro/internal/tuple"
)

func TestReorderRejectsNegativeSlack(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative slack accepted")
		}
	}()
	NewReorder("r", nil, -1)
}

func TestReorderSortsWithinSlack(t *testing.T) {
	r := NewReorder("r", nil, 10)
	h := newHarness(r)
	for _, ts := range []tuple.Time{5, 3, 8, 6, 20, 15, 30} {
		h.ins[0].Push(tuple.NewData(ts))
	}
	h.run()
	// High-water 30 releases everything ≤ 20.
	wantTs(t, h.data(), 3, 5, 6, 8, 15, 20)
	if r.Buffered() != 1 {
		t.Errorf("buffered = %d", r.Buffered())
	}
	if r.Dropped() != 0 {
		t.Errorf("dropped = %d", r.Dropped())
	}
}

func TestReorderPunctFlushes(t *testing.T) {
	r := NewReorder("r", nil, 100)
	h := newHarness(r)
	h.ins[0].Push(tuple.NewData(5))
	h.ins[0].Push(tuple.NewData(3))
	h.run()
	if len(h.data()) != 0 {
		t.Fatal("slack 100 must hold everything back")
	}
	h.ins[0].Push(tuple.NewPunct(10))
	h.run()
	wantTs(t, h.data(), 3, 5)
	p := h.puncts()
	if len(p) != 1 || p[0].Ts != 10 {
		t.Fatalf("punct pass-through = %v", p)
	}
}

func TestReorderDropsLateTuples(t *testing.T) {
	r := NewReorder("r", nil, 5)
	h := newHarness(r)
	h.ins[0].Push(tuple.NewData(100)) // releases everything ≤ 95
	h.ins[0].Push(tuple.NewData(50))  // < released high bound? released=MinTime yet
	h.run()
	// 100 arrives: nothing released yet (heap: {100}, release bound 95 →
	// nothing ≤ 95 except... 100 > 95 stays). 50 arrives: bound still 95
	// → releases 50. Order is fine since nothing was emitted before it.
	wantTs(t, h.data(), 50)
	// Now a punct at 200 flushes 100; a later tuple at 90 is too late.
	h.ins[0].Push(tuple.NewPunct(200))
	h.run()
	wantTs(t, h.data(), 50, 100)
	h.ins[0].Push(tuple.NewData(90))
	h.run()
	if r.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", r.Dropped())
	}
	wantTs(t, h.data(), 50, 100)
}

func TestReorderSimultaneousWithReleased(t *testing.T) {
	r := NewReorder("r", nil, 0)
	h := newHarness(r)
	h.ins[0].Push(tuple.NewData(10))
	h.run()
	// Slack 0: high-water 10 releases ts ≤ 10 immediately.
	wantTs(t, h.data(), 10)
	// An equal-timestamp tuple is not "late": simultaneous tuples pass.
	h.ins[0].Push(tuple.NewData(10))
	h.run()
	wantTs(t, h.data(), 10, 10)
	if r.Dropped() != 0 {
		t.Errorf("dropped = %d", r.Dropped())
	}
}

func TestReorderEOSFlushesAll(t *testing.T) {
	r := NewReorder("r", nil, 1000)
	h := newHarness(r)
	h.ins[0].Push(tuple.NewData(7))
	h.ins[0].Push(tuple.NewData(2))
	h.ins[0].Push(tuple.EOS())
	h.run()
	wantTs(t, h.data(), 2, 7)
	p := h.puncts()
	if len(p) != 1 || !p[0].IsEOS() {
		t.Fatalf("EOS = %v", p)
	}
	if r.Emitted() != 2 {
		t.Errorf("Emitted = %d", r.Emitted())
	}
}

// Property: for any input sequence with bounded disorder ≤ slack, the
// reorder operator emits every tuple, in nondecreasing timestamp order.
func TestReorderProperty(t *testing.T) {
	f := func(gaps []uint8, jitter []uint8, slackRaw uint8) bool {
		slack := tuple.Time(slackRaw%32) + 32 // ≥ max jitter
		r := NewReorder("r", nil, slack)
		h := newHarness(r)
		base := tuple.Time(0)
		n := 0
		for i, g := range gaps {
			base += tuple.Time(g % 16)
			ts := base
			if i < len(jitter) {
				ts -= tuple.Time(jitter[i] % 32) // bounded backward jitter
			}
			if ts < 0 {
				ts = 0
			}
			h.ins[0].Push(tuple.NewData(ts))
			n++
		}
		h.ins[0].Push(tuple.EOS())
		h.run()
		d := h.data()
		if len(d)+int(r.Dropped()) != n {
			return false
		}
		// With jitter < slack... jitter max 31 < slack min 32: nothing
		// may be dropped and order must hold.
		if r.Dropped() != 0 {
			return false
		}
		prev := tuple.MinTime
		for _, tp := range d {
			if tp.Ts < prev {
				return false
			}
			prev = tp.Ts
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReorderFeedsUnionCleanly(t *testing.T) {
	// Integration: disordered input → reorder → TSM union stays sound.
	u := NewUnion("u", nil, 2, TSM)
	r := NewReorder("r", nil, 10)
	hr := newHarness(r)
	hu := newHarness(u)
	for _, ts := range []tuple.Time{4, 2, 9, 7, 30} {
		hr.ins[0].Push(tuple.NewData(ts))
	}
	hr.ins[0].Push(tuple.EOS())
	hr.run()
	for _, tp := range hr.out {
		hu.ins[0].Push(tp)
	}
	hu.ins[1].Push(tuple.EOS())
	hu.run()
	wantTs(t, hu.data(), 2, 4, 7, 9, 30)
}
