package ops

import (
	"fmt"

	"repro/internal/tsm"
	"repro/internal/tuple"
	"repro/internal/window"
)

// JoinPred decides whether a left tuple joins with a right tuple.
type JoinPred func(left, right *tuple.Tuple) bool

// EquiJoin returns a predicate matching tuples whose values at the given
// column positions are equal.
func EquiJoin(leftCol, rightCol int) JoinPred {
	return func(l, r *tuple.Tuple) bool {
		return l.Vals[leftCol].Equal(r.Vals[rightCol])
	}
}

// CrossJoin matches every pair.
func CrossJoin() JoinPred { return func(_, _ *tuple.Tuple) bool { return true } }

// WindowJoin is the symmetric sliding-window join of Kang, Naughton and
// Viglas, the semantics the paper adopts (§2, Figure 1; extended rules in
// Figure 6). Each side keeps a window store; a new tuple on one side joins
// against the opposite window, then enters its own window.
//
// Like Union it supports Basic, TSM and LatentMode execution. In TSM mode
// punctuation both unblocks the join (via the registers) and *expires
// opposite-window state* — the memory-saving effect the paper measures.
type WindowJoin struct {
	base
	mode IWPMode
	pred JoinPred
	regs *tsm.Registers
	win  [2]*window.Store

	// hashed equi-join state: when keyCols is set, hwin replaces win and
	// probes are O(matches) instead of a window scan. hasKeys records that
	// keyCols is meaningful (hash joins and explicit equi-joins); it is what
	// makes the join partitionable.
	hashed  bool
	hasKeys bool
	keyCols [2]int
	hwin    [2]*window.HashStore

	// mag pools the join's output tuples. Safe without synchronization: an
	// operator is single-owner, executed by one node goroutine at a time.
	mag tuple.Magazine

	// DedupPunct is as for Union.
	DedupPunct bool
	watermark  tuple.Time
	al         aligner // checkpoint-barrier alignment (TSM mode)

	dataOut  uint64
	punctOut uint64
	consumed [2]uint64
}

// NewWindowJoin builds a binary symmetric window join with a nested-loop
// probe. Both sides use the same window spec; pred decides matches.
func NewWindowJoin(name string, schema *tuple.Schema, spec window.Spec, pred JoinPred, mode IWPMode) *WindowJoin {
	if err := spec.Validate(); err != nil {
		panic(fmt.Sprintf("join %s: %v", name, err))
	}
	j := &WindowJoin{
		base:       base{name: name, inputs: 2, schema: schema},
		mode:       mode,
		pred:       pred,
		DedupPunct: true,
		watermark:  tuple.MinTime,
	}
	j.win[0] = window.NewStore(spec)
	j.win[1] = window.NewStore(spec)
	if mode == TSM {
		j.regs = tsm.New(2)
	}
	return j
}

// NewHashWindowJoin builds a binary symmetric window equi-join whose window
// stores carry a hash index on the join columns, turning each probe from a
// window scan into an O(matches) lookup. Asymmetric per-side window specs
// are supported (the paper's "asymmetric joins", §2).
func NewHashWindowJoin(name string, schema *tuple.Schema, specL, specR window.Spec, leftCol, rightCol int, mode IWPMode) *WindowJoin {
	if err := specL.Validate(); err != nil {
		panic(fmt.Sprintf("join %s: left %v", name, err))
	}
	if err := specR.Validate(); err != nil {
		panic(fmt.Sprintf("join %s: right %v", name, err))
	}
	j := &WindowJoin{
		base:       base{name: name, inputs: 2, schema: schema},
		mode:       mode,
		pred:       EquiJoin(leftCol, rightCol),
		hashed:     true,
		hasKeys:    true,
		keyCols:    [2]int{leftCol, rightCol},
		DedupPunct: true,
		watermark:  tuple.MinTime,
	}
	j.hwin[0] = window.NewHashStore(specL, leftCol)
	j.hwin[1] = window.NewHashStore(specR, rightCol)
	if mode == TSM {
		j.regs = tsm.New(2)
	}
	return j
}

// NewEquiWindowJoin builds a binary symmetric window equi-join with a
// nested-loop probe (every probe scans the opposite window, testing the key
// columns per pair). It trades probe cost for insert cost versus
// NewHashWindowJoin — but unlike NewWindowJoin's opaque predicate, the known
// key columns make the join partitionable, and hash-sharding it P ways cuts
// every scan to the shard's 1/P slice of the window.
func NewEquiWindowJoin(name string, schema *tuple.Schema, specL, specR window.Spec, leftCol, rightCol int, mode IWPMode) *WindowJoin {
	if err := specL.Validate(); err != nil {
		panic(fmt.Sprintf("join %s: left %v", name, err))
	}
	if err := specR.Validate(); err != nil {
		panic(fmt.Sprintf("join %s: right %v", name, err))
	}
	j := &WindowJoin{
		base:       base{name: name, inputs: 2, schema: schema},
		mode:       mode,
		pred:       EquiJoin(leftCol, rightCol),
		hasKeys:    true,
		keyCols:    [2]int{leftCol, rightCol},
		DedupPunct: true,
		watermark:  tuple.MinTime,
	}
	j.win[0] = window.NewStore(specL)
	j.win[1] = window.NewStore(specR)
	if mode == TSM {
		j.regs = tsm.New(2)
	}
	return j
}

// expireSide expires side i's window against the bound ts.
func (j *WindowJoin) expireSide(i int, ts tuple.Time) {
	if j.hashed {
		j.hwin[i].ExpireTo(ts)
	} else {
		j.win[i].ExpireTo(ts)
	}
}

// sideLen reports the live-tuple count of side i's window.
func (j *WindowJoin) sideLen(i int) int {
	if j.hashed {
		return j.hwin[i].Len()
	}
	return j.win[i].Len()
}

// Mode reports the join's execution mode.
func (j *WindowJoin) Mode() IWPMode { return j.mode }

// Window exposes the window store of side i (0 = left, 1 = right); it is
// nil for hash joins (use HashWindow).
func (j *WindowJoin) Window(i int) *window.Store { return j.win[i] }

// HashWindow exposes the hash-indexed window store of side i; it is nil
// unless the join was built with NewHashWindowJoin.
func (j *WindowJoin) HashWindow(i int) *window.HashStore { return j.hwin[i] }

// WindowLen reports the live-tuple count of side i's window, for either
// store kind.
func (j *WindowJoin) WindowLen(i int) int { return j.sideLen(i) }

// DataEmitted reports the number of joined tuples emitted.
func (j *WindowJoin) DataEmitted() uint64 { return j.dataOut }

// PunctEmitted reports the number of punctuation tuples emitted.
func (j *WindowJoin) PunctEmitted() uint64 { return j.punctOut }

// Consumed reports the number of data tuples consumed from side i.
func (j *WindowJoin) Consumed(i int) uint64 { return j.consumed[i] }

// Watermark reports the highest bound the join has conveyed downstream
// (MinTime before the first punctuation) — the overlay's live progress mark.
func (j *WindowJoin) Watermark() tuple.Time { return j.watermark }

// More implements the mode's `more` condition.
func (j *WindowJoin) More(ctx *Ctx) bool {
	switch j.mode {
	case Basic:
		return allNonEmpty(ctx.Ins)
	case TSM:
		j.regs.Observe(ctx.Ins)
		if j.al.ready(ctx.Ins) >= 0 {
			return true
		}
		ok, _, _ := j.regs.More(ctx.Ins)
		return ok
	default:
		return anyNonEmpty(ctx.Ins) >= 0
	}
}

// BlockingInput identifies the input to backtrack into when More is false.
func (j *WindowJoin) BlockingInput(ctx *Ctx) int {
	switch j.mode {
	case Basic:
		return firstEmpty(ctx.Ins)
	case TSM:
		j.regs.Observe(ctx.Ins)
		if j.al.ready(ctx.Ins) >= 0 {
			return -1
		}
		if ok, _, _ := j.regs.More(ctx.Ins); ok {
			return -1
		}
		return j.regs.BlockingInput(ctx.Ins)
	default:
		return -1
	}
}

// Exec performs one production/consumption step per the mode's rules.
func (j *WindowJoin) Exec(ctx *Ctx) bool {
	switch j.mode {
	case Basic:
		return j.execBasic(ctx)
	case TSM:
		return j.execTSM(ctx)
	default:
		return j.execLatent(ctx)
	}
}

func (j *WindowJoin) execBasic(ctx *Ctx) bool {
	if !allNonEmpty(ctx.Ins) {
		return false
	}
	// The side whose head has the smaller (or equal) timestamp produces
	// (Figure 1; ties broken toward side 0, which the paper allows: the
	// order of simultaneous tuples is nondeterministic).
	side := 0
	if ctx.Ins[1].Peek().Ts < ctx.Ins[0].Peek().Ts {
		side = 1
	}
	t := ctx.Ins[side].Pop()
	if t.IsPunct() {
		ctx.free(t)
		return false
	}
	return j.produce(ctx, side, t)
}

func (j *WindowJoin) execTSM(ctx *Ctx) bool {
	j.regs.Observe(ctx.Ins)
	var t *tuple.Tuple
	τ := tuple.MinTime
	side := j.al.ready(ctx.Ins)
	if side >= 0 {
		// A checkpoint barrier at the head of an unaligned input is
		// consumable regardless of τ (see barrier.go).
		t = ctx.Ins[side].Pop()
	} else {
		ok, s, bound := j.regs.More(ctx.Ins)
		if !ok {
			return false
		}
		side, τ = s, bound
		t = ctx.Ins[side].Pop()
	}
	if handled, yield := handleBarrier(&j.al, j, ctx, side, t); handled {
		return yield
	}
	if !t.IsPunct() {
		if τ > j.watermark {
			j.watermark = τ
		}
		return j.produce(ctx, side, t)
	}
	return j.punctStep(ctx, side, t)
}

// punctStep runs the TSM punctuation rule for a consumed punctuation with
// timestamp t.Ts on side: nothing joinable on the opposite side below t.Ts
// remains possible, so expire state and propagate the bound (Figure 6, last
// production rule).
func (j *WindowJoin) punctStep(ctx *Ctx, side int, t *tuple.Tuple) bool {
	j.expireSide(1-side, t.Ts)
	j.regs.Observe(ctx.Ins)
	bound, _ := j.regs.Min()
	if !j.DedupPunct {
		j.punctOut++
		ctx.Emit(t)
		return true
	}
	if bound > j.watermark && bound != tuple.MaxTime {
		j.watermark = bound
		j.punctOut++
		ctx.free(t)
		ctx.Emit(tuple.GetPunct(bound))
		return true
	}
	if t.IsEOS() && j.regs.Get(0) == tuple.MaxTime && j.regs.Get(1) == tuple.MaxTime {
		j.punctOut++
		ctx.free(t)
		ctx.Emit(tuple.EOS())
		return true
	}
	ctx.free(t) // absorbed: the bound did not advance
	return false
}

// barrierHost hooks (see barrier.go).

func (j *WindowJoin) replayData(ctx *Ctx, side int, t *tuple.Tuple) {
	j.produce(ctx, side, t)
}

func (j *WindowJoin) replayPunct(ctx *Ctx, side int, t *tuple.Tuple) {
	j.punctStep(ctx, side, t)
}

func (j *WindowJoin) barrierBound(ctx *Ctx) tuple.Time {
	j.regs.Observe(ctx.Ins)
	bound, _ := j.regs.Min()
	return bound
}

func (j *WindowJoin) emitBarrier(ctx *Ctx, id uint64, bound tuple.Time) {
	if bound > j.watermark && bound != tuple.MaxTime {
		j.watermark = bound
	}
	j.punctOut++
	ctx.barrier(id, bound)
	p := tuple.GetPunct(bound)
	p.Ckpt = id
	ctx.Emit(p)
}

func (j *WindowJoin) execLatent(ctx *Ctx) bool {
	side := anyNonEmpty(ctx.Ins)
	if side < 0 {
		return false
	}
	t := ctx.Ins[side].Pop()
	if t.IsPunct() {
		ctx.free(t)
		return false
	}
	// Latent tuples are stamped on the fly by operators that need
	// timestamps (§5); the join needs one for window extents.
	if t.Ts == tuple.MinTime {
		t = t.WithTs(ctx.Now())
	}
	return j.produce(ctx, side, t)
}

// produce implements the production+consumption pair of Figure 1/6: join t
// (arriving on side) against the opposite window, emit matches, then move t
// into its own window. A match carries the larger of the two participants'
// timestamps: with ordered arcs that is always t's own (the opposite window
// holds nothing newer than the arriving tuple under TSM ordering), but when
// an over-estimated ETS let a late tuple through, the max keeps the output
// identical to what ordered execution would have emitted.
func (j *WindowJoin) produce(ctx *Ctx, side int, t *tuple.Tuple) bool {
	j.expireSide(1-side, t.Ts)
	yield := false
	match := func(o *tuple.Tuple) {
		var l, r *tuple.Tuple
		if side == 0 {
			l, r = t, o
		} else {
			l, r = o, t
		}
		if !j.pred(l, r) {
			return
		}
		ts := t.Ts
		if o.Ts > ts {
			ts = o.Ts
		}
		// Output tuples come from the node-local magazine: a hash join's
		// probe loop is one of the engine's hottest allocation sites, and
		// downstream recycling feeds the same slab economy.
		out := j.mag.GetData(ts, len(l.Vals)+len(r.Vals))
		copy(out.Vals, l.Vals)
		copy(out.Vals[len(l.Vals):], r.Vals)
		out.Arrived = t.Arrived
		j.dataOut++
		yield = true
		ctx.Emit(out)
	}
	if j.hashed {
		j.hwin[1-side].Probe(t.Vals[j.keyCols[side]], match)
		j.hwin[side].Insert(t)
	} else {
		j.win[1-side].Each(match)
		j.win[side].Insert(t)
	}
	j.consumed[side]++
	return yield
}
