package ops

import (
	"testing"
	"testing/quick"

	"repro/internal/tuple"
	"repro/internal/window"
)

func keyed(ts tuple.Time, key int64) *tuple.Tuple {
	return tuple.NewData(ts, tuple.Int(key))
}

func TestJoinRejectsBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("degenerate window spec must panic")
		}
	}()
	NewWindowJoin("j", nil, window.Spec{}, CrossJoin(), Basic)
}

func TestEquiJoinPredicate(t *testing.T) {
	p := EquiJoin(0, 0)
	if !p(keyed(1, 5), keyed(2, 5)) || p(keyed(1, 5), keyed(2, 6)) {
		t.Error("EquiJoin predicate wrong")
	}
}

func TestBasicJoinMatchesWithinWindow(t *testing.T) {
	j := NewWindowJoin("j", nil, window.TimeWindow(10), EquiJoin(0, 0), Basic)
	h := newHarness(j)
	h.ins[0].Push(keyed(1, 7))
	h.ins[0].Push(keyed(5, 8))
	h.ins[1].Push(keyed(3, 7))
	h.ins[1].Push(keyed(6, 8))
	h.run()
	// 1:A(7) joins nothing; 3:B(7) joins A(7); 5:A(8) joins nothing.
	// Then input A drains and the Figure-1 rules idle-wait: B(6,8) is
	// stranded even though its match already sits in W(A).
	d := h.data()
	if len(d) != 1 || d[0].Ts != 3 {
		t.Fatalf("joined pairs = %v", d)
	}
	// Output layout is always (left values, right values).
	if d[0].Vals[0].AsInt() != 7 || len(d[0].Vals) != 2 {
		t.Errorf("output vals = %v", d[0].Vals)
	}
	// A later A tuple releases the stranded B tuple.
	h.ins[0].Push(keyed(7, 99))
	h.run()
	d = h.data()
	if len(d) != 2 || d[1].Ts != 6 {
		t.Fatalf("after release: %v", d)
	}
	if j.DataEmitted() != 2 || j.Consumed(0) != 2 || j.Consumed(1) != 2 {
		t.Errorf("counters: %d out, %d/%d in", j.DataEmitted(), j.Consumed(0), j.Consumed(1))
	}
}

func TestJoinWindowExpiration(t *testing.T) {
	j := NewWindowJoin("j", nil, window.TimeWindow(10), CrossJoin(), Basic)
	h := newHarness(j)
	h.ins[0].Push(keyed(0, 1))
	h.ins[1].Push(keyed(100, 2)) // far beyond window: A(0) must have expired
	h.ins[0].Push(keyed(200, 3)) // releases B(100) under the Figure-1 rules
	h.run()
	if len(h.data()) != 0 {
		t.Fatalf("expired tuple joined: %v", h.data())
	}
	// Processing B(100) expired A(0) from the left window. A(200) itself
	// is still stranded in the input buffer (B drained → Figure-1 rules
	// idle-wait), so the window is empty.
	if j.Window(0).Len() != 0 {
		t.Errorf("left window: %v", j.Window(0).Snapshot())
	}
	if h.ins[0].Len() != 1 || h.ins[0].Peek().Ts != 200 {
		t.Errorf("expected A(200) stranded, buffer: %v", h.ins[0].Peek())
	}
}

func TestJoinBoundaryExactlyInWindow(t *testing.T) {
	j := NewWindowJoin("j", nil, window.TimeWindow(10), CrossJoin(), TSM)
	h := newHarness(j)
	h.ins[0].Push(keyed(0, 1))
	h.ins[0].Push(tuple.EOS())
	h.ins[1].Push(keyed(10, 2)) // |10-0| == span: still joins
	h.ins[1].Push(tuple.EOS())
	h.run()
	if len(h.data()) != 1 {
		t.Fatalf("boundary pair did not join: %v", h.data())
	}
}

func TestBasicJoinIdleWaits(t *testing.T) {
	j := NewWindowJoin("j", nil, window.TimeWindow(10), CrossJoin(), Basic)
	h := newHarness(j)
	h.ins[0].Push(keyed(1, 1))
	if j.More(h.ctx) {
		t.Fatal("basic join must idle-wait on empty input")
	}
	if j.BlockingInput(h.ctx) != 1 {
		t.Errorf("BlockingInput = %d", j.BlockingInput(h.ctx))
	}
}

func TestTSMJoinUnblockedByPunct(t *testing.T) {
	j := NewWindowJoin("j", nil, window.TimeWindow(100), EquiJoin(0, 0), TSM)
	h := newHarness(j)
	h.ins[0].Push(keyed(10, 1))
	h.ins[1].Push(keyed(5, 1))
	h.run()
	// B(5) processed first (τ=5), joins empty A-window; A(10) waits: B's
	// register is 5 and B is empty.
	if len(h.data()) != 0 {
		t.Fatalf("premature join output: %v", h.data())
	}
	if j.More(h.ctx) {
		t.Fatal("A(10) must wait for a bound on B")
	}
	if j.BlockingInput(h.ctx) != 1 {
		t.Fatalf("BlockingInput = %d", j.BlockingInput(h.ctx))
	}
	h.ins[1].Push(tuple.NewPunct(50))
	h.run()
	// Bound releases A(10), which joins B(5) sitting in the window.
	d := h.data()
	if len(d) != 1 || d[0].Ts != 10 {
		t.Fatalf("join after ETS = %v", d)
	}
	// Output punct carries min(50, 10) = 10: suppressed as it does not
	// advance past the data tuple at 10. (watermark == 10 already)
	if len(h.puncts()) != 0 {
		t.Fatalf("puncts = %v", h.puncts())
	}
}

func TestTSMJoinPunctExpiresOppositeWindow(t *testing.T) {
	j := NewWindowJoin("j", nil, window.TimeWindow(10), CrossJoin(), TSM)
	h := newHarness(j)
	h.ins[0].Push(keyed(0, 1))
	h.ins[1].Push(tuple.NewPunct(0)) // establish bound on B
	h.run()
	if j.Window(0).Len() != 1 {
		t.Fatalf("left window = %d", j.Window(0).Len())
	}
	// Punctuation at 100 on both inputs proves no tuple below 100 will
	// come; A(0) can never join again and memory is reclaimed without any
	// data flowing. (The bound is needed on A too: until A's register
	// advances, the join may not consume B's punctuation out of order.)
	h.ins[0].Push(tuple.NewPunct(100))
	h.ins[1].Push(tuple.NewPunct(100))
	h.run()
	if j.Window(0).Len() != 0 {
		t.Fatalf("ETS failed to expire window: %d live", j.Window(0).Len())
	}
	// And the bound was propagated downstream.
	p := h.puncts()
	if len(p) == 0 {
		t.Fatal("no punct propagated")
	}
}

func TestTSMJoinPunctForwardedNoDedup(t *testing.T) {
	j := NewWindowJoin("j", nil, window.TimeWindow(10), CrossJoin(), TSM)
	j.DedupPunct = false
	h := newHarness(j)
	h.ins[0].Push(tuple.NewPunct(5))
	h.ins[1].Push(tuple.NewPunct(5))
	h.run()
	if len(h.puncts()) != 2 {
		t.Fatalf("puncts = %v", h.puncts())
	}
}

func TestTSMJoinSimultaneous(t *testing.T) {
	j := NewWindowJoin("j", nil, window.TimeWindow(100), EquiJoin(0, 0), TSM)
	h := newHarness(j)
	h.ins[0].Push(keyed(10, 1))
	h.ins[1].Push(keyed(10, 1))
	h.run()
	// Both sides at τ=10: one is consumed into its window, then the other
	// joins it. No idle-waiting, exactly one pair.
	d := h.data()
	if len(d) != 1 || d[0].Ts != 10 {
		t.Fatalf("simultaneous join = %v", d)
	}
}

func TestTSMJoinEOS(t *testing.T) {
	j := NewWindowJoin("j", nil, window.TimeWindow(10), CrossJoin(), TSM)
	h := newHarness(j)
	h.ins[0].Push(keyed(1, 1))
	h.ins[0].Push(tuple.EOS())
	h.ins[1].Push(keyed(2, 2))
	h.ins[1].Push(tuple.EOS())
	h.run()
	if len(h.data()) != 1 {
		t.Fatalf("data = %v", h.data())
	}
	p := h.puncts()
	if len(p) == 0 || !p[len(p)-1].IsEOS() {
		t.Fatalf("EOS not propagated: %v", p)
	}
}

func TestLatentJoinStampsOnTheFly(t *testing.T) {
	j := NewWindowJoin("j", nil, window.TimeWindow(1000), CrossJoin(), LatentMode)
	h := newHarness(j)
	h.now = 77
	h.ins[0].Push(tuple.NewData(tuple.MinTime, tuple.Int(1)))
	h.run()
	h.now = 80
	h.ins[1].Push(tuple.NewData(tuple.MinTime, tuple.Int(2)))
	h.run()
	d := h.data()
	if len(d) != 1 || d[0].Ts != 80 {
		t.Fatalf("latent join = %v", d)
	}
	if j.Window(0).Newest().Ts != 77 {
		t.Errorf("latent stamp = %v, want 77", j.Window(0).Newest().Ts)
	}
	if j.BlockingInput(h.ctx) != -1 {
		t.Error("latent join never blocks")
	}
}

func TestJoinRowWindow(t *testing.T) {
	j := NewWindowJoin("j", nil, window.RowWindow(2), CrossJoin(), TSM)
	h := newHarness(j)
	for i := 0; i < 4; i++ {
		h.ins[0].Push(keyed(tuple.Time(i), int64(i)))
	}
	h.ins[1].Push(tuple.NewPunct(3)) // bound lets all A tuples in
	h.run()
	h.ins[1].Push(keyed(4, 9))
	h.ins[0].Push(tuple.NewPunct(10))
	h.run()
	// B(4) joins only the last 2 A tuples (row window).
	if len(h.data()) != 2 {
		t.Fatalf("row-window join = %v", h.data())
	}
}

// Property: TSM join emits every qualifying pair exactly once when both
// streams terminate with EOS, matching a brute-force reference join.
func TestTSMJoinCompletenessProperty(t *testing.T) {
	f := func(aGaps, bGaps []uint8, spanRaw uint8) bool {
		span := tuple.Time(spanRaw%20 + 1)
		j := NewWindowJoin("j", nil, window.TimeWindow(span), CrossJoin(), TSM)
		h := newHarness(j)
		var as, bs []tuple.Time
		ts := tuple.Time(0)
		for _, g := range aGaps {
			ts += tuple.Time(g % 8)
			as = append(as, ts)
			h.ins[0].Push(tuple.NewData(ts))
		}
		h.ins[0].Push(tuple.EOS())
		ts = 0
		for _, g := range bGaps {
			ts += tuple.Time(g % 8)
			bs = append(bs, ts)
			h.ins[1].Push(tuple.NewData(ts))
		}
		h.ins[1].Push(tuple.EOS())
		h.run()
		want := 0
		for _, a := range as {
			for _, b := range bs {
				d := a - b
				if d < 0 {
					d = -d
				}
				if d <= span {
					want++
				}
			}
		}
		return len(h.data()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
