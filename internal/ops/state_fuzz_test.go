package ops

import (
	"bytes"
	"container/heap"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/tuple"
	"repro/internal/window"
)

// stateFuzzPanel builds one fresh instance of every stateful operator kind,
// each carrying a little non-trivial state so the seed corpus exercises the
// interesting encoding paths (estimator history, TSM registers, open
// aggregate windows, held reorder tuples, sink hooks).
func stateFuzzPanel() []func() Stateful {
	extSchema := tuple.NewSchema("s", tuple.Field{Name: "v", Kind: tuple.IntKind}).WithTS(tuple.External)
	return []func() Stateful{
		func() Stateful {
			s := NewSource("src", extSchema, 8)
			s.seq, s.emitted, s.etsEmitted = 5, 5, 2
			s.est.SetState(100, 90, true, 99, true)
			return s
		},
		func() Stateful {
			s := NewSource("srci", nil, 0) // internal timestamps
			s.seq, s.emitted = 3, 3
			return s
		},
		func() Stateful {
			k := NewSink("snk", nil)
			val := uint64(7)
			k.StateHooks(
				func(enc *ckpt.Encoder) { enc.U64(val) },
				func(dec *ckpt.Decoder) error { val = dec.U64(); return dec.Err() },
			)
			k.received, k.punct = 3, 1
			return k
		},
		func() Stateful {
			u := NewUnion("u", nil, 2, TSM)
			u.watermark, u.dataOut, u.punctOut = 50, 4, 2
			u.regs.Set(0, 10)
			u.regs.Set(1, 20)
			return u
		},
		func() Stateful {
			j := NewWindowJoin("j", nil, window.Spec{Rows: 4}, EquiJoin(0, 0), TSM)
			j.watermark = 30
			return j
		},
		func() Stateful {
			return NewHashWindowJoin("hj", nil, window.Spec{Rows: 4}, window.Spec{Span: 16}, 0, 0, TSM)
		},
		func() Stateful {
			return NewMultiEquiJoin("mj", nil, window.Spec{Rows: 4}, 0, 0, 0)
		},
		func() Stateful {
			a := NewSlidingAggregate("agg", nil, 10, 5, 0,
				AggSpec{Fn: Sum, Col: 1}, AggSpec{Fn: Count})
			a.bound = 7
			a.buckets[2] = map[tuple.Value][]*acc{
				tuple.Int(1): {
					{n: 2, sum: 3.5, min: tuple.Int(1), max: tuple.Int(4), seen: true},
					{n: 2},
				},
			}
			return a
		},
		func() Stateful {
			r := NewReorder("r", nil, 4)
			r.high, r.released, r.out = 20, 16, 9
			r.heapq = tsHeap{
				{Ts: 18, Kind: tuple.Data, Arrived: 19, Seq: 11, Vals: []tuple.Value{tuple.Int(9)}},
				{Ts: 19, Kind: tuple.Data, Arrived: 19, Seq: 12},
			}
			heap.Init(&r.heapq)
			return r
		},
		func() Stateful {
			s := NewSplit("sp", nil, 2, 0)
			s.rr = 1
			return s
		},
	}
}

// FuzzStateRoundTrip drives every operator's RestoreState with arbitrary
// bytes: corrupt payloads must be rejected with an error — never a panic or
// an unbounded allocation — and any payload that does restore must satisfy
// the canonical-encoding contract, save → restore → save byte-identical.
func FuzzStateRoundTrip(f *testing.F) {
	for _, mk := range stateFuzzPanel() {
		var enc ckpt.Encoder
		mk().SaveState(&enc)
		f.Add(enc.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, mk := range stateFuzzPanel() {
			op := mk()
			if op.RestoreState(ckpt.NewDecoder(data)) != nil {
				continue // rejected, as corrupt input should be
			}
			var enc ckpt.Encoder
			op.SaveState(&enc)
			op2 := mk()
			dec := ckpt.NewDecoder(enc.Bytes())
			if err := op2.RestoreState(dec); err != nil {
				t.Fatalf("%T: re-restore of own save failed: %v", op, err)
			}
			if err := dec.Done(); err != nil {
				t.Fatalf("%T: save left trailing bytes: %v", op, err)
			}
			var enc2 ckpt.Encoder
			op2.SaveState(&enc2)
			if !bytes.Equal(enc.Bytes(), enc2.Bytes()) {
				t.Fatalf("%T: save → restore → save not byte-identical\n first: %x\nsecond: %x",
					op, enc.Bytes(), enc2.Bytes())
			}
		}
	})
}
