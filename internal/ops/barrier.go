package ops

import (
	"repro/internal/buffer"
	"repro/internal/tuple"
)

// Checkpoint-barrier alignment for multi-input TSM operators.
//
// A barrier is a punctuation whose Ckpt field carries a checkpoint ID. It is
// injected at the sources and flows the arcs like any other punctuation, so
// it inherits shard broadcast and ordering for free. A multi-input operator
// must apply the barrier to a *consistent cut*: once the barrier has been
// consumed from one input, nothing that arrived behind it on that input may
// mutate operator state until the barrier has arrived on every input.
//
// Classic alignment blocks the barriered inputs. Here that would deadlock:
// the relaxed more condition consumes by global τ order, and a blocked input
// stops feeding its TSM register. Instead the operator keeps consuming by the
// normal rules and *stashes verbatim* everything popped from an
// already-barriered input — data and punctuation alike (stashing data only
// would let a post-barrier punctuation expire the opposite window before
// lower-timestamped stashed data replays: a missed join). Registers keep
// advancing because Observe peeks queue heads before they are popped.
//
// One exception to τ-gating: a barrier at the head of a *not yet barriered*
// input is consumable immediately, even above τ. This is safe — everything
// that preceded the barrier on that input was already consumed, the
// barrier's own promise justifies whatever its eventual merged punctuation
// claims, and popping a head never reorders an arc — and it is necessary,
// because a barrier's timestamp (the source's standing bound) can sit above
// τ indefinitely while another input lags.
//
// When the last input's barrier arrives the operator snapshots (Ctx.barrier),
// emits a single merged barrier punctuation downstream, and replays the stash
// in original pop order through the op's replay hooks.

// stashed is one tuple withheld during alignment, with the input it came
// from (joins need the side to replay correctly).
type stashed struct {
	input int
	t     *tuple.Tuple
}

// aligner tracks at most one in-flight barrier for a multi-input operator.
// The zero value is ready to use.
type aligner struct {
	id    uint64 // current barrier ID; 0 = no barrier in flight
	seen  []bool // inputs whose barrier has been consumed
	nseen int
	stash []stashed
}

func (a *aligner) active() bool { return a.id != 0 }

// ready returns the index of an input whose head is a barrier punctuation
// this aligner still needs — the τ-exemption described above — or -1.
func (a *aligner) ready(ins []*buffer.Queue) int {
	for i, q := range ins {
		h := q.Peek()
		if h == nil || !h.IsPunct() || h.Ckpt == 0 {
			continue
		}
		if !a.active() || !a.seen[i] || h.Ckpt != a.id {
			return i
		}
	}
	return -1
}

func (a *aligner) begin(id uint64, n int) {
	a.id = id
	if cap(a.seen) < n {
		a.seen = make([]bool, n)
	} else {
		a.seen = a.seen[:n]
		for i := range a.seen {
			a.seen[i] = false
		}
	}
	a.nseen = 0
}

func (a *aligner) mark(i int) {
	if !a.seen[i] {
		a.seen[i] = true
		a.nseen++
	}
}

func (a *aligner) complete() bool { return a.nseen == len(a.seen) }

func (a *aligner) put(i int, t *tuple.Tuple) {
	a.stash = append(a.stash, stashed{input: i, t: t})
}

// take returns the stash and resets the aligner to inactive.
func (a *aligner) take() []stashed {
	s := a.stash
	a.stash = nil
	a.id = 0
	a.nseen = 0
	return s
}

// barrierHost is the per-operator surface the shared alignment logic drives.
// All three multi-input TSM operators (union, window join, multiway join)
// implement it.
type barrierHost interface {
	// replayData processes one stashed data tuple exactly as the normal
	// execution step would have (without re-consulting τ — the tuple was
	// already admitted once).
	replayData(ctx *Ctx, input int, t *tuple.Tuple)
	// replayPunct processes one stashed punctuation exactly as the normal
	// punctuation step would have.
	replayPunct(ctx *Ctx, input int, t *tuple.Tuple)
	// barrierBound returns the operator's merged output bound at the cut —
	// min over the TSM registers, after observing current heads.
	barrierBound(ctx *Ctx) tuple.Time
	// emitBarrier snapshots the operator (via ctx.barrier) and emits the
	// single merged barrier punctuation downstream.
	emitBarrier(ctx *Ctx, id uint64, bound tuple.Time)
}

// handleBarrier performs barrier bookkeeping for one popped tuple. It
// reports handled=true when the tuple was consumed by the barrier machinery
// (stashed, absorbed, or it completed the cut) — the caller's execution step
// is then done; yield reports whether output was produced.
func handleBarrier(a *aligner, host barrierHost, ctx *Ctx, input int, t *tuple.Tuple) (handled, yield bool) {
	if t.IsPunct() && t.Ckpt != 0 && a.active() && t.Ckpt != a.id {
		// A newer barrier arrived before the old cut aligned — the old
		// checkpoint was abandoned (timeout). Release its stash as if the
		// old barrier never existed, then fall through to start the new cut.
		yield = replayStash(a, host, ctx) || yield
	}
	if a.active() && a.seen[input] {
		// Post-barrier traffic on an aligned input: withhold verbatim.
		a.put(input, t)
		return true, yield
	}
	if !t.IsPunct() || t.Ckpt == 0 {
		return false, yield
	}
	if !a.active() {
		a.begin(t.Ckpt, len(ctx.Ins))
	}
	a.mark(input)
	id := a.id
	ctx.free(t)
	if !a.complete() {
		return true, yield
	}
	// Cut complete. The merged bound is min over the registers, lowered to
	// any stashed data tuple it would otherwise contradict (a stashed tuple
	// replays *after* the merged punctuation is emitted).
	bound := host.barrierBound(ctx)
	for _, s := range a.stash {
		if !s.t.IsPunct() && s.t.Ts < bound {
			bound = s.t.Ts
		}
	}
	if bound == tuple.MaxTime {
		// Never let a barrier impersonate EOS downstream.
		bound = tuple.MinTime
	}
	host.emitBarrier(ctx, id, bound)
	replayStash(a, host, ctx)
	return true, true
}

// replayStash drains the stash in original pop order through the host's
// replay hooks and resets the aligner. It reports whether output was
// produced.
func replayStash(a *aligner, host barrierHost, ctx *Ctx) bool {
	stash := a.take()
	for _, s := range stash {
		if s.t.IsPunct() {
			if s.t.Ckpt != 0 {
				// Defensive: a duplicate barrier rode into the stash.
				// Replay it as a plain bound; copy rather than mutate,
				// because the original may be shared across arcs.
				c := tuple.GetPunct(s.t.Ts)
				ctx.free(s.t)
				s.t = c
			}
			host.replayPunct(ctx, s.input, s.t)
		} else {
			host.replayData(ctx, s.input, s.t)
		}
	}
	return len(stash) > 0
}
