package ops

import (
	"testing"

	"repro/internal/tuple"
	"repro/internal/window"
)

// The accept/reject matrix for the Partitionable capability: only
// configurations whose state decomposes by key may shard.
func TestPartitionKeysMatrix(t *testing.T) {
	span := window.TimeWindow(100)
	rows := window.RowWindow(10)
	cases := []struct {
		name string
		op   Operator
		want []int
		ok   bool
	}{
		{"tsm union", NewUnion("u", nil, 3, TSM), []int{-1, -1, -1}, true},
		{"basic union", NewUnion("u", nil, 2, Basic), nil, false},
		{"latent union", NewUnion("u", nil, 2, LatentMode), nil, false},
		{"hash join", NewHashWindowJoin("j", nil, span, span, 0, 1, TSM), []int{0, 1}, true},
		{"equi join", NewEquiWindowJoin("j", nil, span, span, 2, 0, TSM), []int{2, 0}, true},
		{"basic equi join", NewEquiWindowJoin("j", nil, span, span, 0, 0, Basic), nil, false},
		{"opaque-pred join", NewWindowJoin("j", nil, span, CrossJoin(), TSM), nil, false},
		{"row-window join", NewHashWindowJoin("j", nil, rows, rows, 0, 1, TSM), nil, false},
		{"multi equi join", NewMultiEquiJoin("mj", nil, span, 0, 1, 0), []int{0, 1, 0}, true},
		{"opaque multijoin", NewMultiJoin("mj", nil, 3, span, MultiEquiJoin(0, 0, 0)), nil, false},
		{"row-window multi", NewMultiEquiJoin("mj", nil, rows, 0, 1), nil, false},
		{"grouped aggregate", NewAggregate("a", nil, 10, 1, AggSpec{Fn: Count}), []int{1}, true},
		{"global aggregate", NewAggregate("a", nil, 10, -1, AggSpec{Fn: Count}), nil, false},
	}
	for _, c := range cases {
		pa, isPa := c.op.(Partitionable)
		if !isPa {
			t.Fatalf("%s: operator does not implement Partitionable", c.name)
		}
		keys, ok := pa.PartitionKeys()
		if ok != c.ok {
			t.Errorf("%s: PartitionKeys ok=%v, want %v", c.name, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if len(keys) != len(c.want) {
			t.Errorf("%s: keys=%v, want %v", c.name, keys, c.want)
			continue
		}
		for i := range keys {
			if keys[i] != c.want[i] {
				t.Errorf("%s: keys=%v, want %v", c.name, keys, c.want)
				break
			}
		}
	}
}

// NewShard must produce a fresh, empty, same-configured operator.
func TestNewShardClonesConfiguration(t *testing.T) {
	span := window.TimeWindow(100)

	j := NewHashWindowJoin("j", nil, span, span, 0, 1, TSM)
	sh := j.NewShard(2, 4).(*WindowJoin)
	if sh.Name() != "j#2" {
		t.Errorf("shard name = %q", sh.Name())
	}
	if sh == j || sh.HashWindow(0) == j.HashWindow(0) {
		t.Fatal("shard shares state with the original")
	}
	if keys, ok := sh.PartitionKeys(); !ok || keys[0] != 0 || keys[1] != 1 {
		t.Errorf("shard lost partitionability: %v %v", keys, ok)
	}

	u := NewUnion("u", nil, 2, TSM)
	u.DedupPunct = false
	if us := u.NewShard(0, 2).(*Union); us.DedupPunct || us.Mode() != TSM {
		t.Errorf("union shard config: dedup=%v mode=%v", us.DedupPunct, us.Mode())
	}

	a := NewSlidingAggregate("a", nil, 10, 5, 0, AggSpec{Fn: Sum, Col: 1})
	as := a.NewShard(1, 2).(*Aggregate)
	if as.Name() != "a#1" || as.width != 10 || as.slide != 5 || as.groupCol != 0 {
		t.Errorf("aggregate shard config: %+v", as)
	}

	mj := NewMultiEquiJoin("mj", nil, span, 0, 1, 0)
	ms := mj.NewShard(3, 4).(*MultiJoin)
	if ms.Name() != "mj#3" || len(ms.keyCols) != 3 || ms.Window(0) == mj.Window(0) {
		t.Errorf("multijoin shard config: %v", ms)
	}
}

// Sharding an equi-join by key must produce exactly the unsharded output:
// each key's state lives wholly in one shard.
func TestJoinShardsPartitionByKey(t *testing.T) {
	span := window.TimeWindow(1000)
	whole := NewEquiWindowJoin("j", nil, span, span, 0, 0, TSM)
	const P = 4
	shards := make([]*WindowJoin, P)
	for s := range shards {
		shards[s] = whole.NewShard(s, P).(*WindowJoin)
	}
	hw := newHarness(whole)
	hs := make([]*harness, P)
	for s := range hs {
		hs[s] = newHarness(shards[s])
	}
	route := func(key int64) int { return int(tuple.Int(key).Hash() % P) }
	for i := 0; i < 64; i++ {
		key := int64(i % 8)
		l := tuple.NewData(tuple.Time(2*i), tuple.Int(key))
		r := tuple.NewData(tuple.Time(2*i+1), tuple.Int(key))
		hw.ins[0].Push(l)
		hw.ins[1].Push(r)
		k := route(key)
		hs[k].ins[0].Push(l.Clone())
		hs[k].ins[1].Push(r.Clone())
		// Punctuation broadcasts to every shard, as the splitter would.
		for s := range hs {
			hs[s].ins[0].Push(tuple.NewPunct(tuple.Time(2*i + 1)))
			hs[s].ins[1].Push(tuple.NewPunct(tuple.Time(2*i + 1)))
		}
		hw.ins[0].Push(tuple.NewPunct(tuple.Time(2*i + 1)))
		hw.ins[1].Push(tuple.NewPunct(tuple.Time(2*i + 1)))
	}
	hw.run()
	total := 0
	for s := range hs {
		hs[s].run()
		total += len(hs[s].data())
	}
	if want := len(hw.data()); total != want || want == 0 {
		t.Fatalf("sharded join emitted %d matches, unsharded %d", total, want)
	}
}
