package ops

import (
	"repro/internal/tuple"
)

// Columnar execution. Operators that implement ColOperator can consume a
// whole tuple.ColBatch in one call — a tight loop over contiguous columns
// instead of a queue pop per tuple — when the runtime runs with columnar
// arcs enabled. Only single-input, register-free operators qualify: the
// IWP operators (union, joins) consume their inputs in timestamp-register
// order across ports, which is inherently row-at-a-time, so they stay on
// the row path and the runtime converts at the boundary.
//
// Punctuation semantics are preserved exactly: a batch's PunctMarks are
// processed at their recorded positions, so an operator observes the same
// data/ETS interleaving the row path would deliver, and forwarded marks
// keep their relative position in the output batch.

// ColCtx is the execution environment of one ExecCol call.
type ColCtx struct {
	// EmitCol forwards a batch to every output arc of the node. Ownership
	// of the batch transfers to the engine.
	EmitCol func(*tuple.ColBatch)
	// EmitColTo forwards a batch to out arc i only (the columnar form of
	// Ctx.EmitTo, used by the hash splitter).
	EmitColTo func(i int, b *tuple.ColBatch)
	// Now returns the current virtual time.
	Now func() tuple.Time
	// FreeCol, when non-nil, recycles a batch the operator consumed without
	// forwarding. Unlike row recycling, batch ownership along an arc is
	// always exclusive (fan-out clones), so the engine installs it
	// unconditionally.
	FreeCol func(*tuple.ColBatch)
	// OnBarrier mirrors Ctx.OnBarrier for the columnar plane: invoked when a
	// checkpoint barrier mark (PunctMark with Ckpt != 0) has fully applied to
	// the operator. Columnar operators are single-input, so alignment is
	// trivial; the callback runs at the mark's recorded stream position.
	OnBarrier func(id uint64, bound tuple.Time)
}

// free recycles b through the engine's release hook, when installed.
func (c *ColCtx) free(b *tuple.ColBatch) {
	if c.FreeCol != nil && b != nil {
		c.FreeCol(b)
	}
}

// barrier reports a fully applied checkpoint barrier to the engine.
func (c *ColCtx) barrier(id uint64, bound tuple.Time) {
	if c.OnBarrier != nil {
		c.OnBarrier(id, bound)
	}
}

// barrierMarks reports every barrier mark of a batch that is forwarded
// whole (the pass-through fast paths, where marks are not re-positioned
// one by one).
func (c *ColCtx) barrierMarks(b *tuple.ColBatch) {
	if c.OnBarrier == nil {
		return
	}
	for i := range b.Puncts {
		if b.Puncts[i].Ckpt != 0 {
			c.OnBarrier(b.Puncts[i].Ckpt, b.Puncts[i].Ts)
		}
	}
}

// ColOperator is implemented by operators with a columnar fast path. ExecCol
// fully consumes b (the operator takes ownership) and emits zero or more
// output batches through ctx. The runtime delivers batches in arc order and
// never calls ExecCol concurrently with Exec.
type ColOperator interface {
	Operator
	ExecCol(b *tuple.ColBatch, ctx *ColCtx)
}

// ColPredicate is the vectorized form of Predicate: it fills keep[r] for
// every row r of b (keep has length b.Len()). Implementations read columns
// directly — e.g. a comparison against b.Cols[i].F64 — and must not retain
// b.
type ColPredicate func(b *tuple.ColBatch, keep []bool)

// SetColPredicate installs a vectorized predicate used by the columnar
// path; the row predicate remains authoritative for the row path, so both
// must decide identically.
func (s *Select) SetColPredicate(p ColPredicate) { s.colPred = p }

// ExecCol filters a batch. When every row passes the batch is forwarded
// unchanged (zero copy); otherwise surviving rows are gathered into a fresh
// batch with the punctuation marks re-positioned after their surviving
// predecessors.
func (s *Select) ExecCol(b *tuple.ColBatch, ctx *ColCtx) {
	n := b.Len()
	s.inData += uint64(n)
	s.inPunct += uint64(len(b.Puncts))
	if n == 0 {
		ctx.barrierMarks(b)
		ctx.EmitCol(b) // punctuation-only batch passes through
		return
	}
	if cap(s.keep) < n {
		s.keep = make([]bool, n)
	}
	keep := s.keep[:n]
	if s.colPred != nil {
		s.colPred(b, keep)
	} else {
		for r := 0; r < n; r++ {
			b.FillRow(r, &s.scratch)
			keep[r] = s.pred(&s.scratch)
		}
	}
	kept := 0
	for _, k := range keep {
		if k {
			kept++
		}
	}
	if kept == n {
		s.out += uint64(n)
		ctx.barrierMarks(b)
		ctx.EmitCol(b)
		return
	}
	out := tuple.GetColBatch(b.NumCols())
	pi := 0
	forward := func(m tuple.PunctMark) {
		if m.Ckpt != 0 {
			ctx.barrier(m.Ckpt, m.Ts)
		}
		out.AppendPunctCkpt(m.Ts, m.Ckpt)
	}
	for r := 0; r < n; r++ {
		for pi < len(b.Puncts) && b.Puncts[pi].Pos <= r {
			forward(b.Puncts[pi])
			pi++
		}
		if keep[r] {
			out.AppendRowFrom(b, r)
		}
	}
	for ; pi < len(b.Puncts); pi++ {
		forward(b.Puncts[pi])
	}
	s.out += uint64(out.Len())
	ctx.free(b)
	if out.Empty() {
		tuple.PutColBatch(out)
		return
	}
	ctx.EmitCol(out)
}

// ExecCol projects a batch by moving column structs — no per-row work at
// all. The identity projection forwards the batch untouched.
func (p *Project) ExecCol(b *tuple.ColBatch, ctx *ColCtx) {
	n := b.Len()
	p.inData += uint64(n)
	p.inPunct += uint64(len(b.Puncts))
	p.out += uint64(n)
	ctx.barrierMarks(b)
	if n == 0 || (p.ident && len(p.idx) == b.NumCols()) {
		ctx.EmitCol(b)
		return
	}
	p.scratchCols = b.ProjectCols(p.idx, p.scratchCols)
	ctx.EmitCol(b)
}

// ExecCol routes a batch: data rows are gathered per shard (key hashes
// computed in one vectorized pass over the key column), punctuation marks
// are broadcast to every shard at their recorded positions.
func (s *Split) ExecCol(b *tuple.ColBatch, ctx *ColCtx) {
	n := b.Len()
	if cap(s.colOuts) < s.shards {
		s.colOuts = make([]*tuple.ColBatch, s.shards)
	}
	outs := s.colOuts[:s.shards]
	ensure := func(k int) *tuple.ColBatch {
		if outs[k] == nil {
			outs[k] = tuple.GetColBatch(b.NumCols())
		}
		return outs[k]
	}
	useHash := s.key >= 0 && s.key < b.NumCols()
	if useHash && n > 0 {
		s.hashes = b.HashKey(s.key, s.hashes[:0])
	}
	pi := 0
	broadcast := func(m tuple.PunctMark) {
		s.promote(m.Ts)
		for k := 0; k < s.shards; k++ {
			ensure(k).AppendPunctCkpt(m.Ts, m.Ckpt)
		}
		if m.Ckpt != 0 {
			ctx.barrier(m.Ckpt, m.Ts)
		}
	}
	for r := 0; r < n; r++ {
		for pi < len(b.Puncts) && b.Puncts[pi].Pos <= r {
			broadcast(b.Puncts[pi])
			pi++
		}
		var k int
		if useHash {
			k = s.route(s.hashes[r], b.Ts[r])
			s.noteTs(b.Ts[r])
		} else {
			k = s.rr
			s.rr = (s.rr + 1) % s.shards
		}
		ensure(k).AppendRowFrom(b, r)
		s.routed.Add(k, 1)
	}
	for ; pi < len(b.Puncts); pi++ {
		broadcast(b.Puncts[pi])
	}
	ctx.free(b)
	for k := range outs {
		if outs[k] != nil {
			ob := outs[k]
			outs[k] = nil
			ctx.EmitColTo(k, ob)
		}
	}
}

// ExecCol accumulates a batch into the window buckets, interleaving the
// bound advances that data timestamps and punctuation marks carry at their
// recorded positions, so window closes happen at exactly the same stream
// points as on the row path. Result rows (and forwarded marks) are emitted
// as one output batch.
func (a *Aggregate) ExecCol(b *tuple.ColBatch, ctx *ColCtx) {
	outCols := len(a.aggs)
	if a.groupCol >= 0 {
		outCols++
	}
	out := tuple.GetColBatch(outCols)
	emit := func(end tuple.Time, vals []tuple.Value) {
		out.AppendRow(end, 0, 0, vals)
	}
	n := b.Len()
	pi := 0
	for r := 0; r < n; r++ {
		for pi < len(b.Puncts) && b.Puncts[pi].Pos <= r {
			a.punctCol(b.Puncts[pi], out, emit, ctx)
			pi++
		}
		ts := b.Ts[r]
		if ts > a.bound {
			a.bound = ts
			a.closeInto(a.bound, emit)
		}
		last := floorDiv(int64(ts), int64(a.slide))
		first := floorDiv(int64(ts)-int64(a.width), int64(a.slide)) + 1
		for w := first; w <= last; w++ {
			if tuple.Time(w*int64(a.slide)+int64(a.width)) <= a.bound {
				continue // window already closed under the bound (late row)
			}
			a.accumulateCol(w, b, r)
		}
	}
	for ; pi < len(b.Puncts); pi++ {
		a.punctCol(b.Puncts[pi], out, emit, ctx)
	}
	ctx.free(b)
	if out.Empty() {
		tuple.PutColBatch(out)
		return
	}
	ctx.EmitCol(out)
}

func (a *Aggregate) punctCol(m tuple.PunctMark, out *tuple.ColBatch, emit func(tuple.Time, []tuple.Value), ctx *ColCtx) {
	if m.Ts > a.bound {
		a.bound = m.Ts
		a.closeInto(a.bound, emit)
	}
	a.punctOut++
	if m.Ckpt != 0 {
		// Windows at or below the bound have just closed — snapshot holds
		// only open state, matching the row path's barrier point.
		ctx.barrier(m.Ckpt, m.Ts)
	}
	out.AppendPunctCkpt(m.Ts, m.Ckpt)
}

func (a *Aggregate) accumulateCol(w int64, b *tuple.ColBatch, r int) {
	var key tuple.Value
	if a.groupCol >= 0 {
		key = b.Value(a.groupCol, r)
	}
	accs := a.accsFor(w, key)
	for i, spec := range a.aggs {
		if spec.Fn == Count {
			accs[i].add(tuple.Int(1))
		} else {
			accs[i].add(b.Value(spec.Col, r))
		}
	}
}
