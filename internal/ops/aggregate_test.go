package ops

import (
	"testing"

	"repro/internal/tuple"
)

func measure(ts tuple.Time, group int64, v float64) *tuple.Tuple {
	return tuple.NewData(ts, tuple.Int(group), tuple.Float(v))
}

func TestAggregateRejectsBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewAggregate("a", nil, 0, -1, AggSpec{Fn: Count}) },
		func() { NewAggregate("a", nil, 10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad aggregate args accepted")
				}
			}()
			fn()
		}()
	}
}

func TestAggregateGlobalCountSum(t *testing.T) {
	a := NewAggregate("a", nil, 10, -1, AggSpec{Fn: Count}, AggSpec{Fn: Sum, Col: 1})
	h := newHarness(a)
	// Window [0,10): three tuples; window [10,20): one tuple.
	h.ins[0].Push(measure(1, 0, 2))
	h.ins[0].Push(measure(5, 0, 3))
	h.ins[0].Push(measure(9, 0, 5))
	h.ins[0].Push(measure(12, 0, 7))
	h.run()
	// Data at ts=12 closes window [0,10).
	d := h.data()
	if len(d) != 1 {
		t.Fatalf("rows = %v", d)
	}
	if d[0].Ts != 10 || d[0].Vals[0].AsInt() != 3 || d[0].Vals[1].AsFloat() != 10 {
		t.Fatalf("row = %v", d[0])
	}
	if a.OpenWindows() != 1 {
		t.Errorf("open windows = %d", a.OpenWindows())
	}
	// Punctuation at 20 closes [10,20) — the blocking-operator benefit of
	// ETS: the sparse tail is flushed without waiting for more data.
	h.ins[0].Push(tuple.NewPunct(20))
	h.run()
	d = h.data()
	if len(d) != 2 || d[1].Ts != 20 || d[1].Vals[0].AsInt() != 1 {
		t.Fatalf("rows after punct = %v", d)
	}
	// The punctuation itself is forwarded after the rows it released.
	p := h.puncts()
	if len(p) != 1 || p[0].Ts != 20 {
		t.Fatalf("puncts = %v", p)
	}
	if a.RowsEmitted() != 2 {
		t.Errorf("RowsEmitted = %d", a.RowsEmitted())
	}
}

func TestAggregateGroupBy(t *testing.T) {
	a := NewAggregate("a", nil, 10, 0,
		AggSpec{Fn: Min, Col: 1}, AggSpec{Fn: Max, Col: 1}, AggSpec{Fn: Avg, Col: 1})
	h := newHarness(a)
	h.ins[0].Push(measure(1, 1, 10))
	h.ins[0].Push(measure(2, 2, 100))
	h.ins[0].Push(measure(3, 1, 20))
	h.ins[0].Push(tuple.NewPunct(10))
	h.run()
	d := h.data()
	if len(d) != 2 {
		t.Fatalf("rows = %v", d)
	}
	// Deterministic group order: group 1 before group 2.
	g1, g2 := d[0], d[1]
	if g1.Vals[0].AsInt() != 1 || g2.Vals[0].AsInt() != 2 {
		t.Fatalf("group order: %v", d)
	}
	if g1.Vals[1].AsFloat() != 10 || g1.Vals[2].AsFloat() != 20 || g1.Vals[3].AsFloat() != 15 {
		t.Fatalf("group 1 aggs = %v", g1.Vals)
	}
	if g2.Vals[1].AsFloat() != 100 || g2.Vals[2].AsFloat() != 100 || g2.Vals[3].AsFloat() != 100 {
		t.Fatalf("group 2 aggs = %v", g2.Vals)
	}
}

func TestAggregateMultipleWindowsCloseInOrder(t *testing.T) {
	a := NewAggregate("a", nil, 10, -1, AggSpec{Fn: Count})
	h := newHarness(a)
	h.ins[0].Push(measure(5, 0, 1))
	h.ins[0].Push(measure(15, 0, 1))
	h.ins[0].Push(measure(25, 0, 1))
	h.ins[0].Push(tuple.NewPunct(100))
	h.run()
	d := h.data()
	if len(d) != 3 {
		t.Fatalf("rows = %v", d)
	}
	for i, wantTs := range []tuple.Time{10, 20, 30} {
		if d[i].Ts != wantTs {
			t.Fatalf("window close order: %v", d)
		}
	}
	if a.OpenWindows() != 0 {
		t.Errorf("open windows = %d", a.OpenWindows())
	}
}

func TestAggregateOutputTimestampsOrdered(t *testing.T) {
	// The output arc must be timestamp-ordered even when rows and
	// forwarded punctuation interleave.
	a := NewAggregate("a", nil, 10, -1, AggSpec{Fn: Count})
	h := newHarness(a)
	h.ins[0].Push(measure(5, 0, 1))
	h.ins[0].Push(tuple.NewPunct(10))
	h.ins[0].Push(measure(15, 0, 1))
	h.ins[0].Push(tuple.NewPunct(20))
	h.run()
	prev := tuple.MinTime
	for _, o := range h.out {
		if o.Ts < prev {
			t.Fatalf("output disordered: %v", h.out)
		}
		prev = o.Ts
	}
}

func TestParseAggFunc(t *testing.T) {
	for s, want := range map[string]AggFunc{
		"count": Count, "sum": Sum, "avg": Avg, "min": Min, "max": Max,
	} {
		got, err := ParseAggFunc(s)
		if err != nil || got != want {
			t.Errorf("ParseAggFunc(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseAggFunc("median"); err == nil {
		t.Error("unknown aggregate accepted")
	}
}

func TestAggregateEmptyAvgIsNull(t *testing.T) {
	var a acc
	if !a.result(Avg).IsNull() {
		t.Error("avg of nothing must be null")
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 10, 0}, {10, 10, 1}, {19, 10, 1}, {-1, 10, -1}, {-10, 10, -1}, {-11, 10, -2},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSlidingAggregateValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero slide": func() { NewSlidingAggregate("a", nil, 10, 0, -1, AggSpec{Fn: Count}) },
		"slide > width": func() {
			NewSlidingAggregate("a", nil, 10, 20, -1, AggSpec{Fn: Count})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			fn()
		}()
	}
}

func TestSlidingAggregateOverlap(t *testing.T) {
	// Width 10, slide 5: windows [0,10), [5,15), [10,20), ...
	a := NewSlidingAggregate("a", nil, 10, 5, -1, AggSpec{Fn: Count})
	h := newHarness(a)
	h.ins[0].Push(measure(7, 0, 1))  // in windows starting 0 and 5
	h.ins[0].Push(measure(12, 0, 1)) // in windows starting 5 and 10
	h.ins[0].Push(tuple.NewPunct(100))
	h.run()
	d := h.data()
	// Windows: [0,10): count 1 (ts 7); [5,15): count 2 (7, 12);
	// [10,20): count 1 (12).
	if len(d) != 3 {
		t.Fatalf("rows = %v", d)
	}
	wantEnd := []tuple.Time{10, 15, 20}
	wantCount := []int64{1, 2, 1}
	for i := range d {
		if d[i].Ts != wantEnd[i] || d[i].Vals[0].AsInt() != wantCount[i] {
			t.Fatalf("row %d = %v, want end %v count %d", i, d[i], wantEnd[i], wantCount[i])
		}
	}
}

func TestSlidingAggregateTumblingEquivalence(t *testing.T) {
	// slide == width must behave exactly like NewAggregate.
	mk := func(slide bool) []*tuple.Tuple {
		var a *Aggregate
		if slide {
			a = NewSlidingAggregate("a", nil, 10, 10, -1, AggSpec{Fn: Count}, AggSpec{Fn: Sum, Col: 1})
		} else {
			a = NewAggregate("a", nil, 10, -1, AggSpec{Fn: Count}, AggSpec{Fn: Sum, Col: 1})
		}
		h := newHarness(a)
		for _, ts := range []tuple.Time{1, 5, 9, 12, 25} {
			h.ins[0].Push(measure(ts, 0, float64(ts)))
		}
		h.ins[0].Push(tuple.NewPunct(100))
		h.run()
		return h.data()
	}
	x, y := mk(false), mk(true)
	if len(x) != len(y) {
		t.Fatalf("row counts differ: %d vs %d", len(x), len(y))
	}
	for i := range x {
		if x[i].Ts != y[i].Ts || x[i].Vals[0].AsInt() != y[i].Vals[0].AsInt() ||
			x[i].Vals[1].AsFloat() != y[i].Vals[1].AsFloat() {
			t.Fatalf("row %d differs: %v vs %v", i, x[i], y[i])
		}
	}
}
