package ops

import (
	"fmt"
	"sort"

	"repro/internal/tuple"
)

// AggFunc enumerates the supported aggregate functions.
type AggFunc uint8

const (
	// Count counts tuples (its column is ignored).
	Count AggFunc = iota
	// Sum sums a numeric column.
	Sum
	// Avg averages a numeric column.
	Avg
	// Min takes the minimum of a column.
	Min
	// Max takes the maximum of a column.
	Max
)

func (f AggFunc) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return "agg(?)"
	}
}

// ParseAggFunc maps a CQL function name to an AggFunc.
func ParseAggFunc(s string) (AggFunc, error) {
	switch s {
	case "count":
		return Count, nil
	case "sum":
		return Sum, nil
	case "avg":
		return Avg, nil
	case "min":
		return Min, nil
	case "max":
		return Max, nil
	default:
		return 0, fmt.Errorf("unknown aggregate %q", s)
	}
}

// AggSpec is one aggregate column: a function over an input column (Col is
// ignored for Count).
type AggSpec struct {
	Fn  AggFunc
	Col int
}

// acc accumulates one aggregate.
type acc struct {
	n    int64
	sum  float64
	min  tuple.Value
	max  tuple.Value
	seen bool
}

func (a *acc) add(v tuple.Value) {
	a.n++
	a.sum += v.AsFloat()
	if !a.seen || v.Compare(a.min) < 0 {
		a.min = v
	}
	if !a.seen || v.Compare(a.max) > 0 {
		a.max = v
	}
	a.seen = true
}

func (a *acc) result(fn AggFunc) tuple.Value {
	switch fn {
	case Count:
		return tuple.Int(a.n)
	case Sum:
		return tuple.Float(a.sum)
	case Avg:
		if a.n == 0 {
			return tuple.Value{}
		}
		return tuple.Float(a.sum / float64(a.n))
	case Min:
		return a.min
	case Max:
		return a.max
	default:
		return tuple.Value{}
	}
}

// Aggregate is a tumbling-window, event-time group-by aggregate. It is a
// *blocking* operator in the classic sense: a window's result can only be
// emitted once the operator knows no further tuple can fall into it. That
// knowledge is exactly what punctuation/ETS provides — the operator closes
// every window whose end lies at or below the current timestamp bound
// (carried by data tuples and punctuation alike), which is how on-demand ETS
// keeps even blocking aggregates live on sparse streams.
//
// Output tuples carry ts = window end and values [group?, agg0, agg1, ...].
type Aggregate struct {
	base
	width    tuple.Time
	slide    tuple.Time // window start spacing; == width for tumbling
	groupCol int        // -1: no grouping
	aggs     []AggSpec

	// buckets is keyed by window index k: window k covers
	// [k·slide, k·slide+width).
	buckets map[int64]map[tuple.Value][]*acc
	bound   tuple.Time

	rowsOut  uint64
	punctOut uint64
}

// NewAggregate builds a tumbling-window aggregate of the given width.
// groupCol is the grouping column index or -1 for a global aggregate.
func NewAggregate(name string, schema *tuple.Schema, width tuple.Time, groupCol int, aggs ...AggSpec) *Aggregate {
	return NewSlidingAggregate(name, schema, width, width, groupCol, aggs...)
}

// NewSlidingAggregate builds a hopping-window aggregate: windows of the
// given width starting every slide (slide ≤ width; slide == width is a
// tumbling window). Each tuple contributes to every window covering its
// timestamp, and a window's result is emitted — with ts = window end — once
// the timestamp bound (data or punctuation) passes that end.
func NewSlidingAggregate(name string, schema *tuple.Schema, width, slide tuple.Time, groupCol int, aggs ...AggSpec) *Aggregate {
	if width <= 0 {
		panic(fmt.Sprintf("aggregate %s: width must be positive", name))
	}
	if slide <= 0 || slide > width {
		panic(fmt.Sprintf("aggregate %s: slide must be in (0, width]", name))
	}
	if len(aggs) == 0 {
		panic(fmt.Sprintf("aggregate %s: no aggregate functions", name))
	}
	return &Aggregate{
		base:     base{name: name, inputs: 1, schema: schema},
		width:    width,
		slide:    slide,
		groupCol: groupCol,
		aggs:     aggs,
		buckets:  make(map[int64]map[tuple.Value][]*acc),
		bound:    tuple.MinTime,
	}
}

// RowsEmitted reports the number of result rows emitted.
func (a *Aggregate) RowsEmitted() uint64 { return a.rowsOut }

// OpenWindows reports the number of windows currently buffered.
func (a *Aggregate) OpenWindows() int { return len(a.buckets) }

// More reports whether the input holds a tuple.
func (a *Aggregate) More(ctx *Ctx) bool { return !ctx.Ins[0].Empty() }

// BlockingInput returns 0 when the input is empty.
func (a *Aggregate) BlockingInput(ctx *Ctx) int {
	if ctx.Ins[0].Empty() {
		return 0
	}
	return -1
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Exec consumes one input tuple; closing windows may yield several rows.
func (a *Aggregate) Exec(ctx *Ctx) bool {
	t := ctx.Ins[0].Pop()
	if t == nil {
		return false
	}
	yield := false
	if t.Ts > a.bound {
		a.bound = t.Ts
		yield = a.close(ctx, a.bound)
	}
	if t.IsPunct() {
		a.punctOut++
		if t.Ckpt != 0 {
			// Checkpoint barrier: windows at or below the bound have just
			// closed, so the snapshot taken here holds only open state.
			ctx.barrier(t.Ckpt, t.Ts)
		}
		ctx.Emit(t)
		return true
	}
	// The tuple contributes to every window k with
	// k·slide ≤ ts < k·slide + width — except windows already closed. A
	// window that was closed under an over-estimated ETS bound (the
	// estimator promises, it does not guarantee, §5) has emitted its row;
	// re-opening it would emit a duplicate, so a late tuple's contribution
	// to it is dropped instead. On-time tuples are unaffected: every
	// window covering ts ends after ts ≥ bound.
	last := floorDiv(int64(t.Ts), int64(a.slide))
	first := floorDiv(int64(t.Ts)-int64(a.width), int64(a.slide)) + 1
	for w := first; w <= last; w++ {
		if tuple.Time(w*int64(a.slide)+int64(a.width)) <= a.bound {
			continue
		}
		a.accumulate(w, t)
	}
	ctx.free(t) // values were copied into the accumulators
	return yield
}

// accsFor returns (creating as needed) the accumulator row for window w and
// group key.
func (a *Aggregate) accsFor(w int64, key tuple.Value) []*acc {
	groups := a.buckets[w]
	if groups == nil {
		groups = make(map[tuple.Value][]*acc)
		a.buckets[w] = groups
	}
	accs := groups[key]
	if accs == nil {
		accs = make([]*acc, len(a.aggs))
		for i := range accs {
			accs[i] = &acc{}
		}
		groups[key] = accs
	}
	return accs
}

func (a *Aggregate) accumulate(w int64, t *tuple.Tuple) {
	var key tuple.Value
	if a.groupCol >= 0 {
		key = t.Vals[a.groupCol]
	}
	accs := a.accsFor(w, key)
	for i, spec := range a.aggs {
		var v tuple.Value
		if spec.Fn == Count {
			v = tuple.Int(1)
		} else {
			v = t.Vals[spec.Col]
		}
		accs[i].add(v)
	}
}

// close emits every window whose end is ≤ bound, in window order with
// deterministic group order.
func (a *Aggregate) close(ctx *Ctx, bound tuple.Time) bool {
	return a.closeInto(bound, func(end tuple.Time, vals []tuple.Value) {
		ctx.Emit(&tuple.Tuple{Ts: end, Kind: tuple.Data, Vals: vals})
	})
}

// closeInto is the emission core shared by the row and columnar paths: it
// drains every window whose end is ≤ bound, in window order with
// deterministic group order, handing each result row (ts = window end,
// freshly allocated vals) to emit.
func (a *Aggregate) closeInto(bound tuple.Time, emit func(end tuple.Time, vals []tuple.Value)) bool {
	var ready []int64
	for w := range a.buckets {
		end := tuple.Time(w*int64(a.slide) + int64(a.width))
		if end <= bound {
			ready = append(ready, w)
		}
	}
	if len(ready) == 0 {
		return false
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	for _, w := range ready {
		end := tuple.Time(w*int64(a.slide) + int64(a.width))
		groups := a.buckets[w]
		keys := make([]tuple.Value, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 })
		for _, k := range keys {
			accs := groups[k]
			vals := make([]tuple.Value, 0, len(a.aggs)+1)
			if a.groupCol >= 0 {
				vals = append(vals, k)
			}
			for i, spec := range a.aggs {
				vals = append(vals, accs[i].result(spec.Fn))
			}
			a.rowsOut++
			emit(end, vals)
		}
		delete(a.buckets, w)
	}
	return true
}
