package fault

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/tuple"
)

func TestNilInjectorIsNoop(t *testing.T) {
	var in *Injector
	in.MaybePanic("n")
	if in.DropTuple("n") {
		t.Error("nil injector dropped a tuple")
	}
	if in.SourceStalled("n") {
		t.Error("nil injector stalled a source")
	}
	if got := in.SkewTs(5); got != 5 {
		t.Errorf("nil injector skewed: %v", got)
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Errorf("nil stats = %+v", s)
	}
}

func TestDeterministicDrops(t *testing.T) {
	decide := func(seed int64) []bool {
		in := New(Config{Seed: seed, DropProb: 0.5})
		out := make([]bool, 100)
		for i := range out {
			out[i] = in.DropTuple("s")
		}
		return out
	}
	a, b := decide(42), decide(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across equal seeds", i)
		}
	}
	c := decide(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds drew identical decision sequences")
	}
}

func TestPanicEveryIsDeterministic(t *testing.T) {
	in := New(Config{PanicEvery: 3, PanicNodes: []string{"u"}})
	panics := 0
	probe := func(node string) {
		defer func() {
			if r := recover(); r != nil {
				p, ok := r.(Panic)
				if !ok || p.Node != node {
					t.Fatalf("unexpected panic value %v", r)
				}
				panics++
			}
		}()
		in.MaybePanic(node)
	}
	for i := 0; i < 9; i++ {
		probe("u")
	}
	if panics != 3 {
		t.Errorf("panics = %d, want 3 (every 3rd probe)", panics)
	}
	probe("other") // non-matching node: never panics, never counts
	if got := in.Stats().Probes; got != 9 {
		t.Errorf("probes = %d, want 9 (matching only)", got)
	}
	if got := in.Stats().Panics; got != 3 {
		t.Errorf("stats panics = %d, want 3", got)
	}
}

func TestStallWindow(t *testing.T) {
	in := New(Config{StallSource: "s2", StallAfter: 0, StallFor: time.Hour})
	if !in.SourceStalled("s2") {
		t.Error("stall window should be open")
	}
	if in.SourceStalled("s1") {
		t.Error("wrong source stalled")
	}
	in = New(Config{StallSource: "s2", StallAfter: time.Hour, StallFor: time.Hour})
	if in.SourceStalled("s2") {
		t.Error("stall window not yet open")
	}
}

func TestSkewBounded(t *testing.T) {
	in := New(Config{Seed: 1, SkewProb: 1, SkewMax: 10})
	moved := false
	for i := 0; i < 200; i++ {
		ts := tuple.Time(1000)
		got := in.SkewTs(ts)
		if got < 990 || got > 1010 {
			t.Fatalf("skew out of bounds: %v", got)
		}
		if got != ts {
			moved = true
		}
	}
	if !moved {
		t.Error("skew with prob 1 never perturbed a timestamp")
	}
	if in.SkewTs(2) < 0 {
		t.Error("skew went negative")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7,panic=u+k:0.25,drop=0.01,stall=s2:1s:500ms,skew=0.05:3ms")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.PanicProb != 0.25 || len(cfg.PanicNodes) != 2 ||
		cfg.DropProb != 0.01 || cfg.DropNodes != nil ||
		cfg.StallSource != "s2" || cfg.StallAfter != time.Second || cfg.StallFor != 500*time.Millisecond ||
		cfg.SkewProb != 0.05 || cfg.SkewMax != 3*tuple.Millisecond {
		t.Errorf("parsed %+v", cfg)
	}
	if cfg, err = ParseSpec("panic-every=u:100"); err != nil || cfg.PanicEvery != 100 {
		t.Errorf("panic-every: %+v, %v", cfg, err)
	}
	if _, err = ParseSpec("bogus=1"); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err = ParseSpec("stall=s2:1s"); err == nil {
		t.Error("short stall spec accepted")
	}
	if cfg, err = ParseSpec("  "); err != nil || !reflect.DeepEqual(cfg, Config{}) {
		t.Errorf("empty spec: %+v, %v", cfg, err)
	}
}

func TestCrashSchedule(t *testing.T) {
	if New(Config{}).CrashDue() {
		t.Error("crash due with no schedule")
	}
	in := New(Config{CrashAfter: time.Hour})
	if in.CrashDue() {
		t.Error("crash due before its time")
	}
	in = New(Config{CrashAfter: time.Nanosecond})
	time.Sleep(time.Millisecond)
	if !in.CrashDue() {
		t.Error("crash never came due")
	}
	if !in.CrashDue() {
		t.Error("crash due must latch")
	}
	in.Arm()
	// Arm restarts the clock; an elapsed nanosecond makes it due again.
	time.Sleep(time.Millisecond)
	if !in.CrashDue() {
		t.Error("crash not due after re-arm")
	}
	cfg, err := ParseSpec("crash=250ms")
	if err != nil || cfg.CrashAfter != 250*time.Millisecond {
		t.Errorf("crash spec: %+v, %v", cfg, err)
	}
	if _, err := ParseSpec("crash=soon"); err == nil {
		t.Error("bad crash duration accepted")
	}
}
