// Package fault provides deterministic chaos injection for the concurrent
// runtime and its drivers. An Injector is built from a Config (seeded PRNG,
// per-fault rates) and threaded through runtime.Options; the engine probes it
// at well-defined points — the top of each node's scheduling iteration
// (panic-at-node) and source ingest (tuple-drop) — while drivers consult it
// for source-stall windows and clock-skew perturbation of external
// timestamps. All decisions come from one seeded generator, so a soak run is
// reproducible: same seed, same fault schedule (exactly so under a single
// goroutine, statistically so under concurrency, where goroutine interleaving
// decides which probe draws which number).
//
// The package exists to make the fault-tolerance layer testable: supervised
// restarts, the source-liveness watchdog, and load shedding are only
// trustworthy if the failures they guard against can be produced on demand.
package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tuple"
)

// Config selects which faults an Injector produces and at what rate. The
// zero value injects nothing.
type Config struct {
	// Seed initializes the PRNG; runs with equal seeds draw identical
	// decision sequences.
	Seed int64

	// PanicProb is the probability that a MaybePanic probe at a matching
	// node panics. PanicEvery, when > 0, overrides it with a deterministic
	// schedule: every PanicEvery-th matching probe panics.
	PanicProb  float64
	PanicEvery int
	// PanicNodes restricts panic injection to the named nodes; empty
	// matches every node.
	PanicNodes []string

	// DropProb is the probability that a data tuple offered to a matching
	// source is silently lost before entering the stream.
	DropProb  float64
	DropNodes []string

	// StallSource names a source whose external feed goes silent for the
	// window [StallAfter, StallAfter+StallFor) of wall time since New (or
	// the last Arm). Drivers poll SourceStalled and withhold input.
	StallSource string
	StallAfter  time.Duration
	StallFor    time.Duration

	// SkewProb is the probability that SkewTs perturbs an external
	// timestamp, uniformly in ±SkewMax.
	SkewProb float64
	SkewMax  tuple.Time

	// CrashAfter, when > 0, schedules a whole-process crash point: CrashDue
	// reports true once that much wall time has passed since New (or the
	// last Arm). Drivers poll it and perform the kill — tearing the engine
	// down without drain and restarting from the latest checkpoint — so the
	// recovery path (restore + sequenced replay) is exercised on a schedule
	// as reproducible as the wall clock allows.
	CrashAfter time.Duration
}

// Panic is the value MaybePanic throws, so supervisors (and tests) can
// recognize an injected failure in recover().
type Panic struct{ Node string }

func (p Panic) Error() string { return fmt.Sprintf("fault: injected panic at node %q", p.Node) }

// Stats is a snapshot of the faults an Injector has produced.
type Stats struct {
	Probes  uint64 // MaybePanic calls at matching nodes
	Panics  uint64
	Drops   uint64
	Skews   uint64
	Stalled bool // whether the stall window is open right now
}

// Injector produces faults per its Config. All methods are safe for
// concurrent use and are no-ops on a nil receiver, so call sites need no
// guard beyond the pointer they already hold.
type Injector struct {
	cfg   Config
	start time.Time

	mu  sync.Mutex
	rng *rand.Rand

	probes atomic.Uint64
	panics atomic.Uint64
	drops  atomic.Uint64
	skews  atomic.Uint64
}

// New builds an injector; the stall clock starts now.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, start: time.Now(), rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Arm restarts the stall clock — call it when the workload actually begins,
// if construction happened earlier.
func (in *Injector) Arm() {
	if in == nil {
		return
	}
	in.start = time.Now()
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

func match(nodes []string, node string) bool {
	if len(nodes) == 0 {
		return true
	}
	for _, n := range nodes {
		if n == node {
			return true
		}
	}
	return false
}

// MaybePanic panics with a Panic value when the schedule says a matching
// node fails here. The runtime probes it at the top of each node scheduling
// iteration — a clean point where operator state is consistent, so restarts
// exercise the supervisor, not memory corruption.
func (in *Injector) MaybePanic(node string) {
	if in == nil || (in.cfg.PanicEvery <= 0 && in.cfg.PanicProb <= 0) {
		return
	}
	if !match(in.cfg.PanicNodes, node) {
		return
	}
	n := in.probes.Add(1)
	if in.cfg.PanicEvery > 0 {
		if n%uint64(in.cfg.PanicEvery) == 0 {
			in.panics.Add(1)
			panic(Panic{Node: node})
		}
		return
	}
	in.mu.Lock()
	hit := in.rng.Float64() < in.cfg.PanicProb
	in.mu.Unlock()
	if hit {
		in.panics.Add(1)
		panic(Panic{Node: node})
	}
}

// DropTuple reports whether a data tuple offered to the named source should
// be lost.
func (in *Injector) DropTuple(node string) bool {
	if in == nil || in.cfg.DropProb <= 0 || !match(in.cfg.DropNodes, node) {
		return false
	}
	in.mu.Lock()
	hit := in.rng.Float64() < in.cfg.DropProb
	in.mu.Unlock()
	if hit {
		in.drops.Add(1)
	}
	return hit
}

// CrashDue reports whether the scheduled crash point has been reached. The
// first caller to observe it owns the kill; CrashDue keeps reporting true
// afterwards (the schedule has one crash — drivers restart their clock with
// Arm after recovery if they want another).
func (in *Injector) CrashDue() bool {
	if in == nil || in.cfg.CrashAfter <= 0 {
		return false
	}
	return time.Since(in.start) >= in.cfg.CrashAfter
}

// SourceStalled reports whether the named source's stall window is open.
func (in *Injector) SourceStalled(name string) bool {
	if in == nil || in.cfg.StallFor <= 0 || in.cfg.StallSource != name {
		return false
	}
	el := time.Since(in.start)
	return el >= in.cfg.StallAfter && el < in.cfg.StallAfter+in.cfg.StallFor
}

// SkewTs perturbs an external timestamp by up to ±SkewMax with probability
// SkewProb, clamping at zero.
func (in *Injector) SkewTs(ts tuple.Time) tuple.Time {
	if in == nil || in.cfg.SkewProb <= 0 || in.cfg.SkewMax <= 0 {
		return ts
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() >= in.cfg.SkewProb {
		return ts
	}
	in.skews.Add(1)
	off := tuple.Time(in.rng.Int63n(int64(2*in.cfg.SkewMax)+1)) - in.cfg.SkewMax
	if ts += off; ts < 0 {
		ts = 0
	}
	return ts
}

// Stats snapshots the faults produced so far.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		Probes:  in.probes.Load(),
		Panics:  in.panics.Load(),
		Drops:   in.drops.Load(),
		Skews:   in.skews.Load(),
		Stalled: in.SourceStalled(in.cfg.StallSource),
	}
}

// ParseSpec parses a comma-separated fault spec, the CLI surface of Config:
//
//	seed=N                     PRNG seed
//	panic=[n1+n2:]P            panic probability per probe (optional node list)
//	panic-every=[n1+n2:]N      deterministic panic every Nth probe
//	drop=[n1+n2:]P             per-tuple drop probability at sources
//	stall=NAME:AFTER:FOR       silence source NAME for FOR, starting at AFTER
//	skew=P:MAX                 perturb timestamps by ±MAX with probability P
//	crash=AFTER                kill-and-restore the engine once, AFTER into the run
//
// e.g. "seed=7,panic=u+k:0.001,drop=0.01,stall=s2:1s:500ms,skew=0.05:3ms".
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	split := func(v string) (nodes []string, rest string) {
		if i := strings.LastIndex(v, ":"); i >= 0 {
			return strings.Split(v[:i], "+"), v[i+1:]
		}
		return nil, v
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, fmt.Errorf("fault: bad spec entry %q (want key=value)", kv)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("fault: seed: %w", err)
			}
			cfg.Seed = n
		case "panic":
			nodes, p := split(v)
			f, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return cfg, fmt.Errorf("fault: panic: %w", err)
			}
			cfg.PanicNodes, cfg.PanicProb = nodes, f
		case "panic-every":
			nodes, p := split(v)
			n, err := strconv.Atoi(p)
			if err != nil {
				return cfg, fmt.Errorf("fault: panic-every: %w", err)
			}
			cfg.PanicNodes, cfg.PanicEvery = nodes, n
		case "drop":
			nodes, p := split(v)
			f, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return cfg, fmt.Errorf("fault: drop: %w", err)
			}
			cfg.DropNodes, cfg.DropProb = nodes, f
		case "stall":
			parts := strings.Split(v, ":")
			if len(parts) != 3 {
				return cfg, fmt.Errorf("fault: stall: want NAME:AFTER:FOR, got %q", v)
			}
			after, err := time.ParseDuration(parts[1])
			if err != nil {
				return cfg, fmt.Errorf("fault: stall after: %w", err)
			}
			dur, err := time.ParseDuration(parts[2])
			if err != nil {
				return cfg, fmt.Errorf("fault: stall for: %w", err)
			}
			cfg.StallSource, cfg.StallAfter, cfg.StallFor = parts[0], after, dur
		case "crash":
			d, err := time.ParseDuration(v)
			if err != nil {
				return cfg, fmt.Errorf("fault: crash: %w", err)
			}
			cfg.CrashAfter = d
		case "skew":
			p, m, ok := strings.Cut(v, ":")
			if !ok {
				return cfg, fmt.Errorf("fault: skew: want P:MAX, got %q", v)
			}
			f, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return cfg, fmt.Errorf("fault: skew prob: %w", err)
			}
			d, err := time.ParseDuration(m)
			if err != nil {
				return cfg, fmt.Errorf("fault: skew max: %w", err)
			}
			cfg.SkewProb, cfg.SkewMax = f, tuple.FromDuration(d)
		default:
			return cfg, fmt.Errorf("fault: unknown spec key %q", k)
		}
	}
	return cfg, nil
}
