// Package wrappers implements the input and output wrappers that connect
// the DSMS to the outside world (paper §3: source-node buffers "are being
// filled by external wrappers", and output wrappers drain sink buffers):
// CSV and JSON-lines codecs over io.Reader/io.Writer, and TCP line sources
// and sinks for the real-time runtime.
package wrappers

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/tuple"
)

// CSVOptions configures CSV decoding.
type CSVOptions struct {
	// Comma is the field separator (default ',').
	Comma rune
	// Header skips the first record.
	Header bool
	// TsColumn, when ≥ 0, names the column holding the tuple's external
	// timestamp in microseconds. The column is consumed (not part of the
	// schema fields).
	TsColumn int
}

// CSVScanner decodes CSV records into tuples of a schema.
type CSVScanner struct {
	r      *csv.Reader
	schema *tuple.Schema
	opts   CSVOptions
	line   int
	did    bool
	mag    tuple.Magazine
}

// NewCSVScanner returns a scanner decoding records from r against the
// schema.
func NewCSVScanner(r io.Reader, schema *tuple.Schema, opts CSVOptions) *CSVScanner {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = -1
	return &CSVScanner{r: cr, schema: schema, opts: opts}
}

// Next decodes the next record. It returns io.EOF at end of input.
func (s *CSVScanner) Next() (*tuple.Tuple, error) {
	if !s.did && s.opts.Header {
		if _, err := s.r.Read(); err != nil {
			return nil, err
		}
	}
	s.did = true
	rec, err := s.r.Read()
	if err != nil {
		return nil, err
	}
	s.line++
	wantLen := s.schema.Arity()
	if s.opts.TsColumn >= 0 {
		wantLen++
	}
	if len(rec) != wantLen {
		return nil, fmt.Errorf("wrappers: record %d has %d fields, want %d", s.line, len(rec), wantLen)
	}
	// Tuples come from the scanner's magazine: once the pipeline recycles
	// sink-consumed tuples (runtime Options.Recycle), a steady-state ingest
	// loop reuses the same backing storage instead of allocating per record,
	// and the magazine refills from the shared depot a slab at a time.
	t := s.mag.Get()
	fi := 0
	for i, cell := range rec {
		if i == s.opts.TsColumn {
			us, err := strconv.ParseInt(cell, 10, 64)
			if err != nil {
				s.mag.Put(t)
				return nil, fmt.Errorf("wrappers: record %d: bad timestamp %q: %v", s.line, cell, err)
			}
			t.Ts = tuple.Time(us)
			continue
		}
		f := s.schema.Field(fi)
		v, err := tuple.ParseValue(f.Kind, cell)
		if err != nil {
			s.mag.Put(t)
			return nil, fmt.Errorf("wrappers: record %d, field %s: %v", s.line, f.Name, err)
		}
		t.Vals = append(t.Vals, v)
		fi++
	}
	return t, nil
}

// ReadAllCSV decodes every record.
func ReadAllCSV(r io.Reader, schema *tuple.Schema, opts CSVOptions) ([]*tuple.Tuple, error) {
	s := NewCSVScanner(r, schema, opts)
	var out []*tuple.Tuple
	for {
		t, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

// CSVWriter encodes tuples as CSV records.
type CSVWriter struct {
	w      *csv.Writer
	schema *tuple.Schema
	opts   CSVOptions
	wrote  bool
}

// NewCSVWriter returns a writer encoding tuples of the schema to w.
func NewCSVWriter(w io.Writer, schema *tuple.Schema, opts CSVOptions) *CSVWriter {
	cw := csv.NewWriter(w)
	if opts.Comma != 0 {
		cw.Comma = opts.Comma
	}
	return &CSVWriter{w: cw, schema: schema, opts: opts}
}

// Write encodes one tuple. Punctuation tuples are skipped (wrappers sit
// outside the graph; punctuation is internal-only).
func (w *CSVWriter) Write(t *tuple.Tuple) error {
	if t.IsPunct() {
		return nil
	}
	if !w.wrote && w.opts.Header {
		total := w.schema.Arity()
		if w.opts.TsColumn >= 0 {
			total++
		}
		rec := make([]string, 0, total)
		fi := 0
		for i := 0; i < total; i++ {
			if i == w.opts.TsColumn {
				rec = append(rec, "ts_us")
				continue
			}
			rec = append(rec, w.schema.Fields[fi].Name)
			fi++
		}
		if err := w.w.Write(rec); err != nil {
			return err
		}
	}
	w.wrote = true
	rec := make([]string, 0, len(t.Vals)+1)
	vi := 0
	total := len(t.Vals)
	if w.opts.TsColumn >= 0 {
		total++
	}
	for i := 0; i < total; i++ {
		if i == w.opts.TsColumn {
			rec = append(rec, strconv.FormatInt(int64(t.Ts), 10))
			continue
		}
		rec = append(rec, t.Vals[vi].String())
		vi++
	}
	return w.w.Write(rec)
}

// Flush flushes buffered output.
func (w *CSVWriter) Flush() error {
	w.w.Flush()
	return w.w.Error()
}
