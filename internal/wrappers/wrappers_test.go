package wrappers

import (
	"bytes"

	"io"

	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/tuple"
)

func sensorSchema() *tuple.Schema {
	return tuple.NewSchema("sensors",
		tuple.Field{Name: "id", Kind: tuple.IntKind},
		tuple.Field{Name: "temp", Kind: tuple.FloatKind},
		tuple.Field{Name: "loc", Kind: tuple.StringKind},
	)
}

func TestCSVScannerBasic(t *testing.T) {
	in := "1,20.5,lab\n2,30.25,roof\n"
	got, err := ReadAllCSV(strings.NewReader(in), sensorSchema(), CSVOptions{TsColumn: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d tuples", len(got))
	}
	if got[0].Vals[0].AsInt() != 1 || got[0].Vals[1].AsFloat() != 20.5 || got[0].Vals[2].AsString() != "lab" {
		t.Errorf("row 0 = %v", got[0])
	}
}

func TestCSVScannerTsColumnAndHeader(t *testing.T) {
	in := "ts,id,temp,loc\n1000,1,20.5,lab\n2000,2,30.0,roof\n"
	got, err := ReadAllCSV(strings.NewReader(in), sensorSchema(), CSVOptions{TsColumn: 0, Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Ts != 1000 || got[1].Ts != 2000 {
		t.Fatalf("tuples = %v", got)
	}
	if got[0].Vals[0].AsInt() != 1 {
		t.Errorf("row 0 = %v", got[0])
	}
}

func TestCSVScannerErrors(t *testing.T) {
	cases := []string{
		"1,2.0\n",     // arity
		"x,2.0,lab\n", // bad int
		"1,y,lab\n",   // bad float
	}
	for _, in := range cases {
		if _, err := ReadAllCSV(strings.NewReader(in), sensorSchema(), CSVOptions{TsColumn: -1}); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
	if _, err := ReadAllCSV(strings.NewReader("bad,1,2.0,lab\n"), sensorSchema(), CSVOptions{TsColumn: 0}); err == nil {
		t.Error("bad ts should fail")
	}
}

func TestCSVWriterRoundTrip(t *testing.T) {
	sch := sensorSchema()
	var buf bytes.Buffer
	w := NewCSVWriter(&buf, sch, CSVOptions{TsColumn: 0, Header: true})
	in := []*tuple.Tuple{
		tuple.NewData(1000, tuple.Int(1), tuple.Float(20.5), tuple.String_("lab")),
		tuple.NewData(2000, tuple.Int(2), tuple.Float(31), tuple.String_("roof")),
	}
	for _, tp := range in {
		if err := w.Write(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Write(tuple.NewPunct(99)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "ts_us,id,temp,loc\n") {
		t.Fatalf("header missing:\n%s", buf.String())
	}
	got, err := ReadAllCSV(bytes.NewReader(buf.Bytes()), sch, CSVOptions{TsColumn: 0, Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("round trip lost tuples: %v", got)
	}
	for i := range in {
		if got[i].Ts != in[i].Ts || !got[i].Vals[1].Equal(in[i].Vals[1]) {
			t.Errorf("row %d: %v != %v", i, got[i], in[i])
		}
	}
}

func TestJSONScanner(t *testing.T) {
	in := `{"ts_us":1000,"id":1,"temp":20.5,"loc":"lab"}
{"id":2,"temp":30.0}

{"ts_us":3000,"id":3,"temp":1.0,"loc":"roof"}
`
	sc := NewJSONScanner(strings.NewReader(in), sensorSchema())
	var got []*tuple.Tuple
	for {
		tp, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tp)
	}
	if len(got) != 3 {
		t.Fatalf("got %d tuples", len(got))
	}
	if got[0].Ts != 1000 || got[0].Vals[2].AsString() != "lab" {
		t.Errorf("row 0 = %v", got[0])
	}
	// Missing fields stay null.
	if !got[1].Vals[2].IsNull() || got[1].Ts != 0 {
		t.Errorf("row 1 = %v", got[1])
	}
}

func TestJSONScannerErrors(t *testing.T) {
	sc := NewJSONScanner(strings.NewReader("{bad json}\n"), sensorSchema())
	if _, err := sc.Next(); err == nil {
		t.Error("bad JSON accepted")
	}
	sc = NewJSONScanner(strings.NewReader(`{"id":"nope"}`+"\n"), sensorSchema())
	if _, err := sc.Next(); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	sch := sensorSchema()
	var buf bytes.Buffer
	orig := tuple.NewData(1234, tuple.Int(7), tuple.Float(2.5), tuple.String_("x"))
	if err := WriteJSON(&buf, sch, orig); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&buf, sch, tuple.NewPunct(1)); err != nil {
		t.Fatal(err)
	}
	sc := NewJSONScanner(&buf, sch)
	got, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.Ts != 1234 || got.Vals[0].AsInt() != 7 || got.Vals[2].AsString() != "x" {
		t.Errorf("round trip = %v", got)
	}
	if _, err := sc.Next(); err != io.EOF {
		t.Error("punctuation leaked into JSON output")
	}
}

func TestTCPSourceAndSink(t *testing.T) {
	sch := sensorSchema()
	var mu sync.Mutex
	var got []*tuple.Tuple
	src, err := NewTCPSource("127.0.0.1:0", sch, CSVOptions{TsColumn: 0},
		func(tp *tuple.Tuple) {
			mu.Lock()
			got = append(got, tp)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	sink, err := NewTCPSink(src.Addr().String(), sch, CSVOptions{TsColumn: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tp := tuple.NewData(tuple.Time(i*1000), tuple.Int(int64(i)), tuple.Float(1.5), tuple.String_("lab"))
		if err := sink.Write(tp); err != nil {
			t.Fatal(err)
		}
	}
	sink.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out with %d/5 tuples", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if got[4].Ts != 4000 || got[4].Vals[0].AsInt() != 4 {
		t.Errorf("last tuple = %v", got[4])
	}
	if src.Received() != 5 {
		t.Errorf("Received = %d", src.Received())
	}
}

func TestTCPSourceBadAddr(t *testing.T) {
	if _, err := NewTCPSource("256.0.0.1:99999", sensorSchema(), CSVOptions{TsColumn: -1}, nil); err == nil {
		t.Error("bad listen address accepted")
	}
	if _, err := NewTCPSink("127.0.0.1:1", sensorSchema(), CSVOptions{TsColumn: -1}); err == nil {
		t.Error("dial to closed port should fail")
	}
}

func TestCSVWriterNoTsColumn(t *testing.T) {
	var buf bytes.Buffer
	w := NewCSVWriter(&buf, sensorSchema(), CSVOptions{TsColumn: -1, Header: true})
	if err := w.Write(tuple.NewData(5, tuple.Int(1), tuple.Float(2), tuple.String_("a"))); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "id,temp,loc\n1,2,a\n"
	if buf.String() != want {
		t.Errorf("output = %q, want %q", buf.String(), want)
	}
}

func TestJSONAllKindsRoundTrip(t *testing.T) {
	sch := tuple.NewSchema("k",
		tuple.Field{Name: "i", Kind: tuple.IntKind},
		tuple.Field{Name: "f", Kind: tuple.FloatKind},
		tuple.Field{Name: "s", Kind: tuple.StringKind},
		tuple.Field{Name: "b", Kind: tuple.BoolKind},
		tuple.Field{Name: "t", Kind: tuple.TimeKind},
	)
	var buf bytes.Buffer
	orig := tuple.NewData(9,
		tuple.Int(1), tuple.Float(2.5), tuple.String_("x"),
		tuple.Bool(true), tuple.TimeVal(77))
	if err := WriteJSON(&buf, sch, orig); err != nil {
		t.Fatal(err)
	}
	got, err := NewJSONScanner(&buf, sch).Next()
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig.Vals {
		if !got.Vals[i].Equal(orig.Vals[i]) {
			t.Errorf("field %d: %v != %v", i, got.Vals[i], orig.Vals[i])
		}
	}
}

func TestJSONTypeErrorsPerKind(t *testing.T) {
	sch := tuple.NewSchema("k",
		tuple.Field{Name: "i", Kind: tuple.IntKind},
		tuple.Field{Name: "f", Kind: tuple.FloatKind},
		tuple.Field{Name: "s", Kind: tuple.StringKind},
		tuple.Field{Name: "b", Kind: tuple.BoolKind},
		tuple.Field{Name: "t", Kind: tuple.TimeKind},
	)
	for _, bad := range []string{
		`{"i":"x"}`, `{"f":"x"}`, `{"s":5}`, `{"b":"x"}`, `{"t":"x"}`,
		`{"ts_us":"nope"}`,
	} {
		if _, err := NewJSONScanner(strings.NewReader(bad+"\n"), sch).Next(); err == nil {
			t.Errorf("input %s accepted", bad)
		}
	}
}
