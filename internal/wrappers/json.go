package wrappers

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/tuple"
)

// JSONScanner decodes JSON-lines input (one object per line) into tuples of
// a schema. Field names map to object keys; an optional "ts_us" key carries
// the external timestamp in microseconds.
type JSONScanner struct {
	sc     *bufio.Scanner
	schema *tuple.Schema
	line   int
	mag    tuple.Magazine
}

// NewJSONScanner returns a scanner decoding objects from r.
func NewJSONScanner(r io.Reader, schema *tuple.Schema) *JSONScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &JSONScanner{sc: sc, schema: schema}
}

// Next decodes the next object, returning io.EOF at end of input. Blank
// lines are skipped.
func (s *JSONScanner) Next() (*tuple.Tuple, error) {
	for {
		if !s.sc.Scan() {
			if err := s.sc.Err(); err != nil {
				return nil, err
			}
			return nil, io.EOF
		}
		s.line++
		line := s.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var obj map[string]json.RawMessage
		if err := json.Unmarshal(line, &obj); err != nil {
			return nil, fmt.Errorf("wrappers: line %d: %v", s.line, err)
		}
		t := s.mag.GetData(0, s.schema.Arity())
		if raw, ok := obj["ts_us"]; ok {
			var us int64
			if err := json.Unmarshal(raw, &us); err != nil {
				s.mag.Put(t)
				return nil, fmt.Errorf("wrappers: line %d: bad ts_us: %v", s.line, err)
			}
			t.Ts = tuple.Time(us)
		}
		for i, f := range s.schema.Fields {
			raw, ok := obj[f.Name]
			if !ok {
				continue // missing fields stay Null
			}
			v, err := decodeJSONValue(f.Kind, raw)
			if err != nil {
				s.mag.Put(t)
				return nil, fmt.Errorf("wrappers: line %d, field %s: %v", s.line, f.Name, err)
			}
			t.Vals[i] = v
		}
		return t, nil
	}
}

func decodeJSONValue(kind tuple.ValueKind, raw json.RawMessage) (tuple.Value, error) {
	switch kind {
	case tuple.IntKind:
		var v int64
		if err := json.Unmarshal(raw, &v); err != nil {
			return tuple.Value{}, err
		}
		return tuple.Int(v), nil
	case tuple.FloatKind:
		var v float64
		if err := json.Unmarshal(raw, &v); err != nil {
			return tuple.Value{}, err
		}
		return tuple.Float(v), nil
	case tuple.StringKind:
		var v string
		if err := json.Unmarshal(raw, &v); err != nil {
			return tuple.Value{}, err
		}
		return tuple.String_(v), nil
	case tuple.BoolKind:
		var v bool
		if err := json.Unmarshal(raw, &v); err != nil {
			return tuple.Value{}, err
		}
		return tuple.Bool(v), nil
	case tuple.TimeKind:
		var v int64
		if err := json.Unmarshal(raw, &v); err != nil {
			return tuple.Value{}, err
		}
		return tuple.TimeVal(tuple.Time(v)), nil
	default:
		return tuple.Value{}, fmt.Errorf("cannot decode kind %v", kind)
	}
}

// WriteJSON encodes one tuple as a JSON line. Punctuation is skipped.
func WriteJSON(w io.Writer, schema *tuple.Schema, t *tuple.Tuple) error {
	if t.IsPunct() {
		return nil
	}
	obj := make(map[string]interface{}, schema.Arity()+1)
	obj["ts_us"] = int64(t.Ts)
	for i, f := range schema.Fields {
		if i >= len(t.Vals) || t.Vals[i].IsNull() {
			continue
		}
		switch f.Kind {
		case tuple.IntKind:
			obj[f.Name] = t.Vals[i].AsInt()
		case tuple.FloatKind:
			obj[f.Name] = t.Vals[i].AsFloat()
		case tuple.StringKind:
			obj[f.Name] = t.Vals[i].AsString()
		case tuple.BoolKind:
			obj[f.Name] = t.Vals[i].AsBool()
		case tuple.TimeKind:
			obj[f.Name] = int64(t.Vals[i].AsTime())
		}
	}
	b, err := json.Marshal(obj)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
