package wrappers

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/server"
	"repro/internal/tuple"
)

// TCPSource accepts TCP connections and decodes tuples from each, delivering
// them to a callback — the network input wrapper for the real-time runtime.
// It is a thin veneer over the session server (internal/server): connections
// speaking the framed wire protocol get the full session treatment
// (punctuation, credits, skew measurement), while raw connections fall back
// to legacy text mode and are decoded as CSV lines against the schema.
type TCPSource struct {
	srv     *server.Server
	deliver func(*tuple.Tuple)

	closed   atomic.Bool
	received atomic.Uint64
}

// NewTCPSource listens on addr (e.g. "127.0.0.1:0") and delivers decoded
// tuples to the callback from connection-handler goroutines. The callback
// must be safe for concurrent use (ingesting into a runtime engine is).
func NewTCPSource(addr string, schema *tuple.Schema, opts CSVOptions, deliver func(*tuple.Tuple)) (*TCPSource, error) {
	s := &TCPSource{deliver: deliver}
	srv, err := server.Listen(addr, server.Options{
		Backend: server.NewCallbackBackend(schema, s.handleTuple, nil),
		Text: &server.TextOptions{
			Stream: schema.Name,
			NewDecoder: func(r io.Reader, sch *tuple.Schema) server.TupleDecoder {
				return NewCSVScanner(r, sch, opts)
			},
		},
	})
	if err != nil {
		return nil, err
	}
	s.srv = srv
	return s, nil
}

func (s *TCPSource) handleTuple(t *tuple.Tuple) {
	if s.closed.Load() {
		return
	}
	if !t.IsPunct() {
		s.received.Add(1)
	}
	s.deliver(t)
}

// Addr reports the bound listen address.
func (s *TCPSource) Addr() net.Addr { return s.srv.Addr() }

// Received reports the number of data tuples decoded so far.
func (s *TCPSource) Received() uint64 { return s.received.Load() }

// Close stops accepting, cuts live connections, and waits for connection
// handlers to finish.
func (s *TCPSource) Close() error {
	s.closed.Store(true)
	return s.srv.Close()
}

// TCPSink connects to addr and writes result tuples as CSV lines — the
// network output wrapper.
type TCPSink struct {
	conn net.Conn
	w    *CSVWriter
	mu   sync.Mutex
}

// NewTCPSink dials addr and returns a sink writer.
func NewTCPSink(addr string, schema *tuple.Schema, opts CSVOptions) (*TCPSink, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wrappers: dial %s: %w", addr, err)
	}
	return &TCPSink{conn: conn, w: NewCSVWriter(conn, schema, opts)}, nil
}

// Write encodes one tuple (safe for concurrent use).
func (s *TCPSink) Write(t *tuple.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Write(t); err != nil {
		return err
	}
	return s.w.Flush()
}

// Close closes the connection.
func (s *TCPSink) Close() error { return s.conn.Close() }
