package wrappers

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/tuple"
)

// TCPSource accepts TCP connections and decodes CSV lines from each into
// tuples, delivering them to a callback. It is the network input wrapper
// for the real-time runtime.
type TCPSource struct {
	ln      net.Listener
	schema  *tuple.Schema
	opts    CSVOptions
	deliver func(*tuple.Tuple)

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup

	received uint64
	errs     uint64
}

// NewTCPSource listens on addr (e.g. "127.0.0.1:0") and delivers decoded
// tuples to the callback from connection-handler goroutines. The callback
// must be safe for concurrent use (ingesting into a runtime engine is).
func NewTCPSource(addr string, schema *tuple.Schema, opts CSVOptions, deliver func(*tuple.Tuple)) (*TCPSource, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wrappers: listen %s: %w", addr, err)
	}
	s := &TCPSource{ln: ln, schema: schema, opts: opts, deliver: deliver}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the bound listen address.
func (s *TCPSource) Addr() net.Addr { return s.ln.Addr() }

// Received reports the number of tuples decoded so far.
func (s *TCPSource) Received() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received
}

// Close stops accepting and waits for connection handlers to finish.
func (s *TCPSource) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *TCPSource) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *TCPSource) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	sc := NewCSVScanner(conn, s.schema, s.opts)
	for {
		t, err := sc.Next()
		if err != nil {
			if err.Error() != "EOF" {
				s.mu.Lock()
				s.errs++
				s.mu.Unlock()
			}
			return
		}
		s.mu.Lock()
		closed := s.closed
		if !closed {
			s.received++
		}
		s.mu.Unlock()
		if closed {
			return
		}
		s.deliver(t)
	}
}

// TCPSink connects to addr and writes result tuples as CSV lines — the
// network output wrapper.
type TCPSink struct {
	conn net.Conn
	w    *CSVWriter
	mu   sync.Mutex
}

// NewTCPSink dials addr and returns a sink writer.
func NewTCPSink(addr string, schema *tuple.Schema, opts CSVOptions) (*TCPSink, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wrappers: dial %s: %w", addr, err)
	}
	return &TCPSink{conn: conn, w: NewCSVWriter(conn, schema, opts)}, nil
}

// Write encodes one tuple (safe for concurrent use).
func (s *TCPSink) Write(t *tuple.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Write(t); err != nil {
		return err
	}
	return s.w.Flush()
}

// Close closes the connection.
func (s *TCPSink) Close() error { return s.conn.Close() }
