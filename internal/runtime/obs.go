// Live observability for the concurrent runtime. Every node gets a set of
// registry-backed atomic instruments at graph-build time (nodeObs); the hot
// path updates them per batch — never per tuple — so the engine stays within
// its throughput budget, and scrapers read them at any moment without
// stopping a goroutine. Engine.Snapshot() rolls the instruments into one
// structured view: the live analogues of the paper's §6 metrics (output
// latency lives at the sink callback, peak queue size per node here,
// idle-waiting fraction per node here) plus the ETS/demand accounting the
// on-demand design adds.
package runtime

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/tuple"
)

// nodeObs holds one node's live instruments. All fields are registry-backed
// atomics: the owning node goroutine is the only writer of the gauges, any
// goroutine may read. idleSince is engine-local (not a registry metric)
// because open idle spells are folded into idle time at snapshot time.
type nodeObs struct {
	tuplesIn   *metrics.Counter64
	tuplesOut  *metrics.Counter64
	punctIn    *metrics.Counter64
	punctOut   *metrics.Counter64
	batchesOut *metrics.Counter64

	queueDepth *metrics.Gauge64
	queueHWM   *metrics.Gauge64

	wmIn  *metrics.Gauge64 // last punctuation bound received
	wmOut *metrics.Gauge64 // last punctuation bound emitted

	idleUs     *metrics.Counter64 // closed idle-waiting spells, µs
	idleSpells *metrics.Counter64
	idleSince  atomic.Int64 // engine clock µs when the open spell began; -1 when not idle

	etsInternal *metrics.Counter64 // on-demand ETS generated (internal-ts source)
	etsExternal *metrics.Counter64 // on-demand ETS generated (external-ts source)

	demandSent *metrics.Counter64
	demandRecv *metrics.Counter64

	// Fault-tolerance instruments: supervisor events (panics, restarts),
	// watchdog events (forcedETS, revived — sources only), and overload /
	// lateness accounting (shedTuples, lateTuples).
	panics     *metrics.Counter64
	restarts   *metrics.Counter64
	forcedETS  *metrics.Counter64
	revived    *metrics.Counter64
	shedTuples *metrics.Counter64
	lateTuples *metrics.Counter64

	// retunes counts reconfigurations applied at this node's punctuation
	// boundaries (the adaptive controller's apply-side evidence).
	retunes *metrics.Counter64

	// Watermark-lag attribution, indexed by input port (sources have one
	// port — the ingest feed). arcWm is the highest punctuation bound seen
	// on that arc; arcLag a reservoir of event-time lag samples (engine
	// clock − punctuation bound, µs, observed at punct arrival): how far
	// each arc's watermark trails the clock. stallBy counts idle-waiting
	// spells charged to that input (the blocking input when the spell
	// opened); stallUsBy the µs so charged. blockedOn is the port the open
	// spell is charged to, -1 while not idle-waiting.
	arcWm     []*metrics.Gauge64
	arcLag    []*metrics.Reservoir
	stallBy   []*metrics.Counter64
	stallUsBy []*metrics.Counter64
	blockedOn *metrics.Gauge64
}

// arcLagWindow is the per-arc lag reservoir capacity: big enough for a
// stable p99 over a scrape interval, small enough that a wide graph stays
// cheap (the reservoir is lock-free and fixed-size).
const arcLagWindow = 512

// instrument builds every node's instruments and the engine-level metrics,
// registering them under sm_* names with {node=...,id=...} labels.
func (e *Engine) instrument() {
	reg := e.reg
	for _, n := range e.nodes {
		n := n
		lbl := fmt.Sprintf("{node=%q,id=%q}", n.name, fmt.Sprint(n.gn.ID))
		o := &nodeObs{
			tuplesIn:    reg.Counter("sm_node_tuples_in_total" + lbl),
			tuplesOut:   reg.Counter("sm_node_tuples_out_total" + lbl),
			punctIn:     reg.Counter("sm_node_punct_in_total" + lbl),
			punctOut:    reg.Counter("sm_node_punct_out_total" + lbl),
			batchesOut:  reg.Counter("sm_node_batches_out_total" + lbl),
			queueDepth:  reg.Gauge("sm_node_queue_depth" + lbl),
			queueHWM:    reg.Gauge("sm_node_queue_hwm" + lbl),
			wmIn:        reg.Gauge("sm_node_watermark_in_us" + lbl),
			wmOut:       reg.Gauge("sm_node_watermark_us" + lbl),
			idleUs:      reg.Counter("sm_node_idle_us_total" + lbl),
			idleSpells:  reg.Counter("sm_node_idle_spells_total" + lbl),
			demandSent:  reg.Counter("sm_node_demand_sent_total" + lbl),
			demandRecv:  reg.Counter("sm_node_demand_recv_total" + lbl),
			etsInternal: reg.Counter("sm_node_ets_internal_total" + lbl),
			etsExternal: reg.Counter("sm_node_ets_external_total" + lbl),
			panics:      reg.Counter("sm_node_panics_total" + lbl),
			restarts:    reg.Counter("sm_node_restarts_total" + lbl),
			forcedETS:   reg.Counter("sm_node_forced_ets_total" + lbl),
			revived:     reg.Counter("sm_node_revived_total" + lbl),
			shedTuples:  reg.Counter("sm_node_shed_total" + lbl),
			lateTuples:  reg.Counter("sm_node_late_tuples_total" + lbl),
			retunes:     reg.Counter("sm_node_retunes_total" + lbl),
		}
		o.idleSince.Store(-1)
		o.wmIn.Set(int64(tuple.MinTime))
		o.wmOut.Set(int64(tuple.MinTime))
		// Per-input-arc lag and stall attribution. A source's single
		// "arc" is its ingest feed.
		nin := n.gn.Op.NumInputs()
		if nin < 1 {
			nin = 1
		}
		o.arcWm = make([]*metrics.Gauge64, nin)
		o.arcLag = make([]*metrics.Reservoir, nin)
		o.stallBy = make([]*metrics.Counter64, nin)
		o.stallUsBy = make([]*metrics.Counter64, nin)
		for p := 0; p < nin; p++ {
			plbl := fmt.Sprintf("{node=%q,id=%q,port=%q}", n.name, fmt.Sprint(n.gn.ID), fmt.Sprint(p))
			o.arcWm[p] = reg.Gauge("sm_arc_watermark_us" + plbl)
			o.arcWm[p].Set(int64(tuple.MinTime))
			o.arcLag[p] = reg.Reservoir("sm_arc_wm_lag_us"+plbl, arcLagWindow)
			o.stallBy[p] = reg.Counter("sm_node_stall_by_input_total" + plbl)
			o.stallUsBy[p] = reg.Counter("sm_node_stall_by_input_us_total" + plbl)
		}
		o.blockedOn = reg.Gauge("sm_node_blocking_input" + lbl)
		o.blockedOn.Set(-1)
		n.obs = o
		reg.GaugeFunc("sm_node_chan_backlog"+lbl, func() int64 { return int64(len(n.in)) })
		// Live tuned values: /vars shows what the adaptive controller has
		// actually applied, per node.
		reg.GaugeFunc("sm_node_batch_size"+lbl, func() int64 { return n.batchSize.Load() })
		reg.GaugeFunc("sm_node_max_delay_us"+lbl, func() int64 { return n.maxDelayNs.Load() / 1e3 })
		reg.GaugeFunc("sm_node_idle"+lbl, func() int64 {
			if o.idleSince.Load() >= 0 {
				return 1
			}
			return 0
		})
		if n.gn.Source() != nil {
			reg.GaugeFunc("sm_node_dead"+lbl, func() int64 {
				if n.dead.Load() {
					return 1
				}
				return 0
			})
		}
	}
	reg.CounterFunc("sm_engine_tuples_sent_total", func() int64 { return int64(e.tuplesSent.Load()) })
	reg.CounterFunc("sm_engine_batches_sent_total", func() int64 { return int64(e.batchesSent.Load()) })
	reg.CounterFunc("sm_engine_ets_generated_total", func() int64 { return int64(e.etsGenerated.Load()) })
	reg.CounterFunc("sm_engine_forced_ets_total", func() int64 { return int64(e.forcedETS.Load()) })
	reg.CounterFunc("sm_engine_shed_total", func() int64 { return int64(e.tuplesShed.Load()) })
	reg.CounterFunc("sm_engine_late_tuples_total", func() int64 { return int64(e.lateTuples.Load()) })
	reg.GaugeFunc("sm_engine_dead_sources", func() int64 { return e.deadSources.Load() })
	reg.GaugeFunc("sm_engine_uptime_us", func() int64 {
		start := e.startTs.Load()
		if start < 0 {
			return 0
		}
		return int64(e.now()) - start
	})
	reg.CounterFunc("sm_ckpt_total", func() int64 { return int64(e.ckptTotal.Load()) })
	reg.CounterFunc("sm_ckpt_failed_total", func() int64 { return int64(e.ckptFailed.Load()) })
	reg.CounterFunc("sm_ckpt_bytes_total", func() int64 { return int64(e.ckptBytes.Load()) })
	// Engine clock of the last completed checkpoint — 0 until one completes,
	// so readiness probes can distinguish "never checkpointed" cheaply.
	reg.GaugeFunc("sm_ckpt_last_complete_us", func() int64 { return e.ckptLastUs.Load() })
	e.ckptDur = reg.Reservoir("sm_ckpt_duration_us", 256)
	if e.plan != nil {
		for s := 0; s < e.plan.Shards; s++ {
			s := s
			reg.CounterFunc(fmt.Sprintf("sm_shard_tuples_total{shard=%q}", fmt.Sprint(s)), func() int64 {
				counts := e.ShardTuples()
				if s >= len(counts) {
					return 0
				}
				return int64(counts[s])
			})
		}
		reg.GaugeFunc("sm_shard_skew_ppm", func() int64 {
			return int64(partition.Skew(e.ShardTuples()) * 1e6)
		})
		// Per-splitter assignment versions: nonzero means a retarget was
		// promoted at a punctuation barrier.
		for _, sh := range e.plan.Ops {
			for port, id := range sh.Splitters {
				if s, ok := e.g.Node(id).Op.(*ops.Split); ok {
					lbl := fmt.Sprintf("{op=%q,port=%q}", sh.Name, fmt.Sprint(port))
					reg.GaugeFunc("sm_split_assign_version"+lbl, func() int64 {
						return int64(s.AssignVersion())
					})
				}
			}
		}
	}
}

// publishQueues publishes the node's total input occupancy; called by the
// owning goroutine once per scheduling iteration, right after the channel
// drain, when queues are at their fullest.
func (e *Engine) publishQueues(n *node) {
	d := 0
	if src := n.gn.Source(); src != nil {
		d = src.Inbox().Len()
	} else {
		for _, q := range n.ins {
			d += q.Len()
		}
	}
	v := int64(d)
	n.obs.queueDepth.Set(v)
	if v > n.obs.queueHWM.Load() {
		n.obs.queueHWM.Set(v) // single writer: load+store suffices
	}
}

// enterIdle opens an idle-waiting spell if the node is about to block while
// holding input data (the paper's idle-waiting condition) and no spell is
// already open. Demand retries keep one spell open rather than opening a
// new spell per retry. The spell is charged to the operator's blocking
// input — the arc whose missing timestamp bound is the reason the node
// cannot run — so a stalled watermark is attributable, not just visible.
func (e *Engine) enterIdle(n *node, ctx *ops.Ctx) {
	if n.obs.idleSince.Load() >= 0 || !e.hasData(n) {
		return
	}
	now := int64(e.now())
	n.obs.idleSince.Store(now)
	n.obs.idleSpells.Inc()
	if len(n.gn.Preds) > 0 && ctx != nil {
		j := n.gn.Op.BlockingInput(ctx)
		if j < 0 {
			j = 0
		}
		if j < len(n.obs.stallBy) {
			n.idleBlockedOn = j
			n.obs.stallBy[j].Inc()
			n.obs.blockedOn.Set(int64(j))
		}
	}
	if e.trace != nil {
		e.trace.Emit(metrics.EvIdleEnter, n.name, tuple.Time(now), 0)
	}
}

// exitIdle closes the open idle-waiting spell, if any, charging its
// duration. Called when the operator actually makes progress again (or the
// node terminates), matching the reactivation semantics of §4.
func (e *Engine) exitIdle(n *node) {
	since := n.obs.idleSince.Load()
	if since < 0 {
		return
	}
	n.obs.idleSince.Store(-1)
	now := int64(e.now())
	d := now - since
	if d < 0 {
		d = 0
	}
	n.obs.idleUs.Add(uint64(d))
	if j := n.idleBlockedOn; j >= 0 && j < len(n.obs.stallUsBy) {
		n.obs.stallUsBy[j].Add(uint64(d))
	}
	n.idleBlockedOn = -1
	n.obs.blockedOn.Set(-1)
	if e.trace != nil {
		e.trace.Emit(metrics.EvIdleExit, n.name, tuple.Time(now), d)
	}
}

// notePunctOut accounts an emitted punctuation and advances the node's
// output watermark, tracing the advance. Single writer per node.
func (e *Engine) notePunctOut(n *node, t *tuple.Tuple) {
	if e.spans != nil && t.Trace != 0 {
		// The node's watermark advanced on account of this trace.
		e.spans.Record(t.Trace, n.name, obs.PhaseApply, t.Ts)
	}
	e.notePunctOutTs(n, t.Ts)
}

// notePunctOutTs is notePunctOut for a bound carried as batch metadata (a
// columnar PunctMark) rather than an in-band punct tuple.
func (e *Engine) notePunctOutTs(n *node, ts tuple.Time) {
	n.obs.punctOut.Inc()
	n.punctBoundary = true
	n.sincePunct = 0
	if ts == tuple.MaxTime {
		return
	}
	v := int64(ts)
	if v > n.obs.wmOut.Load() {
		n.obs.wmOut.Set(v)
		if e.trace != nil {
			e.trace.Emit(metrics.EvWatermarkAdvance, n.name, e.now(), v)
		}
	}
}

// notePunctIn accounts a received punctuation and raises the node's input
// watermark. Single writer per node.
func (n *node) notePunctIn(t *tuple.Tuple) {
	n.notePunctInTs(t.Ts)
}

// notePunctArrival is the delivery-time superset of notePunctIn: besides
// the node-level counters it attributes the bound to the arriving arc —
// per-arc watermark gauge and event-time-lag reservoir (engine clock minus
// the bound: how far this arc's watermark trails "now") — and records the
// dequeue span event for a traced punctuation. port is the input arc (0
// for a source's ingest feed); trace 0 means untraced.
func (e *Engine) notePunctArrival(n *node, port int, ts tuple.Time, trace uint64) {
	n.notePunctInTs(ts)
	o := n.obs
	if ts != tuple.MaxTime && port >= 0 && port < len(o.arcWm) {
		v := int64(ts)
		if v > o.arcWm[port].Load() {
			o.arcWm[port].Set(v) // single writer: load+store suffices
		}
		o.arcLag[port].Observe(int64(e.now()) - v)
	}
	if trace != 0 {
		n.lastInTrace = trace
		if e.spans != nil {
			e.spans.Record(trace, n.name, obs.PhaseDequeue, ts)
			if len(n.outs) == 0 {
				// Terminal node: the journey is complete.
				e.spans.Record(trace, n.name, obs.PhaseSink, ts)
			}
		}
	}
}

// stampPunctTrace gives an emitted punctuation its propagation trace just
// before it is appended to the out arcs. A source emission with no trace is
// a generation point (on-demand ETS, watchdog-forced ETS, or replay
// ingest) and opens a fresh timeline; an interior emission inherits the
// last traced bound delivered to the node — exact for operators that
// forward the punct tuple itself, best-effort causal attribution for TSM
// operators that synthesize their own bounds.
func (e *Engine) stampPunctTrace(n *node, t *tuple.Tuple) {
	if e.spans == nil || t.Trace != 0 {
		return
	}
	if n.gn.Source() != nil {
		t.Trace = e.spans.NewTrace()
		e.spans.Record(t.Trace, n.name, obs.PhaseGen, t.Ts)
		return
	}
	t.Trace = n.lastInTrace // may stay 0: upstream was never traced
}

// notePunctInTs is notePunctIn for a bound carried as batch metadata.
func (n *node) notePunctInTs(ts tuple.Time) {
	n.obs.punctIn.Inc()
	if ts == tuple.MaxTime {
		return
	}
	if v := int64(ts); v > n.obs.wmIn.Load() {
		n.obs.wmIn.Set(v)
	}
}

// Registry exposes the engine's live metrics registry (the one passed via
// Options.Metrics, or the engine's own); serve it with metrics.Handler or
// render it with its Write* methods.
func (e *Engine) Registry() *metrics.Registry { return e.reg }

// NodeInstruments exposes one node's live counters so a controller can keep
// its own metrics.RateWindow deltas against them instead of diffing whole
// snapshots each tick. All fields are nil for an unknown id.
type NodeInstruments struct {
	TuplesIn   *metrics.Counter64
	TuplesOut  *metrics.Counter64
	BatchesOut *metrics.Counter64
	QueueDepth *metrics.Gauge64
}

// NodeInstruments returns node id's live instruments (see NodeInstruments).
func (e *Engine) NodeInstruments(id int) NodeInstruments {
	if id < 0 || id >= len(e.nodes) {
		return NodeInstruments{}
	}
	o := e.nodes[id].obs
	return NodeInstruments{
		TuplesIn:   o.tuplesIn,
		TuplesOut:  o.tuplesOut,
		BatchesOut: o.batchesOut,
		QueueDepth: o.queueDepth,
	}
}

// ArcSnapshot is one input arc's watermark-lag attribution: how far the
// arc's bound trails the engine clock and how much idle-waiting the arc has
// been blamed for.
type ArcSnapshot struct {
	// Port is the input index at the consuming node (0 for a source's
	// ingest feed).
	Port int
	// Watermark is the highest punctuation bound received on this arc.
	Watermark tuple.Time
	// Lag is the reservoir of event-time lag samples (engine clock −
	// bound, µs, observed at punct arrival).
	Lag metrics.ReservoirSnapshot
	// Stalls counts idle-waiting spells charged to this input being the
	// blocking one; StallTime their accumulated duration.
	Stalls    uint64
	StallTime tuple.Time
}

// NodeSnapshot is one node's instrument readings.
type NodeSnapshot struct {
	// Node is the operator name; ID its graph node id.
	Node string
	ID   int
	// TuplesIn/TuplesOut count every tuple (data + punctuation) delivered
	// to / sent from the node; PunctIn/PunctOut count the punctuation
	// subset. BatchesOut counts arc deliveries.
	TuplesIn, TuplesOut uint64
	PunctIn, PunctOut   uint64
	BatchesOut          uint64
	// QueueDepth is the node's buffered input occupancy as last published
	// by its goroutine; QueueHWM its high-water mark; ChanBacklog the
	// undrained arc deliveries waiting in the node's inbox channel.
	QueueDepth, QueueHWM, ChanBacklog int
	// WatermarkIn/Watermark are the highest punctuation bounds received /
	// emitted (MinTime until the first punctuation).
	WatermarkIn, Watermark tuple.Time
	// Idle reports whether an idle-waiting spell is open right now;
	// IdleSpells how many spells ever opened; IdleTime the cumulative
	// idle-waiting duration (open spell included); IdleFraction IdleTime
	// over engine uptime — the paper's "% of time idle-waiting".
	Idle         bool
	IdleSpells   uint64
	IdleTime     tuple.Time
	IdleFraction float64
	// ETSInternal/ETSExternal count on-demand ETS generated at this node
	// (sources only), split by the stream's timestamp kind.
	ETSInternal, ETSExternal uint64
	// DemandSent counts demand signalling rounds this node initiated;
	// DemandRecv demand signals it received.
	DemandSent, DemandRecv uint64
	// Panics counts recovered panics in this node's scheduling loop;
	// Restarts how many times the supervisor relaunched it.
	Panics, Restarts uint64
	// ForcedETS counts watchdog-forced ETS injections (sources only);
	// Revived how often a dead-declared source came back; Dead whether the
	// watchdog currently considers the source dead.
	ForcedETS, Revived uint64
	Dead               bool
	// LateTuples counts data tuples that arrived below the node's input
	// watermark; TuplesShed data tuples dropped by the overload shedder.
	LateTuples, TuplesShed uint64
	// BatchSize/MaxBatchDelay are the node's live data-plane tunables;
	// Retunes counts reconfigurations applied at punctuation boundaries.
	BatchSize     int
	MaxBatchDelay time.Duration
	Retunes       uint64
	// Arcs is the per-input watermark-lag attribution; BlockingInput the
	// input the open idle spell is charged to (-1 when not idle-waiting).
	Arcs          []ArcSnapshot
	BlockingInput int
}

// Snapshot is a consistent-enough point-in-time view of the whole engine:
// every metric is read once from live atomics, without pausing any node.
type Snapshot struct {
	// Now is the engine clock at the snapshot; Uptime the time since
	// Start (0 before).
	Now, Uptime tuple.Time
	// Engine-level data-plane totals.
	TuplesSent, BatchesSent, ETSGenerated uint64
	// Engine-level fault-tolerance totals: watchdog-forced ETS, tuples
	// dropped by the shedder, tuples that arrived below a node's input
	// watermark, and the number of sources currently declared dead.
	ForcedETS, TuplesShed, LateTuples uint64
	DeadSources                       int
	// Nodes holds one entry per graph node, in node-id order.
	Nodes []NodeSnapshot
	// ShardTuples is the per-shard routed-tuple rollup (nil unsharded);
	// ShardSkew its (max−mean)/mean imbalance.
	ShardTuples []uint64
	ShardSkew   float64
}

// Node returns the snapshot entry for the named operator, or nil.
func (s *Snapshot) Node(name string) *NodeSnapshot {
	for i := range s.Nodes {
		if s.Nodes[i].Node == name {
			return &s.Nodes[i]
		}
	}
	return nil
}

// Snapshot reads every node's live instruments. Safe to call at any time,
// including while the engine runs.
func (e *Engine) Snapshot() Snapshot {
	now := e.now()
	s := Snapshot{
		Now:          now,
		TuplesSent:   e.tuplesSent.Load(),
		BatchesSent:  e.batchesSent.Load(),
		ETSGenerated: e.etsGenerated.Load(),
		ForcedETS:    e.forcedETS.Load(),
		TuplesShed:   e.tuplesShed.Load(),
		LateTuples:   e.lateTuples.Load(),
		DeadSources:  int(e.deadSources.Load()),
	}
	if start := e.startTs.Load(); start >= 0 {
		s.Uptime = now - tuple.Time(start)
	}
	s.Nodes = make([]NodeSnapshot, 0, len(e.nodes))
	for _, n := range e.nodes {
		o := n.obs
		ns := NodeSnapshot{
			Node:        n.name,
			ID:          int(n.gn.ID),
			TuplesIn:    o.tuplesIn.Load(),
			TuplesOut:   o.tuplesOut.Load(),
			PunctIn:     o.punctIn.Load(),
			PunctOut:    o.punctOut.Load(),
			BatchesOut:  o.batchesOut.Load(),
			QueueDepth:  int(o.queueDepth.Load()),
			QueueHWM:    int(o.queueHWM.Load()),
			ChanBacklog: len(n.in),
			WatermarkIn: tuple.Time(o.wmIn.Load()),
			Watermark:   tuple.Time(o.wmOut.Load()),
			IdleSpells:  o.idleSpells.Load(),
			ETSInternal: o.etsInternal.Load(),
			ETSExternal: o.etsExternal.Load(),
			DemandSent:  o.demandSent.Load(),
			DemandRecv:  o.demandRecv.Load(),
			Panics:      o.panics.Load(),
			Restarts:    o.restarts.Load(),
			ForcedETS:   o.forcedETS.Load(),
			Revived:     o.revived.Load(),
			LateTuples:  o.lateTuples.Load(),
			TuplesShed:  o.shedTuples.Load(),
			Dead:        n.dead.Load(),

			BatchSize:     int(n.batchSize.Load()),
			MaxBatchDelay: time.Duration(n.maxDelayNs.Load()),
			Retunes:       o.retunes.Load(),
			BlockingInput: int(o.blockedOn.Load()),
		}
		ns.Arcs = make([]ArcSnapshot, len(o.arcWm))
		for p := range o.arcWm {
			ns.Arcs[p] = ArcSnapshot{
				Port:      p,
				Watermark: tuple.Time(o.arcWm[p].Load()),
				Lag:       o.arcLag[p].Snapshot(),
				Stalls:    o.stallBy[p].Load(),
				StallTime: tuple.Time(o.stallUsBy[p].Load()),
			}
		}
		idle := tuple.Time(o.idleUs.Load())
		if since := o.idleSince.Load(); since >= 0 {
			ns.Idle = true
			if open := now - tuple.Time(since); open > 0 {
				idle += open
			}
		}
		ns.IdleTime = idle
		if s.Uptime > 0 {
			ns.IdleFraction = float64(idle) / float64(s.Uptime)
			if ns.IdleFraction > 1 {
				ns.IdleFraction = 1
			}
		}
		s.Nodes = append(s.Nodes, ns)
	}
	s.ShardTuples = e.ShardTuples()
	s.ShardSkew = partition.Skew(s.ShardTuples)
	return s
}
