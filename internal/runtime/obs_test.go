package runtime

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/tuple"
)

// A TSM union starved on one input is the paper's canonical idle-waiting
// scenario: the snapshot must show the union idle, with a positive idle
// fraction (the open spell is folded in) and the starving tuple visible in
// its queue depth.
func TestSnapshotStarvedUnionIdle(t *testing.T) {
	g, s1, _, col := buildUnion(t, ops.TSM, tuple.Internal)
	e, err := New(g, Options{OnDemandETS: false})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	e.Ingest(s1, tuple.NewData(0, tuple.Int(1)))

	var ns *NodeSnapshot
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := e.Snapshot()
		ns = snap.Node("u")
		if ns == nil {
			t.Fatal("union missing from snapshot")
		}
		if ns.Idle {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("union never reported idle: %+v", ns)
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the open spell accumulate
	snap := e.Snapshot()
	ns = snap.Node("u")
	if !ns.Idle || ns.IdleSpells == 0 {
		t.Fatalf("union not idle-waiting: %+v", ns)
	}
	if ns.IdleTime <= 0 || ns.IdleFraction <= 0 || ns.IdleFraction > 1 {
		t.Errorf("idle accounting off: time=%v fraction=%v", ns.IdleTime, ns.IdleFraction)
	}
	if ns.QueueDepth < 1 || ns.QueueHWM < 1 {
		t.Errorf("starving tuple not visible in queue: depth=%d hwm=%d", ns.QueueDepth, ns.QueueHWM)
	}
	if ns.TuplesIn == 0 {
		t.Error("union tuplesIn = 0")
	}
	if n := len(col.snapshot()); n != 0 {
		t.Fatalf("tuple released without a bound (%d)", n)
	}

	// The instruments must be registry-registered under sm_* names.
	var sawDepth, sawIdle, sawUptime bool
	for _, m := range e.Registry().Snapshot() {
		name, labels := metrics.SplitName(m.Name)
		if name == "sm_node_queue_depth" && strings.Contains(labels, `node="u"`) {
			sawDepth = true
		}
		if name == "sm_node_idle" && strings.Contains(labels, `node="u"`) && m.Value == 1 {
			sawIdle = true
		}
		if name == "sm_engine_uptime_us" && m.Value > 0 {
			sawUptime = true
		}
	}
	if !sawDepth || !sawIdle || !sawUptime {
		t.Errorf("registry missing instruments: depth=%v idle=%v uptime=%v",
			sawDepth, sawIdle, sawUptime)
	}
}

// Every IdleEnter must be matched by an IdleExit once the engine drains to
// completion, and no node may be left with an open spell. The per-kind
// tracer counts survive ring eviction, so the invariant holds regardless of
// ring capacity.
func TestTraceIdlePairing(t *testing.T) {
	g, s1, s2, col := buildUnion(t, ops.TSM, tuple.Internal)
	tr := metrics.NewTracer(64) // small ring: force eviction
	e, err := New(g, Options{OnDemandETS: true, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	for i := 0; i < 200; i++ {
		e.Ingest(s1, tuple.NewData(0, tuple.Int(int64(i))))
		if i%3 == 0 {
			e.Ingest(s2, tuple.NewData(0, tuple.Int(int64(-i))))
		}
	}
	e.CloseStream(s1)
	e.CloseStream(s2)
	e.Wait()

	enters, exits := tr.Count(metrics.EvIdleEnter), tr.Count(metrics.EvIdleExit)
	if enters != exits {
		t.Errorf("idle spells unbalanced: %d enters, %d exits", enters, exits)
	}
	snap := e.Snapshot()
	for _, ns := range snap.Nodes {
		if ns.Idle {
			t.Errorf("node %s left with an open idle spell", ns.Node)
		}
		if ns.IdleFraction < 0 || ns.IdleFraction > 1 {
			t.Errorf("node %s idle fraction %v out of range", ns.Node, ns.IdleFraction)
		}
	}
	if tr.Count(metrics.EvBatchFlush) == 0 {
		t.Error("no BatchFlush events traced")
	}
	if tr.Total() == 0 || len(tr.Recent(10)) == 0 {
		t.Error("trace ring empty after run")
	}
	if len(col.snapshot()) == 0 {
		t.Fatal("no output delivered")
	}
}

// The acceptance-criteria graph: a sharded union under on-demand ETS. The
// snapshot must expose per-node watermarks, queue depths, idle-waiting
// accounting, the per-shard routing rollup, and per-source ETS counts that
// reconcile with the engine total.
func TestSnapshotShardedGraph(t *testing.T) {
	g, s1, _, col := buildUnion(t, ops.TSM, tuple.Internal)
	tr := metrics.NewTracer(0)
	e, err := New(g, Options{OnDemandETS: true, Shards: 4, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if e.ShardPlan() == nil {
		t.Fatal("union was not sharded")
	}
	e.Start()
	defer e.Stop()
	for i := 0; i < 20; i++ {
		e.Ingest(s1, tuple.NewData(0, tuple.Int(int64(i))))
	}
	// Stream 2 stays silent: releasing the tuples requires on-demand ETS.
	deadline := time.Now().Add(5 * time.Second)
	for len(col.snapshot()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("on-demand ETS never released the tuples")
		}
		time.Sleep(time.Millisecond)
	}

	snap := e.Snapshot()
	if len(snap.ShardTuples) != 4 {
		t.Fatalf("shard rollup = %v, want 4 entries", snap.ShardTuples)
	}
	if snap.ShardSkew < 0 {
		t.Errorf("negative skew %v", snap.ShardSkew)
	}
	if snap.ETSGenerated == 0 {
		t.Fatal("no on-demand ETS recorded")
	}
	var etsNodes, demandSent, demandRecv uint64
	hwm := 0
	for _, ns := range snap.Nodes {
		etsNodes += ns.ETSInternal + ns.ETSExternal
		demandSent += ns.DemandSent
		demandRecv += ns.DemandRecv
		if ns.QueueHWM > hwm {
			hwm = ns.QueueHWM
		}
	}
	if etsNodes != snap.ETSGenerated {
		t.Errorf("per-node ETS %d != engine total %d", etsNodes, snap.ETSGenerated)
	}
	// Internal-timestamp sources must book their ETS as internal.
	if s2n := snap.Node("s2"); s2n == nil || s2n.ETSInternal == 0 || s2n.ETSExternal != 0 {
		t.Errorf("starved source ETS accounting: %+v", s2n)
	}
	if demandSent == 0 || demandRecv == 0 {
		t.Errorf("demand accounting: sent=%d recv=%d", demandSent, demandRecv)
	}
	// The ETS punctuation advances the starved source's output watermark.
	if s2n := snap.Node("s2"); s2n.Watermark == tuple.MinTime {
		t.Error("s2 watermark never advanced past MinTime")
	}
	if hwm < 1 {
		t.Error("no node recorded a queue high-water mark")
	}
	if tr.Count(metrics.EvETSGen) == 0 || tr.Count(metrics.EvDemandSent) == 0 {
		t.Errorf("trace counts: ets=%d demand=%d",
			tr.Count(metrics.EvETSGen), tr.Count(metrics.EvDemandSent))
	}
	if tr.Count(metrics.EvWatermarkAdvance) == 0 {
		t.Error("no WatermarkAdvance events traced")
	}
	if snap.TuplesSent == 0 || snap.Uptime <= 0 {
		t.Errorf("engine totals: sent=%d uptime=%v", snap.TuplesSent, snap.Uptime)
	}
}
