package runtime

import (
	"fmt"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tuple"
	"repro/internal/window"
)

// A sharded TSM union must deliver the same merged, timestamp-ordered stream
// as the unsharded one, and the engine must expose the shard plan and the
// per-shard routing rollup.
func TestRuntimeShardedUnionOrdered(t *testing.T) {
	g, s1, s2, col := buildUnion(t, ops.TSM, tuple.Internal)
	e, err := New(g, Options{OnDemandETS: true, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if e.ShardPlan() == nil || e.ShardPlan().Shards != 4 {
		t.Fatalf("shard plan = %v", e.ShardPlan())
	}
	e.Start()
	for i := 0; i < 50; i++ {
		e.Ingest(s1, tuple.NewData(0, tuple.Int(int64(i))))
		e.Ingest(s2, tuple.NewData(0, tuple.Int(int64(100+i))))
	}
	e.CloseStream(s1)
	e.CloseStream(s2)
	e.Wait()
	got := col.snapshot()
	if len(got) != 100 {
		t.Fatalf("delivered %d, want 100", len(got))
	}
	prev := tuple.MinTime
	for _, tp := range got {
		if tp.Ts < prev {
			t.Fatal("sharded merged output disordered")
		}
		prev = tp.Ts
	}
	shard := e.ShardTuples()
	if len(shard) != 4 {
		t.Fatalf("ShardTuples = %v", shard)
	}
	var total uint64
	for _, c := range shard {
		total += c
	}
	if total != 100 {
		t.Fatalf("routed %d data tuples across shards, want 100 (%v)", total, shard)
	}
}

// buildShardJoin assembles sources -> equi join -> sink with external
// timestamps, the workload shape the shard bench uses.
func buildShardJoin(cb func(*tuple.Tuple, tuple.Time)) (*graph.Graph, *ops.Source, *ops.Source) {
	sch := tuple.NewSchema("s",
		tuple.Field{Name: "key", Kind: tuple.IntKind},
		tuple.Field{Name: "seq", Kind: tuple.IntKind},
	).WithTS(tuple.External)
	g := graph.New("jq")
	s1 := ops.NewSource("s1", sch, 0)
	s2 := ops.NewSource("s2", sch, 0)
	a := g.AddNode(s1)
	b := g.AddNode(s2)
	j := g.AddNode(ops.NewEquiWindowJoin("j", nil,
		window.TimeWindow(1<<30), window.TimeWindow(1<<30), 0, 0, ops.TSM), a, b)
	g.AddNode(ops.NewSink("k", cb), j)
	return g, s1, s2
}

func runShardJoin(t *testing.T, shards int) []string {
	t.Helper()
	col := &collector{}
	g, s1, s2 := buildShardJoin(col.add)
	e, err := New(g, Options{OnDemandETS: true, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	for i := 0; i < 300; i++ {
		key := tuple.Int(int64(i % 16))
		e.Ingest(s1, tuple.NewData(tuple.Time(2*i), key, tuple.Int(int64(i))))
		e.Ingest(s2, tuple.NewData(tuple.Time(2*i+1), key, tuple.Int(int64(i))))
	}
	e.CloseStream(s1)
	e.CloseStream(s2)
	e.Wait()
	var rows []string
	for _, tp := range col.snapshot() {
		rows = append(rows, fmt.Sprintf("%v|%v", tp.Ts, tp.Vals))
	}
	sort.Strings(rows)
	return rows
}

// The tentpole equivalence property on the concurrent engine: sharded
// execution must produce exactly the unsharded join output.
func TestRuntimeShardedJoinMatchesUnsharded(t *testing.T) {
	want := runShardJoin(t, 0)
	if len(want) == 0 {
		t.Fatal("unsharded join produced nothing")
	}
	for _, p := range []int{2, 4} {
		got := runShardJoin(t, p)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d rows, want %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: row %d differs: %s vs %s", p, i, got[i], want[i])
			}
		}
	}
}

// Regression for sharded idle-waiting (the demand fan-out fix): a single
// tuple entering one shard of a partitioned union must still be released
// promptly — the starving shard's demand has to reach *both* sources (via
// both splitters), and the resulting ETS broadcast has to advance every
// other shard so the min-watermark merge lets the tuple through.
func TestRuntimeShardedIdleWaitingReleases(t *testing.T) {
	g, s1, _, col := buildUnion(t, ops.TSM, tuple.Internal)
	e, err := New(g, Options{OnDemandETS: true, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	e.Ingest(s1, tuple.NewData(0, tuple.Int(7)))
	deadline := time.Now().Add(5 * time.Second)
	for len(col.snapshot()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sharded idle-waiting: tuple never released")
		}
		time.Sleep(time.Millisecond)
	}
	if e.ETSGenerated() == 0 {
		t.Error("no ETS generated")
	}
	col.mu.Lock()
	lat := col.at[0] - col.out[0].Ts
	col.mu.Unlock()
	if lat > tuple.FromDuration(250*time.Millisecond) {
		t.Errorf("sharded release latency = %v, expected near-immediate", lat)
	}
}

// A sharded grouped aggregate must produce the unsharded result rows: each
// group's accumulators live wholly in one shard.
func TestRuntimeShardedAggregate(t *testing.T) {
	build := func(shards int) []string {
		sch := tuple.NewSchema("s",
			tuple.Field{Name: "g", Kind: tuple.IntKind},
			tuple.Field{Name: "v", Kind: tuple.IntKind},
		).WithTS(tuple.External)
		g := graph.New("agg")
		// δ covers the whole virtual-timestamp horizon: the wall clock runs
		// far ahead of the driven timestamps, and an over-estimated ETS
		// would close windows early, making the row set timing-dependent
		// (the join tests keep δ = 0 to stress exactly that late path).
		src := ops.NewSource("s", sch, 1<<40)
		a := g.AddNode(src)
		ag := g.AddNode(ops.NewAggregate("a", nil, 100, 0,
			ops.AggSpec{Fn: ops.Count}, ops.AggSpec{Fn: ops.Sum, Col: 1}), a)
		col := &collector{}
		g.AddNode(ops.NewSink("k", col.add), ag)
		e, err := New(g, Options{OnDemandETS: true, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		e.Start()
		for i := 0; i < 400; i++ {
			e.Ingest(src, tuple.NewData(tuple.Time(i),
				tuple.Int(int64(i%8)), tuple.Int(int64(i))))
		}
		e.CloseStream(src)
		e.Wait()
		var rows []string
		for _, tp := range col.snapshot() {
			rows = append(rows, fmt.Sprintf("%v|%v", tp.Ts, tp.Vals))
		}
		sort.Strings(rows)
		return rows
	}
	want := build(0)
	if len(want) == 0 {
		t.Fatal("unsharded aggregate produced nothing")
	}
	got := build(4)
	if len(got) != len(want) {
		t.Fatalf("sharded aggregate: %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d differs: %s vs %s", i, got[i], want[i])
		}
	}
}

// Recycling must stay enabled through a splitter's fan-out (routing
// preserves single ownership) and sharded output must stay correct with the
// pools engaged. The sink only counts — recycled tuples must not be
// retained.
func TestRuntimeShardedJoinWithRecycle(t *testing.T) {
	run := func(shards int) (uint64, uint64) {
		var rows, tsSum atomic.Uint64
		g, s1, s2 := buildShardJoin(func(tp *tuple.Tuple, _ tuple.Time) {
			rows.Add(1)
			tsSum.Add(uint64(tp.Ts))
		})
		e, err := New(g, Options{OnDemandETS: true, Shards: shards, Recycle: true})
		if err != nil {
			t.Fatal(err)
		}
		e.Start()
		for i := 0; i < 300; i++ {
			key := tuple.Int(int64(i % 16))
			e.Ingest(s1, tuple.NewData(tuple.Time(2*i), key, tuple.Int(int64(i))))
			e.Ingest(s2, tuple.NewData(tuple.Time(2*i+1), key, tuple.Int(int64(i))))
		}
		e.CloseStream(s1)
		e.CloseStream(s2)
		e.Wait()
		return rows.Load(), tsSum.Load()
	}
	wantRows, wantSum := run(0)
	gotRows, gotSum := run(4)
	if wantRows == 0 || gotRows != wantRows || gotSum != wantSum {
		t.Fatalf("recycled sharded join: %d rows (sum %d), want %d (sum %d)",
			gotRows, gotSum, wantRows, wantSum)
	}
}
