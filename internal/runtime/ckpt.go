// Punctuation-aligned checkpointing (DESIGN.md §14). A checkpoint is cut by
// injecting a tagged punctuation — a barrier — into every source inbox. The
// barrier rides the ordinary arcs: sources rewrite its timestamp to their
// standing bound, splitters broadcast a copy to every shard, and multi-input
// operators align barriers across inputs with the consume-and-stash protocol
// in ops/barrier.go. The moment a barrier fully applies at a node, the node
// invokes its Ctx.OnBarrier callback on its own goroutine — the one instant
// its state is both quiescent and safely readable — and the engine encodes
// the operator's state right there. The engine-side collector below gathers
// one report per node and assembles the snapshot.
package runtime

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/ckpt"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/tuple"
)

// ErrCkptUnsupported reports a graph configuration the barrier protocol
// cannot checkpoint.
var ErrCkptUnsupported = errors.New("runtime: graph not checkpointable")

// ckptReport is one node's barrier application: the node itself, the barrier
// identity, the bound the barrier carried at this node, and — for stateful
// operators — the encoded state.
type ckptReport struct {
	n       *node
	id      uint64
	bound   tuple.Time
	payload []byte
	// stateful records whether the node's operator implements ops.Stateful
	// (a nil payload alone cannot distinguish "stateless" from "empty
	// state").
	stateful bool
}

// ckptCollect is one in-flight checkpoint's collection point. Node
// goroutines load it from Engine.ckptCur and send their report; a stale or
// cleared pointer means the barrier belongs to an abandoned attempt and the
// report is dropped.
type ckptCollect struct {
	id uint64
	ch chan ckptReport
}

// onBarrier runs on n's goroutine at the instant a checkpoint barrier fully
// applied there (for multi-input operators: after alignment, state snapshot
// point, before stash replay). It encodes the operator's state and reports
// to the in-flight collection.
func (e *Engine) onBarrier(n *node, id uint64, bound tuple.Time) {
	cc := e.ckptCur.Load()
	if cc == nil || cc.id != id {
		return // barrier from an abandoned or superseded checkpoint
	}
	r := ckptReport{n: n, id: id, bound: bound}
	if s, ok := n.gn.Op.(ops.Stateful); ok {
		enc := &ckpt.Encoder{}
		s.SaveState(enc)
		r.payload = enc.Bytes()
		r.stateful = true
	}
	if e.trace != nil {
		if n.gn.Source() != nil {
			e.trace.Emit(metrics.EvCkptBarrier, n.name, e.now(), int64(bound))
		}
		e.trace.Emit(metrics.EvCkptNode, n.name, e.now(), int64(len(r.payload)))
	}
	select {
	case cc.ch <- r:
	default:
		// The channel is sized for one report per node; a full channel means
		// duplicate reports from a protocol bug. Dropping keeps the node
		// goroutine unblocked; the collector times out and fails loudly.
	}
}

// ckptSupported verifies the graph can host the barrier protocol: the row
// data plane only (columnar arcs carry bounds as marks, which cannot carry a
// barrier tag), every IWP operator in TSM mode (Basic and Latent modes
// consume punctuation without forwarding it, so a barrier would die there),
// and distinct names for stateful nodes (segment names must identify them).
func (e *Engine) ckptSupported() error {
	if e.columnar {
		return fmt.Errorf("%w: columnar data plane drops barrier tags", ErrCkptUnsupported)
	}
	seen := make(map[string]bool)
	for _, n := range e.nodes {
		if m, ok := n.gn.Op.(interface{ Mode() ops.IWPMode }); ok && m.Mode() != ops.TSM {
			return fmt.Errorf("%w: node %q runs IWP mode %v (need TSM to forward barriers)",
				ErrCkptUnsupported, n.name, m.Mode())
		}
		if _, ok := n.gn.Op.(ops.Stateful); ok {
			if seen[n.name] {
				return fmt.Errorf("%w: duplicate stateful node name %q", ErrCkptUnsupported, n.name)
			}
			seen[n.name] = true
		}
	}
	return nil
}

// Checkpoint cuts one aligned snapshot: it injects a barrier punctuation
// tagged with id into every source, waits for every node to report the
// barrier's application, and returns the assembled snapshot. Calls are
// serialized; a second checkpoint waits for the first. The engine must be
// started. On timeout or engine stop the attempt is abandoned — in-flight
// barriers then resolve at the next attempt's abandon-restart rule.
//
// Avoid checkpointing while sources are closing: a source that reaches EOS
// before consuming the injected barrier never emits it, and the attempt
// times out.
//
// A barrier rides the arcs FIFO behind whatever data is already in flight,
// so checkpoint latency is bounded by queue depth over service rate. With
// unbounded queues (Options.MaxQueueLen == 0) an overloaded operator — e.g.
// a join whose fan-out outpaces its sink — pushes the barrier back
// indefinitely and every attempt times out. Periodic checkpointing should
// run with a queue bound and the backpressure policy (not Shed, which drops
// tuples the snapshot's sources have already counted).
func (e *Engine) Checkpoint(id uint64, timeout time.Duration) (*ckpt.Snapshot, error) {
	if id == 0 {
		return nil, errors.New("runtime: checkpoint id must be nonzero (zero tags mean no barrier)")
	}
	e.mu.Lock()
	started := e.started
	e.mu.Unlock()
	if !started {
		return nil, errors.New("runtime: checkpoint requires a started engine")
	}
	if err := e.ckptSupported(); err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = ckpt.DefaultTimeout
	}

	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	begin := time.Now()
	cc := &ckptCollect{id: id, ch: make(chan ckptReport, len(e.nodes))}
	e.ckptCur.Store(cc)
	defer e.ckptCur.Store(nil)

	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	abort := func(why string) (*ckpt.Snapshot, error) {
		e.ckptFailed.Add(1)
		if e.trace != nil {
			e.trace.Emit(metrics.EvCkptAbort, "", e.now(), int64(id))
		}
		return nil, fmt.Errorf("runtime: checkpoint %d: %s", id, why)
	}

	// Inject one tagged barrier into each source's fan-in channel. It queues
	// behind pending ingest like any delivery, so the source's sequence
	// number at barrier emission is the exact cut point.
	for _, sn := range e.srcNodes {
		p := tuple.GetPunct(tuple.MinTime)
		p.Ckpt = id
		select {
		case sn.in <- portBatch{port: 0, one: p}:
		case <-e.stop:
			return abort("engine stopped during barrier injection")
		case <-deadline.C:
			return abort(fmt.Sprintf("timeout injecting barrier into %q", sn.name))
		}
	}

	// Collect one report per node — stateless nodes report too (nil
	// payload), which is what makes "every node applied the barrier" the
	// completion condition rather than a guess.
	seen := make(map[*node]ckptReport, len(e.nodes))
	for len(seen) < len(e.nodes) {
		select {
		case r := <-cc.ch:
			if r.id != id {
				continue
			}
			seen[r.n] = r
		case <-e.stop:
			return abort("engine stopped while collecting")
		case <-deadline.C:
			missing := make([]string, 0, 4)
			for _, n := range e.nodes {
				if _, ok := seen[n]; !ok {
					missing = append(missing, n.name)
					if len(missing) == 4 {
						break
					}
				}
			}
			return abort(fmt.Sprintf("timeout waiting for %d/%d nodes (e.g. %v)",
				len(e.nodes)-len(seen), len(e.nodes), missing))
		}
	}

	snap := &ckpt.Snapshot{ID: id, Barrier: tuple.MaxTime, When: time.Now().UnixMicro()}
	for _, sn := range e.srcNodes {
		if r, ok := seen[sn]; ok && r.bound < snap.Barrier {
			snap.Barrier = r.bound
		}
	}
	if snap.Barrier == tuple.MaxTime {
		snap.Barrier = tuple.MinTime
	}
	var bytes uint64
	for n, r := range seen {
		if !r.stateful {
			continue
		}
		snap.Segments = append(snap.Segments, ckpt.Segment{Name: n.name, Payload: r.payload})
		bytes += uint64(len(r.payload))
	}
	sort.Slice(snap.Segments, func(i, j int) bool { return snap.Segments[i].Name < snap.Segments[j].Name })

	e.ckptTotal.Add(1)
	e.ckptBytes.Add(bytes)
	e.ckptLastUs.Store(int64(e.now()))
	if e.ckptDur != nil {
		e.ckptDur.Observe(time.Since(begin).Microseconds())
	}
	if e.trace != nil {
		e.trace.Emit(metrics.EvCkptComplete, "", e.now(), int64(id))
	}
	return snap, nil
}

// Restore loads a snapshot's segments into the graph's stateful operators.
// It must run after New and before Start — restoring into a running graph
// would race with the node goroutines. Matching is strict both ways: every
// segment must find its operator and every stateful operator its segment,
// so a restored process runs the same graph that was checkpointed.
func (e *Engine) Restore(snap *ckpt.Snapshot) error {
	if snap == nil {
		return errors.New("runtime: restore from nil snapshot")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return errors.New("runtime: restore requires a not-yet-started engine")
	}
	if err := e.ckptSupported(); err != nil {
		return err
	}
	stateful := make(map[string]ops.Stateful, len(e.nodes))
	for _, n := range e.nodes {
		if s, ok := n.gn.Op.(ops.Stateful); ok {
			stateful[n.name] = s
		}
	}
	if len(stateful) != len(snap.Segments) {
		return fmt.Errorf("runtime: restore: snapshot has %d segments, graph has %d stateful nodes",
			len(snap.Segments), len(stateful))
	}
	for _, seg := range snap.Segments {
		s, ok := stateful[seg.Name]
		if !ok {
			return fmt.Errorf("runtime: restore: snapshot segment %q has no stateful node", seg.Name)
		}
		dec := ckpt.NewDecoder(seg.Payload)
		if err := s.RestoreState(dec); err != nil {
			return fmt.Errorf("runtime: restore %q: %w", seg.Name, err)
		}
		if err := dec.Done(); err != nil {
			return fmt.Errorf("runtime: restore %q: trailing state: %w", seg.Name, err)
		}
	}
	if e.trace != nil {
		e.trace.Emit(metrics.EvCkptRestore, "", e.now(), int64(snap.ID))
	}
	return nil
}

var _ ckpt.Engine = (*Engine)(nil)
