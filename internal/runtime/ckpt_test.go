package runtime

import (
	"errors"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tuple"
)

// buildCkptGraph builds s1,s2 → union(TSM) → tumbling count(10) → sink: one
// aligned multi-input operator plus a blocking stateful one, the two shapes
// the barrier protocol has to get right.
func buildCkptGraph() (*graph.Graph, *ops.Source, *ops.Source, *ops.Sink, *collector) {
	g := graph.New("ck")
	sch := intSchema("s", tuple.External)
	s1 := ops.NewSource("s1", sch, 0)
	s2 := ops.NewSource("s2", sch, 0)
	a := g.AddNode(s1)
	b := g.AddNode(s2)
	u := g.AddNode(ops.NewUnion("u", nil, 2, ops.TSM), a, b)
	an := g.AddNode(ops.NewAggregate("agg", nil, 10, -1, ops.AggSpec{Fn: ops.Count}), u)
	col := &collector{}
	sink := ops.NewSink("k", col.add)
	g.AddNode(sink, an)
	return g, s1, s2, sink, col
}

func feedRange(e *Engine, s *ops.Source, lo, hi int) {
	for i := lo; i < hi; i++ {
		e.Ingest(s, tuple.NewData(tuple.Time(i), tuple.Int(int64(i))))
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	g, s1, s2, sink, _ := buildCkptGraph()
	e, err := New(g, Options{OnDemandETS: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	feedRange(e, s1, 1, 11)
	feedRange(e, s2, 1, 11)

	snap, err := e.Checkpoint(1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != 1 {
		t.Fatalf("snapshot id %d, want 1", snap.ID)
	}
	for _, name := range []string{"s1", "s2", "u", "agg", "k"} {
		if snap.Segment(name) == nil {
			t.Fatalf("snapshot missing segment %q (have %d segments)", name, len(snap.Segments))
		}
	}

	// Finish the original run.
	feedRange(e, s1, 11, 21)
	feedRange(e, s2, 11, 21)
	e.CloseStream(s1)
	e.CloseStream(s2)
	e.Wait()
	origReceived := sink.Received()
	if origReceived == 0 {
		t.Fatal("original run produced no output")
	}

	// Restore into an identical fresh graph and replay only the
	// post-checkpoint input; the restored run must converge to the same
	// delivered-row count.
	g2, r1, r2, sink2, _ := buildCkptGraph()
	e2, err := New(g2, Options{OnDemandETS: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := r1.Seq(); got != 10 {
		t.Fatalf("restored s1 seq %d, want 10 (the barrier cut)", got)
	}
	if got := r2.Seq(); got != 10 {
		t.Fatalf("restored s2 seq %d, want 10", got)
	}
	e2.Start()
	feedRange(e2, r1, 11, 21)
	feedRange(e2, r2, 11, 21)
	e2.CloseStream(r1)
	e2.CloseStream(r2)
	e2.Wait()
	if got := sink2.Received(); got != origReceived {
		t.Fatalf("restored run delivered %d rows, original %d", got, origReceived)
	}
}

func TestCheckpointSerializesAndRepeats(t *testing.T) {
	g, s1, s2, _, _ := buildCkptGraph()
	e, err := New(g, Options{OnDemandETS: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	for id := uint64(1); id <= 3; id++ {
		feedRange(e, s1, int(id)*10, int(id)*10+5)
		feedRange(e, s2, int(id)*10, int(id)*10+5)
		snap, err := e.Checkpoint(id, 10*time.Second)
		if err != nil {
			t.Fatalf("checkpoint %d: %v", id, err)
		}
		if snap.ID != id {
			t.Fatalf("snapshot id %d, want %d", snap.ID, id)
		}
	}
}

func TestCheckpointRejectsUnsupported(t *testing.T) {
	g, _, _, _ := buildUnion(t, ops.Basic, tuple.Internal)
	e, err := New(g, Options{OnDemandETS: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	if _, err := e.Checkpoint(1, time.Second); !errors.Is(err, ErrCkptUnsupported) {
		t.Fatalf("Basic-mode union accepted for checkpoint: %v", err)
	}
}

func TestCheckpointRequiresStartAndNonzeroID(t *testing.T) {
	g, _, _, _, _ := buildCkptGraph()
	e, err := New(g, Options{OnDemandETS: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(1, time.Second); err == nil {
		t.Fatal("checkpoint before Start accepted")
	}
	e.Start()
	defer e.Stop()
	if _, err := e.Checkpoint(0, time.Second); err == nil {
		t.Fatal("checkpoint id 0 accepted")
	}
}

func TestRestoreRejectsMismatchAndRunning(t *testing.T) {
	g, s1, s2, _, _ := buildCkptGraph()
	e, err := New(g, Options{OnDemandETS: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	feedRange(e, s1, 1, 6)
	feedRange(e, s2, 1, 6)
	snap, err := e.Checkpoint(1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	e.Stop()

	// A different graph shape must be rejected wholesale.
	g2, _, _, col := buildUnion(t, ops.TSM, tuple.Internal)
	e2, err := New(g2, Options{OnDemandETS: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = col
	if err := e2.Restore(snap); err == nil {
		t.Fatal("restore into a mismatched graph accepted")
	}

	// Restore after Start must be rejected.
	g3, _, _, _, _ := buildCkptGraph()
	e3, err := New(g3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e3.Start()
	defer e3.Stop()
	if err := e3.Restore(snap); err == nil {
		t.Fatal("restore into a running engine accepted")
	}
}
