// Package runtime executes a query graph in real time with one goroutine
// per operator and channels as arcs — the natural Go embodiment of the
// paper's execution model. Where the simulation engine discovers ETS demand
// by backtracking, the concurrent engine propagates an explicit *demand
// signal* upstream: an idle-waiting operator that holds data but cannot run
// sends a demand toward the source feeding its blocking input; the source
// answers with an on-demand ETS punctuation (subject to the same per-kind
// estimator rules). Demand signals are hints — they are sent without
// blocking and dropped when a node is busy, which keeps the engine
// deadlock-free (data flows strictly downstream, demand strictly upstream,
// and only data sends may block).
package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tuple"
)

// Options configures a runtime engine.
type Options struct {
	// OnDemandETS enables demand-driven ETS generation at sources.
	OnDemandETS bool
	// ChannelDepth sets per-arc channel capacity (default 256).
	ChannelDepth int
	// Now supplies the clock; defaults to wall time in µs since engine
	// start.
	Now func() tuple.Time
}

// Engine runs one query graph concurrently.
type Engine struct {
	g    *graph.Graph
	opts Options
	now  func() tuple.Time

	nodes   []*node
	wg      sync.WaitGroup
	started bool
	stop    chan struct{}
	mu      sync.Mutex

	etsGenerated atomic.Uint64
}

type portTuple struct {
	port int
	t    *tuple.Tuple
}

type node struct {
	gn  *graph.Node
	in  chan portTuple // fan-in of all input arcs
	dem chan struct{}  // demand signals from downstream

	outs     []*node // per out-arc consumer
	outPorts []int

	eosSeen []bool
	ins     []*buffer.Queue
}

// New builds a runtime engine over a validated graph.
func New(g *graph.Graph, opts Options) (*Engine, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	depth := opts.ChannelDepth
	if depth <= 0 {
		depth = 256
	}
	e := &Engine{g: g, opts: opts, stop: make(chan struct{})}
	if opts.Now != nil {
		e.now = opts.Now
	} else {
		start := time.Now()
		e.now = func() tuple.Time { return tuple.FromDuration(time.Since(start)) }
	}
	e.nodes = make([]*node, g.Len())
	for _, gn := range g.Nodes() {
		n := &node{
			gn:      gn,
			in:      make(chan portTuple, depth),
			dem:     make(chan struct{}, 1),
			eosSeen: make([]bool, gn.Op.NumInputs()),
		}
		n.ins = make([]*buffer.Queue, gn.Op.NumInputs())
		for i := range n.ins {
			n.ins[i] = buffer.New(fmt.Sprintf("%s.in%d", gn.Op.Name(), i))
		}
		e.nodes[gn.ID] = n
	}
	for _, gn := range g.Nodes() {
		n := e.nodes[gn.ID]
		for _, a := range gn.Out {
			n.outs = append(n.outs, e.nodes[a.To])
			n.outPorts = append(n.outPorts, a.Port)
		}
	}
	return e, nil
}

// ETSGenerated reports the number of demand-driven ETS punctuations emitted.
func (e *Engine) ETSGenerated() uint64 { return e.etsGenerated.Load() }

// Start launches one goroutine per node.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return
	}
	e.started = true
	for _, n := range e.nodes {
		e.wg.Add(1)
		go e.runNode(n)
	}
}

// Ingest delivers a raw tuple to the given source node. Timestamping
// happens inside the source's goroutine (serialized with on-demand ETS
// generation): stamping at the call site would race with ETS generation —
// an in-flight tuple stamped before an ETS but delivered after it would
// break the arc's timestamp order. Safe for concurrent use.
func (e *Engine) Ingest(src *ops.Source, raw *tuple.Tuple) {
	n := e.nodeOf(src)
	if n == nil {
		panic("runtime: Ingest on a source not in this graph")
	}
	n.in <- portTuple{port: 0, t: raw}
}

// CloseStream sends end-of-stream into the named source; once every source
// is closed, the graph drains and Wait returns.
func (e *Engine) CloseStream(src *ops.Source) {
	e.Ingest(src, tuple.EOS())
}

// Wait blocks until every node goroutine has exited (all streams closed and
// drained).
func (e *Engine) Wait() { e.wg.Wait() }

// Stop terminates all node goroutines without draining. Prefer CloseStream
// on every source followed by Wait for a clean shutdown; Stop is for
// abandoning a continuous query.
func (e *Engine) Stop() {
	e.mu.Lock()
	defer e.mu.Unlock()
	select {
	case <-e.stop:
	default:
		close(e.stop)
	}
}

func (e *Engine) nodeOf(src *ops.Source) *node {
	for _, n := range e.nodes {
		if n.gn.Op == src {
			return n
		}
	}
	return nil
}

// runNode is the per-operator goroutine loop.
func (e *Engine) runNode(n *node) {
	defer e.wg.Done()
	op := n.gn.Op
	src := n.gn.Source()

	emit := func(t *tuple.Tuple) {
		for i, out := range n.outs {
			out.in <- portTuple{port: n.outPorts[i], t: t}
		}
	}
	ctx := &ops.Ctx{Ins: n.ins, Emit: emit, Now: e.now}
	if src != nil {
		// Source nodes pull from their inbox; route the engine's fan-in
		// channel into it.
		ctx.Ins = nil
	}

	deliver := func(pt portTuple) {
		if src != nil {
			if pt.t.IsPunct() {
				src.Offer(pt.t)
			} else {
				src.Ingest(pt.t, e.now())
			}
			return
		}
		n.ins[pt.port].Push(pt.t)
		if pt.t.IsEOS() {
			n.eosSeen[pt.port] = true
		}
	}
	allEOS := func() bool {
		if src != nil {
			return false // sources end via their own EOS ingest
		}
		for _, s := range n.eosSeen {
			if !s {
				return false
			}
		}
		return true
	}
	drained := func() bool {
		if src != nil {
			return false
		}
		for _, q := range n.ins {
			if !q.Empty() {
				return false
			}
		}
		return true
	}

	sourceDone := false
	for {
		// Drain pending channel input without blocking.
		for {
			select {
			case pt := <-n.in:
				if src != nil && pt.t.IsEOS() {
					sourceDone = true
				}
				deliver(pt)
				continue
			default:
			}
			break
		}
		// Run the operator while it can make progress.
		ran := false
		for op.More(ctx) {
			op.Exec(ctx)
			ran = true
		}
		if ran {
			continue
		}
		// Exit conditions: source got EOS and drained its inbox (EOS
		// itself was forwarded by Source.Exec); non-source saw EOS on
		// every input and drained.
		if src != nil && sourceDone && src.Inbox().Empty() {
			return
		}
		if allEOS() && drained() {
			if _, isSink := op.(*ops.Sink); !isSink && len(n.outs) > 0 {
				// TSM operators forward EOS themselves; stateless
				// ones forwarded it as ordinary punctuation. A
				// latent-mode IWP op swallows punctuation, so emit
				// EOS explicitly for downstream termination.
				if u, ok := op.(*ops.Union); ok && u.Mode() == ops.LatentMode {
					emit(tuple.EOS())
				}
				if j, ok := op.(*ops.WindowJoin); ok && j.Mode() == ops.LatentMode {
					emit(tuple.EOS())
				}
			}
			return
		}
		// Idle: if we hold data but cannot run, signal demand upstream
		// toward the blocking input (the concurrent analogue of the
		// Backtrack rule) and wait with a retry timeout — the source
		// may decline a demand whose clock has not advanced yet, and
		// the hint must then be re-issued.
		demanding := false
		if e.opts.OnDemandETS && src == nil && e.hasData(n) {
			j := op.BlockingInput(ctx)
			if j < 0 {
				j = 0
			}
			e.signalDemand(e.nodes[n.gn.Preds[j]])
			demanding = true
		}
		if demanding {
			select {
			case pt := <-n.in:
				deliver(pt)
			case <-n.dem:
				e.handleDemand(n, ctx)
			case <-time.After(200 * time.Microsecond):
				// retry the demand on the next iteration
			case <-e.stop:
				return
			}
			continue
		}
		// Block until input or demand arrives.
		select {
		case pt := <-n.in:
			if src != nil && pt.t.IsEOS() {
				sourceDone = true
			}
			deliver(pt)
		case <-n.dem:
			e.handleDemand(n, ctx)
		case <-e.stop:
			return
		}
	}
}

func (e *Engine) hasData(n *node) bool {
	for _, q := range n.ins {
		if q.DataLen() > 0 {
			return true
		}
	}
	return false
}

// signalDemand delivers a non-blocking demand hint to a node.
func (e *Engine) signalDemand(n *node) {
	select {
	case n.dem <- struct{}{}:
	default: // already signalled; hint coalesces
	}
}

// handleDemand reacts to a demand signal: sources answer with an ETS (if
// the estimator allows); interior nodes forward the demand upstream along
// their (blocking) input.
func (e *Engine) handleDemand(n *node, ctx *ops.Ctx) {
	if src := n.gn.Source(); src != nil {
		if !src.Inbox().Empty() {
			return // data is already on the way
		}
		if p, ok := src.OnDemandETS(e.now()); ok {
			e.etsGenerated.Add(1)
			src.Offer(p)
		}
		return
	}
	j := n.gn.Op.BlockingInput(ctx)
	if j < 0 {
		j = 0
	}
	if len(n.gn.Preds) > 0 {
		e.signalDemand(e.nodes[n.gn.Preds[j]])
	}
}
